// Operator microbenchmarks, three parts:
//
//   1. The PR 7 vectorized-kernel smoke (always built, runs first): the
//      filter-annotate / delta-filter / bloom-probe hot paths measured
//      scalar vs batch-at-a-time, rows/sec per operator, merged into
//      BENCH_PR7.json. Correctness is HARD-GATED — the vectorized results
//      must be bit-identical to the scalar baseline and the compiled
//      kernels must actually run (vectorized_batches > 0) or the binary
//      exits non-zero. The >=2x speedup bar is recorded in the JSON and
//      enforced only with IMP_BENCH_ENFORCE_SPEEDUP=1 (shared CI runners
//      are too noisy to gate wall-clock).
//
//   2. The PR 10 typed-column smoke (always built, runs second): the same
//      hot paths measured over the typed ColumnVector chunk layout vs the
//      legacy boxed Value layout (twin databases, identical rows), plus
//      batch join-key hashing off the typed arrays. Bit-identicality across
//      layouts and typed-chunk engagement are HARD-GATED; results merge
//      into BENCH_PR10.json.
//
//   3. google-benchmark per-operator scaling checks matching the
//      complexity analysis of Sec. 5.3 — O(n) stateless operators, O(n·p)
//      aggregation, O(log l) ordered-state updates, O(1) bloom probes,
//      O(log p) fragment lookup. Compiled only when Google Benchmark is
//      available (IMP_HAVE_GOOGLE_BENCHMARK); pass --smoke_only to skip.

#ifdef IMP_HAVE_GOOGLE_BENCHMARK
#include <benchmark/benchmark.h>
#endif

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/bloom_filter.h"
#include "common/hash.h"
#include "exec/vector_kernels.h"
#include "imp/inc_aggregate.h"
#include "imp/inc_operators.h"
#include "imp/inc_topk.h"
#include "sketch/partition.h"
#include "workload/synthetic.h"

namespace imp {
namespace {

// ---- PR 7 smoke: vectorized kernels vs scalar row-at-a-time ----------------

ExprPtr ColA() { return MakeColumnRef(1, "a", ValueType::kInt); }
ExprPtr IntLit(int64_t v) { return MakeLiteral(Value::Int(v)); }

/// The IN-partition-bucket shape the sketch use-rewrite emits: an OR of
/// ranges over the partition column, selective like a real sketch's
/// fragment set (~6% of the domain here). Compile() fuses it into one
/// sorted range-set probe, so this predicate must be fully vectorized.
ExprPtr RangeSetPredicate() {
  std::vector<ExprPtr> ranges;
  ranges.push_back(MakeBetween(ColA(), IntLit(40), IntLit(60)));
  ranges.push_back(MakeBetween(ColA(), IntLit(200), IntLit(205)));
  ranges.push_back(MakeBinary(BinaryOp::kEq, ColA(), IntLit(400)));
  return MakeDisjunction(std::move(ranges));
}

bool SameAnnotatedRelation(const AnnotatedRelation& a,
                           const AnnotatedRelation& b) {
  if (a.rows.size() != b.rows.size()) return false;
  for (size_t i = 0; i < a.rows.size(); ++i) {
    if (!(a.rows[i].row == b.rows[i].row)) return false;
    if (!(a.rows[i].sketch == b.rows[i].sketch)) return false;
  }
  return true;
}

bool SameAnnotatedDelta(const AnnotatedDelta& a, const AnnotatedDelta& b) {
  if (a.rows.size() != b.rows.size()) return false;
  for (size_t i = 0; i < a.rows.size(); ++i) {
    if (!(a.rows[i].row == b.rows[i].row)) return false;
    if (!(a.rows[i].sketch == b.rows[i].sketch)) return false;
    if (a.rows[i].mult != b.rows[i].mult) return false;
  }
  return true;
}

int Fail(const char* what) {
  std::fprintf(stderr, "FAIL (pr7 smoke): %s\n", what);
  return 1;
}

int Fail10(const char* what) {
  std::fprintf(stderr, "FAIL (pr10 smoke): %s\n", what);
  return 1;
}

}  // namespace

/// Runs the vectorized-kernel smoke; returns non-zero on any gate failure.
int RunPr7Smoke() {
  bench::PrintFigureHeader(
      "PR7", "Vectorized columnar kernels: per-operator rows/sec vs scalar");

  // Unclustered base data on purpose: with cluster_by_a the zone maps
  // would let the vectorized path skip most chunks outright, measuring
  // pruning rather than the kernels. Unclustered, every chunk survives
  // zone filtering on both paths and the comparison isolates the
  // batch-at-a-time evaluation itself.
  SyntheticSpec spec;
  spec.name = "t";
  spec.num_rows = bench::ScaledRows(200000);
  spec.num_groups = 500;
  spec.cluster_by_a = false;
  Database db;
  IMP_CHECK(CreateSyntheticTable(&db, spec).ok());
  PartitionCatalog catalog;
  IMP_CHECK(catalog
                .Register(RangePartition::EquiWidthInt(
                    "t", "a", 1, 0,
                    static_cast<int64_t>(spec.num_groups) - 1, 64))
                .ok());

  ExprPtr pred = RangeSetPredicate();
  if (!PredicateKernel::Compile(pred).fully_vectorized()) {
    return Fail("range-set predicate did not compile fully vectorized");
  }

  bench::JsonReport report("pr7_vectorized_kernels", "BENCH_PR7.json");
  bench::SeriesTable table(
      "operator", {"scalar Mrows/s", "vector Mrows/s", "speedup"});

  // ---- filter-annotate (IncScan::Build capture path) -----------------------
  // The hot path of sketch capture: scan every base chunk, filter, and
  // annotate survivors with their partition fragment.
  MaintainStats stats_vec;
  MaintainStats stats_sca;
  IncScan scan_vec("t", pred, &db, &catalog, db.GetTable("t")->schema(),
                   &stats_vec, /*vectorized=*/true);
  IncScan scan_sca("t", pred, &db, &catalog, db.GetTable("t")->schema(),
                   &stats_sca, /*vectorized=*/false);

  Result<AnnotatedRelation> built_vec = scan_vec.Build(DeltaContext{});
  Result<AnnotatedRelation> built_sca = scan_sca.Build(DeltaContext{});
  IMP_CHECK(built_vec.ok() && built_sca.ok());
  if (!SameAnnotatedRelation(built_vec.value(), built_sca.value())) {
    return Fail("filter-annotate: vectorized capture not bit-identical");
  }
  if (stats_vec.vectorized_batches == 0) {
    return Fail("filter-annotate: vectorized_batches == 0 (kernels idle)");
  }
  if (stats_sca.vectorized_batches != 0) {
    return Fail("filter-annotate: scalar baseline counted kernel batches");
  }

  double t_fa_vec = bench::MedianSeconds([&] {
    Result<AnnotatedRelation> r = scan_vec.Build(DeltaContext{});
    IMP_CHECK(r.ok());
  });
  double t_fa_sca = bench::MedianSeconds([&] {
    Result<AnnotatedRelation> r = scan_sca.Build(DeltaContext{});
    IMP_CHECK(r.ok());
  });
  double rows = static_cast<double>(spec.num_rows);
  double fa_speedup = t_fa_sca / t_fa_vec;
  table.AddRow("filter_annotate",
               {rows / t_fa_sca / 1e6, rows / t_fa_vec / 1e6, fa_speedup});
  report.Add("filter_annotate", "rows_per_sec_scalar", rows / t_fa_sca);
  report.Add("filter_annotate", "rows_per_sec_vectorized", rows / t_fa_vec);
  report.Add("filter_annotate", "speedup", fa_speedup);
  report.Add("filter_annotate", "vectorized_batches",
             static_cast<double>(stats_vec.vectorized_batches));
  report.Add("filter_annotate", "scalar_fallback_rows",
             static_cast<double>(stats_vec.scalar_fallback_rows));

  // ---- delta filter (IncScan::Process push-down path) ----------------------
  // The maintenance-round hot path: refine a borrowed delta batch's
  // selection bitmap with the pushed-down predicate.
  Rng rng(11);
  uint64_t from = db.CurrentVersion();
  {
    std::vector<Tuple> fresh;
    size_t n = bench::ScaledRows(60000);
    fresh.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      fresh.push_back(SyntheticRow(
          spec, static_cast<int64_t>(1000000 + i), &rng));
    }
    IMP_CHECK(db.Insert("t", fresh).ok());
  }
  DeltaContext ctx =
      MakeDeltaContext({db.ScanDelta("t", from, db.CurrentVersion())}, catalog);
  const size_t delta_rows = ctx.FindBatch("t")->size();

  stats_vec.Reset();
  stats_sca.Reset();
  Result<DeltaBatch> out_vec = scan_vec.Process(ctx);
  Result<DeltaBatch> out_sca = scan_sca.Process(ctx);
  IMP_CHECK(out_vec.ok() && out_sca.ok());
  MaintainStats scratch;
  if (!SameAnnotatedDelta(out_vec.value().View().Materialize(&scratch),
                          out_sca.value().View().Materialize(&scratch))) {
    return Fail("delta-filter: vectorized push-down not bit-identical");
  }
  if (stats_vec.vectorized_batches == 0) {
    return Fail("delta-filter: vectorized_batches == 0 (kernels idle)");
  }

  double t_df_vec = bench::MedianSeconds([&] {
    Result<DeltaBatch> r = scan_vec.Process(ctx);
    IMP_CHECK(r.ok());
  });
  double t_df_sca = bench::MedianSeconds([&] {
    Result<DeltaBatch> r = scan_sca.Process(ctx);
    IMP_CHECK(r.ok());
  });
  double drows = static_cast<double>(delta_rows);
  double df_speedup = t_df_sca / t_df_vec;
  table.AddRow("delta_filter",
               {drows / t_df_sca / 1e6, drows / t_df_vec / 1e6, df_speedup});
  report.Add("delta_filter", "rows_per_sec_scalar", drows / t_df_sca);
  report.Add("delta_filter", "rows_per_sec_vectorized", drows / t_df_vec);
  report.Add("delta_filter", "speedup", df_speedup);

  // ---- bloom probe (IncJoin delta pruning) ---------------------------------
  {
    BloomFilter bf(100000);
    for (uint64_t i = 0; i < 100000; ++i) bf.AddHash(HashInt64(i));
    size_t n = bench::ScaledRows(1000000);
    std::vector<uint64_t> hashes(n);
    for (size_t i = 0; i < n; ++i) {
      // Half the probes hit inserted keys, half miss.
      hashes[i] = HashInt64(static_cast<int64_t>(i % 200000));
    }
    BitVector batched;
    bf.MayContainHashes(hashes.data(), n, &batched);
    for (size_t i = 0; i < n; ++i) {
      if (batched.Test(i) != bf.MayContainHash(hashes[i])) {
        return Fail("bloom: batched probe not bit-identical to single probe");
      }
    }
    double t_single = bench::MedianSeconds([&] {
      size_t hits = 0;
      for (size_t i = 0; i < n; ++i) hits += bf.MayContainHash(hashes[i]);
      // The count keeps the loop from being optimized away.
      if (hits == 0) std::fprintf(stderr, "unexpected: zero bloom hits\n");
    });
    double t_batch = bench::MedianSeconds([&] {
      BitVector out;
      bf.MayContainHashes(hashes.data(), n, &out);
      if (out.Count() == 0) std::fprintf(stderr, "unexpected: empty probe\n");
    });
    double dn = static_cast<double>(n);
    table.AddRow("bloom_probe", {dn / t_single / 1e6, dn / t_batch / 1e6,
                                 t_single / t_batch});
    report.Add("bloom_probe", "probes_per_sec_single", dn / t_single);
    report.Add("bloom_probe", "probes_per_sec_batched", dn / t_batch);
    report.Add("bloom_probe", "speedup", t_single / t_batch);
  }

  table.Print();
  report.Add("gates", "bit_identical", 1.0);
  report.Add("gates", "vectorized_batches_nonzero", 1.0);
  report.Write();
  const char* json_env = std::getenv("IMP_BENCH_JSON");
  std::printf("pr7 smoke: bit-identical, kernels engaged; report -> %s\n",
              json_env != nullptr ? json_env : "BENCH_PR7.json");

  // Wall-clock bar (acceptance: >=2x on the filter-annotate kernel),
  // enforced only on perf-controlled hardware.
  if (std::getenv("IMP_BENCH_ENFORCE_SPEEDUP") != nullptr &&
      fa_speedup < 2.0) {
    std::fprintf(stderr, "FAIL: filter_annotate speedup %.2fx < 2.0x\n",
                 fa_speedup);
    return 1;
  }
  return 0;
}

/// The PR 10 typed-column smoke: the same operators measured over the typed
/// ColumnVector chunk layout vs the legacy boxed layout (twin databases,
/// identical rows, vectorized kernels on in BOTH — the comparison isolates
/// the storage layout). Bit-identicality of every operator's output across
/// layouts is HARD-GATED, as is the typed layout actually engaging
/// (typed_chunks > 0); results merge into BENCH_PR10.json. The >=2x bar on
/// filter-annotate or aggregation is enforced under IMP_BENCH_ENFORCE_SPEEDUP.
int RunPr10Smoke() {
  bench::PrintFigureHeader(
      "PR10", "Typed columnar chunk layout: per-operator rows/sec vs boxed");

  SyntheticSpec spec;
  spec.name = "t";
  spec.num_rows = bench::ScaledRows(200000);
  spec.num_groups = 500;
  spec.cluster_by_a = false;  // see RunPr7Smoke: isolate evaluation, not pruning
  DatabaseOptions boxed_opts;
  boxed_opts.typed_columns = false;
  Database db_typed;
  Database db_boxed(boxed_opts);
  IMP_CHECK(CreateSyntheticTable(&db_typed, spec).ok());
  IMP_CHECK(CreateSyntheticTable(&db_boxed, spec).ok());
  PartitionCatalog catalog;
  IMP_CHECK(catalog
                .Register(RangePartition::EquiWidthInt(
                    "t", "a", 1, 0,
                    static_cast<int64_t>(spec.num_groups) - 1, 64))
                .ok());

  Database::TypedColumnStats tstats = db_typed.AggregateTypedColumnStats();
  if (tstats.typed_chunks == 0) {
    return Fail10("typed database published no typed chunks");
  }
  if (db_boxed.AggregateTypedColumnStats().typed_chunks != 0) {
    return Fail10("boxed database published typed chunks");
  }

  bench::JsonReport report("pr10_typed_columns", "BENCH_PR10.json");
  bench::SeriesTable table(
      "operator", {"boxed Mrows/s", "typed Mrows/s", "speedup"});
  double rows = static_cast<double>(spec.num_rows);

  // ---- filter-annotate (IncScan::Build capture path) -----------------------
  // Identical to the PR 7 hot path, but boxed-vs-typed instead of
  // scalar-vs-vectorized: leaf predicate evaluation runs over raw int64
  // arrays on the typed side and over Value vectors on the boxed side.
  ExprPtr pred = RangeSetPredicate();
  MaintainStats st_typed, st_boxed;
  IncScan scan_typed("t", pred, &db_typed, &catalog,
                     db_typed.GetTable("t")->schema(), &st_typed,
                     /*vectorized=*/true);
  IncScan scan_boxed("t", pred, &db_boxed, &catalog,
                     db_boxed.GetTable("t")->schema(), &st_boxed,
                     /*vectorized=*/true);
  Result<AnnotatedRelation> fa_typed = scan_typed.Build(DeltaContext{});
  Result<AnnotatedRelation> fa_boxed = scan_boxed.Build(DeltaContext{});
  IMP_CHECK(fa_typed.ok() && fa_boxed.ok());
  if (!SameAnnotatedRelation(fa_typed.value(), fa_boxed.value())) {
    return Fail10("filter-annotate: typed layout not bit-identical to boxed");
  }
  if (st_typed.vectorized_batches == 0) {
    return Fail10("filter-annotate: vectorized_batches == 0 on typed layout");
  }
  double t_fa_typed = bench::MedianSeconds([&] {
    Result<AnnotatedRelation> r = scan_typed.Build(DeltaContext{});
    IMP_CHECK(r.ok());
  });
  double t_fa_boxed = bench::MedianSeconds([&] {
    Result<AnnotatedRelation> r = scan_boxed.Build(DeltaContext{});
    IMP_CHECK(r.ok());
  });
  double fa_speedup = t_fa_boxed / t_fa_typed;
  table.AddRow("filter_annotate",
               {rows / t_fa_boxed / 1e6, rows / t_fa_typed / 1e6, fa_speedup});
  report.Add("filter_annotate", "rows_per_sec_boxed", rows / t_fa_boxed);
  report.Add("filter_annotate", "rows_per_sec_typed", rows / t_fa_typed);
  report.Add("filter_annotate", "speedup", fa_speedup);

  // ---- aggregate build (scan + group-by over the full table) ---------------
  // SUM/COUNT group-by sourced from a full unfiltered scan: the typed side
  // gathers rows column-at-a-time from unboxed arrays and pre-resolves its
  // group-key / argument column refs (Options::kernelized).
  auto build_agg = [&](Database* db, bool kernelized,
                       MaintainStats* stats) -> Result<AnnotatedRelation> {
    auto scan = std::make_unique<IncScan>("t", nullptr, db, &catalog,
                                          db->GetTable("t")->schema(), stats,
                                          /*vectorized=*/true);
    std::vector<ExprPtr> groups = {MakeColumnRef(1, "a", ValueType::kInt)};
    std::vector<AggSpec> aggs = {
        {AggFunc::kSum, MakeColumnRef(2, "b", ValueType::kInt), "s"},
        {AggFunc::kCount, nullptr, "n"}};
    Schema out;
    out.AddColumn("a", ValueType::kInt);
    out.AddColumn("s", ValueType::kInt);
    out.AddColumn("n", ValueType::kInt);
    IncAggregate::Options aopts;
    aopts.kernelized = kernelized;
    IncAggregate agg(std::move(scan), groups, aggs, out, aopts, stats);
    return agg.Build(DeltaContext{});
  };
  Result<AnnotatedRelation> ag_typed =
      build_agg(&db_typed, /*kernelized=*/true, &st_typed);
  Result<AnnotatedRelation> ag_boxed =
      build_agg(&db_boxed, /*kernelized=*/false, &st_boxed);
  IMP_CHECK(ag_typed.ok() && ag_boxed.ok());
  auto sorted_rows = [](const AnnotatedRelation& rel) {
    std::vector<std::pair<Tuple, BitVector>> out;
    out.reserve(rel.rows.size());
    for (const AnnotatedRow& ar : rel.rows) out.emplace_back(ar.row, ar.sketch);
    std::sort(out.begin(), out.end(),
              [](const auto& a, const auto& b) {
                return TupleLess()(a.first, b.first);
              });
    return out;
  };
  if (sorted_rows(ag_typed.value()) != sorted_rows(ag_boxed.value())) {
    return Fail10("aggregate: typed layout not bit-identical to boxed");
  }
  double t_ag_typed = bench::MedianSeconds([&] {
    Result<AnnotatedRelation> r =
        build_agg(&db_typed, /*kernelized=*/true, &st_typed);
    IMP_CHECK(r.ok());
  });
  double t_ag_boxed = bench::MedianSeconds([&] {
    Result<AnnotatedRelation> r =
        build_agg(&db_boxed, /*kernelized=*/false, &st_boxed);
    IMP_CHECK(r.ok());
  });
  double ag_speedup = t_ag_boxed / t_ag_typed;
  table.AddRow("aggregate_build",
               {rows / t_ag_boxed / 1e6, rows / t_ag_typed / 1e6, ag_speedup});
  report.Add("aggregate", "rows_per_sec_boxed", rows / t_ag_boxed);
  report.Add("aggregate", "rows_per_sec_typed", rows / t_ag_typed);
  report.Add("aggregate", "speedup", ag_speedup);

  // ---- join-key hashing over chunk columns ---------------------------------
  // Batch key hashing straight off the typed arrays (NULL-aware, dictionary
  // strings hashed once per distinct) vs reboxing every cell and calling
  // Value::Hash — over a mixed int/double/string key table.
  {
    Schema kschema;
    kschema.AddColumn("kid", ValueType::kInt);
    kschema.AddColumn("kv", ValueType::kDouble);
    kschema.AddColumn("kt", ValueType::kString);
    for (Database* db : {&db_typed, &db_boxed}) {
      IMP_CHECK(db->CreateTable("k", kschema).ok());
    }
    Rng rng(9);
    size_t n = bench::ScaledRows(200000);
    std::vector<Tuple> krows;
    krows.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      krows.push_back(Tuple{
          Value::Int(static_cast<int64_t>(i)),
          rng.Chance(0.1) ? Value::Null()
                          : Value::Double(rng.UniformDouble(-1e6, 1e6)),
          Value::String("k" + std::to_string(rng.UniformInt(0, 49)))});
    }
    for (Database* db : {&db_typed, &db_boxed}) {
      IMP_CHECK(db->BulkLoad("k", krows).ok());
    }
    constexpr uint64_t kKeySeed = 0x2545f4914f6cdd1dULL;  // IncJoin's seed
    auto typed_hashes = [&](std::vector<uint64_t>* out) {
      out->clear();
      auto snap = db_typed.GetTable("k")->Snapshot();
      for (const auto& chunk : snap->chunks()) {
        std::vector<uint64_t> h(chunk->num_rows(), kKeySeed);
        for (size_t c = 0; c < 3; ++c) {
          chunk->column(c).AppendKeyHashes(chunk->num_rows(), &h);
        }
        out->insert(out->end(), h.begin(), h.end());
      }
    };
    auto boxed_hashes = [&](std::vector<uint64_t>* out) {
      out->clear();
      auto snap = db_boxed.GetTable("k")->Snapshot();
      for (const auto& chunk : snap->chunks()) {
        std::vector<uint64_t> h(chunk->num_rows(), kKeySeed);
        for (size_t c = 0; c < 3; ++c) {
          for (size_t r = 0; r < chunk->num_rows(); ++r) {
            h[r] = HashCombine(h[r], chunk->At(r, c).Hash());
          }
        }
        out->insert(out->end(), h.begin(), h.end());
      }
    };
    std::vector<uint64_t> h_typed, h_boxed;
    typed_hashes(&h_typed);
    boxed_hashes(&h_boxed);
    if (h_typed != h_boxed) {
      return Fail10("join-key hash: typed batch hashes != boxed Value::Hash");
    }
    double t_jk_typed = bench::MedianSeconds([&] { typed_hashes(&h_typed); });
    double t_jk_boxed = bench::MedianSeconds([&] { boxed_hashes(&h_boxed); });
    double dn = static_cast<double>(n);
    double jk_speedup = t_jk_boxed / t_jk_typed;
    table.AddRow("join_key_hash", {dn / t_jk_boxed / 1e6, dn / t_jk_typed / 1e6,
                                   jk_speedup});
    report.Add("join_key_hash", "rows_per_sec_boxed", dn / t_jk_boxed);
    report.Add("join_key_hash", "rows_per_sec_typed", dn / t_jk_typed);
    report.Add("join_key_hash", "speedup", jk_speedup);
  }

  table.Print();
  report.Add("gates", "bit_identical", 1.0);
  report.Add("gates", "typed_chunks",
             static_cast<double>(tstats.typed_chunks));
  report.Add("gates", "boxed_fallback_cells",
             static_cast<double>(tstats.boxed_fallback_cells));
  report.Write();
  const char* json_env = std::getenv("IMP_BENCH_JSON");
  std::printf(
      "pr10 smoke: bit-identical across layouts, %llu typed chunks; "
      "report -> %s\n",
      static_cast<unsigned long long>(tstats.typed_chunks),
      json_env != nullptr ? json_env : "BENCH_PR10.json");

  // Acceptance bar: >=2x on filter-annotate OR aggregation, enforced only
  // on perf-controlled hardware.
  if (std::getenv("IMP_BENCH_ENFORCE_SPEEDUP") != nullptr &&
      fa_speedup < 2.0 && ag_speedup < 2.0) {
    std::fprintf(stderr,
                 "FAIL: neither filter_annotate (%.2fx) nor aggregate "
                 "(%.2fx) reached 2.0x\n",
                 fa_speedup, ag_speedup);
    return 1;
  }
  return 0;
}

}  // namespace imp

#ifdef IMP_HAVE_GOOGLE_BENCHMARK

namespace imp {
namespace {

// ---- Fragment lookup: O(log p) ----------------------------------------------

void BM_FragmentOf(benchmark::State& state) {
  size_t frags = static_cast<size_t>(state.range(0));
  RangePartition part = RangePartition::EquiWidthInt(
      "t", "a", 0, 0, static_cast<int64_t>(frags) * 100, frags);
  Rng rng(1);
  int64_t domain = static_cast<int64_t>(frags) * 100;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        part.FragmentOf(Value::Int(rng.UniformInt(0, domain))));
  }
}
BENCHMARK(BM_FragmentOf)->Arg(10)->Arg(100)->Arg(1000)->Arg(100000);

// ---- Merge operator: O(n * |sketch|) ------------------------------------------

void BM_MergeProcess(benchmark::State& state) {
  size_t frags = static_cast<size_t>(state.range(0));
  IncMerge merge(frags);
  Rng rng(2);
  AnnotatedDelta delta;
  for (int i = 0; i < 64; ++i) {
    BitVector sk(frags);
    sk.Set(static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(frags) - 1)));
    delta.Append(Tuple{Value::Int(i)}, std::move(sk), 1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(merge.Process(delta));
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_MergeProcess)->Arg(16)->Arg(256)->Arg(4096);

// ---- Bloom filter -------------------------------------------------------------

void BM_BloomProbe(benchmark::State& state) {
  BloomFilter bf(100000);
  for (uint64_t i = 0; i < 100000; ++i) bf.AddHash(HashInt64(i));
  uint64_t probe = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bf.MayContainHash(HashInt64(probe++)));
  }
}
BENCHMARK(BM_BloomProbe);

void BM_BloomProbeBatched(benchmark::State& state) {
  BloomFilter bf(100000);
  for (uint64_t i = 0; i < 100000; ++i) bf.AddHash(HashInt64(i));
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<uint64_t> hashes(n);
  for (size_t i = 0; i < n; ++i) {
    hashes[i] = HashInt64(static_cast<int64_t>(i % 200000));
  }
  for (auto _ : state) {
    BitVector out;
    bf.MayContainHashes(hashes.data(), n, &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_BloomProbeBatched)->Arg(1024)->Arg(65536);

// ---- Predicate kernel vs scalar Expr::Eval over base chunks -------------------

void BM_PredicateKernelChunk(benchmark::State& state) {
  SyntheticSpec spec;
  spec.name = "t";
  spec.num_rows = 4096;
  spec.num_groups = 500;
  spec.cluster_by_a = false;
  Database db;
  IMP_CHECK(CreateSyntheticTable(&db, spec).ok());
  auto snap = db.GetTable("t")->Snapshot();
  PredicateKernel kernel = PredicateKernel::Compile(RangeSetPredicate());
  for (auto _ : state) {
    for (const auto& chunk : snap->chunks()) {
      BitVector sel;
      kernel.Eval(RowBlock::FromChunk(*chunk), &sel, nullptr, nullptr);
      benchmark::DoNotOptimize(sel);
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(spec.num_rows));
}
BENCHMARK(BM_PredicateKernelChunk);

void BM_PredicateScalarChunk(benchmark::State& state) {
  SyntheticSpec spec;
  spec.name = "t";
  spec.num_rows = 4096;
  spec.num_groups = 500;
  spec.cluster_by_a = false;
  Database db;
  IMP_CHECK(CreateSyntheticTable(&db, spec).ok());
  auto snap = db.GetTable("t")->Snapshot();
  ExprPtr pred = RangeSetPredicate();
  for (auto _ : state) {
    for (const auto& chunk : snap->chunks()) {
      BitVector sel(chunk->num_rows());
      for (size_t r = 0; r < chunk->num_rows(); ++r) {
        if (pred->Eval(chunk->GetRow(r)).IsTrue()) sel.Set(r);
      }
      benchmark::DoNotOptimize(sel);
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(spec.num_rows));
}
BENCHMARK(BM_PredicateScalarChunk);

// ---- Incremental aggregation: O(n) per delta row --------------------------------

class AggBench {
 public:
  AggBench(size_t num_rows, size_t num_groups) {
    spec_.name = "t";
    spec_.num_rows = num_rows;
    spec_.num_groups = num_groups;
    IMP_CHECK(CreateSyntheticTable(&db_, spec_).ok());
    IMP_CHECK(catalog_
                  .Register(RangePartition::EquiWidthInt(
                      "t", "a", 1, 0, static_cast<int64_t>(num_groups) - 1,
                      64))
                  .ok());
    auto scan = std::make_unique<IncScan>("t", nullptr, &db_, &catalog_,
                                          db_.GetTable("t")->schema(), &stats_);
    std::vector<ExprPtr> groups = {MakeColumnRef(1, "a", ValueType::kInt)};
    std::vector<AggSpec> aggs = {
        {AggFunc::kSum, MakeColumnRef(2, "b", ValueType::kInt), "s"},
        {AggFunc::kCount, nullptr, "n"}};
    Schema out;
    out.AddColumn("a", ValueType::kInt);
    out.AddColumn("s", ValueType::kInt);
    out.AddColumn("n", ValueType::kInt);
    agg_ = std::make_unique<IncAggregate>(std::move(scan), groups, aggs, out,
                                          IncAggregate::Options{}, &stats_);
    IMP_CHECK(agg_->Build(DeltaContext{}).ok());
  }

  DeltaContext MakeDelta(size_t n) {
    Rng rng(3);
    uint64_t from = db_.CurrentVersion();
    std::vector<Tuple> rows;
    for (size_t i = 0; i < n; ++i) {
      rows.push_back(SyntheticRow(spec_, next_id_++, &rng));
    }
    IMP_CHECK(db_.Insert("t", rows).ok());
    return MakeDeltaContext({db_.ScanDelta("t", from, db_.CurrentVersion())},
                            catalog_);
  }

  Database db_;
  PartitionCatalog catalog_;
  SyntheticSpec spec_;
  MaintainStats stats_;
  std::unique_ptr<IncAggregate> agg_;
  int64_t next_id_ = 1000000;
};

void BM_IncAggregateProcess(benchmark::State& state) {
  AggBench bench(20000, 1000);
  size_t delta_rows = static_cast<size_t>(state.range(0));
  DeltaContext ctx = bench.MakeDelta(delta_rows);
  for (auto _ : state) {
    auto out = bench.agg_->Process(ctx);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(delta_rows));
}
BENCHMARK(BM_IncAggregateProcess)->Arg(10)->Arg(100)->Arg(1000);

// ---- Incremental top-k ----------------------------------------------------------

void BM_IncTopKProcess(benchmark::State& state) {
  Database db;
  SyntheticSpec spec;
  spec.name = "t";
  spec.num_rows = 20000;
  spec.num_groups = 5000;
  IMP_CHECK(CreateSyntheticTable(&db, spec).ok());
  PartitionCatalog catalog;
  IMP_CHECK(
      catalog.Register(RangePartition::EquiWidthInt("t", "a", 1, 0, 4999, 64))
          .ok());
  MaintainStats stats;
  auto scan = std::make_unique<IncScan>("t", nullptr, &db, &catalog,
                                        db.GetTable("t")->schema(), &stats);
  IncTopK::Options opts;
  opts.buffer = static_cast<size_t>(state.range(0));
  IncTopK topk(std::move(scan), {SortSpec{2, true}}, 10, opts, &stats);
  IMP_CHECK(topk.Build(DeltaContext{}).ok());

  Rng rng(4);
  uint64_t from = db.CurrentVersion();
  std::vector<Tuple> rows;
  for (int i = 0; i < 100; ++i) {
    rows.push_back(SyntheticRow(spec, 500000 + i, &rng));
  }
  IMP_CHECK(db.Insert("t", rows).ok());
  DeltaContext ctx =
      MakeDeltaContext({db.ScanDelta("t", from, db.CurrentVersion())}, catalog);
  for (auto _ : state) {
    auto out = topk.Process(ctx);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_IncTopKProcess)->Arg(0)->Arg(100)->Arg(1000);

// ---- Borrowed vs materialized DeltaBatch consumption ------------------------------
//
// The zero-copy pipeline claim at operator granularity: aggregating N
// sketches' worth of work over one shared annotated delta through borrowed
// views vs through per-consumer materialized copies. The per-iteration
// counters (deltas_borrowed / deltas_materialized / rows_copied) land in
// the google-benchmark report (--benchmark_format=json), which makes the
// claim machine-checkable from the bench output.

void BM_DeltaBatchBorrowedAggregate(benchmark::State& state) {
  AggBench bench(20000, 1000);
  DeltaContext ctx = bench.MakeDelta(static_cast<size_t>(state.range(0)));
  bench.stats_.Reset();
  for (auto _ : state) {
    auto out = bench.agg_->Process(ctx);  // scan serves a borrowed view
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  double iters = static_cast<double>(state.iterations());
  state.counters["deltas_borrowed"] =
      static_cast<double>(bench.stats_.deltas_borrowed) / iters;
  state.counters["deltas_materialized"] =
      static_cast<double>(bench.stats_.deltas_materialized) / iters;
  state.counters["rows_copied"] =
      static_cast<double>(bench.stats_.rows_copied) / iters;
}
BENCHMARK(BM_DeltaBatchBorrowedAggregate)->Arg(100)->Arg(1000);

void BM_DeltaBatchMaterializeCopy(benchmark::State& state) {
  // The copy the borrowed pipeline removes: deep-copying the shared
  // annotated delta once per consumer (the pre-refactor IncScan behavior).
  AggBench bench(20000, 1000);
  DeltaContext ctx = bench.MakeDelta(static_cast<size_t>(state.range(0)));
  const DeltaBatch* batch = ctx.FindBatch("t");
  IMP_CHECK(batch != nullptr);
  bench.stats_.Reset();
  for (auto _ : state) {
    AnnotatedDelta copy = batch->View().Materialize(&bench.stats_);
    benchmark::DoNotOptimize(copy);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  double iters = static_cast<double>(state.iterations());
  state.counters["deltas_materialized"] =
      static_cast<double>(bench.stats_.deltas_materialized) / iters;
  state.counters["rows_copied"] =
      static_cast<double>(bench.stats_.rows_copied) / iters;
}
BENCHMARK(BM_DeltaBatchMaterializeCopy)->Arg(100)->Arg(1000);

// ---- BitVector union (join annotation merging) -----------------------------------

void BM_BitVectorUnion(benchmark::State& state) {
  size_t bits = static_cast<size_t>(state.range(0));
  BitVector a(bits), b(bits);
  for (size_t i = 0; i < bits; i += 7) a.Set(i);
  for (size_t i = 3; i < bits; i += 11) b.Set(i);
  for (auto _ : state) {
    BitVector c = a;
    c.UnionWith(b);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_BitVectorUnion)->Arg(64)->Arg(1024)->Arg(65536);

}  // namespace
}  // namespace imp

#endif  // IMP_HAVE_GOOGLE_BENCHMARK

int main(int argc, char** argv) {
  int rc = imp::RunPr7Smoke();
  if (rc != 0) return rc;
  rc = imp::RunPr10Smoke();
  if (rc != 0) return rc;

  bool smoke_only = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke_only") == 0) {
      smoke_only = true;
    } else {
      argv[out++] = argv[i];  // strip our flag before benchmark::Initialize
    }
  }
  argc = out;
  (void)smoke_only;

#ifdef IMP_HAVE_GOOGLE_BENCHMARK
  if (!smoke_only) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
#endif
  return 0;
}
