// Operator microbenchmarks (google-benchmark): per-operator scaling checks
// matching the complexity analysis of Sec. 5.3 — O(n) stateless operators,
// O(n·p) aggregation, O(log l) ordered-state updates, O(1) bloom probes,
// O(log p) fragment lookup.

#include <benchmark/benchmark.h>

#include "common/bloom_filter.h"
#include "imp/inc_aggregate.h"
#include "imp/inc_operators.h"
#include "imp/inc_topk.h"
#include "sketch/partition.h"
#include "workload/synthetic.h"

namespace imp {
namespace {

// ---- Fragment lookup: O(log p) ----------------------------------------------

void BM_FragmentOf(benchmark::State& state) {
  size_t frags = static_cast<size_t>(state.range(0));
  RangePartition part = RangePartition::EquiWidthInt(
      "t", "a", 0, 0, static_cast<int64_t>(frags) * 100, frags);
  Rng rng(1);
  int64_t domain = static_cast<int64_t>(frags) * 100;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        part.FragmentOf(Value::Int(rng.UniformInt(0, domain))));
  }
}
BENCHMARK(BM_FragmentOf)->Arg(10)->Arg(100)->Arg(1000)->Arg(100000);

// ---- Merge operator: O(n * |sketch|) ------------------------------------------

void BM_MergeProcess(benchmark::State& state) {
  size_t frags = static_cast<size_t>(state.range(0));
  IncMerge merge(frags);
  Rng rng(2);
  AnnotatedDelta delta;
  for (int i = 0; i < 64; ++i) {
    BitVector sk(frags);
    sk.Set(static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(frags) - 1)));
    delta.Append(Tuple{Value::Int(i)}, std::move(sk), 1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(merge.Process(delta));
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_MergeProcess)->Arg(16)->Arg(256)->Arg(4096);

// ---- Bloom filter -------------------------------------------------------------

void BM_BloomProbe(benchmark::State& state) {
  BloomFilter bf(100000);
  for (uint64_t i = 0; i < 100000; ++i) bf.AddHash(HashInt64(i));
  uint64_t probe = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bf.MayContainHash(HashInt64(probe++)));
  }
}
BENCHMARK(BM_BloomProbe);

// ---- Incremental aggregation: O(n) per delta row --------------------------------

class AggBench {
 public:
  AggBench(size_t num_rows, size_t num_groups) {
    spec_.name = "t";
    spec_.num_rows = num_rows;
    spec_.num_groups = num_groups;
    IMP_CHECK(CreateSyntheticTable(&db_, spec_).ok());
    IMP_CHECK(catalog_
                  .Register(RangePartition::EquiWidthInt(
                      "t", "a", 1, 0, static_cast<int64_t>(num_groups) - 1,
                      64))
                  .ok());
    auto scan = std::make_unique<IncScan>("t", nullptr, &db_, &catalog_,
                                          db_.GetTable("t")->schema(), &stats_);
    std::vector<ExprPtr> groups = {MakeColumnRef(1, "a", ValueType::kInt)};
    std::vector<AggSpec> aggs = {
        {AggFunc::kSum, MakeColumnRef(2, "b", ValueType::kInt), "s"},
        {AggFunc::kCount, nullptr, "n"}};
    Schema out;
    out.AddColumn("a", ValueType::kInt);
    out.AddColumn("s", ValueType::kInt);
    out.AddColumn("n", ValueType::kInt);
    agg_ = std::make_unique<IncAggregate>(std::move(scan), groups, aggs, out,
                                          IncAggregate::Options{}, &stats_);
    IMP_CHECK(agg_->Build(DeltaContext{}).ok());
  }

  DeltaContext MakeDelta(size_t n) {
    Rng rng(3);
    uint64_t from = db_.CurrentVersion();
    std::vector<Tuple> rows;
    for (size_t i = 0; i < n; ++i) {
      rows.push_back(SyntheticRow(spec_, next_id_++, &rng));
    }
    IMP_CHECK(db_.Insert("t", rows).ok());
    return MakeDeltaContext({db_.ScanDelta("t", from, db_.CurrentVersion())},
                            catalog_);
  }

  Database db_;
  PartitionCatalog catalog_;
  SyntheticSpec spec_;
  MaintainStats stats_;
  std::unique_ptr<IncAggregate> agg_;
  int64_t next_id_ = 1000000;
};

void BM_IncAggregateProcess(benchmark::State& state) {
  AggBench bench(20000, 1000);
  size_t delta_rows = static_cast<size_t>(state.range(0));
  DeltaContext ctx = bench.MakeDelta(delta_rows);
  for (auto _ : state) {
    auto out = bench.agg_->Process(ctx);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(delta_rows));
}
BENCHMARK(BM_IncAggregateProcess)->Arg(10)->Arg(100)->Arg(1000);

// ---- Incremental top-k ----------------------------------------------------------

void BM_IncTopKProcess(benchmark::State& state) {
  Database db;
  SyntheticSpec spec;
  spec.name = "t";
  spec.num_rows = 20000;
  spec.num_groups = 5000;
  IMP_CHECK(CreateSyntheticTable(&db, spec).ok());
  PartitionCatalog catalog;
  IMP_CHECK(
      catalog.Register(RangePartition::EquiWidthInt("t", "a", 1, 0, 4999, 64))
          .ok());
  MaintainStats stats;
  auto scan = std::make_unique<IncScan>("t", nullptr, &db, &catalog,
                                        db.GetTable("t")->schema(), &stats);
  IncTopK::Options opts;
  opts.buffer = static_cast<size_t>(state.range(0));
  IncTopK topk(std::move(scan), {SortSpec{2, true}}, 10, opts, &stats);
  IMP_CHECK(topk.Build(DeltaContext{}).ok());

  Rng rng(4);
  uint64_t from = db.CurrentVersion();
  std::vector<Tuple> rows;
  for (int i = 0; i < 100; ++i) {
    rows.push_back(SyntheticRow(spec, 500000 + i, &rng));
  }
  IMP_CHECK(db.Insert("t", rows).ok());
  DeltaContext ctx =
      MakeDeltaContext({db.ScanDelta("t", from, db.CurrentVersion())}, catalog);
  for (auto _ : state) {
    auto out = topk.Process(ctx);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_IncTopKProcess)->Arg(0)->Arg(100)->Arg(1000);

// ---- Borrowed vs materialized DeltaBatch consumption ------------------------------
//
// The zero-copy pipeline claim at operator granularity: aggregating N
// sketches' worth of work over one shared annotated delta through borrowed
// views vs through per-consumer materialized copies. The per-iteration
// counters (deltas_borrowed / deltas_materialized / rows_copied) land in
// the google-benchmark report (--benchmark_format=json), which makes the
// claim machine-checkable from the bench output.

void BM_DeltaBatchBorrowedAggregate(benchmark::State& state) {
  AggBench bench(20000, 1000);
  DeltaContext ctx = bench.MakeDelta(static_cast<size_t>(state.range(0)));
  bench.stats_.Reset();
  for (auto _ : state) {
    auto out = bench.agg_->Process(ctx);  // scan serves a borrowed view
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  double iters = static_cast<double>(state.iterations());
  state.counters["deltas_borrowed"] =
      static_cast<double>(bench.stats_.deltas_borrowed) / iters;
  state.counters["deltas_materialized"] =
      static_cast<double>(bench.stats_.deltas_materialized) / iters;
  state.counters["rows_copied"] =
      static_cast<double>(bench.stats_.rows_copied) / iters;
}
BENCHMARK(BM_DeltaBatchBorrowedAggregate)->Arg(100)->Arg(1000);

void BM_DeltaBatchMaterializeCopy(benchmark::State& state) {
  // The copy the borrowed pipeline removes: deep-copying the shared
  // annotated delta once per consumer (the pre-refactor IncScan behavior).
  AggBench bench(20000, 1000);
  DeltaContext ctx = bench.MakeDelta(static_cast<size_t>(state.range(0)));
  const DeltaBatch* batch = ctx.FindBatch("t");
  IMP_CHECK(batch != nullptr);
  bench.stats_.Reset();
  for (auto _ : state) {
    AnnotatedDelta copy = batch->View().Materialize(&bench.stats_);
    benchmark::DoNotOptimize(copy);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  double iters = static_cast<double>(state.iterations());
  state.counters["deltas_materialized"] =
      static_cast<double>(bench.stats_.deltas_materialized) / iters;
  state.counters["rows_copied"] =
      static_cast<double>(bench.stats_.rows_copied) / iters;
}
BENCHMARK(BM_DeltaBatchMaterializeCopy)->Arg(100)->Arg(1000);

// ---- BitVector union (join annotation merging) -----------------------------------

void BM_BitVectorUnion(benchmark::State& state) {
  size_t bits = static_cast<size_t>(state.range(0));
  BitVector a(bits), b(bits);
  for (size_t i = 0; i < bits; i += 7) a.Set(i);
  for (size_t i = 3; i < bits; i += 11) b.Set(i);
  for (auto _ : state) {
    BitVector c = a;
    c.UnionWith(b);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_BitVectorUnion)->Arg(64)->Arg(1024)->Arg(65536);

}  // namespace
}  // namespace imp

BENCHMARK_MAIN();
