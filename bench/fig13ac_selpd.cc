// Figure 13a,c: the selection push-down optimization (Sec. 7.2 / 8.4.1).
// Q_selpd = group-by aggregation with a WHERE filter and no joins. The
// delta is fixed at 2.5% of the table; the fraction of delta rows that
// satisfy the WHERE condition varies from 2% to 100%. With push-down the
// backend pre-filters the delta; maintenance time grows linearly in the
// matching fraction instead of the raw delta size.

#include <cstdio>

#include "bench_util.h"

namespace imp {
namespace {

constexpr size_t kBaseRows = 100000;
constexpr size_t kGroups = 1000;
// WHERE b < kCut. Synthetic b ~ 3a + noise with a < 1000 => b in [0, ~3000].
constexpr int64_t kCut = 1500;

struct Env {
  Database db;
  PartitionCatalog catalog;
  SyntheticSpec spec;
  Rng rng{71};
  int64_t next_id = 0;

  void Setup() {
    spec.name = "t";
    spec.num_rows = bench::ScaledRows(kBaseRows);
    spec.num_groups = kGroups;
    IMP_CHECK(CreateSyntheticTable(&db, spec).ok());
    next_id = static_cast<int64_t>(spec.num_rows);
    IMP_CHECK(catalog
                  .Register(RangePartition::EquiWidthInt("t", "a", 1, 0,
                                                         kGroups - 1, 100))
                  .ok());
  }

  /// Insert `n` rows of which a `match` fraction satisfies b < kCut.
  void InsertWithMatchFraction(size_t n, double match) {
    std::vector<Tuple> rows;
    rows.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      Tuple row = SyntheticRow(spec, next_id++, &rng);
      bool should_match = rng.Chance(match);
      int64_t b = should_match ? rng.UniformInt(0, kCut - 1)
                               : rng.UniformInt(kCut, kCut * 2);
      row[2] = Value::Int(b);
      rows.push_back(std::move(row));
    }
    IMP_CHECK(db.Insert("t", rows).ok());
  }
};

const char* kQuery =
    "SELECT a, avg(b) AS ab FROM t WHERE b < 1500 "
    "GROUP BY a HAVING avg(c) >= 0";

}  // namespace
}  // namespace imp

int main() {
  using namespace imp;
  bench::PrintFigureHeader("Figure 13a,c",
                           "selection push-down: delta pre-filtering");
  Env env;
  env.Setup();
  size_t delta = env.spec.num_rows / 40;  // 2.5% of the table
  std::printf("delta size = %zu rows (2.5%% of table)\n", delta);

  Binder binder(&env.db);
  auto plan = binder.BindQuery(kQuery);
  IMP_CHECK_MSG(plan.ok(), plan.status().ToString().c_str());

  MaintainerOptions with_pd, without_pd;
  without_pd.selection_pushdown = false;
  Maintainer m_with(&env.db, &env.catalog, plan.value(), with_pd);
  Maintainer m_without(&env.db, &env.catalog, plan.value(), without_pd);
  IMP_CHECK(m_with.Initialize().ok());
  IMP_CHECK(m_without.Initialize().ok());

  const double fractions[] = {0.02, 0.10, 0.25, 0.50, 0.75, 1.00};
  bench::SeriesTable table("match%", {"pushdown(ms)", "no-pushdown(ms)"});
  for (double f : fractions) {
    double with_time = bench::TimeMaintain(
        &m_with, [&] { env.InsertWithMatchFraction(delta, f); });
    double without_time = bench::TimeMaintain(
        &m_without, [&] { env.InsertWithMatchFraction(delta, f); });
    char label[16];
    std::snprintf(label, sizeof(label), "%.0f%%", f * 100);
    table.AddRow(label, {with_time * 1000.0, without_time * 1000.0});
  }
  table.Print();
  return 0;
}
