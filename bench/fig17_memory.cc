// Figure 17: memory usage of incremental operator state.
//  (a) Q_groups: aggregation state vs number of groups (stable per group
//      count; grows with delta only through touched-group bookkeeping).
//  (b) Q_joinsel: join (bloom) + aggregation state across delta sizes.

#include <cstdio>

#include "bench_util.h"

namespace imp {
namespace {

void RunGroups() {
  std::printf("\n-- Fig 17a: Q_groups state memory --\n");
  const size_t group_counts[] = {50, 1000, 5000, 50000};
  bench::SeriesTable table(
      "#groups", {"after build (KB)", "after d=1000 (KB)"});
  for (size_t groups : group_counts) {
    Database db;
    SyntheticSpec spec;
    spec.name = "t";
    spec.num_rows = bench::ScaledRows(100000);
    spec.num_groups = groups;
    IMP_CHECK(CreateSyntheticTable(&db, spec).ok());
    PartitionCatalog catalog;
    IMP_CHECK(catalog
                  .Register(RangePartition::EquiWidthInt(
                      "t", "a", 1, 0, static_cast<int64_t>(groups) - 1, 100))
                  .ok());
    Binder binder(&db);
    auto plan = binder.BindQuery(
        "SELECT a, avg(b) AS ab FROM t GROUP BY a HAVING avg(c) > 0");
    IMP_CHECK(plan.ok());
    Maintainer maintainer(&db, &catalog, plan.value());
    IMP_CHECK(maintainer.Initialize().ok());
    double before = static_cast<double>(maintainer.StateBytes()) / 1024.0;
    Rng rng(3);
    std::vector<Tuple> rows;
    for (int i = 0; i < 1000; ++i) {
      rows.push_back(SyntheticRow(spec, 1000000 + i, &rng));
    }
    IMP_CHECK(db.Insert("t", rows).ok());
    IMP_CHECK(maintainer.MaintainFromBackend().ok());
    double after = static_cast<double>(maintainer.StateBytes()) / 1024.0;
    table.AddRow(std::to_string(groups), {before, after});
  }
  table.Print();
}

void RunJoin() {
  std::printf("\n-- Fig 17b: Q_joinsel state memory --\n");
  const double selectivities[] = {0.01, 0.05, 0.10};
  bench::SeriesTable table("selectivity",
                           {"after build (KB)", "after d=1000 (KB)"});
  for (double sel : selectivities) {
    Database db;
    JoinPairSpec spec;
    spec.left_name = "t";
    spec.right_name = "h";
    spec.distinct_keys = bench::ScaledRows(10000);
    spec.left_per_key = 1;
    spec.right_per_key = 10;
    spec.selectivity = sel;
    IMP_CHECK(CreateJoinPair(&db, spec).ok());
    PartitionCatalog catalog;
    IMP_CHECK(catalog
                  .Register(RangePartition::EquiWidthInt(
                      "t", "a", 1, 0,
                      static_cast<int64_t>(spec.distinct_keys) - 1, 100))
                  .ok());
    Binder binder(&db);
    auto plan = binder.BindQuery(
        "SELECT a, avg(b) AS ab FROM t JOIN h ON (a = ttid) "
        "WHERE b >= 0 GROUP BY a HAVING avg(c) >= 0");
    IMP_CHECK(plan.ok());
    Maintainer maintainer(&db, &catalog, plan.value());
    IMP_CHECK(maintainer.Initialize().ok());
    double before = static_cast<double>(maintainer.StateBytes()) / 1024.0;
    Rng rng(4);
    std::vector<Tuple> rows;
    int64_t next_id = static_cast<int64_t>(spec.distinct_keys);
    for (int i = 0; i < 1000; ++i) {
      rows.push_back(JoinLeftRow(
          spec, next_id++,
          rng.UniformInt(0, static_cast<int64_t>(spec.distinct_keys) - 1),
          &rng));
    }
    IMP_CHECK(db.Insert("t", rows).ok());
    IMP_CHECK(maintainer.MaintainFromBackend().ok());
    double after = static_cast<double>(maintainer.StateBytes()) / 1024.0;
    char label[16];
    std::snprintf(label, sizeof(label), "%.0f%%", sel * 100);
    table.AddRow(label, {before, after});
    // The delegated join probes the backend's snapshot index; its shards
    // are backend memory, not operator state — report them side by side so
    // the split stays visible.
    std::printf("  sel %s: backend index %.1f KB (table data %.1f KB)\n",
                label, static_cast<double>(db.IndexBytes()) / 1024.0,
                static_cast<double>(db.MemoryBytes()) / 1024.0);
  }
  table.Print();
}

// Base-table bytes/row under the boxed Value layout vs the typed
// ColumnVector layout (unboxed int64/double payloads, dictionary-or-flat
// string arena). Same rows, twin databases — the difference is pure layout.
void RunStorageLayout() {
  std::printf("\n-- Fig 17c: base table bytes/row, boxed vs typed layout --\n");
  bench::SeriesTable table(
      "table", {"boxed B/row", "typed B/row", "boxed/typed"});
  auto report = [&](const char* label, const Database& boxed,
                    const Database& typed, const char* name) {
    double rows = static_cast<double>(boxed.GetTable(name)->NumRows());
    double b = static_cast<double>(boxed.GetTable(name)->MemoryBytes()) / rows;
    double t = static_cast<double>(typed.GetTable(name)->MemoryBytes()) / rows;
    table.AddRow(label, {b, t, b / t});
  };

  DatabaseOptions boxed_opts;
  boxed_opts.typed_columns = false;
  {
    // Numeric: the synthetic Q_groups table (int keys, double payloads).
    Database boxed(boxed_opts), typed;
    SyntheticSpec spec;
    spec.name = "t";
    spec.num_rows = bench::ScaledRows(100000);
    IMP_CHECK(CreateSyntheticTable(&boxed, spec).ok());
    IMP_CHECK(CreateSyntheticTable(&typed, spec).ok());
    report("numeric", boxed, typed, "t");
  }
  {
    // String-heavy: a low-cardinality tag column (dictionary win) plus a
    // wide distinct message column (shared-arena win).
    Database boxed(boxed_opts), typed;
    Schema schema;
    schema.AddColumn("id", ValueType::kInt);
    schema.AddColumn("tag", ValueType::kString);
    schema.AddColumn("msg", ValueType::kString);
    for (Database* db : {&boxed, &typed}) {
      IMP_CHECK(db->CreateTable("s", schema).ok());
    }
    Rng rng(5);
    std::vector<Tuple> rows;
    size_t n = bench::ScaledRows(100000);
    rows.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      rows.push_back(
          Tuple{Value::Int(static_cast<int64_t>(i)),
                Value::String("tag" + std::to_string(rng.UniformInt(0, 99))),
                Value::String("message-payload-" +
                              std::to_string(rng.UniformInt(0, 1 << 20)))});
    }
    for (Database* db : {&boxed, &typed}) {
      IMP_CHECK(db->BulkLoad("s", rows).ok());
    }
    report("strings", boxed, typed, "s");
  }
  table.Print();
}

}  // namespace
}  // namespace imp

int main() {
  using namespace imp;
  bench::PrintFigureHeader("Figure 17", "incremental operator state memory");
  RunGroups();
  RunJoin();
  RunStorageLayout();
  return 0;
}
