// Figure 18 (table): in-memory sizes of sketches and range lists. Sketches
// are encoded as bitvectors (one bit per fragment); for n ranges the
// boundary list stores n+1 values (Sec. 8.6.2). We report both the raw
// encodings the paper describes and our in-memory container footprint.

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace imp;
  bench::PrintFigureHeader("Figure 18", "sketch and range sizes in memory");
  const size_t counts[] = {100,  200,   500,   1000,  2000,
                           5000, 10000, 20000, 100000};
  bench::SeriesTable table(
      "#fragments",
      {"sketch (MB)", "ranges (MB)", "sketch bits/frag", "bounds/partition"});
  for (size_t n : counts) {
    BitVector sketch(n);
    for (size_t i = 0; i < n; i += 3) sketch.Set(i);  // contents don't matter
    RangePartition part = RangePartition::EquiWidthInt(
        "t", "a", 0, 0, static_cast<int64_t>(n) * 100, n);
    double sketch_mb =
        static_cast<double>(sketch.MemoryBytes()) / (1024.0 * 1024.0);
    double ranges_mb =
        static_cast<double>(part.MemoryBytes()) / (1024.0 * 1024.0);
    table.AddTextRow(std::to_string(n),
                     {std::to_string(sketch_mb), std::to_string(ranges_mb),
                      std::to_string(8.0 * sketch.MemoryBytes() /
                                     static_cast<double>(n)),
                      std::to_string(part.bounds().size())});
  }
  table.Print();
  std::printf(
      "\nPaper reference (Fig. 18): 100 fragments ~= 0.00004 MB sketch /"
      " 0.0045 MB ranges; 100000 ~= 0.0125 MB / 4.4 MB. Our bitvector\n"
      "encoding matches the sketch sizes up to word-granularity rounding;\n"
      "range lists store n+1 numeric bounds as in the paper.\n");
  return 0;
}
