// Figure 11f / 12f: Q_sketch — varying the number of fragments (#frag) of
// the partition Φ from 10 to 5000. FM cost is dominated by evaluating the
// capture query (insensitive to #frag); IMP's per-tuple cost grows with
// #frag (Sec. 8.3.5).

#include <cstdio>

#include "bench_util.h"

namespace imp {
namespace {

struct Env {
  Database db;
  PartitionCatalog catalog;
  JoinPairSpec spec;
  Rng rng{61};
  int64_t next_id = 0;

  void Setup(size_t num_fragments) {
    spec.left_name = "t";
    spec.right_name = "h";
    spec.distinct_keys = bench::ScaledRows(10000);
    spec.left_per_key = 2;
    spec.right_per_key = 4;
    IMP_CHECK(CreateJoinPair(&db, spec).ok());
    next_id = static_cast<int64_t>(spec.distinct_keys * spec.left_per_key);
    IMP_CHECK(catalog
                  .Register(RangePartition::EquiWidthInt(
                      "t", "a", 1, 0,
                      static_cast<int64_t>(spec.distinct_keys) - 1,
                      num_fragments))
                  .ok());
  }

  void InsertLeft(size_t n) {
    std::vector<Tuple> rows;
    for (size_t i = 0; i < n; ++i) {
      int64_t key =
          rng.UniformInt(0, static_cast<int64_t>(spec.distinct_keys) - 1);
      rows.push_back(JoinLeftRow(spec, next_id++, key, &rng));
    }
    IMP_CHECK(db.Insert("t", rows).ok());
  }
};

const char* kQuery =
    "SELECT a, avg(b) AS ab "
    "FROM (SELECT a AS a, b AS b, c AS c FROM t WHERE b >= 0) tt "
    "JOIN h ON (a = ttid) "
    "GROUP BY a HAVING avg(c) >= 0";

}  // namespace
}  // namespace imp

int main() {
  using namespace imp;
  bench::PrintFigureHeader("Figure 11f / 12f",
                           "Q_sketch: partition granularity (#frag)");
  const size_t frag_counts[] = {10, 100, 1000, 5000};
  const size_t realistic[] = {10, 50, 100, 500, 1000};

  bench::SeriesTable table("#frag", {"FM(ms)", "d=10", "d=50", "d=100",
                                     "d=500", "d=1000", "d=5%"});
  for (size_t frags : frag_counts) {
    Env env;
    env.Setup(frags);
    Binder binder(&env.db);
    auto plan = binder.BindQuery(kQuery);
    IMP_CHECK_MSG(plan.ok(), plan.status().ToString().c_str());
    double fm =
        bench::TimeFullMaintain(env.db, env.catalog, plan.value()) * 1000.0;
    Maintainer maintainer(&env.db, &env.catalog, plan.value());
    IMP_CHECK(maintainer.Initialize().ok());
    std::vector<double> row{fm};
    for (size_t d : realistic) {
      row.push_back(
          bench::TimeMaintain(&maintainer, [&] { env.InsertLeft(d); }) *
          1000.0);
    }
    size_t d5 = env.spec.distinct_keys * env.spec.left_per_key / 20 + 1;
    row.push_back(
        bench::TimeMaintain(&maintainer, [&] { env.InsertLeft(d5); }) * 1000.0);
    table.AddRow(std::to_string(frags), row);
  }
  table.Print();
  return 0;
}
