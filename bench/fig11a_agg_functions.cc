// Figure 11a / 12a: Q_having — varying the number of aggregation functions
// (1, 2, 3, 10) in the HAVING clause (Appendix A.1.1).
//  11a: realistic delta sizes 10..1000 (IMP) vs FM.
//  12a: break-even sweep with deltas up to ~8% of the table.
// Partition on the group-by attribute a (rule R2; the queries use AVG).

#include <cstdio>

#include "bench_util.h"

namespace imp {
namespace {

constexpr size_t kBaseRows = 100000;
constexpr size_t kGroups = 500;

std::string QueryWithAggs(int num_aggs) {
  std::string sql = "SELECT a, avg(b) AS ab FROM r500 GROUP BY a";
  static const char* cols[] = {"c", "d", "e", "f", "g", "h", "i", "j", "b"};
  if (num_aggs > 1) {
    sql += " HAVING ";
    for (int i = 0; i < num_aggs - 1; ++i) {
      if (i > 0) sql += " AND ";
      sql += std::string("avg(") + cols[i % 9] + ") > 0";
    }
  }
  return sql;
}

struct Env {
  Database db;
  PartitionCatalog catalog;
  SyntheticSpec spec;
  Rng rng{21};
  int64_t next_id = 0;

  void Setup() {
    spec.name = "r500";
    spec.num_rows = bench::ScaledRows(kBaseRows);
    spec.num_groups = kGroups;
    IMP_CHECK(CreateSyntheticTable(&db, spec).ok());
    next_id = static_cast<int64_t>(spec.num_rows);
    IMP_CHECK(catalog
                  .Register(RangePartition::EquiWidthInt(
                      "r500", "a", 1, 0, kGroups - 1, 100))
                  .ok());
  }

  void Insert(size_t n) {
    std::vector<Tuple> rows;
    rows.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      rows.push_back(SyntheticRow(spec, next_id++, &rng));
    }
    IMP_CHECK(db.Insert("r500", rows).ok());
  }
};

}  // namespace
}  // namespace imp

int main() {
  using namespace imp;
  bench::PrintFigureHeader("Figure 11a / 12a",
                           "Q_having: number of aggregation functions");
  Env env;
  env.Setup();
  const int agg_counts[] = {1, 2, 3, 10};
  const size_t realistic[] = {10, 50, 100, 500, 1000};

  std::printf("\n-- Fig 11a: realistic deltas, maintenance time (ms) --\n");
  bench::SeriesTable t11("#aggs",
                         {"FM(ms)", "d=10", "d=50", "d=100", "d=500", "d=1000"});
  for (int n : agg_counts) {
    Binder binder(&env.db);
    auto plan = binder.BindQuery(QueryWithAggs(n));
    IMP_CHECK_MSG(plan.ok(), plan.status().ToString().c_str());
    Maintainer maintainer(&env.db, &env.catalog, plan.value());
    IMP_CHECK(maintainer.Initialize().ok());
    std::vector<double> row;
    row.push_back(bench::TimeFullMaintain(env.db, env.catalog, plan.value()) *
                  1000.0);
    for (size_t d : realistic) {
      row.push_back(
          bench::TimeMaintain(&maintainer, [&] { env.Insert(d); }) * 1000.0);
    }
    t11.AddRow(std::to_string(n), row);
  }
  t11.Print();

  std::printf("\n-- Fig 12a: break-even sweep, delta as %% of table (ms) --\n");
  const double fractions[] = {0.005, 0.01, 0.02, 0.05, 0.08};
  bench::SeriesTable t12("#aggs",
                         {"FM(ms)", "0.5%", "1%", "2%", "5%", "8%"});
  for (int n : agg_counts) {
    Binder binder(&env.db);
    auto plan = binder.BindQuery(QueryWithAggs(n));
    IMP_CHECK(plan.ok());
    Maintainer maintainer(&env.db, &env.catalog, plan.value());
    IMP_CHECK(maintainer.Initialize().ok());
    std::vector<double> row;
    row.push_back(bench::TimeFullMaintain(env.db, env.catalog, plan.value()) *
                  1000.0);
    for (double f : fractions) {
      size_t d = static_cast<size_t>(f * static_cast<double>(env.spec.num_rows));
      row.push_back(
          bench::TimeMaintain(&maintainer, [&] { env.Insert(d); }) * 1000.0);
    }
    t12.AddRow(std::to_string(n), row);
  }
  t12.Print();
  return 0;
}
