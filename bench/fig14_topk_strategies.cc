// Figures 14 and 15: top-k maintenance under deletion strategies with
// truncated top-l state (Sec. 8.4.3).
//
// Q_topk (Appendix A.3): SELECT a, avg(b) FROM R GROUP BY a ORDER BY a
// LIMIT 10, table with 50k rows / 5k groups (~10 rows per group).
// Strategies: (1) always delete the 2 minimal groups, (2) R:M ratios 2:1
// and 4:1 mixing random deletions with minimal-group deletions, (3) purely
// random deletions. For l ∈ {20, 50, 100} we report total maintenance
// runtime and the number of forced full recaptures (Fig. 14) plus the
// operator-state memory trajectory (Fig. 15).

#include <cstdio>

#include "bench_util.h"

namespace imp {
namespace {

constexpr size_t kBaseRows = 50000;
constexpr size_t kGroups = 5000;

struct Env {
  Database db;
  PartitionCatalog catalog;
  SyntheticSpec spec;
  Rng rng{91};
  int64_t next_min_group = 0;

  void Setup() {
    spec.name = "t";
    spec.num_rows = bench::ScaledRows(kBaseRows);
    spec.num_groups = kGroups;
    IMP_CHECK(CreateSyntheticTable(&db, spec).ok());
    IMP_CHECK(catalog
                  .Register(RangePartition::EquiWidthInt("t", "a", 1, 0,
                                                         kGroups - 1, 100))
                  .ok());
  }

  void DeleteMinimalGroups() {
    int64_t lo = next_min_group;
    next_min_group += 2;
    IMP_CHECK(db.Delete("t", [lo](const Tuple& row) {
                  int64_t a = row[1].AsInt();
                  return a >= lo && a < lo + 2;
                }).ok());
  }

  void DeleteRandom(size_t n) {
    int64_t group = rng.UniformInt(next_min_group,
                                   static_cast<int64_t>(kGroups) - 1);
    IMP_CHECK(db.Delete("t",
                        [group](const Tuple& row) {
                          return row[1].AsInt() >= group;
                        },
                        n)
                  .ok());
  }
};

struct StrategyResult {
  double total_seconds = 0;
  size_t recaptures = 0;
  std::vector<double> memory_kb;  // trajectory every 10 updates
};

StrategyResult RunStrategy(const std::string& strategy, size_t buffer,
                           size_t num_updates) {
  Env env;
  env.Setup();
  Binder binder(&env.db);
  auto plan = binder.BindQuery(
      "SELECT a, avg(b) AS ab FROM t GROUP BY a ORDER BY a LIMIT 10");
  IMP_CHECK_MSG(plan.ok(), plan.status().ToString().c_str());
  MaintainerOptions opts;
  opts.topk_buffer = buffer;
  Maintainer maintainer(&env.db, &env.catalog, plan.value(), opts);
  IMP_CHECK(maintainer.Initialize().ok());

  StrategyResult result;
  for (size_t u = 0; u < num_updates; ++u) {
    // Pick the update per strategy.
    if (strategy == "min-groups") {
      env.DeleteMinimalGroups();
    } else if (strategy == "random") {
      env.DeleteRandom(20);
    } else if (strategy == "2:1") {
      if (u % 3 < 2) {
        env.DeleteRandom(20);
      } else {
        env.DeleteMinimalGroups();
      }
    } else {  // "4:1"
      if (u % 5 < 4) {
        env.DeleteRandom(20);
      } else {
        env.DeleteMinimalGroups();
      }
    }
    result.total_seconds += bench::TimeSeconds([&] {
      auto r = maintainer.MaintainFromBackend();
      IMP_CHECK_MSG(r.ok(), r.status().ToString().c_str());
    });
    if (u % 10 == 0) {
      result.memory_kb.push_back(
          static_cast<double>(maintainer.StateBytes()) / 1024.0);
    }
  }
  result.recaptures = maintainer.stats().recaptures;
  return result;
}

}  // namespace
}  // namespace imp

int main() {
  using namespace imp;
  bench::PrintFigureHeader(
      "Figures 14 & 15",
      "top-k deletion strategies with truncated state (Q_topk)");
  const size_t buffers[] = {20, 50, 100};
  const char* strategies[] = {"min-groups", "2:1", "4:1", "random"};
  const size_t updates = 120;

  for (const char* strategy : strategies) {
    std::printf("\n-- strategy: %s (%zu updates) --\n", strategy, updates);
    bench::SeriesTable table(
        "l", {"total(ms)", "recaptures", "mem@start(KB)", "mem@mid(KB)",
              "mem@end(KB)"});
    for (size_t l : buffers) {
      StrategyResult r = RunStrategy(strategy, l, updates);
      double mem_start = r.memory_kb.empty() ? 0 : r.memory_kb.front();
      double mem_mid =
          r.memory_kb.empty() ? 0 : r.memory_kb[r.memory_kb.size() / 2];
      double mem_end = r.memory_kb.empty() ? 0 : r.memory_kb.back();
      table.AddRow(std::to_string(l),
                   {r.total_seconds * 1000.0,
                    static_cast<double>(r.recaptures), mem_start, mem_mid,
                    mem_end});
    }
    table.Print();
  }
  return 0;
}
