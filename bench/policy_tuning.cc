// bench_policy_tuning — fixed vs self-tuning maintenance policies under a
// workload whose delta windows repeatedly OUTGROW the sketch (the PR 9
// tentpole claim, measured).
//
// Two identical systems run the same statement stream:
//
//   fixed  — PolicyMode::kFixed: always-incremental repair, eager rounds
//            at their configured cadence (today's behaviour, the
//            reference);
//   tuned  — PolicyMode::kCostBased: the per-sketch cost ledger switches
//            outgrown windows to FM recapture, and eager flushes defer
//            under ingest-queue pressure.
//
// Workload: a steady trickle punctuated by churn bursts (insert a
// table-sized batch, then delete it) — each burst leaves a pending delta
// window of ~2x the table's rows, the regime where replaying the log
// costs more than rebuilding from base tables. Reported per twin: p99
// maintenance stall (the longest MaintainAll the workload observes) and
// total maintenance seconds. A separate pressure phase drives the eager
// path through a wedged-then-released ingestion backlog and reports the
// deferral counters.
//
// Hard gates (exit non-zero):
//   * every query result of both twins is bit-identical to the plain
//     executor's reference at the same watermark — the policies may move
//     work, never answers;
//   * the tuned run switched incremental -> recapture at least once
//     (policy_recaptures >= 1);
//   * the tuned pressure phase deferred at least one eager round
//     (rounds_deferred >= 1).
//
// Metrics land in BENCH_PR9.json (override with IMP_BENCH_JSON).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "exec/executor.h"

namespace imp {
namespace {

constexpr size_t kGroups = 200;
constexpr const char* kTable = "edbp";

std::string BenchQuery(size_t rows) {
  int64_t rows_per_group = static_cast<int64_t>(rows / kGroups) + 1;
  return "SELECT a, sum(b) AS s FROM edbp GROUP BY a HAVING sum(b) > " +
         std::to_string(rows_per_group * 400);
}

Relation MustQuery(ImpSystem* system, const std::string& sql) {
  auto result = system->Query(sql);
  IMP_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  return std::move(result).value();
}

/// Reference over the database's current published state.
Relation Reference(const Database& db, const std::string& sql) {
  PlanPtr plan = [&] {
    Binder binder(&db);
    auto bound = binder.BindQuery(sql);
    IMP_CHECK_MSG(bound.ok(), bound.status().ToString().c_str());
    return std::move(bound).value();
  }();
  Executor exec(&db);
  auto result = exec.Execute(plan);
  IMP_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  return std::move(result).value();
}

void Gate(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "POLICY-TUNING GATE FAILED: %s\n", what);
    std::exit(1);
  }
}

// ---- Phase A/B: outgrown-window maintenance, fixed vs tuned ----------------

struct MaintainResult {
  std::vector<double> round_seconds;   ///< per-MaintainAll wall time
  std::vector<std::string> results;    ///< per-round query result strings
  double maintain_seconds = 0;         ///< stats().maintain_seconds
  size_t policy_recaptures = 0;
  size_t policy_switches = 0;
};

MaintainResult RunOutgrownWorkload(PolicyMode mode, size_t base_rows,
                                   size_t rounds) {
  Database db;
  SyntheticSpec spec;
  spec.name = kTable;
  spec.num_rows = base_rows;
  spec.num_groups = kGroups;
  IMP_CHECK(CreateSyntheticTable(&db, spec).ok());

  ImpConfig config;
  config.mode = ExecutionMode::kIncremental;
  config.strategy = MaintenanceStrategy::kLazy;
  config.policy.mode = mode;
  ImpSystem system(&db, config);
  IMP_CHECK(system
                .RegisterPartition(RangePartition::EquiWidthInt(
                    kTable, "a", 1, 0, kGroups - 1, 100))
                .ok());
  const std::string sql = BenchQuery(base_rows);
  MustQuery(&system, sql);  // capture

  MaintainResult out;
  Rng rng(17);
  int64_t next_id = static_cast<int64_t>(base_rows);
  for (size_t round = 0; round < rounds; ++round) {
    if (round % 3 == 2) {
      // Churn burst: insert a table-sized batch, then delete exactly it.
      // The pending window at the next cut is ~2x the table's rows —
      // replaying it through the operators costs more than one rebuild
      // from base tables, so the cost model should recapture here.
      BoundUpdate burst;
      burst.kind = BoundUpdate::Kind::kInsert;
      burst.table = kTable;
      const int64_t first = next_id;
      for (size_t r = 0; r < base_rows; ++r) {
        burst.rows.push_back(SyntheticRow(spec, next_id++, &rng));
      }
      IMP_CHECK(system.UpdateBound(burst).ok());
      IMP_CHECK(system
                    .Update("DELETE FROM edbp WHERE id >= " +
                            std::to_string(first) + " AND id <= " +
                            std::to_string(next_id - 1))
                    .ok());
    } else {
      // Trickle: a small delta the incremental engine should keep.
      BoundUpdate trickle;
      trickle.kind = BoundUpdate::Kind::kInsert;
      trickle.table = kTable;
      const size_t n = std::max<size_t>(1, base_rows / 100);
      for (size_t r = 0; r < n; ++r) {
        trickle.rows.push_back(SyntheticRow(spec, next_id++, &rng));
      }
      IMP_CHECK(system.UpdateBound(trickle).ok());
    }
    out.round_seconds.push_back(bench::TimeSeconds([&] {
      Status st = system.MaintainAll();
      IMP_CHECK_MSG(st.ok(), st.ToString().c_str());
    }));
    Relation expected = Reference(db, sql);
    Relation got = MustQuery(&system, sql);
    Gate(got.SameBag(expected),
         "query result diverged from the plain-executor reference");
    out.results.push_back(got.ToString());
  }
  out.maintain_seconds = system.stats().maintain_seconds;
  out.policy_recaptures = system.stats().policy_recaptures;
  out.policy_switches = system.stats().policy_switches;
  return out;
}

// ---- Phase C: eager-round deferral under ingest-queue pressure -------------

struct PressureResult {
  double drain_seconds = 0;  ///< release-to-drained wall time
  size_t rounds_deferred = 0;
  size_t batch_rounds = 0;
};

PressureResult RunPressure(PolicyMode mode, size_t base_rows, size_t backlog) {
  Database db;
  SyntheticSpec spec;
  spec.name = kTable;
  spec.num_rows = base_rows;
  spec.num_groups = kGroups;
  IMP_CHECK(CreateSyntheticTable(&db, spec).ok());

  ImpConfig config;
  config.mode = ExecutionMode::kIncremental;
  config.strategy = MaintenanceStrategy::kEager;
  config.eager_batch_size = 1;
  config.async_ingestion = true;
  config.ingest_queue_capacity = 32;
  config.policy.mode = mode;
  config.policy.defer_queue_fraction = 0.25;  // threshold: 8 of 32
  // One statement per apply cycle so every eager decision observes the
  // real backlog (adaptive sizing would drain the burst in one cycle and
  // leave nothing to defer on — it is measured by its own counters, not
  // in this phase).
  config.policy.adaptive_ingest_batch = false;
  ImpSystem system(&db, config);
  IMP_CHECK(system
                .RegisterPartition(RangePartition::EquiWidthInt(
                    kTable, "a", 1, 0, kGroups - 1, 100))
                .ok());
  const std::string sql = BenchQuery(base_rows);
  MustQuery(&system, sql);  // capture

  // Deterministic pressure: wedge the worker on the table's write stripe,
  // pile a backlog up behind it, then release and time the drain. Every
  // applied statement triggers an eager decision against the backlog the
  // queue actually holds at that moment.
  Rng rng(23);
  int64_t next_id = static_cast<int64_t>(base_rows);
  auto one_row = [&] {
    BoundUpdate update;
    update.kind = BoundUpdate::Kind::kInsert;
    update.table = kTable;
    update.rows.push_back(SyntheticRow(spec, next_id++, &rng));
    return update;
  };
  auto stripe = db.WriteSession(kTable);
  IMP_CHECK(system.UpdateBound(one_row()).ok());  // popped, stuck mid-apply
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (system.Health().ingest_queue_depth != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  Gate(system.Health().ingest_queue_depth == 0, "worker did not wedge");
  for (size_t i = 0; i < backlog; ++i) {
    IMP_CHECK(system.UpdateBound(one_row()).ok());
  }
  PressureResult out;
  stripe.unlock();
  out.drain_seconds = bench::TimeSeconds([&] {
    Status st = system.WaitForIngest();
    IMP_CHECK_MSG(st.ok(), st.ToString().c_str());
  });
  IMP_CHECK(system.MaintainAll().ok());
  Relation expected = Reference(db, sql);
  Gate(MustQuery(&system, sql).SameBag(expected),
       "pressure-phase query result diverged from the reference");
  out.rounds_deferred = system.stats().rounds_deferred;
  out.batch_rounds = system.stats().batch_rounds;
  return out;
}

}  // namespace
}  // namespace imp

int main() {
  using namespace imp;

  bench::PrintFigureHeader(
      "policy_tuning",
      "Fixed vs self-tuning maintenance under outgrown delta windows");

  const size_t base_rows = bench::ScaledRows(20000);
  const size_t rounds = 15;  // 5 churn bursts, 10 trickle rounds

  MaintainResult fixed = RunOutgrownWorkload(PolicyMode::kFixed, base_rows,
                                             rounds);
  MaintainResult tuned = RunOutgrownWorkload(PolicyMode::kCostBased, base_rows,
                                             rounds);

  // Bit-identical across the twins at every matched watermark.
  Gate(fixed.results == tuned.results,
       "tuned query results diverged from the fixed-policy twin");
  // The tuned run must actually have switched to recapture on the bursts.
  Gate(tuned.policy_recaptures >= 1,
       "no incremental -> recapture switch despite outgrown windows");
  Gate(fixed.policy_recaptures == 0, "fixed twin took a policy decision");

  double fixed_total = 0, tuned_total = 0;
  for (double s : fixed.round_seconds) fixed_total += s;
  for (double s : tuned.round_seconds) tuned_total += s;
  const double fixed_p99 = bench::PercentileUs(fixed.round_seconds, 0.99);
  const double tuned_p99 = bench::PercentileUs(tuned.round_seconds, 0.99);

  const size_t backlog = 24;
  PressureResult pressure_fixed =
      RunPressure(PolicyMode::kFixed, bench::ScaledRows(4000), backlog);
  PressureResult pressure_tuned =
      RunPressure(PolicyMode::kCostBased, bench::ScaledRows(4000), backlog);
  Gate(pressure_tuned.rounds_deferred >= 1,
       "no eager round deferred under queue pressure");
  Gate(pressure_fixed.rounds_deferred == 0, "fixed twin deferred a round");

  bench::SeriesTable table("twin",
                           {"total_maint_s", "p99_stall_ms", "deferred"});
  table.AddRow("fixed", {fixed_total, fixed_p99 / 1e3,
                         static_cast<double>(pressure_fixed.rounds_deferred)});
  table.AddRow("tuned", {tuned_total, tuned_p99 / 1e3,
                         static_cast<double>(pressure_tuned.rounds_deferred)});
  table.Print();
  std::printf("\npolicy recaptures: %zu   policy switches: %zu   "
              "p99 stall tuned/fixed: %.2f   total tuned/fixed: %.2f\n",
              tuned.policy_recaptures, tuned.policy_switches,
              tuned_p99 / fixed_p99, tuned_total / fixed_total);
  std::printf("correctness gate: every result bit-identical to the "
              "fixed-policy reference -- PASSED\n");

  bench::JsonReport json("policy_tuning", "BENCH_PR9.json");
  json.Add("maintenance", "fixed_total_s", fixed_total);
  json.Add("maintenance", "tuned_total_s", tuned_total);
  json.Add("maintenance", "tuned_over_fixed_total",
           tuned_total / fixed_total);
  json.Add("maintenance", "fixed_p99_stall_us", fixed_p99);
  json.Add("maintenance", "tuned_p99_stall_us", tuned_p99);
  json.Add("maintenance", "tuned_over_fixed_p99", tuned_p99 / fixed_p99);
  json.Add("maintenance", "fixed_maintain_seconds", fixed.maintain_seconds);
  json.Add("maintenance", "tuned_maintain_seconds", tuned.maintain_seconds);
  json.Add("decisions", "policy_recaptures",
           static_cast<double>(tuned.policy_recaptures));
  json.Add("decisions", "policy_switches",
           static_cast<double>(tuned.policy_switches));
  json.Add("pressure", "rounds_deferred",
           static_cast<double>(pressure_tuned.rounds_deferred));
  json.Add("pressure", "fixed_drain_s", pressure_fixed.drain_seconds);
  json.Add("pressure", "tuned_drain_s", pressure_tuned.drain_seconds);
  json.Write();
  return 0;
}
