// bench_concurrent_queries — reader scaling of the sharded, snapshot-
// isolated sketch front end (the PR 4 tentpole claim).
//
// For 8 sketches over one table, N reader threads issue sketch-answered
// queries for a fixed wall-clock window, in two regimes:
//
//   idle   — no writers: every query validates its pinned snapshot and
//            executes lock-free (the pure reader-scaling ceiling);
//   loaded — an asynchronous ingestion stream plus eager maintenance
//            rounds (every 8 statements, on the worker) run concurrently:
//            readers race the worker's shard-exclusive repairs, hitting
//            the snapshot fast path when fresh and the lazy-repair slow
//            path when stale.
//
// Reported per (readers, regime): aggregate QPS and per-query p50/p99
// latency, merged into BENCH_PR4.json. Hard gate (exit non-zero): after
// draining and a final MaintainAll, every sketch-answered query must be
// bit-identical to a no-sketch full scan — concurrency must not buy
// throughput with stale or torn sketches. The scaling bar itself (8-reader
// loaded QPS >= 3x 1-reader loaded QPS) is only enforced with
// IMP_BENCH_ENFORCE_SCALING=1: it needs real cores (a 1-CPU container
// cannot express reader parallelism), so shared/virtualized runners record
// the ratio instead of gating on it.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "exec/executor.h"
#include "workload/driver.h"

namespace imp {
namespace {

constexpr size_t kSketches = 8;
constexpr size_t kEagerBatch = 8;
constexpr size_t kReaderCounts[] = {1, 4, 8};
constexpr double kMeasureSeconds = 0.35;

std::vector<std::string> SketchQueries(size_t rows_per_group) {
  const char* metrics[] = {"b", "c", "d", "e", "f", "g", "h", "i"};
  std::vector<std::string> queries;
  for (size_t s = 0; s < kSketches; ++s) {
    queries.push_back("SELECT a, sum(" + std::string(metrics[s]) +
                      ") AS s FROM edb1 GROUP BY a HAVING sum(" +
                      std::string(metrics[s]) + ") > " +
                      std::to_string(rows_per_group * 400));
  }
  return queries;
}

struct RunResult {
  double qps = 0;
  double p50_us = 0;
  double p99_us = 0;
  size_t queries = 0;
  size_t snapshot_reads = 0;  ///< queries served lock-free from snapshots
  bool correct = true;
};

RunResult RunWindow(size_t num_readers, bool loaded) {
  Database db;
  SyntheticSpec spec;
  spec.name = "edb1";
  spec.num_rows = bench::ScaledRows(20000);
  spec.num_groups = 500;
  IMP_CHECK(CreateSyntheticTable(&db, spec).ok());

  ImpConfig config;
  config.mode = ExecutionMode::kIncremental;
  config.strategy =
      loaded ? MaintenanceStrategy::kEager : MaintenanceStrategy::kLazy;
  config.eager_batch_size = kEagerBatch;
  config.shared_delta_fetch = true;
  config.maintenance_threads = 1;
  config.async_ingestion = loaded;
  config.ingest_queue_capacity = 256;
  // Batched worker applies: several queued statements per publication
  // cycle, stressing the lock-free read path against coarse snapshot
  // swaps instead of per-statement ones.
  config.ingest_apply_batch = 8;
  ImpSystem system(&db, config);
  IMP_CHECK(system
                .RegisterPartition(RangePartition::EquiWidthInt(
                    "edb1", "a", 1, 0, 499, 100))
                .ok());

  size_t rows_per_group = spec.num_rows / 500 + 1;
  std::vector<std::string> queries = SketchQueries(rows_per_group);
  for (const std::string& q : queries) {
    auto result = system.Query(q);
    IMP_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  }
  IMP_CHECK(system.sketches().size() == kSketches);

  // Measurement window: N readers round-robin over the sketch queries
  // until the deadline; the loaded regime adds a producer enqueueing
  // single-row inserts (the worker applies them and fires eager rounds).
  std::atomic<bool> stop_producer{false};
  std::vector<std::vector<double>> latencies(num_readers);
  auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration<double>(kMeasureSeconds);

  std::thread producer;
  if (loaded) {
    producer = std::thread([&] {
      auto gen = SyntheticInsertGen("edb1", 1, 500,
                                    static_cast<int64_t>(spec.num_rows));
      Rng rng(11);
      while (!stop_producer.load(std::memory_order_acquire)) {
        BoundUpdate update = gen(rng);
        IMP_CHECK(system.UpdateBound(update).ok());
      }
    });
  }

  auto measure_start = std::chrono::steady_clock::now();
  std::vector<std::thread> readers;
  readers.reserve(num_readers);
  for (size_t r = 0; r < num_readers; ++r) {
    readers.emplace_back([&, r] {
      size_t next = r;
      while (std::chrono::steady_clock::now() < deadline) {
        const std::string& sql = queries[next % queries.size()];
        ++next;
        double seconds = bench::TimeSeconds([&] {
          auto result = system.Query(sql);
          IMP_CHECK_MSG(result.ok(), result.status().ToString().c_str());
        });
        latencies[r].push_back(seconds);
      }
    });
  }
  for (std::thread& t : readers) t.join();
  double measured =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    measure_start)
          .count();
  stop_producer.store(true, std::memory_order_release);
  if (producer.joinable()) producer.join();
  IMP_CHECK(system.WaitForIngest().ok());
  IMP_CHECK(system.MaintainAll().ok());

  RunResult run;
  run.snapshot_reads = system.stats().snapshot_reads;
  std::vector<double> all;
  for (const auto& reader : latencies) {
    run.queries += reader.size();
    all.insert(all.end(), reader.begin(), reader.end());
  }
  run.qps = measured > 0 ? static_cast<double>(run.queries) / measured : 0;
  run.p50_us = bench::PercentileUs(all, 0.50);
  run.p99_us = bench::PercentileUs(all, 0.99);

  // Correctness gate: every sketch-answered query on the drained system
  // must equal a no-sketch full scan of the same backend state.
  Binder binder(&db);
  Executor exec(&db);
  for (const std::string& sql : queries) {
    auto plan = binder.BindQuery(sql);
    IMP_CHECK(plan.ok());
    auto full = exec.Execute(plan.value());
    auto through_sketch = system.Query(sql);
    IMP_CHECK(full.ok());
    IMP_CHECK_MSG(through_sketch.ok(),
                  through_sketch.status().ToString().c_str());
    run.correct =
        run.correct && full.value().SameBag(through_sketch.value());
  }
  return run;
}

/// Median QPS/latency over Reps(); correctness AND-ed across reps.
RunResult MedianRun(size_t num_readers, bool loaded) {
  std::vector<RunResult> reps;
  for (int r = 0; r < bench::Reps(); ++r) {
    reps.push_back(RunWindow(num_readers, loaded));
  }
  std::sort(reps.begin(), reps.end(),
            [](const RunResult& a, const RunResult& b) { return a.qps < b.qps; });
  RunResult median = reps[reps.size() / 2];
  for (const RunResult& rep : reps) {
    median.correct &= rep.correct;
    // Gate on the weakest rep: EVERY window must have served lock-free
    // snapshot reads.
    median.snapshot_reads = std::min(median.snapshot_reads, rep.snapshot_reads);
  }
  return median;
}

int Main() {
  bench::PrintFigureHeader(
      "concurrent_queries",
      "Sharded front end: reader scaling under maintenance+ingest load");

  bench::JsonReport json("concurrent_queries", "BENCH_PR4.json");
  bench::SeriesTable table(
      "readers", {"idle QPS", "idle p99 us", "loaded QPS", "loaded p50 us",
                  "loaded p99 us"});

  bool correct = true;
  size_t min_loaded_snapshot_reads = SIZE_MAX;
  double qps_1_loaded = 0, qps_max_loaded = 0;
  for (size_t readers : kReaderCounts) {
    RunResult idle = MedianRun(readers, /*loaded=*/false);
    RunResult load = MedianRun(readers, /*loaded=*/true);
    correct = correct && idle.correct && load.correct;
    min_loaded_snapshot_reads =
        std::min(min_loaded_snapshot_reads, load.snapshot_reads);
    if (readers == 1) qps_1_loaded = load.qps;
    qps_max_loaded = load.qps;

    table.AddRow(std::to_string(readers),
                 {idle.qps, idle.p99_us, load.qps, load.p50_us, load.p99_us});
    std::string group = "readers_" + std::to_string(readers);
    json.Add(group, "idle_qps", idle.qps);
    json.Add(group, "idle_p50_us", idle.p50_us);
    json.Add(group, "idle_p99_us", idle.p99_us);
    json.Add(group, "loaded_qps", load.qps);
    json.Add(group, "loaded_p50_us", load.p50_us);
    json.Add(group, "loaded_p99_us", load.p99_us);
    json.Add(group, "loaded_snapshot_reads",
             static_cast<double>(load.snapshot_reads));
  }
  table.Print();

  double scaling =
      qps_1_loaded > 0 ? qps_max_loaded / qps_1_loaded : 0;
  unsigned hw = std::thread::hardware_concurrency();
  json.Add("scaling", "loaded_qps_8_over_1", scaling);
  json.Add("scaling", "hardware_threads", static_cast<double>(hw));
  json.Add("scaling", "results_identical", correct ? 1.0 : 0.0);
  json.Write();
  std::printf(
      "\nloaded QPS scaling 1 -> 8 readers: %.2fx (on %u hardware threads)\n"
      "correctness (drained sketch answers == full scans): %s\n"
      "lock-free read path (loaded snapshot_reads > 0 in every window): %s\n",
      scaling, hw, correct ? "PASS" : "FAIL",
      min_loaded_snapshot_reads > 0 ? "PASS" : "FAIL");
  std::printf("JSON report merged into %s\n",
              std::getenv("IMP_BENCH_JSON") != nullptr
                  ? std::getenv("IMP_BENCH_JSON")
                  : "BENCH_PR4.json");

  if (!correct) {
    std::fprintf(stderr,
                 "FAIL: sketch answers diverged from full scans after the "
                 "concurrent run\n");
    return 1;
  }
  if (min_loaded_snapshot_reads == 0) {
    // Hard gate: under maintenance+ingest load, queries must still be
    // answered through the lock-free storage-snapshot fast path — zero
    // snapshot reads would mean every query fell back to shard-exclusive
    // repair, i.e. the new read path is not actually engaged.
    std::fprintf(stderr,
                 "FAIL: a loaded window served no lock-free snapshot reads\n");
    return 1;
  }
  const char* enforce = std::getenv("IMP_BENCH_ENFORCE_SCALING");
  if (enforce != nullptr && enforce[0] == '1') {
    if (scaling < 3.0) {
      std::fprintf(stderr,
                   "FAIL: 8-reader loaded QPS is only %.2fx the single-reader "
                   "QPS (bar: >= 3x)\n",
                   scaling);
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace imp

int main() { return imp::Main(); }
