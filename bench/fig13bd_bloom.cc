// Figure 13b,d: the bloom-filter join optimization (Sec. 7.2 / 8.4.2).
// Q_joinsel over a selective join; delta rows without join partners are
// pruned by the bloom filters before the backend round trip. We sweep join
// selectivity and delta size with the optimization on and off, and report
// the pruned-row and round-trip counters.

#include <cstdio>

#include "bench_util.h"

namespace imp {
namespace {

struct Env {
  Database db;
  PartitionCatalog catalog;
  JoinPairSpec spec;
  Rng rng{81};
  int64_t next_id = 0;

  void Setup(double selectivity) {
    spec.left_name = "t";
    spec.right_name = "h";
    spec.distinct_keys = bench::ScaledRows(20000);
    spec.left_per_key = 1;
    spec.right_per_key = 5;
    spec.selectivity = 1.0;
    IMP_CHECK(CreateJoinPair(&db, spec).ok());
    next_id = static_cast<int64_t>(spec.distinct_keys);
    selectivity_ = selectivity;
    IMP_CHECK(catalog
                  .Register(RangePartition::EquiWidthInt(
                      "t", "a", 1, 0,
                      static_cast<int64_t>(spec.distinct_keys) * 10, 100))
                  .ok());
  }

  /// Insert left rows of which only `selectivity_` have join partners
  /// (non-joining rows use keys outside the right table's domain).
  void InsertLeft(size_t n) {
    std::vector<Tuple> rows;
    for (size_t i = 0; i < n; ++i) {
      bool joins = rng.Chance(selectivity_);
      int64_t key =
          joins ? rng.UniformInt(0, static_cast<int64_t>(spec.distinct_keys) - 1)
                : rng.UniformInt(static_cast<int64_t>(spec.distinct_keys) * 5,
                                 static_cast<int64_t>(spec.distinct_keys) * 9);
      rows.push_back(JoinLeftRow(spec, next_id++, key, &rng));
    }
    IMP_CHECK(db.Insert("t", rows).ok());
  }

  double selectivity_ = 1.0;
};

const char* kQuery =
    "SELECT a, avg(b) AS ab FROM t JOIN h ON (a = ttid) "
    "WHERE b >= 0 GROUP BY a HAVING avg(c) >= 0";

}  // namespace
}  // namespace imp

int main() {
  using namespace imp;
  bench::PrintFigureHeader("Figure 13b,d", "bloom-filter join optimization");
  const double selectivities[] = {0.01, 0.10, 0.50};
  const size_t deltas[] = {10, 100, 1000, 5000};

  for (double sel : selectivities) {
    std::printf("\n-- delta-join selectivity %.0f%% --\n", sel * 100);
    bench::SeriesTable table(
        "delta", {"bloom(ms)", "no-bloom(ms)", "pruned", "round-trips"});
    Env env;
    env.Setup(sel);
    Binder binder(&env.db);
    auto plan = binder.BindQuery(kQuery);
    IMP_CHECK_MSG(plan.ok(), plan.status().ToString().c_str());

    MaintainerOptions with_bloom, without_bloom;
    without_bloom.bloom_filters = false;
    Maintainer m_with(&env.db, &env.catalog, plan.value(), with_bloom);
    Maintainer m_without(&env.db, &env.catalog, plan.value(), without_bloom);
    IMP_CHECK(m_with.Initialize().ok());
    IMP_CHECK(m_without.Initialize().ok());

    for (size_t d : deltas) {
      size_t pruned_before = m_with.stats().bloom_pruned_rows;
      size_t trips_before = m_with.stats().join_round_trips;
      double with_time =
          bench::TimeMaintain(&m_with, [&] { env.InsertLeft(d); });
      double without_time =
          bench::TimeMaintain(&m_without, [&] { env.InsertLeft(d); });
      table.AddRow(
          std::to_string(d),
          {with_time * 1000.0, without_time * 1000.0,
           static_cast<double>(m_with.stats().bloom_pruned_rows -
                               pruned_before),
           static_cast<double>(m_with.stats().join_round_trips - trips_before)});
    }
    table.Print();
  }
  return 0;
}
