// Figure 10 (a-b): incremental vs full maintenance on the Crimes dataset.
//  (a): CQ1 (crimes per beat/year) and CQ2 (areas with > threshold crimes),
//       realistic delta sizes 10..1000, FM baseline.
//  (b): insert and delete deltas.
// Partition: crimes.beat (group-aligned for both queries).

#include <cstdio>

#include "bench_util.h"
#include "workload/crimes.h"

namespace imp {
namespace {

struct CrimesEnv {
  Database db;
  PartitionCatalog catalog;
  CrimesSpec spec;
  Rng rng{5};
  int64_t next_id = 0;
};

void Setup(CrimesEnv* env) {
  env->spec.num_rows = bench::ScaledRows(200000);
  IMP_CHECK(CreateCrimesTable(&env->db, env->spec).ok());
  env->next_id = static_cast<int64_t>(env->spec.num_rows);
  IMP_CHECK(env->catalog
                .Register(RangePartition::EquiWidthInt(
                    "crimes", "beat", 1, 1, env->spec.num_beats, 50))
                .ok());
}

void InsertDelta(CrimesEnv* env, size_t n) {
  std::vector<Tuple> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    rows.push_back(CrimesRow(env->spec, env->next_id++, &env->rng));
  }
  IMP_CHECK(env->db.Insert("crimes", rows).ok());
}

void DeleteDelta(CrimesEnv* env, size_t n) {
  IMP_CHECK(
      env->db.Delete("crimes", [](const Tuple&) { return true; }, n).ok());
}

}  // namespace
}  // namespace imp

int main() {
  using namespace imp;
  bench::PrintFigureHeader("Figure 10",
                           "Crimes dataset: incremental vs full maintenance");
  CrimesEnv env;
  Setup(&env);
  std::printf("rows=%lld beats=%lld\n",
              static_cast<long long>(env.db.GetTable("crimes")->NumRows()),
              static_cast<long long>(env.spec.num_beats));

  const size_t deltas[] = {10, 50, 100, 500, 1000};
  struct QueryDef {
    const char* name;
    std::string sql;
  };
  // CQ2's threshold is scaled with the table so some areas pass.
  int64_t cq2_threshold =
      static_cast<int64_t>(env.spec.num_rows / env.spec.num_beats);
  const QueryDef queries[] = {
      {"CQ1", CrimesCq1Sql()},
      {"CQ2", CrimesCq2Sql(cq2_threshold)},
  };

  bench::SeriesTable table(
      "query", {"FM(ms)", "d=10", "d=50", "d=100", "d=500", "d=1000"});
  for (const QueryDef& q : queries) {
    Binder binder(&env.db);
    auto plan = binder.BindQuery(q.sql);
    IMP_CHECK_MSG(plan.ok(), plan.status().ToString().c_str());
    Maintainer maintainer(&env.db, &env.catalog, plan.value());
    IMP_CHECK(maintainer.Initialize().ok());
    std::vector<double> row;
    row.push_back(bench::TimeFullMaintain(env.db, env.catalog, plan.value()) *
                  1000.0);
    for (size_t d : deltas) {
      row.push_back(
          bench::TimeMaintain(&maintainer, [&] { InsertDelta(&env, d); }) *
          1000.0);
    }
    table.AddRow(q.name, row);
  }
  table.Print();

  std::printf("\n-- (b) insertion vs deletion (CQ2) --\n");
  Binder binder(&env.db);
  auto plan = binder.BindQuery(CrimesCq2Sql(cq2_threshold));
  IMP_CHECK(plan.ok());
  Maintainer maintainer(&env.db, &env.catalog, plan.value());
  IMP_CHECK(maintainer.Initialize().ok());
  bench::SeriesTable mixed("delta", {"insert(ms)", "delete(ms)"});
  for (size_t d : deltas) {
    double ins =
        bench::TimeMaintain(&maintainer, [&] { InsertDelta(&env, d); });
    double del =
        bench::TimeMaintain(&maintainer, [&] { DeleteDelta(&env, d); });
    mixed.AddRow(std::to_string(d), {ins * 1000.0, del * 1000.0});
  }
  mixed.Print();
  return 0;
}
