// Figure 8 (a-l): end-to-end mixed workloads — NS (no sketch) vs FM (full
// maintenance) vs IMP, for query-update ratios 1U5Q / 1U1Q / 5U1Q and
// per-update delta sizes 1 / 20 / 200 / 2000.
//
// Workload: Q_endtoend-style group-by/HAVING template over the synthetic
// table edb1 (Appendix A.1.7) with randomized thresholds sharing one
// template; updates insert `delta` fresh rows. Both FM and IMP start
// without sketches; capture and maintenance cost is included (Sec. 8.1).
//
// Deviation noted in EXPERIMENTS.md: the paper's Q_endtoend uses AVG
// between two thresholds; we use the monotone SUM-threshold variant so the
// [37] reuse check accepts template reuse across constants.

#include <cstdio>
#include <memory>

#include "bench_util.h"

namespace imp {
namespace {

constexpr size_t kBaseRows = 40000;
constexpr size_t kNumGroups = 500;
constexpr size_t kTotalOps = 150;

double RunConfig(ExecutionMode mode, size_t queries_per_round,
                 size_t updates_per_round, size_t delta_rows) {
  Database db;
  SyntheticSpec spec;
  spec.name = "edb1";
  spec.num_rows = bench::ScaledRows(kBaseRows);
  spec.num_groups = kNumGroups;
  IMP_CHECK(CreateSyntheticTable(&db, spec).ok());

  ImpConfig config;
  config.mode = mode;
  config.strategy = MaintenanceStrategy::kLazy;
  ImpSystem system(&db, config);
  if (mode != ExecutionMode::kNoSketch) {
    IMP_CHECK(system
                  .RegisterPartition(RangePartition::EquiWidthInt(
                      "edb1", "b", 2, 0, 3 * kNumGroups, 100))
                  .ok());
  }

  // Threshold generator: the first query uses the base threshold so later
  // (larger) thresholds can reuse its sketch. Thresholds are sized so the
  // HAVING clause keeps roughly the top 10-25% of groups: per-group
  // sum(c) ~= rows_per_group * 1.5 * a for a < kNumGroups.
  int64_t rows_per_group =
      static_cast<int64_t>(spec.num_rows / kNumGroups) + 1;
  // sum(c) per group ~= rows_per_group * 1.5 * a; keep roughly the top 10%
  // of groups (a above 0.9 * kNumGroups) so the sketch is selective.
  int64_t a_cut = static_cast<int64_t>(kNumGroups) * 9 / 10;
  int64_t base_threshold = rows_per_group * 3 * a_cut / 2;
  int64_t step = rows_per_group;
  auto first = std::make_shared<bool>(true);
  auto query_gen = [first, base_threshold, step](Rng& rng) {
    int64_t threshold = base_threshold;
    if (*first) {
      *first = false;
    } else {
      threshold += rng.UniformInt(0, 40) * step;
    }
    return "SELECT a, sum(c) AS sc FROM edb1 GROUP BY a "
           "HAVING sum(c) > " + std::to_string(threshold);
  };

  MixedWorkloadSpec wl;
  wl.total_ops = kTotalOps;
  wl.queries_per_round = queries_per_round;
  wl.updates_per_round = updates_per_round;
  auto result = RunMixedWorkload(
      &system, query_gen,
      SyntheticInsertGen("edb1", delta_rows, kNumGroups,
                         static_cast<int64_t>(spec.num_rows)),
      wl);
  IMP_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  return result.value().total_seconds;
}

}  // namespace
}  // namespace imp

int main() {
  using namespace imp;
  bench::PrintFigureHeader(
      "Figure 8", "mixed workloads: NS vs FM vs IMP (total seconds for " +
                      std::to_string(kTotalOps) + " ops)");

  struct Ratio {
    const char* name;
    size_t queries, updates;
  };
  const Ratio ratios[] = {{"1U5Q", 5, 1}, {"1U1Q", 1, 1}, {"5U1Q", 1, 5}};
  const size_t deltas[] = {1, 20, 200, 2000};

  for (const Ratio& ratio : ratios) {
    std::printf("\n-- ratio %s --\n", ratio.name);
    bench::SeriesTable table("delta", {"NS(s)", "FM(s)", "IMP(s)"});
    for (size_t delta : deltas) {
      double ns = RunConfig(ExecutionMode::kNoSketch, ratio.queries,
                            ratio.updates, delta);
      double fm = RunConfig(ExecutionMode::kFullMaintenance, ratio.queries,
                            ratio.updates, delta);
      double inc = RunConfig(ExecutionMode::kIncremental, ratio.queries,
                             ratio.updates, delta);
      table.AddRow(std::to_string(delta), {ns, fm, inc});
    }
    table.Print();
  }
  return 0;
}
