// Figure 8 (a-l): end-to-end mixed workloads — NS (no sketch) vs FM (full
// maintenance) vs IMP, for query-update ratios 1U5Q / 1U1Q / 5U1Q and
// per-update delta sizes 1 / 20 / 200 / 2000.
//
// Workload: Q_endtoend-style group-by/HAVING template over the synthetic
// table edb1 (Appendix A.1.7) with randomized thresholds sharing one
// template; updates insert `delta` fresh rows. Both FM and IMP start
// without sketches; capture and maintenance cost is included (Sec. 8.1).
//
// Deviation noted in EXPERIMENTS.md: the paper's Q_endtoend uses AVG
// between two thresholds; we use the monotone SUM-threshold variant so the
// [37] reuse check accepts template reuse across constants.

// Extended for the batched maintenance pipeline: every configuration's
// per-phase timings (capture / maintain / query / update) and ops/sec go to
// BENCH_PR1.json, and a second section runs a multi-template eager workload
// comparing per-sketch delta fetch vs shared fetch vs shared + parallel.

#include <cstdio>
#include <memory>
#include <string>

#include "bench_util.h"

namespace imp {
namespace {

constexpr size_t kBaseRows = 40000;
constexpr size_t kNumGroups = 500;
constexpr size_t kTotalOps = 150;

WorkloadResult RunConfig(ExecutionMode mode, size_t queries_per_round,
                         size_t updates_per_round, size_t delta_rows) {
  Database db;
  SyntheticSpec spec;
  spec.name = "edb1";
  spec.num_rows = bench::ScaledRows(kBaseRows);
  spec.num_groups = kNumGroups;
  IMP_CHECK(CreateSyntheticTable(&db, spec).ok());

  ImpConfig config;
  config.mode = mode;
  config.strategy = MaintenanceStrategy::kLazy;
  ImpSystem system(&db, config);
  if (mode != ExecutionMode::kNoSketch) {
    IMP_CHECK(system
                  .RegisterPartition(RangePartition::EquiWidthInt(
                      "edb1", "b", 2, 0, 3 * kNumGroups, 100))
                  .ok());
  }

  // Threshold generator: the first query uses the base threshold so later
  // (larger) thresholds can reuse its sketch. Thresholds are sized so the
  // HAVING clause keeps roughly the top 10-25% of groups: per-group
  // sum(c) ~= rows_per_group * 1.5 * a for a < kNumGroups.
  int64_t rows_per_group =
      static_cast<int64_t>(spec.num_rows / kNumGroups) + 1;
  // sum(c) per group ~= rows_per_group * 1.5 * a; keep roughly the top 10%
  // of groups (a above 0.9 * kNumGroups) so the sketch is selective.
  int64_t a_cut = static_cast<int64_t>(kNumGroups) * 9 / 10;
  int64_t base_threshold = rows_per_group * 3 * a_cut / 2;
  int64_t step = rows_per_group;
  auto first = std::make_shared<bool>(true);
  auto query_gen = [first, base_threshold, step](Rng& rng) {
    int64_t threshold = base_threshold;
    if (*first) {
      *first = false;
    } else {
      threshold += rng.UniformInt(0, 40) * step;
    }
    return "SELECT a, sum(c) AS sc FROM edb1 GROUP BY a "
           "HAVING sum(c) > " + std::to_string(threshold);
  };

  MixedWorkloadSpec wl;
  wl.total_ops = kTotalOps;
  wl.queries_per_round = queries_per_round;
  wl.updates_per_round = updates_per_round;
  auto result = RunMixedWorkload(
      &system, query_gen,
      SyntheticInsertGen("edb1", delta_rows, kNumGroups,
                         static_cast<int64_t>(spec.num_rows)),
      wl);
  IMP_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  return result.value();
}

void RecordResult(bench::JsonReport* json, const std::string& group,
                  const std::string& mode, const WorkloadResult& r) {
  json->Add(group, mode + "_seconds", r.total_seconds);
  json->Add(group, mode + "_ops_per_sec",
            r.total_seconds > 0
                ? static_cast<double>(r.queries_run + r.updates_run) /
                      r.total_seconds
                : 0.0);
  json->Add(group, mode + "_capture_seconds", r.stats.capture_seconds);
  json->Add(group, mode + "_maintain_seconds", r.stats.maintain_seconds);
  json->Add(group, mode + "_query_seconds", r.stats.query_seconds);
  json->Add(group, mode + "_update_seconds", r.stats.update_seconds);
}

// ---- Shared vs per-sketch fetch under a multi-template workload ------------

/// Mixed workload with 4 sketch templates (distinct aggregate columns) under
/// eager maintenance: every flush maintains all sketches in one round, which
/// is where shared delta fetch & annotation and the parallel fan-out pay off.
WorkloadResult RunBatchedConfig(bool shared_fetch, size_t threads,
                                size_t delta_rows) {
  Database db;
  SyntheticSpec spec;
  spec.name = "edb1";
  spec.num_rows = bench::ScaledRows(kBaseRows);
  spec.num_groups = kNumGroups;
  IMP_CHECK(CreateSyntheticTable(&db, spec).ok());

  ImpConfig config;
  config.mode = ExecutionMode::kIncremental;
  config.strategy = MaintenanceStrategy::kEager;
  config.eager_batch_size = 5;
  config.shared_delta_fetch = shared_fetch;
  config.maintenance_threads = threads;
  ImpSystem system(&db, config);
  IMP_CHECK(system
                .RegisterPartition(RangePartition::EquiWidthInt(
                    "edb1", "b", 2, 0, 3 * kNumGroups, 100))
                .ok());

  int64_t rows_per_group =
      static_cast<int64_t>(spec.num_rows / kNumGroups) + 1;
  const char* metrics[] = {"c", "d", "e", "f"};
  auto counter = std::make_shared<size_t>(0);
  auto query_gen = [metrics, counter, rows_per_group](Rng&) {
    const char* col = metrics[(*counter)++ % 4];
    // One fixed threshold per template so each template keeps one sketch.
    return "SELECT a, sum(" + std::string(col) + ") AS s FROM edb1 "
           "GROUP BY a HAVING sum(" + std::string(col) + ") > " +
           std::to_string(rows_per_group * 400);
  };

  MixedWorkloadSpec wl;
  wl.total_ops = kTotalOps;
  wl.queries_per_round = 1;
  wl.updates_per_round = 1;
  auto result = RunMixedWorkload(
      &system, query_gen,
      SyntheticInsertGen("edb1", delta_rows, kNumGroups,
                         static_cast<int64_t>(spec.num_rows)),
      wl);
  IMP_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  return result.value();
}

}  // namespace
}  // namespace imp

int main() {
  using namespace imp;
  bench::PrintFigureHeader(
      "Figure 8", "mixed workloads: NS vs FM vs IMP (total seconds for " +
                      std::to_string(kTotalOps) + " ops)");
  bench::JsonReport json("fig08_mixed_workload");

  struct Ratio {
    const char* name;
    size_t queries, updates;
  };
  const Ratio ratios[] = {{"1U5Q", 5, 1}, {"1U1Q", 1, 1}, {"5U1Q", 1, 5}};
  const size_t deltas[] = {1, 20, 200, 2000};

  for (const Ratio& ratio : ratios) {
    std::printf("\n-- ratio %s --\n", ratio.name);
    bench::SeriesTable table("delta", {"NS(s)", "FM(s)", "IMP(s)"});
    for (size_t delta : deltas) {
      WorkloadResult ns = RunConfig(ExecutionMode::kNoSketch, ratio.queries,
                                    ratio.updates, delta);
      WorkloadResult fm = RunConfig(ExecutionMode::kFullMaintenance,
                                    ratio.queries, ratio.updates, delta);
      WorkloadResult inc = RunConfig(ExecutionMode::kIncremental,
                                     ratio.queries, ratio.updates, delta);
      table.AddRow(std::to_string(delta),
                   {ns.total_seconds, fm.total_seconds, inc.total_seconds});
      std::string group = std::string(ratio.name) + "/delta_" +
                          std::to_string(delta);
      RecordResult(&json, group, "NS", ns);
      RecordResult(&json, group, "FM", fm);
      RecordResult(&json, group, "IMP", inc);
    }
    table.Print();
  }

  // -- shared vs per-sketch fetch, 4 sketches, eager flush every 5 updates --
  std::printf(
      "\n-- multi-template eager workload: per-sketch vs shared vs "
      "shared+parallel maintenance --\n");
  bench::SeriesTable batched(
      "delta", {"per-sketch(s)", "shared(s)", "shared+par(s)"});
  for (size_t delta : deltas) {
    WorkloadResult per_sketch = RunBatchedConfig(false, 1, delta);
    WorkloadResult shared = RunBatchedConfig(true, 1, delta);
    WorkloadResult par = RunBatchedConfig(true, 0, delta);
    batched.AddRow(std::to_string(delta),
                   {per_sketch.total_seconds, shared.total_seconds,
                    par.total_seconds});
    std::string group = "batched/delta_" + std::to_string(delta);
    RecordResult(&json, group, "per_sketch", per_sketch);
    RecordResult(&json, group, "shared", shared);
    RecordResult(&json, group, "shared_parallel", par);
    json.Add(group, "shared_maintain_speedup",
             shared.stats.maintain_seconds > 0
                 ? per_sketch.stats.maintain_seconds /
                       shared.stats.maintain_seconds
                 : 0.0);
  }
  batched.Print();
  json.Write();
  return 0;
}
