// Figure 11b / 12b: Q_groups — varying the number of groups (50, 1K, 5K,
// 50K; the paper's 500K scaled down with the table). IMP maintenance for
// realistic deltas vs FM, plus the break-even sweep.

#include <cstdio>

#include "bench_util.h"

namespace imp {
namespace {

constexpr size_t kBaseRows = 100000;

struct Env {
  Database db;
  PartitionCatalog catalog;
  SyntheticSpec spec;
  Rng rng{31};
  int64_t next_id = 0;

  void Setup(size_t groups) {
    spec.name = "t";
    spec.num_rows = bench::ScaledRows(kBaseRows);
    spec.num_groups = groups;
    IMP_CHECK(CreateSyntheticTable(&db, spec).ok());
    next_id = static_cast<int64_t>(spec.num_rows);
    IMP_CHECK(catalog
                  .Register(RangePartition::EquiWidthInt(
                      "t", "a", 1, 0, static_cast<int64_t>(groups) - 1, 100))
                  .ok());
  }

  void Insert(size_t n) {
    std::vector<Tuple> rows;
    rows.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      rows.push_back(SyntheticRow(spec, next_id++, &rng));
    }
    IMP_CHECK(db.Insert("t", rows).ok());
  }
};

}  // namespace
}  // namespace imp

int main() {
  using namespace imp;
  bench::PrintFigureHeader("Figure 11b / 12b", "Q_groups: number of groups");
  const size_t group_counts[] = {50, 1000, 5000, 50000};
  const size_t realistic[] = {10, 50, 100, 500, 1000};
  const double fractions[] = {0.005, 0.01, 0.02, 0.05, 0.08};

  bench::SeriesTable t11("#groups",
                         {"FM(ms)", "d=10", "d=50", "d=100", "d=500", "d=1000"});
  bench::SeriesTable t12("#groups",
                         {"FM(ms)", "0.5%", "1%", "2%", "5%", "8%"});
  for (size_t groups : group_counts) {
    Env env;
    env.Setup(groups);
    Binder binder(&env.db);
    auto plan = binder.BindQuery(
        "SELECT a, avg(b) AS ab FROM t GROUP BY a HAVING avg(c) > 0");
    IMP_CHECK_MSG(plan.ok(), plan.status().ToString().c_str());
    double fm =
        bench::TimeFullMaintain(env.db, env.catalog, plan.value()) * 1000.0;

    Maintainer maintainer(&env.db, &env.catalog, plan.value());
    IMP_CHECK(maintainer.Initialize().ok());
    std::vector<double> row{fm};
    for (size_t d : realistic) {
      row.push_back(
          bench::TimeMaintain(&maintainer, [&] { env.Insert(d); }) * 1000.0);
    }
    t11.AddRow(std::to_string(groups), row);

    std::vector<double> row12{fm};
    for (double f : fractions) {
      size_t d = static_cast<size_t>(f * static_cast<double>(env.spec.num_rows));
      row12.push_back(
          bench::TimeMaintain(&maintainer, [&] { env.Insert(d); }) * 1000.0);
    }
    t12.AddRow(std::to_string(groups), row12);
  }
  std::printf("\n-- Fig 11b: realistic deltas (ms) --\n");
  t11.Print();
  std::printf("\n-- Fig 12b: break-even sweep (ms) --\n");
  t12.Print();
  return 0;
}
