// Figure 11c,d / 12c,d: Q_join — group-by/HAVING over an equi-join.
//  (c): 1-n joins (one left row per key, n right rows per key).
//  (d): m-n joins (m left rows per key, fixed right multiplicity).
// The paper's 10M-row multiplicities (1-20 / 1-2k / 1-200k and 20-2k /
// 50-2k) are scaled to keep right-table size ~constant; the shape —
// join-delegated maintenance costs dominated by the backend round trip,
// break-even earlier than pure aggregation — is preserved.

#include <cstdio>

#include "bench_util.h"

namespace imp {
namespace {

constexpr size_t kBaseRightRows = 100000;

struct Env {
  Database db;
  PartitionCatalog catalog;
  JoinPairSpec spec;
  Rng rng{41};
  int64_t next_id = 0;

  void Setup(size_t left_per_key, size_t right_per_key) {
    size_t right_rows = bench::ScaledRows(kBaseRightRows);
    spec.left_name = "t";
    spec.right_name = "h";
    spec.distinct_keys = right_rows / right_per_key;
    if (spec.distinct_keys == 0) spec.distinct_keys = 1;
    spec.left_per_key = left_per_key;
    spec.right_per_key = right_per_key;
    IMP_CHECK(CreateJoinPair(&db, spec).ok());
    next_id =
        static_cast<int64_t>(spec.distinct_keys * spec.left_per_key);
    IMP_CHECK(catalog
                  .Register(RangePartition::EquiWidthInt(
                      "t", "a", 1, 0,
                      static_cast<int64_t>(spec.distinct_keys) - 1, 100))
                  .ok());
  }

  void InsertLeft(size_t n) {
    std::vector<Tuple> rows;
    rows.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      int64_t key =
          rng.UniformInt(0, static_cast<int64_t>(spec.distinct_keys) - 1);
      rows.push_back(JoinLeftRow(spec, next_id++, key, &rng));
    }
    IMP_CHECK(db.Insert("t", rows).ok());
  }
};

void RunSeries(const char* title,
               const std::vector<std::pair<size_t, size_t>>& mn_pairs) {
  using namespace bench;
  std::printf("\n-- %s --\n", title);
  const size_t realistic[] = {10, 50, 100, 500, 1000};
  SeriesTable table("m-n", {"FM(ms)", "d=10", "d=50", "d=100", "d=500",
                            "d=1000", "d=2%", "d=5%"});
  for (auto [m, n] : mn_pairs) {
    Env env;
    env.Setup(m, n);
    Binder binder(&env.db);
    auto plan = binder.BindQuery(
        "SELECT a, avg(b) AS ab "
        "FROM (SELECT a AS a, b AS b, c AS c FROM t WHERE b >= 0) tt "
        "JOIN h ON (a = ttid) "
        "GROUP BY a HAVING avg(c) >= 0");
    IMP_CHECK_MSG(plan.ok(), plan.status().ToString().c_str());
    double fm = TimeFullMaintain(env.db, env.catalog, plan.value()) * 1000.0;
    Maintainer maintainer(&env.db, &env.catalog, plan.value());
    IMP_CHECK(maintainer.Initialize().ok());
    std::vector<double> row{fm};
    for (size_t d : realistic) {
      row.push_back(
          TimeMaintain(&maintainer, [&] { env.InsertLeft(d); }) * 1000.0);
    }
    size_t left_rows = env.spec.distinct_keys * env.spec.left_per_key;
    for (double f : {0.02, 0.05}) {
      size_t d = static_cast<size_t>(f * static_cast<double>(left_rows)) + 1;
      row.push_back(
          TimeMaintain(&maintainer, [&] { env.InsertLeft(d); }) * 1000.0);
    }
    table.AddRow(std::to_string(m) + "-" + std::to_string(n), row);
  }
  table.Print();
}

}  // namespace
}  // namespace imp

int main() {
  using namespace imp;
  bench::PrintFigureHeader("Figure 11c,d / 12c,d", "Q_join: 1-n and m-n joins");
  RunSeries("Fig 11c/12c: 1-n joins (vary right multiplicity)",
            {{1, 2}, {1, 20}, {1, 200}});
  RunSeries("Fig 11d/12d: m-n joins (vary left multiplicity, n=20)",
            {{2, 20}, {20, 20}, {50, 20}});
  return 0;
}
