// PR 8 bench: incremental, shareable snapshot indexes.
//
// Measures and hard-gates the O(delta) index carry-forward:
//   1. after a 1-row append + publish, re-probing builds at most the tail
//      shards (<= 2: one hash + one ordered) while every sealed chunk's
//      shard is reused — the tentpole acceptance gate;
//   2. builds-per-publication over a chain of small appends (should hover
//      around one shard per publication, reuse ratio near 1);
//   3. point / range probe throughput against full scans;
//   4. delegated-join maintenance with indexes on vs off must produce
//      bit-identical sketches (the correctness gate for the fast path).
//
// Emits BENCH_PR8.json (override with IMP_BENCH_JSON).

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "exec/executor.h"

namespace imp {
namespace {

Schema TwoColSchema() {
  Schema s;
  s.AddColumn("k", ValueType::kInt);
  s.AddColumn("v", ValueType::kInt);
  return s;
}

Tuple Row(int64_t k, int64_t v) { return Tuple{Value::Int(k), Value::Int(v)}; }

/// Brute-force point lookup over the snapshot (the probe baseline).
size_t ScanCount(const TableSnapshot& snap, int64_t key) {
  size_t hits = 0;
  Value k = Value::Int(key);
  for (const auto& chunk : snap.chunks()) {
    for (size_t r = 0; r < chunk->num_rows(); ++r) {
      if (chunk->At(r, 0) == k) ++hits;
    }
  }
  return hits;
}

}  // namespace
}  // namespace imp

int main() {
  using namespace imp;
  bench::PrintFigureHeader("PR8", "snapshot index carry-forward + range probes");
  bench::JsonReport report("index_maintenance", "BENCH_PR8.json");

  // ---- 1. O(delta) carry-forward gate --------------------------------------
  Database db;
  IMP_CHECK(db.CreateTable("t", TwoColSchema()).ok());
  const size_t kChunks = 4;
  std::vector<Tuple> rows;
  const int64_t n = static_cast<int64_t>(DataChunk::kDefaultCapacity * kChunks);
  for (int64_t i = 0; i < n; ++i) rows.push_back(Row(i % 512, i));
  IMP_CHECK(db.BulkLoad("t", rows).ok());
  const Table* table = db.GetTable("t");

  {
    auto snap = table->Snapshot();
    const size_t sealed_chunks = snap->chunks().size();
    // Warm-up: materialize the point and ordered shard of every chunk.
    IMP_CHECK(!snap->IndexProbe(0, Value::Int(7)).empty());
    IMP_CHECK(!snap->IndexRangeProbe(0, Value::Int(3), Value::Int(9)).empty());

    Database::IndexStatsSnapshot before = db.AggregateIndexStats();
    IMP_CHECK(db.Insert("t", {Row(7, -1)}).ok());  // O(1)-row publication
    auto snap2 = table->Snapshot();
    IMP_CHECK(!snap2->IndexProbe(0, Value::Int(7)).empty());
    IMP_CHECK(!snap2->IndexRangeProbe(0, Value::Int(3), Value::Int(9)).empty());
    Database::IndexStatsSnapshot after = db.AggregateIndexStats();

    const uint64_t built_delta = after.shards_built - before.shards_built;
    const uint64_t reused_delta = after.shards_reused - before.shards_reused;
    std::printf(
        "carry-forward: %zu sealed chunks, %llu shards built after 1-row "
        "append (gate <= 2), %llu reused (gate >= %zu)\n",
        sealed_chunks, static_cast<unsigned long long>(built_delta),
        static_cast<unsigned long long>(reused_delta), sealed_chunks);
    IMP_CHECK_MSG(built_delta <= 2,
                  "O(delta) violated: small append rebuilt sealed shards");
    IMP_CHECK_MSG(reused_delta >= sealed_chunks,
                  "carry-forward missing: sealed shards were not reused");
    report.Add("carry_forward", "sealed_chunks",
               static_cast<double>(sealed_chunks));
    report.Add("carry_forward", "shards_built_after_1row_append",
               static_cast<double>(built_delta));
    report.Add("carry_forward", "shards_reused_after_1row_append",
               static_cast<double>(reused_delta));
    report.Add("carry_forward", "index_bytes",
               static_cast<double>(db.IndexBytes()));
  }

  // ---- 2. builds per publication over an append chain ----------------------
  {
    Database::IndexStatsSnapshot before = db.AggregateIndexStats();
    const size_t kPublications = 32;
    for (size_t p = 0; p < kPublications; ++p) {
      IMP_CHECK(db.Insert("t", {Row(static_cast<int64_t>(p) % 512, -2)}).ok());
      IMP_CHECK(!table->Snapshot()->IndexProbe(0, Value::Int(7)).empty());
    }
    Database::IndexStatsSnapshot after = db.AggregateIndexStats();
    const double built =
        static_cast<double>(after.shards_built - before.shards_built);
    const double reused =
        static_cast<double>(after.shards_reused - before.shards_reused);
    const double per_pub = built / static_cast<double>(kPublications);
    const double reuse_ratio = reused / (built + reused);
    std::printf(
        "append chain: %.2f shards built per publication, reuse ratio %.3f\n",
        per_pub, reuse_ratio);
    report.Add("publication_chain", "builds_per_publication", per_pub);
    report.Add("publication_chain", "reuse_ratio", reuse_ratio);
  }

  // ---- 3. probe throughput vs full scans -----------------------------------
  {
    auto snap = table->Snapshot();
    const size_t kProbes = 64;
    size_t index_rows = 0, scan_rows = 0;
    double t_index = bench::MedianSeconds([&] {
      index_rows = 0;
      for (size_t i = 0; i < kProbes; ++i) {
        index_rows +=
            snap->IndexProbe(0, Value::Int(static_cast<int64_t>(i % 512)))
                .size();
      }
    });
    double t_scan = bench::MedianSeconds([&] {
      scan_rows = 0;
      for (size_t i = 0; i < kProbes; ++i) {
        scan_rows += ScanCount(*snap, static_cast<int64_t>(i % 512));
      }
    });
    IMP_CHECK_MSG(index_rows == scan_rows, "index probe miscounts vs scan");
    report.Add("probe_throughput", "point_index_probes_per_sec",
               static_cast<double>(kProbes) / t_index);
    report.Add("probe_throughput", "point_scan_probes_per_sec",
               static_cast<double>(kProbes) / t_scan);
    report.Add("probe_throughput", "point_speedup", t_scan / t_index);
    std::printf("point probes: index %.0f/s vs scan %.0f/s (%.1fx)\n",
                kProbes / t_index, kProbes / t_scan, t_scan / t_index);

    // Range scan through the executor: index-served vs chunk-filtered. A
    // selective range (~1% of the key domain, spread over every chunk so
    // zone maps cannot skip) — the shape the index path exists for; wide
    // low-selectivity ranges stay on the vectorized scan's turf.
    ExprPtr pred = MakeBetween(MakeColumnRef(0, "k", ValueType::kInt),
                               MakeLiteral(Value::Int(40)),
                               MakeLiteral(Value::Int(44)));
    PlanPtr scan_plan = MakeScan("t", table->schema(), pred);
    Executor indexed(&db), plain(&db);
    indexed.set_range_index_mode(RangeIndexMode::kBuild);
    plain.set_range_index_mode(RangeIndexMode::kOff);
    size_t range_rows = 0;
    double t_ridx = bench::MedianSeconds([&] {
      auto r = indexed.Execute(scan_plan);
      IMP_CHECK(r.ok());
      range_rows = r.value().size();
    });
    double t_rscan = bench::MedianSeconds([&] {
      auto r = plain.Execute(scan_plan);
      IMP_CHECK(r.ok());
      IMP_CHECK_MSG(r.value().size() == range_rows,
                    "range index row count diverges from scan");
    });
    IMP_CHECK_MSG(indexed.scan_stats().index_range_scans > 0,
                  "executor never took the index range path");
    report.Add("probe_throughput", "range_index_mrows_per_sec",
               range_rows / t_ridx / 1e6);
    report.Add("probe_throughput", "range_scan_mrows_per_sec",
               range_rows / t_rscan / 1e6);
    report.Add("probe_throughput", "range_speedup", t_rscan / t_ridx);
    std::printf("range scan (%zu rows): index %.3f ms vs scan %.3f ms\n",
                range_rows, t_ridx * 1000.0, t_rscan * 1000.0);
  }

  // ---- 4. delegated join: indexed vs scan must be bit-identical ------------
  {
    Database jdb;
    PartitionCatalog catalog;
    JoinPairSpec spec;
    spec.left_name = "t";
    spec.right_name = "h";
    spec.distinct_keys = bench::ScaledRows(4000);
    spec.left_per_key = 1;
    spec.right_per_key = 4;
    IMP_CHECK(CreateJoinPair(&jdb, spec).ok());
    IMP_CHECK(catalog
                  .Register(RangePartition::EquiWidthInt(
                      "t", "a", 1, 0,
                      static_cast<int64_t>(spec.distinct_keys) - 1, 64))
                  .ok());
    Binder binder(&jdb);
    auto plan = binder.BindQuery(
        "SELECT a, sum(w) AS sw FROM t JOIN h ON (a = ttid) "
        "GROUP BY a HAVING sum(w) > 0");
    IMP_CHECK_MSG(plan.ok(), plan.status().ToString().c_str());

    MaintainerOptions with_index, without_index;
    without_index.indexed_joins = false;
    Maintainer indexed(&jdb, &catalog, plan.value(), with_index);
    Maintainer scanned(&jdb, &catalog, plan.value(), without_index);
    IMP_CHECK(indexed.Initialize().ok());
    IMP_CHECK(scanned.Initialize().ok());

    Rng rng{11};
    int64_t next_id = static_cast<int64_t>(spec.distinct_keys);
    for (int round = 0; round < 6; ++round) {
      std::vector<Tuple> batch;
      const size_t batch_rows = 16u << round;
      for (size_t i = 0; i < batch_rows; ++i) {
        int64_t key =
            rng.UniformInt(0, static_cast<int64_t>(spec.distinct_keys) - 1);
        batch.push_back(JoinLeftRow(spec, next_id++, key, &rng));
      }
      IMP_CHECK(jdb.Insert("t", batch).ok());
      IMP_CHECK(indexed.MaintainFromBackend().ok());
      IMP_CHECK(scanned.MaintainFromBackend().ok());
      IMP_CHECK_MSG(indexed.sketch().fragments.SetBits() ==
                        scanned.sketch().fragments.SetBits(),
                    "indexed delegated join diverged from scan reference");
    }
    report.Add("delegated_join", "bit_identical", 1.0);
    report.Add("delegated_join", "fallback_scans_indexed",
               static_cast<double>(indexed.stats().index_fallback_scans));
    report.Add("delegated_join", "fallback_scans_reference",
               static_cast<double>(scanned.stats().index_fallback_scans));
    std::printf(
        "delegated join: sketches bit-identical over 6 rounds "
        "(fallback side-scans: indexed=%zu, reference=%zu)\n",
        indexed.stats().index_fallback_scans,
        scanned.stats().index_fallback_scans);
  }

  // Global gate: carry-forward must actually have happened somewhere.
  IMP_CHECK_MSG(db.AggregateIndexStats().shards_reused > 0,
                "no shard was ever reused across snapshot generations");

  report.Write();
  std::printf("all index gates passed\n");
  return 0;
}
