// Shared benchmark harness: scaling knobs, timing, and paper-style series
// tables. Every figure bench prints the same series the paper reports.
//
// Environment knobs:
//   IMP_BENCH_SCALE  multiplies base row counts (default 1.0 = laptop scale;
//                    the paper's sizes correspond to roughly 100x).
//   IMP_BENCH_REPS   repetitions per measurement; the median is reported
//                    (default 3; the paper uses >= 10).
//   IMP_BENCH_JSON   path of the machine-readable report benches merge
//                    their metrics into (default BENCH_PR2.json).

#ifndef IMP_BENCH_BENCH_UTIL_H_
#define IMP_BENCH_BENCH_UTIL_H_

#include <functional>
#include <string>
#include <vector>

#include "imp/maintainer.h"
#include "middleware/imp_system.h"
#include "sketch/capture.h"
#include "workload/driver.h"
#include "workload/synthetic.h"

namespace imp {
namespace bench {

/// IMP_BENCH_SCALE (default 1.0).
double Scale();
/// Base row count scaled by IMP_BENCH_SCALE.
size_t ScaledRows(size_t base);
/// IMP_BENCH_REPS (default 3).
int Reps();

/// Wall-clock seconds of one invocation.
double TimeSeconds(const std::function<void()>& fn);
/// Median of Reps() invocations.
double MedianSeconds(const std::function<void()>& fn);
/// The q-quantile (0 <= q <= 1) of per-op latencies, in MICROseconds.
double PercentileUs(std::vector<double> seconds, double q);

/// Pretty header for a figure bench.
void PrintFigureHeader(const std::string& figure, const std::string& title);

/// Fixed-width series table: one label column plus value columns.
class SeriesTable {
 public:
  SeriesTable(std::string label_header, std::vector<std::string> columns);
  void AddRow(const std::string& label, const std::vector<double>& values);
  void AddTextRow(const std::string& label,
                  const std::vector<std::string>& values);
  void Print() const;

 private:
  std::string label_header_;
  std::vector<std::string> columns_;
  std::vector<std::pair<std::string, std::vector<std::string>>> rows_;
};

/// Machine-readable benchmark output. Each bench accumulates named metrics
/// grouped under series keys and merges its section into one JSON file
/// (IMP_BENCH_JSON, default BENCH_PR2.json) via read-modify-write, so runs
/// of several bench binaries compose into a single perf-trajectory report:
///
///   { "fig16_batching": { "multi_sketch": { "speedup_shared": 3.1, ... } },
///     "fig08_mixed_workload": { "1U1Q/delta_20/IMP": { ... } } }
class JsonReport {
 public:
  explicit JsonReport(std::string bench_name);
  /// Like above, but writing to `default_path` when IMP_BENCH_JSON is
  /// unset — for benches that start a new PR's report (e.g. the ingestion
  /// bench's BENCH_PR3.json) instead of appending to the current default.
  JsonReport(std::string bench_name, std::string default_path);

  /// Record one metric; groups and metrics keep insertion order. Keys must
  /// not contain '"', '{' or '}' (they become JSON keys verbatim).
  void Add(const std::string& group, const std::string& metric, double value);

  /// Merge this bench's section into OutputPath(), replacing any previous
  /// section of the same bench and preserving other benches' sections.
  void Write() const;

  /// IMP_BENCH_JSON or "BENCH_PR2.json".
  static std::string OutputPath();

 private:
  std::string bench_name_;
  std::string path_;  ///< resolved output file
  /// group -> ordered (metric, value); groups in insertion order.
  std::vector<std::pair<std::string, std::vector<std::pair<std::string, double>>>>
      groups_;
};

/// Measure incremental maintenance of `plan` for one update batch produced
/// by `apply_update` (which mutates the database), using a pre-initialized
/// maintainer. Returns seconds spent in MaintainFromBackend.
double TimeMaintain(Maintainer* maintainer,
                    const std::function<void()>& apply_update);

/// Measure full maintenance (capture-query re-run) on the current state.
double TimeFullMaintain(const Database& db, const PartitionCatalog& catalog,
                        const PlanPtr& plan);

/// Format seconds in ms with 3 decimals.
std::string Ms(double seconds);

}  // namespace bench
}  // namespace imp

#endif  // IMP_BENCH_BENCH_UTIL_H_
