// Figure 16: cost of maintaining 1000 updates under eager maintenance,
// varying the batch size (Sec. 8.5). Small batches pay the per-round fixed
// costs (notably the join round trip) many times; the paper's take-away —
// batch sizes below ~50 significantly increase total maintenance cost —
// must reproduce.

#include <cstdio>

#include "bench_util.h"

namespace imp {
namespace {

constexpr size_t kUpdates = 1000;

double RunAggregateQuery(size_t batch_size) {
  Database db;
  SyntheticSpec spec;
  spec.name = "edb1";
  spec.num_rows = bench::ScaledRows(50000);
  spec.num_groups = 500;
  IMP_CHECK(CreateSyntheticTable(&db, spec).ok());

  ImpConfig config;
  config.mode = ExecutionMode::kIncremental;
  config.strategy = MaintenanceStrategy::kEager;
  config.eager_batch_size = batch_size;
  ImpSystem system(&db, config);
  IMP_CHECK(system
                .RegisterPartition(RangePartition::EquiWidthInt(
                    "edb1", "a", 1, 0, 499, 100))
                .ok());
  // Create the sketch first (Q_endtoend-style template); threshold keeps
  // roughly half the groups.
  int64_t threshold =
      static_cast<int64_t>(spec.num_rows / 500) * 3 * 500 / 4;
  IMP_CHECK(system
                .Query("SELECT a, sum(c) AS sc FROM edb1 GROUP BY a "
                       "HAVING sum(c) > " + std::to_string(threshold))
                .ok());

  auto gen = SyntheticInsertGen("edb1", 1, 500,
                                static_cast<int64_t>(spec.num_rows));
  Rng rng(1);
  for (size_t u = 0; u < kUpdates; ++u) {
    IMP_CHECK(system.UpdateBound(gen(rng)).ok());
  }
  IMP_CHECK(system.MaintainAll().ok());  // flush the last partial batch
  return system.stats().maintain_seconds;
}

double RunJoinQuery(size_t batch_size) {
  Database db;
  JoinPairSpec spec;
  spec.left_name = "t";
  spec.right_name = "h";
  spec.distinct_keys = bench::ScaledRows(10000);
  spec.left_per_key = 1;
  spec.right_per_key = 5;
  spec.selectivity = 0.05;
  IMP_CHECK(CreateJoinPair(&db, spec).ok());

  ImpConfig config;
  config.mode = ExecutionMode::kIncremental;
  config.strategy = MaintenanceStrategy::kEager;
  config.eager_batch_size = batch_size;
  ImpSystem system(&db, config);
  IMP_CHECK(system
                .RegisterPartition(RangePartition::EquiWidthInt(
                    "t", "a", 1, 0,
                    static_cast<int64_t>(spec.distinct_keys) - 1, 100))
                .ok());
  // The computed join key (ttid + 0) keeps the delegated join on the
  // side-scan path: every maintenance round pays the backend round trip,
  // which is the fixed per-batch cost the paper's Fig. 16 isolates.
  IMP_CHECK(system
                .Query("SELECT a, sum(b) AS sb "
                       "FROM t JOIN (SELECT ttid + 0 AS ttid, w AS w FROM h) "
                       "hh ON (a = ttid) "
                       "WHERE b >= 0 GROUP BY a HAVING sum(b) > 0")
                .ok());

  Rng rng(2);
  int64_t next_id = static_cast<int64_t>(spec.distinct_keys);
  for (size_t u = 0; u < kUpdates; ++u) {
    BoundUpdate update;
    update.kind = BoundUpdate::Kind::kInsert;
    update.table = "t";
    update.rows.push_back(JoinLeftRow(
        spec, next_id++,
        rng.UniformInt(0, static_cast<int64_t>(spec.distinct_keys) - 1),
        &rng));
    IMP_CHECK(system.UpdateBound(update).ok());
  }
  IMP_CHECK(system.MaintainAll().ok());
  return system.stats().maintain_seconds;
}

}  // namespace
}  // namespace imp

int main() {
  using namespace imp;
  bench::PrintFigureHeader(
      "Figure 16", "eager maintenance: total cost of 1000 updates vs batch size");
  const size_t batch_sizes[] = {1, 5, 10, 50, 100, 250, 1000};
  bench::SeriesTable table("batch",
                           {"Q_endtoend total(ms)", "Q_joinsel total(ms)"});
  for (size_t b : batch_sizes) {
    double agg = RunAggregateQuery(b);
    double join = RunJoinQuery(b);
    table.AddRow(std::to_string(b), {agg * 1000.0, join * 1000.0});
  }
  table.Print();
  std::printf(
      "\nTake-away check: batches below ~50 should cost significantly more "
      "than larger batches, especially for the join query.\n");
  return 0;
}
