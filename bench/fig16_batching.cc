// Figure 16: cost of maintaining 1000 updates under eager maintenance,
// varying the batch size (Sec. 8.5). Small batches pay the per-round fixed
// costs (notably the join round trip) many times; the paper's take-away —
// batch sizes below ~50 significantly increase total maintenance cost —
// must reproduce.
//
// Extended for the batched maintenance pipeline: a multi-sketch section
// maintains 8 sketches over one shared table and compares the serial
// per-sketch baseline (one delta-log scan + annotation per sketch) against
// the shared-fetch pipeline (one scan + one annotation per round, borrowed
// zero-copy views per sketch) and its parallel fan-out. Results must be
// bit-identical across configurations. Speedup bar (re-baselined for PR 2):
// the delta-log scan push-down made the per-sketch baseline's scans
// O(window) instead of O(log length), so the shared-fetch headroom shrank
// from the ~2.4x of BENCH_PR1.json to the annotation+copy savings alone;
// the enforced bar is now >= 1.1x (see BENCH_PR2.json for the trajectory).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_util.h"

namespace imp {
namespace {

constexpr size_t kUpdates = 1000;

double RunAggregateQuery(size_t batch_size) {
  Database db;
  SyntheticSpec spec;
  spec.name = "edb1";
  spec.num_rows = bench::ScaledRows(50000);
  spec.num_groups = 500;
  IMP_CHECK(CreateSyntheticTable(&db, spec).ok());

  ImpConfig config;
  config.mode = ExecutionMode::kIncremental;
  config.strategy = MaintenanceStrategy::kEager;
  config.eager_batch_size = batch_size;
  ImpSystem system(&db, config);
  IMP_CHECK(system
                .RegisterPartition(RangePartition::EquiWidthInt(
                    "edb1", "a", 1, 0, 499, 100))
                .ok());
  // Create the sketch first (Q_endtoend-style template); threshold keeps
  // roughly half the groups.
  int64_t threshold =
      static_cast<int64_t>(spec.num_rows / 500) * 3 * 500 / 4;
  IMP_CHECK(system
                .Query("SELECT a, sum(c) AS sc FROM edb1 GROUP BY a "
                       "HAVING sum(c) > " + std::to_string(threshold))
                .ok());

  auto gen = SyntheticInsertGen("edb1", 1, 500,
                                static_cast<int64_t>(spec.num_rows));
  Rng rng(1);
  for (size_t u = 0; u < kUpdates; ++u) {
    IMP_CHECK(system.UpdateBound(gen(rng)).ok());
  }
  IMP_CHECK(system.MaintainAll().ok());  // flush the last partial batch
  return system.stats().maintain_seconds;
}

double RunJoinQuery(size_t batch_size) {
  Database db;
  JoinPairSpec spec;
  spec.left_name = "t";
  spec.right_name = "h";
  spec.distinct_keys = bench::ScaledRows(10000);
  spec.left_per_key = 1;
  spec.right_per_key = 5;
  spec.selectivity = 0.05;
  IMP_CHECK(CreateJoinPair(&db, spec).ok());

  ImpConfig config;
  config.mode = ExecutionMode::kIncremental;
  config.strategy = MaintenanceStrategy::kEager;
  config.eager_batch_size = batch_size;
  ImpSystem system(&db, config);
  IMP_CHECK(system
                .RegisterPartition(RangePartition::EquiWidthInt(
                    "t", "a", 1, 0,
                    static_cast<int64_t>(spec.distinct_keys) - 1, 100))
                .ok());
  // The computed join key (ttid + 0) keeps the delegated join on the
  // side-scan path: every maintenance round pays the backend round trip,
  // which is the fixed per-batch cost the paper's Fig. 16 isolates.
  IMP_CHECK(system
                .Query("SELECT a, sum(b) AS sb "
                       "FROM t JOIN (SELECT ttid + 0 AS ttid, w AS w FROM h) "
                       "hh ON (a = ttid) "
                       "WHERE b >= 0 GROUP BY a HAVING sum(b) > 0")
                .ok());

  Rng rng(2);
  int64_t next_id = static_cast<int64_t>(spec.distinct_keys);
  for (size_t u = 0; u < kUpdates; ++u) {
    BoundUpdate update;
    update.kind = BoundUpdate::Kind::kInsert;
    update.table = "t";
    update.rows.push_back(JoinLeftRow(
        spec, next_id++,
        rng.UniformInt(0, static_cast<int64_t>(spec.distinct_keys) - 1),
        &rng));
    IMP_CHECK(system.UpdateBound(update).ok());
  }
  IMP_CHECK(system.MaintainAll().ok());
  return system.stats().maintain_seconds;
}

// ---- Multi-sketch batched maintenance --------------------------------------

constexpr size_t kMultiSketches = 8;

struct MultiSketchRun {
  double maintain_seconds = 0;  ///< wall clock of the measured MaintainAll
  std::vector<std::vector<size_t>> sketches;  ///< per-entry fragment sets
  size_t delta_scans = 0;
  size_t annotation_passes = 0;
  size_t annotation_hits = 0;
  // Zero-copy pipeline counters of the measured round (the queries are
  // filterless-scan sketches, so the shared-fetch pipeline must report
  // rows_copied == 0: every sketch consumes a borrowed view).
  size_t deltas_borrowed = 0;
  size_t deltas_materialized = 0;
  size_t rows_copied = 0;
};

/// Maintain `kMultiSketches` sketches (distinct aggregate columns, one
/// shared table) for one stale window sitting at the end of a long delta
/// log — the regime where per-sketch re-scans of the log are pure
/// redundancy. `shared_fetch`/`threads` select the pipeline.
MultiSketchRun RunMultiSketch(bool shared_fetch, size_t threads) {
  Database db;
  SyntheticSpec spec;
  spec.name = "edb1";
  spec.num_rows = bench::ScaledRows(20000);
  spec.num_groups = 500;
  IMP_CHECK(CreateSyntheticTable(&db, spec).ok());

  ImpConfig config;
  config.mode = ExecutionMode::kIncremental;
  config.strategy = MaintenanceStrategy::kLazy;
  config.shared_delta_fetch = shared_fetch;
  config.maintenance_threads = threads;
  ImpSystem system(&db, config);
  IMP_CHECK(system
                .RegisterPartition(RangePartition::EquiWidthInt(
                    "edb1", "a", 1, 0, 499, 100))
                .ok());

  // 8 distinct templates -> 8 sketch entries over the same (table,
  // partition); thresholds keep the HAVING clause selective.
  const char* metrics[kMultiSketches] = {"b", "c", "d", "e",
                                         "f", "g", "h", "i"};
  int64_t rows_per_group = static_cast<int64_t>(spec.num_rows / 500) + 1;
  for (const char* col : metrics) {
    std::string q = "SELECT a, sum(" + std::string(col) + ") AS s FROM edb1 "
                    "GROUP BY a HAVING sum(" + std::string(col) + ") > " +
                    std::to_string(rows_per_group * 400);
    auto result = system.Query(q);
    IMP_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  }
  IMP_CHECK(system.sketches().size() == kMultiSketches);

  // Grow the delta log (4000 maintained update statements, ~200k records),
  // then leave a fresh stale window of 2 statements for the measured round
  // — the steady state of frequent maintenance against a long-lived log,
  // where each per-sketch ScanDelta re-walks the whole log for a small
  // window and re-annotates the same rows the other 7 sketches already
  // annotated.
  auto gen = SyntheticInsertGen("edb1", 50, 500,
                                static_cast<int64_t>(spec.num_rows));
  Rng rng(7);
  for (size_t u = 0; u < 4000; ++u) {
    IMP_CHECK(system.UpdateBound(gen(rng)).ok());
  }
  IMP_CHECK(system.MaintainAll().ok());
  for (size_t u = 0; u < 2; ++u) IMP_CHECK(system.UpdateBound(gen(rng)).ok());

  ImpSystemStats before = system.stats();
  MultiSketchRun run;
  run.maintain_seconds =
      bench::TimeSeconds([&] { IMP_CHECK(system.MaintainAll().ok()); });
  const ImpSystemStats& after = system.stats();
  run.delta_scans = after.delta_scans - before.delta_scans;
  run.annotation_passes = after.annotation_passes - before.annotation_passes;
  run.annotation_hits = after.annotation_hits - before.annotation_hits;
  run.deltas_borrowed = after.deltas_borrowed - before.deltas_borrowed;
  run.deltas_materialized =
      after.deltas_materialized - before.deltas_materialized;
  run.rows_copied = after.rows_copied - before.rows_copied;
  for (SketchEntry* entry : system.sketches().AllEntries()) {
    run.sketches.push_back(entry->sketch.fragments.SetBits());
  }
  return run;
}

/// Median maintain time over Reps() rebuilds of the same deterministic
/// workload; the sketch/stat fields come from the first run.
MultiSketchRun MedianMultiSketch(bool shared_fetch, size_t threads) {
  MultiSketchRun first = RunMultiSketch(shared_fetch, threads);
  std::vector<double> times = {first.maintain_seconds};
  for (int r = 1; r < bench::Reps(); ++r) {
    times.push_back(RunMultiSketch(shared_fetch, threads).maintain_seconds);
  }
  std::sort(times.begin(), times.end());
  first.maintain_seconds = times[times.size() / 2];
  return first;
}

}  // namespace
}  // namespace imp

int main() {
  using namespace imp;
  bench::PrintFigureHeader(
      "Figure 16", "eager maintenance: total cost of 1000 updates vs batch size");
  bench::JsonReport json("fig16_batching");
  const size_t batch_sizes[] = {1, 5, 10, 50, 100, 250, 1000};
  bench::SeriesTable table("batch",
                           {"Q_endtoend total(ms)", "Q_joinsel total(ms)"});
  for (size_t b : batch_sizes) {
    double agg = RunAggregateQuery(b);
    double join = RunJoinQuery(b);
    table.AddRow(std::to_string(b), {agg * 1000.0, join * 1000.0});
    std::string group = "batch_" + std::to_string(b);
    json.Add(group, "endtoend_maintain_seconds", agg);
    json.Add(group, "joinsel_maintain_seconds", join);
    json.Add(group, "endtoend_updates_per_sec",
             agg > 0 ? static_cast<double>(kUpdates) / agg : 0.0);
    json.Add(group, "joinsel_updates_per_sec",
             join > 0 ? static_cast<double>(kUpdates) / join : 0.0);
  }
  table.Print();
  std::printf(
      "\nTake-away check: batches below ~50 should cost significantly more "
      "than larger batches, especially for the join query.\n");

  // -- Multi-sketch: shared delta fetch & annotation + parallel fan-out ------
  std::printf(
      "\n-- batched maintenance of %zu sketches over one shared table --\n",
      kMultiSketches);
  MultiSketchRun serial = MedianMultiSketch(/*shared_fetch=*/false, 1);
  MultiSketchRun shared = MedianMultiSketch(/*shared_fetch=*/true, 1);
  MultiSketchRun parallel = MedianMultiSketch(/*shared_fetch=*/true, 0);

  bool identical = serial.sketches == shared.sketches &&
                   serial.sketches == parallel.sketches;
  double speedup_shared =
      shared.maintain_seconds > 0
          ? serial.maintain_seconds / shared.maintain_seconds
          : 0.0;
  double speedup_parallel =
      parallel.maintain_seconds > 0
          ? serial.maintain_seconds / parallel.maintain_seconds
          : 0.0;

  bench::SeriesTable multi("pipeline",
                           {"maintain(ms)", "scans", "annotations",
                            "cache hits", "borrowed", "rows copied",
                            "speedup"});
  multi.AddRow("per-sketch serial",
               {serial.maintain_seconds * 1000.0,
                static_cast<double>(serial.delta_scans),
                static_cast<double>(serial.annotation_passes),
                static_cast<double>(serial.annotation_hits),
                static_cast<double>(serial.deltas_borrowed),
                static_cast<double>(serial.rows_copied), 1.0});
  multi.AddRow("shared fetch",
               {shared.maintain_seconds * 1000.0,
                static_cast<double>(shared.delta_scans),
                static_cast<double>(shared.annotation_passes),
                static_cast<double>(shared.annotation_hits),
                static_cast<double>(shared.deltas_borrowed),
                static_cast<double>(shared.rows_copied), speedup_shared});
  multi.AddRow("shared + parallel",
               {parallel.maintain_seconds * 1000.0,
                static_cast<double>(parallel.delta_scans),
                static_cast<double>(parallel.annotation_passes),
                static_cast<double>(parallel.annotation_hits),
                static_cast<double>(parallel.deltas_borrowed),
                static_cast<double>(parallel.rows_copied),
                speedup_parallel});
  multi.Print();
  std::printf("sketches bit-identical across pipelines: %s\n",
              identical ? "yes" : "NO — BUG");
  std::printf("acceptance (>= 1.1x shared vs per-sketch): %s (%.2fx)\n",
              speedup_shared >= 1.1 ? "PASS" : "FAIL", speedup_shared);
  std::printf(
      "zero-copy (filterless scans, shared fetch): rows_copied=%zu "
      "materializations=%zu borrowed_views=%zu — %s\n",
      shared.rows_copied, shared.deltas_materialized, shared.deltas_borrowed,
      shared.rows_copied == 0 ? "PASS" : "FAIL");

  json.Add("multi_sketch", "num_sketches",
           static_cast<double>(kMultiSketches));
  json.Add("multi_sketch", "serial_maintain_seconds", serial.maintain_seconds);
  json.Add("multi_sketch", "shared_maintain_seconds", shared.maintain_seconds);
  json.Add("multi_sketch", "parallel_maintain_seconds",
           parallel.maintain_seconds);
  json.Add("multi_sketch", "speedup_shared", speedup_shared);
  json.Add("multi_sketch", "speedup_parallel", speedup_parallel);
  json.Add("multi_sketch", "serial_delta_scans",
           static_cast<double>(serial.delta_scans));
  json.Add("multi_sketch", "shared_delta_scans",
           static_cast<double>(shared.delta_scans));
  json.Add("multi_sketch", "shared_annotation_hits",
           static_cast<double>(shared.annotation_hits));
  json.Add("multi_sketch", "serial_deltas_borrowed",
           static_cast<double>(serial.deltas_borrowed));
  json.Add("multi_sketch", "serial_rows_copied",
           static_cast<double>(serial.rows_copied));
  json.Add("multi_sketch", "shared_deltas_borrowed",
           static_cast<double>(shared.deltas_borrowed));
  json.Add("multi_sketch", "shared_deltas_materialized",
           static_cast<double>(shared.deltas_materialized));
  json.Add("multi_sketch", "shared_rows_copied",
           static_cast<double>(shared.rows_copied));
  json.Add("multi_sketch", "parallel_rows_copied",
           static_cast<double>(parallel.rows_copied));
  json.Add("multi_sketch", "bit_identical", identical ? 1.0 : 0.0);
  json.Write();

  // Exit code gates on the deterministic properties: bit-identical
  // sketches and the shared-work counters (1 scan serving all sketches,
  // one cache hit per sketch view) — these are load-independent, unlike
  // the wall-clock ratio. The >= 1.1x speedup bar additionally gates when
  // IMP_BENCH_ENFORCE_SPEEDUP is set (for perf-controlled hardware; the
  // bar is calibrated for default IMP_BENCH_SCALE against the PR 2
  // baseline, whose O(window) delta scans leave less redundancy to share).
  bool counters_ok = shared.delta_scans == 1 &&
                     serial.delta_scans == kMultiSketches &&
                     shared.annotation_hits == kMultiSketches;
  if (!counters_ok) std::printf("shared-work counters: UNEXPECTED — BUG\n");
  // Zero-copy gate: every query is a filterless-scan sketch, so the shared
  // (and parallel) pipelines must serve one borrowed view per sketch and
  // copy no rows at all.
  bool zero_copy_ok = shared.rows_copied == 0 &&
                      shared.deltas_materialized == 0 &&
                      parallel.rows_copied == 0 &&
                      shared.deltas_borrowed >= kMultiSketches;
  if (!zero_copy_ok) std::printf("zero-copy counters: UNEXPECTED — BUG\n");
  const char* enforce = std::getenv("IMP_BENCH_ENFORCE_SPEEDUP");
  bool speedup_ok =
      enforce == nullptr || enforce[0] == '\0' || speedup_shared >= 1.1;
  return identical && counters_ok && zero_copy_ok && speedup_ok ? 0 : 1;
}
