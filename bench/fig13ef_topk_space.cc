// Figure 13e,f: memory of the top-k operator state under the top-l buffer
// optimization (Sec. 7.2 / 8.4.3), on TPC-H Q10 (Q_space). The paper
// varies the number of retained tuples l and reports the state memory at
// two scale factors; memory saving is achieved by reducing l.

#include <cstdio>

#include "bench_util.h"
#include "workload/tpch.h"

namespace imp {
namespace {

void RunScale(const char* label, double sf) {
  Database db;
  TpchSpec spec;
  spec.scale_factor = sf;
  IMP_CHECK(CreateTpchTables(&db, spec).ok());
  PartitionCatalog catalog;
  int64_t max_custkey = static_cast<int64_t>(db.GetTable("customer")->NumRows());
  IMP_CHECK(catalog
                .Register(RangePartition::EquiWidthInt(
                    "customer", "c_custkey", 0, 1, max_custkey, 100))
                .ok());
  Binder binder(&db);
  // Widen the date window so more groups feed the top-k state.
  auto plan = binder.BindQuery(TpchQ10Sql("1992-01-01", "1998-12-31"));
  IMP_CHECK_MSG(plan.ok(), plan.status().ToString().c_str());

  // Count the rows entering the top-k (the paper reports this number).
  Executor exec(&db);
  auto probe = exec.Execute(
      static_cast<const TopKNode&>(*plan.value()).child());
  IMP_CHECK(probe.ok());
  std::printf("\n-- %s: %zu tuples feed the top-20 --\n", label,
              probe.value().size());

  const size_t buffers[] = {100, 500, 1000, 5000, 0};  // 0 = keep all
  bench::SeriesTable table("l (retained)", {"state (KB)", "maintain d=100 (ms)"});
  for (size_t l : buffers) {
    MaintainerOptions opts;
    opts.topk_buffer = l;
    Maintainer maintainer(&db, &catalog, plan.value(), opts);
    IMP_CHECK(maintainer.Initialize().ok());
    // One small maintenance batch to show runtime is unaffected.
    Rng rng(7);
    int64_t next_ok = static_cast<int64_t>(db.GetTable("orders")->NumRows()) +
                      100000;
    double secs = bench::TimeMaintain(&maintainer, [&] {
      std::vector<Tuple> items;
      for (int i = 0; i < 100; ++i) {
        items.push_back(TpchLineitemRow(next_ok + i / 4, i % 4 + 1, &rng));
      }
      IMP_CHECK(db.Insert("lineitem", items).ok());
    });
    table.AddRow(l == 0 ? "all" : std::to_string(l),
                 {static_cast<double>(maintainer.StateBytes()) / 1024.0,
                  secs * 1000.0});
  }
  table.Print();
}

}  // namespace
}  // namespace imp

int main() {
  using namespace imp;
  bench::PrintFigureHeader("Figure 13e,f",
                           "top-k state memory vs top-l buffer (TPC-H Q10)");
  double base_sf = 0.01 * bench::Scale();
  RunScale("SF-small", base_sf);
  RunScale("SF-large (10x)", base_sf * 10);
  return 0;
}
