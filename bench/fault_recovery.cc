// bench_fault_recovery — the cost of graceful degradation and the time to
// recover from it (the PR 6 tentpole claim, measured).
//
// One sketched aggregate query over a synthetic table, driven through
// three phases:
//
//   fresh     — healthy sketch: queries served lock-free from the
//               published snapshot (the accelerated baseline);
//   degraded  — the maintain.round and capture failpoints are armed so
//               the entry descends the whole health ladder into
//               quarantine; every query transparently falls back to a
//               plain scan over its pinned view;
//   recovered — the faults clear, RepairQuarantined() recaptures the
//               entry from base tables, queries re-accelerate — all in
//               the same process, no restart.
//
// Reported per phase: query throughput (QPS), plus the explicit repair
// latency and the fault counters. Hard gate (exit non-zero): every
// degraded and recovered query result must be bit-identical to the
// fault-free reference — degradation may cost speed, never answers.
//
// Metrics land in BENCH_PR6.json (override with IMP_BENCH_JSON).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/failpoint.h"
#include "common/random.h"
#include "exec/executor.h"
#include "workload/driver.h"

namespace imp {
namespace {

constexpr size_t kGroups = 500;
constexpr const char* kTable = "edb1";

std::string BenchQuery(size_t rows) {
  int64_t rows_per_group = static_cast<int64_t>(rows / kGroups) + 1;
  return "SELECT a, sum(b) AS s FROM edb1 GROUP BY a HAVING sum(b) > " +
         std::to_string(rows_per_group * 400);
}

Relation MustQuery(ImpSystem* system, const std::string& sql) {
  auto result = system->Query(sql);
  IMP_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  return std::move(result).value();
}

/// Fault-free reference over the database's current published state.
Relation Reference(const Database& db, const std::string& sql) {
  PlanPtr plan = [&] {
    Binder binder(&db);
    auto bound = binder.BindQuery(sql);
    IMP_CHECK_MSG(bound.ok(), bound.status().ToString().c_str());
    return std::move(bound).value();
  }();
  Executor exec(&db);
  auto result = exec.Execute(plan);
  IMP_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  return std::move(result).value();
}

/// Median QPS of `queries` back-to-back queries; every result is gated
/// against `expected` (bit-identical or abort).
double MeasureQps(ImpSystem* system, const std::string& sql, size_t queries,
                  const Relation& expected, const char* phase) {
  double seconds = bench::MedianSeconds([&] {
    for (size_t q = 0; q < queries; ++q) {
      Relation got = MustQuery(system, sql);
      if (!got.SameBag(expected)) {
        std::fprintf(stderr,
                     "FAULT-RECOVERY GATE FAILED: %s-phase query result "
                     "diverged from the fault-free reference\n",
                     phase);
        std::exit(1);
      }
    }
  });
  return static_cast<double>(queries) / seconds;
}

}  // namespace
}  // namespace imp

int main() {
  using namespace imp;

  bench::PrintFigureHeader(
      "fault_recovery",
      "Degraded-mode query cost and recovery time under injected faults");

  FailpointRegistry::Instance().Reset();

  Database db;
  SyntheticSpec spec;
  spec.name = kTable;
  spec.num_rows = bench::ScaledRows(50000);
  spec.num_groups = kGroups;
  IMP_CHECK(CreateSyntheticTable(&db, spec).ok());

  ImpConfig config;
  config.mode = ExecutionMode::kIncremental;
  config.strategy = MaintenanceStrategy::kLazy;
  config.maintenance_backoff_ms = 0;  // drive the health ladder per round
  config.recapture_after_failures = 2;
  config.quarantine_after_failures = 3;
  ImpSystem system(&db, config);
  IMP_CHECK(system
                .RegisterPartition(RangePartition::EquiWidthInt(
                    kTable, "a", 1, 0, kGroups - 1, 100))
                .ok());

  const std::string sql = BenchQuery(spec.num_rows);
  const size_t queries = std::max<size_t>(20, bench::ScaledRows(50));

  // ---- Phase 1: fresh (accelerated baseline) -------------------------------
  MustQuery(&system, sql);  // capture
  IMP_CHECK(system.stats().sketch_captures == 1);
  Relation expected = Reference(db, sql);
  double fresh_qps = MeasureQps(&system, sql, queries, expected, "fresh");

  // ---- Phase 2: degraded (fault -> quarantine -> plain scans) --------------
  // A pending delta makes the entry stale; the armed round + capture
  // failpoints then fail every repair attempt until quarantine.
  {
    auto gen = SyntheticInsertGen(kTable, 1, kGroups,
                                  static_cast<int64_t>(spec.num_rows));
    Rng rng(11);
    IMP_CHECK(system.UpdateBound(gen(rng)).ok());
  }
  expected = Reference(db, sql);
  IMP_CHECK(FailpointRegistry::Instance()
                .ArmFromSpec("maintain.round=always;capture=always")
                .ok());
  for (size_t i = 0; i < config.quarantine_after_failures; ++i) {
    (void)system.MaintainAll();  // each failing round descends the ladder
  }
  if (system.Health().sketches_quarantined != 1) {
    std::fprintf(stderr,
                 "FAULT-RECOVERY GATE FAILED: entry did not quarantine\n");
    return 1;
  }
  double degraded_qps =
      MeasureQps(&system, sql, queries, expected, "degraded");
  size_t degraded_queries = system.stats().degraded_queries;

  // ---- Phase 3: recovery (faults clear, explicit repair) -------------------
  FailpointRegistry::Instance().DisarmAll();
  double repair_seconds = bench::TimeSeconds([&] {
    Status repaired = system.RepairQuarantined();
    IMP_CHECK_MSG(repaired.ok(), repaired.ToString().c_str());
  });
  if (system.Health().sketches_fresh != 1) {
    std::fprintf(stderr, "FAULT-RECOVERY GATE FAILED: repair did not "
                         "restore the entry\n");
    return 1;
  }
  double recovered_qps =
      MeasureQps(&system, sql, queries, expected, "recovered");

  const size_t faults = system.Health().faults_injected;

  bench::SeriesTable table("phase", {"qps", "vs_fresh"});
  table.AddRow("fresh", {fresh_qps, 1.0});
  table.AddRow("degraded", {degraded_qps, degraded_qps / fresh_qps});
  table.AddRow("recovered", {recovered_qps, recovered_qps / fresh_qps});
  table.Print();
  std::printf("\nrepair latency: %s   faults injected: %zu   "
              "degraded queries: %zu\n",
              bench::Ms(repair_seconds).c_str(), faults, degraded_queries);
  std::printf("correctness gate: every degraded/recovered result "
              "bit-identical to the reference -- PASSED\n");

  bench::JsonReport json("fault_recovery", "BENCH_PR6.json");
  json.Add("phases", "fresh_qps", fresh_qps);
  json.Add("phases", "degraded_qps", degraded_qps);
  json.Add("phases", "recovered_qps", recovered_qps);
  json.Add("phases", "degraded_over_fresh", degraded_qps / fresh_qps);
  json.Add("phases", "recovered_over_fresh", recovered_qps / fresh_qps);
  json.Add("recovery", "repair_ms", repair_seconds * 1e3);
  json.Add("recovery", "faults_injected", static_cast<double>(faults));
  json.Add("recovery", "degraded_queries",
           static_cast<double>(degraded_queries));
  json.Write();
  return 0;
}
