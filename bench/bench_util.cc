#include "bench_util.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace imp {
namespace bench {

double Scale() {
  static double scale = [] {
    const char* env = std::getenv("IMP_BENCH_SCALE");
    if (env == nullptr) return 1.0;
    double v = std::atof(env);
    return v > 0 ? v : 1.0;
  }();
  return scale;
}

size_t ScaledRows(size_t base) {
  double rows = static_cast<double>(base) * Scale();
  return rows < 1 ? 1 : static_cast<size_t>(rows);
}

int Reps() {
  static int reps = [] {
    const char* env = std::getenv("IMP_BENCH_REPS");
    if (env == nullptr) return 3;
    int v = std::atoi(env);
    return v > 0 ? v : 3;
  }();
  return reps;
}

double TimeSeconds(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

double MedianSeconds(const std::function<void()>& fn) {
  std::vector<double> times;
  for (int i = 0; i < Reps(); ++i) times.push_back(TimeSeconds(fn));
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

double PercentileUs(std::vector<double> seconds, double q) {
  if (seconds.empty()) return 0;
  std::sort(seconds.begin(), seconds.end());
  size_t idx = std::min(seconds.size() - 1,
                        static_cast<size_t>(q * static_cast<double>(
                                                    seconds.size())));
  return seconds[idx] * 1e6;
}

void PrintFigureHeader(const std::string& figure, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", figure.c_str(), title.c_str());
  std::printf("scale=%.3g (IMP_BENCH_SCALE), reps=%d (IMP_BENCH_REPS)\n",
              Scale(), Reps());
  std::printf("================================================================\n");
}

SeriesTable::SeriesTable(std::string label_header,
                         std::vector<std::string> columns)
    : label_header_(std::move(label_header)), columns_(std::move(columns)) {}

void SeriesTable::AddRow(const std::string& label,
                         const std::vector<double>& values) {
  std::vector<std::string> text;
  text.reserve(values.size());
  for (double v : values) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    text.emplace_back(buf);
  }
  rows_.emplace_back(label, std::move(text));
}

void SeriesTable::AddTextRow(const std::string& label,
                             const std::vector<std::string>& values) {
  rows_.emplace_back(label, values);
}

void SeriesTable::Print() const {
  size_t label_w = label_header_.size();
  for (const auto& [label, _] : rows_) label_w = std::max(label_w, label.size());
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const auto& [_, vals] : rows_) {
      if (c < vals.size()) widths[c] = std::max(widths[c], vals[c].size());
    }
  }
  std::printf("%-*s", static_cast<int>(label_w + 2), label_header_.c_str());
  for (size_t c = 0; c < columns_.size(); ++c) {
    std::printf("%*s", static_cast<int>(widths[c] + 2), columns_[c].c_str());
  }
  std::printf("\n");
  for (const auto& [label, vals] : rows_) {
    std::printf("%-*s", static_cast<int>(label_w + 2), label.c_str());
    for (size_t c = 0; c < columns_.size(); ++c) {
      std::printf("%*s", static_cast<int>(widths[c] + 2),
                  c < vals.size() ? vals[c].c_str() : "-");
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

JsonReport::JsonReport(std::string bench_name)
    : bench_name_(std::move(bench_name)), path_(OutputPath()) {}

JsonReport::JsonReport(std::string bench_name, std::string default_path)
    : bench_name_(std::move(bench_name)), path_(std::move(default_path)) {
  const char* env = std::getenv("IMP_BENCH_JSON");
  if (env != nullptr && env[0] != '\0') path_ = env;
}

void JsonReport::Add(const std::string& group, const std::string& metric,
                     double value) {
  for (auto& [name, metrics] : groups_) {
    if (name == group) {
      metrics.emplace_back(metric, value);
      return;
    }
  }
  groups_.emplace_back(group,
                       std::vector<std::pair<std::string, double>>{
                           {metric, value}});
}

std::string JsonReport::OutputPath() {
  const char* env = std::getenv("IMP_BENCH_JSON");
  return env != nullptr && env[0] != '\0' ? env : "BENCH_PR2.json";
}

namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Split the top level of `{ "key": {...}, ... }` into (key, object-text)
/// pairs by brace counting. Only handles JSON this reporter itself writes
/// (no braces or escaped quotes inside strings); anything unparseable is
/// dropped, which at worst loses another bench's old section.
std::vector<std::pair<std::string, std::string>> SplitTopLevel(
    const std::string& text) {
  std::vector<std::pair<std::string, std::string>> out;
  size_t i = 0;
  auto skip_ws = [&] {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
  };
  skip_ws();
  if (i >= text.size() || text[i] != '{') return out;
  ++i;
  for (;;) {
    skip_ws();
    if (i >= text.size() || text[i] == '}') break;
    if (text[i] == ',') {
      ++i;
      continue;
    }
    if (text[i] != '"') break;
    size_t key_end = text.find('"', i + 1);
    if (key_end == std::string::npos) break;
    std::string key = text.substr(i + 1, key_end - i - 1);
    i = text.find('{', key_end);
    if (i == std::string::npos) break;
    int depth = 0;
    size_t start = i;
    for (; i < text.size(); ++i) {
      if (text[i] == '{') ++depth;
      if (text[i] == '}' && --depth == 0) {
        ++i;
        break;
      }
    }
    if (depth != 0) break;
    out.emplace_back(std::move(key), text.substr(start, i - start));
  }
  return out;
}

}  // namespace

void JsonReport::Write() const {
  // Render this bench's section.
  std::ostringstream section;
  section << "{\n";
  for (size_t g = 0; g < groups_.size(); ++g) {
    section << "    \"" << groups_[g].first << "\": {";
    const auto& metrics = groups_[g].second;
    for (size_t m = 0; m < metrics.size(); ++m) {
      section << "\"" << metrics[m].first
              << "\": " << FormatDouble(metrics[m].second);
      if (m + 1 < metrics.size()) section << ", ";
    }
    section << "}";
    if (g + 1 < groups_.size()) section << ",";
    section << "\n";
  }
  section << "  }";

  // Read-modify-write: preserve other benches' sections.
  const std::string& path = path_;
  std::vector<std::pair<std::string, std::string>> sections;
  {
    std::ifstream in(path);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      sections = SplitTopLevel(buf.str());
    }
  }
  bool replaced = false;
  for (auto& [key, body] : sections) {
    if (key == bench_name_) {
      body = section.str();
      replaced = true;
    }
  }
  if (!replaced) sections.emplace_back(bench_name_, section.str());

  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "JsonReport: cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n";
  for (size_t s = 0; s < sections.size(); ++s) {
    out << "  \"" << sections[s].first << "\": " << sections[s].second;
    if (s + 1 < sections.size()) out << ",";
    out << "\n";
  }
  out << "}\n";
  std::printf("\n[json] merged %zu metric group(s) into %s\n", groups_.size(),
              path.c_str());
}

double TimeMaintain(Maintainer* maintainer,
                    const std::function<void()>& apply_update) {
  apply_update();
  return TimeSeconds([&] {
    auto result = maintainer->MaintainFromBackend();
    IMP_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  });
}

double TimeFullMaintain(const Database& db, const PartitionCatalog& catalog,
                        const PlanPtr& plan) {
  CaptureEngine capture(&db, &catalog);
  return MedianSeconds([&] {
    auto sketch = capture.Capture(plan);
    IMP_CHECK_MSG(sketch.ok(), sketch.status().ToString().c_str());
  });
}

std::string Ms(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1000.0);
  return buf;
}

}  // namespace bench
}  // namespace imp
