#include "bench_util.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace imp {
namespace bench {

double Scale() {
  static double scale = [] {
    const char* env = std::getenv("IMP_BENCH_SCALE");
    if (env == nullptr) return 1.0;
    double v = std::atof(env);
    return v > 0 ? v : 1.0;
  }();
  return scale;
}

size_t ScaledRows(size_t base) {
  double rows = static_cast<double>(base) * Scale();
  return rows < 1 ? 1 : static_cast<size_t>(rows);
}

int Reps() {
  static int reps = [] {
    const char* env = std::getenv("IMP_BENCH_REPS");
    if (env == nullptr) return 3;
    int v = std::atoi(env);
    return v > 0 ? v : 3;
  }();
  return reps;
}

double TimeSeconds(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

double MedianSeconds(const std::function<void()>& fn) {
  std::vector<double> times;
  for (int i = 0; i < Reps(); ++i) times.push_back(TimeSeconds(fn));
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

void PrintFigureHeader(const std::string& figure, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", figure.c_str(), title.c_str());
  std::printf("scale=%.3g (IMP_BENCH_SCALE), reps=%d (IMP_BENCH_REPS)\n",
              Scale(), Reps());
  std::printf("================================================================\n");
}

SeriesTable::SeriesTable(std::string label_header,
                         std::vector<std::string> columns)
    : label_header_(std::move(label_header)), columns_(std::move(columns)) {}

void SeriesTable::AddRow(const std::string& label,
                         const std::vector<double>& values) {
  std::vector<std::string> text;
  text.reserve(values.size());
  for (double v : values) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    text.emplace_back(buf);
  }
  rows_.emplace_back(label, std::move(text));
}

void SeriesTable::AddTextRow(const std::string& label,
                             const std::vector<std::string>& values) {
  rows_.emplace_back(label, values);
}

void SeriesTable::Print() const {
  size_t label_w = label_header_.size();
  for (const auto& [label, _] : rows_) label_w = std::max(label_w, label.size());
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const auto& [_, vals] : rows_) {
      if (c < vals.size()) widths[c] = std::max(widths[c], vals[c].size());
    }
  }
  std::printf("%-*s", static_cast<int>(label_w + 2), label_header_.c_str());
  for (size_t c = 0; c < columns_.size(); ++c) {
    std::printf("%*s", static_cast<int>(widths[c] + 2), columns_[c].c_str());
  }
  std::printf("\n");
  for (const auto& [label, vals] : rows_) {
    std::printf("%-*s", static_cast<int>(label_w + 2), label.c_str());
    for (size_t c = 0; c < columns_.size(); ++c) {
      std::printf("%*s", static_cast<int>(widths[c] + 2),
                  c < vals.size() ? vals[c].c_str() : "-");
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

double TimeMaintain(Maintainer* maintainer,
                    const std::function<void()>& apply_update) {
  apply_update();
  return TimeSeconds([&] {
    auto result = maintainer->MaintainFromBackend();
    IMP_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  });
}

double TimeFullMaintain(const Database& db, const PartitionCatalog& catalog,
                        const PlanPtr& plan) {
  CaptureEngine capture(&db, &catalog);
  return MedianSeconds([&] {
    auto sketch = capture.Capture(plan);
    IMP_CHECK_MSG(sketch.ok(), sketch.status().ToString().c_str());
  });
}

std::string Ms(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1000.0);
  return buf;
}

}  // namespace bench
}  // namespace imp
