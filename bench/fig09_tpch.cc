// Figure 9 (a-c): incremental vs full maintenance on TPC-H-style data.
//  (a)/(b): maintenance runtime for realistic delta sizes (10..1000) at two
//           scale factors; FM as the baseline line.
//  (c):     insert+delete deltas at the larger scale factor.
//
// Queries: Q18-style (join + SUM HAVING), Q5-style (4-way join + HAVING),
// and Q10 (Q_space, top-20 by revenue). Partition: customer.c_custkey.

#include <cstdio>

#include "bench_util.h"
#include "workload/tpch.h"

namespace imp {
namespace {

struct TpchEnv {
  Database db;
  PartitionCatalog catalog;
  Rng rng{99};
  int64_t max_custkey = 0;
  int64_t next_orderkey = 0;
};

void Setup(TpchEnv* env, double sf) {
  TpchSpec spec;
  spec.scale_factor = sf;
  IMP_CHECK(CreateTpchTables(&env->db, spec).ok());
  env->max_custkey =
      static_cast<int64_t>(env->db.GetTable("customer")->NumRows());
  env->next_orderkey =
      static_cast<int64_t>(env->db.GetTable("orders")->NumRows()) + 1;
  IMP_CHECK(env->catalog
                .Register(RangePartition::EquiWidthInt(
                    "customer", "c_custkey", 0, 1, env->max_custkey, 100))
                .ok());
}

/// Insert `n` lineitems attached to fresh orders (half orders, half items
/// when the delta must span both tables).
void InsertDelta(TpchEnv* env, size_t n) {
  std::vector<Tuple> orders;
  std::vector<Tuple> items;
  size_t num_orders = n / 4 + 1;
  for (size_t i = 0; i < num_orders; ++i) {
    orders.push_back(
        TpchOrderRow(env->next_orderkey + static_cast<int64_t>(i),
                     env->max_custkey, &env->rng));
  }
  for (size_t i = 0; i < n; ++i) {
    int64_t ok = env->next_orderkey +
                 env->rng.UniformInt(0, static_cast<int64_t>(num_orders) - 1);
    items.push_back(TpchLineitemRow(ok, static_cast<int64_t>(i + 1), &env->rng));
  }
  env->next_orderkey += static_cast<int64_t>(num_orders);
  IMP_CHECK(env->db.Insert("orders", orders).ok());
  IMP_CHECK(env->db.Insert("lineitem", items).ok());
}

void DeleteDelta(TpchEnv* env, size_t n) {
  IMP_CHECK(env->db
                .Delete("lineitem",
                        [](const Tuple&) { return true; }, n)
                .ok());
}

void RunScale(const char* label, double sf) {
  TpchEnv env;
  Setup(&env, sf);
  std::printf("\n-- %s: customers=%lld orders=%lld lineitems=%lld --\n", label,
              static_cast<long long>(env.db.GetTable("customer")->NumRows()),
              static_cast<long long>(env.db.GetTable("orders")->NumRows()),
              static_cast<long long>(env.db.GetTable("lineitem")->NumRows()));

  struct QueryDef {
    const char* name;
    std::string sql;
  };
  const QueryDef queries[] = {
      {"Q18-having", TpchQ18Sql(200)},
      {"Q5-having", TpchQ5Sql(1000000)},
      {"Q10-topk", TpchQ10Sql()},
  };
  const size_t deltas[] = {10, 50, 100, 500, 1000};

  bench::SeriesTable table(
      "query", {"FM(ms)", "d=10", "d=50", "d=100", "d=500", "d=1000"});
  for (const QueryDef& q : queries) {
    Binder binder(&env.db);
    auto plan = binder.BindQuery(q.sql);
    IMP_CHECK_MSG(plan.ok(), plan.status().ToString().c_str());
    Maintainer maintainer(&env.db, &env.catalog, plan.value());
    IMP_CHECK(maintainer.Initialize().ok());
    std::vector<double> row;
    row.push_back(bench::TimeFullMaintain(env.db, env.catalog, plan.value()) *
                  1000.0);
    for (size_t d : deltas) {
      double secs =
          bench::TimeMaintain(&maintainer, [&] { InsertDelta(&env, d); });
      row.push_back(secs * 1000.0);
    }
    table.AddRow(q.name, row);
  }
  table.Print();

  // (c) insert + delete mixes on the HAVING query.
  std::printf("\n-- %s insert+delete (Q18-having) --\n", label);
  Binder binder(&env.db);
  auto plan = binder.BindQuery(TpchQ18Sql(200));
  IMP_CHECK(plan.ok());
  Maintainer maintainer(&env.db, &env.catalog, plan.value());
  IMP_CHECK(maintainer.Initialize().ok());
  bench::SeriesTable mixed("delta", {"insert(ms)", "delete(ms)", "mixed(ms)"});
  for (size_t d : deltas) {
    double ins =
        bench::TimeMaintain(&maintainer, [&] { InsertDelta(&env, d); });
    double del =
        bench::TimeMaintain(&maintainer, [&] { DeleteDelta(&env, d); });
    double mix = bench::TimeMaintain(&maintainer, [&] {
      InsertDelta(&env, d / 2);
      DeleteDelta(&env, d / 2);
    });
    mixed.AddRow(std::to_string(d),
                 {ins * 1000.0, del * 1000.0, mix * 1000.0});
  }
  mixed.Print();
}

}  // namespace
}  // namespace imp

int main() {
  using namespace imp;
  bench::PrintFigureHeader("Figure 9",
                           "TPC-H: incremental vs full maintenance");
  double base_sf = 0.01 * bench::Scale();
  RunScale("SF-small", base_sf);
  RunScale("SF-large (10x)", base_sf * 10);
  return 0;
}
