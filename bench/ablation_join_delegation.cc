// Ablation: design choices of the delegated join (DESIGN.md §2).
// Compares maintenance cost of the same join query under
//   (1) full configuration: indexed probe + bloom filters,
//   (2) bloom filters but side-scan delegation (no index fast path),
//   (3) indexed probe without bloom filters,
//   (4) neither (plain side-scan delegation).
// The index fast path is disabled for the ablation by hiding the chain
// behind an extra no-op arithmetic projection (the key column is then not
// a plain pass-through, so IncJoin falls back to side evaluation).

#include <cstdio>

#include "bench_util.h"

namespace imp {
namespace {

struct Env {
  Database db;
  PartitionCatalog catalog;
  JoinPairSpec spec;
  Rng rng{3};
  int64_t next_id = 0;

  void Setup() {
    spec.left_name = "t";
    spec.right_name = "h";
    spec.distinct_keys = bench::ScaledRows(20000);
    spec.left_per_key = 1;
    spec.right_per_key = 5;
    IMP_CHECK(CreateJoinPair(&db, spec).ok());
    next_id = static_cast<int64_t>(spec.distinct_keys);
    IMP_CHECK(catalog
                  .Register(RangePartition::EquiWidthInt(
                      "t", "a", 1, 0,
                      static_cast<int64_t>(spec.distinct_keys) - 1, 100))
                  .ok());
  }

  void InsertLeft(size_t n, double join_fraction) {
    std::vector<Tuple> rows;
    for (size_t i = 0; i < n; ++i) {
      bool joins = rng.Chance(join_fraction);
      int64_t key =
          joins ? rng.UniformInt(0, static_cast<int64_t>(spec.distinct_keys) - 1)
                : static_cast<int64_t>(spec.distinct_keys) + next_id;
      rows.push_back(JoinLeftRow(spec, next_id++, key, &rng));
    }
    IMP_CHECK(db.Insert("t", rows).ok());
  }
};

// `w + 0` hides the pass-through, defeating the index fast path only.
const char* kIndexedSql =
    "SELECT a, sum(w) AS sw FROM t JOIN h ON (a = ttid) "
    "GROUP BY a HAVING sum(w) > 0";
const char* kNoIndexSql =
    "SELECT a, sum(w) AS sw "
    "FROM t JOIN (SELECT ttid + 0 AS ttid, w AS w FROM h) hh ON (a = ttid) "
    "GROUP BY a HAVING sum(w) > 0";

}  // namespace
}  // namespace imp

int main() {
  using namespace imp;
  bench::PrintFigureHeader(
      "Ablation", "delegated join: index probe x bloom filters");
  const size_t deltas[] = {10, 100, 1000};
  const double join_fraction = 0.25;  // most delta rows lack partners

  bench::SeriesTable table(
      "delta", {"index+bloom", "scan+bloom", "index only", "scan only"});
  for (size_t d : deltas) {
    std::vector<double> row;
    struct Config {
      const char* sql;
      bool bloom;
    };
    const Config configs[] = {{kIndexedSql, true},
                              {kNoIndexSql, true},
                              {kIndexedSql, false},
                              {kNoIndexSql, false}};
    for (const Config& cfg : configs) {
      Env env;
      env.Setup();
      Binder binder(&env.db);
      auto plan = binder.BindQuery(cfg.sql);
      IMP_CHECK_MSG(plan.ok(), plan.status().ToString().c_str());
      MaintainerOptions opts;
      opts.bloom_filters = cfg.bloom;
      Maintainer maintainer(&env.db, &env.catalog, plan.value(), opts);
      IMP_CHECK(maintainer.Initialize().ok());
      // Warm-up batch so lazy index builds are not billed to the
      // measurement (the paper treats them as one-time costs).
      (void)bench::TimeMaintain(&maintainer,
                                [&] { env.InsertLeft(4, join_fraction); });
      row.push_back(bench::TimeMaintain(&maintainer, [&] {
                      env.InsertLeft(d, join_fraction);
                    }) *
                    1000.0);
    }
    table.AddRow(std::to_string(d), row);
  }
  table.Print();
  std::printf(
      "\nExpected ordering per row (ms): index+bloom <= index only "
      "<< scan variants; bloom narrows the gap for partnerless deltas.\n");
  return 0;
}
