// Figure 11e / 12e: Q_joinsel — join selectivity 1% / 5% / 10%. For small
// deltas the cost is dominated by scanning the other side during the
// delegated join, so selectivity matters less than for large deltas
// (Sec. 8.3.4).

#include <cstdio>

#include "bench_util.h"

namespace imp {
namespace {

struct Env {
  Database db;
  PartitionCatalog catalog;
  JoinPairSpec spec;
  Rng rng{51};
  int64_t next_id = 0;

  void Setup(double selectivity) {
    spec.left_name = "t";
    spec.right_name = "h";
    spec.distinct_keys = bench::ScaledRows(10000);
    spec.left_per_key = 1;
    spec.right_per_key = 10;
    spec.selectivity = selectivity;
    IMP_CHECK(CreateJoinPair(&db, spec).ok());
    next_id = static_cast<int64_t>(spec.distinct_keys);
    IMP_CHECK(catalog
                  .Register(RangePartition::EquiWidthInt(
                      "t", "a", 1, 0,
                      static_cast<int64_t>(spec.distinct_keys) - 1, 100))
                  .ok());
  }

  void InsertLeft(size_t n) {
    std::vector<Tuple> rows;
    for (size_t i = 0; i < n; ++i) {
      int64_t key =
          rng.UniformInt(0, static_cast<int64_t>(spec.distinct_keys) - 1);
      rows.push_back(JoinLeftRow(spec, next_id++, key, &rng));
    }
    IMP_CHECK(db.Insert("t", rows).ok());
  }
};

const char* kQuery =
    "SELECT a, avg(b) AS ab FROM t JOIN h ON (a = ttid) "
    "WHERE b >= 0 GROUP BY a HAVING avg(c) >= 0";

}  // namespace
}  // namespace imp

int main() {
  using namespace imp;
  bench::PrintFigureHeader("Figure 11e / 12e", "Q_joinsel: join selectivity");
  const double selectivities[] = {0.01, 0.05, 0.10};
  const size_t realistic[] = {10, 50, 100, 500, 1000};

  bench::SeriesTable table("selectivity",
                           {"FM(ms)", "d=10", "d=50", "d=100", "d=500",
                            "d=1000", "d=2%", "d=5%"});
  for (double sel : selectivities) {
    Env env;
    env.Setup(sel);
    Binder binder(&env.db);
    auto plan = binder.BindQuery(kQuery);
    IMP_CHECK_MSG(plan.ok(), plan.status().ToString().c_str());
    double fm =
        bench::TimeFullMaintain(env.db, env.catalog, plan.value()) * 1000.0;
    Maintainer maintainer(&env.db, &env.catalog, plan.value());
    IMP_CHECK(maintainer.Initialize().ok());
    std::vector<double> row{fm};
    for (size_t d : realistic) {
      row.push_back(
          bench::TimeMaintain(&maintainer, [&] { env.InsertLeft(d); }) *
          1000.0);
    }
    for (double f : {0.02, 0.05}) {
      size_t d =
          static_cast<size_t>(f * static_cast<double>(env.spec.distinct_keys)) +
          1;
      row.push_back(
          bench::TimeMaintain(&maintainer, [&] { env.InsertLeft(d); }) *
          1000.0);
    }
    char label[16];
    std::snprintf(label, sizeof(label), "%.0f%%", sel * 100);
    table.AddRow(label, row);
  }
  table.Print();
  return 0;
}
