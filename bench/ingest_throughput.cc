// bench_ingest_throughput — update-latency decoupling under asynchronous
// delta ingestion (the PR 3 tentpole claim).
//
// For K sketches over one table, drive a stream of single-row insert
// statements with EAGER maintenance every 8 statements:
//
//   sync  — Update() applies the statement under the caller, and every
//           8th call also pays a full K-sketch maintenance round: the
//           writer's latency is coupled to maintenance pressure and grows
//           with the number of sketches;
//   async — Update() allocates the ticket, enqueues, returns; the
//           background worker applies statements and runs the eager
//           rounds. The writer observes pure enqueue latency — flat in K
//           even while the maintenance thread lags behind the stream.
//
// The bench reports p50/p99 per-statement writer latency for K in
// {1, 4, 8}, plus the drain time (how far the worker lagged). Hard gate
// (exit non-zero): after WaitForIngest() the async system's sketches must
// be bit-identical to the synchronous run's — decoupling must not buy
// speed with staleness bugs. The latency-flatness assertion itself is
// only enforced with IMP_BENCH_ENFORCE_DECOUPLING=1 (shared CI runners
// are too noisy to gate wall-clock ratios); the measured ratios always
// land in BENCH_PR3.json for offline comparison.
//
// The queue is sized to hold the whole stream: the point of the
// measurement is enqueue latency while maintenance lags, not the
// (deliberate, bounded) producer stall under backpressure — that regime
// is covered by tests/ingestion_test.cc.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "workload/driver.h"

namespace imp {
namespace {

constexpr size_t kSketchCounts[] = {1, 4, 8};
constexpr size_t kEagerBatch = 8;

struct RunResult {
  double p50_us = 0;   ///< median writer-visible Update() latency
  double p99_us = 0;
  double drain_seconds = 0;  ///< async: WaitForIngest after the stream
  size_t queue_peak = 0;
  std::vector<std::vector<size_t>> sketches;  ///< drained fragment sets
};

RunResult RunStream(bool async, size_t num_sketches) {
  Database db;
  SyntheticSpec spec;
  spec.name = "edb1";
  spec.num_rows = bench::ScaledRows(20000);
  spec.num_groups = 500;
  IMP_CHECK(CreateSyntheticTable(&db, spec).ok());

  const size_t updates = bench::ScaledRows(1200);

  ImpConfig config;
  config.mode = ExecutionMode::kIncremental;
  config.strategy = MaintenanceStrategy::kEager;
  config.eager_batch_size = kEagerBatch;
  config.shared_delta_fetch = true;
  config.maintenance_threads = 1;
  config.async_ingestion = async;
  config.ingest_queue_capacity = updates + 1;
  ImpSystem system(&db, config);
  IMP_CHECK(system
                .RegisterPartition(RangePartition::EquiWidthInt(
                    "edb1", "a", 1, 0, 499, 100))
                .ok());

  const char* metrics[] = {"b", "c", "d", "e", "f", "g", "h", "i"};
  IMP_CHECK(num_sketches <= 8);
  int64_t rows_per_group = static_cast<int64_t>(spec.num_rows / 500) + 1;
  for (size_t s = 0; s < num_sketches; ++s) {
    std::string q = "SELECT a, sum(" + std::string(metrics[s]) +
                    ") AS s FROM edb1 GROUP BY a HAVING sum(" +
                    std::string(metrics[s]) + ") > " +
                    std::to_string(rows_per_group * 400);
    auto result = system.Query(q);
    IMP_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  }
  IMP_CHECK(system.sketches().size() == num_sketches);

  auto gen = SyntheticInsertGen("edb1", 1, 500,
                                static_cast<int64_t>(spec.num_rows));
  Rng rng(7);
  std::vector<double> latencies;
  latencies.reserve(updates);
  for (size_t u = 0; u < updates; ++u) {
    BoundUpdate update = gen(rng);
    double seconds = bench::TimeSeconds(
        [&] { IMP_CHECK(system.UpdateBound(update).ok()); });
    latencies.push_back(seconds);
  }

  RunResult run;
  run.drain_seconds = bench::TimeSeconds([&] {
    IMP_CHECK(system.WaitForIngest().ok());
    IMP_CHECK(system.MaintainAll().ok());
  });
  run.p50_us = bench::PercentileUs(latencies, 0.50);
  run.p99_us = bench::PercentileUs(latencies, 0.99);
  run.queue_peak = system.stats().ingest_queue_peak;
  for (SketchEntry* entry : system.sketches().AllEntries()) {
    run.sketches.push_back(entry->sketch.fragments.SetBits());
  }
  return run;
}

/// Median p50/p99 over Reps(); sketches/queue fields from the first rep.
RunResult MedianRun(bool async, size_t num_sketches) {
  RunResult first = RunStream(async, num_sketches);
  std::vector<double> p50s = {first.p50_us};
  std::vector<double> p99s = {first.p99_us};
  for (int r = 1; r < bench::Reps(); ++r) {
    RunResult rep = RunStream(async, num_sketches);
    p50s.push_back(rep.p50_us);
    p99s.push_back(rep.p99_us);
  }
  std::sort(p50s.begin(), p50s.end());
  std::sort(p99s.begin(), p99s.end());
  first.p50_us = p50s[p50s.size() / 2];
  first.p99_us = p99s[p99s.size() / 2];
  return first;
}

int Main() {
  bench::PrintFigureHeader(
      "ingest_throughput",
      "Async ingestion: writer latency vs maintenance pressure");

  bench::JsonReport json("ingest_throughput", "BENCH_PR3.json");
  bench::SeriesTable table(
      "sketches", {"sync p50 us", "sync p99 us", "async p50 us",
                   "async p99 us", "drain ms"});

  bool identical = true;
  std::vector<double> async_p99s;
  std::vector<double> sync_p99s;
  for (size_t k : kSketchCounts) {
    RunResult sync_run = MedianRun(false, k);
    RunResult async_run = MedianRun(true, k);
    identical = identical && sync_run.sketches == async_run.sketches;
    async_p99s.push_back(async_run.p99_us);
    sync_p99s.push_back(sync_run.p99_us);

    table.AddRow(std::to_string(k),
                 {sync_run.p50_us, sync_run.p99_us, async_run.p50_us,
                  async_run.p99_us, async_run.drain_seconds * 1e3});
    std::string group = "sketches_" + std::to_string(k);
    json.Add(group, "sync_p50_us", sync_run.p50_us);
    json.Add(group, "sync_p99_us", sync_run.p99_us);
    json.Add(group, "async_p50_us", async_run.p50_us);
    json.Add(group, "async_p99_us", async_run.p99_us);
    json.Add(group, "async_drain_ms", async_run.drain_seconds * 1e3);
    json.Add(group, "queue_peak", static_cast<double>(async_run.queue_peak));
  }
  table.Print();

  // Decoupling ratios: how much p99 writer latency grows from 1 sketch to
  // the largest count, per mode. Coupled (sync) grows with K; decoupled
  // (async) should stay near 1.
  double sync_growth = sync_p99s.back() / std::max(sync_p99s.front(), 1e-9);
  double async_growth =
      async_p99s.back() / std::max(async_p99s.front(), 1e-9);
  json.Add("decoupling", "sync_p99_growth", sync_growth);
  json.Add("decoupling", "async_p99_growth", async_growth);
  std::printf(
      "\np99 growth 1 -> %zu sketches: sync %.2fx, async %.2fx\n"
      "correctness (drained async == sync sketches): %s\n",
      kSketchCounts[sizeof(kSketchCounts) / sizeof(kSketchCounts[0]) - 1],
      sync_growth, async_growth, identical ? "PASS" : "FAIL");
  json.Add("decoupling", "sketches_identical", identical ? 1.0 : 0.0);
  json.Write();
  std::printf("JSON report merged into %s\n",
              std::getenv("IMP_BENCH_JSON") != nullptr
                  ? std::getenv("IMP_BENCH_JSON")
                  : "BENCH_PR3.json");

  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: async-ingested sketches diverged from sync\n");
    return 1;
  }
  const char* enforce = std::getenv("IMP_BENCH_ENFORCE_DECOUPLING");
  if (enforce != nullptr && enforce[0] == '1') {
    // Enqueue latency must be (near-)independent of sketch count while
    // the synchronous path degrades. Compare EXCESS growth (growth - 1),
    // not raw ratios — a perfectly flat async run (1.0x) must pass even
    // when sync only degrades mildly. Bounds chosen loosely: flat within
    // 3x, and accumulating at most half the coupled path's excess once
    // the coupled path degrades measurably.
    double async_excess = async_growth - 1.0;
    double sync_excess = sync_growth - 1.0;
    bool not_flat = async_growth > 3.0;
    bool tracks_coupling = sync_excess > 0.5 && async_excess > sync_excess * 0.5;
    if (not_flat || tracks_coupling) {
      std::fprintf(stderr,
                   "FAIL: async p99 growth %.2fx (sync %.2fx) — enqueue "
                   "latency is not decoupled\n",
                   async_growth, sync_growth);
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace imp

int main() { return imp::Main(); }
