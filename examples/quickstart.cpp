// Quickstart: the paper's running example (Fig. 1 / Ex. 1.1 / Ex. 1.2)
// end to end against the public API.
//
//   1. create the sales table and load the seven example rows,
//   2. register the price range partition φ_price,
//   3. run Q_top through the middleware — a provenance sketch is captured
//      and the query is answered through it,
//   4. insert s8 (which makes the sketch stale),
//   5. run Q_top again — IMP incrementally maintains the sketch and the
//      new HP group appears in the answer.

#include <cstdio>

#include "middleware/imp_system.h"

using namespace imp;

namespace {

void PrintRelation(const char* title, const Relation& rel) {
  std::printf("%s\n", title);
  for (size_t c = 0; c < rel.schema.size(); ++c) {
    std::printf("  %-12s", rel.schema.column(c).name.c_str());
  }
  std::printf("\n");
  for (const Tuple& row : rel.rows) {
    for (const Value& v : row) std::printf("  %-12s", v.ToString().c_str());
    std::printf("\n");
  }
}

}  // namespace

int main() {
  // 1. Backend database with the Fig. 1 sales table.
  Database db;
  Schema schema;
  schema.AddColumn("sid", ValueType::kInt);
  schema.AddColumn("brand", ValueType::kString);
  schema.AddColumn("productName", ValueType::kString);
  schema.AddColumn("price", ValueType::kInt);
  schema.AddColumn("numSold", ValueType::kInt);
  IMP_CHECK(db.CreateTable("sales", schema).ok());
  IMP_CHECK(db.BulkLoad(
                  "sales",
                  {{Value::Int(1), Value::String("Lenovo"),
                    Value::String("ThinkPad T14s Gen 2"), Value::Int(349),
                    Value::Int(1)},
                   {Value::Int(2), Value::String("Lenovo"),
                    Value::String("ThinkPad T14s Gen 2"), Value::Int(449),
                    Value::Int(2)},
                   {Value::Int(3), Value::String("Apple"),
                    Value::String("MacBook Air 13-inch"), Value::Int(1199),
                    Value::Int(1)},
                   {Value::Int(4), Value::String("Apple"),
                    Value::String("MacBook Pro 14-inch"), Value::Int(3875),
                    Value::Int(1)},
                   {Value::Int(5), Value::String("Dell"),
                    Value::String("Dell XPS 13"), Value::Int(1345),
                    Value::Int(1)},
                   {Value::Int(6), Value::String("HP"),
                    Value::String("HP ProBook 450 G9"), Value::Int(999),
                    Value::Int(4)},
                   {Value::Int(7), Value::String("HP"),
                    Value::String("HP ProBook 550 G9"), Value::Int(899),
                    Value::Int(1)}})
                .ok());

  // 2. IMP middleware with the paper's price partition
  //    φ_price = {[1,600], [601,1000], [1001,1500], [1501,10000]}.
  ImpSystem imp(&db);
  IMP_CHECK(imp.RegisterPartition(RangePartition(
                                      "sales", "price", 3,
                                      {Value::Int(1), Value::Int(601),
                                       Value::Int(1001), Value::Int(1501),
                                       Value::Int(10000)}))
                .ok());

  const char* q_top =
      "SELECT brand, sum(price * numSold) AS rev "
      "FROM sales GROUP BY brand HAVING sum(price * numSold) > 5000";

  // 3. First run: captures the sketch P = {ρ3, ρ4} and answers through it.
  auto result = imp.Query(q_top);
  IMP_CHECK(result.ok());
  PrintRelation("\nQ_top before the update (expected: Apple 5074):",
                result.value());
  auto entries = imp.sketches().AllEntries();
  std::printf("\ncaptured sketch: %s (fragments of the global id space)\n",
              entries[0]->sketch.ToString().c_str());

  // 4. Ex. 1.2: insert s8. The HP group's revenue rises to 6194.
  IMP_CHECK(imp.Update("INSERT INTO sales VALUES "
                       "(8, 'HP', 'HP ProBook 650 G10', 1299, 1)")
                .ok());
  std::printf("\ninserted s8 = (8, HP, HP ProBook 650 G10, 1299, 1)\n");

  // 5. Second run: the stale sketch is incrementally maintained (gains ρ2)
  //    and the query now returns HP as well.
  result = imp.Query(q_top);
  IMP_CHECK(result.ok());
  PrintRelation("\nQ_top after the update (expected: Apple 5074, HP 6194):",
                result.value());
  std::printf("\nmaintained sketch: %s\n",
              entries[0]->sketch.ToString().c_str());
  std::printf(
      "\nstats: %zu capture(s), %zu incremental maintenance run(s), "
      "%zu sketch use(s)\n",
      imp.stats().sketch_captures, imp.stats().maintenances,
      imp.stats().sketch_uses);
  return 0;
}
