// Interactive SQL shell over the IMP middleware — a minimal psql-style
// front end that makes the capture / reuse / maintain lifecycle visible.
//
//   build/examples/imp_shell
//
// The shell starts with the demo datasets loaded (sales running example,
// a synthetic table `r500`, and `crimes`), with partitions registered.
// Meta commands:
//   \sketches            list managed sketches with versions & fragments
//   \stats               middleware counters and timings
//   \evict               persist + evict all incremental operator state
//   \mode ns|fm|imp      (printed hint: mode is fixed per session)
//   \q                   quit

#include <cstdio>
#include <iostream>
#include <string>

#include "middleware/imp_system.h"
#include "workload/crimes.h"
#include "workload/synthetic.h"

using namespace imp;

namespace {

void PrintRelation(const Relation& rel, size_t max_rows = 25) {
  for (size_t c = 0; c < rel.schema.size(); ++c) {
    std::printf("%-16s", rel.schema.column(c).name.c_str());
  }
  std::printf("\n");
  for (size_t c = 0; c < rel.schema.size(); ++c) std::printf("%-16s", "----");
  std::printf("\n");
  size_t shown = 0;
  for (const Tuple& row : rel.rows) {
    if (shown++ >= max_rows) {
      std::printf("... (%zu rows total)\n", rel.rows.size());
      return;
    }
    for (const Value& v : row) std::printf("%-16s", v.ToString().c_str());
    std::printf("\n");
  }
  std::printf("(%zu rows)\n", rel.rows.size());
}

void LoadDemoData(Database* db) {
  // Fig. 1 sales table.
  Schema schema;
  schema.AddColumn("sid", ValueType::kInt);
  schema.AddColumn("brand", ValueType::kString);
  schema.AddColumn("productName", ValueType::kString);
  schema.AddColumn("price", ValueType::kInt);
  schema.AddColumn("numSold", ValueType::kInt);
  IMP_CHECK(db->CreateTable("sales", schema).ok());
  IMP_CHECK(db->BulkLoad(
                  "sales",
                  {{Value::Int(1), Value::String("Lenovo"),
                    Value::String("ThinkPad T14s"), Value::Int(349),
                    Value::Int(1)},
                   {Value::Int(2), Value::String("Lenovo"),
                    Value::String("ThinkPad T14s"), Value::Int(449),
                    Value::Int(2)},
                   {Value::Int(3), Value::String("Apple"),
                    Value::String("MacBook Air 13"), Value::Int(1199),
                    Value::Int(1)},
                   {Value::Int(4), Value::String("Apple"),
                    Value::String("MacBook Pro 14"), Value::Int(3875),
                    Value::Int(1)},
                   {Value::Int(5), Value::String("Dell"),
                    Value::String("XPS 13"), Value::Int(1345), Value::Int(1)},
                   {Value::Int(6), Value::String("HP"),
                    Value::String("ProBook 450 G9"), Value::Int(999),
                    Value::Int(4)},
                   {Value::Int(7), Value::String("HP"),
                    Value::String("ProBook 550 G9"), Value::Int(899),
                    Value::Int(1)}})
                .ok());
  SyntheticSpec synth;
  synth.name = "r500";
  synth.num_rows = 20000;
  synth.num_groups = 500;
  IMP_CHECK(CreateSyntheticTable(db, synth).ok());
  CrimesSpec crimes;
  crimes.num_rows = 20000;
  IMP_CHECK(CreateCrimesTable(db, crimes).ok());
}

void PrintSketches(ImpSystem* system) {
  auto entries = system->sketches().AllEntries();
  if (entries.empty()) {
    std::printf("no sketches captured yet\n");
    return;
  }
  for (const SketchEntry* e : entries) {
    // Template keys are multi-line plan dumps; flatten for display.
    std::string key = e->state_key;
    for (char& c : key) {
      if (c == '\n') c = ' ';
    }
    if (key.size() > 70) key = key.substr(0, 67) + "...";
    std::printf("- %-70s  version=%llu  fragments=%zu%s\n", key.c_str(),
                static_cast<unsigned long long>(e->valid_version()),
                e->sketch.NumFragments(),
                e->state_evicted ? "  [state evicted]" : "");
  }
}

void PrintStats(const ImpSystemStats& s) {
  std::printf("queries=%zu updates=%zu captures=%zu uses=%zu "
              "maintenances=%zu\n",
              s.queries, s.updates, s.sketch_captures, s.sketch_uses,
              s.maintenances);
  std::printf("capture=%.2fms maintain=%.2fms query=%.2fms update=%.2fms\n",
              s.capture_seconds * 1000, s.maintain_seconds * 1000,
              s.query_seconds * 1000, s.update_seconds * 1000);
}

}  // namespace

int main() {
  Database db;
  LoadDemoData(&db);
  ImpSystem system(&db);
  IMP_CHECK(system.RegisterPartition(RangePartition(
                                         "sales", "price", 3,
                                         {Value::Int(1), Value::Int(601),
                                          Value::Int(1001), Value::Int(1501),
                                          Value::Int(10000)}))
                .ok());
  IMP_CHECK(system.PartitionTable("r500", "a", 50).ok());
  IMP_CHECK(system.PartitionTable("crimes", "beat", 50).ok());

  std::printf("IMP shell — tables: sales, r500, crimes  (\\q to quit)\n");
  std::printf("try:  SELECT brand, sum(price * numSold) AS rev FROM sales "
              "GROUP BY brand HAVING sum(price * numSold) > 5000;\n\n");

  std::string line;
  std::string statement;
  while (true) {
    std::printf(statement.empty() ? "imp> " : "...> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (statement.empty() && !line.empty() && line[0] == '\\') {
      if (line == "\\q") break;
      if (line == "\\sketches") {
        PrintSketches(&system);
      } else if (line == "\\stats") {
        PrintStats(system.stats());
      } else if (line == "\\evict") {
        Status st = system.EvictSketchStates();
        std::printf("%s\n", st.ok() ? "state evicted to backend"
                                    : st.ToString().c_str());
      } else {
        std::printf("unknown meta command: %s\n", line.c_str());
      }
      continue;
    }
    statement += line;
    statement += "\n";
    if (line.find(';') == std::string::npos && !line.empty()) continue;
    if (statement.find_first_not_of(" \t\n;") == std::string::npos) {
      statement.clear();
      continue;
    }

    // Dispatch: SELECT -> Query, otherwise Update.
    size_t first = statement.find_first_not_of(" \t\n");
    bool is_query = statement.compare(first, 6, "SELECT") == 0 ||
                    statement.compare(first, 6, "select") == 0;
    if (is_query) {
      auto result = system.Query(statement);
      if (result.ok()) {
        PrintRelation(result.value());
      } else {
        std::printf("error: %s\n", result.status().ToString().c_str());
      }
    } else {
      auto result = system.Update(statement);
      if (result.ok()) {
        std::printf("ok (backend version %llu)\n",
                    static_cast<unsigned long long>(result.value()));
      } else {
        std::printf("error: %s\n", result.status().ToString().c_str());
      }
    }
    statement.clear();
  }
  std::printf("\nbye\n");
  return 0;
}
