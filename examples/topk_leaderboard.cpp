// Top-k leaderboard example: a top-10 query over aggregated scores with
// inserts and deletions, demonstrating the top-l buffer optimization
// (Sec. 7.2) and the transparent recapture when a truncated buffer runs
// dry (Sec. 8.4.3).

#include <cstdio>

#include "imp/maintainer.h"
#include "sql/binder.h"
#include "workload/synthetic.h"

using namespace imp;

int main() {
  Database db;
  SyntheticSpec spec;
  spec.name = "scores";
  spec.num_rows = 20000;
  spec.num_groups = 2000;  // 2000 players
  IMP_CHECK(CreateSyntheticTable(&db, spec).ok());

  PartitionCatalog catalog;
  IMP_CHECK(catalog
                .Register(RangePartition::EquiWidthInt("scores", "a", 1, 0,
                                                       1999, 64))
                .ok());

  Binder binder(&db);
  auto plan = binder.BindQuery(
      "SELECT a, sum(b) AS total FROM scores GROUP BY a "
      "ORDER BY total DESC LIMIT 10");
  IMP_CHECK(plan.ok());

  // Two maintainers: exact state vs a truncated top-50 buffer.
  MaintainerOptions exact_opts;
  MaintainerOptions buffered_opts;
  buffered_opts.topk_buffer = 50;
  Maintainer exact(&db, &catalog, plan.value(), exact_opts);
  Maintainer buffered(&db, &catalog, plan.value(), buffered_opts);
  IMP_CHECK(exact.Initialize().ok());
  IMP_CHECK(buffered.Initialize().ok());
  std::printf("state after build: exact %zu KB vs top-50 buffer %zu KB\n",
              exact.StateBytes() / 1024, buffered.StateBytes() / 1024);

  Rng rng(17);
  int64_t next_id = 20000;
  for (int round = 1; round <= 10; ++round) {
    // New scores arrive; occasionally a leading player's rows are wiped
    // (account resets), which can exhaust the truncated buffer.
    std::vector<Tuple> rows;
    for (int i = 0; i < 50; ++i) {
      rows.push_back(SyntheticRow(spec, next_id++, &rng));
    }
    IMP_CHECK(db.Insert("scores", rows).ok());
    if (round % 3 == 0) {
      int64_t player = rng.UniformInt(0, 1999);
      IMP_CHECK(db.Delete("scores", [player](const Tuple& row) {
                    return row[1] == Value::Int(player);
                  }).ok());
    }
    IMP_CHECK(exact.MaintainFromBackend().ok());
    IMP_CHECK(buffered.MaintainFromBackend().ok());
    IMP_CHECK_MSG(exact.sketch().fragments == buffered.sketch().fragments,
                  "sketches diverged");
    std::printf("round %2d: sketch fragments=%zu, buffered recaptures=%zu\n",
                round, buffered.sketch().NumFragments(),
                buffered.stats().recaptures);
  }

  std::printf("\nfinal state: exact %zu KB vs buffered %zu KB "
              "(same sketches, %zu transparent recaptures)\n",
              exact.StateBytes() / 1024, buffered.StateBytes() / 1024,
              buffered.stats().recaptures);
  return 0;
}
