// Retail analytics example: a mixed query/update workload over a synthetic
// orders table, comparing the three execution modes (NS / FM / IMP) that
// the paper evaluates — the scenario its introduction motivates: repeated
// HAVING dashboards over data that keeps receiving new orders.

#include <cstdio>

#include "workload/driver.h"
#include "workload/synthetic.h"

using namespace imp;

namespace {

double RunMode(ExecutionMode mode, const char* name) {
  Database db;
  SyntheticSpec spec;
  spec.name = "orders";
  spec.num_rows = 30000;
  spec.num_groups = 200;  // 200 product categories
  IMP_CHECK(CreateSyntheticTable(&db, spec).ok());

  ImpConfig config;
  config.mode = mode;
  ImpSystem system(&db, config);
  if (mode != ExecutionMode::kNoSketch) {
    IMP_CHECK(system
                  .RegisterPartition(RangePartition::EquiWidthInt(
                      "orders", "b", 2, 0, 700, 64))
                  .ok());
  }

  // Dashboard query: categories whose revenue exceeds a threshold. The
  // thresholds vary but share one template, so IMP keeps reusing (and
  // incrementally maintaining) a single sketch.
  auto first = std::make_shared<bool>(true);
  auto query_gen = [first](Rng& rng) {
    int64_t threshold = 40000;
    if (!*first) threshold += rng.UniformInt(0, 20) * 1000;
    *first = false;
    return "SELECT a, sum(c) AS revenue FROM orders GROUP BY a "
           "HAVING sum(c) > " + std::to_string(threshold);
  };

  MixedWorkloadSpec wl;
  wl.total_ops = 120;
  wl.queries_per_round = 3;
  wl.updates_per_round = 1;
  auto result = RunMixedWorkload(&system, query_gen,
                                 SyntheticInsertGen("orders", 25, 200, 30000),
                                 wl);
  IMP_CHECK(result.ok());
  std::printf(
      "%-4s total %7.1f ms | queries %zu, updates %zu, captures %zu, "
      "maintenances %zu\n",
      name, result.value().total_seconds * 1000.0,
      result.value().queries_run, result.value().updates_run,
      result.value().stats.sketch_captures,
      result.value().stats.maintenances);
  return result.value().total_seconds;
}

}  // namespace

int main() {
  std::printf("Retail HAVING dashboard: 120 mixed ops (3 queries : 1 update, "
              "25-row deltas)\n\n");
  double ns = RunMode(ExecutionMode::kNoSketch, "NS");
  double fm = RunMode(ExecutionMode::kFullMaintenance, "FM");
  double imp_time = RunMode(ExecutionMode::kIncremental, "IMP");
  std::printf("\nspeedup of IMP: %.1fx vs NS, %.1fx vs FM\n",
              ns / imp_time, fm / imp_time);
  return 0;
}
