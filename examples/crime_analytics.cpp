// Crime analytics example: the paper's real-world scenario (Sec. 8.2.2) —
// per-beat crime statistics (CQ1) and hotspot detection (CQ2) over a feed
// of incoming incident reports, answered through incrementally maintained
// provenance sketches.

#include <cstdio>

#include "workload/crimes.h"
#include "middleware/imp_system.h"

using namespace imp;

int main() {
  Database db;
  CrimesSpec spec;
  spec.num_rows = 100000;
  IMP_CHECK(CreateCrimesTable(&db, spec).ok());

  ImpSystem imp(&db);
  IMP_CHECK(imp.RegisterPartition(RangePartition::EquiWidthInt(
                                      "crimes", "beat", 1, 1, spec.num_beats,
                                      50))
                .ok());

  int64_t hotspot_threshold = spec.num_rows / static_cast<size_t>(spec.num_beats);
  std::string cq2 = CrimesCq2Sql(hotspot_threshold);

  // Initial dashboards: capture sketches for both query templates.
  auto cq1_result = imp.Query(CrimesCq1Sql());
  IMP_CHECK(cq1_result.ok());
  auto cq2_result = imp.Query(cq2);
  IMP_CHECK(cq2_result.ok());
  std::printf("initial: CQ1 groups=%zu, CQ2 hotspots=%zu (threshold %lld), "
              "sketches captured=%zu\n",
              cq1_result.value().size(), cq2_result.value().size(),
              static_cast<long long>(hotspot_threshold),
              imp.stats().sketch_captures);

  // Stream of incident batches; dashboards refresh after each batch.
  Rng rng(13);
  int64_t next_id = static_cast<int64_t>(spec.num_rows);
  for (int batch = 1; batch <= 5; ++batch) {
    BoundUpdate update;
    update.kind = BoundUpdate::Kind::kInsert;
    update.table = "crimes";
    for (int i = 0; i < 500; ++i) {
      update.rows.push_back(CrimesRow(spec, next_id++, &rng));
    }
    IMP_CHECK(imp.UpdateBound(update).ok());

    cq2_result = imp.Query(cq2);
    IMP_CHECK(cq2_result.ok());
    std::printf("batch %d (+500 incidents): hotspots=%zu, maintenances=%zu\n",
                batch, cq2_result.value().size(), imp.stats().maintenances);
  }

  std::printf("\ntotals: capture %.1f ms, incremental maintenance %.1f ms, "
              "query execution %.1f ms\n",
              imp.stats().capture_seconds * 1000.0,
              imp.stats().maintain_seconds * 1000.0,
              imp.stats().query_seconds * 1000.0);
  std::printf("(compare: one full recapture costs about as much as the "
              "initial capture — incremental maintenance of 500-row deltas "
              "is orders of magnitude cheaper)\n");
  return 0;
}
