// Unit tests for the expression system: evaluation, null handling, template
// printing, column remapping.

#include <gtest/gtest.h>

#include "expr/expr.h"

namespace imp {
namespace {

ExprPtr Col(size_t i, const char* name = "c",
            ValueType t = ValueType::kInt) {
  return MakeColumnRef(i, name, t);
}

TEST(ExprTest, LiteralEval) {
  EXPECT_EQ(MakeLiteral(Value::Int(7))->Eval({}), Value::Int(7));
  EXPECT_EQ(MakeLiteral(Value::Int(7))->result_type(), ValueType::kInt);
}

TEST(ExprTest, ColumnRefEval) {
  Tuple row{Value::Int(1), Value::String("x")};
  EXPECT_EQ(Col(0)->Eval(row), Value::Int(1));
  EXPECT_EQ(Col(1, "s", ValueType::kString)->Eval(row), Value::String("x"));
}

TEST(ExprTest, ArithmeticEvalAndTypes) {
  Tuple row{Value::Int(6), Value::Double(2.0)};
  ExprPtr sum = MakeBinary(BinaryOp::kAdd, Col(0), Col(1, "d", ValueType::kDouble));
  EXPECT_EQ(sum->result_type(), ValueType::kDouble);
  EXPECT_EQ(sum->Eval(row), Value::Double(8.0));
  ExprPtr prod = MakeBinary(BinaryOp::kMul, Col(0), MakeLiteral(Value::Int(3)));
  EXPECT_EQ(prod->result_type(), ValueType::kInt);
  EXPECT_EQ(prod->Eval(row), Value::Int(18));
}

TEST(ExprTest, ComparisonsAndBoolean) {
  Tuple row{Value::Int(5)};
  ExprPtr gt3 = MakeBinary(BinaryOp::kGt, Col(0), MakeLiteral(Value::Int(3)));
  ExprPtr lt4 = MakeBinary(BinaryOp::kLt, Col(0), MakeLiteral(Value::Int(4)));
  EXPECT_TRUE(gt3->Eval(row).IsTrue());
  EXPECT_FALSE(lt4->Eval(row).IsTrue());
  EXPECT_FALSE(MakeBinary(BinaryOp::kAnd, gt3, lt4)->Eval(row).IsTrue());
  EXPECT_TRUE(MakeBinary(BinaryOp::kOr, gt3, lt4)->Eval(row).IsTrue());
  EXPECT_TRUE(MakeUnary(UnaryOp::kNot, lt4)->Eval(row).IsTrue());
}

TEST(ExprTest, ComparisonWithNullIsFalse) {
  Tuple row{Value::Null()};
  ExprPtr eq = MakeBinary(BinaryOp::kEq, Col(0), MakeLiteral(Value::Int(1)));
  ExprPtr ne = MakeBinary(BinaryOp::kNe, Col(0), MakeLiteral(Value::Int(1)));
  EXPECT_FALSE(eq->Eval(row).IsTrue());
  EXPECT_FALSE(ne->Eval(row).IsTrue());
}

TEST(ExprTest, BetweenInclusive) {
  ExprPtr between = MakeBetween(Col(0), MakeLiteral(Value::Int(10)),
                                MakeLiteral(Value::Int(20)));
  EXPECT_TRUE(between->Eval({Value::Int(10)}).IsTrue());
  EXPECT_TRUE(between->Eval({Value::Int(20)}).IsTrue());
  EXPECT_TRUE(between->Eval({Value::Int(15)}).IsTrue());
  EXPECT_FALSE(between->Eval({Value::Int(9)}).IsTrue());
  EXPECT_FALSE(between->Eval({Value::Int(21)}).IsTrue());
}

TEST(ExprTest, ToStringPlainAndTemplated) {
  ExprPtr pred = MakeBinary(BinaryOp::kGt, Col(0, "a"),
                            MakeLiteral(Value::Int(3)));
  EXPECT_EQ(pred->ToString(false), "(a > 3)");
  // Template mode replaces constants with '?' (query templates, Sec. 7.1).
  EXPECT_EQ(pred->ToString(true), "(a > ?)");
}

TEST(ExprTest, TemplatesEqualAcrossConstants) {
  ExprPtr p1 = MakeBinary(BinaryOp::kGt, Col(0, "a"),
                          MakeLiteral(Value::Int(3)));
  ExprPtr p2 = MakeBinary(BinaryOp::kGt, Col(0, "a"),
                          MakeLiteral(Value::Int(9999)));
  EXPECT_EQ(p1->ToString(true), p2->ToString(true));
  EXPECT_NE(p1->ToString(false), p2->ToString(false));
}

TEST(ExprTest, CollectColumns) {
  ExprPtr e = MakeBinary(
      BinaryOp::kAdd, Col(2),
      MakeBinary(BinaryOp::kMul, Col(5), MakeLiteral(Value::Int(2))));
  std::vector<size_t> cols;
  e->CollectColumns(&cols);
  ASSERT_EQ(cols.size(), 2u);
  EXPECT_EQ(cols[0], 2u);
  EXPECT_EQ(cols[1], 5u);
}

TEST(ExprTest, RemapColumns) {
  ExprPtr e = MakeBinary(BinaryOp::kLt, Col(3, "b"),
                         MakeLiteral(Value::Int(10)));
  std::vector<int> mapping(5, -1);
  mapping[3] = 0;
  ExprPtr remapped = e->RemapColumns(mapping);
  EXPECT_TRUE(remapped->Eval({Value::Int(5)}).IsTrue());
  EXPECT_FALSE(remapped->Eval({Value::Int(15)}).IsTrue());
}

TEST(ExprTest, ConjunctionDisjunctionFactories) {
  ExprPtr t = MakeConjunction({});
  EXPECT_TRUE(t->Eval({}).IsTrue());  // empty conjunction == true
  ExprPtr f = MakeDisjunction({});
  EXPECT_FALSE(f->Eval({}).IsTrue());  // empty disjunction == false
  ExprPtr a = MakeBinary(BinaryOp::kGt, Col(0), MakeLiteral(Value::Int(1)));
  ExprPtr b = MakeBinary(BinaryOp::kLt, Col(0), MakeLiteral(Value::Int(5)));
  ExprPtr conj = MakeConjunction({a, b});
  EXPECT_TRUE(conj->Eval({Value::Int(3)}).IsTrue());
  EXPECT_FALSE(conj->Eval({Value::Int(7)}).IsTrue());
}

TEST(ExprTest, ExprPredicateWrapper) {
  auto pred = ExprPredicate(
      MakeBinary(BinaryOp::kEq, Col(0), MakeLiteral(Value::Int(4))));
  EXPECT_TRUE(pred({Value::Int(4)}));
  EXPECT_FALSE(pred({Value::Int(5)}));
}

TEST(ExprTest, StringConcatViaAdd) {
  ExprPtr cat = MakeBinary(BinaryOp::kAdd,
                           MakeLiteral(Value::String("ab")),
                           MakeLiteral(Value::String("cd")));
  EXPECT_EQ(cat->Eval({}), Value::String("abcd"));
}

TEST(ExprTest, NegationOfDouble) {
  ExprPtr neg = MakeUnary(UnaryOp::kNeg, MakeLiteral(Value::Double(2.5)));
  EXPECT_EQ(neg->Eval({}), Value::Double(-2.5));
  EXPECT_EQ(neg->result_type(), ValueType::kDouble);
}

}  // namespace
}  // namespace imp
