// Concurrency stress tests for the sharded, snapshot-isolated sketch front
// end (run under the TSan CI job, repeated until-fail):
//
//  * linearizability of Query against the stable watermark: reader threads
//    racing the ingestion worker and a MaintainAll thread must each return
//    a result bit-identical to the fully serialized run at SOME watermark
//    within the query's [before, after] window;
//  * readers on one table proceeding while another table's shard is being
//    maintained (cross-table results stay correct under the same racing
//    load);
//  * a reader-held SketchSnapshot staying self-consistent across a
//    concurrent RepartitionTable, while queries racing the repartition
//    keep returning correct results;
//  * the delta-log truncation driven after MaintainAll: the boundary is
//    the minimum valid_version across shards, a failed-restore entry holds
//    the boundary back (its repair window must survive), and repairing it
//    releases the boundary.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "exec/executor.h"
#include "middleware/imp_system.h"
#include "test_util.h"
#include "workload/synthetic.h"

namespace imp {
namespace {

constexpr size_t kGroups = 20;

/// A deterministic single-row insert statement stream for `table`:
/// statement k inserts the same row in every run.
BoundUpdate InsertStatement(const std::string& table, size_t k,
                            int64_t start_id) {
  SyntheticSpec spec;
  spec.num_groups = kGroups;
  Rng rng(k * 977 + 13);
  BoundUpdate update;
  update.kind = BoundUpdate::Kind::kInsert;
  update.table = table;
  update.rows.push_back(
      SyntheticRow(spec, start_id + static_cast<int64_t>(k), &rng));
  return update;
}

/// The serialized expectation: apply the statement stream one statement at
/// a time to a reference database and record the query result after each
/// prefix. expected[v] is the result of `sql` at watermark v.
std::vector<Relation> SerialResultsPerVersion(
    const std::string& table, const std::string& sql, size_t num_statements,
    int64_t start_id, const SyntheticSpec& spec) {
  Database ref;
  IMP_CHECK(CreateSyntheticTable(&ref, spec).ok());
  PlanPtr plan = MustBind(ref, sql);
  Executor exec(&ref);
  std::vector<Relation> expected;
  expected.reserve(num_statements + 1);
  auto at_version = exec.Execute(plan);
  IMP_CHECK(at_version.ok());
  expected.push_back(std::move(at_version).value());
  for (size_t k = 0; k < num_statements; ++k) {
    BoundUpdate update = InsertStatement(table, k, start_id);
    IMP_CHECK(ref.Insert(table, update.rows).ok());
    auto result = exec.Execute(plan);
    IMP_CHECK(result.ok());
    expected.push_back(std::move(result).value());
  }
  return expected;
}

/// One observed query: the result plus the watermark window it ran in.
struct Observation {
  uint64_t before = 0;
  uint64_t after = 0;
  Relation result;
};

/// True iff `obs.result` matches the serialized result at some watermark
/// within its window.
bool MatchesSomeWatermark(const Observation& obs,
                          const std::vector<Relation>& expected) {
  for (uint64_t v = obs.before; v <= obs.after && v < expected.size(); ++v) {
    if (obs.result.SameBag(expected[v])) return true;
  }
  return false;
}

TEST(ConcurrentFrontendTest, QueriesMatchSerialRunAtTheirWatermark) {
  SyntheticSpec spec;
  spec.name = "t";
  spec.num_rows = 400;
  spec.num_groups = kGroups;
  const size_t kStatements = 48;
  const int64_t kStartId = 100000;
  const std::string sql =
      "SELECT a, sum(b) AS sb FROM t GROUP BY a HAVING sum(b) > 1500";
  std::vector<Relation> expected =
      SerialResultsPerVersion("t", sql, kStatements, kStartId, spec);

  Database db;
  ASSERT_TRUE(CreateSyntheticTable(&db, spec).ok());
  ImpConfig config;
  config.mode = ExecutionMode::kIncremental;
  config.strategy = MaintenanceStrategy::kEager;
  config.eager_batch_size = 4;
  config.async_ingestion = true;
  config.ingest_queue_capacity = kStatements + 1;
  ImpSystem system(&db, config);
  ASSERT_TRUE(system
                  .RegisterPartition(RangePartition::EquiWidthInt(
                      "t", "a", 1, 0, kGroups - 1, 6))
                  .ok());
  // Seed the sketch before the race so every reader goes through it.
  ASSERT_TRUE(system.Query(sql).ok());

  std::atomic<bool> stop{false};
  std::atomic<size_t> completed{0};
  const size_t kReaders = 4;
  std::vector<std::vector<Observation>> observations(kReaders);
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      while (!stop.load(std::memory_order_acquire)) {
        Observation obs;
        obs.before = db.StableVersion();
        auto result = system.Query(sql);
        obs.after = db.StableVersion();
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        obs.result = std::move(result).value();
        observations[r].push_back(std::move(obs));
        completed.fetch_add(1, std::memory_order_release);
      }
    });
  }
  std::thread maintainer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      ASSERT_TRUE(system.MaintainAll().ok());
    }
  });

  // Writer (this thread): enqueue the deterministic statement stream while
  // readers and the maintainer race it.
  for (size_t k = 0; k < kStatements; ++k) {
    ASSERT_TRUE(system.UpdateBound(InsertStatement("t", k, kStartId)).ok());
  }
  ASSERT_TRUE(system.WaitForIngest().ok());
  // The lock-free worker no longer waits behind readers, so on a loaded
  // single-CPU box the drain can outrun them entirely; keep the window
  // open until enough queries completed for the assertions below to mean
  // something (post-drain queries still observe valid windows at the
  // final watermark).
  while (completed.load(std::memory_order_acquire) < kReaders) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  maintainer.join();

  size_t total = 0;
  for (size_t r = 0; r < kReaders; ++r) {
    for (const Observation& obs : observations[r]) {
      ASSERT_TRUE(MatchesSomeWatermark(obs, expected))
          << "reader " << r << " window [" << obs.before << ", " << obs.after
          << "] returned a result matching no serialized watermark:\n"
          << obs.result.ToString();
      ++total;
    }
  }
  ASSERT_GT(total, 0u);

  // Quiesced: the final answer equals the full serialized run's.
  ASSERT_TRUE(system.MaintainAll().ok());
  auto final_result = system.Query(sql);
  ASSERT_TRUE(final_result.ok());
  EXPECT_TRUE(final_result.value().SameBag(expected.back()));
  // The race must actually have exercised the lock-free snapshot path.
  EXPECT_GT(system.stats().snapshot_reads, 0u);
}

TEST(ConcurrentFrontendTest, ReadViewsStayConsistentUnderBatchedIngestLoad) {
  // Storage-level counterpart of the linearizability test: while the
  // ingestion worker (with batched apply: several statements per
  // publication cycle), eager maintenance rounds and delta-log truncation
  // sweeps all race, every ReadView opened mid-flight must still pin the
  // serialized database at its watermark — single-row inserts make that
  // checkable as rows(t) == initial + watermark — with per-table version
  // stamps at or below the watermark and publication epochs that never
  // run backwards for any observer.
  SyntheticSpec spec;
  spec.name = "t";
  spec.num_rows = 300;
  spec.num_groups = kGroups;
  const size_t kStatements = 64;
  const int64_t kStartId = 200000;
  const std::string sql =
      "SELECT a, sum(b) AS sb FROM t GROUP BY a HAVING sum(b) > 1500";

  Database db;
  ASSERT_TRUE(CreateSyntheticTable(&db, spec).ok());
  ImpConfig config;
  config.mode = ExecutionMode::kIncremental;
  config.strategy = MaintenanceStrategy::kEager;
  config.eager_batch_size = 4;
  config.async_ingestion = true;
  config.ingest_queue_capacity = kStatements + 1;
  config.ingest_apply_batch = 8;  // several statements per publication
  ImpSystem system(&db, config);
  ASSERT_TRUE(system
                  .RegisterPartition(RangePartition::EquiWidthInt(
                      "t", "a", 1, 0, kGroups - 1, 6))
                  .ok());
  ASSERT_TRUE(system.Query(sql).ok());

  std::atomic<bool> stop{false};
  std::vector<std::thread> pollers;
  for (int r = 0; r < 2; ++r) {
    pollers.emplace_back([&] {
      uint64_t last_watermark = 0;
      uint64_t last_epoch = 0;
      while (!stop.load(std::memory_order_acquire)) {
        ReadView view = db.OpenReadView();
        uint64_t w = view.watermark();
        ASSERT_GE(w, last_watermark);
        last_watermark = w;
        const TableSnapshot* snap = view.Find("t");
        ASSERT_NE(snap, nullptr);
        ASSERT_EQ(snap->num_rows(), spec.num_rows + w);
        ASSERT_LE(snap->version(), w);
        ASSERT_GE(snap->epoch(), last_epoch);
        last_epoch = snap->epoch();
      }
    });
  }
  std::thread querier([&] {
    while (!stop.load(std::memory_order_acquire)) {
      auto result = system.Query(sql);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
    }
  });
  std::thread truncator([&] {
    while (!stop.load(std::memory_order_acquire)) {
      ASSERT_TRUE(system.MaintainAll().ok());  // drives the truncation sweep
      std::this_thread::yield();
    }
  });

  for (size_t k = 0; k < kStatements; ++k) {
    ASSERT_TRUE(system.UpdateBound(InsertStatement("t", k, kStartId)).ok());
  }
  ASSERT_TRUE(system.WaitForIngest().ok());
  stop.store(true, std::memory_order_release);
  for (std::thread& t : pollers) t.join();
  querier.join();
  truncator.join();

  // Drained: the watermark caught up, the published snapshot holds every
  // row, and the worker really did collapse statements into batches.
  ReadView final_view = db.OpenReadView();
  EXPECT_EQ(final_view.watermark(), kStatements);
  EXPECT_EQ(final_view.Find("t")->num_rows(), spec.num_rows + kStatements);
  EXPECT_GE(system.stats().ingest_batches, 1u);
  EXPECT_LE(system.stats().ingest_batch_max, 8u);
}

TEST(ConcurrentFrontendTest, ReadersAcrossTablesRaceMaintenanceCorrectly) {
  // Two tables, one sketch each — updates and maintenance on `u` must not
  // corrupt (or serialize away the correctness of) reads on `t` and vice
  // versa. Both query streams are validated against their serialized
  // expectation; the interleaving of the two tables' statements is fixed
  // by ticket order (a single writer thread alternates tables), so each
  // table sees its own deterministic prefix at every watermark.
  SyntheticSpec spec_t;
  spec_t.name = "t";
  spec_t.num_rows = 300;
  spec_t.num_groups = kGroups;
  SyntheticSpec spec_u = spec_t;
  spec_u.name = "u";
  spec_u.seed = 43;

  // Statement k in the run targets t when k is even, u when odd; the
  // per-table sub-stream is deterministic, and a watermark w corresponds
  // to ceil(w/2) statements on t and floor(w/2) on u.
  const size_t kStatements = 40;
  const int64_t kStartId = 200000;
  const std::string sql_t =
      "SELECT a, sum(b) AS sb FROM t GROUP BY a HAVING sum(b) > 1200";
  const std::string sql_u =
      "SELECT a, count(*) AS n FROM u GROUP BY a HAVING count(*) > 10";

  // Per-table serialized expectations, indexed by the table's OWN
  // statement count.
  std::vector<Relation> expected_t = SerialResultsPerVersion(
      "t", sql_t, (kStatements + 1) / 2, kStartId, spec_t);
  std::vector<Relation> expected_u = SerialResultsPerVersion(
      "u", sql_u, kStatements / 2, kStartId, spec_u);

  Database db;
  ASSERT_TRUE(CreateSyntheticTable(&db, spec_t).ok());
  ASSERT_TRUE(CreateSyntheticTable(&db, spec_u).ok());
  ImpConfig config;
  config.mode = ExecutionMode::kIncremental;
  config.strategy = MaintenanceStrategy::kEager;
  config.eager_batch_size = 4;
  config.async_ingestion = true;
  config.ingest_queue_capacity = kStatements + 1;
  ImpSystem system(&db, config);
  ASSERT_TRUE(system
                  .RegisterPartition(RangePartition::EquiWidthInt(
                      "t", "a", 1, 0, kGroups - 1, 6))
                  .ok());
  ASSERT_TRUE(system
                  .RegisterPartition(RangePartition::EquiWidthInt(
                      "u", "a", 1, 0, kGroups - 1, 5))
                  .ok());
  ASSERT_TRUE(system.Query(sql_t).ok());
  ASSERT_TRUE(system.Query(sql_u).ok());

  auto statements_on_t = [](uint64_t watermark) {
    return (watermark + 1) / 2;  // t owns odd tickets 1, 3, 5, ...
  };
  auto statements_on_u = [](uint64_t watermark) { return watermark / 2; };

  std::atomic<bool> stop{false};
  struct TableReader {
    const std::string* sql;
    const std::vector<Relation>* expected;
    std::function<size_t(uint64_t)> own_statements;
    std::vector<Observation> observations;
  };
  std::vector<TableReader> tracks(2);
  tracks[0] = {&sql_t, &expected_t, statements_on_t, {}};
  tracks[1] = {&sql_u, &expected_u, statements_on_u, {}};

  std::vector<std::thread> readers;
  for (TableReader& track : tracks) {
    readers.emplace_back([&, track_ptr = &track] {
      while (!stop.load(std::memory_order_acquire)) {
        Observation obs;
        obs.before = db.StableVersion();
        auto result = system.Query(*track_ptr->sql);
        obs.after = db.StableVersion();
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        obs.result = std::move(result).value();
        track_ptr->observations.push_back(std::move(obs));
      }
    });
  }
  std::thread maintainer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      ASSERT_TRUE(system.MaintainAll().ok());
    }
  });

  for (size_t k = 0; k < kStatements; ++k) {
    const std::string table = (k % 2 == 0) ? "t" : "u";
    ASSERT_TRUE(
        system.UpdateBound(InsertStatement(table, k / 2, kStartId)).ok());
  }
  ASSERT_TRUE(system.WaitForIngest().ok());
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  maintainer.join();

  for (const TableReader& track : tracks) {
    for (const Observation& obs : track.observations) {
      // Map the global watermark window onto the table's own statement
      // counts; the result must match one of those serialized prefixes.
      size_t lo = track.own_statements(obs.before);
      size_t hi = track.own_statements(obs.after);
      bool matched = false;
      for (size_t v = lo; v <= hi && v < track.expected->size(); ++v) {
        if (obs.result.SameBag((*track.expected)[v])) {
          matched = true;
          break;
        }
      }
      ASSERT_TRUE(matched)
          << *track.sql << " window [" << obs.before << ", " << obs.after
          << "] matched no serialized prefix:\n"
          << obs.result.ToString();
    }
  }
}

TEST(ConcurrentFrontendTest, PinnedSnapshotSurvivesRepartition) {
  Database db;
  SyntheticSpec spec;
  spec.name = "t";
  spec.num_rows = 500;
  spec.num_groups = kGroups;
  ASSERT_TRUE(CreateSyntheticTable(&db, spec).ok());
  ImpConfig config;
  config.mode = ExecutionMode::kIncremental;
  ImpSystem system(&db, config);
  ASSERT_TRUE(system.PartitionTable("t", "a", 6).ok());
  const std::string sql =
      "SELECT a, sum(b) AS sb FROM t GROUP BY a HAVING sum(b) > 1500";
  auto baseline = system.Query(sql);
  ASSERT_TRUE(baseline.ok());

  auto entries = system.sketches().AllEntries();
  ASSERT_EQ(entries.size(), 1u);
  // Pin the pre-repartition snapshot like a reader would.
  std::shared_ptr<const SketchSnapshot> pinned = entries[0]->Snapshot();
  const std::vector<size_t> pinned_bits = pinned->sketch.fragments.SetBits();
  const uint64_t pinned_version = pinned->valid_version();
  const uint64_t pinned_epoch = pinned->epoch;

  // Readers race a repartition loop. The data never changes, so every
  // query result must equal the baseline regardless of which catalog
  // epoch it executed under.
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (size_t r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        auto result = system.Query(sql);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        ASSERT_TRUE(result.value().SameBag(baseline.value()));
      }
    });
  }
  for (size_t fragments = 4; fragments <= 8; ++fragments) {
    ASSERT_TRUE(system.RepartitionTable("t", "a", fragments).ok());
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  // The pinned snapshot is untouched by every publication that happened
  // behind it: same fragments, same version, same epoch.
  EXPECT_EQ(pinned->sketch.fragments.SetBits(), pinned_bits);
  EXPECT_EQ(pinned->valid_version(), pinned_version);
  EXPECT_EQ(pinned->epoch, pinned_epoch);
  // The entry itself moved on (recaptures republished), and the system
  // still answers correctly on the final catalog.
  EXPECT_GT(entries[0]->Snapshot()->epoch, pinned_epoch);
  auto after = system.Query(sql);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after.value().SameBag(baseline.value()));
}

TEST(ConcurrentFrontendTest, UnsketchableCacheInvalidatedByNewPartition) {
  Database db;
  SyntheticSpec spec_t;
  spec_t.name = "t";
  spec_t.num_rows = 200;
  spec_t.num_groups = 10;
  SyntheticSpec spec_u = spec_t;
  spec_u.name = "u";
  ASSERT_TRUE(CreateSyntheticTable(&db, spec_t).ok());
  ASSERT_TRUE(CreateSyntheticTable(&db, spec_u).ok());
  ImpSystem system(&db, ImpConfig{});
  // Only `t` is partitioned: queries over `u` are unsketchable and must
  // fall back to plain execution (cached negatively after the first try).
  ASSERT_TRUE(system.PartitionTable("t", "a", 5).ok());
  const std::string sql =
      "SELECT a, sum(b) AS sb FROM u GROUP BY a HAVING sum(b) > 500";
  auto plain = system.Query(sql);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(system.Query(sql).ok());  // steady state: negative-cache hit
  EXPECT_EQ(system.sketches().size(), 0u);

  // Registering a partition for `u` invalidates the verdict: the next
  // query captures a sketch and still answers identically.
  ASSERT_TRUE(system.PartitionTable("u", "a", 5).ok());
  auto sketched = system.Query(sql);
  ASSERT_TRUE(sketched.ok());
  EXPECT_EQ(system.sketches().size(), 1u);
  EXPECT_TRUE(sketched.value().SameBag(plain.value()));
}

TEST(ConcurrentFrontendTest, FailedRepartitionLeavesCatalogAndAnswersIntact) {
  Database db;
  SyntheticSpec spec;
  spec.name = "t";
  spec.num_rows = 300;
  spec.num_groups = 10;
  ASSERT_TRUE(CreateSyntheticTable(&db, spec).ok());
  ImpSystem system(&db, ImpConfig{});
  ASSERT_TRUE(system.PartitionTable("t", "a", 5).ok());
  const std::string sql =
      "SELECT a, sum(b) AS sb FROM t GROUP BY a HAVING sum(b) > 500";
  auto baseline = system.Query(sql);
  ASSERT_TRUE(baseline.ok());

  // A repartition that fails VALIDATION must not have touched the catalog
  // (the fragment-id space only changes after validation passes), so the
  // published snapshots keep answering correctly.
  ASSERT_FALSE(system.RepartitionTable("t", "no_such_column", 4).ok());
  ASSERT_FALSE(system.RepartitionTable("no_such_table", "a", 4).ok());
  auto after = system.Query(sql);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after.value().SameBag(baseline.value()));
}

TEST(ConcurrentFrontendTest, FailedRepartitionSkipsSketchBookkeeping) {
  // Regression: the failure path used to grab the exclusive front-end
  // lock, clear every shard's unsketchable cache and walk the entries
  // BEFORE validating the request — a repartition doomed by a bad column
  // serialized all readers and re-enabled capture attempts for templates
  // known to be unsketchable. Validation now fails fast, before any lock
  // or bookkeeping: the negative cache, the entries' filter sets and the
  // published sketch snapshots must all come through untouched.
  Database db;
  SyntheticSpec spec_t;
  spec_t.name = "t";
  spec_t.num_rows = 200;
  spec_t.num_groups = 10;
  SyntheticSpec spec_u = spec_t;
  spec_u.name = "u";
  ASSERT_TRUE(CreateSyntheticTable(&db, spec_t).ok());
  ASSERT_TRUE(CreateSyntheticTable(&db, spec_u).ok());
  ImpSystem system(&db, ImpConfig{});
  ASSERT_TRUE(system.PartitionTable("t", "a", 5).ok());

  // One sketched template on `t`, one unsketchable template on `u`.
  ASSERT_TRUE(
      system.Query("SELECT a, sum(b) AS sb FROM t GROUP BY a "
                   "HAVING sum(b) > 500")
          .ok());
  ASSERT_TRUE(
      system.Query("SELECT a, sum(b) AS sb FROM u GROUP BY a "
                   "HAVING sum(b) > 500")
          .ok());
  ASSERT_EQ(system.sketches().size(), 1u);
  SketchManager::Shard* u_shard = system.sketches().FindShard("u");
  ASSERT_NE(u_shard, nullptr);
  ASSERT_EQ(u_shard->unsketchable.size(), 1u);
  SketchEntry* entry = system.sketches().AllEntries()[0];
  ASSERT_FALSE(entry->filter_tables.empty());
  uint64_t epoch_before = entry->Snapshot()->epoch;

  ASSERT_FALSE(system.RepartitionTable("t", "no_such_column", 4).ok());
  ASSERT_FALSE(system.RepartitionTable("ghost", "a", 4).ok());
  // PartitionTable shares the contract: validation failures are
  // side-effect-free too.
  ASSERT_FALSE(system.PartitionTable("t", "no_such_column", 4).ok());
  ASSERT_FALSE(system.PartitionTable("ghost", "a", 4).ok());

  // No re-enable bookkeeping ran: the negative-cache verdict survives
  // (old behaviour wiped it), sketch filtering stays enabled, and no
  // snapshot was republished.
  EXPECT_EQ(u_shard->unsketchable.size(), 1u);
  EXPECT_FALSE(entry->filter_tables.empty());
  EXPECT_EQ(entry->Snapshot()->epoch, epoch_before);
}

// ---- Delta-log truncation driven by MaintainAll ----------------------------

TEST(ConcurrentFrontendTest, MaintainAllTruncatesUpToMinShardVersion) {
  Database db;
  SyntheticSpec spec;
  spec.name = "t";
  spec.num_rows = 200;
  spec.num_groups = 10;
  ASSERT_TRUE(CreateSyntheticTable(&db, spec).ok());
  ImpConfig config;
  config.mode = ExecutionMode::kIncremental;
  ASSERT_TRUE(config.truncate_delta_log);  // the default drives truncation
  ImpSystem system(&db, config);
  ASSERT_TRUE(system
                  .RegisterPartition(
                      RangePartition::EquiWidthInt("t", "a", 1, 0, 9, 5))
                  .ok());
  const std::string sql_a =
      "SELECT a, sum(b) AS sb FROM t GROUP BY a HAVING sum(b) > 500";
  const std::string sql_b =
      "SELECT a, count(*) AS n FROM t GROUP BY a HAVING count(*) > 15";
  ASSERT_TRUE(system.Query(sql_a).ok());
  ASSERT_TRUE(system.Query(sql_b).ok());

  SyntheticSpec row_spec;
  row_spec.num_groups = 10;
  Rng rng(5);
  auto insert_rows = [&](size_t n, int64_t base) {
    for (size_t i = 0; i < n; ++i) {
      BoundUpdate update;
      update.kind = BoundUpdate::Kind::kInsert;
      update.table = "t";
      update.rows.push_back(
          SyntheticRow(row_spec, base + static_cast<int64_t>(i), &rng));
      ASSERT_TRUE(system.UpdateBound(update).ok());
    }
  };

  insert_rows(6, 300000);
  ASSERT_EQ(db.PendingDeltaCount("t", 0), 6u);
  // Every entry reaches the watermark -> the whole published log is
  // droppable (boundary: records AT the min version are dropped too).
  ASSERT_TRUE(system.MaintainAll().ok());
  EXPECT_EQ(db.PendingDeltaCount("t", 0), 0u);
  EXPECT_GE(system.stats().log_truncations, 1u);

  // Hold the boundary back: evict both entries and destroy entry0's
  // persisted state, so the next round cannot restore (and hence cannot
  // advance) it while entry1 is maintained to the cut.
  auto entries = system.sketches().AllEntries();
  ASSERT_EQ(entries.size(), 2u);
  ASSERT_TRUE(system.EvictSketchStates().ok());
  db.EraseStateBlob(entries[0]->state_key);
  const uint64_t held_version = entries[0]->valid_version();

  insert_rows(5, 310000);
  const size_t pending_behind_held = db.PendingDeltaCount("t", held_version);
  ASSERT_EQ(pending_behind_held, 5u);
  // The round reports the restore failure but must still truncate only up
  // to the held-back entry's version: its repair window survives.
  ASSERT_FALSE(system.MaintainAll().ok());
  EXPECT_EQ(db.PendingDeltaCount("t", held_version), pending_behind_held);
  EXPECT_LT(entries[0]->valid_version(), entries[1]->valid_version());

  // Repair the held entry: RepartitionTable recaptures every entry from
  // scratch (fresh maintainer, blob erased) — the system's recovery path
  // for lost state.
  ASSERT_TRUE(system.RepartitionTable("t", "a", 5).ok());
  ASSERT_TRUE(system.MaintainAll().ok());
  // Boundary released: the log is truncated to the (now shared) watermark.
  EXPECT_EQ(db.PendingDeltaCount("t", 0), 0u);
  auto result = system.Query(sql_a);
  ASSERT_TRUE(result.ok());

  // And the truncated system still answers exactly like a no-sketch run.
  Database ref;
  ASSERT_TRUE(CreateSyntheticTable(&ref, spec).ok());
  ImpConfig ns_config;
  ns_config.mode = ExecutionMode::kNoSketch;
  ImpSystem ns(&ref, ns_config);
  Rng ref_rng(5);
  auto ref_insert = [&](size_t n, int64_t base) {
    for (size_t i = 0; i < n; ++i) {
      BoundUpdate update;
      update.kind = BoundUpdate::Kind::kInsert;
      update.table = "t";
      update.rows.push_back(
          SyntheticRow(row_spec, base + static_cast<int64_t>(i), &ref_rng));
      ASSERT_TRUE(ns.UpdateBound(update).ok());
    }
  };
  ref_insert(6, 300000);
  ref_insert(5, 310000);
  auto ns_result = ns.Query(sql_a);
  ASSERT_TRUE(ns_result.ok());
  EXPECT_TRUE(result.value().SameBag(ns_result.value()));
}

TEST(ConcurrentFrontendTest, TruncationSkipsEmptyStoreAndUnsketchedRuns) {
  Database db;
  SyntheticSpec spec;
  spec.name = "t";
  spec.num_rows = 50;
  spec.num_groups = 5;
  ASSERT_TRUE(CreateSyntheticTable(&db, spec).ok());
  ImpConfig config;
  config.mode = ExecutionMode::kIncremental;
  ImpSystem system(&db, config);
  ASSERT_TRUE(system
                  .RegisterPartition(
                      RangePartition::EquiWidthInt("t", "a", 1, 0, 4, 3))
                  .ok());
  BoundUpdate update;
  update.kind = BoundUpdate::Kind::kInsert;
  update.table = "t";
  SyntheticSpec row_spec;
  row_spec.num_groups = 5;
  Rng rng(3);
  update.rows.push_back(SyntheticRow(row_spec, 400000, &rng));
  ASSERT_TRUE(system.UpdateBound(update).ok());
  // No sketches exist: MaintainAll must leave the log alone (conservative
  // empty-store rule).
  ASSERT_TRUE(system.MaintainAll().ok());
  EXPECT_EQ(db.PendingDeltaCount("t", 0), 1u);
  EXPECT_EQ(system.stats().log_truncations, 0u);
}

}  // namespace
}  // namespace imp
