// Tests for the sketch reuse check (sketch/reuse.h) — the [37] technique
// deciding whether a sketch captured for Q' can answer Q.

#include <gtest/gtest.h>

#include "sketch/reuse.h"
#include "test_util.h"
#include "workload/synthetic.h"

namespace imp {
namespace {

class ReuseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LoadSalesExample(&db_);
    SyntheticSpec spec;
    spec.name = "t";
    spec.num_rows = 100;
    spec.num_groups = 10;
    IMP_CHECK(CreateSyntheticTable(&db_, spec).ok());
  }

  bool Reusable(const std::string& captured, const std::string& query) {
    return CanReuseSketch(MustBind(db_, captured), MustBind(db_, query));
  }

  Database db_;
};

TEST_F(ReuseTest, IdenticalQueryAlwaysReusable) {
  EXPECT_TRUE(Reusable(kSalesQTop, kSalesQTop));
}

TEST_F(ReuseTest, MonotoneSumHavingDirections) {
  const char* base =
      "SELECT brand, sum(price) AS s FROM sales GROUP BY brand "
      "HAVING sum(price) > 5000";
  // More selective (higher threshold): reusable.
  EXPECT_TRUE(Reusable(base,
                       "SELECT brand, sum(price) AS s FROM sales GROUP BY "
                       "brand HAVING sum(price) > 9000"));
  // Less selective: NOT reusable (would miss provenance).
  EXPECT_FALSE(Reusable(base,
                        "SELECT brand, sum(price) AS s FROM sales GROUP BY "
                        "brand HAVING sum(price) > 1000"));
}

TEST_F(ReuseTest, SumHavingLessThanDirections) {
  const char* base =
      "SELECT brand, sum(price) AS s FROM sales GROUP BY brand "
      "HAVING sum(price) < 5000";
  EXPECT_TRUE(Reusable(base,
                       "SELECT brand, sum(price) AS s FROM sales GROUP BY "
                       "brand HAVING sum(price) < 1000"));
  EXPECT_FALSE(Reusable(base,
                        "SELECT brand, sum(price) AS s FROM sales GROUP BY "
                        "brand HAVING sum(price) < 9000"));
}

TEST_F(ReuseTest, AvgHavingRequiresEqualThreshold) {
  // AVG is not monotone: differing thresholds are never reusable.
  const char* base =
      "SELECT brand, avg(price) AS p FROM sales GROUP BY brand "
      "HAVING avg(price) > 500";
  EXPECT_TRUE(Reusable(base, base));
  EXPECT_FALSE(Reusable(base,
                        "SELECT brand, avg(price) AS p FROM sales GROUP BY "
                        "brand HAVING avg(price) > 900"));
}

TEST_F(ReuseTest, CountHavingIsMonotone) {
  const char* base =
      "SELECT brand, count(*) AS n FROM sales GROUP BY brand "
      "HAVING count(*) > 1";
  EXPECT_TRUE(Reusable(base,
                       "SELECT brand, count(*) AS n FROM sales GROUP BY "
                       "brand HAVING count(*) > 3"));
  EXPECT_FALSE(Reusable(base,
                        "SELECT brand, count(*) AS n FROM sales GROUP BY "
                        "brand HAVING count(*) > 0"));
}

TEST_F(ReuseTest, WhereThresholdsUseSelectivityDirection) {
  const char* base =
      "SELECT a, sum(b) AS s FROM t WHERE b < 100 GROUP BY a "
      "HAVING sum(b) > 10";
  // Narrower WHERE: reusable.
  EXPECT_TRUE(Reusable(base,
                       "SELECT a, sum(b) AS s FROM t WHERE b < 50 GROUP BY a "
                       "HAVING sum(b) > 10"));
  // Wider WHERE: not reusable.
  EXPECT_FALSE(Reusable(base,
                        "SELECT a, sum(b) AS s FROM t WHERE b < 200 GROUP BY "
                        "a HAVING sum(b) > 10"));
}

TEST_F(ReuseTest, EqualityConstantsMustMatch) {
  const char* base = "SELECT sid FROM sales WHERE brand = 'HP'";
  EXPECT_TRUE(Reusable(base, base));
  EXPECT_FALSE(Reusable(base, "SELECT sid FROM sales WHERE brand = 'Dell'"));
}

TEST_F(ReuseTest, BetweenNarrowingAllowed) {
  const char* base = "SELECT sid FROM sales WHERE price BETWEEN 100 AND 2000";
  EXPECT_TRUE(
      Reusable(base, "SELECT sid FROM sales WHERE price BETWEEN 500 AND 1500"));
  EXPECT_FALSE(
      Reusable(base, "SELECT sid FROM sales WHERE price BETWEEN 50 AND 1500"));
  EXPECT_FALSE(
      Reusable(base, "SELECT sid FROM sales WHERE price BETWEEN 500 AND 5000"));
}

TEST_F(ReuseTest, DifferentTemplatesNeverReusable) {
  EXPECT_FALSE(Reusable("SELECT sid FROM sales WHERE price > 100",
                        "SELECT sid FROM sales WHERE numSold > 100"));
  EXPECT_FALSE(Reusable("SELECT sid FROM sales WHERE price > 100",
                        "SELECT sid, brand FROM sales WHERE price > 100"));
}

TEST_F(ReuseTest, TopKParametersMustMatch) {
  const char* base =
      "SELECT a, sum(b) AS s FROM t GROUP BY a ORDER BY s DESC LIMIT 5";
  EXPECT_TRUE(Reusable(base, base));
  EXPECT_FALSE(Reusable(base,
                        "SELECT a, sum(b) AS s FROM t GROUP BY a "
                        "ORDER BY s DESC LIMIT 7"));
  EXPECT_FALSE(Reusable(base,
                        "SELECT a, sum(b) AS s FROM t GROUP BY a "
                        "ORDER BY s ASC LIMIT 5"));
}

TEST_F(ReuseTest, ProjectionConstantsMustMatch) {
  // Constants inside projection arithmetic are part of the result shape.
  EXPECT_FALSE(Reusable("SELECT price * 2 AS p FROM sales WHERE price > 10",
                        "SELECT price * 3 AS p FROM sales WHERE price > 10"));
}

TEST_F(ReuseTest, MultipleConjunctsCheckedIndependently) {
  const char* base =
      "SELECT a, sum(b) AS s, count(*) AS n FROM t GROUP BY a "
      "HAVING sum(b) > 100 AND count(*) > 2";
  EXPECT_TRUE(Reusable(base,
                       "SELECT a, sum(b) AS s, count(*) AS n FROM t GROUP BY "
                       "a HAVING sum(b) > 200 AND count(*) > 2"));
  EXPECT_FALSE(Reusable(base,
                        "SELECT a, sum(b) AS s, count(*) AS n FROM t GROUP "
                        "BY a HAVING sum(b) > 200 AND count(*) > 1"));
}

}  // namespace
}  // namespace imp
