// Tests for the sketch module: range partitions, the global fragment
// catalog, capture, the use-rewrite, and the safety analysis.

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "sketch/capture.h"
#include "sketch/safety.h"
#include "sketch/use_rewrite.h"
#include "test_util.h"

namespace imp {
namespace {

// ---- RangePartition ---------------------------------------------------------

TEST(RangePartitionTest, FragmentLookup) {
  RangePartition p = SalesPricePartition();
  EXPECT_EQ(p.num_fragments(), 4u);
  EXPECT_EQ(p.FragmentOf(Value::Int(1)), 0u);
  EXPECT_EQ(p.FragmentOf(Value::Int(600)), 0u);
  EXPECT_EQ(p.FragmentOf(Value::Int(601)), 1u);
  EXPECT_EQ(p.FragmentOf(Value::Int(1000)), 1u);
  EXPECT_EQ(p.FragmentOf(Value::Int(1199)), 2u);
  EXPECT_EQ(p.FragmentOf(Value::Int(3875)), 3u);
  EXPECT_EQ(p.FragmentOf(Value::Int(10000)), 3u);
}

TEST(RangePartitionTest, OutOfDomainClamps) {
  RangePartition p = SalesPricePartition();
  EXPECT_EQ(p.FragmentOf(Value::Int(-50)), 0u);
  EXPECT_EQ(p.FragmentOf(Value::Int(99999)), 3u);
}

TEST(RangePartitionTest, EquiWidthInt) {
  RangePartition p =
      RangePartition::EquiWidthInt("t", "a", 0, 0, 99, 10);
  EXPECT_EQ(p.num_fragments(), 10u);
  // Every value maps somewhere and boundaries are monotone.
  size_t prev = 0;
  for (int64_t v = 0; v <= 99; ++v) {
    size_t f = p.FragmentOf(Value::Int(v));
    EXPECT_GE(f, prev);
    prev = f;
  }
  EXPECT_EQ(p.FragmentOf(Value::Int(99)), 9u);
}

TEST(RangePartitionTest, EquiDepthBalances) {
  std::vector<Value> values;
  for (int64_t i = 0; i < 1000; ++i) values.push_back(Value::Int(i * i));
  RangePartition p = RangePartition::EquiDepth("t", "a", 0, values, 10);
  // Count per fragment should be near 100 for each.
  std::vector<size_t> counts(p.num_fragments(), 0);
  for (int64_t i = 0; i < 1000; ++i) {
    counts[p.FragmentOf(Value::Int(i * i))]++;
  }
  for (size_t c : counts) {
    EXPECT_GE(c, 50u);
    EXPECT_LE(c, 201u);
  }
}

TEST(RangePartitionTest, DegenerateSingleValue) {
  std::vector<Value> values(5, Value::Int(7));
  RangePartition p = RangePartition::EquiDepth("t", "a", 0, values, 4);
  EXPECT_GE(p.num_fragments(), 1u);
  EXPECT_EQ(p.FragmentOf(Value::Int(7)), 0u);
}

// ---- PartitionCatalog ---------------------------------------------------------

TEST(PartitionCatalogTest, GlobalFragmentIds) {
  PartitionCatalog catalog;
  ASSERT_TRUE(catalog.Register(Fig5PartitionR()).ok());  // 2 fragments
  ASSERT_TRUE(catalog.Register(Fig5PartitionS()).ok());  // 2 fragments
  EXPECT_EQ(catalog.total_fragments(), 4u);
  EXPECT_EQ(catalog.GlobalFragment("r", 0), 0u);
  EXPECT_EQ(catalog.GlobalFragment("r", 1), 1u);
  EXPECT_EQ(catalog.GlobalFragment("s", 0), 2u);
  EXPECT_EQ(catalog.GlobalFragment("s", 1), 3u);
}

TEST(PartitionCatalogTest, DuplicateRegistrationFails) {
  PartitionCatalog catalog;
  ASSERT_TRUE(catalog.Register(Fig5PartitionR()).ok());
  EXPECT_FALSE(catalog.Register(Fig5PartitionR()).ok());
}

TEST(PartitionCatalogTest, AnnotateRowAndLocalFragments) {
  PartitionCatalog catalog;
  ASSERT_TRUE(catalog.Register(Fig5PartitionR()).ok());
  ASSERT_TRUE(catalog.Register(Fig5PartitionS()).ok());
  BitVector sketch;
  catalog.AnnotateRow("s", {Value::Int(7), Value::Int(8)}, &sketch);
  EXPECT_EQ(sketch.SetBits(), std::vector<size_t>{3});  // g2 globally
  sketch.Set(0);
  EXPECT_EQ(catalog.LocalFragments("s", sketch), std::vector<size_t>{1});
  EXPECT_EQ(catalog.LocalFragments("r", sketch), std::vector<size_t>{0});
}

// ---- Sketch & delta -----------------------------------------------------------

TEST(SketchTest, ApplyDelta) {
  ProvenanceSketch sketch;
  sketch.fragments = BitVector(4);
  sketch.fragments.Set(2);
  SketchDelta delta;
  delta.added = {0};
  delta.removed = {2};
  ProvenanceSketch next = ApplySketchDelta(sketch, delta, 7);
  EXPECT_TRUE(next.fragments.Test(0));
  EXPECT_FALSE(next.fragments.Test(2));
  EXPECT_EQ(next.valid_version, 7u);
  // Original is unchanged (sketches are immutable values).
  EXPECT_TRUE(sketch.fragments.Test(2));
}

// ---- Capture -------------------------------------------------------------------

class CaptureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LoadSalesExample(&db_);
    IMP_CHECK(catalog_.Register(SalesPricePartition()).ok());
  }
  Database db_;
  PartitionCatalog catalog_;
};

TEST_F(CaptureTest, RunningExampleCapture) {
  CaptureEngine capture(&db_, &catalog_);
  PlanPtr plan = MustBind(db_, kSalesQTop);
  auto sketch = capture.Capture(plan);
  ASSERT_TRUE(sketch.ok());
  // Ex. 1.1: P = {ρ3, ρ4}.
  EXPECT_EQ(sketch.value().fragments.SetBits(), (std::vector<size_t>{2, 3}));
  EXPECT_EQ(sketch.value().valid_version, 0u);
}

TEST_F(CaptureTest, StaleAfterInsertS8) {
  CaptureEngine capture(&db_, &catalog_);
  PlanPtr plan = MustBind(db_, kSalesQTop);
  auto before = capture.Capture(plan);
  ASSERT_TRUE(before.ok());
  // Ex. 1.2: after inserting s8 the accurate sketch gains ρ2.
  ASSERT_TRUE(db_.Insert("sales", {{Value::Int(8), Value::String("HP"),
                                    Value::String("HP ProBook 650 G10"),
                                    Value::Int(1299), Value::Int(1)}})
                  .ok());
  auto after = capture.Capture(plan);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().fragments.SetBits(), (std::vector<size_t>{1, 2, 3}));
  // The old sketch no longer covers the accurate one: it became stale.
  EXPECT_FALSE(before.value().Covers(after.value()));
}

// ---- Use rewrite ---------------------------------------------------------------

TEST_F(CaptureTest, UseRewriteSkipsDataAndPreservesResult) {
  CaptureEngine capture(&db_, &catalog_);
  PlanPtr plan = MustBind(db_, kSalesQTop);
  auto sketch = capture.Capture(plan);
  ASSERT_TRUE(sketch.ok());

  PlanPtr rewritten = ApplyUseRewrite(plan, catalog_, sketch.value());
  Executor exec(&db_);
  auto full = exec.Execute(plan);
  auto skipped = exec.Execute(rewritten);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(skipped.ok());
  EXPECT_TRUE(full.value().SameBag(skipped.value()));

  // And the scan actually filters: scanning the rewritten plan's input
  // yields only the 3 tuples of fragments ρ3/ρ4 ({s3, s4, s5}, Sec. 4.1.2).
  PlanPtr scan_only;
  VisitPlan(rewritten, [&](const PlanPtr& node) {
    if (node->kind() == PlanKind::kScan) scan_only = node;
  });
  ASSERT_NE(scan_only, nullptr);
  auto scanned = exec.Execute(scan_only);
  ASSERT_TRUE(scanned.ok());
  EXPECT_EQ(scanned.value().size(), 3u);
}

TEST_F(CaptureTest, AdjacentRangesMerge) {
  // Sketch {ρ3, ρ4} merges into one BETWEEN-style interval (footnote 2):
  // price >= 1001 AND price <= 10000.
  ProvenanceSketch sketch;
  sketch.fragments = BitVector(4);
  sketch.fragments.Set(2);
  sketch.fragments.Set(3);
  ExprPtr pred = SketchScanPredicate(catalog_, "sales", sketch);
  ASSERT_NE(pred, nullptr);
  std::string text = pred->ToString();
  // A single conjunction, no OR.
  EXPECT_EQ(text.find("OR"), std::string::npos) << text;
  // Check the predicate's semantics on boundary prices.
  auto matches = [&](int64_t price) {
    Tuple row{Value::Int(0), Value::String(""), Value::String(""),
              Value::Int(price), Value::Int(0)};
    return pred->Eval(row).IsTrue();
  };
  EXPECT_FALSE(matches(1000));
  EXPECT_TRUE(matches(1001));
  EXPECT_TRUE(matches(10000));
}

TEST_F(CaptureTest, FullSketchMeansNoPredicate) {
  ProvenanceSketch sketch;
  sketch.fragments = BitVector(4);
  for (size_t i = 0; i < 4; ++i) sketch.fragments.Set(i);
  EXPECT_EQ(SketchScanPredicate(catalog_, "sales", sketch), nullptr);
}

TEST_F(CaptureTest, EmptySketchFiltersEverything) {
  ProvenanceSketch sketch;
  sketch.fragments = BitVector(4);
  ExprPtr pred = SketchScanPredicate(catalog_, "sales", sketch);
  ASSERT_NE(pred, nullptr);
  Tuple row{Value::Int(0), Value::String(""), Value::String(""),
            Value::Int(500), Value::Int(0)};
  EXPECT_FALSE(pred->Eval(row).IsTrue());
}

// ---- Safety analysis -------------------------------------------------------------

class SafetyTest : public ::testing::Test {
 protected:
  void SetUp() override { LoadSalesExample(&db_); }
  Database db_;
};

TEST_F(SafetyTest, MonotoneQueryIsSafeOnAnyAttribute) {
  PlanPtr plan = MustBind(db_, "SELECT sid FROM sales WHERE price > 100");
  for (size_t attr = 0; attr < 5; ++attr) {
    EXPECT_TRUE(AnalyzeSketchSafety(plan, "sales", attr).safe);
  }
}

TEST_F(SafetyTest, GroupAlignedPartitionIsSafe) {
  PlanPtr plan = MustBind(
      db_, "SELECT brand, avg(price) AS p FROM sales GROUP BY brand "
           "HAVING avg(price) < 10000");
  // brand is attr 1; group-aligned => safe even with non-monotone HAVING.
  EXPECT_TRUE(AnalyzeSketchSafety(plan, "sales", 1).safe);
  // price (attr 3) is not group-aligned and avg() is not monotone => unsafe.
  EXPECT_FALSE(AnalyzeSketchSafety(plan, "sales", 3).safe);
}

TEST_F(SafetyTest, MonotoneHavingMakesAnyAttributeSafe) {
  // The running example: partition on price, group by brand, monotone
  // SUM > c HAVING (rule R3).
  PlanPtr plan = MustBind(db_, kSalesQTop);
  EXPECT_TRUE(AnalyzeSketchSafety(plan, "sales", 3).safe);
  // With assume_nonnegative disabled, SUM is no longer provably monotone.
  SafetyOptions opts;
  opts.assume_nonnegative = false;
  EXPECT_FALSE(AnalyzeSketchSafety(plan, "sales", 3, opts).safe);
}

TEST_F(SafetyTest, AggregateWithoutHavingUnsafeUnlessAligned) {
  PlanPtr plan = MustBind(
      db_, "SELECT brand, avg(price) AS p FROM sales GROUP BY brand");
  EXPECT_TRUE(AnalyzeSketchSafety(plan, "sales", 1).safe);
  EXPECT_FALSE(AnalyzeSketchSafety(plan, "sales", 3).safe);
}

TEST_F(SafetyTest, TopKOverGroupAlignedAggregateIsSafe) {
  PlanPtr plan = MustBind(
      db_, "SELECT brand, sum(numSold) AS n FROM sales GROUP BY brand "
           "ORDER BY n DESC LIMIT 2");
  EXPECT_TRUE(AnalyzeSketchSafety(plan, "sales", 1).safe);
  EXPECT_FALSE(AnalyzeSketchSafety(plan, "sales", 0).safe);
}

TEST_F(SafetyTest, TopKOnOrderAttributeIsSafe) {
  PlanPtr plan = MustBind(
      db_, "SELECT sid, price FROM sales ORDER BY price LIMIT 3");
  EXPECT_TRUE(AnalyzeSketchSafety(plan, "sales", 3).safe);   // price
  EXPECT_FALSE(AnalyzeSketchSafety(plan, "sales", 0).safe);  // sid
}

TEST_F(SafetyTest, QueryNotReferencingTableIsUnsafe) {
  PlanPtr plan = MustBind(db_, "SELECT sid FROM sales");
  EXPECT_FALSE(AnalyzeSketchSafety(plan, "ghost", 0).safe);
}

}  // namespace
}  // namespace imp
