// Tests for annotated Z-deltas (imp/delta.h): signed multiplicities,
// consolidation, annotation from backend deltas.

#include <gtest/gtest.h>

#include "imp/delta.h"
#include "test_util.h"

namespace imp {
namespace {

BitVector Bits(std::initializer_list<size_t> bits, size_t n = 8) {
  BitVector bv(n);
  for (size_t b : bits) bv.Set(b);
  return bv;
}

TEST(AnnotatedDeltaTest, InsertDeleteCounts) {
  AnnotatedDelta d;
  d.Append({Value::Int(1)}, Bits({0}), 3);
  d.Append({Value::Int(2)}, Bits({1}), -2);
  d.Append({Value::Int(3)}, Bits({1}), 1);
  EXPECT_EQ(d.InsertCount(), 4);
  EXPECT_EQ(d.DeleteCount(), 2);
}

TEST(AnnotatedDeltaTest, ConsolidateMergesEqualPairs) {
  AnnotatedDelta d;
  d.Append({Value::Int(1)}, Bits({0}), 1);
  d.Append({Value::Int(1)}, Bits({0}), 2);
  d.Append({Value::Int(1)}, Bits({1}), 1);  // same tuple, different sketch
  d.Consolidate();
  ASSERT_EQ(d.size(), 2u);
  int64_t total = 0;
  for (const auto& r : d.rows) total += r.mult;
  EXPECT_EQ(total, 4);
}

TEST(AnnotatedDeltaTest, ConsolidateDropsZeroNet) {
  AnnotatedDelta d;
  d.Append({Value::Int(1)}, Bits({0}), 1);
  d.Append({Value::Int(1)}, Bits({0}), -1);
  d.Append({Value::Int(2)}, Bits({0}), 1);
  d.Consolidate();
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d.rows[0].row, (Tuple{Value::Int(2)}));
}

TEST(AnnotatedDeltaTest, ToStringTagsDirection) {
  AnnotatedDeltaRow ins{{Value::Int(5)}, Bits({2}), 1};
  AnnotatedDeltaRow del{{Value::Int(5)}, Bits({2}), -3};
  EXPECT_EQ(ins.ToString().substr(0, 3), "Δ+");  // UTF-8 Δ is 2 bytes
  EXPECT_EQ(del.ToString().substr(0, 3), "Δ-");
  EXPECT_NE(del.ToString().find("^3"), std::string::npos);
}

TEST(DeltaContextTest, FindAndTotals) {
  DeltaContext ctx;
  ctx.table_deltas["r"].Append({Value::Int(1)}, Bits({0}), 1);
  ctx.table_deltas["s"].Append({Value::Int(2)}, Bits({1}), -1);
  EXPECT_FALSE(ctx.empty());
  EXPECT_EQ(ctx.TotalRows(), 2u);
  ASSERT_NE(ctx.Find("r"), nullptr);
  EXPECT_EQ(ctx.Find("r")->size(), 1u);
  EXPECT_EQ(ctx.Find("zzz"), nullptr);
  DeltaContext empty;
  EXPECT_TRUE(empty.empty());
}

TEST(AnnotateDeltaTest, Example42AnnotatesS8) {
  // Ex. 4.2: Δ+s8 annotated with ρ3 (price 1299 in [1001, 1500]).
  Database db;
  LoadSalesExample(&db);
  PartitionCatalog catalog;
  ASSERT_TRUE(catalog.Register(SalesPricePartition()).ok());
  uint64_t from = db.CurrentVersion();
  ASSERT_TRUE(db.Insert("sales", {{Value::Int(8), Value::String("HP"),
                                   Value::String("HP ProBook 650 G10"),
                                   Value::Int(1299), Value::Int(1)}})
                  .ok());
  TableDelta raw = db.ScanDelta("sales", from, db.CurrentVersion());
  AnnotatedDelta annotated = AnnotateTableDelta(raw, catalog);
  ASSERT_EQ(annotated.size(), 1u);
  EXPECT_EQ(annotated.rows[0].mult, 1);
  EXPECT_EQ(annotated.rows[0].sketch.SetBits(), std::vector<size_t>{2});
}

TEST(AnnotateDeltaTest, DeletionsKeepNegativeMult) {
  Database db;
  LoadSalesExample(&db);
  PartitionCatalog catalog;
  ASSERT_TRUE(catalog.Register(SalesPricePartition()).ok());
  uint64_t from = db.CurrentVersion();
  ASSERT_TRUE(db.Delete("sales", [](const Tuple& row) {
                  return row[0] == Value::Int(4);
                }).ok());
  AnnotatedDelta annotated = AnnotateTableDelta(
      db.ScanDelta("sales", from, db.CurrentVersion()), catalog);
  ASSERT_EQ(annotated.size(), 1u);
  EXPECT_EQ(annotated.rows[0].mult, -1);
  EXPECT_EQ(annotated.rows[0].sketch.SetBits(), std::vector<size_t>{3});
}

TEST(AnnotateDeltaTest, MultipleTablesIntoContext) {
  Database db;
  LoadFig5Example(&db);
  PartitionCatalog catalog;
  ASSERT_TRUE(catalog.Register(Fig5PartitionR()).ok());
  ASSERT_TRUE(catalog.Register(Fig5PartitionS()).ok());
  uint64_t from = db.CurrentVersion();
  ASSERT_TRUE(db.Insert("r", {{Value::Int(5), Value::Int(8)}}).ok());
  ASSERT_TRUE(db.Insert("s", {{Value::Int(10), Value::Int(1)}}).ok());
  DeltaContext ctx = MakeDeltaContext(
      {db.ScanDelta("r", from, db.CurrentVersion()),
       db.ScanDelta("s", from, db.CurrentVersion())},
      catalog);
  ASSERT_NE(ctx.Find("r"), nullptr);
  ASSERT_NE(ctx.Find("s"), nullptr);
  // r value 5 -> f1 (global 0); s value 10 -> g2 (global 3).
  EXPECT_EQ(ctx.Find("r")->rows[0].sketch.SetBits(), std::vector<size_t>{0});
  EXPECT_EQ(ctx.Find("s")->rows[0].sketch.SetBits(), std::vector<size_t>{3});
}

}  // namespace
}  // namespace imp
