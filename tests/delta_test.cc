// Tests for annotated Z-deltas (imp/delta.h): signed multiplicities,
// consolidation, annotation from backend deltas.

#include <gtest/gtest.h>

#include "imp/delta.h"
#include "imp/inc_operators.h"
#include "test_util.h"

namespace imp {
namespace {

BitVector Bits(std::initializer_list<size_t> bits, size_t n = 8) {
  BitVector bv(n);
  for (size_t b : bits) bv.Set(b);
  return bv;
}

TEST(AnnotatedDeltaTest, InsertDeleteCounts) {
  AnnotatedDelta d;
  d.Append({Value::Int(1)}, Bits({0}), 3);
  d.Append({Value::Int(2)}, Bits({1}), -2);
  d.Append({Value::Int(3)}, Bits({1}), 1);
  EXPECT_EQ(d.InsertCount(), 4);
  EXPECT_EQ(d.DeleteCount(), 2);
}

TEST(AnnotatedDeltaTest, ConsolidateMergesEqualPairs) {
  AnnotatedDelta d;
  d.Append({Value::Int(1)}, Bits({0}), 1);
  d.Append({Value::Int(1)}, Bits({0}), 2);
  d.Append({Value::Int(1)}, Bits({1}), 1);  // same tuple, different sketch
  d.Consolidate();
  ASSERT_EQ(d.size(), 2u);
  int64_t total = 0;
  for (const auto& r : d.rows) total += r.mult;
  EXPECT_EQ(total, 4);
}

TEST(AnnotatedDeltaTest, ConsolidateDropsZeroNet) {
  AnnotatedDelta d;
  d.Append({Value::Int(1)}, Bits({0}), 1);
  d.Append({Value::Int(1)}, Bits({0}), -1);
  d.Append({Value::Int(2)}, Bits({0}), 1);
  d.Consolidate();
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d.rows[0].row, (Tuple{Value::Int(2)}));
}

TEST(AnnotatedDeltaTest, ToStringTagsDirection) {
  AnnotatedDeltaRow ins{{Value::Int(5)}, Bits({2}), 1};
  AnnotatedDeltaRow del{{Value::Int(5)}, Bits({2}), -3};
  EXPECT_EQ(ins.ToString().substr(0, 3), "Δ+");  // UTF-8 Δ is 2 bytes
  EXPECT_EQ(del.ToString().substr(0, 3), "Δ-");
  EXPECT_NE(del.ToString().find("^3"), std::string::npos);
}

TEST(DeltaContextTest, FindAndTotals) {
  DeltaContext ctx;
  ctx.OwnedFor("r").Append({Value::Int(1)}, Bits({0}), 1);
  ctx.OwnedFor("s").Append({Value::Int(2)}, Bits({1}), -1);
  EXPECT_FALSE(ctx.empty());
  EXPECT_EQ(ctx.TotalRows(), 2u);
  ASSERT_NE(ctx.FindBatch("r"), nullptr);
  EXPECT_EQ(ctx.FindBatch("r")->size(), 1u);
  EXPECT_EQ(ctx.FindBatch("zzz"), nullptr);
  DeltaContext empty;
  EXPECT_TRUE(empty.empty());
}

// ---- DeltaBatch: owned / borrowed semantics ---------------------------------

AnnotatedDelta ThreeRowDelta() {
  AnnotatedDelta d;
  d.Append({Value::Int(1)}, Bits({0}), 1);
  d.Append({Value::Int(2)}, Bits({1}), -1);
  d.Append({Value::Int(3)}, Bits({2}), 2);
  return d;
}

std::vector<int64_t> VisibleFirstColumns(const DeltaBatch& batch) {
  std::vector<int64_t> out;
  batch.ForEachRow(
      [&](const AnnotatedDeltaRow& r) { out.push_back(r.row[0].AsInt()); });
  return out;
}

TEST(DeltaBatchTest, BorrowedViewSharesRowsWithoutCopying) {
  AnnotatedDelta shared = ThreeRowDelta();
  DeltaBatch batch = DeltaBatch::Borrowed(&shared);
  EXPECT_TRUE(batch.borrowed());
  EXPECT_FALSE(batch.filtered());
  EXPECT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch.base(), &shared);
  // The cursor hands out pointers into the shared delta itself.
  DeltaBatch::Cursor cursor(batch);
  EXPECT_EQ(cursor.Next(), &shared.rows[0]);
  EXPECT_EQ(cursor.Next(), &shared.rows[1]);
  EXPECT_EQ(cursor.Next(), &shared.rows[2]);
  EXPECT_EQ(cursor.Next(), nullptr);
}

TEST(DeltaBatchTest, SelectionBitmapMatchesEagerFilteredCopy) {
  AnnotatedDelta shared = ThreeRowDelta();
  auto keep_positive = [](const AnnotatedDeltaRow& r) { return r.mult > 0; };
  // Borrowed path: refine a selection bitmap over the shared delta.
  DeltaBatch borrowed =
      DeltaBatch::Borrowed(&shared).Filter(keep_positive);
  EXPECT_TRUE(borrowed.borrowed());
  EXPECT_TRUE(borrowed.filtered());
  EXPECT_EQ(borrowed.base(), &shared);
  // Eager path: the filtered copy the bitmap replaces.
  AnnotatedDelta eager;
  for (const AnnotatedDeltaRow& r : shared.rows) {
    if (keep_positive(r)) eager.rows.push_back(r);
  }
  EXPECT_EQ(borrowed.size(), eager.size());
  EXPECT_EQ(VisibleFirstColumns(borrowed),
            VisibleFirstColumns(DeltaBatch::Borrowed(&eager)));
}

TEST(DeltaBatchTest, FilterChainsRefineTheSameBitmap) {
  AnnotatedDelta shared = ThreeRowDelta();
  DeltaBatch batch = DeltaBatch::Borrowed(&shared)
                         .Filter([](const AnnotatedDeltaRow& r) {
                           return r.mult > 0;  // rows 1, 3
                         })
                         .Filter([](const AnnotatedDeltaRow& r) {
                           return r.row[0].AsInt() >= 3;  // row 3
                         });
  EXPECT_TRUE(batch.borrowed());
  EXPECT_EQ(VisibleFirstColumns(batch), std::vector<int64_t>{3});
}

TEST(DeltaBatchTest, OwnedFilterKeepsOrderInPlace) {
  DeltaBatch batch = DeltaBatch::OwnedOf(ThreeRowDelta())
                         .Filter([](const AnnotatedDeltaRow& r) {
                           return r.row[0].AsInt() != 2;
                         });
  EXPECT_FALSE(batch.borrowed());
  EXPECT_EQ(VisibleFirstColumns(batch), (std::vector<int64_t>{1, 3}));
}

TEST(DeltaBatchTest, MaterializeCountsCopiedRowsOnlyWhenBorrowed) {
  AnnotatedDelta shared = ThreeRowDelta();
  MaintainStats stats;
  AnnotatedDelta copied =
      DeltaBatch::Borrowed(&shared).Materialize(&stats);
  EXPECT_EQ(copied.size(), 3u);
  EXPECT_EQ(stats.deltas_materialized, 1u);
  EXPECT_EQ(stats.rows_copied, 3u);
  EXPECT_EQ(shared.size(), 3u);  // source untouched

  // Owned batches move their rows out for free.
  AnnotatedDelta moved =
      DeltaBatch::OwnedOf(ThreeRowDelta()).Materialize(&stats);
  EXPECT_EQ(moved.size(), 3u);
  EXPECT_EQ(stats.deltas_materialized, 1u);
  EXPECT_EQ(stats.rows_copied, 3u);
}

TEST(DeltaBatchTest, ViewOfOwnedBorrowsWithoutCopy) {
  DeltaBatch owned = DeltaBatch::OwnedOf(ThreeRowDelta());
  DeltaBatch view = owned.View();
  EXPECT_TRUE(view.borrowed());
  EXPECT_EQ(view.base(), &owned.owned());
  EXPECT_EQ(view.size(), 3u);
}

TEST(AnnotateDeltaTest, Example42AnnotatesS8) {
  // Ex. 4.2: Δ+s8 annotated with ρ3 (price 1299 in [1001, 1500]).
  Database db;
  LoadSalesExample(&db);
  PartitionCatalog catalog;
  ASSERT_TRUE(catalog.Register(SalesPricePartition()).ok());
  uint64_t from = db.CurrentVersion();
  ASSERT_TRUE(db.Insert("sales", {{Value::Int(8), Value::String("HP"),
                                   Value::String("HP ProBook 650 G10"),
                                   Value::Int(1299), Value::Int(1)}})
                  .ok());
  TableDelta raw = db.ScanDelta("sales", from, db.CurrentVersion());
  AnnotatedDelta annotated = AnnotateTableDelta(raw, catalog);
  ASSERT_EQ(annotated.size(), 1u);
  EXPECT_EQ(annotated.rows[0].mult, 1);
  EXPECT_EQ(annotated.rows[0].sketch.SetBits(), std::vector<size_t>{2});
}

TEST(AnnotateDeltaTest, DeletionsKeepNegativeMult) {
  Database db;
  LoadSalesExample(&db);
  PartitionCatalog catalog;
  ASSERT_TRUE(catalog.Register(SalesPricePartition()).ok());
  uint64_t from = db.CurrentVersion();
  ASSERT_TRUE(db.Delete("sales", [](const Tuple& row) {
                  return row[0] == Value::Int(4);
                }).ok());
  AnnotatedDelta annotated = AnnotateTableDelta(
      db.ScanDelta("sales", from, db.CurrentVersion()), catalog);
  ASSERT_EQ(annotated.size(), 1u);
  EXPECT_EQ(annotated.rows[0].mult, -1);
  EXPECT_EQ(annotated.rows[0].sketch.SetBits(), std::vector<size_t>{3});
}

TEST(AnnotateDeltaTest, MultipleTablesIntoContext) {
  Database db;
  LoadFig5Example(&db);
  PartitionCatalog catalog;
  ASSERT_TRUE(catalog.Register(Fig5PartitionR()).ok());
  ASSERT_TRUE(catalog.Register(Fig5PartitionS()).ok());
  uint64_t from = db.CurrentVersion();
  ASSERT_TRUE(db.Insert("r", {{Value::Int(5), Value::Int(8)}}).ok());
  ASSERT_TRUE(db.Insert("s", {{Value::Int(10), Value::Int(1)}}).ok());
  DeltaContext ctx = MakeDeltaContext(
      {db.ScanDelta("r", from, db.CurrentVersion()),
       db.ScanDelta("s", from, db.CurrentVersion())},
      catalog);
  ASSERT_NE(ctx.FindBatch("r"), nullptr);
  ASSERT_NE(ctx.FindBatch("s"), nullptr);
  // r value 5 -> f1 (global 0); s value 10 -> g2 (global 3).
  EXPECT_EQ(ctx.FindBatch("r")->owned().rows[0].sketch.SetBits(),
            std::vector<size_t>{0});
  EXPECT_EQ(ctx.FindBatch("s")->owned().rows[0].sketch.SetBits(),
            std::vector<size_t>{3});
}

}  // namespace
}  // namespace imp
