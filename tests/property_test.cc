// Property-based tests (parameterized sweeps) checking the paper's two
// correctness pillars on randomized databases and update streams:
//
//  P1 (Theorem 6.1, over-approximation): after any update sequence, the
//     incrementally maintained sketch covers the accurate sketch obtained
//     by re-capturing on the updated database.
//  P2 (safety / fragment correctness): evaluating the query over the data
//     selected by the maintained sketch produces exactly the same bag of
//     results as evaluating over the full database.
//  P3 (middleware end-to-end): under random mixed workloads, IMP answers
//     match the no-sketch baseline.
//  P4 (concurrent front end): under random THREADED interleavings of
//     update / query / maintain / repartition (seeded RNG schedules), each
//     entry's published valid_version and snapshot epoch are monotone, and
//     the superset-safety of (possibly stale) sketches holds at every
//     observation point: the maintained sketch covers the accurate
//     recapture and the sketch-filtered answer equals the full scan.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "exec/executor.h"
#include "imp/maintainer.h"
#include "middleware/imp_system.h"
#include "sketch/capture.h"
#include "sketch/use_rewrite.h"
#include "test_util.h"
#include "workload/synthetic.h"

namespace imp {
namespace {

/// One randomized scenario: query family x seed.
struct Scenario {
  enum class Query {
    kSumHaving,     // group-by sum HAVING (monotone)
    kCountHaving,   // group-by count HAVING
    kMinMax,        // group-by min/max (group-aligned partition)
    kTopK,          // order-by limit over aggregation
    kJoinHaving,    // join + group-by sum HAVING
  };
  Query query;
  uint64_t seed;
};

std::string ScenarioName(const ::testing::TestParamInfo<Scenario>& info) {
  const char* names[] = {"SumHaving", "CountHaving", "MinMax", "TopK",
                         "JoinHaving"};
  return std::string(names[static_cast<int>(info.param.query)]) + "_seed" +
         std::to_string(info.param.seed);
}

class MaintenanceProperty : public ::testing::TestWithParam<Scenario> {
 protected:
  static constexpr size_t kGroups = 30;

  void SetUp() override {
    const Scenario& s = GetParam();
    rng_ = std::make_unique<Rng>(s.seed);
    spec_.name = "t";
    spec_.num_rows = 1500;
    spec_.num_groups = kGroups;
    spec_.seed = s.seed * 31 + 7;
    IMP_CHECK(CreateSyntheticTable(&db_, spec_).ok());
    if (s.query == Scenario::Query::kJoinHaving) {
      JoinPairSpec jp;
      jp.left_name = "jl";
      jp.right_name = "jr";
      jp.distinct_keys = kGroups;
      jp.left_per_key = 10;
      jp.right_per_key = 2;
      jp.seed = s.seed;
      IMP_CHECK(CreateJoinPair(&db_, jp).ok());
    }
    // Partition choice: group-aligned on `a` for the non-monotone
    // families; on the noise column for the monotone ones (to exercise
    // non-aligned fragments).
    switch (s.query) {
      case Scenario::Query::kSumHaving:
      case Scenario::Query::kCountHaving:
        IMP_CHECK(catalog_
                      .Register(RangePartition::EquiWidthInt(
                          "t", "b", 2, 0, 200, 7))
                      .ok());
        break;
      case Scenario::Query::kMinMax:
      case Scenario::Query::kTopK:
        IMP_CHECK(catalog_
                      .Register(RangePartition::EquiWidthInt(
                          "t", "a", 1, 0, kGroups - 1, 6))
                      .ok());
        break;
      case Scenario::Query::kJoinHaving:
        IMP_CHECK(catalog_
                      .Register(RangePartition::EquiWidthInt(
                          "jl", "a", 1, 0, kGroups - 1, 6))
                      .ok());
        break;
    }
  }

  std::string QuerySql() const {
    switch (GetParam().query) {
      case Scenario::Query::kSumHaving:
        return "SELECT a, sum(b) AS sb FROM t GROUP BY a "
               "HAVING sum(b) > 2000";
      case Scenario::Query::kCountHaving:
        return "SELECT a, count(*) AS n FROM t GROUP BY a "
               "HAVING count(*) > 45";
      case Scenario::Query::kMinMax:
        return "SELECT a, min(b) AS lo, max(c) AS hi FROM t GROUP BY a "
               "HAVING min(b) < 20";
      case Scenario::Query::kTopK:
        return "SELECT a, sum(c) AS sc FROM t GROUP BY a "
               "ORDER BY sc DESC LIMIT 5";
      case Scenario::Query::kJoinHaving:
        return "SELECT a, sum(w) AS sw FROM jl JOIN jr ON (a = ttid) "
               "WHERE b < 100 GROUP BY a HAVING sum(w) > 500";
    }
    return "";
  }

  std::string TableName() const {
    return GetParam().query == Scenario::Query::kJoinHaving ? "jl" : "t";
  }

  /// A random update statement: insert a few rows or delete a small slice.
  void RandomUpdate(int64_t* next_id) {
    const std::string table = TableName();
    if (rng_->Chance(0.6)) {
      std::vector<Tuple> rows;
      size_t n = static_cast<size_t>(rng_->UniformInt(1, 10));
      for (size_t i = 0; i < n; ++i) {
        if (table == "jl") {
          JoinPairSpec jp;
          rows.push_back(JoinLeftRow(jp, (*next_id)++,
                                     rng_->UniformInt(0, kGroups - 1),
                                     rng_.get()));
        } else {
          rows.push_back(SyntheticRow(spec_, (*next_id)++, rng_.get()));
        }
      }
      IMP_CHECK(db_.Insert(table, rows).ok());
    } else {
      int64_t group = rng_->UniformInt(0, kGroups - 1);
      size_t limit = static_cast<size_t>(rng_->UniformInt(1, 20));
      IMP_CHECK(db_
                    .Delete(table,
                            [&](const Tuple& row) {
                              return row[1] == Value::Int(group);
                            },
                            limit)
                    .ok());
    }
  }

  Database db_;
  PartitionCatalog catalog_;
  SyntheticSpec spec_;
  std::unique_ptr<Rng> rng_;
};

TEST_P(MaintenanceProperty, SketchOverApproximatesAndStaysSafe) {
  PlanPtr plan = MustBind(db_, QuerySql());
  Maintainer maintainer(&db_, &catalog_, plan);
  ASSERT_TRUE(maintainer.Initialize().ok());
  CaptureEngine capture(&db_, &catalog_);
  Executor exec(&db_);

  int64_t next_id = 1000000;
  for (int round = 0; round < 8; ++round) {
    int updates = static_cast<int>(rng_->UniformInt(1, 3));
    for (int u = 0; u < updates; ++u) RandomUpdate(&next_id);

    ASSERT_TRUE(maintainer.MaintainFromBackend().ok()) << "round " << round;

    // P1: over-approximation of the accurate sketch (Theorem 6.1).
    auto accurate = capture.Capture(plan);
    ASSERT_TRUE(accurate.ok());
    ASSERT_TRUE(maintainer.sketch().Covers(accurate.value()))
        << "round " << round << ": maintained "
        << maintainer.sketch().ToString() << " does not cover accurate "
        << accurate.value().ToString();

    // P2: evaluating over the sketch-selected data yields the same result.
    PlanPtr rewritten = ApplyUseRewrite(plan, catalog_, maintainer.sketch());
    auto full = exec.Execute(plan);
    auto skipped = exec.Execute(rewritten);
    ASSERT_TRUE(full.ok());
    ASSERT_TRUE(skipped.ok());
    ASSERT_TRUE(full.value().SameBag(skipped.value()))
        << "round " << round << ": sketch-filtered result diverged.\nfull:\n"
        << full.value().ToString() << "\nskipped:\n"
        << skipped.value().ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllQueryFamilies, MaintenanceProperty,
    ::testing::Values(
        Scenario{Scenario::Query::kSumHaving, 1},
        Scenario{Scenario::Query::kSumHaving, 2},
        Scenario{Scenario::Query::kSumHaving, 3},
        Scenario{Scenario::Query::kCountHaving, 1},
        Scenario{Scenario::Query::kCountHaving, 2},
        Scenario{Scenario::Query::kMinMax, 1},
        Scenario{Scenario::Query::kMinMax, 2},
        Scenario{Scenario::Query::kMinMax, 3},
        Scenario{Scenario::Query::kTopK, 1},
        Scenario{Scenario::Query::kTopK, 2},
        Scenario{Scenario::Query::kTopK, 3},
        Scenario{Scenario::Query::kJoinHaving, 1},
        Scenario{Scenario::Query::kJoinHaving, 2},
        Scenario{Scenario::Query::kJoinHaving, 3}),
    ScenarioName);

// ---- Truncated-buffer sweep: recapture must keep everything correct ---------

class BufferProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(BufferProperty, TruncatedMinMaxStaysCorrectUnderDeletions) {
  Database db;
  SyntheticSpec spec;
  spec.name = "t";
  spec.num_rows = 800;
  spec.num_groups = 10;
  ASSERT_TRUE(CreateSyntheticTable(&db, spec).ok());
  PartitionCatalog catalog;
  ASSERT_TRUE(
      catalog.Register(RangePartition::EquiWidthInt("t", "a", 1, 0, 9, 5))
          .ok());
  PlanPtr plan = MustBind(
      db, "SELECT a, min(b) AS lo FROM t GROUP BY a HAVING min(b) < 50");
  MaintainerOptions opts;
  opts.minmax_buffer = GetParam();
  Maintainer m(&db, &catalog, plan, opts);
  ASSERT_TRUE(m.Initialize().ok());
  CaptureEngine capture(&db, &catalog);

  Rng rng(GetParam() * 13 + 1);
  for (int round = 0; round < 6; ++round) {
    // Delete aggressively to stress the buffer.
    int64_t group = rng.UniformInt(0, 9);
    ASSERT_TRUE(db.Delete("t",
                          [&](const Tuple& row) {
                            return row[1] == Value::Int(group);
                          },
                          30)
                    .ok());
    ASSERT_TRUE(m.MaintainFromBackend().ok());
    auto accurate = capture.Capture(plan);
    ASSERT_TRUE(accurate.ok());
    EXPECT_TRUE(m.sketch().Covers(accurate.value()))
        << "buffer=" << GetParam() << " round=" << round;
  }
}

INSTANTIATE_TEST_SUITE_P(BufferSizes, BufferProperty,
                         ::testing::Values(0, 1, 2, 5, 20, 1000));

// ---- Middleware equivalence under random mixed workloads ----------------------

class MixedWorkloadProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MixedWorkloadProperty, ImpMatchesNoSketchBaseline) {
  const uint64_t seed = GetParam();
  auto make_db = [&](Database* db) {
    SyntheticSpec spec;
    spec.name = "t";
    spec.num_rows = 1000;
    spec.num_groups = 25;
    spec.seed = seed;
    IMP_CHECK(CreateSyntheticTable(db, spec).ok());
  };

  Database db_ns, db_imp;
  make_db(&db_ns);
  make_db(&db_imp);
  ImpConfig ns_config;
  ns_config.mode = ExecutionMode::kNoSketch;
  ImpSystem ns(&db_ns, ns_config);
  ImpConfig imp_config;
  imp_config.mode = ExecutionMode::kIncremental;
  imp_config.strategy =
      seed % 2 == 0 ? MaintenanceStrategy::kLazy : MaintenanceStrategy::kEager;
  ImpSystem imp(&db_imp, imp_config);
  ASSERT_TRUE(
      imp.RegisterPartition(
             RangePartition::EquiWidthInt("t", "b", 2, 0, 200, 8))
          .ok());

  Rng rng(seed);
  SyntheticSpec row_spec;
  row_spec.num_groups = 25;
  int64_t next_id = 500000;
  for (int op = 0; op < 40; ++op) {
    if (rng.Chance(0.5)) {
      int64_t threshold = 2000 + rng.UniformInt(0, 50) * 20;
      std::string sql = "SELECT a, sum(b) AS sb FROM t GROUP BY a "
                        "HAVING sum(b) > " + std::to_string(threshold);
      auto r_ns = ns.Query(sql);
      auto r_imp = imp.Query(sql);
      ASSERT_TRUE(r_ns.ok());
      ASSERT_TRUE(r_imp.ok()) << r_imp.status().ToString();
      ASSERT_TRUE(r_ns.value().SameBag(r_imp.value()))
          << "op " << op << " sql: " << sql << "\nNS:\n"
          << r_ns.value().ToString() << "IMP:\n"
          << r_imp.value().ToString();
    } else if (rng.Chance(0.7)) {
      BoundUpdate update;
      update.kind = BoundUpdate::Kind::kInsert;
      update.table = "t";
      size_t n = static_cast<size_t>(rng.UniformInt(1, 8));
      Rng row_rng(seed * 1000 + op);
      for (size_t i = 0; i < n; ++i) {
        update.rows.push_back(SyntheticRow(row_spec, next_id++, &row_rng));
      }
      ASSERT_TRUE(ns.UpdateBound(update).ok());
      ASSERT_TRUE(imp.UpdateBound(update).ok());
    } else {
      int64_t group = rng.UniformInt(0, 24);
      std::string sql =
          "DELETE FROM t WHERE a = " + std::to_string(group);
      ASSERT_TRUE(ns.Update(sql).ok());
      ASSERT_TRUE(imp.Update(sql).ok());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MixedWorkloadProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// ---- Concurrent interleavings: monotone snapshots + superset safety ---------

class InterleavingProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(InterleavingProperty, SnapshotsStayMonotoneAndSupersetSafe) {
  const uint64_t seed = GetParam();
  Database db;
  SyntheticSpec spec;
  spec.name = "t";
  spec.num_rows = 700;
  spec.num_groups = 20;
  spec.seed = seed;
  ASSERT_TRUE(CreateSyntheticTable(&db, spec).ok());

  ImpConfig config;
  config.mode = ExecutionMode::kIncremental;
  config.strategy =
      seed % 2 == 0 ? MaintenanceStrategy::kLazy : MaintenanceStrategy::kEager;
  config.eager_batch_size = 3;
  config.async_ingestion = seed % 3 == 0;
  ImpSystem system(&db, config);
  ASSERT_TRUE(system
                  .RegisterPartition(
                      RangePartition::EquiWidthInt("t", "a", 1, 0, 19, 6))
                  .ok());
  const std::string sql_sum =
      "SELECT a, sum(b) AS sb FROM t GROUP BY a HAVING sum(b) > 2000";
  const std::string sql_count =
      "SELECT a, count(*) AS n FROM t GROUP BY a HAVING count(*) > 30";
  ASSERT_TRUE(system.Query(sql_sum).ok());
  ASSERT_TRUE(system.Query(sql_count).ok());

  SyntheticSpec row_spec;
  row_spec.num_groups = 20;
  std::atomic<int64_t> next_id{700000};

  // Previously observed (epoch, valid_version) per entry; both must only
  // ever grow across observation points.
  struct Watermarks {
    uint64_t epoch = 0;
    uint64_t valid = 0;
  };
  std::map<SketchEntry*, Watermarks> seen;

  for (int phase = 0; phase < 3; ++phase) {
    // One seeded schedule: three threads draw ops from independent RNGs.
    // The interleaving itself is nondeterministic; the STREAM each thread
    // draws is reproducible from the seed.
    std::vector<std::thread> workers;
    for (int tid = 0; tid < 3; ++tid) {
      workers.emplace_back([&, tid] {
        Rng rng(seed * 131 + static_cast<uint64_t>(phase) * 17 +
                static_cast<uint64_t>(tid));
        for (int op = 0; op < 12; ++op) {
          double roll = rng.UniformDouble(0.0, 1.0);
          if (roll < 0.4) {
            BoundUpdate update;
            update.kind = BoundUpdate::Kind::kInsert;
            update.table = "t";
            size_t n = static_cast<size_t>(rng.UniformInt(1, 4));
            for (size_t i = 0; i < n; ++i) {
              update.rows.push_back(SyntheticRow(
                  row_spec, next_id.fetch_add(1, std::memory_order_relaxed),
                  &rng));
            }
            ASSERT_TRUE(system.UpdateBound(update).ok());
          } else if (roll < 0.8) {
            auto result =
                system.Query(rng.Chance(0.5) ? sql_sum : sql_count);
            ASSERT_TRUE(result.ok()) << result.status().ToString();
          } else {
            ASSERT_TRUE(system.MaintainAll().ok());
          }
        }
      });
    }
    // The main thread throws a repartition into odd phases — stop-the-world
    // racing the workers' queries and rounds.
    if (phase % 2 == 1) {
      ASSERT_TRUE(system.RepartitionTable("t", "a", 5 + phase).ok());
    }
    for (std::thread& w : workers) w.join();
    ASSERT_TRUE(system.WaitForIngest().ok());

    // ---- Observation point (quiescent) ----
    // First observe the possibly-stale mid-race snapshots: monotone, and
    // self-consistent. Then repair to the watermark (the lazy path would
    // do the same before any use) and check the incremental-safety pillar:
    // the maintained sketch covers the accurate recapture and answering
    // through it equals the full scan.
    for (SketchEntry* entry : system.sketches().AllEntries()) {
      std::shared_ptr<const SketchSnapshot> snap = entry->Snapshot();
      Watermarks& last = seen[entry];
      EXPECT_GE(snap->epoch, last.epoch) << "phase " << phase;
      EXPECT_GE(snap->valid_version(), last.valid) << "phase " << phase;
      last.epoch = snap->epoch;
      last.valid = snap->valid_version();
    }
    ASSERT_TRUE(system.MaintainAll().ok());
    CaptureEngine capture(&db, &system.catalog());
    Executor exec(&db);
    for (SketchEntry* entry : system.sketches().AllEntries()) {
      std::shared_ptr<const SketchSnapshot> snap = entry->Snapshot();
      Watermarks& last = seen[entry];
      EXPECT_GE(snap->epoch, last.epoch) << "phase " << phase;
      EXPECT_GE(snap->valid_version(), last.valid) << "phase " << phase;
      last.epoch = snap->epoch;
      last.valid = snap->valid_version();

      auto accurate = capture.Capture(entry->plan);
      ASSERT_TRUE(accurate.ok());
      EXPECT_TRUE(snap->sketch.Covers(accurate.value()))
          << "phase " << phase << ": maintained " << snap->sketch.ToString()
          << " does not cover accurate " << accurate.value().ToString();

      PlanPtr rewritten = ApplyUseRewrite(entry->plan, system.catalog(),
                                          *snap, &entry->filter_tables);
      auto full = exec.Execute(entry->plan);
      auto skipped = exec.Execute(rewritten);
      ASSERT_TRUE(full.ok());
      ASSERT_TRUE(skipped.ok());
      EXPECT_TRUE(full.value().SameBag(skipped.value()))
          << "phase " << phase << ": sketch-filtered result diverged";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Schedules, InterleavingProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace imp
