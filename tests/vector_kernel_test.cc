// Randomized equivalence suite for the batch predicate kernels
// (exec/vector_kernels): for any predicate the compiler sees — compilable,
// partially compilable, or fully scalar — the kernel's selection bitmap
// must be bit-for-bit identical to row-at-a-time Expr::Eval, over both
// columnar chunks and row-major blocks. Also checks end-to-end: queries,
// captures and maintenance produce identical results with the kernels on
// and off.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "exec/executor.h"
#include "exec/vector_kernels.h"
#include "imp/maintainer.h"
#include "sketch/capture.h"
#include "test_util.h"

namespace imp {
namespace {

// ---- Random data + predicate generators ------------------------------------

// Columns: a int, b int, c double, d string (with NULLs sprinkled in every
// column so three-valued comparison semantics are exercised).
Schema MixedSchema() {
  Schema s;
  s.AddColumn("a", ValueType::kInt);
  s.AddColumn("b", ValueType::kInt);
  s.AddColumn("c", ValueType::kDouble);
  s.AddColumn("d", ValueType::kString);
  return s;
}

Value RandomCell(Rng* rng, size_t col) {
  if (rng->Chance(0.1)) return Value::Null();
  switch (col) {
    case 0:
      return Value::Int(rng->UniformInt(0, 100));
    case 1:
      return Value::Int(rng->UniformInt(-50, 50));
    case 2:
      return Value::Double(rng->UniformDouble(-10.0, 10.0));
    default:
      return Value::String(std::string("s") +
                           std::to_string(rng->UniformInt(0, 9)));
  }
}

std::vector<Tuple> RandomRows(Rng* rng, size_t n) {
  std::vector<Tuple> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    rows.push_back(Tuple{RandomCell(rng, 0), RandomCell(rng, 1),
                         RandomCell(rng, 2), RandomCell(rng, 3)});
  }
  return rows;
}

ExprPtr RandomColumn(Rng* rng) {
  static const ValueType kTypes[] = {ValueType::kInt, ValueType::kInt,
                                     ValueType::kDouble, ValueType::kString};
  static const char* kNames[] = {"a", "b", "c", "d"};
  size_t col = static_cast<size_t>(rng->UniformInt(0, 3));
  return MakeColumnRef(col, kNames[col], kTypes[col]);
}

ExprPtr RandomLiteral(Rng* rng, size_t col_hint) {
  if (rng->Chance(0.05)) return MakeLiteral(Value::Null());
  return MakeLiteral(RandomCell(rng, col_hint));
}

BinaryOp RandomCmp(Rng* rng) {
  static const BinaryOp kOps[] = {BinaryOp::kEq, BinaryOp::kNe, BinaryOp::kLt,
                                  BinaryOp::kLe, BinaryOp::kGt, BinaryOp::kGe};
  return kOps[rng->UniformInt(0, 5)];
}

/// A random predicate mixing every shape the compiler handles (col-vs-lit
/// in both orders, BETWEEN, AND/OR/NOT, OR-of-ranges) with shapes it must
/// fall back on (col-vs-col, arithmetic).
ExprPtr RandomPredicate(Rng* rng, int depth) {
  if (depth > 0 && rng->Chance(0.6)) {
    switch (rng->UniformInt(0, 2)) {
      case 0:
        return MakeBinary(BinaryOp::kAnd, RandomPredicate(rng, depth - 1),
                          RandomPredicate(rng, depth - 1));
      case 1:
        return MakeBinary(BinaryOp::kOr, RandomPredicate(rng, depth - 1),
                          RandomPredicate(rng, depth - 1));
      default:
        return MakeUnary(UnaryOp::kNot, RandomPredicate(rng, depth - 1));
    }
  }
  size_t col = static_cast<size_t>(rng->UniformInt(0, 3));
  switch (rng->UniformInt(0, 5)) {
    case 0:  // col cmp lit
      return MakeBinary(RandomCmp(rng), RandomColumn(rng),
                        RandomLiteral(rng, col));
    case 1:  // lit cmp col (compiled through the mirrored op)
      return MakeBinary(RandomCmp(rng), RandomLiteral(rng, col),
                        RandomColumn(rng));
    case 2:  // BETWEEN
      return MakeBetween(RandomColumn(rng), RandomLiteral(rng, col),
                         RandomLiteral(rng, col));
    case 3:  // col cmp col — NOT compilable, exercises the scalar remainder
      return MakeBinary(RandomCmp(rng), RandomColumn(rng), RandomColumn(rng));
    case 4: {  // arithmetic (numeric columns only) — NOT compilable
      size_t num_col = static_cast<size_t>(rng->UniformInt(0, 1));
      return MakeBinary(
          RandomCmp(rng),
          MakeBinary(BinaryOp::kAdd,
                     MakeColumnRef(num_col, num_col == 0 ? "a" : "b",
                                   ValueType::kInt),
                     MakeLiteral(Value::Int(1))),
          RandomLiteral(rng, 0));
    }
    default:  // constant
      return MakeLiteral(rng->Chance(0.5) ? Value::Int(1) : Value::Int(0));
  }
}

/// Reference bit: the scalar semantics the kernel must reproduce exactly.
bool ScalarBit(const ExprPtr& expr, const Tuple& row) {
  return expr->Eval(row).IsTrue();
}

void ExpectBitIdentical(const PredicateKernel& kernel, const ExprPtr& expr,
                        const RowBlock& block,
                        const std::vector<Tuple>& rows_for_reference,
                        const std::string& context) {
  BitVector sel;
  size_t batches = 0, fallback_rows = 0;
  kernel.Eval(block, &sel, &batches, &fallback_rows);
  ASSERT_EQ(block.num_rows(), rows_for_reference.size());
  for (size_t i = 0; i < rows_for_reference.size(); ++i) {
    ASSERT_EQ(sel.Test(i), ScalarBit(expr, rows_for_reference[i]))
        << context << " row " << i << " expr " << expr->ToString();
  }
}

// ---- Randomized kernel-vs-scalar over columnar chunks -----------------------

TEST(VectorKernelTest, RandomizedEquivalenceOnChunks) {
  Rng rng(42);
  Database db;
  ASSERT_TRUE(db.CreateTable("t", MixedSchema()).ok());
  std::vector<Tuple> rows = RandomRows(&rng, 9000);  // spans several chunks
  ASSERT_TRUE(db.BulkLoad("t", rows).ok());
  auto snap = db.GetTable("t")->Snapshot();

  for (int trial = 0; trial < 60; ++trial) {
    ExprPtr expr = RandomPredicate(&rng, 3);
    PredicateKernel kernel = PredicateKernel::Compile(expr);
    size_t row_base = 0;
    for (const auto& chunk : snap->chunks()) {
      std::vector<Tuple> chunk_rows;
      chunk_rows.reserve(chunk->num_rows());
      for (size_t r = 0; r < chunk->num_rows(); ++r) {
        chunk_rows.push_back(chunk->GetRow(r));
      }
      ExpectBitIdentical(kernel, expr, RowBlock::FromChunk(*chunk), chunk_rows,
                         "chunk@" + std::to_string(row_base));
      row_base += chunk->num_rows();
    }
  }
}

// ---- Randomized kernel-vs-scalar over row-major blocks ----------------------

TEST(VectorKernelTest, RandomizedEquivalenceOnTupleArrays) {
  Rng rng(43);
  std::vector<Tuple> rows = RandomRows(&rng, 700);
  for (int trial = 0; trial < 60; ++trial) {
    ExprPtr expr = RandomPredicate(&rng, 3);
    PredicateKernel kernel = PredicateKernel::Compile(expr);
    ExpectBitIdentical(kernel, expr,
                       RowBlock::FromTuples(rows.data(), rows.size()), rows,
                       "tuple-array");
  }
}

TEST(VectorKernelTest, RandomizedEquivalenceOnStridedMembers) {
  // The layout the maintenance pipeline uses: tuples embedded in a larger
  // struct, accessed at a stride via FromMember.
  struct Wrapper {
    int64_t pad0 = 7;
    Tuple row;
    std::string pad1 = "x";
  };
  Rng rng(44);
  std::vector<Tuple> plain = RandomRows(&rng, 500);
  std::vector<Wrapper> wrapped(plain.size());
  for (size_t i = 0; i < plain.size(); ++i) wrapped[i].row = plain[i];
  for (int trial = 0; trial < 40; ++trial) {
    ExprPtr expr = RandomPredicate(&rng, 3);
    PredicateKernel kernel = PredicateKernel::Compile(expr);
    ExpectBitIdentical(kernel, expr,
                       RowBlock::FromMember(wrapped, &Wrapper::row), plain,
                       "strided");
  }
}

// ---- Targeted shapes --------------------------------------------------------

TEST(VectorKernelTest, RangeSetFusionIsFullyVectorized) {
  // The IN-partition-bucket shape the use-rewrite emits: OR of ranges and
  // equalities over ONE column fuses into a sorted range-set probe.
  ExprPtr col = MakeColumnRef(0, "a", ValueType::kInt);
  auto ref = [&] { return MakeColumnRef(0, "a", ValueType::kInt); };
  ExprPtr expr = MakeDisjunction([&] {
    std::vector<ExprPtr> terms;
    terms.push_back(MakeBetween(ref(), MakeLiteral(Value::Int(1)),
                                MakeLiteral(Value::Int(10))));
    terms.push_back(MakeBetween(ref(), MakeLiteral(Value::Int(8)),
                                MakeLiteral(Value::Int(20))));  // overlaps
    terms.push_back(MakeBinary(BinaryOp::kEq, ref(),
                               MakeLiteral(Value::Int(50))));
    return terms;
  }());
  PredicateKernel kernel = PredicateKernel::Compile(expr);
  EXPECT_TRUE(kernel.fully_vectorized());

  std::vector<Tuple> rows;
  for (int v = -5; v < 60; ++v) rows.push_back(Tuple{Value::Int(v)});
  rows.push_back(Tuple{Value::Null()});
  BitVector sel;
  kernel.Eval(RowBlock::FromTuples(rows.data(), rows.size()), &sel, nullptr,
              nullptr);
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(sel.Test(i), ScalarBit(expr, rows[i])) << "row " << i;
  }
}

TEST(VectorKernelTest, ScalarRemainderOnlyTestsSurvivors) {
  // (a <= 10) AND (a < b): the comparison compiles, the col-vs-col
  // remainder must run only on rows that pass the compiled part.
  ExprPtr expr = MakeBinary(
      BinaryOp::kAnd,
      MakeBinary(BinaryOp::kLe, MakeColumnRef(0, "a", ValueType::kInt),
                 MakeLiteral(Value::Int(10))),
      MakeBinary(BinaryOp::kLt, MakeColumnRef(0, "a", ValueType::kInt),
                 MakeColumnRef(1, "b", ValueType::kInt)));
  PredicateKernel kernel = PredicateKernel::Compile(expr);
  EXPECT_TRUE(kernel.vectorized());
  EXPECT_FALSE(kernel.fully_vectorized());
  ASSERT_NE(kernel.scalar_remainder(), nullptr);

  std::vector<Tuple> rows;
  for (int v = 0; v < 100; ++v) {
    rows.push_back(Tuple{Value::Int(v), Value::Int(50)});
  }
  BitVector sel;
  size_t batches = 0, fallback_rows = 0;
  kernel.Eval(RowBlock::FromTuples(rows.data(), rows.size()), &sel, &batches,
              &fallback_rows);
  EXPECT_EQ(batches, 1u);
  EXPECT_EQ(fallback_rows, 11u);  // rows 0..10 survive a <= 10
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(sel.Test(i), ScalarBit(expr, rows[i])) << "row " << i;
  }
}

TEST(VectorKernelTest, NullPredicateSelectsEverything) {
  PredicateKernel kernel = PredicateKernel::Compile(nullptr);
  EXPECT_FALSE(kernel.has_predicate());
  std::vector<Tuple> rows = {{Value::Int(1)}, {Value::Null()}};
  BitVector sel;
  kernel.Eval(RowBlock::FromTuples(rows.data(), rows.size()), &sel, nullptr,
              nullptr);
  EXPECT_EQ(sel.Count(), rows.size());
}

// ---- End-to-end: queries, capture, maintenance ------------------------------

TEST(VectorKernelTest, ExecutorVectorizedOffMatchesOn) {
  Rng rng(45);
  Database db;
  ASSERT_TRUE(db.CreateTable("t", MixedSchema()).ok());
  ASSERT_TRUE(db.BulkLoad("t", RandomRows(&rng, 6000)).ok());
  struct Case {
    const char* sql;
    bool expect_kernel_batches;  // false: fully scalar-fallback shape
  };
  const Case queries[] = {
      {"SELECT * FROM t WHERE a BETWEEN 10 AND 60", true},
      {"SELECT a, b FROM t WHERE a < 30 AND b >= 0", true},
      {"SELECT * FROM t WHERE a = 5 OR a = 9 OR a BETWEEN 90 AND 95", true},
      {"SELECT * FROM t WHERE d = 's3' AND c > 0.0", true},
      {"SELECT * FROM t WHERE a < b", false},
  };
  for (const Case& c : queries) {
    PlanPtr plan = MustBind(db, c.sql);
    Executor on(&db);
    Executor off(&db);
    off.set_vectorized(false);
    auto r_on = on.Execute(plan);
    auto r_off = off.Execute(plan);
    ASSERT_TRUE(r_on.ok() && r_off.ok()) << c.sql;
    EXPECT_TRUE(r_on.value().SameBag(r_off.value())) << c.sql;
    if (c.expect_kernel_batches) {
      EXPECT_GT(on.scan_stats().vectorized_batches, 0u) << c.sql;
    } else {
      EXPECT_GT(on.scan_stats().scalar_fallback_rows, 0u) << c.sql;
    }
    EXPECT_EQ(off.scan_stats().vectorized_batches, 0u) << c.sql;
    EXPECT_EQ(off.scan_stats().scalar_fallback_rows, 0u) << c.sql;
  }
}

TEST(VectorKernelTest, CaptureSketchIdenticalWithKernelsOnAndOff) {
  Database db;
  LoadSalesExample(&db);
  PartitionCatalog catalog;
  ASSERT_TRUE(catalog.Register(SalesPricePartition()).ok());
  PlanPtr plan =
      MustBind(db, "SELECT sid FROM sales WHERE price BETWEEN 1001 AND 1500");
  auto annotate = [&](const std::string& table, const Tuple& row,
                      BitVector* out) { catalog.AnnotateRow(table, row, out); };
  AnnotatedExecutor on(&db, annotate);
  AnnotatedExecutor off(&db, annotate);
  off.set_vectorized(false);
  auto r_on = on.Execute(plan);
  auto r_off = off.Execute(plan);
  ASSERT_TRUE(r_on.ok() && r_off.ok());
  EXPECT_EQ(r_on.value().SketchUnion(), r_off.value().SketchUnion());
  EXPECT_TRUE(r_on.value().ToRelation().SameBag(r_off.value().ToRelation()));
  EXPECT_GT(on.scan_stats().vectorized_batches, 0u);
}

TEST(VectorKernelTest, MaintenanceBitIdenticalWithKernelsOnAndOff) {
  // Two maintainers over identical databases — kernels on vs off — must
  // produce identical sketch deltas and identical sketches on every round,
  // across filters, joins (bloom pruning) and deletes.
  Database db_on, db_off;
  LoadFig5Example(&db_on);
  LoadFig5Example(&db_off);
  PartitionCatalog cat_on, cat_off;
  for (PartitionCatalog* cat : {&cat_on, &cat_off}) {
    ASSERT_TRUE(cat->Register(Fig5PartitionR()).ok());
    ASSERT_TRUE(cat->Register(Fig5PartitionS()).ok());
  }
  MaintainerOptions opt_on, opt_off;
  opt_off.vectorized_kernels = false;
  Maintainer m_on(&db_on, &cat_on, MustBind(db_on, kFig5Query), opt_on);
  Maintainer m_off(&db_off, &cat_off, MustBind(db_off, kFig5Query), opt_off);
  auto s_on = m_on.Initialize();
  auto s_off = m_off.Initialize();
  ASSERT_TRUE(s_on.ok() && s_off.ok());
  EXPECT_EQ(s_on.value().fragments, s_off.value().fragments);

  Rng rng(46);
  for (int round = 0; round < 8; ++round) {
    // Same random mutations applied to both databases.
    std::vector<Tuple> r_rows, s_rows;
    for (int i = 0; i < 5; ++i) {
      r_rows.push_back(Tuple{Value::Int(rng.UniformInt(1, 10)),
                             Value::Int(rng.UniformInt(1, 10))});
      s_rows.push_back(Tuple{Value::Int(rng.UniformInt(1, 15)),
                             Value::Int(rng.UniformInt(1, 10))});
    }
    int64_t doomed = rng.UniformInt(1, 10);
    for (Database* db : {&db_on, &db_off}) {
      ASSERT_TRUE(db->Insert("r", r_rows).ok());
      ASSERT_TRUE(db->Insert("s", s_rows).ok());
      if (round % 3 == 2) {
        ASSERT_TRUE(db->Delete("r", [&](const Tuple& row) {
                        return row[0] == Value::Int(doomed);
                      }).ok());
      }
    }
    auto d_on = m_on.MaintainFromBackend();
    auto d_off = m_off.MaintainFromBackend();
    ASSERT_TRUE(d_on.ok() && d_off.ok()) << "round " << round;
    EXPECT_EQ(d_on.value().added, d_off.value().added) << "round " << round;
    EXPECT_EQ(d_on.value().removed, d_off.value().removed)
        << "round " << round;
    EXPECT_EQ(m_on.sketch().fragments, m_off.sketch().fragments)
        << "round " << round;
  }
  // The vectorized maintainer actually used the kernels; the scalar one
  // never did.
  EXPECT_GT(m_on.stats().vectorized_batches, 0u);
  EXPECT_EQ(m_off.stats().vectorized_batches, 0u);
}

}  // namespace
}  // namespace imp
