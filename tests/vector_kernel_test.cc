// Randomized equivalence suite for the batch predicate kernels
// (exec/vector_kernels): for any predicate the compiler sees — compilable,
// partially compilable, or fully scalar — the kernel's selection bitmap
// must be bit-for-bit identical to row-at-a-time Expr::Eval, over both
// columnar chunks and row-major blocks. Also checks end-to-end: queries,
// captures and maintenance produce identical results with the kernels on
// and off.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "exec/executor.h"
#include "exec/vector_kernels.h"
#include "imp/inc_aggregate.h"
#include "imp/inc_operators.h"
#include "imp/maintainer.h"
#include "sketch/capture.h"
#include "sketch/partition.h"
#include "test_util.h"

namespace imp {
namespace {

// ---- Random data + predicate generators ------------------------------------

// Columns: a int, b int, c double, d string (with NULLs sprinkled in every
// column so three-valued comparison semantics are exercised).
Schema MixedSchema() {
  Schema s;
  s.AddColumn("a", ValueType::kInt);
  s.AddColumn("b", ValueType::kInt);
  s.AddColumn("c", ValueType::kDouble);
  s.AddColumn("d", ValueType::kString);
  return s;
}

Value RandomCell(Rng* rng, size_t col) {
  if (rng->Chance(0.1)) return Value::Null();
  switch (col) {
    case 0:
      return Value::Int(rng->UniformInt(0, 100));
    case 1:
      return Value::Int(rng->UniformInt(-50, 50));
    case 2:
      return Value::Double(rng->UniformDouble(-10.0, 10.0));
    default:
      return Value::String(std::string("s") +
                           std::to_string(rng->UniformInt(0, 9)));
  }
}

std::vector<Tuple> RandomRows(Rng* rng, size_t n) {
  std::vector<Tuple> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    rows.push_back(Tuple{RandomCell(rng, 0), RandomCell(rng, 1),
                         RandomCell(rng, 2), RandomCell(rng, 3)});
  }
  return rows;
}

ExprPtr RandomColumn(Rng* rng) {
  static const ValueType kTypes[] = {ValueType::kInt, ValueType::kInt,
                                     ValueType::kDouble, ValueType::kString};
  static const char* kNames[] = {"a", "b", "c", "d"};
  size_t col = static_cast<size_t>(rng->UniformInt(0, 3));
  return MakeColumnRef(col, kNames[col], kTypes[col]);
}

ExprPtr RandomLiteral(Rng* rng, size_t col_hint) {
  if (rng->Chance(0.05)) return MakeLiteral(Value::Null());
  return MakeLiteral(RandomCell(rng, col_hint));
}

BinaryOp RandomCmp(Rng* rng) {
  static const BinaryOp kOps[] = {BinaryOp::kEq, BinaryOp::kNe, BinaryOp::kLt,
                                  BinaryOp::kLe, BinaryOp::kGt, BinaryOp::kGe};
  return kOps[rng->UniformInt(0, 5)];
}

/// A random predicate mixing every shape the compiler handles (col-vs-lit
/// in both orders, BETWEEN, AND/OR/NOT, OR-of-ranges) with shapes it must
/// fall back on (col-vs-col, arithmetic).
ExprPtr RandomPredicate(Rng* rng, int depth) {
  if (depth > 0 && rng->Chance(0.6)) {
    switch (rng->UniformInt(0, 2)) {
      case 0:
        return MakeBinary(BinaryOp::kAnd, RandomPredicate(rng, depth - 1),
                          RandomPredicate(rng, depth - 1));
      case 1:
        return MakeBinary(BinaryOp::kOr, RandomPredicate(rng, depth - 1),
                          RandomPredicate(rng, depth - 1));
      default:
        return MakeUnary(UnaryOp::kNot, RandomPredicate(rng, depth - 1));
    }
  }
  size_t col = static_cast<size_t>(rng->UniformInt(0, 3));
  switch (rng->UniformInt(0, 5)) {
    case 0:  // col cmp lit
      return MakeBinary(RandomCmp(rng), RandomColumn(rng),
                        RandomLiteral(rng, col));
    case 1:  // lit cmp col (compiled through the mirrored op)
      return MakeBinary(RandomCmp(rng), RandomLiteral(rng, col),
                        RandomColumn(rng));
    case 2:  // BETWEEN
      return MakeBetween(RandomColumn(rng), RandomLiteral(rng, col),
                         RandomLiteral(rng, col));
    case 3:  // col cmp col — NOT compilable, exercises the scalar remainder
      return MakeBinary(RandomCmp(rng), RandomColumn(rng), RandomColumn(rng));
    case 4: {  // arithmetic (numeric columns only) — NOT compilable
      size_t num_col = static_cast<size_t>(rng->UniformInt(0, 1));
      return MakeBinary(
          RandomCmp(rng),
          MakeBinary(BinaryOp::kAdd,
                     MakeColumnRef(num_col, num_col == 0 ? "a" : "b",
                                   ValueType::kInt),
                     MakeLiteral(Value::Int(1))),
          RandomLiteral(rng, 0));
    }
    default:  // constant
      return MakeLiteral(rng->Chance(0.5) ? Value::Int(1) : Value::Int(0));
  }
}

/// Reference bit: the scalar semantics the kernel must reproduce exactly.
bool ScalarBit(const ExprPtr& expr, const Tuple& row) {
  return expr->Eval(row).IsTrue();
}

void ExpectBitIdentical(const PredicateKernel& kernel, const ExprPtr& expr,
                        const RowBlock& block,
                        const std::vector<Tuple>& rows_for_reference,
                        const std::string& context) {
  BitVector sel;
  size_t batches = 0, fallback_rows = 0;
  kernel.Eval(block, &sel, &batches, &fallback_rows);
  ASSERT_EQ(block.num_rows(), rows_for_reference.size());
  for (size_t i = 0; i < rows_for_reference.size(); ++i) {
    ASSERT_EQ(sel.Test(i), ScalarBit(expr, rows_for_reference[i]))
        << context << " row " << i << " expr " << expr->ToString();
  }
}

// ---- Randomized kernel-vs-scalar over columnar chunks -----------------------

TEST(VectorKernelTest, RandomizedEquivalenceOnChunks) {
  Rng rng(42);
  Database db;
  ASSERT_TRUE(db.CreateTable("t", MixedSchema()).ok());
  std::vector<Tuple> rows = RandomRows(&rng, 9000);  // spans several chunks
  ASSERT_TRUE(db.BulkLoad("t", rows).ok());
  auto snap = db.GetTable("t")->Snapshot();

  for (int trial = 0; trial < 60; ++trial) {
    ExprPtr expr = RandomPredicate(&rng, 3);
    PredicateKernel kernel = PredicateKernel::Compile(expr);
    size_t row_base = 0;
    for (const auto& chunk : snap->chunks()) {
      std::vector<Tuple> chunk_rows;
      chunk_rows.reserve(chunk->num_rows());
      for (size_t r = 0; r < chunk->num_rows(); ++r) {
        chunk_rows.push_back(chunk->GetRow(r));
      }
      ExpectBitIdentical(kernel, expr, RowBlock::FromChunk(*chunk), chunk_rows,
                         "chunk@" + std::to_string(row_base));
      row_base += chunk->num_rows();
    }
  }
}

// ---- Randomized kernel-vs-scalar over row-major blocks ----------------------

TEST(VectorKernelTest, RandomizedEquivalenceOnTupleArrays) {
  Rng rng(43);
  std::vector<Tuple> rows = RandomRows(&rng, 700);
  for (int trial = 0; trial < 60; ++trial) {
    ExprPtr expr = RandomPredicate(&rng, 3);
    PredicateKernel kernel = PredicateKernel::Compile(expr);
    ExpectBitIdentical(kernel, expr,
                       RowBlock::FromTuples(rows.data(), rows.size()), rows,
                       "tuple-array");
  }
}

TEST(VectorKernelTest, RandomizedEquivalenceOnStridedMembers) {
  // The layout the maintenance pipeline uses: tuples embedded in a larger
  // struct, accessed at a stride via FromMember.
  struct Wrapper {
    int64_t pad0 = 7;
    Tuple row;
    std::string pad1 = "x";
  };
  Rng rng(44);
  std::vector<Tuple> plain = RandomRows(&rng, 500);
  std::vector<Wrapper> wrapped(plain.size());
  for (size_t i = 0; i < plain.size(); ++i) wrapped[i].row = plain[i];
  for (int trial = 0; trial < 40; ++trial) {
    ExprPtr expr = RandomPredicate(&rng, 3);
    PredicateKernel kernel = PredicateKernel::Compile(expr);
    ExpectBitIdentical(kernel, expr,
                       RowBlock::FromMember(wrapped, &Wrapper::row), plain,
                       "strided");
  }
}

// ---- Targeted shapes --------------------------------------------------------

TEST(VectorKernelTest, RangeSetFusionIsFullyVectorized) {
  // The IN-partition-bucket shape the use-rewrite emits: OR of ranges and
  // equalities over ONE column fuses into a sorted range-set probe.
  ExprPtr col = MakeColumnRef(0, "a", ValueType::kInt);
  auto ref = [&] { return MakeColumnRef(0, "a", ValueType::kInt); };
  ExprPtr expr = MakeDisjunction([&] {
    std::vector<ExprPtr> terms;
    terms.push_back(MakeBetween(ref(), MakeLiteral(Value::Int(1)),
                                MakeLiteral(Value::Int(10))));
    terms.push_back(MakeBetween(ref(), MakeLiteral(Value::Int(8)),
                                MakeLiteral(Value::Int(20))));  // overlaps
    terms.push_back(MakeBinary(BinaryOp::kEq, ref(),
                               MakeLiteral(Value::Int(50))));
    return terms;
  }());
  PredicateKernel kernel = PredicateKernel::Compile(expr);
  EXPECT_TRUE(kernel.fully_vectorized());

  std::vector<Tuple> rows;
  for (int v = -5; v < 60; ++v) rows.push_back(Tuple{Value::Int(v)});
  rows.push_back(Tuple{Value::Null()});
  BitVector sel;
  kernel.Eval(RowBlock::FromTuples(rows.data(), rows.size()), &sel, nullptr,
              nullptr);
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(sel.Test(i), ScalarBit(expr, rows[i])) << "row " << i;
  }
}

TEST(VectorKernelTest, ScalarRemainderOnlyTestsSurvivors) {
  // (a <= 10) AND (a < b): the comparison compiles, the col-vs-col
  // remainder must run only on rows that pass the compiled part.
  ExprPtr expr = MakeBinary(
      BinaryOp::kAnd,
      MakeBinary(BinaryOp::kLe, MakeColumnRef(0, "a", ValueType::kInt),
                 MakeLiteral(Value::Int(10))),
      MakeBinary(BinaryOp::kLt, MakeColumnRef(0, "a", ValueType::kInt),
                 MakeColumnRef(1, "b", ValueType::kInt)));
  PredicateKernel kernel = PredicateKernel::Compile(expr);
  EXPECT_TRUE(kernel.vectorized());
  EXPECT_FALSE(kernel.fully_vectorized());
  ASSERT_NE(kernel.scalar_remainder(), nullptr);

  std::vector<Tuple> rows;
  for (int v = 0; v < 100; ++v) {
    rows.push_back(Tuple{Value::Int(v), Value::Int(50)});
  }
  BitVector sel;
  size_t batches = 0, fallback_rows = 0;
  kernel.Eval(RowBlock::FromTuples(rows.data(), rows.size()), &sel, &batches,
              &fallback_rows);
  EXPECT_EQ(batches, 1u);
  EXPECT_EQ(fallback_rows, 11u);  // rows 0..10 survive a <= 10
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(sel.Test(i), ScalarBit(expr, rows[i])) << "row " << i;
  }
}

TEST(VectorKernelTest, NullPredicateSelectsEverything) {
  PredicateKernel kernel = PredicateKernel::Compile(nullptr);
  EXPECT_FALSE(kernel.has_predicate());
  std::vector<Tuple> rows = {{Value::Int(1)}, {Value::Null()}};
  BitVector sel;
  kernel.Eval(RowBlock::FromTuples(rows.data(), rows.size()), &sel, nullptr,
              nullptr);
  EXPECT_EQ(sel.Count(), rows.size());
}

// ---- End-to-end: queries, capture, maintenance ------------------------------

TEST(VectorKernelTest, ExecutorVectorizedOffMatchesOn) {
  Rng rng(45);
  Database db;
  ASSERT_TRUE(db.CreateTable("t", MixedSchema()).ok());
  ASSERT_TRUE(db.BulkLoad("t", RandomRows(&rng, 6000)).ok());
  struct Case {
    const char* sql;
    bool expect_kernel_batches;  // false: fully scalar-fallback shape
  };
  const Case queries[] = {
      {"SELECT * FROM t WHERE a BETWEEN 10 AND 60", true},
      {"SELECT a, b FROM t WHERE a < 30 AND b >= 0", true},
      {"SELECT * FROM t WHERE a = 5 OR a = 9 OR a BETWEEN 90 AND 95", true},
      {"SELECT * FROM t WHERE d = 's3' AND c > 0.0", true},
      {"SELECT * FROM t WHERE a < b", false},
  };
  for (const Case& c : queries) {
    PlanPtr plan = MustBind(db, c.sql);
    Executor on(&db);
    Executor off(&db);
    off.set_vectorized(false);
    auto r_on = on.Execute(plan);
    auto r_off = off.Execute(plan);
    ASSERT_TRUE(r_on.ok() && r_off.ok()) << c.sql;
    EXPECT_TRUE(r_on.value().SameBag(r_off.value())) << c.sql;
    if (c.expect_kernel_batches) {
      EXPECT_GT(on.scan_stats().vectorized_batches, 0u) << c.sql;
    } else {
      EXPECT_GT(on.scan_stats().scalar_fallback_rows, 0u) << c.sql;
    }
    EXPECT_EQ(off.scan_stats().vectorized_batches, 0u) << c.sql;
    EXPECT_EQ(off.scan_stats().scalar_fallback_rows, 0u) << c.sql;
  }
}

TEST(VectorKernelTest, CaptureSketchIdenticalWithKernelsOnAndOff) {
  Database db;
  LoadSalesExample(&db);
  PartitionCatalog catalog;
  ASSERT_TRUE(catalog.Register(SalesPricePartition()).ok());
  PlanPtr plan =
      MustBind(db, "SELECT sid FROM sales WHERE price BETWEEN 1001 AND 1500");
  auto annotate = [&](const std::string& table, const Tuple& row,
                      BitVector* out) { catalog.AnnotateRow(table, row, out); };
  AnnotatedExecutor on(&db, annotate);
  AnnotatedExecutor off(&db, annotate);
  off.set_vectorized(false);
  auto r_on = on.Execute(plan);
  auto r_off = off.Execute(plan);
  ASSERT_TRUE(r_on.ok() && r_off.ok());
  EXPECT_EQ(r_on.value().SketchUnion(), r_off.value().SketchUnion());
  EXPECT_TRUE(r_on.value().ToRelation().SameBag(r_off.value().ToRelation()));
  EXPECT_GT(on.scan_stats().vectorized_batches, 0u);
}

TEST(VectorKernelTest, MaintenanceBitIdenticalWithKernelsOnAndOff) {
  // Two maintainers over identical databases — kernels on vs off — must
  // produce identical sketch deltas and identical sketches on every round,
  // across filters, joins (bloom pruning) and deletes.
  Database db_on, db_off;
  LoadFig5Example(&db_on);
  LoadFig5Example(&db_off);
  PartitionCatalog cat_on, cat_off;
  for (PartitionCatalog* cat : {&cat_on, &cat_off}) {
    ASSERT_TRUE(cat->Register(Fig5PartitionR()).ok());
    ASSERT_TRUE(cat->Register(Fig5PartitionS()).ok());
  }
  MaintainerOptions opt_on, opt_off;
  opt_off.vectorized_kernels = false;
  Maintainer m_on(&db_on, &cat_on, MustBind(db_on, kFig5Query), opt_on);
  Maintainer m_off(&db_off, &cat_off, MustBind(db_off, kFig5Query), opt_off);
  auto s_on = m_on.Initialize();
  auto s_off = m_off.Initialize();
  ASSERT_TRUE(s_on.ok() && s_off.ok());
  EXPECT_EQ(s_on.value().fragments, s_off.value().fragments);

  Rng rng(46);
  for (int round = 0; round < 8; ++round) {
    // Same random mutations applied to both databases.
    std::vector<Tuple> r_rows, s_rows;
    for (int i = 0; i < 5; ++i) {
      r_rows.push_back(Tuple{Value::Int(rng.UniformInt(1, 10)),
                             Value::Int(rng.UniformInt(1, 10))});
      s_rows.push_back(Tuple{Value::Int(rng.UniformInt(1, 15)),
                             Value::Int(rng.UniformInt(1, 10))});
    }
    int64_t doomed = rng.UniformInt(1, 10);
    for (Database* db : {&db_on, &db_off}) {
      ASSERT_TRUE(db->Insert("r", r_rows).ok());
      ASSERT_TRUE(db->Insert("s", s_rows).ok());
      if (round % 3 == 2) {
        ASSERT_TRUE(db->Delete("r", [&](const Tuple& row) {
                        return row[0] == Value::Int(doomed);
                      }).ok());
      }
    }
    auto d_on = m_on.MaintainFromBackend();
    auto d_off = m_off.MaintainFromBackend();
    ASSERT_TRUE(d_on.ok() && d_off.ok()) << "round " << round;
    EXPECT_EQ(d_on.value().added, d_off.value().added) << "round " << round;
    EXPECT_EQ(d_on.value().removed, d_off.value().removed)
        << "round " << round;
    EXPECT_EQ(m_on.sketch().fragments, m_off.sketch().fragments)
        << "round " << round;
  }
  // The vectorized maintainer actually used the kernels; the scalar one
  // never did.
  EXPECT_GT(m_on.stats().vectorized_batches, 0u);
  EXPECT_EQ(m_off.stats().vectorized_batches, 0u);
}

// ---- Typed-vs-boxed twin suite ----------------------------------------------
//
// The same rows stored under the typed ColumnVector layout and the legacy
// boxed layout must give bit-for-bit identical selection bitmaps for every
// predicate shape, chunk by chunk — including dictionary and flat strings,
// NULL-heavy columns, and a column that fell back to boxed storage after a
// type conflict.

// Columns: ti int, td double (integral + fractional), ds dict string
// (12 distinct), fs flat string (overflows the 256-entry dictionary),
// nh NULL-heavy int, mx mixed types (forces the boxed fallback).
Schema TypedTwinSchema() {
  Schema s;
  s.AddColumn("ti", ValueType::kInt);
  s.AddColumn("td", ValueType::kDouble);
  s.AddColumn("ds", ValueType::kString);
  s.AddColumn("fs", ValueType::kString);
  s.AddColumn("nh", ValueType::kInt);
  s.AddColumn("mx", ValueType::kInt);
  return s;
}

Value TypedTwinCell(Rng* rng, size_t col) {
  if (col != 5 && rng->Chance(col == 4 ? 0.5 : 0.1)) return Value::Null();
  switch (col) {
    case 0:
      return Value::Int(rng->UniformInt(-100, 100));
    case 1:
      return rng->Chance(0.5)
                 ? Value::Double(static_cast<double>(rng->UniformInt(-40, 40)))
                 : Value::Double(rng->UniformDouble(-40.0, 40.0));
    case 2:
      return Value::String("d" + std::to_string(rng->UniformInt(0, 11)));
    case 3:
      return Value::String("f" + std::to_string(rng->UniformInt(0, 4000)));
    case 4:
      return Value::Int(rng->UniformInt(0, 20));
    default:
      switch (rng->UniformInt(0, 2)) {
        case 0:
          return Value::Int(rng->UniformInt(0, 5));
        case 1:
          return Value::Double(rng->UniformInt(0, 5) + 0.5);
        default:
          return Value::String("m" + std::to_string(rng->UniformInt(0, 5)));
      }
  }
}

std::vector<Tuple> TypedTwinRows(Rng* rng, size_t n) {
  std::vector<Tuple> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Tuple row;
    for (size_t c = 0; c < 6; ++c) row.push_back(TypedTwinCell(rng, c));
    rows.push_back(std::move(row));
  }
  return rows;
}

ExprPtr TypedTwinPredicate(Rng* rng, int depth) {
  if (depth > 0 && rng->Chance(0.55)) {
    switch (rng->UniformInt(0, 2)) {
      case 0:
        return MakeBinary(BinaryOp::kAnd, TypedTwinPredicate(rng, depth - 1),
                          TypedTwinPredicate(rng, depth - 1));
      case 1:
        return MakeBinary(BinaryOp::kOr, TypedTwinPredicate(rng, depth - 1),
                          TypedTwinPredicate(rng, depth - 1));
      default:
        return MakeUnary(UnaryOp::kNot, TypedTwinPredicate(rng, depth - 1));
    }
  }
  static const char* kNames[] = {"ti", "td", "ds", "fs", "nh", "mx"};
  static const ValueType kTypes[] = {ValueType::kInt,    ValueType::kDouble,
                                     ValueType::kString, ValueType::kString,
                                     ValueType::kInt,    ValueType::kInt};
  size_t col = static_cast<size_t>(rng->UniformInt(0, 5));
  auto ref = [&] { return MakeColumnRef(col, kNames[col], kTypes[col]); };
  // 20% of literals come from a DIFFERENT column's domain, so cross-type-
  // class comparisons (string lit on an int column, numeric lit on a string
  // column, int-vs-double promotion) are exercised on every encoding.
  auto lit = [&] {
    size_t lit_col =
        rng->Chance(0.2) ? static_cast<size_t>(rng->UniformInt(0, 5)) : col;
    if (rng->Chance(0.05)) return MakeLiteral(Value::Null());
    return MakeLiteral(TypedTwinCell(rng, lit_col));
  };
  switch (rng->UniformInt(0, 3)) {
    case 0:
      return MakeBinary(RandomCmp(rng), ref(), lit());
    case 1:
      return MakeBinary(RandomCmp(rng), lit(), ref());
    case 2:
      return MakeBetween(ref(), lit(), lit());
    default:  // col cmp col — scalar remainder over typed gathers
      return MakeBinary(RandomCmp(rng), ref(),
                        MakeColumnRef(0, "ti", ValueType::kInt));
  }
}

TEST(TypedColumnTwinTest, SelectionBitmapsIdenticalAcrossLayouts) {
  Rng rng(47);
  DatabaseOptions boxed_opts;
  boxed_opts.typed_columns = false;
  Database db_typed;
  Database db_boxed(boxed_opts);
  for (Database* db : {&db_typed, &db_boxed}) {
    ASSERT_TRUE(db->CreateTable("t", TypedTwinSchema()).ok());
  }
  std::vector<Tuple> rows = TypedTwinRows(&rng, 9000);
  ASSERT_TRUE(db_typed.BulkLoad("t", rows).ok());
  ASSERT_TRUE(db_boxed.BulkLoad("t", rows).ok());
  // A few appends on top so the COW tail chunk is covered too.
  std::vector<Tuple> extra = TypedTwinRows(&rng, 123);
  ASSERT_TRUE(db_typed.Insert("t", extra).ok());
  ASSERT_TRUE(db_boxed.Insert("t", extra).ok());

  auto snap_typed = db_typed.GetTable("t")->Snapshot();
  auto snap_boxed = db_boxed.GetTable("t")->Snapshot();
  ASSERT_EQ(snap_typed->num_rows(), snap_boxed->num_rows());
  ASSERT_EQ(snap_typed->chunks().size(), snap_boxed->chunks().size());

  // The layouts actually diverge under the hood: typed chunks engaged, the
  // mixed column reboxed, the wide string column overflowed the dictionary.
  Database::TypedColumnStats tstats = db_typed.AggregateTypedColumnStats();
  EXPECT_GT(tstats.typed_chunks, 0u);
  EXPECT_GT(tstats.boxed_fallback_cells, 0u);
  EXPECT_EQ(db_boxed.AggregateTypedColumnStats().typed_chunks, 0u);
  const DataChunk& first = *snap_typed->chunks()[0];
  EXPECT_EQ(first.column(0).encoding(), ColumnVector::Encoding::kInt64);
  EXPECT_EQ(first.column(1).encoding(), ColumnVector::Encoding::kDouble);
  EXPECT_EQ(first.column(2).encoding(), ColumnVector::Encoding::kDictString);
  EXPECT_EQ(first.column(3).encoding(), ColumnVector::Encoding::kFlatString);
  EXPECT_TRUE(first.column(5).fell_back());

  for (int trial = 0; trial < 50; ++trial) {
    ExprPtr expr = TypedTwinPredicate(&rng, 3);
    PredicateKernel kernel = PredicateKernel::Compile(expr);
    for (size_t ci = 0; ci < snap_typed->chunks().size(); ++ci) {
      const DataChunk& ct = *snap_typed->chunks()[ci];
      const DataChunk& cb = *snap_boxed->chunks()[ci];
      ASSERT_EQ(ct.num_rows(), cb.num_rows());
      BitVector sel_typed, sel_boxed;
      kernel.Eval(RowBlock::FromChunk(ct), &sel_typed, nullptr, nullptr);
      kernel.Eval(RowBlock::FromChunk(cb), &sel_boxed, nullptr, nullptr);
      for (size_t r = 0; r < ct.num_rows(); ++r) {
        ASSERT_EQ(sel_typed.Test(r), sel_boxed.Test(r))
            << "trial " << trial << " chunk " << ci << " row " << r << " expr "
            << expr->ToString();
        ASSERT_EQ(sel_typed.Test(r), ScalarBit(expr, ct.GetRow(r)))
            << "trial " << trial << " chunk " << ci << " row " << r << " expr "
            << expr->ToString();
      }
    }
  }
}

TEST(TypedColumnTwinTest, ExecutorIdenticalAcrossLayouts) {
  Rng rng(48);
  DatabaseOptions boxed_opts;
  boxed_opts.typed_columns = false;
  Database db_typed;
  Database db_boxed(boxed_opts);
  for (Database* db : {&db_typed, &db_boxed}) {
    ASSERT_TRUE(db->CreateTable("t", TypedTwinSchema()).ok());
  }
  std::vector<Tuple> rows = TypedTwinRows(&rng, 6000);
  ASSERT_TRUE(db_typed.BulkLoad("t", rows).ok());
  ASSERT_TRUE(db_boxed.BulkLoad("t", rows).ok());
  const char* queries[] = {
      "SELECT * FROM t WHERE ti BETWEEN -20 AND 60",
      "SELECT ti, td FROM t WHERE td > 0.0 AND nh <= 10",
      "SELECT * FROM t WHERE ds = 'd3' OR ds = 'd7'",
      "SELECT * FROM t WHERE fs < 'f2000' AND ti >= 0",
      "SELECT * FROM t WHERE ti < nh",
  };
  for (const char* sql : queries) {
    Executor ex_typed(&db_typed);
    Executor ex_boxed(&db_boxed);
    auto r_typed = ex_typed.Execute(MustBind(db_typed, sql));
    auto r_boxed = ex_boxed.Execute(MustBind(db_boxed, sql));
    ASSERT_TRUE(r_typed.ok() && r_boxed.ok()) << sql;
    EXPECT_TRUE(r_typed.value().SameBag(r_boxed.value())) << sql;
  }
}

TEST(TypedColumnTwinTest, MaintenanceIdenticalAcrossLayouts) {
  // Twin maintainers over a typed and a boxed database — with the typed
  // operator kernelizations toggled to match — must produce identical
  // sketch deltas and sketches on every round. This is the end-to-end gate
  // the BENCH_PR10 smoke also enforces.
  DatabaseOptions boxed_opts;
  boxed_opts.typed_columns = false;
  Database db_typed;
  Database db_boxed(boxed_opts);
  LoadFig5Example(&db_typed);
  LoadFig5Example(&db_boxed);
  PartitionCatalog cat_typed, cat_boxed;
  for (PartitionCatalog* cat : {&cat_typed, &cat_boxed}) {
    ASSERT_TRUE(cat->Register(Fig5PartitionR()).ok());
    ASSERT_TRUE(cat->Register(Fig5PartitionS()).ok());
  }
  MaintainerOptions opt_typed, opt_boxed;
  opt_boxed.typed_columns = false;
  Maintainer m_typed(&db_typed, &cat_typed, MustBind(db_typed, kFig5Query),
                     opt_typed);
  Maintainer m_boxed(&db_boxed, &cat_boxed, MustBind(db_boxed, kFig5Query),
                     opt_boxed);
  auto s_typed = m_typed.Initialize();
  auto s_boxed = m_boxed.Initialize();
  ASSERT_TRUE(s_typed.ok() && s_boxed.ok());
  EXPECT_EQ(s_typed.value().fragments, s_boxed.value().fragments);

  Rng rng(49);
  for (int round = 0; round < 8; ++round) {
    std::vector<Tuple> r_rows, s_rows;
    for (int i = 0; i < 5; ++i) {
      r_rows.push_back(Tuple{Value::Int(rng.UniformInt(1, 10)),
                             Value::Int(rng.UniformInt(1, 10))});
      s_rows.push_back(Tuple{Value::Int(rng.UniformInt(1, 15)),
                             Value::Int(rng.UniformInt(1, 10))});
    }
    int64_t doomed = rng.UniformInt(1, 10);
    for (Database* db : {&db_typed, &db_boxed}) {
      ASSERT_TRUE(db->Insert("r", r_rows).ok());
      ASSERT_TRUE(db->Insert("s", s_rows).ok());
      if (round % 3 == 2) {
        ASSERT_TRUE(db->Delete("r", [&](const Tuple& row) {
                        return row[0] == Value::Int(doomed);
                      }).ok());
      }
    }
    auto d_typed = m_typed.MaintainFromBackend();
    auto d_boxed = m_boxed.MaintainFromBackend();
    ASSERT_TRUE(d_typed.ok() && d_boxed.ok()) << "round " << round;
    EXPECT_EQ(d_typed.value().added, d_boxed.value().added)
        << "round " << round;
    EXPECT_EQ(d_typed.value().removed, d_boxed.value().removed)
        << "round " << round;
    EXPECT_EQ(m_typed.sketch().fragments, m_boxed.sketch().fragments)
        << "round " << round;
  }
  EXPECT_GT(db_typed.AggregateTypedColumnStats().typed_chunks, 0u);
}

TEST(TypedColumnTwinTest, ColumnarAggregateBuildMatchesRowPath) {
  // The kernelized IncAggregate bypasses row materialization entirely when
  // its child is a filterless vectorized scan (TryBuildColumnar). Every
  // layout x path combination must produce identical (row, sketch) outputs
  // and group counts — across an int group key with NULLs (raw-int64 side
  // map mixed with the tuple path), a dict-string key, and no GROUP BY.
  Rng rng(71);
  DatabaseOptions boxed_opts;
  boxed_opts.typed_columns = false;
  Database db_typed;
  Database db_boxed(boxed_opts);
  for (Database* db : {&db_typed, &db_boxed}) {
    ASSERT_TRUE(db->CreateTable("t", TypedTwinSchema()).ok());
  }
  std::vector<Tuple> rows = TypedTwinRows(&rng, 6000);
  ASSERT_TRUE(db_typed.BulkLoad("t", rows).ok());
  ASSERT_TRUE(db_boxed.BulkLoad("t", rows).ok());
  std::vector<Tuple> extra = TypedTwinRows(&rng, 77);
  ASSERT_TRUE(db_typed.Insert("t", extra).ok());
  ASSERT_TRUE(db_boxed.Insert("t", extra).ok());

  // Partition on the NULL-heavy int column: NULL rows must land in fragment
  // 0 through both the raw-bounds fast path and Value-typed FragmentOf.
  PartitionCatalog catalog;
  ASSERT_TRUE(
      catalog.Register(RangePartition::EquiWidthInt("t", "nh", 4, 0, 20, 8))
          .ok());

  auto signature = [](const AnnotatedRelation& rel) {
    std::vector<std::pair<Tuple, BitVector>> out;
    out.reserve(rel.rows.size());
    for (const AnnotatedRow& ar : rel.rows) out.emplace_back(ar.row, ar.sketch);
    std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
      return TupleLess()(a.first, b.first);
    });
    return out;
  };

  static const char* kNames[] = {"ti", "td", "ds", "fs", "nh", "mx"};
  static const ValueType kTypes[] = {ValueType::kInt,    ValueType::kDouble,
                                     ValueType::kString, ValueType::kString,
                                     ValueType::kInt,    ValueType::kInt};
  MaintainStats stats;
  auto run = [&](Database* db, bool kernelized, int group_col) {
    auto scan = std::make_unique<IncScan>("t", nullptr, db, &catalog,
                                          db->GetTable("t")->schema(), &stats,
                                          /*vectorized=*/true);
    std::vector<ExprPtr> groups;
    Schema out;
    if (group_col >= 0) {
      groups.push_back(MakeColumnRef(static_cast<size_t>(group_col),
                                     kNames[group_col], kTypes[group_col]));
      out.AddColumn(kNames[group_col], kTypes[group_col]);
    }
    std::vector<AggSpec> aggs = {
        {AggFunc::kSum, MakeColumnRef(1, "td", ValueType::kDouble), "sum_td"},
        {AggFunc::kSum, MakeColumnRef(0, "ti", ValueType::kInt), "sum_ti"},
        {AggFunc::kCount, nullptr, "cnt"},
        {AggFunc::kCount, MakeColumnRef(3, "fs", ValueType::kString), "cnt_fs"},
        {AggFunc::kMin, MakeColumnRef(0, "ti", ValueType::kInt), "min_ti"},
        {AggFunc::kMax, MakeColumnRef(1, "td", ValueType::kDouble), "max_td"}};
    for (const AggSpec& a : aggs) out.AddColumn(a.name, a.OutputType());
    IncAggregate::Options aopts;
    aopts.kernelized = kernelized;
    IncAggregate agg(std::move(scan), std::move(groups), aggs, out, aopts,
                     &stats);
    Result<AnnotatedRelation> r = agg.Build(DeltaContext{});
    EXPECT_TRUE(r.ok());
    return std::make_pair(signature(r.value()), agg.NumGroups());
  };

  for (int gc : {4, 2, -1}) {
    auto base = run(&db_boxed, /*kernelized=*/false, gc);
    EXPECT_GT(base.first.size(), 0u) << "group col " << gc;
    for (bool typed : {false, true}) {
      for (bool kernelized : {false, true}) {
        if (!typed && !kernelized) continue;  // that's the baseline
        auto got = run(typed ? &db_typed : &db_boxed, kernelized, gc);
        EXPECT_EQ(base.second, got.second)
            << "group col " << gc << " typed " << typed << " kernelized "
            << kernelized;
        EXPECT_TRUE(base.first == got.first)
            << "group col " << gc << " typed " << typed << " kernelized "
            << kernelized;
      }
    }
  }
  EXPECT_GT(db_typed.AggregateTypedColumnStats().typed_chunks, 0u);
}

}  // namespace
}  // namespace imp
