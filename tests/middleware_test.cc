// Tests for the IMP middleware: capture-or-use-or-maintain dispatch,
// template-based sketch reuse, NS/FM/IMP answer equivalence, eager vs lazy
// strategies, and the update path.

#include <gtest/gtest.h>

#include "middleware/imp_system.h"
#include "test_util.h"
#include "workload/synthetic.h"

namespace imp {
namespace {

class MiddlewareTest : public ::testing::Test {
 protected:
  void SetUp() override { LoadSalesExample(&db_); }

  std::unique_ptr<ImpSystem> NewSystem(ExecutionMode mode,
                                       MaintenanceStrategy strategy =
                                           MaintenanceStrategy::kLazy) {
    ImpConfig config;
    config.mode = mode;
    config.strategy = strategy;
    auto system = std::make_unique<ImpSystem>(&db_, config);
    if (mode != ExecutionMode::kNoSketch) {
      IMP_CHECK(system->RegisterPartition(SalesPricePartition()).ok());
    }
    return system;
  }

  Database db_;
};

TEST_F(MiddlewareTest, FirstQueryCapturesSketch) {
  auto system = NewSystem(ExecutionMode::kIncremental);
  auto result = system->Query(kSalesQTop);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().size(), 1u);
  EXPECT_EQ(result.value().rows[0][0], Value::String("Apple"));
  EXPECT_EQ(system->stats().sketch_captures, 1u);
  EXPECT_EQ(system->stats().sketch_uses, 1u);
  EXPECT_EQ(system->sketches().size(), 1u);
}

TEST_F(MiddlewareTest, SecondQueryReusesSketchViaTemplate) {
  auto system = NewSystem(ExecutionMode::kIncremental);
  ASSERT_TRUE(system->Query(kSalesQTop).ok());
  // Same template, different constant: must reuse the sketch, not recapture.
  auto result = system->Query(
      "SELECT brand, sum(price * numSold) AS rev FROM sales "
      "GROUP BY brand HAVING sum(price * numSold) > 6000");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(system->stats().sketch_captures, 1u);
  EXPECT_EQ(system->stats().sketch_uses, 2u);
}

TEST_F(MiddlewareTest, StaleSketchMaintainedLazilyOnUse) {
  auto system = NewSystem(ExecutionMode::kIncremental);
  ASSERT_TRUE(system->Query(kSalesQTop).ok());
  // Ex. 1.2 insert; lazy strategy: no maintenance until the next query.
  ASSERT_TRUE(system
                  ->Update("INSERT INTO sales VALUES "
                           "(8, 'HP', 'HP ProBook 650 G10', 1299, 1)")
                  .ok());
  EXPECT_EQ(system->stats().maintenances, 0u);
  auto result = system->Query(kSalesQTop);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(system->stats().maintenances, 1u);
  // The refreshed sketch answers correctly: HP now passes.
  ASSERT_EQ(result.value().size(), 2u);
}

TEST_F(MiddlewareTest, EagerStrategyMaintainsOnUpdate) {
  auto system =
      NewSystem(ExecutionMode::kIncremental, MaintenanceStrategy::kEager);
  ASSERT_TRUE(system->Query(kSalesQTop).ok());
  ASSERT_TRUE(system
                  ->Update("INSERT INTO sales VALUES "
                           "(8, 'HP', 'HP ProBook 650 G10', 1299, 1)")
                  .ok());
  // Eager with batch size 1: maintenance already happened.
  EXPECT_EQ(system->stats().maintenances, 1u);
}

TEST_F(MiddlewareTest, EagerBatchingDelaysMaintenance) {
  ImpConfig config;
  config.mode = ExecutionMode::kIncremental;
  config.strategy = MaintenanceStrategy::kEager;
  config.eager_batch_size = 3;
  ImpSystem system(&db_, config);
  ASSERT_TRUE(system.RegisterPartition(SalesPricePartition()).ok());
  ASSERT_TRUE(system.Query(kSalesQTop).ok());
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(system
                    .Update("INSERT INTO sales VALUES (" +
                            std::to_string(10 + i) +
                            ", 'Dell', 'XPS', 700, 1)")
                    .ok());
    EXPECT_EQ(system.stats().maintenances, 0u);
  }
  ASSERT_TRUE(
      system.Update("INSERT INTO sales VALUES (12, 'Dell', 'XPS', 700, 1)")
          .ok());
  EXPECT_EQ(system.stats().maintenances, 1u);  // batch of 3 flushed
}

TEST_F(MiddlewareTest, AllThreeModesAgreeOnAnswers) {
  // Run the same mixed sequence under NS / FM / IMP; answers must agree.
  std::vector<std::string> queries = {
      kSalesQTop,
      "SELECT brand, sum(price * numSold) AS rev FROM sales "
      "GROUP BY brand HAVING sum(price * numSold) > 1000",
  };
  std::vector<std::string> updates = {
      "INSERT INTO sales VALUES (8, 'HP', 'HP ProBook 650 G10', 1299, 1)",
      "DELETE FROM sales WHERE sid = 3",
      "INSERT INTO sales VALUES (9, 'Apple', 'MacBook Air 15', 1399, 2)",
  };

  auto run = [&](ExecutionMode mode) {
    Database db;
    LoadSalesExample(&db);
    ImpConfig config;
    config.mode = mode;
    ImpSystem system(&db, config);
    if (mode != ExecutionMode::kNoSketch) {
      IMP_CHECK(system.RegisterPartition(SalesPricePartition()).ok());
    }
    std::vector<Relation> answers;
    for (size_t step = 0; step < updates.size(); ++step) {
      for (const std::string& q : queries) {
        auto result = system.Query(q);
        IMP_CHECK_MSG(result.ok(), result.status().ToString().c_str());
        answers.push_back(std::move(result).value());
      }
      IMP_CHECK(system.Update(updates[step]).ok());
    }
    for (const std::string& q : queries) {
      auto result = system.Query(q);
      IMP_CHECK(result.ok());
      answers.push_back(std::move(result).value());
    }
    return answers;
  };

  auto ns = run(ExecutionMode::kNoSketch);
  auto fm = run(ExecutionMode::kFullMaintenance);
  auto imp = run(ExecutionMode::kIncremental);
  ASSERT_EQ(ns.size(), fm.size());
  ASSERT_EQ(ns.size(), imp.size());
  for (size_t i = 0; i < ns.size(); ++i) {
    EXPECT_TRUE(ns[i].SameBag(fm[i])) << "FM diverged at answer " << i;
    EXPECT_TRUE(ns[i].SameBag(imp[i])) << "IMP diverged at answer " << i;
  }
}

TEST_F(MiddlewareTest, UnsafeQueryFallsBackToPlainExecution) {
  auto system = NewSystem(ExecutionMode::kIncremental);
  // avg() HAVING with non-group-aligned price partition: unsafe => no
  // sketch is created, but the query still answers correctly.
  auto result = system->Query(
      "SELECT brand, avg(price) AS p FROM sales GROUP BY brand "
      "HAVING avg(price) < 2000");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(system->stats().sketch_captures, 0u);
  EXPECT_EQ(system->sketches().size(), 0u);
  EXPECT_EQ(result.value().size(), 3u);  // Lenovo, Dell, HP
}

TEST_F(MiddlewareTest, UpdateStatementRewritesRows) {
  auto system = NewSystem(ExecutionMode::kNoSketch);
  ASSERT_TRUE(
      system->Update("UPDATE sales SET numSold = numSold + 10 "
                     "WHERE brand = 'HP'")
          .ok());
  auto result = system->Query(
      "SELECT sum(numSold) AS n FROM sales WHERE brand = 'HP'");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rows[0][0], Value::Int(25));  // (4+10) + (1+10)
}

TEST_F(MiddlewareTest, QueryOnUpdatedDataAfterDeleteIsCorrect) {
  auto system = NewSystem(ExecutionMode::kIncremental);
  ASSERT_TRUE(system->Query(kSalesQTop).ok());
  // Deleting s4 drops Apple below the threshold: result becomes empty.
  ASSERT_TRUE(system->Update("DELETE FROM sales WHERE sid = 4").ok());
  auto result = system->Query(kSalesQTop);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().size(), 0u);
}

TEST_F(MiddlewareTest, RetainedSketchHistory) {
  ImpConfig config;
  config.mode = ExecutionMode::kIncremental;
  config.retain_sketch_history = true;
  ImpSystem system(&db_, config);
  ASSERT_TRUE(system.RegisterPartition(SalesPricePartition()).ok());
  ASSERT_TRUE(system.Query(kSalesQTop).ok());
  ASSERT_TRUE(
      system.Update("INSERT INTO sales VALUES (8, 'HP', 'X', 1299, 1)").ok());
  ASSERT_TRUE(system.Query(kSalesQTop).ok());
  auto entries = system.sketches().AllEntries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0]->history.size(), 1u);
  // The retained version is the pre-update sketch {ρ3, ρ4}.
  EXPECT_EQ(entries[0]->history[0].fragments.SetBits(),
            (std::vector<size_t>{2, 3}));
}

TEST_F(MiddlewareTest, PartitionTableHelperBuildsEquiDepth) {
  ImpConfig config;
  ImpSystem system(&db_, config);
  ASSERT_TRUE(system.PartitionTable("sales", "price", 4).ok());
  const RangePartition* part = system.catalog().Find("sales");
  ASSERT_NE(part, nullptr);
  EXPECT_GE(part->num_fragments(), 2u);
  EXPECT_FALSE(system.PartitionTable("sales", "price", 4).ok());  // dup
  EXPECT_FALSE(system.PartitionTable("ghost", "x", 4).ok());
}

}  // namespace
}  // namespace imp
