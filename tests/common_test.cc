// Unit tests for the common kernel: values, schemas, tuples, bitvectors,
// bloom filters, status/result.

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "common/bitvector.h"
#include "common/bloom_filter.h"
#include "common/random.h"
#include "common/schema.h"
#include "common/status.h"
#include "common/tuple.h"
#include "common/value.h"

namespace imp {
namespace {

// ---- Value -----------------------------------------------------------------

TEST(ValueTest, TypeTags) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_TRUE(Value::Int(3).is_int());
  EXPECT_TRUE(Value::Double(3.5).is_double());
  EXPECT_TRUE(Value::String("x").is_string());
  EXPECT_TRUE(Value::Int(3).is_numeric());
  EXPECT_TRUE(Value::Double(3.5).is_numeric());
  EXPECT_FALSE(Value::String("x").is_numeric());
}

TEST(ValueTest, NumericCrossTypeComparison) {
  EXPECT_EQ(Value::Int(2).Compare(Value::Double(2.0)), 0);
  EXPECT_LT(Value::Int(2).Compare(Value::Double(2.5)), 0);
  EXPECT_GT(Value::Double(3.0).Compare(Value::Int(2)), 0);
}

TEST(ValueTest, StringComparison) {
  EXPECT_LT(Value::String("abc").Compare(Value::String("abd")), 0);
  EXPECT_EQ(Value::String("abc"), Value::String("abc"));
  // ISO dates order lexicographically == chronologically.
  EXPECT_LT(Value::String("1994-12-01").Compare(Value::String("1995-03-01")),
            0);
}

TEST(ValueTest, CrossTypeClassOrderingIsTotal) {
  // NULL < numeric < string.
  EXPECT_LT(Value::Null().Compare(Value::Int(0)), 0);
  EXPECT_LT(Value::Int(1000).Compare(Value::String("")), 0);
}

TEST(ValueTest, Arithmetic) {
  EXPECT_EQ(Value::Add(Value::Int(2), Value::Int(3)), Value::Int(5));
  EXPECT_EQ(Value::Add(Value::Int(2), Value::Double(0.5)), Value::Double(2.5));
  EXPECT_EQ(Value::Mul(Value::Int(4), Value::Int(5)), Value::Int(20));
  EXPECT_EQ(Value::Sub(Value::Int(4), Value::Int(5)), Value::Int(-1));
  EXPECT_EQ(Value::Div(Value::Int(7), Value::Int(2)), Value::Int(3));
  EXPECT_EQ(Value::Div(Value::Double(7), Value::Int(2)), Value::Double(3.5));
  EXPECT_EQ(Value::Mod(Value::Int(7), Value::Int(4)), Value::Int(3));
  EXPECT_EQ(Value::Neg(Value::Int(7)), Value::Int(-7));
}

TEST(ValueTest, NullPropagatesThroughArithmetic) {
  EXPECT_TRUE(Value::Add(Value::Null(), Value::Int(1)).is_null());
  EXPECT_TRUE(Value::Mul(Value::Int(1), Value::Null()).is_null());
}

TEST(ValueTest, DivisionByZeroYieldsNull) {
  EXPECT_TRUE(Value::Div(Value::Int(1), Value::Int(0)).is_null());
  EXPECT_TRUE(Value::Div(Value::Double(1), Value::Double(0)).is_null());
  EXPECT_TRUE(Value::Mod(Value::Int(1), Value::Int(0)).is_null());
}

TEST(ValueTest, HashConsistentWithEquality) {
  // 2 == 2.0 must hash equally.
  EXPECT_EQ(Value::Int(2).Hash(), Value::Double(2.0).Hash());
  EXPECT_EQ(Value::String("abc").Hash(), Value::String("abc").Hash());
  EXPECT_NE(Value::Int(2).Hash(), Value::Int(3).Hash());
}

TEST(ValueTest, IsTrue) {
  EXPECT_FALSE(Value::Null().IsTrue());
  EXPECT_FALSE(Value::Int(0).IsTrue());
  EXPECT_TRUE(Value::Int(1).IsTrue());
  EXPECT_TRUE(Value::Double(0.1).IsTrue());
  EXPECT_FALSE(Value::String("").IsTrue());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int(42).ToString(), "42");
  EXPECT_EQ(Value::String("hi").ToString(), "'hi'");
}

// ---- Tuple helpers ----------------------------------------------------------

TEST(TupleTest, HashAndEquality) {
  Tuple a{Value::Int(1), Value::String("x")};
  Tuple b{Value::Int(1), Value::String("x")};
  Tuple c{Value::Int(2), Value::String("x")};
  EXPECT_TRUE(TupleEq{}(a, b));
  EXPECT_FALSE(TupleEq{}(a, c));
  EXPECT_EQ(TupleHash{}(a), TupleHash{}(b));
  std::unordered_set<Tuple, TupleHash, TupleEq> set;
  set.insert(a);
  set.insert(b);
  set.insert(c);
  EXPECT_EQ(set.size(), 2u);
}

TEST(TupleTest, LexicographicOrder) {
  Tuple a{Value::Int(1), Value::Int(2)};
  Tuple b{Value::Int(1), Value::Int(3)};
  EXPECT_TRUE(TupleLess{}(a, b));
  EXPECT_FALSE(TupleLess{}(b, a));
  EXPECT_FALSE(TupleLess{}(a, a));
}

// ---- Schema -----------------------------------------------------------------

TEST(SchemaTest, IndexOfPlainAndQualified) {
  Schema s;
  s.AddColumn("r.a", ValueType::kInt);
  s.AddColumn("s.a", ValueType::kInt);
  s.AddColumn("b", ValueType::kString);
  EXPECT_EQ(s.IndexOf("r.a"), 0u);
  EXPECT_EQ(s.IndexOf("s.a"), 1u);
  EXPECT_EQ(s.IndexOf("b"), 2u);
  EXPECT_FALSE(s.IndexOf("a").has_value());  // ambiguous
  EXPECT_FALSE(s.IndexOf("zzz").has_value());
}

TEST(SchemaTest, Concat) {
  Schema l, r;
  l.AddColumn("a", ValueType::kInt);
  r.AddColumn("b", ValueType::kDouble);
  Schema joined = Schema::Concat(l, r);
  ASSERT_EQ(joined.size(), 2u);
  EXPECT_EQ(joined.column(0).name, "a");
  EXPECT_EQ(joined.column(1).name, "b");
}

// ---- BitVector --------------------------------------------------------------

TEST(BitVectorTest, SetTestReset) {
  BitVector bv(130);
  EXPECT_EQ(bv.Count(), 0u);
  bv.Set(0);
  bv.Set(64);
  bv.Set(129);
  EXPECT_TRUE(bv.Test(0));
  EXPECT_TRUE(bv.Test(64));
  EXPECT_TRUE(bv.Test(129));
  EXPECT_FALSE(bv.Test(1));
  EXPECT_EQ(bv.Count(), 3u);
  bv.Reset(64);
  EXPECT_FALSE(bv.Test(64));
  EXPECT_EQ(bv.Count(), 2u);
}

TEST(BitVectorTest, TestBeyondSizeIsFalse) {
  BitVector bv(10);
  EXPECT_FALSE(bv.Test(1000));
}

TEST(BitVectorTest, UnionAndIntersection) {
  BitVector a(100), b(200);
  a.Set(3);
  a.Set(99);
  b.Set(3);
  b.Set(150);
  BitVector u = a;
  u.UnionWith(b);
  EXPECT_TRUE(u.Test(3));
  EXPECT_TRUE(u.Test(99));
  EXPECT_TRUE(u.Test(150));
  EXPECT_EQ(u.Count(), 3u);
  BitVector i = a;
  i.IntersectWith(b);
  EXPECT_EQ(i.Count(), 1u);
  EXPECT_TRUE(i.Test(3));
}

TEST(BitVectorTest, SubtractAndCovers) {
  BitVector a(100), b(100);
  a.Set(1);
  a.Set(2);
  b.Set(2);
  EXPECT_TRUE(a.Covers(b));
  EXPECT_FALSE(b.Covers(a));
  a.SubtractWith(b);
  EXPECT_TRUE(a.Test(1));
  EXPECT_FALSE(a.Test(2));
}

TEST(BitVectorTest, EqualityIgnoresUniverseSize) {
  BitVector a(10), b(1000);
  a.Set(3);
  b.Set(3);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  b.Set(700);
  EXPECT_NE(a, b);
}

TEST(BitVectorTest, SetBitsAscending) {
  BitVector bv(300);
  bv.Set(299);
  bv.Set(0);
  bv.Set(65);
  std::vector<size_t> bits = bv.SetBits();
  ASSERT_EQ(bits.size(), 3u);
  EXPECT_EQ(bits[0], 0u);
  EXPECT_EQ(bits[1], 65u);
  EXPECT_EQ(bits[2], 299u);
}

TEST(BitVectorTest, OrderingIsTotal) {
  BitVector a(10), b(10), c(10);
  a.Set(1);
  b.Set(2);
  c.Set(1);
  std::set<BitVector> set{a, b, c};
  EXPECT_EQ(set.size(), 2u);
}

// Tail-word boundaries matter for the bulk word operations: sizes around
// multiples of 64 exercise full words, exact boundaries and partial tails.
TEST(BitVectorTest, SetAllRespectsTailWordBoundaries) {
  for (size_t n : {0u, 1u, 63u, 64u, 65u, 127u, 128u, 129u, 300u}) {
    BitVector bv(n);
    bv.SetAll();
    EXPECT_EQ(bv.Count(), n) << "n=" << n;
    for (size_t i = 0; i < n; ++i) EXPECT_TRUE(bv.Test(i)) << "n=" << n;
    EXPECT_FALSE(bv.Test(n));  // tail stays zero
    // Equality/hash contract: trailing zero words must not leak set bits.
    BitVector manual(n);
    for (size_t i = 0; i < n; ++i) manual.Set(i);
    EXPECT_EQ(bv, manual) << "n=" << n;
    EXPECT_EQ(bv.Hash(), manual.Hash()) << "n=" << n;
    bv.ClearAll();
    EXPECT_EQ(bv.Count(), 0u);
    EXPECT_EQ(bv, BitVector(n));
  }
}

TEST(BitVectorTest, FlipAllIsComplementWithinSize) {
  for (size_t n : {1u, 63u, 64u, 65u, 128u, 200u}) {
    BitVector bv(n);
    bv.Set(0);
    if (n > 3) bv.Set(n - 1);
    BitVector flipped = bv;
    flipped.FlipAll();
    EXPECT_EQ(flipped.Count(), n - bv.Count()) << "n=" << n;
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NE(bv.Test(i), flipped.Test(i)) << "n=" << n << " i=" << i;
    }
    EXPECT_FALSE(flipped.Test(n));  // tail stays zero
    flipped.FlipAll();
    EXPECT_EQ(flipped, bv);
  }
}

TEST(BitVectorTest, ForEachSetBitVisitsAscending) {
  BitVector bv(200);
  std::vector<size_t> expect = {0, 1, 63, 64, 65, 127, 128, 199};
  for (size_t i : expect) bv.Set(i);
  std::vector<size_t> seen;
  bv.ForEachSetBit([&](size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, expect);
  BitVector empty(100);
  empty.ForEachSetBit([&](size_t) { FAIL() << "no bits set"; });
}

TEST(BitVectorTest, ForEachSetBitSafeAgainstResetDuringIteration) {
  // The kernel's scalar-remainder loop Resets survivors mid-iteration;
  // iteration works over word copies, so every originally-set bit is still
  // visited exactly once.
  BitVector bv(130);
  for (size_t i = 0; i < 130; i += 3) bv.Set(i);
  size_t visited = 0;
  bv.ForEachSetBit([&](size_t i) {
    ++visited;
    bv.Reset(i);
  });
  EXPECT_EQ(visited, (130 + 2) / 3);
  EXPECT_EQ(bv.Count(), 0u);
}

TEST(BitVectorTest, CountAndMatchesExplicitIntersection) {
  for (size_t n : {1u, 64u, 65u, 300u}) {
    BitVector a(n), b(n + 64);  // different word counts on purpose
    for (size_t i = 0; i < n; i += 2) a.Set(i);
    for (size_t i = 0; i < n + 64; i += 3) b.Set(i);
    BitVector both = a;
    both.IntersectWith(b);
    EXPECT_EQ(a.CountAnd(b), both.Count()) << "n=" << n;
    EXPECT_EQ(b.CountAnd(a), both.Count()) << "n=" << n;
  }
}

// ---- BloomFilter ------------------------------------------------------------

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilter bf(1000);
  for (uint64_t i = 0; i < 1000; ++i) bf.AddHash(HashInt64(i));
  for (uint64_t i = 0; i < 1000; ++i) {
    EXPECT_TRUE(bf.MayContainHash(HashInt64(i)));
  }
}

TEST(BloomFilterTest, LowFalsePositiveRate) {
  BloomFilter bf(1000, 10);
  for (uint64_t i = 0; i < 1000; ++i) bf.AddHash(HashInt64(i));
  size_t fp = 0;
  const size_t kProbes = 10000;
  for (uint64_t i = 1000000; i < 1000000 + kProbes; ++i) {
    if (bf.MayContainHash(HashInt64(i))) ++fp;
  }
  // ~1% expected at 10 bits/key; allow generous slack.
  EXPECT_LT(fp, kProbes / 20);
}

TEST(BloomFilterTest, BatchedProbeMatchesSingleProbeBitForBit) {
  Rng rng(7);
  BloomFilter bf(500, 8);
  for (uint64_t i = 0; i < 500; ++i) bf.AddHash(HashInt64(i * 13));
  // Mix of present and absent keys, including batch sizes that straddle
  // word boundaries of the output bitmap.
  for (size_t n : {0u, 1u, 63u, 64u, 65u, 1000u}) {
    std::vector<uint64_t> hashes(n);
    for (size_t i = 0; i < n; ++i) {
      hashes[i] = HashInt64(static_cast<int64_t>(
          rng.UniformInt(0, 2000) * 13));
    }
    BitVector out;
    bf.MayContainHashes(hashes.data(), hashes.size(), &out);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(out.Test(i), bf.MayContainHash(hashes[i]))
          << "n=" << n << " i=" << i;
    }
    EXPECT_FALSE(out.Test(n));
  }
}

TEST(HashTest, HashColumnBatchMatchesRowAtATimeFold) {
  // Column-batch hashing must reproduce the row-at-a-time seed+fold
  // exactly — IncJoin's bloom keys depend on it.
  const uint64_t kSeed = 0x2545f4914f6cdd1dULL;
  std::vector<Tuple> rows;
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    rows.push_back(Tuple{Value::Int(rng.UniformInt(0, 50)),
                         Value::String(std::to_string(i % 7)),
                         Value::Double(static_cast<double>(i) / 3)});
  }
  const std::vector<size_t> key_cols = {2, 0};  // order matters
  std::vector<uint64_t> batch(rows.size(), kSeed);
  for (size_t col : key_cols) {
    HashColumnBatch(
        rows.size(), [&](size_t i) { return rows[i][col].Hash(); }, &batch);
  }
  for (size_t i = 0; i < rows.size(); ++i) {
    uint64_t h = kSeed;
    for (size_t col : key_cols) h = HashCombine(h, rows[i][col].Hash());
    EXPECT_EQ(batch[i], h) << "row " << i;
  }
}

// ---- Status / Result ---------------------------------------------------------

TEST(StatusTest, OkAndError) {
  EXPECT_TRUE(Status::OK().ok());
  Status s = Status::ParseError("boom");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.ToString(), "ParseError: boom");
}

TEST(ResultTest, ValueAndStatus) {
  Result<int> ok(7);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 7);
  Result<int> err(Status::NotFound("x"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
}

// ---- Rng ---------------------------------------------------------------------

TEST(RngTest, DeterministicWithSeed) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000000), b.UniformInt(0, 1000000));
  }
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(5, 10);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 10);
  }
}

}  // namespace
}  // namespace imp
