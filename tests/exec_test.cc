// Tests for the backend executor (bag semantics) and the annotated
// (capture) executor, including the paper's worked examples.

#include <gtest/gtest.h>

#include "exec/annotated_executor.h"
#include "exec/executor.h"
#include "sketch/partition.h"
#include "test_util.h"

namespace imp {
namespace {

class ExecTest : public ::testing::Test {
 protected:
  void SetUp() override { LoadSalesExample(&db_); }

  Relation Run(const std::string& sql) {
    PlanPtr plan = MustBind(db_, sql);
    Executor exec(&db_);
    auto result = exec.Execute(plan);
    IMP_CHECK_MSG(result.ok(), result.status().ToString().c_str());
    return std::move(result).value();
  }

  Database db_;
};

TEST_F(ExecTest, ScanAll) {
  Relation r = Run("SELECT * FROM sales");
  EXPECT_EQ(r.size(), 7u);
}

TEST_F(ExecTest, FilterAndProject) {
  Relation r = Run("SELECT sid FROM sales WHERE price BETWEEN 1001 AND 1500");
  ASSERT_EQ(r.size(), 2u);  // s3 (1199) and s5 (1345)
  std::set<int64_t> sids;
  for (const Tuple& row : r.rows) sids.insert(row[0].AsInt());
  EXPECT_TRUE(sids.count(3));
  EXPECT_TRUE(sids.count(5));
}

TEST_F(ExecTest, RunningExampleResult) {
  // Ex. 1.1: only (Apple, 5074) passes the HAVING threshold.
  Relation r = Run(kSalesQTop);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r.rows[0][0], Value::String("Apple"));
  EXPECT_EQ(r.rows[0][1], Value::Int(5074));
}

TEST_F(ExecTest, RunningExampleAfterInsertS8) {
  // Ex. 1.2: inserting s8 makes HP pass with revenue 6194.
  ASSERT_TRUE(db_.Insert("sales", {{Value::Int(8), Value::String("HP"),
                                    Value::String("HP ProBook 650 G10"),
                                    Value::Int(1299), Value::Int(1)}})
                  .ok());
  Relation r = Run(kSalesQTop);
  ASSERT_EQ(r.size(), 2u);
  int64_t hp_rev = -1;
  for (const Tuple& row : r.rows) {
    if (row[0] == Value::String("HP")) hp_rev = row[1].AsInt();
  }
  EXPECT_EQ(hp_rev, 6194);
}

TEST_F(ExecTest, GroupByCountAvgMinMax) {
  Relation r = Run(
      "SELECT brand, count(*) AS n, min(price) AS lo, max(price) AS hi, "
      "avg(numSold) AS av FROM sales GROUP BY brand");
  ASSERT_EQ(r.size(), 4u);
  for (const Tuple& row : r.rows) {
    if (row[0] == Value::String("HP")) {
      EXPECT_EQ(row[1], Value::Int(2));
      EXPECT_EQ(row[2], Value::Int(899));
      EXPECT_EQ(row[3], Value::Int(999));
      EXPECT_EQ(row[4], Value::Double(2.5));
    }
  }
}

TEST_F(ExecTest, GlobalAggregateOnEmptyInput) {
  Relation r = Run("SELECT count(*) AS n, sum(price) AS s FROM sales "
                   "WHERE price > 99999");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r.rows[0][0], Value::Int(0));
  EXPECT_TRUE(r.rows[0][1].is_null());
}

TEST_F(ExecTest, TopKOrdering) {
  Relation r = Run("SELECT sid, price FROM sales ORDER BY price DESC LIMIT 3");
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r.rows[0][1], Value::Int(3875));
  EXPECT_EQ(r.rows[1][1], Value::Int(1345));
  EXPECT_EQ(r.rows[2][1], Value::Int(1199));
}

TEST_F(ExecTest, Distinct) {
  Relation r = Run("SELECT DISTINCT brand FROM sales");
  EXPECT_EQ(r.size(), 4u);
}

TEST_F(ExecTest, JoinProducesBagSemantics) {
  // Self-explanatory two-table join on a fresh pair of tables.
  Schema ls;
  ls.AddColumn("x", ValueType::kInt);
  ASSERT_TRUE(db_.CreateTable("l", ls).ok());
  ASSERT_TRUE(db_.BulkLoad("l", {{Value::Int(1)}, {Value::Int(1)},
                                 {Value::Int(2)}})
                  .ok());
  Schema rs;
  rs.AddColumn("y", ValueType::kInt);
  rs.AddColumn("p", ValueType::kString);
  ASSERT_TRUE(db_.CreateTable("rr", rs).ok());
  ASSERT_TRUE(db_.BulkLoad("rr", {{Value::Int(1), Value::String("a")},
                                  {Value::Int(1), Value::String("b")},
                                  {Value::Int(3), Value::String("c")}})
                  .ok());
  Relation r = Run("SELECT x, p FROM l JOIN rr ON (x = y)");
  EXPECT_EQ(r.size(), 4u);  // 2 copies of x=1 times 2 matches
}

TEST_F(ExecTest, RelationSameBag) {
  Relation a = Run("SELECT sid FROM sales");
  Relation b = Run("SELECT sid FROM sales");
  EXPECT_TRUE(a.SameBag(b));
  Relation c = Run("SELECT sid FROM sales WHERE sid < 7");
  EXPECT_FALSE(a.SameBag(c));
}

TEST_F(ExecTest, BoundRelationShadowsTable) {
  PlanPtr plan = MustBind(db_, "SELECT sid FROM sales");
  Relation tiny;
  tiny.schema = db_.GetTable("sales")->schema();
  tiny.rows.push_back({Value::Int(99), Value::String("Z"), Value::String("z"),
                       Value::Int(1), Value::Int(1)});
  Executor exec(&db_);
  exec.BindRelation("sales", &tiny);
  auto result = exec.Execute(plan);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().size(), 1u);
  EXPECT_EQ(result.value().rows[0][0], Value::Int(99));
}

TEST_F(ExecTest, MissingTableError) {
  Schema s;
  s.AddColumn("x", ValueType::kInt);
  PlanPtr plan = MakeScan("ghost", s);
  Executor exec(&db_);
  EXPECT_EQ(exec.Execute(plan).status().code(), StatusCode::kNotFound);
}

// ---- Annotated executor -----------------------------------------------------

class AnnotatedExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LoadSalesExample(&db_);
    IMP_CHECK(catalog_.Register(SalesPricePartition()).ok());
  }

  AnnotatedRelation RunAnnotated(const std::string& sql) {
    PlanPtr plan = MustBind(db_, sql);
    AnnotatedExecutor exec(
        &db_, [this](const std::string& t, const Tuple& row, BitVector* out) {
          catalog_.AnnotateRow(t, row, out);
        });
    auto result = exec.Execute(plan);
    IMP_CHECK_MSG(result.ok(), result.status().ToString().c_str());
    return std::move(result).value();
  }

  Database db_;
  PartitionCatalog catalog_;
};

TEST_F(AnnotatedExecTest, ScanAnnotatesByFragment) {
  AnnotatedRelation rel = RunAnnotated("SELECT * FROM sales");
  ASSERT_EQ(rel.size(), 7u);
  for (const AnnotatedRow& r : rel.rows) {
    EXPECT_EQ(r.sketch.Count(), 1u);
    size_t frag = r.sketch.SetBits()[0];
    int64_t price = r.row[3].AsInt();
    // φ_price: ρ1=[1,600], ρ2=[601,1000], ρ3=[1001,1500], ρ4=[1501,10000]
    size_t expected = price <= 600 ? 0 : price <= 1000 ? 1 : price <= 1500 ? 2 : 3;
    EXPECT_EQ(frag, expected) << "price=" << price;
  }
}

TEST_F(AnnotatedExecTest, RunningExampleAccurateSketch) {
  // Ex. 1.1: the accurate sketch for Q_top is {ρ3, ρ4}.
  AnnotatedRelation rel = RunAnnotated(kSalesQTop);
  ASSERT_EQ(rel.size(), 1u);
  BitVector sketch = rel.SketchUnion();
  EXPECT_FALSE(sketch.Test(0));
  EXPECT_FALSE(sketch.Test(1));
  EXPECT_TRUE(sketch.Test(2));
  EXPECT_TRUE(sketch.Test(3));
}

TEST_F(AnnotatedExecTest, GroupSketchIsUnionOfInputs) {
  AnnotatedRelation rel =
      RunAnnotated("SELECT brand, sum(price) AS s FROM sales GROUP BY brand");
  for (const AnnotatedRow& r : rel.rows) {
    if (r.row[0] == Value::String("Lenovo")) {
      // Lenovo rows (349, 449) are both in ρ1.
      EXPECT_EQ(r.sketch.SetBits(), std::vector<size_t>{0});
    }
    if (r.row[0] == Value::String("Apple")) {
      // Apple rows in ρ3 and ρ4.
      EXPECT_EQ(r.sketch.SetBits(), (std::vector<size_t>{2, 3}));
    }
  }
}

TEST_F(AnnotatedExecTest, UnpartitionedTableGetsEmptyAnnotation) {
  Schema s;
  s.AddColumn("x", ValueType::kInt);
  ASSERT_TRUE(db_.CreateTable("plain", s).ok());
  ASSERT_TRUE(db_.BulkLoad("plain", {{Value::Int(1)}}).ok());
  AnnotatedRelation rel = RunAnnotated("SELECT x FROM plain");
  ASSERT_EQ(rel.size(), 1u);
  EXPECT_TRUE(rel.rows[0].sketch.None());
}

}  // namespace
}  // namespace imp
