// Tests for asynchronous delta ingestion and epoch-cut maintenance rounds:
//
//  * IngestionQueue semantics: FIFO order, bounded backpressure, the
//    WaitIdle drain barrier and close-drains behaviour;
//  * watermark boundary cases of the staged append path — an unpublished
//    tail is invisible to HasPendingDelta / PendingDeltaCount / ScanDelta,
//    empty windows at the cut, out-of-order publication holding the
//    stable watermark back;
//  * async-vs-sync equivalence: the same statement stream ingested through
//    the background worker must, after WaitForIngest(), leave bit-identical
//    sketches, query results, version tickets and maintenance counters;
//  * the concurrent append/scan contract: racing producers, the ingestion
//    worker and lock-free staleness pollers (the TSan CI job runs this
//    suite to enforce the contract).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/ingestion_queue.h"
#include "common/random.h"
#include "middleware/imp_system.h"
#include "test_util.h"
#include "workload/synthetic.h"

namespace imp {
namespace {

Schema TwoColSchema() {
  Schema s;
  s.AddColumn("id", ValueType::kInt);
  s.AddColumn("v", ValueType::kInt);
  return s;
}

Tuple Row(int64_t id, int64_t v) {
  return Tuple{Value::Int(id), Value::Int(v)};
}

// ---- IngestionQueue --------------------------------------------------------

TEST(IngestionQueueTest, FifoOrder) {
  IngestionQueue<int> queue(8);
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(queue.Push(i));
  for (int i = 0; i < 8; ++i) {
    auto item = queue.Pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);
    queue.TaskDone();
  }
  queue.WaitIdle();  // all done -> returns immediately
  EXPECT_EQ(queue.size(), 0u);
}

TEST(IngestionQueueTest, BoundedCapacityBlocksProducers) {
  IngestionQueue<int> queue(2);
  std::thread producer([&] {
    for (int i = 0; i < 20; ++i) ASSERT_TRUE(queue.Push(i));
  });
  std::vector<int> popped;
  for (int i = 0; i < 20; ++i) {
    auto item = queue.Pop();
    ASSERT_TRUE(item.has_value());
    popped.push_back(*item);
    queue.TaskDone();
  }
  producer.join();
  // Backpressure: the queue never grew beyond its capacity, yet every item
  // arrived in order.
  EXPECT_LE(queue.max_depth(), 2u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(popped[i], i);
}

TEST(IngestionQueueTest, WaitIdleWaitsForTaskDone) {
  IngestionQueue<int> queue(4);
  std::atomic<bool> side_effect{false};
  ASSERT_TRUE(queue.Push(1));
  std::thread consumer([&] {
    auto item = queue.Pop();
    ASSERT_TRUE(item.has_value());
    // The drain barrier must cover side effects that happen after the pop
    // but before TaskDone (the worker's apply + eager maintenance).
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    side_effect.store(true);
    queue.TaskDone();
  });
  queue.WaitIdle();
  EXPECT_TRUE(side_effect.load());
  consumer.join();
}

TEST(IngestionQueueTest, CloseStillDrainsQueuedItems) {
  IngestionQueue<int> queue(8);
  ASSERT_TRUE(queue.Push(1));
  ASSERT_TRUE(queue.Push(2));
  queue.Close();
  EXPECT_FALSE(queue.Push(3));
  EXPECT_EQ(queue.Pop(), std::optional<int>(1));
  queue.TaskDone();
  EXPECT_EQ(queue.Pop(), std::optional<int>(2));
  queue.TaskDone();
  EXPECT_FALSE(queue.Pop().has_value());
}

// ---- Watermark boundaries of the staged append path ------------------------

TEST(WatermarkTest, StagedTailInvisibleUntilPublish) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", TwoColSchema()).ok());
  ASSERT_TRUE(db.Insert("t", {Row(1, 1)}).ok());  // v1, sync -> published
  ASSERT_EQ(db.StableVersion(), 1u);

  // Stage a statement the way the ingestion worker does, but do not
  // publish: the delta window (1, 2] lies entirely in the unpublished
  // tail.
  uint64_t v = db.AllocateVersion();
  ASSERT_EQ(v, 2u);
  ASSERT_TRUE(db.StageInsert("t", {Row(2, 2), Row(3, 3)}, v).ok());
  EXPECT_EQ(db.CurrentVersion(), 2u);
  EXPECT_EQ(db.StableVersion(), 1u);
  EXPECT_FALSE(db.HasPendingDelta("t", 1));
  EXPECT_EQ(db.PendingDeltaCount("t", 1), 0u);
  EXPECT_TRUE(db.ScanDelta("t", 1, 2).empty());
  EXPECT_EQ(db.GetTable("t")->delta_log().unpublished(), 2u);

  db.PublishVersion("t", v);
  EXPECT_EQ(db.StableVersion(), 2u);
  EXPECT_TRUE(db.HasPendingDelta("t", 1));
  EXPECT_EQ(db.PendingDeltaCount("t", 1), 2u);
  EXPECT_EQ(db.ScanDelta("t", 1, 2).size(), 2u);
  EXPECT_EQ(db.GetTable("t")->delta_log().unpublished(), 0u);
}

TEST(WatermarkTest, EmptyWindowAtTheCut) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", TwoColSchema()).ok());
  ASSERT_TRUE(db.Insert("t", {Row(1, 1)}).ok());
  ASSERT_TRUE(db.Insert("t", {Row(2, 2)}).ok());
  uint64_t cut = db.StableVersion();
  ASSERT_EQ(cut, 2u);
  // from_version == cut_version: the window (cut, cut] is empty.
  EXPECT_TRUE(db.ScanDelta("t", cut, cut).empty());
  EXPECT_EQ(db.PendingDeltaCount("t", cut), 0u);
  EXPECT_FALSE(db.HasPendingDelta("t", cut));
  // A window strictly beyond the log is empty too.
  EXPECT_TRUE(db.ScanDelta("t", cut + 5, cut + 9).empty());
}

TEST(WatermarkTest, OutOfOrderPublishHoldsWatermarkBack) {
  Database db;
  ASSERT_TRUE(db.CreateTable("a", TwoColSchema()).ok());
  ASSERT_TRUE(db.CreateTable("b", TwoColSchema()).ok());
  uint64_t v1 = db.AllocateVersion();
  uint64_t v2 = db.AllocateVersion();
  ASSERT_TRUE(db.StageInsert("a", {Row(1, 1)}, v1).ok());
  ASSERT_TRUE(db.StageInsert("b", {Row(2, 2)}, v2).ok());

  // v2 publishes first: its table log becomes visible, but the epoch cut
  // cannot pass the still-unpublished v1.
  db.PublishVersion("b", v2);
  EXPECT_EQ(db.StableVersion(), 0u);
  EXPECT_TRUE(db.HasPendingDelta("b", 0));
  // A maintenance round cutting at the watermark sees neither statement.
  EXPECT_TRUE(db.ScanDelta("b", 0, db.StableVersion()).empty());

  db.PublishVersion("a", v1);
  EXPECT_EQ(db.StableVersion(), 2u);
  EXPECT_EQ(db.ScanDelta("a", 0, db.StableVersion()).size(), 1u);
  EXPECT_EQ(db.ScanDelta("b", 0, db.StableVersion()).size(), 1u);
}

// ---- Async-vs-sync equivalence --------------------------------------------

std::vector<std::string> MultiSketchQueries(const std::string& table) {
  std::vector<std::string> queries;
  const char* cols[] = {"b", "c", "d"};
  for (const char* col : cols) {
    queries.push_back("SELECT a, sum(" + std::string(col) + ") AS s FROM " +
                      table + " GROUP BY a HAVING sum(" + col + ") > 100");
    queries.push_back("SELECT a, sum(" + std::string(col) + ") AS s FROM " +
                      table + " WHERE " + col + " < 400 GROUP BY a HAVING sum(" +
                      col + ") > 50");
  }
  return queries;
}

struct SystemSnapshot {
  std::vector<std::vector<size_t>> sketch_bits;
  std::vector<uint64_t> versions;
  std::vector<size_t> state_bytes;
  std::vector<uint64_t> tickets;         ///< per-statement returned versions
  std::vector<std::string> query_results;
  size_t maintenances = 0;
  size_t batch_rounds = 0;
  size_t delta_scans = 0;
  size_t annotation_passes = 0;
  size_t annotation_hits = 0;
  size_t rows_copied = 0;
  uint64_t stable_version = 0;
  size_t ingest_batches = 0;   ///< async only; not part of the equivalence
  size_t ingest_batch_max = 0;
};

/// Run one deterministic mixed workload and snapshot everything the
/// equivalence claim covers: sketches, versions, operator state, query
/// results and the maintenance counters.
SystemSnapshot RunWorkload(ImpConfig config, uint64_t seed,
                           size_t maintain_every) {
  Database db;
  SyntheticSpec spec;
  spec.name = "edb";
  spec.num_rows = 1500;
  spec.num_groups = 50;
  spec.seed = 7;
  IMP_CHECK(CreateSyntheticTable(&db, spec).ok());

  ImpSystem system(&db, config);
  IMP_CHECK(system
                .RegisterPartition(
                    RangePartition::EquiWidthInt("edb", "a", 1, 0, 49, 10))
                .ok());
  for (const std::string& q : MultiSketchQueries("edb")) {
    auto result = system.Query(q);
    IMP_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  }

  SystemSnapshot snap;
  Rng rng(seed);
  int64_t next_id = static_cast<int64_t>(spec.num_rows);
  for (size_t step = 0; step < 50; ++step) {
    Result<uint64_t> ticket = [&]() -> Result<uint64_t> {
      if (rng.Chance(0.7)) {
        BoundUpdate update;
        update.kind = BoundUpdate::Kind::kInsert;
        update.table = "edb";
        size_t n = static_cast<size_t>(rng.UniformInt(1, 5));
        for (size_t r = 0; r < n; ++r) {
          update.rows.push_back(SyntheticRow(spec, next_id++, &rng));
        }
        return system.UpdateBound(update);
      }
      int64_t lo = rng.UniformInt(0, next_id - 1);
      int64_t hi = lo + rng.UniformInt(0, 20);
      return system.Update("DELETE FROM edb WHERE id >= " + std::to_string(lo) +
                           " AND id <= " + std::to_string(hi));
    }();
    IMP_CHECK(ticket.ok());
    snap.tickets.push_back(ticket.value());
    if ((step + 1) % maintain_every == 0) {
      // The drain barrier makes the maintenance epochs of the async run
      // line up with the sync run's — the equivalence claim is "after
      // WaitForIngest()", not mid-flight.
      IMP_CHECK(system.WaitForIngest().ok());
      IMP_CHECK(system.MaintainAll().ok());
    }
  }
  IMP_CHECK(system.WaitForIngest().ok());
  IMP_CHECK(system.MaintainAll().ok());

  for (SketchEntry* entry : system.sketches().AllEntries()) {
    snap.sketch_bits.push_back(entry->sketch.fragments.SetBits());
    snap.versions.push_back(entry->sketch.valid_version);
    snap.state_bytes.push_back(
        entry->maintainer ? entry->maintainer->StateBytes() : 0);
  }
  for (const std::string& q : MultiSketchQueries("edb")) {
    auto result = system.Query(q);
    IMP_CHECK(result.ok());
    snap.query_results.push_back(result.value().ToString());
  }
  const ImpSystemStats& stats = system.stats();
  snap.maintenances = stats.maintenances;
  snap.batch_rounds = stats.batch_rounds;
  snap.delta_scans = stats.delta_scans;
  snap.annotation_passes = stats.annotation_passes;
  snap.annotation_hits = stats.annotation_hits;
  snap.rows_copied = stats.rows_copied;
  snap.ingest_batches = stats.ingest_batches;
  snap.ingest_batch_max = stats.ingest_batch_max;
  snap.stable_version = db.StableVersion();
  IMP_CHECK(db.StableVersion() == db.CurrentVersion());
  return snap;
}

ImpConfig ConfigFor(bool async, MaintenanceStrategy strategy) {
  ImpConfig config;
  config.mode = ExecutionMode::kIncremental;
  config.strategy = strategy;
  config.shared_delta_fetch = true;
  config.maintenance_threads = 1;
  config.async_ingestion = async;
  config.ingest_queue_capacity = 16;
  return config;
}

void ExpectSameSnapshot(const SystemSnapshot& sync_snap,
                        const SystemSnapshot& async_snap,
                        const std::string& label) {
  ASSERT_EQ(sync_snap.sketch_bits.size(), async_snap.sketch_bits.size())
      << label;
  for (size_t i = 0; i < sync_snap.sketch_bits.size(); ++i) {
    EXPECT_EQ(sync_snap.sketch_bits[i], async_snap.sketch_bits[i])
        << label << ": sketch " << i << " diverged";
    EXPECT_EQ(sync_snap.versions[i], async_snap.versions[i])
        << label << ": version " << i << " diverged";
    EXPECT_EQ(sync_snap.state_bytes[i], async_snap.state_bytes[i])
        << label << ": state bytes " << i << " diverged";
  }
  EXPECT_EQ(sync_snap.tickets, async_snap.tickets) << label;
  EXPECT_EQ(sync_snap.query_results, async_snap.query_results) << label;
  EXPECT_EQ(sync_snap.maintenances, async_snap.maintenances) << label;
  EXPECT_EQ(sync_snap.batch_rounds, async_snap.batch_rounds) << label;
  EXPECT_EQ(sync_snap.delta_scans, async_snap.delta_scans) << label;
  EXPECT_EQ(sync_snap.annotation_passes, async_snap.annotation_passes)
      << label;
  EXPECT_EQ(sync_snap.annotation_hits, async_snap.annotation_hits) << label;
  EXPECT_EQ(sync_snap.rows_copied, async_snap.rows_copied) << label;
  EXPECT_EQ(sync_snap.stable_version, async_snap.stable_version) << label;
}

TEST(AsyncIngestionTest, LazyAsyncMatchesSync) {
  for (uint64_t seed : {11u, 47u}) {
    SystemSnapshot sync_snap =
        RunWorkload(ConfigFor(false, MaintenanceStrategy::kLazy), seed, 10);
    SystemSnapshot async_snap =
        RunWorkload(ConfigFor(true, MaintenanceStrategy::kLazy), seed, 10);
    ExpectSameSnapshot(sync_snap, async_snap,
                       "lazy, seed " + std::to_string(seed));
  }
}

TEST(AsyncIngestionTest, EagerAsyncMatchesSync) {
  // Eager rounds fire on the ingestion worker after every
  // eager_batch_size-th applied statement — the same epochs as the
  // synchronous path, so everything must still be bit-identical.
  ImpConfig sync_config = ConfigFor(false, MaintenanceStrategy::kEager);
  sync_config.eager_batch_size = 5;
  ImpConfig async_config = ConfigFor(true, MaintenanceStrategy::kEager);
  async_config.eager_batch_size = 5;
  SystemSnapshot sync_snap = RunWorkload(sync_config, 23, 13);
  SystemSnapshot async_snap = RunWorkload(async_config, 23, 13);
  ExpectSameSnapshot(sync_snap, async_snap, "eager");
}

TEST(AsyncIngestionTest, BatchedApplyMatchesSync) {
  // With ingest_apply_batch > 1 the worker drains several statements per
  // cycle and publishes each touched table once per cycle. Everything the
  // drained equivalence claim covers — sketches, versions, tickets, query
  // results, maintenance counters — must still be bit-identical to the
  // synchronous run; only the publication granularity changed.
  for (size_t batch : {4u, 64u}) {
    ImpConfig batched = ConfigFor(true, MaintenanceStrategy::kLazy);
    batched.ingest_apply_batch = batch;
    SystemSnapshot sync_snap =
        RunWorkload(ConfigFor(false, MaintenanceStrategy::kLazy), 31, 10);
    SystemSnapshot batched_snap = RunWorkload(batched, 31, 10);
    ExpectSameSnapshot(sync_snap, batched_snap,
                       "batched apply, batch " + std::to_string(batch));
    // Cycle accounting: every statement was applied in some cycle, and no
    // cycle exceeded the configured limit.
    EXPECT_GE(batched_snap.ingest_batches, 1u);
    EXPECT_LE(batched_snap.ingest_batches, batched_snap.tickets.size());
    EXPECT_GE(batched_snap.ingest_batch_max, 1u);
    EXPECT_LE(batched_snap.ingest_batch_max, batch);
  }
}

TEST(AsyncIngestionTest, DeepQueueDrainsAsOneBatch) {
  // Force a deep queue deterministically: the first statement is a heavy
  // scan (the worker chews on it while the producer enqueues the rest), so
  // the follow-up statements are drained together — ONE publication cycle
  // instead of one per statement.
  Database db;
  ASSERT_TRUE(db.CreateTable("t", TwoColSchema()).ok());
  std::vector<Tuple> bulk;
  for (int64_t i = 0; i < 50000; ++i) bulk.push_back(Row(i, i % 97));
  ASSERT_TRUE(db.BulkLoad("t", bulk).ok());

  ImpConfig config;
  config.async_ingestion = true;
  config.ingest_queue_capacity = 64;
  config.ingest_apply_batch = 16;
  ImpSystem system(&db, config);

  // Heavy first statement: a full-scan delete of a rare value.
  ASSERT_TRUE(
      system.Update("DELETE FROM t WHERE v = 96 AND id < 100").ok());
  for (int64_t k = 0; k < 16; ++k) {
    BoundUpdate update;
    update.kind = BoundUpdate::Kind::kInsert;
    update.table = "t";
    update.rows.push_back(Row(100000 + k, k));
    ASSERT_TRUE(system.UpdateBound(update).ok());
  }
  ASSERT_TRUE(system.WaitForIngest().ok());

  const ImpSystemStats& stats = system.stats();
  EXPECT_EQ(stats.ingest_applied, 17u);
  // The 16 quick inserts queued up behind the heavy delete and were
  // drained in (at most two) batch cycles — strictly fewer publication
  // cycles than statements.
  EXPECT_LT(stats.ingest_batches, stats.ingest_applied);
  EXPECT_GE(stats.ingest_batch_max, 2u);
  EXPECT_LE(stats.ingest_batch_max, 16u);
  // And the data is all there.
  EXPECT_EQ(db.StableVersion(), db.CurrentVersion());
  EXPECT_EQ(db.GetTable("t")->Snapshot()->version(), db.StableVersion());
}

TEST(AsyncIngestionTest, TicketIsTheStatementVersion) {
  Database db;
  LoadSalesExample(&db);
  ImpConfig config = ConfigFor(true, MaintenanceStrategy::kLazy);
  ImpSystem system(&db, config);
  auto t1 =
      system.Update("INSERT INTO sales VALUES (8, 'HP', 'X', 1299, 1)");
  auto t2 =
      system.Update("INSERT INTO sales VALUES (9, 'HP', 'Y', 500, 2)");
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(t1.value(), 1u);
  EXPECT_EQ(t2.value(), 2u);
  ASSERT_TRUE(system.WaitForIngest().ok());
  // After the drain the watermark has passed every ticket.
  EXPECT_EQ(db.StableVersion(), 2u);
  EXPECT_EQ(db.PendingDeltaCount("sales", 0), 2u);
}

TEST(AsyncIngestionTest, DeferredApplyErrorSurfacesOnDrain) {
  // Deliberate async-vs-sync divergence for INVALID statements: the sync
  // path validates before allocating a version, while the async path has
  // already handed out the ticket at enqueue — on failure the version is
  // retired (published as a no-op) so the watermark cannot stall, and the
  // error surfaces at the drain barrier instead of the Update call.
  Database db;
  LoadSalesExample(&db);
  ImpConfig config = ConfigFor(true, MaintenanceStrategy::kLazy);
  ImpSystem system(&db, config);
  BoundUpdate bad;
  bad.kind = BoundUpdate::Kind::kInsert;
  bad.table = "ghost";
  bad.rows.push_back({Value::Int(1)});
  ASSERT_TRUE(system.UpdateBound(bad).ok());  // ticket handed out
  auto good =
      system.Update("INSERT INTO sales VALUES (8, 'HP', 'X', 1299, 1)");
  ASSERT_TRUE(good.ok());
  Status drained = system.WaitForIngest();
  EXPECT_FALSE(drained.ok());
  // The failed statement still consumed its version: the watermark moved
  // past it and the good statement landed.
  EXPECT_EQ(db.StableVersion(), 2u);
  EXPECT_EQ(db.PendingDeltaCount("sales", 0), 1u);
}

TEST(AsyncIngestionTest, BackpressureBoundedQueue) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", TwoColSchema()).ok());
  ImpConfig config = ConfigFor(true, MaintenanceStrategy::kLazy);
  config.ingest_queue_capacity = 4;
  ImpSystem system(&db, config);
  for (int64_t i = 0; i < 200; ++i) {
    BoundUpdate update;
    update.kind = BoundUpdate::Kind::kInsert;
    update.table = "t";
    update.rows.push_back(Row(i, i));
    ASSERT_TRUE(system.UpdateBound(update).ok());
  }
  ASSERT_TRUE(system.WaitForIngest().ok());
  EXPECT_EQ(db.StableVersion(), 200u);
  EXPECT_EQ(db.GetTable("t")->NumRows(), 200u);
  const ImpSystemStats& stats = system.stats();
  EXPECT_EQ(stats.ingest_enqueued, 200u);
  EXPECT_EQ(stats.ingest_applied, 200u);
  EXPECT_LE(stats.ingest_queue_peak, 4u);
}

TEST(AsyncIngestionTest, QueuePeakReportedWithoutADrainBarrier) {
  // Regression: the queue's high-water mark used to be folded into
  // stats() only by WaitForIngest — a system whose worker was wedged (or
  // fail-stopped) under-reported the peak as 0 exactly when the backlog
  // mattered. Health() is the stats-refresh point and must fold it too.
  Database db;
  ASSERT_TRUE(db.CreateTable("t", TwoColSchema()).ok());
  ImpConfig config = ConfigFor(true, MaintenanceStrategy::kLazy);
  config.ingest_queue_capacity = 8;
  ImpSystem system(&db, config);

  BoundUpdate update;
  update.kind = BoundUpdate::Kind::kInsert;
  update.table = "t";
  update.rows.push_back(Row(0, 0));

  // Wedge the worker on the table's write stripe mid-apply, then pile
  // three statements up behind it: the push-time high-water mark is
  // deterministically 3, and no worker cycle (let alone a WaitForIngest)
  // will happen while we read it.
  auto stripe = db.WriteSession("t");
  ASSERT_TRUE(system.UpdateBound(update).ok());  // popped, stuck on stripe
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (system.Health().ingest_queue_depth != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(system.Health().ingest_queue_depth, 0u);
  for (int64_t i = 1; i <= 3; ++i) {
    update.rows[0] = Row(i, i);
    ASSERT_TRUE(system.UpdateBound(update).ok());
  }
  ASSERT_EQ(system.Health().ingest_queue_depth, 3u);
  EXPECT_EQ(system.stats().ingest_queue_peak, 3u);  // refreshed by Health()

  stripe.unlock();
  ASSERT_TRUE(system.WaitForIngest().ok());
  EXPECT_EQ(db.GetTable("t")->NumRows(), 4u);
  EXPECT_EQ(system.stats().ingest_queue_peak, 3u);
}

// ---- The concurrent append/scan contract (TSan target) ---------------------

TEST(ConcurrentIngestionTest, ProducersWorkerAndScannersRace) {
  constexpr size_t kProducers = 4;
  constexpr size_t kPerProducer = 50;

  Database db;
  SyntheticSpec spec;
  spec.name = "edb";
  spec.num_rows = 500;
  spec.num_groups = 20;
  spec.seed = 3;
  ASSERT_TRUE(CreateSyntheticTable(&db, spec).ok());
  ImpConfig config = ConfigFor(true, MaintenanceStrategy::kLazy);
  config.ingest_queue_capacity = 32;
  ImpSystem system(&db, config);
  ASSERT_TRUE(system
                  .RegisterPartition(
                      RangePartition::EquiWidthInt("edb", "a", 1, 0, 19, 5))
                  .ok());
  for (const char* col : {"b", "c"}) {
    std::string q = "SELECT a, sum(" + std::string(col) + ") AS s FROM edb "
                    "GROUP BY a HAVING sum(" + std::string(col) + ") > 10";
    ASSERT_TRUE(system.Query(q).ok());
  }

  // Racing producers enqueue deterministic row bags (the union is
  // order-independent), while pollers exercise the lock-free staleness
  // probe and the shared-side window scan against the in-flight writer.
  std::atomic<bool> done{false};
  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&system, &spec, p] {
      Rng rng(100 + p);
      for (size_t i = 0; i < kPerProducer; ++i) {
        BoundUpdate update;
        update.kind = BoundUpdate::Kind::kInsert;
        update.table = "edb";
        update.rows.push_back(SyntheticRow(
            spec, static_cast<int64_t>(10000 + p * kPerProducer + i), &rng));
        ASSERT_TRUE(system.UpdateBound(update).ok());
      }
    });
  }
  std::thread poller([&] {
    size_t observed = 0;
    while (!done.load(std::memory_order_acquire)) {
      uint64_t stable = db.StableVersion();
      if (db.HasPendingDelta("edb", 0)) {
        observed = std::max(observed, db.PendingDeltaCount("edb", 0));
      }
      TableDelta window = db.ScanDelta("edb", 0, stable);
      // Every record a scan returns is published: its version is at or
      // below the watermark read before the scan... or slightly newer if
      // the worker published meanwhile — but never unpublished garbage.
      for (const DeltaRecord& rec : window.records) {
        ASSERT_GE(rec.row.size(), 1u);
        ASSERT_LE(rec.version, db.CurrentVersion());
      }
      std::this_thread::yield();
    }
    (void)observed;
  });
  for (std::thread& t : producers) t.join();
  ASSERT_TRUE(system.WaitForIngest().ok());
  done.store(true, std::memory_order_release);
  poller.join();

  const uint64_t total = kProducers * kPerProducer;
  EXPECT_EQ(db.StableVersion(), total);
  EXPECT_EQ(db.CurrentVersion(), total);
  EXPECT_EQ(db.PendingDeltaCount("edb", 0), total);
  ASSERT_TRUE(system.MaintainAll().ok());

  // Reference: the same row bag ingested synchronously in one thread.
  // Insertion order differs, but the final aggregates — and therefore the
  // sketches and query results — are order-independent.
  Database ref_db;
  ASSERT_TRUE(CreateSyntheticTable(&ref_db, spec).ok());
  ImpConfig ref_config = ConfigFor(false, MaintenanceStrategy::kLazy);
  ImpSystem ref(&ref_db, ref_config);
  ASSERT_TRUE(ref
                  .RegisterPartition(
                      RangePartition::EquiWidthInt("edb", "a", 1, 0, 19, 5))
                  .ok());
  for (const char* col : {"b", "c"}) {
    std::string q = "SELECT a, sum(" + std::string(col) + ") AS s FROM edb "
                    "GROUP BY a HAVING sum(" + std::string(col) + ") > 10";
    ASSERT_TRUE(ref.Query(q).ok());
  }
  for (size_t p = 0; p < kProducers; ++p) {
    Rng rng(100 + p);
    for (size_t i = 0; i < kPerProducer; ++i) {
      BoundUpdate update;
      update.kind = BoundUpdate::Kind::kInsert;
      update.table = "edb";
      update.rows.push_back(SyntheticRow(
          spec, static_cast<int64_t>(10000 + p * kPerProducer + i), &rng));
      ASSERT_TRUE(ref.UpdateBound(update).ok());
    }
  }
  ASSERT_TRUE(ref.MaintainAll().ok());

  auto entries = system.sketches().AllEntries();
  auto ref_entries = ref.sketches().AllEntries();
  ASSERT_EQ(entries.size(), ref_entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i]->sketch.fragments.SetBits(),
              ref_entries[i]->sketch.fragments.SetBits())
        << "sketch " << i;
  }
  for (const char* col : {"b", "c"}) {
    std::string q = "SELECT a, sum(" + std::string(col) + ") AS s FROM edb "
                    "GROUP BY a HAVING sum(" + std::string(col) + ") > 10";
    auto got = system.Query(q);
    auto want = ref.Query(q);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(want.ok());
    EXPECT_TRUE(got.value().SameBag(want.value())) << q;
  }
}

TEST(ConcurrentIngestionTest, QueriesRunAgainstTheWatermarkMidFlight) {
  // Queries may interleave with in-flight ingestion: they cut at the
  // stable watermark and must neither crash nor observe torn state. The
  // exact result depends on how far the worker got — only the post-drain
  // result is pinned (to the synchronous reference by the equivalence
  // suite above).
  Database db;
  SyntheticSpec spec;
  spec.name = "edb";
  spec.num_rows = 400;
  spec.num_groups = 10;
  ASSERT_TRUE(CreateSyntheticTable(&db, spec).ok());
  ImpConfig config = ConfigFor(true, MaintenanceStrategy::kLazy);
  ImpSystem system(&db, config);
  ASSERT_TRUE(system
                  .RegisterPartition(
                      RangePartition::EquiWidthInt("edb", "a", 1, 0, 9, 5))
                  .ok());
  std::string q = "SELECT a, sum(b) AS s FROM edb GROUP BY a "
                  "HAVING sum(b) > 10";
  ASSERT_TRUE(system.Query(q).ok());

  Rng rng(5);
  for (size_t i = 0; i < 100; ++i) {
    BoundUpdate update;
    update.kind = BoundUpdate::Kind::kInsert;
    update.table = "edb";
    update.rows.push_back(
        SyntheticRow(spec, static_cast<int64_t>(1000 + i), &rng));
    ASSERT_TRUE(system.UpdateBound(update).ok());
    if (i % 10 == 0) {
      auto result = system.Query(q);  // races the worker on purpose
      ASSERT_TRUE(result.ok());
    }
  }
  ASSERT_TRUE(system.WaitForIngest().ok());
  auto final_result = system.Query(q);
  ASSERT_TRUE(final_result.ok());
  EXPECT_EQ(db.StableVersion(), 100u);
}

}  // namespace
}  // namespace imp
