// Tests for the self-tuning maintenance policies (middleware/policy.h):
//
//  * the pure decision function and the cost ledger's EWMA bookkeeping;
//  * the outgrown-window rules (structural and measured) switching a
//    sketch from incremental repair to FM recapture — and back;
//  * eviction of idle sketches, their exclusion from delta-log pinning,
//    and query-driven readmission through a recapture;
//  * eager-round deferral under ingest-queue pressure, its starvation
//    bound, and adaptive apply-batch sizing;
//  * composition with the PR 6 health ladder: backoff governs a failing
//    recapture (no storm), quarantined entries are invisible to the cost
//    model;
//  * a randomized soak: the cost-based system's query results and sketches
//    are bit-identical to an always-incremental (kFixed) twin over the
//    same watermarks.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/random.h"
#include "middleware/imp_system.h"
#include "middleware/policy.h"
#include "test_util.h"
#include "workload/synthetic.h"

namespace imp {
namespace {

// ---- Helpers ---------------------------------------------------------------

FailpointRegistry& Registry() { return FailpointRegistry::Instance(); }

/// Isolation fixture for the cases that arm failpoints.
class PolicyFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { Registry().Reset(); }
  void TearDown() override { Registry().Reset(); }
};

Relation RefResult(const Database& db, const std::string& sql) {
  PlanPtr plan = MustBind(db, sql);
  Executor exec(&db);
  auto result = exec.Execute(plan);
  IMP_CHECK(result.ok());
  return std::move(result).value();
}

Relation MustQuery(ImpSystem* system, const std::string& sql) {
  auto result = system->Query(sql);
  IMP_CHECK_MSG(result.ok(), result.status().ToString());
  return std::move(result).value();
}

/// Incremental sales system with the cost-based engine on.
ImpConfig TunedSalesConfig() {
  ImpConfig config;
  config.mode = ExecutionMode::kIncremental;
  config.strategy = MaintenanceStrategy::kLazy;
  config.policy.mode = PolicyMode::kCostBased;
  return config;
}

Tuple SalesRow(int64_t sid, int64_t price) {
  return Tuple{Value::Int(sid), Value::String("HP"),
               Value::String("HP EliteBook 860 G9"), Value::Int(price),
               Value::Int(2)};
}

/// One multi-row INSERT of `n` rows starting at `first_sid`.
BoundUpdate SalesBurst(int64_t first_sid, size_t n) {
  BoundUpdate update;
  update.kind = BoundUpdate::Kind::kInsert;
  update.table = "sales";
  for (size_t i = 0; i < n; ++i) {
    update.rows.push_back(SalesRow(first_sid + static_cast<int64_t>(i), 1299));
  }
  return update;
}

// ---- DecideMaintenance: the pure decision function -------------------------

TEST(PolicyDecisionTest, NonStaleSketchOnlyFastForwards) {
  PolicyConfig config;
  config.mode = PolicyMode::kCostBased;
  SketchCostLedger ledger;
  ledger.idle_rounds = 1000;  // even a hopelessly idle sketch: nothing to do
  PolicyInputs inputs;
  inputs.stale = false;
  EXPECT_EQ(DecideMaintenance(config, &ledger, inputs),
            SketchPolicy::kIncremental);
}

TEST(PolicyDecisionTest, QueryUseClosesTheIdleWindow) {
  PolicyConfig config;
  config.evict_after_idle_rounds = 4;
  SketchCostLedger ledger;
  ledger.idle_rounds = 4;  // at the eviction threshold...
  ledger.uses_seen = 2;
  PolicyInputs inputs;
  inputs.stale = true;
  inputs.current_uses = 3;  // ...but a query used the sketch since
  inputs.pending_delta_rows = 1;
  inputs.table_rows = 1000;
  EXPECT_EQ(DecideMaintenance(config, &ledger, inputs),
            SketchPolicy::kIncremental);
  EXPECT_EQ(ledger.idle_rounds, 0u);
  EXPECT_EQ(ledger.uses_seen, 3u);

  // No further use: the same idle count now evicts.
  ledger.idle_rounds = 4;
  EXPECT_EQ(DecideMaintenance(config, &ledger, inputs),
            SketchPolicy::kEvicted);
}

TEST(PolicyDecisionTest, InvalidatedWindowAlwaysRecaptures) {
  PolicyConfig config;
  config.evict_after_idle_rounds = 1;
  SketchCostLedger ledger;
  ledger.needs_recapture = true;
  ledger.idle_rounds = 50;  // would evict — but the window is unsound first
  PolicyInputs inputs;
  inputs.stale = true;
  inputs.pending_delta_rows = 1;
  inputs.table_rows = 1000;
  EXPECT_EQ(DecideMaintenance(config, &ledger, inputs),
            SketchPolicy::kRecapture);
}

TEST(PolicyDecisionTest, StructuralOutgrownRule) {
  PolicyConfig config;
  config.outgrown_delta_ratio = 0.5;
  SketchCostLedger ledger;  // cold EWMAs: the structural rule fires anyway
  PolicyInputs inputs;
  inputs.stale = true;
  inputs.table_rows = 100;
  inputs.pending_delta_rows = 49;
  EXPECT_EQ(DecideMaintenance(config, &ledger, inputs),
            SketchPolicy::kIncremental);
  inputs.pending_delta_rows = 50;
  EXPECT_EQ(DecideMaintenance(config, &ledger, inputs),
            SketchPolicy::kRecapture);
  // Empty-table clamp: the threshold never divides by zero.
  inputs.table_rows = 0;
  inputs.pending_delta_rows = 1;
  EXPECT_EQ(DecideMaintenance(config, &ledger, inputs),
            SketchPolicy::kRecapture);
}

TEST(PolicyDecisionTest, MeasuredCostRuleNeedsBothEwmasWarm) {
  PolicyConfig config;
  config.outgrown_delta_ratio = 0.9;  // keep the structural rule out
  SketchCostLedger ledger;
  PolicyInputs inputs;
  inputs.stale = true;
  inputs.pending_delta_rows = 200;
  inputs.table_rows = 1000;

  // Repair is measured 100x costlier per row — but capture is unwarmed,
  // so no verdict may be fabricated.
  ledger.repair_s_per_row = 1e-3;
  ledger.has_repair = true;
  EXPECT_EQ(DecideMaintenance(config, &ledger, inputs),
            SketchPolicy::kIncremental);

  // Both warm: est_repair = 0.2s > est_capture = 0.01s -> recapture.
  ledger.capture_s_per_row = 1e-5;
  ledger.has_capture = true;
  EXPECT_EQ(DecideMaintenance(config, &ledger, inputs),
            SketchPolicy::kRecapture);

  // A strong bias toward repair flips the same numbers back.
  config.recapture_bias = 100.0;
  EXPECT_EQ(DecideMaintenance(config, &ledger, inputs),
            SketchPolicy::kIncremental);
}

TEST(PolicyDecisionTest, EvictionDisabledByZeroThreshold) {
  PolicyConfig config;
  config.evict_after_idle_rounds = 0;
  SketchCostLedger ledger;
  ledger.idle_rounds = 100000;
  PolicyInputs inputs;
  inputs.stale = true;
  inputs.pending_delta_rows = 1;
  inputs.table_rows = 1000;
  EXPECT_EQ(DecideMaintenance(config, &ledger, inputs),
            SketchPolicy::kIncremental);
}

// ---- The cost ledger's EWMA bookkeeping ------------------------------------

TEST(PolicyLedgerTest, EwmaSeedsWithFirstSampleThenBlends) {
  SketchCostLedger ledger;
  ledger.ObserveRepair(/*seconds=*/0.1, /*rows=*/100, /*alpha=*/0.5);
  EXPECT_DOUBLE_EQ(ledger.repair_s_per_row, 0.001);  // seeded, not averaged
  EXPECT_TRUE(ledger.has_repair);
  ledger.ObserveRepair(0.3, 100, 0.5);
  EXPECT_DOUBLE_EQ(ledger.repair_s_per_row, 0.5 * 0.003 + 0.5 * 0.001);
  EXPECT_EQ(ledger.upkeep_rounds, 2u);
  EXPECT_DOUBLE_EQ(ledger.upkeep_seconds, 0.4);
  EXPECT_EQ(ledger.idle_rounds, 2u);
}

TEST(PolicyLedgerTest, CaptureObservationClearsNeedsRecapture) {
  SketchCostLedger ledger;
  ledger.needs_recapture = true;
  ledger.ObserveCapture(0.2, 1000, 0.3);
  EXPECT_FALSE(ledger.needs_recapture);
  EXPECT_DOUBLE_EQ(ledger.capture_s_per_row, 0.0002);
  EXPECT_TRUE(ledger.has_capture);
}

TEST(PolicyLedgerTest, ZeroRowObservationsClampTheDenominator) {
  SketchCostLedger ledger;
  ledger.ObserveRepair(0.5, 0, 0.3);  // 0 rows must not divide by zero
  EXPECT_DOUBLE_EQ(ledger.repair_s_per_row, 0.5);
  ledger.ObserveAnnotationHitRate(0.75, 0.3);
  EXPECT_DOUBLE_EQ(ledger.annotation_hit_rate, 0.75);
}

TEST(PolicyLedgerTest, PolicyNamesAreStable) {
  EXPECT_STREQ(SketchPolicyName(SketchPolicy::kIncremental), "incremental");
  EXPECT_STREQ(SketchPolicyName(SketchPolicy::kRecapture), "recapture");
  EXPECT_STREQ(SketchPolicyName(SketchPolicy::kEvicted), "evicted");
}

// ---- Outgrown window: incremental -> recapture -> incremental --------------

TEST(PolicySystemTest, OutgrownWindowSwitchesToRecaptureAndBack) {
  Database db;
  LoadSalesExample(&db);  // 7 rows
  ImpConfig config = TunedSalesConfig();
  ImpSystem system(&db, config);
  ASSERT_TRUE(system.RegisterPartition(SalesPricePartition()).ok());
  Relation expected = RefResult(db, kSalesQTop);
  EXPECT_TRUE(MustQuery(&system, kSalesQTop).SameBag(expected));
  ASSERT_EQ(system.stats().sketch_captures, 1u);

  // 8 pending rows against 15 rows at the cut: past the 0.5 default ratio,
  // so the round must rebuild instead of replaying the larger-than-the-
  // table delta window.
  ASSERT_TRUE(system.UpdateBound(SalesBurst(100, 8)).ok());
  ASSERT_TRUE(system.MaintainAll().ok());
  EXPECT_EQ(system.stats().policy_recaptures, 1u);
  EXPECT_EQ(system.stats().sketch_captures, 2u);  // initial + cost-model
  EXPECT_GE(system.stats().policy_switches, 1u);

  // The recaptured sketch answers bit-identically and is current.
  expected = RefResult(db, kSalesQTop);
  size_t uses_before = system.stats().sketch_uses;
  EXPECT_TRUE(MustQuery(&system, kSalesQTop).SameBag(expected));
  EXPECT_GT(system.stats().sketch_uses, uses_before);
  EXPECT_EQ(system.Health().sketches_fresh, 1u);

  // A small delta flips the entry back to incremental repair.
  ASSERT_TRUE(system.Update(
      "INSERT INTO sales VALUES (200,'HP','HP ProBook',999,1)").ok());
  size_t maintenances_before = system.stats().maintenances;
  ASSERT_TRUE(system.MaintainAll().ok());
  EXPECT_EQ(system.stats().policy_recaptures, 1u);  // no further recapture
  EXPECT_EQ(system.stats().sketch_captures, 2u);
  EXPECT_GT(system.stats().maintenances, maintenances_before);
  expected = RefResult(db, kSalesQTop);
  EXPECT_TRUE(MustQuery(&system, kSalesQTop).SameBag(expected));

  // The ledger is visible through Health(): the capture EWMA was seeded at
  // the initial capture and refreshed by the cost-model recapture.
  SystemHealth health = system.Health();
  ASSERT_EQ(health.policies.size(), 1u);
  EXPECT_GT(health.policies[0].capture_s_per_row, 0.0);
  EXPECT_GE(health.policies[0].upkeep_rounds, 2u);
}

// ---- Eviction of idle sketches and query-driven readmission ----------------

TEST(PolicySystemTest, IdleSketchIsEvictedAndReadmittedByAQuery) {
  Database db;
  LoadSalesExample(&db);
  ImpConfig config = TunedSalesConfig();
  config.policy.evict_after_idle_rounds = 3;
  ImpSystem system(&db, config);
  ASSERT_TRUE(system.RegisterPartition(SalesPricePartition()).ok());
  MustQuery(&system, kSalesQTop);  // capture; the only query use

  // Four maintained-but-unqueried rounds: idle_rounds reaches the
  // threshold after round 3, round 4 declines the upkeep.
  for (int64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(system.UpdateBound(SalesBurst(300 + i, 1)).ok());
    ASSERT_TRUE(system.MaintainAll().ok());
  }
  EXPECT_EQ(system.stats().sketches_evicted, 1u);
  SystemHealth health = system.Health();
  ASSERT_EQ(health.policies.size(), 1u);
  EXPECT_EQ(health.policies[0].policy, SketchPolicy::kEvicted);
  // An evicted entry no longer pins the delta log.
  EXPECT_EQ(system.sketches().MinValidVersion(), UINT64_MAX);

  // Further rounds skip it entirely.
  size_t maintenances_before = system.stats().maintenances;
  ASSERT_TRUE(system.UpdateBound(SalesBurst(310, 1)).ok());
  ASSERT_TRUE(system.MaintainAll().ok());
  EXPECT_EQ(system.stats().maintenances, maintenances_before);

  // A query IS the benefit signal: it readmits the entry, and because the
  // log may have truncated past the evicted version, the repair must be a
  // rebuild from base tables — then the answer is bit-identical and the
  // sketch accelerates again.
  Relation expected = RefResult(db, kSalesQTop);
  EXPECT_TRUE(MustQuery(&system, kSalesQTop).SameBag(expected));
  EXPECT_EQ(system.stats().sketch_captures, 2u);  // initial + readmission
  EXPECT_EQ(system.stats().policy_recaptures, 1u);
  EXPECT_GE(system.stats().policy_switches, 3u);  // evict, readmit, recapture
  health = system.Health();
  ASSERT_EQ(health.policies.size(), 1u);
  EXPECT_NE(health.policies[0].policy, SketchPolicy::kEvicted);
  // The use reset the idle window; only the readmitting recapture itself
  // has been counted since.
  EXPECT_LE(health.policies[0].idle_rounds, 1u);
  // ...and it pins the log again.
  EXPECT_NE(system.sketches().MinValidVersion(), UINT64_MAX);

  // Back in service: the next round maintains it.
  ASSERT_TRUE(system.UpdateBound(SalesBurst(320, 1)).ok());
  maintenances_before = system.stats().maintenances;
  ASSERT_TRUE(system.MaintainAll().ok());
  EXPECT_GT(system.stats().maintenances, maintenances_before);
}

// ---- Pressure deferral of eager rounds -------------------------------------

TEST(PolicySystemTest, QueuePressureDefersEagerRounds) {
  Database db;
  LoadSalesExample(&db);
  ImpConfig config = TunedSalesConfig();
  config.strategy = MaintenanceStrategy::kEager;
  config.eager_batch_size = 1;
  config.async_ingestion = true;
  config.ingest_queue_capacity = 8;
  config.policy.defer_queue_fraction = 0.25;  // threshold: 2 of 8
  // Keep the worker at one statement per cycle so every NoteUpdate
  // observes a deterministic backlog depth (adaptive sizing would drain
  // the whole burst in one cycle and leave nothing to defer on).
  config.policy.adaptive_ingest_batch = false;
  ImpSystem system(&db, config);
  ASSERT_TRUE(system.RegisterPartition(SalesPricePartition()).ok());
  MustQuery(&system, kSalesQTop);

  // Wedge the worker on the sales write stripe mid-apply, then pile six
  // statements behind it: on release the worker applies one per cycle and
  // sees backlogs 6,5,4,3,2,1,0 — the first four are above the threshold
  // (and under the starvation bound), so exactly four flushes defer.
  auto stripe = db.WriteSession("sales");
  ASSERT_TRUE(system.UpdateBound(SalesBurst(400, 1)).ok());
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (system.Health().ingest_queue_depth != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(system.Health().ingest_queue_depth, 0u);
  for (int64_t i = 1; i <= 6; ++i) {
    ASSERT_TRUE(system.UpdateBound(SalesBurst(400 + i, 1)).ok());
  }
  stripe.unlock();
  ASSERT_TRUE(system.WaitForIngest().ok());

  EXPECT_EQ(system.stats().rounds_deferred, 4u);
  // The deferred statements were NOT lost: once the queue drained under
  // the threshold the flush covered them, and the system is current.
  EXPECT_GE(system.stats().batch_rounds, 3u);
  ASSERT_TRUE(system.MaintainAll().ok());
  Relation expected = RefResult(db, kSalesQTop);
  EXPECT_TRUE(MustQuery(&system, kSalesQTop).SameBag(expected));
  EXPECT_EQ(system.Health().sketches_fresh, 1u);
}

TEST(PolicySystemTest, StarvationBoundForcesAFlushUnderPressure) {
  Database db;
  LoadSalesExample(&db);
  ImpConfig config = TunedSalesConfig();
  config.strategy = MaintenanceStrategy::kEager;
  config.eager_batch_size = 1;
  config.async_ingestion = true;
  config.ingest_queue_capacity = 8;
  config.policy.defer_queue_fraction = 0.25;
  config.policy.max_consecutive_deferrals = 2;
  config.policy.adaptive_ingest_batch = false;
  ImpSystem system(&db, config);
  ASSERT_TRUE(system.RegisterPartition(SalesPricePartition()).ok());
  MustQuery(&system, kSalesQTop);

  // Same six-deep backlog, but the bound trips after two deferrals: the
  // flush at depth 4 proceeds DESPITE the pressure (maintenance is
  // delayed, never starved), then depth 3 defers once more and depth 2
  // flushes normally — three deferrals in total.
  auto stripe = db.WriteSession("sales");
  ASSERT_TRUE(system.UpdateBound(SalesBurst(500, 1)).ok());
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (system.Health().ingest_queue_depth != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(system.Health().ingest_queue_depth, 0u);
  for (int64_t i = 1; i <= 6; ++i) {
    ASSERT_TRUE(system.UpdateBound(SalesBurst(500 + i, 1)).ok());
  }
  stripe.unlock();
  ASSERT_TRUE(system.WaitForIngest().ok());

  EXPECT_EQ(system.stats().rounds_deferred, 3u);
  Relation expected = RefResult(db, kSalesQTop);
  EXPECT_TRUE(MustQuery(&system, kSalesQTop).SameBag(expected));
}

TEST(PolicySystemTest, AdaptiveBatchSizingDrainsTheBacklogInOneCycle) {
  Database db;
  LoadSalesExample(&db);
  ImpConfig config = TunedSalesConfig();  // adaptive_ingest_batch on
  config.async_ingestion = true;
  config.ingest_queue_capacity = 64;
  ImpSystem system(&db, config);
  ASSERT_TRUE(system.RegisterPartition(SalesPricePartition()).ok());
  MustQuery(&system, kSalesQTop);

  // One statement wedges the worker; twenty pile up behind it. The next
  // cycle sizes itself from the backlog and drains all twenty at once
  // (the fixed ingest_apply_batch is 1).
  auto stripe = db.WriteSession("sales");
  ASSERT_TRUE(system.UpdateBound(SalesBurst(600, 1)).ok());
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (system.Health().ingest_queue_depth != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(system.Health().ingest_queue_depth, 0u);
  for (int64_t i = 1; i <= 20; ++i) {
    ASSERT_TRUE(system.UpdateBound(SalesBurst(600 + i, 1)).ok());
  }
  stripe.unlock();
  ASSERT_TRUE(system.WaitForIngest().ok());

  EXPECT_EQ(system.stats().ingest_applied, 21u);
  EXPECT_EQ(system.stats().ingest_batch_max, 20u);
  // Adaptive draining only moves throughput, never results.
  ASSERT_TRUE(system.MaintainAll().ok());
  Relation expected = RefResult(db, kSalesQTop);
  EXPECT_TRUE(MustQuery(&system, kSalesQTop).SameBag(expected));
  EXPECT_EQ(db.GetTable("sales")->NumRows(), 28u);
}

// ---- Composition with the health ladder ------------------------------------

TEST_F(PolicyFaultTest, BackoffGovernsAFailingRecaptureNoStorm) {
  uint64_t now = 1000;  // outlives the system (declared first)
  Database db;
  LoadSalesExample(&db);
  ImpConfig config = TunedSalesConfig();
  config.clock_ms = [&now] { return now; };
  config.maintenance_backoff_ms = 100;
  config.maintenance_backoff_cap_ms = 1000;
  config.recapture_after_failures = 100;  // keep ladder escalation out
  config.quarantine_after_failures = 200;
  ImpSystem system(&db, config);
  ASSERT_TRUE(system.RegisterPartition(SalesPricePartition()).ok());
  MustQuery(&system, kSalesQTop);
  // Outgrown window: the cost model WANTS a recapture...
  ASSERT_TRUE(system.UpdateBound(SalesBurst(700, 8)).ok());

  // ...but the capture path is faulty. The failure lands in the health
  // ladder exactly like an incremental failure would.
  ASSERT_TRUE(Registry().ArmFromSpec("capture=always").ok());
  Failpoint& fp = Registry().GetOrCreate(kFpCapture);
  EXPECT_FALSE(system.MaintainAll().ok());
  EXPECT_EQ(fp.fire_count(), 1u);

  // The backoff deadline outranks the cost model: the still-wanted
  // recapture is NOT retried until it passes — no recapture storm.
  EXPECT_TRUE(system.MaintainAll().ok());
  EXPECT_TRUE(system.MaintainAll().ok());
  EXPECT_EQ(fp.fire_count(), 1u);

  now = 1100;  // deadline reached: one (failing) retry, backoff doubles
  EXPECT_FALSE(system.MaintainAll().ok());
  EXPECT_EQ(fp.fire_count(), 2u);

  // Fault clears; the next due round performs the deferred recapture.
  Registry().DisarmAll();
  now = 1300;
  ASSERT_TRUE(system.MaintainAll().ok());
  EXPECT_EQ(system.stats().policy_recaptures, 1u);
  EXPECT_EQ(system.Health().sketches_fresh, 1u);
  Relation expected = RefResult(db, kSalesQTop);
  EXPECT_TRUE(MustQuery(&system, kSalesQTop).SameBag(expected));
}

TEST_F(PolicyFaultTest, QuarantinedEntriesAreInvisibleToTheCostModel) {
  Database db;
  LoadSalesExample(&db);
  ImpConfig config = TunedSalesConfig();
  config.maintenance_backoff_ms = 0;
  config.recapture_after_failures = 1;
  config.quarantine_after_failures = 2;
  ImpSystem system(&db, config);
  ASSERT_TRUE(system.RegisterPartition(SalesPricePartition()).ok());
  MustQuery(&system, kSalesQTop);
  ASSERT_TRUE(system.UpdateBound(SalesBurst(8, 1)).ok());

  // Drive the entry down the whole ladder: repair and capture both fault.
  ASSERT_TRUE(
      Registry().ArmFromSpec("maintain.round=always;capture=always").ok());
  EXPECT_FALSE(system.MaintainAll().ok());  // failure 1, escalation fails too
  EXPECT_FALSE(system.MaintainAll().ok());  // failure 2 -> quarantined
  ASSERT_EQ(system.Health().sketches_quarantined, 1u);
  Registry().DisarmAll();

  // An outgrown window would normally force a recapture — but quarantine
  // outranks the cost model: the entry sits rounds out untouched until
  // the explicit repair step, and is never "deferred" or evicted either.
  ASSERT_TRUE(system.UpdateBound(SalesBurst(800, 10)).ok());
  ASSERT_TRUE(system.MaintainAll().ok());
  EXPECT_EQ(system.stats().policy_recaptures, 0u);
  EXPECT_EQ(system.stats().sketches_evicted, 0u);
  EXPECT_EQ(system.Health().sketches_quarantined, 1u);

  // Queries stay correct (degraded to plain scans) meanwhile.
  Relation expected = RefResult(db, kSalesQTop);
  EXPECT_TRUE(MustQuery(&system, kSalesQTop).SameBag(expected));
  EXPECT_GE(system.stats().degraded_queries, 1u);

  // The explicit repair returns it to service; policy decisions resume.
  ASSERT_TRUE(system.RepairQuarantined().ok());
  EXPECT_EQ(system.Health().sketches_quarantined, 0u);
  EXPECT_TRUE(MustQuery(&system, kSalesQTop).SameBag(expected));
}

// ---- Randomized soak: bit-identical to an always-incremental twin ----------

std::vector<std::string> SoakQueries() {
  std::vector<std::string> queries;
  for (const char* col : {"b", "c"}) {
    queries.push_back("SELECT a, sum(" + std::string(col) +
                      ") AS s FROM edb GROUP BY a HAVING sum(" + col +
                      ") > 100");
    queries.push_back("SELECT a, sum(" + std::string(col) +
                      ") AS s FROM edb WHERE " + col +
                      " < 400 GROUP BY a HAVING sum(" + col + ") > 50");
  }
  return queries;
}

struct SoakSnapshot {
  std::vector<std::vector<size_t>> sketch_bits;
  std::vector<uint64_t> versions;
  std::vector<std::string> mid_results;    ///< queries asked during the run
  std::vector<std::string> final_results;  ///< all queries at the end
  uint64_t stable_version = 0;
  size_t policy_recaptures = 0;  ///< tuned run only; not compared
  size_t sketches_evicted = 0;
  size_t policy_switches = 0;
};

/// One deterministic bursty workload (synchronous ingestion, so both twins
/// observe identical watermarks at every query and maintenance round).
SoakSnapshot RunSoak(PolicyMode mode, uint64_t seed) {
  Database db;
  SyntheticSpec spec;
  spec.name = "edb";
  spec.num_rows = 400;
  spec.num_groups = 50;
  spec.seed = 7;
  IMP_CHECK(CreateSyntheticTable(&db, spec).ok());

  ImpConfig config;
  config.mode = ExecutionMode::kIncremental;
  config.strategy = MaintenanceStrategy::kLazy;
  config.policy.mode = mode;
  // Aggressive knobs so the soak actually exercises every transition:
  // bursts outgrow the window, unqueried sketches evict quickly.
  config.policy.outgrown_delta_ratio = 0.25;
  config.policy.evict_after_idle_rounds = 3;
  ImpSystem system(&db, config);
  IMP_CHECK(system
                .RegisterPartition(
                    RangePartition::EquiWidthInt("edb", "a", 1, 0, 49, 10))
                .ok());
  const std::vector<std::string> queries = SoakQueries();
  for (const std::string& q : queries) {
    auto result = system.Query(q);
    IMP_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  }

  SoakSnapshot snap;
  Rng rng(seed);
  int64_t next_id = static_cast<int64_t>(spec.num_rows);
  for (size_t step = 0; step < 40; ++step) {
    if (rng.Chance(0.15)) {
      // Burst: a delta window in the order of the table itself.
      BoundUpdate update;
      update.kind = BoundUpdate::Kind::kInsert;
      update.table = "edb";
      size_t n = static_cast<size_t>(rng.UniformInt(150, 250));
      for (size_t r = 0; r < n; ++r) {
        update.rows.push_back(SyntheticRow(spec, next_id++, &rng));
      }
      IMP_CHECK(system.UpdateBound(update).ok());
    } else if (rng.Chance(0.35)) {
      int64_t lo = rng.UniformInt(0, next_id - 1);
      int64_t hi = lo + rng.UniformInt(0, 20);
      IMP_CHECK(system
                    .Update("DELETE FROM edb WHERE id >= " +
                            std::to_string(lo) + " AND id <= " +
                            std::to_string(hi))
                    .ok());
    } else {
      BoundUpdate update;
      update.kind = BoundUpdate::Kind::kInsert;
      update.table = "edb";
      size_t n = static_cast<size_t>(rng.UniformInt(1, 5));
      for (size_t r = 0; r < n; ++r) {
        update.rows.push_back(SyntheticRow(spec, next_id++, &rng));
      }
      IMP_CHECK(system.UpdateBound(update).ok());
    }
    if ((step + 1) % 4 == 0) IMP_CHECK(system.MaintainAll().ok());
    if ((step + 1) % 7 == 0) {
      // Keep ONE query hot so its sketch is never idle; the others only
      // run at the end — in the tuned system they are evicted meanwhile
      // and must come back bit-identically through readmission.
      auto result = system.Query(queries[0]);
      IMP_CHECK(result.ok());
      snap.mid_results.push_back(result.value().ToString());
    }
  }
  IMP_CHECK(system.MaintainAll().ok());

  for (const std::string& q : queries) {
    auto result = system.Query(q);
    IMP_CHECK(result.ok());
    snap.final_results.push_back(result.value().ToString());
  }
  // After the final readmitting queries, one more round brings every
  // sketch to the same watermark in both twins.
  IMP_CHECK(system.MaintainAll().ok());
  for (SketchEntry* entry : system.sketches().AllEntries()) {
    snap.sketch_bits.push_back(entry->sketch.fragments.SetBits());
    snap.versions.push_back(entry->sketch.valid_version);
  }
  snap.stable_version = db.StableVersion();
  snap.policy_recaptures = system.stats().policy_recaptures;
  snap.sketches_evicted = system.stats().sketches_evicted;
  snap.policy_switches = system.stats().policy_switches;
  return snap;
}

TEST(PolicySoakTest, CostBasedMatchesAlwaysIncrementalTwin) {
  for (uint64_t seed : {13u, 59u}) {
    SoakSnapshot fixed = RunSoak(PolicyMode::kFixed, seed);
    SoakSnapshot tuned = RunSoak(PolicyMode::kCostBased, seed);
    const std::string label = "seed " + std::to_string(seed);

    // The hard gate: every query result and every sketch is bit-identical
    // over the same watermarks, whatever the tuned run decided.
    EXPECT_EQ(fixed.mid_results, tuned.mid_results) << label;
    EXPECT_EQ(fixed.final_results, tuned.final_results) << label;
    ASSERT_EQ(fixed.sketch_bits.size(), tuned.sketch_bits.size()) << label;
    for (size_t i = 0; i < fixed.sketch_bits.size(); ++i) {
      EXPECT_EQ(fixed.sketch_bits[i], tuned.sketch_bits[i])
          << label << ": sketch " << i << " diverged";
      EXPECT_EQ(fixed.versions[i], tuned.versions[i])
          << label << ": version " << i << " diverged";
    }
    EXPECT_EQ(fixed.stable_version, tuned.stable_version) << label;

    // The tuned run genuinely exercised the policies it claims to have.
    EXPECT_GE(tuned.policy_recaptures, 1u) << label;
    EXPECT_GE(tuned.sketches_evicted, 1u) << label;
    EXPECT_GE(tuned.policy_switches, 2u) << label;
    // ...and the fixed twin stayed on the escape hatch.
    EXPECT_EQ(fixed.policy_recaptures, 0u) << label;
    EXPECT_EQ(fixed.sketches_evicted, 0u) << label;
    EXPECT_EQ(fixed.policy_switches, 0u) << label;
  }
}

}  // namespace
}  // namespace imp
