// Integration tests for the Maintainer: the full incremental maintenance
// procedure I of Def. 4.5 over complete query plans, including the paper's
// running examples, selection push-down, and recapture-on-truncation.

#include <gtest/gtest.h>

#include "imp/maintainer.h"
#include "sketch/capture.h"
#include "test_util.h"
#include "workload/synthetic.h"

namespace imp {
namespace {

// ---- Fig. 5 end-to-end --------------------------------------------------------

class Fig5Test : public ::testing::Test {
 protected:
  void SetUp() override {
    LoadFig5Example(&db_);
    IMP_CHECK(catalog_.Register(Fig5PartitionR()).ok());
    IMP_CHECK(catalog_.Register(Fig5PartitionS()).ok());
  }
  Database db_;
  PartitionCatalog catalog_;
};

TEST_F(Fig5Test, InitializeComputesFig5StartSketch) {
  Maintainer m(&db_, &catalog_, MustBind(db_, kFig5Query));
  auto sketch = m.Initialize();
  ASSERT_TRUE(sketch.ok());
  // Before the delta: P_R = {f2}, P_S = {g1} -> global {1, 2}.
  EXPECT_EQ(sketch.value().fragments.SetBits(), (std::vector<size_t>{1, 2}));
}

TEST_F(Fig5Test, Example51InsertProducesSketchDelta) {
  Maintainer m(&db_, &catalog_, MustBind(db_, kFig5Query));
  ASSERT_TRUE(m.Initialize().ok());
  // Δ+(5, 8) into R (Ex. 5.1).
  ASSERT_TRUE(db_.Insert("r", {{Value::Int(5), Value::Int(8)}}).ok());
  auto delta = m.MaintainFromBackend();
  ASSERT_TRUE(delta.ok());
  // ΔP = Δ+{f1, g2} = global {0, 3}.
  EXPECT_EQ(delta.value().added, (std::vector<size_t>{0, 3}));
  EXPECT_TRUE(delta.value().removed.empty());
  EXPECT_EQ(m.sketch().fragments.SetBits(),
            (std::vector<size_t>{0, 1, 2, 3}));
  EXPECT_EQ(m.maintained_version(), db_.CurrentVersion());
}

TEST_F(Fig5Test, DeletingTheInsertRestoresTheSketch) {
  Maintainer m(&db_, &catalog_, MustBind(db_, kFig5Query));
  ASSERT_TRUE(m.Initialize().ok());
  ASSERT_TRUE(db_.Insert("r", {{Value::Int(5), Value::Int(8)}}).ok());
  ASSERT_TRUE(m.MaintainFromBackend().ok());
  ASSERT_TRUE(db_.Delete("r", [](const Tuple& row) {
                  return row[0] == Value::Int(5);
                }).ok());
  auto delta = m.MaintainFromBackend();
  ASSERT_TRUE(delta.ok());
  EXPECT_EQ(delta.value().removed, (std::vector<size_t>{0, 3}));
  EXPECT_EQ(m.sketch().fragments.SetBits(), (std::vector<size_t>{1, 2}));
}

TEST_F(Fig5Test, MaintainedSketchMatchesRecapture) {
  Maintainer m(&db_, &catalog_, MustBind(db_, kFig5Query));
  ASSERT_TRUE(m.Initialize().ok());
  // A batch with inserts into both tables and a delete.
  ASSERT_TRUE(db_.Insert("r", {{Value::Int(5), Value::Int(8)},
                               {Value::Int(2), Value::Int(9)}}).ok());
  ASSERT_TRUE(db_.Insert("s", {{Value::Int(3), Value::Int(9)}}).ok());
  ASSERT_TRUE(db_.Delete("s", [](const Tuple& row) {
                  return row[0] == Value::Int(6);
                }).ok());
  ASSERT_TRUE(m.MaintainFromBackend().ok());

  CaptureEngine capture(&db_, &catalog_);
  auto accurate = capture.Capture(m.plan());
  ASSERT_TRUE(accurate.ok());
  // Def. 4.5 correctness: maintained sketch over-approximates the accurate
  // one. For this workload it is exactly accurate.
  EXPECT_TRUE(m.sketch().Covers(accurate.value()));
}

// ---- Running example (sales) ----------------------------------------------------

TEST(SalesMaintainerTest, Example12StaleSketchRepaired) {
  Database db;
  LoadSalesExample(&db);
  PartitionCatalog catalog;
  ASSERT_TRUE(catalog.Register(SalesPricePartition()).ok());
  Maintainer m(&db, &catalog, MustBind(db, kSalesQTop));
  auto initial = m.Initialize();
  ASSERT_TRUE(initial.ok());
  EXPECT_EQ(initial.value().fragments.SetBits(), (std::vector<size_t>{2, 3}));

  // Ex. 1.2: insert s8; the sketch must gain ρ2 (the HP rows' fragment).
  ASSERT_TRUE(db.Insert("sales", {{Value::Int(8), Value::String("HP"),
                                   Value::String("HP ProBook 650 G10"),
                                   Value::Int(1299), Value::Int(1)}})
                  .ok());
  auto delta = m.MaintainFromBackend();
  ASSERT_TRUE(delta.ok());
  EXPECT_EQ(delta.value().added, std::vector<size_t>{1});
  EXPECT_EQ(m.sketch().fragments.SetBits(), (std::vector<size_t>{1, 2, 3}));
}

// ---- Selection push-down ---------------------------------------------------------

class PushdownTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticSpec spec;
    spec.name = "t";
    spec.num_rows = 2000;
    spec.num_groups = 50;
    IMP_CHECK(CreateSyntheticTable(&db_, spec).ok());
    IMP_CHECK(catalog_
                  .Register(RangePartition::EquiWidthInt("t", "a", 1, 0, 49,
                                                         10))
                  .ok());
  }
  Database db_;
  PartitionCatalog catalog_;
};

TEST_F(PushdownTest, WherePredicatePushedIntoDeltaFetch) {
  PlanPtr plan = MustBind(
      db_, "SELECT a, avg(c) AS ac FROM t WHERE b < 60 GROUP BY a "
           "HAVING avg(c) > 0");
  Maintainer m(&db_, &catalog_, plan);
  ExprPtr pred = m.DeltaPredicateExpr("t");
  ASSERT_NE(pred, nullptr);
  // The predicate filters on b (column 2 of t).
  auto fn = m.DeltaPredicate("t");
  Tuple row(11, Value::Int(0));
  row[2] = Value::Int(10);
  EXPECT_TRUE(fn(row));
  row[2] = Value::Int(100);
  EXPECT_FALSE(fn(row));
}

TEST_F(PushdownTest, PushdownDisabledByOption) {
  PlanPtr plan = MustBind(
      db_, "SELECT a, avg(c) AS ac FROM t WHERE b < 60 GROUP BY a");
  MaintainerOptions opts;
  opts.selection_pushdown = false;
  Maintainer m(&db_, &catalog_, plan, opts);
  EXPECT_EQ(m.DeltaPredicateExpr("t"), nullptr);
}

TEST_F(PushdownTest, HavingConditionIsNotPushed) {
  // HAVING sits above the (stateful) aggregate: not pushable.
  PlanPtr plan = MustBind(
      db_, "SELECT a, avg(c) AS ac FROM t GROUP BY a HAVING avg(c) > 10");
  Maintainer m(&db_, &catalog_, plan);
  EXPECT_EQ(m.DeltaPredicateExpr("t"), nullptr);
}

TEST_F(PushdownTest, PushdownPreservesMaintenanceResult) {
  PlanPtr plan = MustBind(
      db_, "SELECT a, sum(c) AS sc FROM t WHERE b < 60 GROUP BY a "
           "HAVING sum(c) > 500");
  MaintainerOptions with, without;
  without.selection_pushdown = false;
  Maintainer m1(&db_, &catalog_, plan, with);
  Maintainer m2(&db_, &catalog_, plan, without);
  ASSERT_TRUE(m1.Initialize().ok());
  ASSERT_TRUE(m2.Initialize().ok());

  Rng rng(5);
  SyntheticSpec spec;
  spec.num_groups = 50;
  std::vector<Tuple> rows;
  for (int i = 0; i < 200; ++i) {
    rows.push_back(SyntheticRow(spec, 100000 + i, &rng));
  }
  ASSERT_TRUE(db_.Insert("t", rows).ok());
  ASSERT_TRUE(m1.MaintainFromBackend().ok());
  ASSERT_TRUE(m2.MaintainFromBackend().ok());
  EXPECT_EQ(m1.sketch().fragments, m2.sketch().fragments);
}

// ---- Recapture on truncation ------------------------------------------------------

TEST(RecaptureTest, TopKBufferExhaustionRecapturesTransparently) {
  Database db;
  Schema schema;
  schema.AddColumn("g", ValueType::kInt);
  schema.AddColumn("v", ValueType::kInt);
  ASSERT_TRUE(db.CreateTable("t", schema).ok());
  std::vector<Tuple> rows;
  for (int64_t i = 0; i < 100; ++i) {
    rows.push_back({Value::Int(i), Value::Int(i * 10)});
  }
  ASSERT_TRUE(db.BulkLoad("t", rows).ok());
  PartitionCatalog catalog;
  ASSERT_TRUE(
      catalog.Register(RangePartition::EquiWidthInt("t", "v", 1, 0, 990, 10))
          .ok());

  PlanPtr plan = MustBind(db, "SELECT g, v FROM t ORDER BY v LIMIT 5");
  MaintainerOptions opts;
  opts.topk_buffer = 8;
  Maintainer m(&db, &catalog, plan, opts);
  ASSERT_TRUE(m.Initialize().ok());

  // Delete the 10 smallest rows: the truncated buffer (8) cannot answer,
  // so the maintainer must transparently recapture.
  ASSERT_TRUE(db.Delete("t", [](const Tuple& row) {
                  return row[1].AsInt() < 100;
                }).ok());
  auto delta = m.MaintainFromBackend();
  ASSERT_TRUE(delta.ok());
  EXPECT_GE(m.stats().recaptures, 1u);

  // After recapture the sketch must match a fresh capture.
  CaptureEngine capture(&db, &catalog);
  auto accurate = capture.Capture(plan);
  ASSERT_TRUE(accurate.ok());
  EXPECT_EQ(m.sketch().fragments, accurate.value().fragments);
}

// ---- Maintainer vs full recapture on synthetic workloads ---------------------------

TEST(MaintainerEquivalenceTest, HavingQuerySketchTracksRecapture) {
  Database db;
  SyntheticSpec spec;
  spec.name = "t";
  spec.num_rows = 3000;
  spec.num_groups = 40;
  ASSERT_TRUE(CreateSyntheticTable(&db, spec).ok());
  PartitionCatalog catalog;
  ASSERT_TRUE(
      catalog.Register(RangePartition::EquiWidthInt("t", "a", 1, 0, 39, 8))
          .ok());
  PlanPtr plan = MustBind(
      db, "SELECT a, sum(b) AS sb FROM t GROUP BY a HAVING sum(b) > 4000");
  Maintainer m(&db, &catalog, plan);
  ASSERT_TRUE(m.Initialize().ok());

  Rng rng(17);
  CaptureEngine capture(&db, &catalog);
  for (int round = 0; round < 5; ++round) {
    // Mixed insert + delete batch.
    std::vector<Tuple> rows;
    for (int i = 0; i < 50; ++i) {
      rows.push_back(SyntheticRow(spec, 50000 + round * 100 + i, &rng));
    }
    ASSERT_TRUE(db.Insert("t", rows).ok());
    int64_t kill_group = rng.UniformInt(0, 39);
    ASSERT_TRUE(db.Delete("t", [&](const Tuple& row) {
                    return row[1] == Value::Int(kill_group);
                  }).ok());

    ASSERT_TRUE(m.MaintainFromBackend().ok());
    auto accurate = capture.Capture(plan);
    ASSERT_TRUE(accurate.ok());
    // Theorem 6.1: the maintained sketch over-approximates the accurate
    // sketch for the updated database.
    EXPECT_TRUE(m.sketch().Covers(accurate.value()))
        << "round " << round << ": maintained "
        << m.sketch().ToString() << " vs accurate "
        << accurate.value().ToString();
  }
}

TEST(MaintainerStateTest, StateBytesGrowWithGroups) {
  Database db;
  SyntheticSpec small, large;
  small.name = "small";
  small.num_rows = 500;
  small.num_groups = 10;
  large.name = "large";
  large.num_rows = 500;
  large.num_groups = 400;
  ASSERT_TRUE(CreateSyntheticTable(&db, small).ok());
  ASSERT_TRUE(CreateSyntheticTable(&db, large).ok());
  PartitionCatalog catalog;
  ASSERT_TRUE(catalog
                  .Register(RangePartition::EquiWidthInt("small", "a", 1, 0,
                                                         9, 4))
                  .ok());
  ASSERT_TRUE(catalog
                  .Register(RangePartition::EquiWidthInt("large", "a", 1, 0,
                                                         399, 4))
                  .ok());
  Maintainer ms(&db, &catalog,
                MustBind(db, "SELECT a, sum(b) AS s FROM small GROUP BY a"));
  Maintainer ml(&db, &catalog,
                MustBind(db, "SELECT a, sum(b) AS s FROM large GROUP BY a"));
  ASSERT_TRUE(ms.Initialize().ok());
  ASSERT_TRUE(ml.Initialize().ok());
  EXPECT_GT(ml.StateBytes(), ms.StateBytes());
}

}  // namespace
}  // namespace imp
