// Unit tests for the storage backend: chunked tables, versioned updates,
// delta scans with push-down predicates.

#include <gtest/gtest.h>

#include "storage/database.h"

namespace imp {
namespace {

Schema TwoColSchema() {
  Schema s;
  s.AddColumn("id", ValueType::kInt);
  s.AddColumn("v", ValueType::kInt);
  return s;
}

Tuple Row(int64_t id, int64_t v) { return Tuple{Value::Int(id), Value::Int(v)}; }

TEST(DataChunkTest, AppendAndRead) {
  DataChunk chunk(2);
  chunk.AppendRow(Row(1, 10));
  chunk.AppendRow(Row(2, 20));
  EXPECT_EQ(chunk.num_rows(), 2u);
  EXPECT_EQ(chunk.At(1, 1), Value::Int(20));
  EXPECT_EQ(chunk.GetRow(0), Row(1, 10));
}

TEST(TableTest, AppendAcrossChunks) {
  Table t("t", TwoColSchema());
  const size_t n = DataChunk::kDefaultCapacity * 2 + 17;
  for (size_t i = 0; i < n; ++i) t.AppendRow(Row(static_cast<int64_t>(i), 0));
  EXPECT_EQ(t.NumRows(), n);
  EXPECT_GE(t.chunks().size(), 3u);
  size_t seen = 0;
  t.ForEachRow([&](const Tuple& row) {
    EXPECT_EQ(row[0], Value::Int(static_cast<int64_t>(seen)));
    ++seen;
  });
  EXPECT_EQ(seen, n);
}

TEST(TableTest, DeleteWhereRebuilds) {
  Table t("t", TwoColSchema());
  for (int64_t i = 0; i < 100; ++i) t.AppendRow(Row(i, i % 10));
  auto removed = t.DeleteWhere(
      [](const Tuple& row) { return row[1] == Value::Int(3); });
  EXPECT_EQ(removed.size(), 10u);
  EXPECT_EQ(t.NumRows(), 90u);
  t.ForEachRow([](const Tuple& row) { EXPECT_NE(row[1], Value::Int(3)); });
}

TEST(TableTest, DeleteWhereLimit) {
  Table t("t", TwoColSchema());
  for (int64_t i = 0; i < 100; ++i) t.AppendRow(Row(i, 1));
  auto removed = t.DeleteWhereLimit([](const Tuple&) { return true; }, 7);
  EXPECT_EQ(removed.size(), 7u);
  EXPECT_EQ(t.NumRows(), 93u);
}

TEST(TableTest, ColumnMinMax) {
  Table t("t", TwoColSchema());
  for (int64_t i = 0; i < 50; ++i) t.AppendRow(Row(i, 100 - i));
  auto [min, max] = t.ColumnMinMax(1);
  EXPECT_EQ(min, Value::Int(51));
  EXPECT_EQ(max, Value::Int(100));
}

TEST(DatabaseTest, CreateAndDuplicateTable) {
  Database db;
  EXPECT_TRUE(db.CreateTable("t", TwoColSchema()).ok());
  EXPECT_TRUE(db.HasTable("t"));
  EXPECT_FALSE(db.CreateTable("t", TwoColSchema()).ok());
  EXPECT_EQ(db.GetTable("nope"), nullptr);
}

TEST(DatabaseTest, BulkLoadDoesNotBumpVersionOrLogDeltas) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", TwoColSchema()).ok());
  ASSERT_TRUE(db.BulkLoad("t", {Row(1, 1), Row(2, 2)}).ok());
  EXPECT_EQ(db.CurrentVersion(), 0u);
  EXPECT_EQ(db.GetTable("t")->delta_log().size(), 0u);
  EXPECT_EQ(db.GetTable("t")->NumRows(), 2u);
}

TEST(DatabaseTest, InsertBumpsVersionAndLogsDelta) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", TwoColSchema()).ok());
  auto v1 = db.Insert("t", {Row(1, 1)});
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(v1.value(), 1u);
  auto v2 = db.Insert("t", {Row(2, 2), Row(3, 3)});
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(v2.value(), 2u);
  EXPECT_EQ(db.GetTable("t")->delta_log().size(), 3u);
  EXPECT_EQ(db.GetTable("t")->NumRows(), 3u);
}

TEST(DatabaseTest, DeleteLogsNegativeDelta) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", TwoColSchema()).ok());
  ASSERT_TRUE(db.BulkLoad("t", {Row(1, 1), Row(2, 2), Row(3, 3)}).ok());
  auto v = db.Delete(
      "t", [](const Tuple& row) { return row[0].AsInt() >= 2; });
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(db.GetTable("t")->NumRows(), 1u);
  const DeltaLog& log = db.GetTable("t")->delta_log();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log.At(0).mult, -1);
  EXPECT_EQ(log.At(1).mult, -1);
}

TEST(DatabaseTest, ScanDeltaVersionWindow) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", TwoColSchema()).ok());
  ASSERT_TRUE(db.Insert("t", {Row(1, 1)}).ok());   // v1
  ASSERT_TRUE(db.Insert("t", {Row(2, 2)}).ok());   // v2
  ASSERT_TRUE(db.Insert("t", {Row(3, 3)}).ok());   // v3
  TableDelta d = db.ScanDelta("t", 1, 2);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d.records[0].row, Row(2, 2));
  // Full window.
  EXPECT_EQ(db.ScanDelta("t", 0, 3).size(), 3u);
  // Empty window.
  EXPECT_EQ(db.ScanDelta("t", 3, 3).size(), 0u);
}

TEST(DatabaseTest, ScanDeltaWithPushdownPredicate) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", TwoColSchema()).ok());
  ASSERT_TRUE(db.Insert("t", {Row(1, 5), Row(2, 50), Row(3, 500)}).ok());
  TableDelta d = db.ScanDelta("t", 0, 1, [](const Tuple& row) {
    return row[1].AsInt() < 100;  // the Sec. 7.2 delta pre-filter
  });
  EXPECT_EQ(d.size(), 2u);
}

TEST(DatabaseTest, PendingDeltaCount) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", TwoColSchema()).ok());
  EXPECT_EQ(db.PendingDeltaCount("t", 0), 0u);
  ASSERT_TRUE(db.Insert("t", {Row(1, 1), Row(2, 2)}).ok());
  EXPECT_EQ(db.PendingDeltaCount("t", 0), 2u);
  EXPECT_EQ(db.PendingDeltaCount("t", db.CurrentVersion()), 0u);
}

TEST(DatabaseTest, HasPendingDeltaMatchesCount) {
  // The O(1) staleness check must agree with the full count everywhere.
  Database db;
  ASSERT_TRUE(db.CreateTable("t", TwoColSchema()).ok());
  EXPECT_FALSE(db.HasPendingDelta("t", 0));
  EXPECT_FALSE(db.HasPendingDelta("ghost", 0));
  ASSERT_TRUE(db.Insert("t", {Row(1, 1)}).ok());  // v1
  ASSERT_TRUE(db.Insert("t", {Row(2, 2)}).ok());  // v2
  for (uint64_t v = 0; v <= db.CurrentVersion(); ++v) {
    EXPECT_EQ(db.HasPendingDelta("t", v), db.PendingDeltaCount("t", v) > 0)
        << "from_version " << v;
  }
}

TEST(DatabaseTest, DeltaLogTruncation) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", TwoColSchema()).ok());
  ASSERT_TRUE(db.Insert("t", {Row(1, 1)}).ok());  // v1
  ASSERT_TRUE(db.Insert("t", {Row(2, 2)}).ok());  // v2
  db.GetMutableTable("t")->TruncateDeltaLog(1);
  EXPECT_EQ(db.GetTable("t")->delta_log().size(), 1u);
  EXPECT_EQ(db.GetTable("t")->delta_log().At(0).version, 2u);
}

TEST(DatabaseTest, InsertIntoMissingTableFails) {
  Database db;
  EXPECT_FALSE(db.Insert("nope", {Row(1, 1)}).ok());
  EXPECT_FALSE(db.Delete("nope", [](const Tuple&) { return true; }).ok());
}

}  // namespace
}  // namespace imp
