// Unit tests for the storage backend: chunked tables, versioned updates,
// delta scans with push-down predicates, and the lock-free read path —
// immutable epoch-stamped TableSnapshots (copy-on-write chunk sharing),
// ReadViews pinning a consistent watermark across tables, and the
// segmented wait-free delta log under truncation.

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <thread>

#include "common/hash.h"
#include "storage/database.h"

namespace imp {
namespace {

Schema TwoColSchema() {
  Schema s;
  s.AddColumn("id", ValueType::kInt);
  s.AddColumn("v", ValueType::kInt);
  return s;
}

Tuple Row(int64_t id, int64_t v) { return Tuple{Value::Int(id), Value::Int(v)}; }

TEST(DataChunkTest, AppendAndRead) {
  DataChunk chunk(2);
  chunk.AppendRow(Row(1, 10));
  chunk.AppendRow(Row(2, 20));
  EXPECT_EQ(chunk.num_rows(), 2u);
  EXPECT_EQ(chunk.At(1, 1), Value::Int(20));
  EXPECT_EQ(chunk.GetRow(0), Row(1, 10));
}

TEST(TableTest, AppendAcrossChunks) {
  Table t("t", TwoColSchema());
  const size_t n = DataChunk::kDefaultCapacity * 2 + 17;
  for (size_t i = 0; i < n; ++i) t.AppendRow(Row(static_cast<int64_t>(i), 0));
  EXPECT_EQ(t.NumRows(), n);
  EXPECT_GE(t.chunks().size(), 3u);
  size_t seen = 0;
  t.ForEachRow([&](const Tuple& row) {
    EXPECT_EQ(row[0], Value::Int(static_cast<int64_t>(seen)));
    ++seen;
  });
  EXPECT_EQ(seen, n);
}

TEST(TableTest, DeleteWhereRebuilds) {
  Table t("t", TwoColSchema());
  for (int64_t i = 0; i < 100; ++i) t.AppendRow(Row(i, i % 10));
  auto removed = t.DeleteWhere(
      [](const Tuple& row) { return row[1] == Value::Int(3); });
  EXPECT_EQ(removed.size(), 10u);
  EXPECT_EQ(t.NumRows(), 90u);
  t.ForEachRow([](const Tuple& row) { EXPECT_NE(row[1], Value::Int(3)); });
}

TEST(TableTest, DeleteWhereLimit) {
  Table t("t", TwoColSchema());
  for (int64_t i = 0; i < 100; ++i) t.AppendRow(Row(i, 1));
  auto removed = t.DeleteWhereLimit([](const Tuple&) { return true; }, 7);
  EXPECT_EQ(removed.size(), 7u);
  EXPECT_EQ(t.NumRows(), 93u);
}

TEST(TableTest, ColumnMinMax) {
  Table t("t", TwoColSchema());
  for (int64_t i = 0; i < 50; ++i) t.AppendRow(Row(i, 100 - i));
  auto [min, max] = t.ColumnMinMax(1);
  EXPECT_EQ(min, Value::Int(51));
  EXPECT_EQ(max, Value::Int(100));
}

TEST(DatabaseTest, CreateAndDuplicateTable) {
  Database db;
  EXPECT_TRUE(db.CreateTable("t", TwoColSchema()).ok());
  EXPECT_TRUE(db.HasTable("t"));
  EXPECT_FALSE(db.CreateTable("t", TwoColSchema()).ok());
  EXPECT_EQ(db.GetTable("nope"), nullptr);
}

TEST(DatabaseTest, BulkLoadDoesNotBumpVersionOrLogDeltas) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", TwoColSchema()).ok());
  ASSERT_TRUE(db.BulkLoad("t", {Row(1, 1), Row(2, 2)}).ok());
  EXPECT_EQ(db.CurrentVersion(), 0u);
  EXPECT_EQ(db.GetTable("t")->delta_log().size(), 0u);
  EXPECT_EQ(db.GetTable("t")->NumRows(), 2u);
}

TEST(DatabaseTest, InsertBumpsVersionAndLogsDelta) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", TwoColSchema()).ok());
  auto v1 = db.Insert("t", {Row(1, 1)});
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(v1.value(), 1u);
  auto v2 = db.Insert("t", {Row(2, 2), Row(3, 3)});
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(v2.value(), 2u);
  EXPECT_EQ(db.GetTable("t")->delta_log().size(), 3u);
  EXPECT_EQ(db.GetTable("t")->NumRows(), 3u);
}

TEST(DatabaseTest, DeleteLogsNegativeDelta) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", TwoColSchema()).ok());
  ASSERT_TRUE(db.BulkLoad("t", {Row(1, 1), Row(2, 2), Row(3, 3)}).ok());
  auto v = db.Delete(
      "t", [](const Tuple& row) { return row[0].AsInt() >= 2; });
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(db.GetTable("t")->NumRows(), 1u);
  const DeltaLog& log = db.GetTable("t")->delta_log();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log.At(0).mult, -1);
  EXPECT_EQ(log.At(1).mult, -1);
}

TEST(DatabaseTest, ScanDeltaVersionWindow) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", TwoColSchema()).ok());
  ASSERT_TRUE(db.Insert("t", {Row(1, 1)}).ok());   // v1
  ASSERT_TRUE(db.Insert("t", {Row(2, 2)}).ok());   // v2
  ASSERT_TRUE(db.Insert("t", {Row(3, 3)}).ok());   // v3
  TableDelta d = db.ScanDelta("t", 1, 2);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d.records[0].row, Row(2, 2));
  // Full window.
  EXPECT_EQ(db.ScanDelta("t", 0, 3).size(), 3u);
  // Empty window.
  EXPECT_EQ(db.ScanDelta("t", 3, 3).size(), 0u);
}

TEST(DatabaseTest, ScanDeltaWithPushdownPredicate) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", TwoColSchema()).ok());
  ASSERT_TRUE(db.Insert("t", {Row(1, 5), Row(2, 50), Row(3, 500)}).ok());
  TableDelta d = db.ScanDelta("t", 0, 1, [](const Tuple& row) {
    return row[1].AsInt() < 100;  // the Sec. 7.2 delta pre-filter
  });
  EXPECT_EQ(d.size(), 2u);
}

TEST(DatabaseTest, PendingDeltaCount) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", TwoColSchema()).ok());
  EXPECT_EQ(db.PendingDeltaCount("t", 0), 0u);
  ASSERT_TRUE(db.Insert("t", {Row(1, 1), Row(2, 2)}).ok());
  EXPECT_EQ(db.PendingDeltaCount("t", 0), 2u);
  EXPECT_EQ(db.PendingDeltaCount("t", db.CurrentVersion()), 0u);
}

TEST(DatabaseTest, HasPendingDeltaMatchesCount) {
  // The O(1) staleness check must agree with the full count everywhere.
  Database db;
  ASSERT_TRUE(db.CreateTable("t", TwoColSchema()).ok());
  EXPECT_FALSE(db.HasPendingDelta("t", 0));
  EXPECT_FALSE(db.HasPendingDelta("ghost", 0));
  ASSERT_TRUE(db.Insert("t", {Row(1, 1)}).ok());  // v1
  ASSERT_TRUE(db.Insert("t", {Row(2, 2)}).ok());  // v2
  for (uint64_t v = 0; v <= db.CurrentVersion(); ++v) {
    EXPECT_EQ(db.HasPendingDelta("t", v), db.PendingDeltaCount("t", v) > 0)
        << "from_version " << v;
  }
}

TEST(DatabaseTest, DeltaLogTruncation) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", TwoColSchema()).ok());
  ASSERT_TRUE(db.Insert("t", {Row(1, 1)}).ok());  // v1
  ASSERT_TRUE(db.Insert("t", {Row(2, 2)}).ok());  // v2
  db.GetMutableTable("t")->TruncateDeltaLog(1);
  EXPECT_EQ(db.GetTable("t")->delta_log().size(), 1u);
  EXPECT_EQ(db.GetTable("t")->delta_log().At(0).version, 2u);
}

TEST(DatabaseTest, InsertIntoMissingTableFails) {
  Database db;
  EXPECT_FALSE(db.Insert("nope", {Row(1, 1)}).ok());
  EXPECT_FALSE(db.Delete("nope", [](const Tuple&) { return true; }).ok());
}

// ---- TableSnapshot: immutability, COW sharing, epoch monotonicity ----------

TEST(TableSnapshotTest, PinnedSnapshotImmutableAcrossAppends) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", TwoColSchema()).ok());
  ASSERT_TRUE(db.BulkLoad("t", {Row(1, 10), Row(2, 20)}).ok());
  auto pinned = db.GetTable("t")->Snapshot();
  ASSERT_EQ(pinned->num_rows(), 2u);

  // The insert lands in the same (shared) tail chunk: the writer must
  // clone it (copy-on-write), leaving the pinned snapshot bit-identical.
  ASSERT_TRUE(db.Insert("t", {Row(3, 30)}).ok());
  EXPECT_EQ(pinned->num_rows(), 2u);
  ASSERT_EQ(pinned->chunks().size(), 1u);
  EXPECT_EQ(pinned->chunks()[0]->num_rows(), 2u);
  EXPECT_EQ(pinned->chunks()[0]->At(1, 1), Value::Int(20));
  // The pinned zone map is frozen too (the clone got the update).
  EXPECT_EQ(pinned->chunks()[0]->zone(0).max, Value::Int(2));

  auto fresh = db.GetTable("t")->Snapshot();
  EXPECT_EQ(fresh->num_rows(), 3u);
  EXPECT_EQ(fresh->chunks()[0]->At(2, 0), Value::Int(3));
  EXPECT_EQ(fresh->chunks()[0]->zone(0).max, Value::Int(3));
  // Distinct physical tail chunks: the clone, not the original, grew.
  EXPECT_NE(fresh->chunks()[0].get(), pinned->chunks()[0].get());
}

TEST(TableSnapshotTest, DeleteRebuildsWhilePinnedSnapshotKeepsOldRows) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", TwoColSchema()).ok());
  ASSERT_TRUE(db.BulkLoad("t", {Row(1, 1), Row(2, 2), Row(3, 3)}).ok());
  auto pinned = db.GetTable("t")->Snapshot();
  ASSERT_TRUE(db.Delete("t", [](const Tuple& r) {
                  return r[0].AsInt() >= 2;
                }).ok());
  EXPECT_EQ(pinned->num_rows(), 3u);  // epoch-based reclamation: still alive
  EXPECT_EQ(db.GetTable("t")->Snapshot()->num_rows(), 1u);
}

TEST(TableSnapshotTest, EpochStrictlyIncreasesPerPublication) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", TwoColSchema()).ok());
  uint64_t e0 = db.GetTable("t")->SnapshotEpoch();
  ASSERT_TRUE(db.BulkLoad("t", {Row(1, 1)}).ok());
  uint64_t e1 = db.GetTable("t")->SnapshotEpoch();
  ASSERT_TRUE(db.Insert("t", {Row(2, 2)}).ok());
  uint64_t e2 = db.GetTable("t")->SnapshotEpoch();
  ASSERT_TRUE(db.Delete("t", [](const Tuple&) { return true; }, 1).ok());
  uint64_t e3 = db.GetTable("t")->SnapshotEpoch();
  EXPECT_LT(e0, e1);
  EXPECT_LT(e1, e2);
  EXPECT_LT(e2, e3);
}

TEST(TableSnapshotTest, VersionStampIsLastModifyingStatement) {
  Database db;
  ASSERT_TRUE(db.CreateTable("a", TwoColSchema()).ok());
  ASSERT_TRUE(db.CreateTable("b", TwoColSchema()).ok());
  EXPECT_EQ(db.GetTable("a")->Snapshot()->version(), 0u);
  ASSERT_TRUE(db.Insert("a", {Row(1, 1)}).ok());  // v1
  ASSERT_TRUE(db.Insert("b", {Row(2, 2)}).ok());  // v2
  ASSERT_TRUE(db.Insert("a", {Row(3, 3)}).ok());  // v3
  EXPECT_EQ(db.GetTable("a")->Snapshot()->version(), 3u);
  EXPECT_EQ(db.GetTable("b")->Snapshot()->version(), 2u);
}

// ---- ReadView: consistent watermark pinning --------------------------------

TEST(ReadViewTest, PinsConsistentWatermarkAcrossTables) {
  Database db;
  ASSERT_TRUE(db.CreateTable("a", TwoColSchema()).ok());
  ASSERT_TRUE(db.CreateTable("b", TwoColSchema()).ok());
  ASSERT_TRUE(db.Insert("a", {Row(1, 1)}).ok());  // v1
  ASSERT_TRUE(db.Insert("b", {Row(2, 2)}).ok());  // v2
  ReadView view = db.OpenReadView();
  EXPECT_EQ(view.watermark(), 2u);
  EXPECT_EQ(view.NumTables(), 2u);
  EXPECT_EQ(view.TableVersion("a"), 1u);
  EXPECT_EQ(view.TableVersion("b"), 2u);
  ASSERT_NE(view.Find("a"), nullptr);
  EXPECT_EQ(view.Find("a")->num_rows(), 1u);
  EXPECT_EQ(view.Find("ghost"), nullptr);
  EXPECT_EQ(view.TableVersion("ghost"), 0u);
}

TEST(ReadViewTest, PinnedViewUnaffectedByLaterPublishes) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", TwoColSchema()).ok());
  ASSERT_TRUE(db.Insert("t", {Row(1, 1)}).ok());
  ReadView view = db.OpenReadView();
  ASSERT_TRUE(db.Insert("t", {Row(2, 2)}).ok());
  ASSERT_TRUE(db.Insert("t", {Row(3, 3)}).ok());
  // The pinned view stays at its watermark; a fresh view advances.
  EXPECT_EQ(view.watermark(), 1u);
  EXPECT_EQ(view.Find("t")->num_rows(), 1u);
  EXPECT_EQ(view.TableVersion("t"), 1u);
  ReadView fresh = db.OpenReadView();
  EXPECT_EQ(fresh.watermark(), 3u);
  EXPECT_EQ(fresh.Find("t")->num_rows(), 3u);
}

TEST(ReadViewTest, StalenessStampSurvivesDeltaLogTruncation) {
  // The old delta-log staleness probe could be fooled by a truncation
  // sweep dropping exactly the records that proved a sketch stale; the
  // snapshot version stamp a ReadView serves cannot.
  Database db;
  ASSERT_TRUE(db.CreateTable("t", TwoColSchema()).ok());
  ASSERT_TRUE(db.Insert("t", {Row(1, 1)}).ok());  // v1
  ASSERT_TRUE(db.Insert("t", {Row(2, 2)}).ok());  // v2
  db.TruncateDeltaLogs(2);
  EXPECT_FALSE(db.HasPendingDelta("t", 1));  // vacuous: records are gone
  ReadView view = db.OpenReadView();
  EXPECT_GT(view.TableVersion("t"), 1u);  // ...but the stamp still says stale
  EXPECT_EQ(view.TableVersion("t"), 2u);
}

TEST(ReadViewTest, BoundaryVersionsAroundStagedUnpublishedTail) {
  // A staged-but-unpublished statement is invisible: the view opens at the
  // watermark below it and its rows/stamps are absent until publication.
  Database db;
  ASSERT_TRUE(db.CreateTable("t", TwoColSchema()).ok());
  ASSERT_TRUE(db.Insert("t", {Row(1, 1)}).ok());  // v1
  uint64_t v2 = db.AllocateVersion();
  {
    auto session = db.WriteSession("t");
    ASSERT_TRUE(db.StageInsert("t", {Row(2, 2)}, v2).ok());
  }
  ReadView before = db.OpenReadView();
  EXPECT_EQ(before.watermark(), 1u);
  EXPECT_EQ(before.Find("t")->num_rows(), 1u);
  EXPECT_EQ(before.TableVersion("t"), 1u);
  {
    auto session = db.WriteSession("t");
    db.PublishTable("t");
  }
  db.RetireVersion(v2);
  ReadView after = db.OpenReadView();
  EXPECT_EQ(after.watermark(), 2u);
  EXPECT_EQ(after.Find("t")->num_rows(), 2u);
  EXPECT_EQ(after.TableVersion("t"), 2u);
}

// ---- Segmented wait-free delta log -----------------------------------------

TEST(DeltaLogTest, WindowScansAcrossSegmentBoundaries) {
  // Three statements of 600 records each span multiple fixed-capacity
  // segments; window scans and counts must be exact at every boundary.
  Database db;
  ASSERT_TRUE(db.CreateTable("t", TwoColSchema()).ok());
  std::vector<Tuple> rows;
  for (int64_t i = 0; i < 600; ++i) rows.push_back(Row(i, i));
  ASSERT_TRUE(db.Insert("t", rows).ok());  // v1
  ASSERT_TRUE(db.Insert("t", rows).ok());  // v2
  ASSERT_TRUE(db.Insert("t", rows).ok());  // v3
  const DeltaLog& log = db.GetTable("t")->delta_log();
  ASSERT_EQ(log.size(), 1800u);
  EXPECT_EQ(log.At(0).version, 1u);
  EXPECT_EQ(log.At(1799).version, 3u);
  EXPECT_EQ(db.ScanDelta("t", 0, 3).size(), 1800u);
  EXPECT_EQ(db.ScanDelta("t", 1, 2).size(), 600u);
  EXPECT_EQ(db.PendingDeltaCount("t", 2), 600u);
  EXPECT_EQ(db.PendingDeltaCount("t", 3), 0u);
}

TEST(DeltaLogTest, TruncationAtSegmentAndVersionBoundaries) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", TwoColSchema()).ok());
  std::vector<Tuple> rows;
  for (int64_t i = 0; i < 700; ++i) rows.push_back(Row(i, i));
  ASSERT_TRUE(db.Insert("t", rows).ok());  // v1: records 0..699
  ASSERT_TRUE(db.Insert("t", rows).ok());  // v2: records 700..1399
  ASSERT_TRUE(db.Insert("t", {Row(9, 9)}).ok());  // v3
  const DeltaLog& log = db.GetTable("t")->delta_log();
  // Truncating below the oldest version is a no-op.
  db.TruncateDeltaLogs(0);
  EXPECT_EQ(log.size(), 1401u);
  // Drop v1: the cut lands mid-segment (700 is not a segment multiple).
  db.TruncateDeltaLogs(1);
  EXPECT_EQ(log.size(), 701u);
  EXPECT_EQ(log.At(0).version, 2u);
  EXPECT_EQ(db.ScanDelta("t", 0, 3).size(), 701u);
  EXPECT_EQ(db.ScanDelta("t", 2, 3).size(), 1u);
  EXPECT_TRUE(log.HasRecordAfter(2));
  // Drop everything; the wait-free probe goes quiet.
  db.TruncateDeltaLogs(3);
  EXPECT_EQ(log.size(), 0u);
  EXPECT_FALSE(log.HasRecordAfter(0));
  EXPECT_EQ(db.ScanDelta("t", 0, 3).size(), 0u);
  // The log keeps working after a full truncation.
  ASSERT_TRUE(db.Insert("t", {Row(4, 4)}).ok());  // v4
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(log.At(0).version, 4u);
}

// ---- Concurrent publication vs. ReadView opening ---------------------------

TEST(ReadViewTest, ConcurrentPublishesYieldConsistentViews) {
  // One writer inserts single rows alternating between two tables while
  // readers keep opening views: every view must satisfy the serialized
  // invariant rows(a) + rows(b) == watermark (each statement adds exactly
  // one row), per-table stamps never exceed the watermark, and snapshot
  // epochs/watermarks observed by one reader never go backwards. A
  // truncator races the delta logs underneath the scans.
  Database db;
  ASSERT_TRUE(db.CreateTable("a", TwoColSchema()).ok());
  ASSERT_TRUE(db.CreateTable("b", TwoColSchema()).ok());
  constexpr size_t kStatements = 400;
  std::atomic<bool> done{false};

  std::thread writer([&] {
    for (size_t k = 0; k < kStatements; ++k) {
      const char* table = (k % 2 == 0) ? "a" : "b";
      ASSERT_TRUE(db.Insert(table, {Row(static_cast<int64_t>(k), 1)}).ok());
    }
    done.store(true, std::memory_order_release);
  });
  std::thread truncator([&] {
    while (!done.load(std::memory_order_acquire)) {
      db.TruncateDeltaLogs(db.StableVersion() / 2);
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      uint64_t last_watermark = 0;
      uint64_t last_epoch_a = 0;
      bool running = true;
      while (running) {
        running = !done.load(std::memory_order_acquire);
        ReadView view = db.OpenReadView();
        uint64_t w = view.watermark();
        ASSERT_GE(w, last_watermark);  // watermarks only move forward
        last_watermark = w;
        const TableSnapshot* a = view.Find("a");
        const TableSnapshot* b = view.Find("b");
        ASSERT_NE(a, nullptr);
        ASSERT_NE(b, nullptr);
        // The pinned set IS the serialized database at watermark w.
        ASSERT_EQ(a->num_rows() + b->num_rows(), w);
        ASSERT_LE(a->version(), w);
        ASSERT_LE(b->version(), w);
        ASSERT_GE(a->epoch(), last_epoch_a);  // monotone publication epochs
        last_epoch_a = a->epoch();
        // Wait-free window scans race the writer and the truncator; the
        // returned records must stay within the window with non-decreasing
        // versions regardless of what was truncated.
        TableDelta delta = db.ScanDelta("a", w / 2, w);
        uint64_t prev = 0;
        for (const DeltaRecord& rec : delta.records) {
          ASSERT_GT(rec.version, w / 2);
          ASSERT_LE(rec.version, w);
          ASSERT_GE(rec.version, prev);
          prev = rec.version;
        }
      }
    });
  }
  writer.join();
  truncator.join();
  for (std::thread& t : readers) t.join();

  ReadView final_view = db.OpenReadView();
  EXPECT_EQ(final_view.watermark(), kStatements);
  EXPECT_EQ(final_view.Find("a")->num_rows() + final_view.Find("b")->num_rows(),
            kStatements);
}

// ---- Snapshot index shards: equivalence and concurrency --------------------

namespace {

using RowLoc = TableSnapshot::RowLoc;

/// Reference point lookup: full scan of the snapshot in emission order.
std::vector<RowLoc> ScanPoint(const TableSnapshot& snap, size_t col,
                              const Value& key) {
  std::vector<RowLoc> out;
  for (uint32_t c = 0; c < snap.chunks().size(); ++c) {
    const DataChunk& chunk = *snap.chunks()[c];
    for (uint32_t r = 0; r < chunk.num_rows(); ++r) {
      if (chunk.At(r, col) == key) out.push_back({c, r});
    }
  }
  return out;
}

/// Reference range lookup: lo <= v <= hi under Value::Compare, NULLs out.
std::vector<RowLoc> ScanRange(const TableSnapshot& snap, size_t col,
                              const Value& lo, const Value& hi) {
  std::vector<RowLoc> out;
  for (uint32_t c = 0; c < snap.chunks().size(); ++c) {
    const DataChunk& chunk = *snap.chunks()[c];
    for (uint32_t r = 0; r < chunk.num_rows(); ++r) {
      const Value& v = chunk.At(r, col);
      if (v.is_null()) continue;
      if (lo.Compare(v) <= 0 && v.Compare(hi) <= 0) out.push_back({c, r});
    }
  }
  return out;
}

bool SameLocs(const std::vector<RowLoc>& a, const std::vector<RowLoc>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].chunk != b[i].chunk || a[i].row != b[i].row) return false;
  }
  return true;
}

}  // namespace

TEST(SnapshotIndexTest, RandomizedIndexedVsScanEquivalence) {
  // Drive a publication chain with a random mix of appends, deletes and
  // seal-crossing batches while probing every generation's index (point
  // and range) against a brute-force scan of the same snapshot. Old
  // generations stay pinned so carried-forward shards are exercised on
  // both the snapshot that built them and its successors.
  std::mt19937 rng(20260808);
  Database db;
  ASSERT_TRUE(db.CreateTable("t", TwoColSchema()).ok());
  std::vector<std::shared_ptr<const TableSnapshot>> pinned;
  int64_t next = 0;
  auto key_of = [](int64_t i) { return i % 64; };

  for (int step = 0; step < 60; ++step) {
    int action = static_cast<int>(rng() % 10);
    if (action < 6) {
      // Append a batch; occasionally large enough to seal / cross chunks.
      size_t n = 1 + rng() % (action == 0 ? DataChunk::kSealThreshold * 2 : 8);
      std::vector<Tuple> rows;
      for (size_t i = 0; i < n; ++i, ++next) {
        rows.push_back(rng() % 16 == 0
                           ? Tuple{Value::Null(), Value::Int(next)}
                           : Row(key_of(next), next));
      }
      ASSERT_TRUE(db.Insert("t", rows).ok());
    } else if (action < 8) {
      int64_t victim = static_cast<int64_t>(rng() % 64);
      ASSERT_TRUE(db.Delete("t", [&](const Tuple& row) {
                      return row[0] == Value::Int(victim);
                    }).ok());
    }
    auto snap = db.GetTable("t")->Snapshot();
    if (rng() % 3 == 0) pinned.push_back(snap);

    int64_t key = static_cast<int64_t>(rng() % 64);
    EXPECT_TRUE(SameLocs(snap->IndexProbe(0, Value::Int(key)),
                         ScanPoint(*snap, 0, Value::Int(key))))
        << "step " << step;
    int64_t lo = static_cast<int64_t>(rng() % 64);
    int64_t hi = lo + static_cast<int64_t>(rng() % 16);
    EXPECT_TRUE(SameLocs(snap->IndexRangeProbe(0, Value::Int(lo),
                                               Value::Int(hi)),
                         ScanRange(*snap, 0, Value::Int(lo), Value::Int(hi))))
        << "step " << step;
  }
  // Every pinned generation still answers exactly for its own rows.
  for (const auto& snap : pinned) {
    EXPECT_TRUE(SameLocs(snap->IndexProbe(0, Value::Int(7)),
                         ScanPoint(*snap, 0, Value::Int(7))));
    EXPECT_TRUE(SameLocs(snap->IndexRangeProbe(0, Value::Int(10),
                                               Value::Int(30)),
                         ScanRange(*snap, 0, Value::Int(10), Value::Int(30))));
  }
  // Carry-forward really happened: strictly fewer shards built than probed
  // (chunk, generation) pairs would rebuild without sharing.
  EXPECT_GT(db.GetTable("t")->index_stats().shards_reused.load(), 0u);
}

TEST(SnapshotIndexTest, ConcurrentLazyBuildsRacingPublications) {
  // Readers race each other on the lazy shard assembly (first probe wins,
  // losers must reuse) while a writer keeps publishing new generations.
  // Every probe must agree with a scan of the SAME pinned snapshot; TSan
  // runs this under --repeat to hunt assembly/publication races.
  Database db;
  ASSERT_TRUE(db.CreateTable("t", TwoColSchema()).ok());
  std::vector<Tuple> seed;
  for (int64_t i = 0; i < static_cast<int64_t>(DataChunk::kDefaultCapacity); ++i)
    seed.push_back(Row(i % 32, i));
  ASSERT_TRUE(db.BulkLoad("t", seed).ok());
  std::atomic<bool> done{false};

  std::thread writer([&] {
    for (int64_t k = 0; k < 200; ++k) {
      ASSERT_TRUE(db.Insert("t", {Row(k % 32, -k)}).ok());
    }
    done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&, r] {
      std::mt19937 rng(1000 + r);
      // Keep probing for a minimum number of iterations even if the
      // writer drains first, so probes overlap many publications.
      for (int it = 0; it < 40 || !done.load(std::memory_order_acquire);
           ++it) {
        auto snap = db.GetTable("t")->Snapshot();
        int64_t key = static_cast<int64_t>(rng() % 32);
        ASSERT_TRUE(SameLocs(snap->IndexProbe(0, Value::Int(key)),
                             ScanPoint(*snap, 0, Value::Int(key))));
        int64_t lo = static_cast<int64_t>(rng() % 32);
        ASSERT_TRUE(SameLocs(
            snap->IndexRangeProbe(0, Value::Int(lo), Value::Int(lo + 4)),
            ScanRange(*snap, 0, Value::Int(lo), Value::Int(lo + 4))));
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();

  const TableIndexStats& istats = db.GetTable("t")->index_stats();
  EXPECT_GT(istats.point_probes.load(), 0u);
  EXPECT_GT(istats.range_probes.load(), 0u);

  // Deterministic carry-forward coda: the race above can degenerate to a
  // single generation on a slow machine, so force one probe → publish →
  // probe sequence and demand the sealed chunk's shards were reused.
  auto s1 = db.GetTable("t")->Snapshot();
  ASSERT_FALSE(s1->IndexProbe(0, Value::Int(3)).empty());
  ASSERT_FALSE(s1->IndexRangeProbe(0, Value::Int(3), Value::Int(5)).empty());
  uint64_t reused_before = istats.shards_reused.load();
  ASSERT_TRUE(db.Insert("t", {Row(3, -999)}).ok());
  auto s2 = db.GetTable("t")->Snapshot();
  ASSERT_FALSE(s2->IndexProbe(0, Value::Int(3)).empty());
  ASSERT_FALSE(s2->IndexRangeProbe(0, Value::Int(3), Value::Int(5)).empty());
  EXPECT_GT(istats.shards_reused.load(), reused_before);
}

// ---- Typed columnar layout (storage/column_vector) --------------------------

// Column profiles for the typed-vs-boxed twin suite: every encoding plus
// the fallback shapes.
enum ColProfile {
  kProfInt = 0,      // kInt64
  kProfDouble,       // kDouble (integral and fractional values)
  kProfDictStr,      // kDictString (16 distinct)
  kProfFlatStr,      // overflows the dictionary -> kFlatString
  kProfNullHeavyInt, // 60% NULL
  kProfMixed,        // conflicting types -> boxed fallback
  kNumProfiles,
};

Value RandomProfileCell(std::mt19937* rng, int profile) {
  auto pick = [&](int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>((*rng)() % static_cast<uint64_t>(hi - lo + 1));
  };
  if (profile != kProfMixed && pick(0, 9) == 0) return Value::Null();
  switch (profile) {
    case kProfInt:
      return Value::Int(pick(-1000, 1000));
    case kProfDouble:
      return pick(0, 1) == 0 ? Value::Double(static_cast<double>(pick(-50, 50)))
                             : Value::Double(static_cast<double>(pick(-500, 500)) / 7.0);
    case kProfDictStr:
      return Value::String("tag" + std::to_string(pick(0, 15)));
    case kProfFlatStr:
      return Value::String("payload-" + std::to_string(pick(0, 5000)));
    case kProfNullHeavyInt:
      return pick(0, 9) < 6 ? Value::Null() : Value::Int(pick(0, 99));
    default:
      switch (pick(0, 2)) {
        case 0:
          return Value::Int(pick(0, 9));
        case 1:
          return Value::Double(static_cast<double>(pick(0, 9)) + 0.5);
        default:
          return Value::String("m" + std::to_string(pick(0, 9)));
      }
  }
}

TEST(ColumnVectorTest, AdaptiveEncodingCommitsAndRoundTrips) {
  std::mt19937 rng(7);
  DataChunk typed(kNumProfiles, /*typed=*/true);
  DataChunk boxed(kNumProfiles, /*typed=*/false);
  std::vector<Tuple> rows;
  for (int i = 0; i < 2000; ++i) {
    Tuple row;
    for (int p = 0; p < kNumProfiles; ++p) {
      row.push_back(RandomProfileCell(&rng, p));
    }
    typed.AppendRow(row);
    boxed.AppendRow(row);
    rows.push_back(std::move(row));
  }
  EXPECT_EQ(typed.column(kProfInt).encoding(), ColumnVector::Encoding::kInt64);
  EXPECT_EQ(typed.column(kProfDouble).encoding(),
            ColumnVector::Encoding::kDouble);
  EXPECT_EQ(typed.column(kProfDictStr).encoding(),
            ColumnVector::Encoding::kDictString);
  EXPECT_EQ(typed.column(kProfFlatStr).encoding(),
            ColumnVector::Encoding::kFlatString);
  EXPECT_TRUE(typed.column(kProfMixed).fell_back());
  EXPECT_EQ(typed.BoxedFallbackCells(), rows.size());  // only the mixed column

  // Every cell reboxes exactly; zone maps agree with the boxed layout.
  for (size_t r = 0; r < rows.size(); ++r) {
    for (int c = 0; c < kNumProfiles; ++c) {
      EXPECT_EQ(typed.At(r, c).Compare(rows[r][c]), 0)
          << "row " << r << " col " << c;
      EXPECT_EQ(typed.At(r, c).type(), rows[r][c].type());
    }
  }
  for (int c = 0; c < kNumProfiles; ++c) {
    DataChunk::ZoneEntry zt = typed.zone(c);
    DataChunk::ZoneEntry zb = boxed.zone(c);
    ASSERT_EQ(zt.valid, zb.valid) << "col " << c;
    if (zt.valid) {
      EXPECT_EQ(zt.min.Compare(zb.min), 0) << "col " << c;
      EXPECT_EQ(zt.max.Compare(zb.max), 0) << "col " << c;
    }
  }
}

TEST(ColumnVectorTest, AllNullColumnStaysUntyped) {
  ColumnVector cv(/*typed=*/true);
  for (int i = 0; i < 10; ++i) cv.Append(Value::Null());
  EXPECT_EQ(cv.encoding(), ColumnVector::Encoding::kUntyped);
  EXPECT_TRUE(cv.IsNull(3));
  EXPECT_TRUE(cv.GetValue(7).is_null());
  Value mn, mx;
  EXPECT_FALSE(cv.MinMax(&mn, &mx));
  // Committing after a NULL prefix backfills the payload.
  cv.Append(Value::Int(5));
  EXPECT_EQ(cv.encoding(), ColumnVector::Encoding::kInt64);
  EXPECT_TRUE(cv.GetValue(0).is_null());
  EXPECT_EQ(cv.GetValue(10), Value::Int(5));
}

TEST(ColumnVectorTest, GatherMatchesGetRowLoop) {
  std::mt19937 rng(11);
  DataChunk typed(kNumProfiles, /*typed=*/true);
  for (int i = 0; i < 1500; ++i) {
    Tuple row;
    for (int p = 0; p < kNumProfiles; ++p) {
      row.push_back(RandomProfileCell(&rng, p));
    }
    typed.AppendRow(row);
  }
  BitVector sel(typed.num_rows());
  for (size_t r = 0; r < typed.num_rows(); ++r) {
    if (rng() % 3 == 0) sel.Set(r);
  }
  std::vector<Tuple> gathered = typed.GatherRows(sel);
  std::vector<Tuple> reference;
  sel.ForEachSetBit([&](size_t r) { reference.push_back(typed.GetRow(r)); });
  ASSERT_EQ(gathered.size(), reference.size());
  for (size_t i = 0; i < gathered.size(); ++i) {
    ASSERT_EQ(gathered[i].size(), reference[i].size());
    for (size_t c = 0; c < gathered[i].size(); ++c) {
      EXPECT_EQ(gathered[i][c].Compare(reference[i][c]), 0);
      EXPECT_EQ(gathered[i][c].type(), reference[i][c].type());
    }
  }
}

TEST(ColumnVectorTest, AppendKeyHashesMatchesBoxedHashLoop) {
  std::mt19937 rng(13);
  for (int profile = 0; profile < kNumProfiles; ++profile) {
    ColumnVector cv(/*typed=*/true);
    const size_t n = 800;
    for (size_t i = 0; i < n; ++i) {
      cv.Append(RandomProfileCell(&rng, profile));
    }
    constexpr uint64_t kSeed = 0x2545f4914f6cdd1dULL;
    std::vector<uint64_t> batched(n, kSeed);
    cv.AppendKeyHashes(n, &batched);
    for (size_t i = 0; i < n; ++i) {
      uint64_t expect = HashCombine(kSeed, cv.GetValue(i).Hash());
      ASSERT_EQ(batched[i], expect) << "profile " << profile << " row " << i;
    }
  }
}

TEST(TableTest, TypedVsBoxedTwinTablesBitIdentical) {
  DatabaseOptions boxed_opts;
  boxed_opts.typed_columns = false;
  Database typed_db;
  Database boxed_db(boxed_opts);
  Schema schema;
  schema.AddColumn("i", ValueType::kInt);
  schema.AddColumn("d", ValueType::kDouble);
  schema.AddColumn("s", ValueType::kString);
  ASSERT_TRUE(typed_db.CreateTable("t", schema).ok());
  ASSERT_TRUE(boxed_db.CreateTable("t", schema).ok());

  std::mt19937 rng(17);
  for (int round = 0; round < 12; ++round) {
    std::vector<Tuple> batch;
    for (int i = 0; i < 700; ++i) {
      batch.push_back(Tuple{RandomProfileCell(&rng, kProfInt),
                            RandomProfileCell(&rng, kProfDouble),
                            RandomProfileCell(&rng, kProfDictStr)});
    }
    int64_t doomed = static_cast<int64_t>(rng() % 2000) - 1000;
    for (Database* db : {&typed_db, &boxed_db}) {
      ASSERT_TRUE(db->Insert("t", batch).ok());
      if (round % 4 == 3) {
        ASSERT_TRUE(db->Delete("t", [&](const Tuple& row) {
                        return row[0].is_int() && row[0].AsInt() < doomed;
                      }).ok());
      }
    }
    std::vector<Tuple> typed_rows, boxed_rows;
    typed_db.GetTable("t")->ForEachRow(
        [&](const Tuple& r) { typed_rows.push_back(r); });
    boxed_db.GetTable("t")->ForEachRow(
        [&](const Tuple& r) { boxed_rows.push_back(r); });
    ASSERT_EQ(typed_rows.size(), boxed_rows.size()) << "round " << round;
    for (size_t i = 0; i < typed_rows.size(); ++i) {
      ASSERT_TRUE(TupleEq{}(typed_rows[i], boxed_rows[i]))
          << "round " << round << " row " << i;
    }
    for (size_t c = 0; c < schema.size(); ++c) {
      std::pair<Value, Value> t = typed_db.GetTable("t")->ColumnMinMax(c);
      std::pair<Value, Value> b = boxed_db.GetTable("t")->ColumnMinMax(c);
      EXPECT_EQ(t.first.Compare(b.first), 0) << "col " << c;
      EXPECT_EQ(t.second.Compare(b.second), 0) << "col " << c;
    }
  }
  // The typed layout actually engaged, and it is the smaller one for this
  // numeric/dictionary-friendly data.
  Database::TypedColumnStats tstats = typed_db.AggregateTypedColumnStats();
  EXPECT_GT(tstats.typed_chunks, 0u);
  EXPECT_EQ(tstats.boxed_fallback_cells, 0u);
  EXPECT_EQ(boxed_db.AggregateTypedColumnStats().typed_chunks, 0u);
  EXPECT_LT(typed_db.GetTable("t")->MemoryBytes(),
            boxed_db.GetTable("t")->MemoryBytes());
}

TEST(TableSnapshotTest, TypedCowTailAppendDuringConcurrentReads) {
  // Writer keeps appending (COW-tail republications, dict growth, a
  // dict->flat conversion on the way) while readers pin snapshots and walk
  // typed chunks. Pinned chunks are immutable, so every read must be
  // consistent; TSan hunts layout/publication races under --repeat.
  Database db;
  Schema schema;
  schema.AddColumn("id", ValueType::kInt);
  schema.AddColumn("s", ValueType::kString);
  ASSERT_TRUE(db.CreateTable("t", schema).ok());
  ASSERT_TRUE(db.BulkLoad("t", {Tuple{Value::Int(0), Value::String("w0")}})
                  .ok());
  std::atomic<bool> done{false};

  std::thread writer([&] {
    for (int64_t k = 1; k <= 600; ++k) {
      // ~350 distinct strings: the tail chunk's dictionary overflows into
      // the flat layout mid-stream.
      Tuple row{Value::Int(k), Value::String("w" + std::to_string(k % 350))};
      ASSERT_TRUE(db.Insert("t", {row}).ok());
    }
    done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      for (int it = 0; it < 50 || !done.load(std::memory_order_acquire);
           ++it) {
        auto snap = db.GetTable("t")->Snapshot();
        size_t seen = 0;
        for (const auto& chunk : snap->chunks()) {
          DataChunk::ZoneEntry z = chunk->zone(0);
          ASSERT_TRUE(z.valid);
          for (size_t i = 0; i < chunk->num_rows(); ++i) {
            Tuple row = chunk->GetRow(i);
            ASSERT_EQ(row.size(), 2u);
            ASSERT_TRUE(row[0].is_int());
            ASSERT_GE(row[0].Compare(z.min), 0);
            ASSERT_LE(row[0].Compare(z.max), 0);
            ASSERT_TRUE(row[1].is_string());
            ASSERT_EQ(row[1].AsString(),
                      "w" + std::to_string(row[0].AsInt() % 350));
            ++seen;
          }
        }
        ASSERT_EQ(seen, snap->num_rows());
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(db.GetTable("t")->NumRows(), 601u);
}

}  // namespace
}  // namespace imp
