// Tests for the stateless-chain analysis (algebra/chain.h) used by
// selection push-down and the indexed delegated join.

#include <gtest/gtest.h>

#include "algebra/chain.h"
#include "test_util.h"

namespace imp {
namespace {

class ChainTest : public ::testing::Test {
 protected:
  void SetUp() override { LoadSalesExample(&db_); }
  Database db_;
};

TEST_F(ChainTest, BareScanIsIdentityChain) {
  PlanPtr scan = MakeScan("sales", db_.GetTable("sales")->schema());
  auto chain = ExtractStatelessChain(scan);
  ASSERT_TRUE(chain.has_value());
  EXPECT_EQ(chain->table, "sales");
  ASSERT_EQ(chain->to_scan.size(), 5u);
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(chain->to_scan[i], static_cast<int>(i));
  Tuple out;
  Tuple row{Value::Int(1), Value::String("x"), Value::String("y"),
            Value::Int(10), Value::Int(2)};
  EXPECT_TRUE(chain->Replay(row, &out));
  EXPECT_TRUE(TupleEq{}(out, row));
}

TEST_F(ChainTest, SelectProjectChainReplay) {
  // σ_{price > 500} then Π_{sid, price*2}.
  PlanPtr scan = MakeScan("sales", db_.GetTable("sales")->schema());
  ExprPtr pred = MakeBinary(BinaryOp::kGt,
                            MakeColumnRef(3, "price", ValueType::kInt),
                            MakeLiteral(Value::Int(500)));
  PlanPtr select = MakeSelect(scan, pred);
  std::vector<ExprPtr> exprs = {
      MakeColumnRef(0, "sid", ValueType::kInt),
      MakeBinary(BinaryOp::kMul, MakeColumnRef(3, "price", ValueType::kInt),
                 MakeLiteral(Value::Int(2)))};
  PlanPtr project = MakeProject(select, exprs, {"sid", "p2"});

  auto chain = ExtractStatelessChain(project);
  ASSERT_TRUE(chain.has_value());
  EXPECT_EQ(chain->table, "sales");
  ASSERT_EQ(chain->to_scan.size(), 2u);
  EXPECT_EQ(chain->to_scan[0], 0);   // sid passes through
  EXPECT_EQ(chain->to_scan[1], -1);  // computed column

  Tuple pass{Value::Int(7), Value::String("b"), Value::String("p"),
             Value::Int(800), Value::Int(1)};
  Tuple out;
  ASSERT_TRUE(chain->Replay(pass, &out));
  EXPECT_EQ(out, (Tuple{Value::Int(7), Value::Int(1600)}));

  Tuple fail{Value::Int(7), Value::String("b"), Value::String("p"),
             Value::Int(100), Value::Int(1)};
  EXPECT_FALSE(chain->Replay(fail, &out));
}

TEST_F(ChainTest, ScanFilterApplied) {
  ExprPtr filter = MakeBinary(BinaryOp::kEq,
                              MakeColumnRef(1, "brand", ValueType::kString),
                              MakeLiteral(Value::String("HP")));
  PlanPtr scan = MakeScan("sales", db_.GetTable("sales")->schema(), filter);
  auto chain = ExtractStatelessChain(scan);
  ASSERT_TRUE(chain.has_value());
  Tuple hp{Value::Int(6), Value::String("HP"), Value::String("p"),
           Value::Int(999), Value::Int(4)};
  Tuple dell{Value::Int(5), Value::String("Dell"), Value::String("p"),
             Value::Int(1345), Value::Int(1)};
  Tuple out;
  EXPECT_TRUE(chain->Replay(hp, &out));
  EXPECT_FALSE(chain->Replay(dell, &out));
}

TEST_F(ChainTest, StatefulOperatorsBreakTheChain) {
  PlanPtr plan = MustBind(
      db_, "SELECT brand, count(*) AS n FROM sales GROUP BY brand");
  EXPECT_FALSE(ExtractStatelessChain(plan).has_value());

  PlanPtr scan_a = MakeScan("sales", db_.GetTable("sales")->schema());
  PlanPtr scan_b = MakeScan("sales", db_.GetTable("sales")->schema());
  PlanPtr join = MakeJoin(scan_a, scan_b, {{0, 0}});
  EXPECT_FALSE(ExtractStatelessChain(join).has_value());
}

TEST_F(ChainTest, ProjectionRemapsThroughStackedProjects) {
  PlanPtr scan = MakeScan("sales", db_.GetTable("sales")->schema());
  PlanPtr p1 = MakeProject(
      scan,
      {MakeColumnRef(3, "price", ValueType::kInt),
       MakeColumnRef(0, "sid", ValueType::kInt)},
      {"price", "sid"});
  PlanPtr p2 = MakeProject(p1, {MakeColumnRef(1, "sid", ValueType::kInt)},
                           {"sid"});
  auto chain = ExtractStatelessChain(p2);
  ASSERT_TRUE(chain.has_value());
  ASSERT_EQ(chain->to_scan.size(), 1u);
  EXPECT_EQ(chain->to_scan[0], 0);  // sid is scan column 0
}

}  // namespace
}  // namespace imp
