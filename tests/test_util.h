// Shared fixtures for IMP tests: the paper's running example database
// (Fig. 1 `sales`), the Fig. 5 two-table example, and small helpers.

#ifndef IMP_TESTS_TEST_UTIL_H_
#define IMP_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "sketch/partition.h"
#include "sql/binder.h"
#include "storage/database.h"

namespace imp {

/// Fig. 1: sales(sid, brand, productName, price, numSold) with tuples
/// s1..s7. The paper's price partition φ_price has ranges
/// [1,600], [601,1000], [1001,1500], [1501,10000].
inline void LoadSalesExample(Database* db) {
  Schema schema;
  schema.AddColumn("sid", ValueType::kInt);
  schema.AddColumn("brand", ValueType::kString);
  schema.AddColumn("productName", ValueType::kString);
  schema.AddColumn("price", ValueType::kInt);
  schema.AddColumn("numSold", ValueType::kInt);
  IMP_CHECK(db->CreateTable("sales", schema).ok());
  std::vector<Tuple> rows = {
      {Value::Int(1), Value::String("Lenovo"),
       Value::String("ThinkPad T14s Gen 2"), Value::Int(349), Value::Int(1)},
      {Value::Int(2), Value::String("Lenovo"),
       Value::String("ThinkPad T14s Gen 2"), Value::Int(449), Value::Int(2)},
      {Value::Int(3), Value::String("Apple"),
       Value::String("MacBook Air 13-inch"), Value::Int(1199), Value::Int(1)},
      {Value::Int(4), Value::String("Apple"),
       Value::String("MacBook Pro 14-inch"), Value::Int(3875), Value::Int(1)},
      {Value::Int(5), Value::String("Dell"), Value::String("Dell XPS 13"),
       Value::Int(1345), Value::Int(1)},
      {Value::Int(6), Value::String("HP"), Value::String("HP ProBook 450 G9"),
       Value::Int(999), Value::Int(4)},
      {Value::Int(7), Value::String("HP"), Value::String("HP ProBook 550 G9"),
       Value::Int(899), Value::Int(1)},
  };
  IMP_CHECK(db->BulkLoad("sales", rows).ok());
}

/// The paper's price partition for `sales`: ρ1=[1,600], ρ2=[601,1000],
/// ρ3=[1001,1500], ρ4=[1501,10000]. Encoded as bounds {1,601,1001,1501,10000}
/// (fragment i = [b_i, b_{i+1}) except the last, inclusive).
inline RangePartition SalesPricePartition() {
  return RangePartition(
      "sales", "price", /*attr_index=*/3,
      {Value::Int(1), Value::Int(601), Value::Int(1001), Value::Int(1501),
       Value::Int(10000)});
}

/// The HAVING query Q_top of Ex. 1.1.
inline const char* kSalesQTop =
    "SELECT brand, sum(price * numSold) AS rev "
    "FROM sales GROUP BY brand HAVING sum(price * numSold) > 5000";

/// Fig. 5: R(a, b) = {(1,7),(9,9)}, S(c, d) = {(6,9),(7,8)} with partitions
/// φ_a = {f1=[1,5], f2=[6,10]} on R.a and φ_c = {g1=[1,6], g2=[7,15]} on S.c.
inline void LoadFig5Example(Database* db) {
  Schema r;
  r.AddColumn("a", ValueType::kInt);
  r.AddColumn("b", ValueType::kInt);
  IMP_CHECK(db->CreateTable("r", r).ok());
  IMP_CHECK(db->BulkLoad("r", {{Value::Int(1), Value::Int(7)},
                               {Value::Int(9), Value::Int(9)}})
                .ok());
  Schema s;
  s.AddColumn("c", ValueType::kInt);
  s.AddColumn("d", ValueType::kInt);
  IMP_CHECK(db->CreateTable("s", s).ok());
  IMP_CHECK(db->BulkLoad("s", {{Value::Int(6), Value::Int(9)},
                               {Value::Int(7), Value::Int(8)}})
                .ok());
}

inline RangePartition Fig5PartitionR() {
  return RangePartition("r", "a", 0,
                        {Value::Int(1), Value::Int(6), Value::Int(10)});
}

inline RangePartition Fig5PartitionS() {
  return RangePartition("s", "c", 0,
                        {Value::Int(1), Value::Int(7), Value::Int(15)});
}

/// The Fig. 5 query:
///   SELECT a, sum(c) AS sc
///   FROM (SELECT a, b FROM r WHERE a > 3) JOIN s ON (b = d)
///   GROUP BY a HAVING sum(c) > 5
inline const char* kFig5Query =
    "SELECT a, sum(c) AS sc "
    "FROM (SELECT a, b FROM r WHERE a > 3) tt JOIN s ON (b = d) "
    "GROUP BY a HAVING sum(c) > 5";

/// Bind a SQL query against `db`, aborting the test on failure.
inline PlanPtr MustBind(const Database& db, const std::string& sql) {
  Binder binder(&db);
  auto plan = binder.BindQuery(sql);
  IMP_CHECK_MSG(plan.ok(), plan.status().ToString().c_str());
  return plan.value();
}

}  // namespace imp

#endif  // IMP_TESTS_TEST_UTIL_H_
