// Tests for state persistence (Sec. 2): serializing incremental operator
// state, restoring it in a fresh maintainer, middleware eviction to the
// backend blob store, and re-partitioning with recapture (Sec. 7.4).

#include <gtest/gtest.h>

#include "common/serde.h"
#include "imp/maintainer.h"
#include "middleware/imp_system.h"
#include "test_util.h"
#include "workload/synthetic.h"

namespace imp {
namespace {

// ---- Serde primitives --------------------------------------------------------

TEST(SerdeTest, PrimitivesRoundTrip) {
  SerdeWriter w;
  w.WriteU64(0xdeadbeefcafeULL);
  w.WriteI64(-42);
  w.WriteDouble(3.25);
  w.WriteBool(true);
  w.WriteString("hello");
  std::string buf = w.TakeBuffer();
  SerdeReader r(buf);
  EXPECT_EQ(r.ReadU64().value(), 0xdeadbeefcafeULL);
  EXPECT_EQ(r.ReadI64().value(), -42);
  EXPECT_DOUBLE_EQ(r.ReadDouble().value(), 3.25);
  EXPECT_TRUE(r.ReadBool().value());
  EXPECT_EQ(r.ReadString().value(), "hello");
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerdeTest, ValuesTuplesBitvectorsRoundTrip) {
  SerdeWriter w;
  w.WriteValue(Value::Null());
  w.WriteValue(Value::Int(7));
  w.WriteValue(Value::Double(-1.5));
  w.WriteValue(Value::String("s"));
  Tuple t{Value::Int(1), Value::String("x")};
  w.WriteTuple(t);
  BitVector bv(130);
  bv.Set(0);
  bv.Set(129);
  w.WriteBitVector(bv);
  std::string buf = w.TakeBuffer();
  SerdeReader r(buf);
  EXPECT_TRUE(r.ReadValue().value().is_null());
  EXPECT_EQ(r.ReadValue().value(), Value::Int(7));
  EXPECT_EQ(r.ReadValue().value(), Value::Double(-1.5));
  EXPECT_EQ(r.ReadValue().value(), Value::String("s"));
  EXPECT_TRUE(TupleEq{}(r.ReadTuple().value(), t));
  EXPECT_EQ(r.ReadBitVector().value(), bv);
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerdeTest, TruncatedInputIsError) {
  SerdeWriter w;
  w.WriteString("a long enough string");
  std::string buf = w.TakeBuffer();
  std::string cut = buf.substr(0, buf.size() - 3);
  SerdeReader r(cut);
  EXPECT_FALSE(r.ReadString().ok());
}

// ---- Maintainer state round trip -----------------------------------------------

class PersistenceFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    spec_.name = "t";
    spec_.num_rows = 2000;
    spec_.num_groups = 30;
    IMP_CHECK(CreateSyntheticTable(&db_, spec_).ok());
    IMP_CHECK(catalog_
                  .Register(RangePartition::EquiWidthInt("t", "a", 1, 0, 29, 6))
                  .ok());
  }

  void InsertRows(size_t n) {
    Rng rng(n + 1);
    std::vector<Tuple> rows;
    for (size_t i = 0; i < n; ++i) {
      rows.push_back(SyntheticRow(spec_, next_id_++, &rng));
    }
    IMP_CHECK(db_.Insert("t", rows).ok());
  }

  Database db_;
  PartitionCatalog catalog_;
  SyntheticSpec spec_;
  int64_t next_id_ = 100000;
};

TEST_F(PersistenceFixture, AggregateStateRoundTripContinuesIdentically) {
  PlanPtr plan = MustBind(
      db_, "SELECT a, sum(b) AS sb, min(c) AS mc FROM t GROUP BY a "
           "HAVING sum(b) > 3000");
  Maintainer original(&db_, &catalog_, plan);
  ASSERT_TRUE(original.Initialize().ok());
  InsertRows(50);
  ASSERT_TRUE(original.MaintainFromBackend().ok());

  // Persist, then restore into a *fresh* maintainer (same plan/options).
  std::string blob = original.SerializeState();
  Maintainer restored(&db_, &catalog_, plan);
  ASSERT_TRUE(restored.RestoreState(blob).ok());
  EXPECT_EQ(restored.sketch().fragments, original.sketch().fragments);
  EXPECT_EQ(restored.maintained_version(), original.maintained_version());

  // Both must process further updates identically.
  InsertRows(80);
  ASSERT_TRUE(original.MaintainFromBackend().ok());
  ASSERT_TRUE(restored.MaintainFromBackend().ok());
  EXPECT_EQ(restored.sketch().fragments, original.sketch().fragments);
}

TEST_F(PersistenceFixture, TopKStateRoundTrip) {
  PlanPtr plan = MustBind(
      db_, "SELECT a, sum(b) AS sb FROM t GROUP BY a ORDER BY sb DESC LIMIT 5");
  MaintainerOptions opts;
  opts.topk_buffer = 12;
  Maintainer original(&db_, &catalog_, plan, opts);
  ASSERT_TRUE(original.Initialize().ok());
  InsertRows(40);
  ASSERT_TRUE(original.MaintainFromBackend().ok());

  Maintainer restored(&db_, &catalog_, plan, opts);
  ASSERT_TRUE(restored.RestoreState(original.SerializeState()).ok());
  InsertRows(40);
  ASSERT_TRUE(original.MaintainFromBackend().ok());
  ASSERT_TRUE(restored.MaintainFromBackend().ok());
  EXPECT_EQ(restored.sketch().fragments, original.sketch().fragments);
}

TEST_F(PersistenceFixture, JoinBloomStateRoundTrip) {
  Database db;
  JoinPairSpec jp;
  jp.distinct_keys = 200;
  jp.left_per_key = 2;
  jp.right_per_key = 2;
  ASSERT_TRUE(CreateJoinPair(&db, jp).ok());
  PartitionCatalog catalog;
  ASSERT_TRUE(
      catalog.Register(RangePartition::EquiWidthInt("t1gbjoin", "a", 1, 0,
                                                    199, 8))
          .ok());
  PlanPtr plan = MustBind(
      db, "SELECT a, sum(w) AS sw FROM t1gbjoin JOIN tjoinhelp ON (a = ttid) "
          "GROUP BY a HAVING sum(w) > 100");
  Maintainer original(&db, &catalog, plan);
  ASSERT_TRUE(original.Initialize().ok());
  Maintainer restored(&db, &catalog, plan);
  ASSERT_TRUE(restored.RestoreState(original.SerializeState()).ok());

  Rng rng(5);
  std::vector<Tuple> rows;
  for (int i = 0; i < 30; ++i) {
    rows.push_back(JoinLeftRow(jp, 10000 + i, rng.UniformInt(0, 199), &rng));
  }
  ASSERT_TRUE(db.Insert("t1gbjoin", rows).ok());
  ASSERT_TRUE(original.MaintainFromBackend().ok());
  ASSERT_TRUE(restored.MaintainFromBackend().ok());
  EXPECT_EQ(restored.sketch().fragments, original.sketch().fragments);
}

TEST_F(PersistenceFixture, CorruptBlobRejected) {
  PlanPtr plan = MustBind(db_, "SELECT a, sum(b) AS sb FROM t GROUP BY a");
  Maintainer m(&db_, &catalog_, plan);
  ASSERT_TRUE(m.Initialize().ok());
  std::string blob = m.SerializeState();
  EXPECT_FALSE(m.RestoreState(blob.substr(0, blob.size() / 2)).ok());
  std::string garbage = "not a state blob at all";
  EXPECT_FALSE(m.RestoreState(garbage).ok());
}

// ---- Middleware eviction / restore ----------------------------------------------

TEST_F(PersistenceFixture, EvictionIsTransparentToQueries) {
  ImpConfig config;
  ImpSystem system(&db_, config);
  ASSERT_TRUE(system
                  .RegisterPartition(
                      RangePartition::EquiWidthInt("t", "b", 2, 0, 100, 8))
                  .ok());
  const char* sql = "SELECT a, sum(b) AS sb FROM t GROUP BY a "
                    "HAVING sum(b) > 3000";
  auto before = system.Query(sql);
  ASSERT_TRUE(before.ok());

  // Evict: state moves into the backend blob store, memory is released.
  ASSERT_TRUE(system.EvictSketchStates().ok());
  auto entries = system.sketches().AllEntries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0]->maintainer, nullptr);
  EXPECT_TRUE(entries[0]->state_evicted);
  EXPECT_NE(db_.GetStateBlob(entries[0]->state_key), nullptr);

  // An update plus a query: the state is restored and maintained lazily.
  InsertRows(60);
  auto after = system.Query(sql);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(system.stats().sketch_captures, 1u);  // no recapture happened

  // Cross-check against a no-sketch run.
  ImpConfig ns_config;
  ns_config.mode = ExecutionMode::kNoSketch;
  ImpSystem ns(&db_, ns_config);
  auto expected = ns.Query(sql);
  ASSERT_TRUE(expected.ok());
  EXPECT_TRUE(after.value().SameBag(expected.value()));
}

// ---- Re-partitioning (Sec. 7.4) ---------------------------------------------------

TEST_F(PersistenceFixture, RepartitionRecapturesAndStaysCorrect) {
  ImpConfig config;
  ImpSystem system(&db_, config);
  ASSERT_TRUE(system.PartitionTable("t", "a", 6).ok());
  const char* sql = "SELECT a, sum(b) AS sb FROM t GROUP BY a "
                    "HAVING sum(b) > 3000";
  ASSERT_TRUE(system.Query(sql).ok());
  size_t captures_before = system.stats().sketch_captures;

  // Skew the distribution, then re-partition on the same attribute with
  // finer granularity.
  InsertRows(500);
  ASSERT_TRUE(system.RepartitionTable("t", "a", 12).ok());
  EXPECT_EQ(system.stats().sketch_captures, captures_before + 1);
  const RangePartition* part = system.catalog().Find("t");
  ASSERT_NE(part, nullptr);
  EXPECT_GT(part->num_fragments(), 6u);

  auto result = system.Query(sql);
  ASSERT_TRUE(result.ok());
  ImpConfig ns_config;
  ns_config.mode = ExecutionMode::kNoSketch;
  ImpSystem ns(&db_, ns_config);
  auto expected = ns.Query(sql);
  ASSERT_TRUE(expected.ok());
  EXPECT_TRUE(result.value().SameBag(expected.value()));
}

TEST(PartitionCatalogUnregisterTest, OffsetsCompact) {
  PartitionCatalog catalog;
  ASSERT_TRUE(catalog.Register(Fig5PartitionR()).ok());  // offset 0, 2 frags
  ASSERT_TRUE(catalog.Register(Fig5PartitionS()).ok());  // offset 2, 2 frags
  ASSERT_TRUE(catalog.Unregister("r").ok());
  EXPECT_EQ(catalog.total_fragments(), 2u);
  EXPECT_EQ(catalog.GlobalFragment("s", 0), 0u);  // s shifted down
  EXPECT_FALSE(catalog.Unregister("r").ok());
}

}  // namespace
}  // namespace imp
