// Tests for the backend's physical-design features: zone maps (chunk
// skipping for range predicates — the mechanism PBDS data skipping rides
// on) and lazily built hash indexes (the delegated-join access path).

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "exec/zone_filter.h"
#include "sketch/capture.h"
#include "sketch/use_rewrite.h"
#include "test_util.h"
#include "workload/synthetic.h"

namespace imp {
namespace {

Schema TwoColSchema() {
  Schema s;
  s.AddColumn("k", ValueType::kInt);
  s.AddColumn("v", ValueType::kInt);
  return s;
}

Tuple Row(int64_t k, int64_t v) { return Tuple{Value::Int(k), Value::Int(v)}; }

// ---- Zone map bookkeeping ----------------------------------------------------

TEST(ZoneMapTest, MinMaxTrackedPerColumn) {
  DataChunk chunk(2);
  EXPECT_FALSE(chunk.zone(0).valid);
  chunk.AppendRow(Row(5, 100));
  chunk.AppendRow(Row(2, 300));
  chunk.AppendRow(Row(9, 200));
  EXPECT_TRUE(chunk.zone(0).valid);
  EXPECT_EQ(chunk.zone(0).min, Value::Int(2));
  EXPECT_EQ(chunk.zone(0).max, Value::Int(9));
  EXPECT_EQ(chunk.zone(1).min, Value::Int(100));
  EXPECT_EQ(chunk.zone(1).max, Value::Int(300));
}

TEST(ZoneMapTest, NullsIgnored) {
  DataChunk chunk(1);
  chunk.AppendRow({Value::Null()});
  EXPECT_FALSE(chunk.zone(0).valid);
  chunk.AppendRow({Value::Int(7)});
  EXPECT_TRUE(chunk.zone(0).valid);
  EXPECT_EQ(chunk.zone(0).min, Value::Int(7));
}

// ---- ChunkMayMatch -------------------------------------------------------------

class ZoneFilterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    chunk_ = std::make_unique<DataChunk>(2);
    // k in [10, 20], v in [100, 200].
    for (int64_t i = 10; i <= 20; ++i) chunk_->AppendRow(Row(i, i * 10));
  }
  ExprPtr K() { return MakeColumnRef(0, "k", ValueType::kInt); }
  ExprPtr Lit(int64_t v) { return MakeLiteral(Value::Int(v)); }
  std::unique_ptr<DataChunk> chunk_;
};

TEST_F(ZoneFilterTest, Comparisons) {
  EXPECT_TRUE(ChunkMayMatch(*MakeBinary(BinaryOp::kLt, K(), Lit(11)), *chunk_));
  EXPECT_FALSE(ChunkMayMatch(*MakeBinary(BinaryOp::kLt, K(), Lit(10)), *chunk_));
  EXPECT_TRUE(ChunkMayMatch(*MakeBinary(BinaryOp::kLe, K(), Lit(10)), *chunk_));
  EXPECT_TRUE(ChunkMayMatch(*MakeBinary(BinaryOp::kGt, K(), Lit(19)), *chunk_));
  EXPECT_FALSE(ChunkMayMatch(*MakeBinary(BinaryOp::kGt, K(), Lit(20)), *chunk_));
  EXPECT_TRUE(ChunkMayMatch(*MakeBinary(BinaryOp::kGe, K(), Lit(20)), *chunk_));
  EXPECT_TRUE(ChunkMayMatch(*MakeBinary(BinaryOp::kEq, K(), Lit(15)), *chunk_));
  EXPECT_FALSE(ChunkMayMatch(*MakeBinary(BinaryOp::kEq, K(), Lit(25)), *chunk_));
}

TEST_F(ZoneFilterTest, MirroredLiteralOnLeft) {
  // 25 < k  is k > 25: impossible for k <= 20.
  EXPECT_FALSE(ChunkMayMatch(*MakeBinary(BinaryOp::kLt, Lit(25), K()), *chunk_));
  EXPECT_TRUE(ChunkMayMatch(*MakeBinary(BinaryOp::kLt, Lit(15), K()), *chunk_));
}

TEST_F(ZoneFilterTest, BooleanCombinations) {
  ExprPtr impossible = MakeBinary(BinaryOp::kGt, K(), Lit(100));
  ExprPtr possible = MakeBinary(BinaryOp::kGt, K(), Lit(15));
  EXPECT_FALSE(
      ChunkMayMatch(*MakeBinary(BinaryOp::kAnd, possible, impossible), *chunk_));
  EXPECT_TRUE(
      ChunkMayMatch(*MakeBinary(BinaryOp::kOr, possible, impossible), *chunk_));
  EXPECT_FALSE(ChunkMayMatch(
      *MakeBinary(BinaryOp::kOr, impossible, impossible), *chunk_));
}

TEST_F(ZoneFilterTest, BetweenAndUnknownShapes) {
  EXPECT_TRUE(ChunkMayMatch(*MakeBetween(K(), Lit(18), Lit(30)), *chunk_));
  EXPECT_FALSE(ChunkMayMatch(*MakeBetween(K(), Lit(30), Lit(40)), *chunk_));
  EXPECT_FALSE(ChunkMayMatch(*MakeBetween(K(), Lit(1), Lit(9)), *chunk_));
  // Column-to-column comparisons are unknown => may match.
  ExprPtr v = MakeColumnRef(1, "v", ValueType::kInt);
  EXPECT_TRUE(ChunkMayMatch(*MakeBinary(BinaryOp::kLt, K(), v), *chunk_));
  // NOT is conservative.
  EXPECT_TRUE(ChunkMayMatch(
      *MakeUnary(UnaryOp::kNot, MakeBinary(BinaryOp::kLt, K(), Lit(5))),
      *chunk_));
}

// ---- End-to-end chunk skipping ---------------------------------------------------

TEST(ChunkSkippingTest, ScanSkipsNonMatchingChunks) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", TwoColSchema()).ok());
  // 4 full chunks, clustered by k.
  std::vector<Tuple> rows;
  const int64_t n = static_cast<int64_t>(DataChunk::kDefaultCapacity) * 4;
  for (int64_t i = 0; i < n; ++i) rows.push_back(Row(i, i % 97));
  ASSERT_TRUE(db.BulkLoad("t", rows).ok());

  Binder binder(&db);
  auto plan = binder.BindQuery("SELECT k FROM t WHERE k < 100");
  ASSERT_TRUE(plan.ok());
  // The binder builds Select over Scan; push the filter into the scan to
  // model the use-rewrite's instrumented scan.
  ExprPtr pred = MakeBinary(BinaryOp::kLt,
                            MakeColumnRef(0, "k", ValueType::kInt),
                            MakeLiteral(Value::Int(100)));
  PlanPtr scan = MakeScan("t", db.GetTable("t")->schema(), pred);

  Executor exec(&db);
  auto result = exec.Execute(scan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().size(), 100u);
  EXPECT_EQ(exec.scan_stats().chunks_scanned, 1u);
  EXPECT_EQ(exec.scan_stats().chunks_skipped, 3u);
}

TEST(ChunkSkippingTest, UseRewriteActuallySkipsChunks) {
  // End-to-end: a sketch-filtered query must scan fewer chunks than the
  // plain query when the data is clustered on the partition attribute.
  Database db;
  SyntheticSpec spec;
  spec.name = "t";
  spec.num_rows = DataChunk::kDefaultCapacity * 8;
  spec.num_groups = 512;
  ASSERT_TRUE(CreateSyntheticTable(&db, spec).ok());
  PartitionCatalog catalog;
  ASSERT_TRUE(
      catalog.Register(RangePartition::EquiWidthInt("t", "a", 1, 0, 511, 64))
          .ok());
  // HAVING keeps only the largest groups => selective sketch.
  int64_t rows_per_group =
      static_cast<int64_t>(spec.num_rows / spec.num_groups);
  int64_t threshold = rows_per_group * 3 * 450;  // sum(b) ~ 3a per row
  Binder binder(&db);
  auto plan = binder.BindQuery(
      "SELECT a, sum(b) AS sb FROM t GROUP BY a HAVING sum(b) > " +
      std::to_string(threshold));
  ASSERT_TRUE(plan.ok());

  CaptureEngine capture(&db, &catalog);
  auto sketch = capture.Capture(plan.value());
  ASSERT_TRUE(sketch.ok());
  ASSERT_GT(sketch.value().NumFragments(), 0u);
  ASSERT_LT(sketch.value().NumFragments(), 16u);  // selective

  PlanPtr rewritten = ApplyUseRewrite(plan.value(), catalog, sketch.value());
  Executor plain_exec(&db), skip_exec(&db);
  auto full = plain_exec.Execute(plan.value());
  auto skipped = skip_exec.Execute(rewritten);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(skipped.ok());
  EXPECT_TRUE(full.value().SameBag(skipped.value()));
  EXPECT_GT(skip_exec.scan_stats().chunks_skipped, 4u);
  EXPECT_LT(skip_exec.scan_stats().rows_scanned,
            plain_exec.scan_stats().rows_scanned / 2);
}

// ---- Hash indexes ---------------------------------------------------------------

TEST(HashIndexTest, ProbeFindsAllMatches) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", TwoColSchema()).ok());
  std::vector<Tuple> rows;
  for (int64_t i = 0; i < 10000; ++i) rows.push_back(Row(i % 100, i));
  ASSERT_TRUE(db.BulkLoad("t", rows).ok());
  // Indexes live on the immutable published snapshot (built lazily per
  // snapshot, so they can never point into rows the snapshot lacks).
  auto t = db.GetTable("t")->Snapshot();
  EXPECT_FALSE(t->HasIndex(0));
  const auto* locs = t->IndexProbe(0, Value::Int(42));
  EXPECT_TRUE(t->HasIndex(0));
  ASSERT_NE(locs, nullptr);
  EXPECT_EQ(locs->size(), 100u);
  for (const auto& loc : *locs) {
    EXPECT_EQ(t->chunks()[loc.chunk]->At(loc.row, 0), Value::Int(42));
  }
  EXPECT_EQ(t->IndexProbe(0, Value::Int(12345)), nullptr);
}

TEST(HashIndexTest, FreshSnapshotIndexSeesInsertedRows) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", TwoColSchema()).ok());
  ASSERT_TRUE(db.BulkLoad("t", {Row(1, 1)}).ok());
  auto before = db.GetTable("t")->Snapshot();
  ASSERT_NE(before->IndexProbe(0, Value::Int(1)), nullptr);  // build index
  ASSERT_TRUE(db.Insert("t", {Row(1, 2), Row(7, 3)}).ok());
  // The old pinned snapshot (and its index) is immutable — it still sees
  // exactly the pre-insert rows; the freshly published snapshot's lazily
  // built index covers the new ones.
  EXPECT_EQ(before->IndexProbe(0, Value::Int(1))->size(), 1u);
  EXPECT_EQ(before->IndexProbe(0, Value::Int(7)), nullptr);
  auto after = db.GetTable("t")->Snapshot();
  EXPECT_EQ(after->IndexProbe(0, Value::Int(1))->size(), 2u);
  EXPECT_EQ(after->IndexProbe(0, Value::Int(7))->size(), 1u);
}

TEST(HashIndexTest, IndexDroppedAndRebuiltAfterDelete) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", TwoColSchema()).ok());
  std::vector<Tuple> rows;
  for (int64_t i = 0; i < 100; ++i) rows.push_back(Row(i % 10, i));
  ASSERT_TRUE(db.BulkLoad("t", rows).ok());
  ASSERT_EQ(db.GetTable("t")->Snapshot()->IndexProbe(0, Value::Int(3))->size(),
            10u);
  ASSERT_TRUE(db.Delete("t", [](const Tuple& row) {
                  return row[0] == Value::Int(3);
                }).ok());
  // The delete published a fresh snapshot with no index yet; its lazily
  // rebuilt index reflects the post-delete rows.
  auto t = db.GetTable("t")->Snapshot();
  EXPECT_FALSE(t->HasIndex(0));
  EXPECT_EQ(t->IndexProbe(0, Value::Int(3)), nullptr);  // rebuilt, empty
  EXPECT_EQ(t->IndexProbe(0, Value::Int(4))->size(), 10u);
}

TEST(HashIndexTest, NumericKeyEquivalenceIntDouble) {
  // The index must find Int(2) when probed with Double(2.0) (Value
  // equality treats them as equal, so ValueHash must too).
  Database db;
  ASSERT_TRUE(db.CreateTable("t", TwoColSchema()).ok());
  ASSERT_TRUE(db.BulkLoad("t", {Row(2, 1)}).ok());
  ASSERT_NE(db.GetTable("t")->Snapshot()->IndexProbe(0, Value::Double(2.0)),
            nullptr);
}

}  // namespace
}  // namespace imp
