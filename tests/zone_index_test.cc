// Tests for the backend's physical-design features: zone maps (chunk
// skipping for range predicates — the mechanism PBDS data skipping rides
// on) and lazily built hash indexes (the delegated-join access path).

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "exec/zone_filter.h"
#include "sketch/capture.h"
#include "sketch/use_rewrite.h"
#include "test_util.h"
#include "workload/synthetic.h"

namespace imp {
namespace {

Schema TwoColSchema() {
  Schema s;
  s.AddColumn("k", ValueType::kInt);
  s.AddColumn("v", ValueType::kInt);
  return s;
}

Tuple Row(int64_t k, int64_t v) { return Tuple{Value::Int(k), Value::Int(v)}; }

// ---- Zone map bookkeeping ----------------------------------------------------

TEST(ZoneMapTest, MinMaxTrackedPerColumn) {
  DataChunk chunk(2);
  EXPECT_FALSE(chunk.zone(0).valid);
  chunk.AppendRow(Row(5, 100));
  chunk.AppendRow(Row(2, 300));
  chunk.AppendRow(Row(9, 200));
  EXPECT_TRUE(chunk.zone(0).valid);
  EXPECT_EQ(chunk.zone(0).min, Value::Int(2));
  EXPECT_EQ(chunk.zone(0).max, Value::Int(9));
  EXPECT_EQ(chunk.zone(1).min, Value::Int(100));
  EXPECT_EQ(chunk.zone(1).max, Value::Int(300));
}

TEST(ZoneMapTest, NullsIgnored) {
  DataChunk chunk(1);
  chunk.AppendRow({Value::Null()});
  EXPECT_FALSE(chunk.zone(0).valid);
  chunk.AppendRow({Value::Int(7)});
  EXPECT_TRUE(chunk.zone(0).valid);
  EXPECT_EQ(chunk.zone(0).min, Value::Int(7));
}

// ---- ChunkMayMatch -------------------------------------------------------------

class ZoneFilterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    chunk_ = std::make_unique<DataChunk>(2);
    // k in [10, 20], v in [100, 200].
    for (int64_t i = 10; i <= 20; ++i) chunk_->AppendRow(Row(i, i * 10));
  }
  ExprPtr K() { return MakeColumnRef(0, "k", ValueType::kInt); }
  ExprPtr Lit(int64_t v) { return MakeLiteral(Value::Int(v)); }
  std::unique_ptr<DataChunk> chunk_;
};

TEST_F(ZoneFilterTest, Comparisons) {
  EXPECT_TRUE(ChunkMayMatch(*MakeBinary(BinaryOp::kLt, K(), Lit(11)), *chunk_));
  EXPECT_FALSE(ChunkMayMatch(*MakeBinary(BinaryOp::kLt, K(), Lit(10)), *chunk_));
  EXPECT_TRUE(ChunkMayMatch(*MakeBinary(BinaryOp::kLe, K(), Lit(10)), *chunk_));
  EXPECT_TRUE(ChunkMayMatch(*MakeBinary(BinaryOp::kGt, K(), Lit(19)), *chunk_));
  EXPECT_FALSE(ChunkMayMatch(*MakeBinary(BinaryOp::kGt, K(), Lit(20)), *chunk_));
  EXPECT_TRUE(ChunkMayMatch(*MakeBinary(BinaryOp::kGe, K(), Lit(20)), *chunk_));
  EXPECT_TRUE(ChunkMayMatch(*MakeBinary(BinaryOp::kEq, K(), Lit(15)), *chunk_));
  EXPECT_FALSE(ChunkMayMatch(*MakeBinary(BinaryOp::kEq, K(), Lit(25)), *chunk_));
}

TEST_F(ZoneFilterTest, MirroredLiteralOnLeft) {
  // 25 < k  is k > 25: impossible for k <= 20.
  EXPECT_FALSE(ChunkMayMatch(*MakeBinary(BinaryOp::kLt, Lit(25), K()), *chunk_));
  EXPECT_TRUE(ChunkMayMatch(*MakeBinary(BinaryOp::kLt, Lit(15), K()), *chunk_));
}

TEST_F(ZoneFilterTest, BooleanCombinations) {
  ExprPtr impossible = MakeBinary(BinaryOp::kGt, K(), Lit(100));
  ExprPtr possible = MakeBinary(BinaryOp::kGt, K(), Lit(15));
  EXPECT_FALSE(
      ChunkMayMatch(*MakeBinary(BinaryOp::kAnd, possible, impossible), *chunk_));
  EXPECT_TRUE(
      ChunkMayMatch(*MakeBinary(BinaryOp::kOr, possible, impossible), *chunk_));
  EXPECT_FALSE(ChunkMayMatch(
      *MakeBinary(BinaryOp::kOr, impossible, impossible), *chunk_));
}

TEST_F(ZoneFilterTest, BetweenAndUnknownShapes) {
  EXPECT_TRUE(ChunkMayMatch(*MakeBetween(K(), Lit(18), Lit(30)), *chunk_));
  EXPECT_FALSE(ChunkMayMatch(*MakeBetween(K(), Lit(30), Lit(40)), *chunk_));
  EXPECT_FALSE(ChunkMayMatch(*MakeBetween(K(), Lit(1), Lit(9)), *chunk_));
  // Column-to-column comparisons are unknown => may match.
  ExprPtr v = MakeColumnRef(1, "v", ValueType::kInt);
  EXPECT_TRUE(ChunkMayMatch(*MakeBinary(BinaryOp::kLt, K(), v), *chunk_));
  // NOT is conservative.
  EXPECT_TRUE(ChunkMayMatch(
      *MakeUnary(UnaryOp::kNot, MakeBinary(BinaryOp::kLt, K(), Lit(5))),
      *chunk_));
}

// ---- End-to-end chunk skipping ---------------------------------------------------

TEST(ChunkSkippingTest, ScanSkipsNonMatchingChunks) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", TwoColSchema()).ok());
  // 4 full chunks, clustered by k.
  std::vector<Tuple> rows;
  const int64_t n = static_cast<int64_t>(DataChunk::kDefaultCapacity) * 4;
  for (int64_t i = 0; i < n; ++i) rows.push_back(Row(i, i % 97));
  ASSERT_TRUE(db.BulkLoad("t", rows).ok());

  Binder binder(&db);
  auto plan = binder.BindQuery("SELECT k FROM t WHERE k < 100");
  ASSERT_TRUE(plan.ok());
  // The binder builds Select over Scan; push the filter into the scan to
  // model the use-rewrite's instrumented scan.
  ExprPtr pred = MakeBinary(BinaryOp::kLt,
                            MakeColumnRef(0, "k", ValueType::kInt),
                            MakeLiteral(Value::Int(100)));
  PlanPtr scan = MakeScan("t", db.GetTable("t")->schema(), pred);

  Executor exec(&db);
  auto result = exec.Execute(scan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().size(), 100u);
  EXPECT_EQ(exec.scan_stats().chunks_scanned, 1u);
  EXPECT_EQ(exec.scan_stats().chunks_skipped, 3u);
}

TEST(ChunkSkippingTest, UseRewriteActuallySkipsChunks) {
  // End-to-end: a sketch-filtered query must scan fewer chunks than the
  // plain query when the data is clustered on the partition attribute.
  Database db;
  SyntheticSpec spec;
  spec.name = "t";
  spec.num_rows = DataChunk::kDefaultCapacity * 8;
  spec.num_groups = 512;
  ASSERT_TRUE(CreateSyntheticTable(&db, spec).ok());
  PartitionCatalog catalog;
  ASSERT_TRUE(
      catalog.Register(RangePartition::EquiWidthInt("t", "a", 1, 0, 511, 64))
          .ok());
  // HAVING keeps only the largest groups => selective sketch.
  int64_t rows_per_group =
      static_cast<int64_t>(spec.num_rows / spec.num_groups);
  int64_t threshold = rows_per_group * 3 * 450;  // sum(b) ~ 3a per row
  Binder binder(&db);
  auto plan = binder.BindQuery(
      "SELECT a, sum(b) AS sb FROM t GROUP BY a HAVING sum(b) > " +
      std::to_string(threshold));
  ASSERT_TRUE(plan.ok());

  CaptureEngine capture(&db, &catalog);
  auto sketch = capture.Capture(plan.value());
  ASSERT_TRUE(sketch.ok());
  ASSERT_GT(sketch.value().NumFragments(), 0u);
  ASSERT_LT(sketch.value().NumFragments(), 16u);  // selective

  PlanPtr rewritten = ApplyUseRewrite(plan.value(), catalog, sketch.value());
  Executor plain_exec(&db), skip_exec(&db);
  auto full = plain_exec.Execute(plan.value());
  auto skipped = skip_exec.Execute(rewritten);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(skipped.ok());
  EXPECT_TRUE(full.value().SameBag(skipped.value()));
  EXPECT_GT(skip_exec.scan_stats().chunks_skipped, 4u);
  EXPECT_LT(skip_exec.scan_stats().rows_scanned,
            plain_exec.scan_stats().rows_scanned / 2);
}

// ---- Snapshot index shards -----------------------------------------------------

TEST(HashIndexTest, ProbeFindsAllMatches) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", TwoColSchema()).ok());
  std::vector<Tuple> rows;
  for (int64_t i = 0; i < 10000; ++i) rows.push_back(Row(i % 100, i));
  ASSERT_TRUE(db.BulkLoad("t", rows).ok());
  // Indexes live on the immutable published snapshot (assembled lazily per
  // snapshot, so they can never point into rows the snapshot lacks).
  auto t = db.GetTable("t")->Snapshot();
  EXPECT_FALSE(t->HasIndex(0));
  std::vector<TableSnapshot::RowLoc> locs = t->IndexProbe(0, Value::Int(42));
  EXPECT_TRUE(t->HasIndex(0));
  EXPECT_EQ(locs.size(), 100u);
  for (const auto& loc : locs) {
    EXPECT_EQ(t->chunks()[loc.chunk]->At(loc.row, 0), Value::Int(42));
  }
  // Postings arrive in scan order: chunk-ascending, row-ascending.
  for (size_t i = 1; i < locs.size(); ++i) {
    EXPECT_TRUE(locs[i - 1].chunk < locs[i].chunk ||
                (locs[i - 1].chunk == locs[i].chunk &&
                 locs[i - 1].row < locs[i].row));
  }
  EXPECT_TRUE(t->IndexProbe(0, Value::Int(12345)).empty());
}

TEST(HashIndexTest, FreshSnapshotIndexSeesInsertedRows) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", TwoColSchema()).ok());
  ASSERT_TRUE(db.BulkLoad("t", {Row(1, 1)}).ok());
  auto before = db.GetTable("t")->Snapshot();
  EXPECT_EQ(before->IndexProbe(0, Value::Int(1)).size(), 1u);  // build index
  ASSERT_TRUE(db.Insert("t", {Row(1, 2), Row(7, 3)}).ok());
  // The old pinned snapshot (and its shards) is immutable — it still sees
  // exactly the pre-insert rows; the freshly published snapshot's lazily
  // assembled index covers the new ones.
  EXPECT_EQ(before->IndexProbe(0, Value::Int(1)).size(), 1u);
  EXPECT_TRUE(before->IndexProbe(0, Value::Int(7)).empty());
  auto after = db.GetTable("t")->Snapshot();
  // Availability carried forward from the probed predecessor.
  EXPECT_TRUE(after->HasIndex(0));
  EXPECT_EQ(after->IndexProbe(0, Value::Int(1)).size(), 2u);
  EXPECT_EQ(after->IndexProbe(0, Value::Int(7)).size(), 1u);
}

TEST(HashIndexTest, IndexCarriedAcrossDelete) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", TwoColSchema()).ok());
  std::vector<Tuple> rows;
  for (int64_t i = 0; i < 100; ++i) rows.push_back(Row(i % 10, i));
  ASSERT_TRUE(db.BulkLoad("t", rows).ok());
  ASSERT_EQ(db.GetTable("t")->Snapshot()->IndexProbe(0, Value::Int(3)).size(),
            10u);
  ASSERT_TRUE(db.Delete("t", [](const Tuple& row) {
                  return row[0] == Value::Int(3);
                }).ok());
  // The delete published a fresh snapshot over rebuilt chunks; index
  // availability carries forward and the reassembled shards reflect the
  // post-delete rows.
  auto t = db.GetTable("t")->Snapshot();
  EXPECT_TRUE(t->HasIndex(0));
  EXPECT_TRUE(t->IndexProbe(0, Value::Int(3)).empty());  // rebuilt, empty
  EXPECT_EQ(t->IndexProbe(0, Value::Int(4)).size(), 10u);
}

TEST(HashIndexTest, NumericKeyEquivalenceIntDouble) {
  // The index must find Int(2) when probed with Double(2.0) (Value
  // equality treats them as equal, so ValueHash must too).
  Database db;
  ASSERT_TRUE(db.CreateTable("t", TwoColSchema()).ok());
  ASSERT_TRUE(db.BulkLoad("t", {Row(2, 1)}).ok());
  EXPECT_EQ(db.GetTable("t")->Snapshot()->IndexProbe(0, Value::Double(2.0))
                .size(),
            1u);
}

TEST(ShardCarryForwardTest, AppendRebuildOnlyTouchesTheTail) {
  // The tentpole O(delta) property, observed through TableIndexStats: after
  // a small append, the next probe reuses every sealed chunk's cached shard
  // and builds at most the COW-tail shard.
  Database db;
  ASSERT_TRUE(db.CreateTable("t", TwoColSchema()).ok());
  std::vector<Tuple> rows;
  const int64_t n = static_cast<int64_t>(DataChunk::kDefaultCapacity) * 4;
  for (int64_t i = 0; i < n; ++i) rows.push_back(Row(i % 128, i));
  ASSERT_TRUE(db.BulkLoad("t", rows).ok());
  const Table* table = db.GetTable("t");
  auto& istats = table->index_stats();

  auto s1 = table->Snapshot();
  const size_t num_chunks = s1->chunks().size();
  ASSERT_GE(num_chunks, 4u);
  ASSERT_FALSE(s1->IndexProbe(0, Value::Int(7)).empty());
  EXPECT_EQ(istats.shards_built.load(), num_chunks);
  EXPECT_EQ(istats.shards_reused.load(), 0u);

  ASSERT_TRUE(db.Insert("t", {Row(7, -1)}).ok());
  auto s2 = table->Snapshot();
  ASSERT_NE(s1.get(), s2.get());
  EXPECT_TRUE(s2->HasIndex(0));  // warm from s1
  uint64_t built_before = istats.shards_built.load();
  ASSERT_FALSE(s2->IndexProbe(0, Value::Int(7)).empty());
  // Every chunk s1 and s2 share contributes a reused shard; only the tail
  // region (COW clone or fresh chunk) needs a new one.
  EXPECT_LE(istats.shards_built.load() - built_before, 2u);
  EXPECT_GE(istats.shards_reused.load(), num_chunks - 1);
}

TEST(RangeIndexTest, RangeProbeMatchesPredicateSemantics) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", TwoColSchema()).ok());
  std::vector<Tuple> rows;
  for (int64_t i = 0; i < 1000; ++i) rows.push_back(Row(i % 50, i));
  rows.push_back({Value::Null(), Value::Int(-1)});  // NULL never in a range
  ASSERT_TRUE(db.BulkLoad("t", rows).ok());
  auto t = db.GetTable("t")->Snapshot();
  EXPECT_FALSE(t->HasRangeIndex(0));
  std::vector<TableSnapshot::RowLoc> locs =
      t->IndexRangeProbe(0, Value::Int(10), Value::Int(12));
  EXPECT_TRUE(t->HasRangeIndex(0));
  EXPECT_EQ(locs.size(), 60u);  // 3 keys x 20 rows each
  for (const auto& loc : locs) {
    const Value& v = t->chunks()[loc.chunk]->At(loc.row, 0);
    EXPECT_FALSE(v.is_null());
    EXPECT_GE(v.AsInt(), 10);
    EXPECT_LE(v.AsInt(), 12);
  }
  // Emission order is scan order.
  for (size_t i = 1; i < locs.size(); ++i) {
    EXPECT_TRUE(locs[i - 1].chunk < locs[i].chunk ||
                (locs[i - 1].chunk == locs[i].chunk &&
                 locs[i - 1].row < locs[i].row));
  }
  // Exclusive bounds via the general form: 10 < k < 12 leaves one key.
  size_t hits = 0;
  Value lo = Value::Int(10), hi = Value::Int(12);
  t->ForEachIndexRangeMatch(0, &lo, false, &hi, false,
                            [&](const TableSnapshot::RowLoc&) { ++hits; });
  EXPECT_EQ(hits, 20u);
  // Unbounded sides.
  hits = 0;
  t->ForEachIndexRangeMatch(0, &lo, false, nullptr, false,
                            [&](const TableSnapshot::RowLoc&) { ++hits; });
  EXPECT_EQ(hits, 39u * 20u);  // keys 11..49, NULL excluded
  hits = 0;
  t->ForEachIndexRangeMatch(0, nullptr, false, nullptr, false,
                            [&](const TableSnapshot::RowLoc&) { ++hits; });
  EXPECT_EQ(hits, 1000u);  // everything but the NULL row
}

TEST(RangeIndexTest, ExtractColumnRangesShapes) {
  auto k = [] { return MakeColumnRef(0, "k", ValueType::kInt); };
  auto lit = [](int64_t v) { return MakeLiteral(Value::Int(v)); };

  // Simple comparison.
  auto r = ExtractColumnRanges(*MakeBinary(BinaryOp::kLt, k(), lit(10)));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->col, 0u);
  ASSERT_EQ(r->ranges.size(), 1u);
  EXPECT_FALSE(r->ranges[0].lo.has);
  EXPECT_TRUE(r->ranges[0].hi.has);
  EXPECT_EQ(r->ranges[0].hi.v, Value::Int(10));
  EXPECT_FALSE(r->ranges[0].hi.inclusive);

  // Mirrored literal: 10 < k is k > 10.
  r = ExtractColumnRanges(*MakeBinary(BinaryOp::kLt, lit(10), k()));
  ASSERT_TRUE(r.has_value());
  ASSERT_EQ(r->ranges.size(), 1u);
  EXPECT_TRUE(r->ranges[0].lo.has);
  EXPECT_FALSE(r->ranges[0].lo.inclusive);

  // AND intersects: 5 <= k AND k < 9.
  r = ExtractColumnRanges(*MakeBinary(
      BinaryOp::kAnd, MakeBinary(BinaryOp::kGe, k(), lit(5)),
      MakeBinary(BinaryOp::kLt, k(), lit(9))));
  ASSERT_TRUE(r.has_value());
  ASSERT_EQ(r->ranges.size(), 1u);
  EXPECT_EQ(r->ranges[0].lo.v, Value::Int(5));
  EXPECT_EQ(r->ranges[0].hi.v, Value::Int(9));

  // Contradiction: k < 3 AND k > 7 is unsatisfiable (empty, not nullopt).
  r = ExtractColumnRanges(*MakeBinary(
      BinaryOp::kAnd, MakeBinary(BinaryOp::kLt, k(), lit(3)),
      MakeBinary(BinaryOp::kGt, k(), lit(7))));
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->ranges.empty());

  // OR unions and merges touching intervals: k <= 5 OR k = 6 OR k > 6.
  r = ExtractColumnRanges(*MakeBinary(
      BinaryOp::kOr, MakeBinary(BinaryOp::kLe, k(), lit(5)),
      MakeBinary(BinaryOp::kOr, MakeBinary(BinaryOp::kEq, k(), lit(6)),
                 MakeBinary(BinaryOp::kGt, k(), lit(6)))));
  ASSERT_TRUE(r.has_value());
  ASSERT_EQ(r->ranges.size(), 2u);  // (-inf,5] and [6,+inf)

  // != is two open intervals.
  r = ExtractColumnRanges(*MakeBinary(BinaryOp::kNe, k(), lit(4)));
  ASSERT_TRUE(r.has_value());
  ASSERT_EQ(r->ranges.size(), 2u);

  // BETWEEN.
  r = ExtractColumnRanges(*MakeBetween(k(), lit(2), lit(8)));
  ASSERT_TRUE(r.has_value());
  ASSERT_EQ(r->ranges.size(), 1u);
  EXPECT_TRUE(r->ranges[0].lo.inclusive);
  EXPECT_TRUE(r->ranges[0].hi.inclusive);

  // NULL literal comparison matches nothing.
  r = ExtractColumnRanges(
      *MakeBinary(BinaryOp::kEq, k(), MakeLiteral(Value::Null())));
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->ranges.empty());

  // Not single-column reducible.
  ExprPtr v = MakeColumnRef(1, "v", ValueType::kInt);
  EXPECT_FALSE(ExtractColumnRanges(*MakeBinary(BinaryOp::kLt, k(), v))
                   .has_value());
  EXPECT_FALSE(ExtractColumnRanges(*MakeBinary(
                   BinaryOp::kAnd, MakeBinary(BinaryOp::kLt, k(), lit(9)),
                   MakeBinary(BinaryOp::kGt, v, lit(1))))
                   .has_value());
}

TEST(RangeIndexTest, ChunkMayMatchRangesRefinesWithSortedShard) {
  DataChunk chunk(2);
  for (int64_t i = 10; i <= 20; i += 2) chunk.AppendRow(Row(i, i));  // evens
  ColumnRanges gap;
  gap.col = 0;
  ValueRange r;
  r.lo = {true, Value::Int(13), true};
  r.hi = {true, Value::Int(13), true};
  gap.ranges.push_back(r);
  // Zone map [10,20] alone cannot rule out k=13.
  EXPECT_TRUE(ChunkMayMatchRanges(gap, chunk));
  // Once a probe materialized the ordered shard, the check is exact.
  bool built = false;
  chunk.SortedShardFor(0, &built);
  EXPECT_TRUE(built);
  EXPECT_FALSE(ChunkMayMatchRanges(gap, chunk));
  gap.ranges[0].lo.v = gap.ranges[0].hi.v = Value::Int(14);
  EXPECT_TRUE(ChunkMayMatchRanges(gap, chunk));
}

TEST(RangeIndexTest, ExecutorRangeScanBitIdenticalToFullScan) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", TwoColSchema()).ok());
  std::vector<Tuple> rows;
  const int64_t n = static_cast<int64_t>(DataChunk::kDefaultCapacity) * 3;
  for (int64_t i = 0; i < n; ++i) rows.push_back(Row(i % 301, i));
  ASSERT_TRUE(db.BulkLoad("t", rows).ok());
  ExprPtr pred = MakeBetween(MakeColumnRef(0, "k", ValueType::kInt),
                             MakeLiteral(Value::Int(40)),
                             MakeLiteral(Value::Int(60)));
  PlanPtr scan = MakeScan("t", db.GetTable("t")->schema(), pred);

  Executor scan_exec(&db), index_exec(&db);
  scan_exec.set_range_index_mode(RangeIndexMode::kOff);
  index_exec.set_range_index_mode(RangeIndexMode::kBuild);
  auto scanned = scan_exec.Execute(scan);
  auto indexed = index_exec.Execute(scan);
  ASSERT_TRUE(scanned.ok());
  ASSERT_TRUE(indexed.ok());
  EXPECT_EQ(scan_exec.scan_stats().index_range_scans, 0u);
  EXPECT_EQ(index_exec.scan_stats().index_range_scans, 1u);
  // Bit-identical: same rows in the same order.
  ASSERT_EQ(scanned.value().size(), indexed.value().size());
  for (size_t i = 0; i < scanned.value().size(); ++i) {
    EXPECT_EQ(scanned.value().rows[i], indexed.value().rows[i]);
  }
  // Default mode never builds for a one-off query; once the index exists
  // it is used.
  Executor avail_exec(&db);
  ASSERT_TRUE(avail_exec.Execute(scan).ok());
  EXPECT_EQ(avail_exec.scan_stats().index_range_scans, 1u);
}

}  // namespace
}  // namespace imp
