// Tests for the workload substrate: generators produce the documented
// shapes and the mixed-workload driver runs all three system modes.

#include <gtest/gtest.h>

#include <map>

#include "exec/executor.h"
#include "test_util.h"
#include "workload/crimes.h"
#include "workload/driver.h"
#include "workload/synthetic.h"
#include "workload/tpch.h"

namespace imp {
namespace {

TEST(SyntheticTest, TableShape) {
  Database db;
  SyntheticSpec spec;
  spec.name = "t";
  spec.num_rows = 5000;
  spec.num_groups = 50;
  ASSERT_TRUE(CreateSyntheticTable(&db, spec).ok());
  const Table* t = db.GetTable("t");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->NumRows(), 5000u);
  EXPECT_EQ(t->schema().size(), 11u);  // id + a + 9 correlated attributes

  // `a` stays in [0, num_groups) and all groups are hit.
  std::map<int64_t, size_t> groups;
  t->ForEachRow([&](const Tuple& row) {
    int64_t a = row[1].AsInt();
    ASSERT_GE(a, 0);
    ASSERT_LT(a, 50);
    groups[a]++;
  });
  EXPECT_EQ(groups.size(), 50u);

  // b is correlated with a: group means must increase with a overall.
  Executor exec(&db);
  auto means = exec.Execute(MustBind(db, "SELECT a, avg(b) AS m FROM t GROUP BY a"));
  ASSERT_TRUE(means.ok());
  double lo_mean = 0, hi_mean = 0;
  for (const Tuple& row : means.value().rows) {
    if (row[0].AsInt() < 10) lo_mean += row[1].ToDouble();
    if (row[0].AsInt() >= 40) hi_mean += row[1].ToDouble();
  }
  EXPECT_LT(lo_mean, hi_mean);
}

TEST(SyntheticTest, ValuesAreNonNegative) {
  // Non-negativity underpins safety rule R3 for SUM-HAVING queries.
  Database db;
  SyntheticSpec spec;
  spec.name = "t";
  spec.num_rows = 2000;
  spec.noise = 500.0;  // large noise would go negative without clamping
  ASSERT_TRUE(CreateSyntheticTable(&db, spec).ok());
  db.GetTable("t")->ForEachRow([](const Tuple& row) {
    for (size_t c = 2; c < row.size(); ++c) {
      EXPECT_GE(row[c].AsInt(), 0);
    }
  });
}

TEST(SyntheticTest, JoinPairMultiplicities) {
  Database db;
  JoinPairSpec spec;
  spec.distinct_keys = 100;
  spec.left_per_key = 3;
  spec.right_per_key = 2;
  ASSERT_TRUE(CreateJoinPair(&db, spec).ok());
  EXPECT_EQ(db.GetTable(spec.left_name)->NumRows(), 300u);
  EXPECT_EQ(db.GetTable(spec.right_name)->NumRows(), 200u);
  // Full selectivity: every left row joins right_per_key rows.
  Executor exec(&db);
  auto joined = exec.Execute(MustBind(
      db, "SELECT id FROM t1gbjoin JOIN tjoinhelp ON (a = ttid)"));
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined.value().size(), 600u);
}

TEST(SyntheticTest, JoinSelectivityControlsPartners) {
  Database db;
  JoinPairSpec spec;
  spec.distinct_keys = 1000;
  spec.selectivity = 0.1;
  spec.left_name = "l";
  spec.right_name = "r";
  ASSERT_TRUE(CreateJoinPair(&db, spec).ok());
  Executor exec(&db);
  auto joined =
      exec.Execute(MustBind(db, "SELECT id FROM l JOIN r ON (a = ttid)"));
  ASSERT_TRUE(joined.ok());
  // ~10% of 1000 keys join; allow sampling slack.
  EXPECT_GT(joined.value().size(), 40u);
  EXPECT_LT(joined.value().size(), 250u);
}

TEST(TpchTest, TablesAndQueries) {
  Database db;
  TpchSpec spec;
  spec.scale_factor = 0.002;
  ASSERT_TRUE(CreateTpchTables(&db, spec).ok());
  EXPECT_EQ(db.GetTable("nation")->NumRows(), 25u);
  EXPECT_EQ(db.GetTable("customer")->NumRows(), 300u);
  EXPECT_EQ(db.GetTable("orders")->NumRows(), 3000u);
  EXPECT_GT(db.GetTable("lineitem")->NumRows(), 3000u);

  Executor exec(&db);
  auto q10 = exec.Execute(MustBind(db, TpchQ10Sql()));
  ASSERT_TRUE(q10.ok());
  EXPECT_LE(q10.value().size(), 20u);
  EXPECT_GT(q10.value().size(), 0u);
  // Returned revenues are sorted descending.
  auto rev_at = [&](size_t i) { return q10.value().rows[i][2].ToDouble(); };
  for (size_t i = 1; i < q10.value().size(); ++i) {
    EXPECT_GE(rev_at(i - 1), rev_at(i));
  }

  auto q18 = exec.Execute(MustBind(db, TpchQ18Sql(150)));
  ASSERT_TRUE(q18.ok());
  auto q5 = exec.Execute(MustBind(db, TpchQ5Sql(100000)));
  ASSERT_TRUE(q5.ok());
  EXPECT_LE(q5.value().size(), 25u);
}

TEST(CrimesTest, TableAndQueries) {
  Database db;
  CrimesSpec spec;
  spec.num_rows = 20000;
  ASSERT_TRUE(CreateCrimesTable(&db, spec).ok());
  Executor exec(&db);
  auto cq1 = exec.Execute(MustBind(db, CrimesCq1Sql()));
  ASSERT_TRUE(cq1.ok());
  EXPECT_GT(cq1.value().size(), 300u);  // beats x years
  auto cq2 = exec.Execute(MustBind(db, CrimesCq2Sql(80)));
  ASSERT_TRUE(cq2.ok());
  EXPECT_GT(cq2.value().size(), 0u);
  EXPECT_LT(cq2.value().size(), 305u);
}

TEST(DriverTest, MixedWorkloadRunsAndCounts) {
  Database db;
  SyntheticSpec spec;
  spec.name = "t";
  spec.num_rows = 500;
  spec.num_groups = 20;
  ASSERT_TRUE(CreateSyntheticTable(&db, spec).ok());
  ImpConfig config;
  config.mode = ExecutionMode::kIncremental;
  ImpSystem system(&db, config);
  ASSERT_TRUE(system
                  .RegisterPartition(
                      RangePartition::EquiWidthInt("t", "b", 2, 0, 100, 5))
                  .ok());

  MixedWorkloadSpec wl;
  wl.total_ops = 60;
  wl.queries_per_round = 5;
  wl.updates_per_round = 1;  // 1U5Q
  Rng rng(3);
  auto query_gen = [](Rng& r) {
    return "SELECT a, sum(b) AS sb FROM t GROUP BY a HAVING sum(b) > " +
           std::to_string(500 + r.UniformInt(0, 20) * 10);
  };
  auto result = RunMixedWorkload(&system, query_gen,
                                 SyntheticInsertGen("t", 5, 20, 10000), wl);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().queries_run + result.value().updates_run, 60u);
  EXPECT_EQ(result.value().updates_run, 10u);  // 1 update per 5 queries
  EXPECT_EQ(result.value().queries_run, 50u);
  EXPECT_GT(result.value().stats.sketch_uses, 0u);
  EXPECT_GT(result.value().total_seconds, 0.0);
}

TEST(DriverTest, SyntheticInsertGenProducesFreshIds) {
  auto gen = SyntheticInsertGen("t", 3, 10, 555);
  Rng rng(1);
  BoundUpdate u1 = gen(rng);
  BoundUpdate u2 = gen(rng);
  ASSERT_EQ(u1.rows.size(), 3u);
  EXPECT_EQ(u1.rows[0][0], Value::Int(555));
  EXPECT_EQ(u2.rows[0][0], Value::Int(558));  // ids continue across calls
}

}  // namespace
}  // namespace imp
