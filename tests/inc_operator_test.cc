// Unit tests for the incremental operators of Sec. 5, including the paper's
// worked examples (Ex. 5.1 / Fig. 5 and Ex. 5.2).

#include <gtest/gtest.h>

#include "imp/inc_aggregate.h"
#include "imp/inc_join.h"
#include "imp/inc_operators.h"
#include "imp/inc_topk.h"
#include "test_util.h"

namespace imp {
namespace {


/// Run an operator on a context and materialize its output batch so tests
/// can inspect rows; errors pass through.
template <typename Op>
Result<AnnotatedDelta> ProcessToDelta(Op& op, const DeltaContext& ctx) {
  Result<DeltaBatch> batch = op.Process(ctx);
  if (!batch.ok()) return batch.status();
  return std::move(batch).value().Materialize();
}

/// One-column table "t" with an equi-width partition on that column.
class SingleTableFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema schema;
    schema.AddColumn("g", ValueType::kInt);  // group key
    schema.AddColumn("v", ValueType::kInt);  // value
    IMP_CHECK(db_.CreateTable("t", schema).ok());
    // Partition on v: 4 fragments over [0, 400).
    IMP_CHECK(catalog_
                  .Register(RangePartition(
                      "t", "v", 1,
                      {Value::Int(0), Value::Int(100), Value::Int(200),
                       Value::Int(300), Value::Int(400)}))
                  .ok());
  }

  std::unique_ptr<IncScan> NewScan(ExprPtr filter = nullptr) {
    return std::make_unique<IncScan>("t", std::move(filter), &db_, &catalog_,
                                     db_.GetTable("t")->schema(), &stats_);
  }

  /// Insert rows as a versioned statement and return the annotated context.
  DeltaContext Apply(const std::vector<Tuple>& inserts,
                     const std::vector<Tuple>& deletes = {}) {
    uint64_t from = db_.CurrentVersion();
    if (!inserts.empty()) IMP_CHECK(db_.Insert("t", inserts).ok());
    for (const Tuple& d : deletes) {
      IMP_CHECK(db_
                    .Delete("t",
                            [&](const Tuple& row) {
                              return TupleEq{}(row, d);
                            },
                            1)
                    .ok());
    }
    TableDelta delta = db_.ScanDelta("t", from, db_.CurrentVersion());
    return MakeDeltaContext({delta}, catalog_);
  }

  static Tuple Row(int64_t g, int64_t v) {
    return Tuple{Value::Int(g), Value::Int(v)};
  }

  Database db_;
  PartitionCatalog catalog_;
  MaintainStats stats_;
};

// ---- IncScan / IncSelect / IncProject ---------------------------------------

TEST_F(SingleTableFixture, ScanPassesAnnotatedDeltaThrough) {
  auto scan = NewScan();
  DeltaContext ctx = Apply({Row(1, 150)});
  auto out = ProcessToDelta(*scan, ctx);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.value().size(), 1u);
  EXPECT_EQ(out.value().rows[0].mult, 1);
  EXPECT_EQ(out.value().rows[0].sketch.SetBits(), std::vector<size_t>{1});
}

TEST_F(SingleTableFixture, ScanAppliesScanFilter) {
  ExprPtr filter = MakeBinary(BinaryOp::kLt, MakeColumnRef(1, "v", ValueType::kInt),
                              MakeLiteral(Value::Int(100)));
  auto scan = NewScan(filter);
  DeltaContext ctx = Apply({Row(1, 50), Row(2, 150)});
  auto out = ProcessToDelta(*scan, ctx);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.value().size(), 1u);
  EXPECT_EQ(out.value().rows[0].row[1], Value::Int(50));
}

TEST_F(SingleTableFixture, SelectFiltersDeltas) {
  ExprPtr pred = MakeBinary(BinaryOp::kGt, MakeColumnRef(0, "g", ValueType::kInt),
                            MakeLiteral(Value::Int(3)));
  IncSelect select(NewScan(), pred);
  DeltaContext ctx = Apply({Row(5, 10), Row(1, 20)});
  auto out = ProcessToDelta(select, ctx);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.value().size(), 1u);
  EXPECT_EQ(out.value().rows[0].row[0], Value::Int(5));
}

TEST_F(SingleTableFixture, ProjectMapsTuplesKeepsSketch) {
  std::vector<ExprPtr> exprs = {
      MakeBinary(BinaryOp::kMul, MakeColumnRef(1, "v", ValueType::kInt),
                 MakeLiteral(Value::Int(2)))};
  Schema out_schema;
  out_schema.AddColumn("v2", ValueType::kInt);
  IncProject project(NewScan(), exprs, out_schema);
  DeltaContext ctx = Apply({Row(1, 150)});
  auto out = ProcessToDelta(project, ctx);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.value().size(), 1u);
  EXPECT_EQ(out.value().rows[0].row[0], Value::Int(300));
  EXPECT_EQ(out.value().rows[0].sketch.SetBits(), std::vector<size_t>{1});
}

// ---- IncMerge (μ, Ex. 5.2) ----------------------------------------------------

TEST(IncMergeTest, Example52DeletionDropsFragment) {
  // S[ρ1]=1, S[ρ2]=3 via: t1{ρ2}, t2{ρ2}, t3{ρ1,ρ2}.
  IncMerge merge(2);
  AnnotatedRelation rel;
  AnnotatedRow t1, t2, t3;
  t1.sketch.Resize(2);
  t1.sketch.Set(1);
  t2.sketch = t1.sketch;
  t3.sketch.Resize(2);
  t3.sketch.Set(0);
  t3.sketch.Set(1);
  rel.rows = {t1, t2, t3};
  merge.Build(rel);
  EXPECT_EQ(merge.CounterFor(0), 1);
  EXPECT_EQ(merge.CounterFor(1), 3);

  // Process Δ-⟨t3, {ρ1, ρ2}⟩: count of ρ1 drops to 0 => remove ρ1.
  AnnotatedDelta delta;
  delta.Append(Tuple{}, t3.sketch, -1);
  SketchDelta out = merge.Process(delta);
  EXPECT_TRUE(out.added.empty());
  EXPECT_EQ(out.removed, std::vector<size_t>{0});
  EXPECT_EQ(merge.CounterFor(0), 0);
  EXPECT_EQ(merge.CounterFor(1), 2);
}

TEST(IncMergeTest, TransitionsComputedPerBatch) {
  IncMerge merge(1);
  // Insert then delete the same fragment within one batch: no transition.
  AnnotatedDelta delta;
  BitVector sk(1);
  sk.Set(0);
  delta.Append(Tuple{}, sk, 1);
  delta.Append(Tuple{}, sk, -1);
  SketchDelta out = merge.Process(delta);
  EXPECT_TRUE(out.empty());
}

TEST(IncMergeTest, ZeroToNonzeroAddsFragment) {
  IncMerge merge(3);
  AnnotatedDelta delta;
  BitVector sk(3);
  sk.Set(2);
  delta.Append(Tuple{}, sk, 2);
  SketchDelta out = merge.Process(delta);
  EXPECT_EQ(out.added, std::vector<size_t>{2});
  EXPECT_TRUE(merge.CurrentSketch().Test(2));
}

// ---- IncAggregate ---------------------------------------------------------------

class AggFixture : public SingleTableFixture {
 protected:
  std::unique_ptr<IncAggregate> NewAgg(
      std::vector<AggSpec> aggs, IncAggregate::Options options = {}) {
    std::vector<ExprPtr> groups = {MakeColumnRef(0, "g", ValueType::kInt)};
    Schema out;
    out.AddColumn("g", ValueType::kInt);
    for (const AggSpec& a : aggs) out.AddColumn(a.name, a.OutputType());
    return std::make_unique<IncAggregate>(NewScan(), groups, std::move(aggs),
                                          out, options, &stats_);
  }

  static AggSpec Sum() {
    return AggSpec{AggFunc::kSum, MakeColumnRef(1, "v", ValueType::kInt), "s"};
  }
  static AggSpec Cnt() { return AggSpec{AggFunc::kCount, nullptr, "n"}; }
  static AggSpec Avg() {
    return AggSpec{AggFunc::kAvg, MakeColumnRef(1, "v", ValueType::kInt), "a"};
  }
  static AggSpec Min() {
    return AggSpec{AggFunc::kMin, MakeColumnRef(1, "v", ValueType::kInt), "m"};
  }
  static AggSpec Max() {
    return AggSpec{AggFunc::kMax, MakeColumnRef(1, "v", ValueType::kInt), "M"};
  }
};

TEST_F(AggFixture, BuildComputesInitialGroups) {
  ASSERT_TRUE(db_.BulkLoad("t", {Row(1, 10), Row(1, 30), Row(2, 50)}).ok());
  auto agg = NewAgg({Sum(), Cnt()});
  auto rel = agg->Build(DeltaContext{});
  ASSERT_TRUE(rel.ok());
  ASSERT_EQ(rel.value().size(), 2u);
  for (const AnnotatedRow& r : rel.value().rows) {
    if (r.row[0] == Value::Int(1)) {
      EXPECT_EQ(r.row[1], Value::Int(40));
      EXPECT_EQ(r.row[2], Value::Int(2));
      EXPECT_EQ(r.sketch.SetBits(), std::vector<size_t>{0});  // v=10,30 in ρ0
    }
  }
}

TEST_F(AggFixture, UpdateExistingGroupEmitsDeleteInsertPair) {
  ASSERT_TRUE(db_.BulkLoad("t", {Row(1, 10)}).ok());
  auto agg = NewAgg({Sum()});
  ASSERT_TRUE(agg->Build(DeltaContext{}).ok());
  DeltaContext ctx = Apply({Row(1, 150)});
  auto out = ProcessToDelta(*agg, ctx);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.value().size(), 2u);
  const auto& rows = out.value().rows;
  // Δ-(1, 10) with sketch {ρ0}; Δ+(1, 160) with sketch {ρ0, ρ1}.
  EXPECT_EQ(rows[0].mult, -1);
  EXPECT_EQ(rows[0].row, (Tuple{Value::Int(1), Value::Int(10)}));
  EXPECT_EQ(rows[0].sketch.SetBits(), std::vector<size_t>{0});
  EXPECT_EQ(rows[1].mult, 1);
  EXPECT_EQ(rows[1].row, (Tuple{Value::Int(1), Value::Int(160)}));
  EXPECT_EQ(rows[1].sketch.SetBits(), (std::vector<size_t>{0, 1}));
}

TEST_F(AggFixture, NewGroupEmitsOnlyInsert) {
  auto agg = NewAgg({Sum()});
  ASSERT_TRUE(agg->Build(DeltaContext{}).ok());
  DeltaContext ctx = Apply({Row(7, 50)});
  auto out = ProcessToDelta(*agg, ctx);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.value().size(), 1u);
  EXPECT_EQ(out.value().rows[0].mult, 1);
  EXPECT_EQ(out.value().rows[0].row, (Tuple{Value::Int(7), Value::Int(50)}));
}

TEST_F(AggFixture, DeletedGroupEmitsOnlyDelete) {
  ASSERT_TRUE(db_.BulkLoad("t", {Row(3, 20)}).ok());
  auto agg = NewAgg({Sum()});
  ASSERT_TRUE(agg->Build(DeltaContext{}).ok());
  DeltaContext ctx = Apply({}, {Row(3, 20)});
  auto out = ProcessToDelta(*agg, ctx);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.value().size(), 1u);
  EXPECT_EQ(out.value().rows[0].mult, -1);
  EXPECT_EQ(out.value().rows[0].row, (Tuple{Value::Int(3), Value::Int(20)}));
  EXPECT_EQ(agg->NumGroups(), 0u);
}

TEST_F(AggFixture, OnePairPerGroupPerBatch) {
  ASSERT_TRUE(db_.BulkLoad("t", {Row(1, 10)}).ok());
  auto agg = NewAgg({Sum()});
  ASSERT_TRUE(agg->Build(DeltaContext{}).ok());
  // Many updates to one group within a batch: exactly one Δ-/Δ+ pair
  // (Sec. 7.1 lazy per-batch group snapshots).
  DeltaContext ctx = Apply({Row(1, 1), Row(1, 2), Row(1, 3), Row(1, 4)});
  auto out = ProcessToDelta(*agg, ctx);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().size(), 2u);
}

TEST_F(AggFixture, NoChangeEmitsNothing) {
  ASSERT_TRUE(db_.BulkLoad("t", {Row(1, 10)}).ok());
  auto agg = NewAgg({Cnt()});
  ASSERT_TRUE(agg->Build(DeltaContext{}).ok());
  // Insert and delete the same row in one batch: group state net-unchanged.
  DeltaContext ctx = Apply({Row(1, 10)}, {Row(1, 10)});
  auto out = ProcessToDelta(*agg, ctx);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out.value().empty());
}

TEST_F(AggFixture, AvgAndCountMaintained) {
  ASSERT_TRUE(db_.BulkLoad("t", {Row(1, 10), Row(1, 20)}).ok());
  auto agg = NewAgg({Avg(), Cnt()});
  ASSERT_TRUE(agg->Build(DeltaContext{}).ok());
  DeltaContext ctx = Apply({Row(1, 60)});
  auto out = ProcessToDelta(*agg, ctx);
  ASSERT_TRUE(out.ok());
  const auto& rows = out.value().rows;
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1].row, (Tuple{Value::Int(1), Value::Double(30.0),
                                Value::Int(3)}));
}

TEST_F(AggFixture, MinMaxMaintainedExactlyWithoutBuffer) {
  ASSERT_TRUE(db_.BulkLoad("t", {Row(1, 10), Row(1, 20), Row(1, 30)}).ok());
  auto agg = NewAgg({Min(), Max()});
  ASSERT_TRUE(agg->Build(DeltaContext{}).ok());
  // Delete the current minimum; new min must surface.
  DeltaContext ctx = Apply({}, {Row(1, 10)});
  auto out = ProcessToDelta(*agg, ctx);
  ASSERT_TRUE(out.ok());
  const auto& rows = out.value().rows;
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1].row, (Tuple{Value::Int(1), Value::Int(20), Value::Int(30)}));
}

TEST_F(AggFixture, MinBufferTruncationTriggersRecapture) {
  // Buffer of 2 smallest values; deleting both exhausts it.
  ASSERT_TRUE(
      db_.BulkLoad("t", {Row(1, 10), Row(1, 20), Row(1, 30), Row(1, 40)}).ok());
  IncAggregate::Options opts;
  opts.minmax_buffer = 2;
  auto agg = NewAgg({Min()}, opts);
  ASSERT_TRUE(agg->Build(DeltaContext{}).ok());
  // Deleting a value beyond the buffer only adjusts the overflow count.
  auto out1 = ProcessToDelta(*agg, Apply({}, {Row(1, 40)}));
  ASSERT_TRUE(out1.ok());
  EXPECT_TRUE(out1.value().empty());  // min unchanged
  // Deleting the two retained values exhausts the buffer -> recapture.
  auto out2 = ProcessToDelta(*agg, Apply({}, {Row(1, 10), Row(1, 20)}));
  ASSERT_FALSE(out2.ok());
  EXPECT_EQ(out2.status().code(), StatusCode::kNeedsRecapture);
}

TEST_F(AggFixture, GlobalAggregateAlwaysHasOneRow) {
  std::vector<ExprPtr> no_groups;
  Schema out;
  out.AddColumn("s", ValueType::kInt);
  auto agg = std::make_unique<IncAggregate>(NewScan(), no_groups,
                                            std::vector<AggSpec>{Sum()}, out,
                                            IncAggregate::Options{}, &stats_);
  auto rel = agg->Build(DeltaContext{});
  ASSERT_TRUE(rel.ok());
  ASSERT_EQ(rel.value().size(), 1u);
  EXPECT_TRUE(rel.value().rows[0].row[0].is_null());  // SUM over empty = NULL
  auto out_delta = ProcessToDelta(*agg, Apply({Row(1, 5)}));
  ASSERT_TRUE(out_delta.ok());
  ASSERT_EQ(out_delta.value().size(), 2u);  // Δ-(NULL) Δ+(5)
}

// ---- IncTopK ---------------------------------------------------------------------

class TopKFixture : public SingleTableFixture {
 protected:
  std::unique_ptr<IncTopK> NewTopK(size_t k, IncTopK::Options options = {}) {
    // Order by v ascending.
    std::vector<SortSpec> sorts = {SortSpec{1, true}};
    return std::make_unique<IncTopK>(NewScan(), sorts, k, options, &stats_);
  }
};

TEST_F(TopKFixture, BuildReturnsTopK) {
  ASSERT_TRUE(db_.BulkLoad("t", {Row(1, 30), Row(2, 10), Row(3, 20),
                                 Row(4, 40)}).ok());
  auto topk = NewTopK(2);
  auto rel = topk->Build(DeltaContext{});
  ASSERT_TRUE(rel.ok());
  ASSERT_EQ(rel.value().size(), 2u);
  EXPECT_EQ(rel.value().rows[0].row[1], Value::Int(10));
  EXPECT_EQ(rel.value().rows[1].row[1], Value::Int(20));
}

TEST_F(TopKFixture, InsertIntoTopKReEmits) {
  ASSERT_TRUE(db_.BulkLoad("t", {Row(1, 30), Row(2, 10)}).ok());
  auto topk = NewTopK(2);
  ASSERT_TRUE(topk->Build(DeltaContext{}).ok());
  auto out = ProcessToDelta(*topk, Apply({Row(9, 5)}));
  ASSERT_TRUE(out.ok());
  // Δ- old top-2 {10, 30}, Δ+ new top-2 {5, 10}: consolidated, 30 leaves
  // and 5 enters.
  int64_t net_5 = 0, net_30 = 0;
  for (const auto& r : out.value().rows) {
    if (r.row[1] == Value::Int(5)) net_5 += r.mult;
    if (r.row[1] == Value::Int(30)) net_30 += r.mult;
  }
  EXPECT_EQ(net_5, 1);
  EXPECT_EQ(net_30, -1);
}

TEST_F(TopKFixture, IrrelevantInsertEmitsNothing) {
  ASSERT_TRUE(db_.BulkLoad("t", {Row(1, 10), Row(2, 20)}).ok());
  auto topk = NewTopK(2);
  ASSERT_TRUE(topk->Build(DeltaContext{}).ok());
  auto out = ProcessToDelta(*topk, Apply({Row(9, 300)}));
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out.value().empty());
}

TEST_F(TopKFixture, DeletionPromotesNextRow) {
  ASSERT_TRUE(db_.BulkLoad("t", {Row(1, 10), Row(2, 20), Row(3, 30)}).ok());
  auto topk = NewTopK(2);
  ASSERT_TRUE(topk->Build(DeltaContext{}).ok());
  auto out = ProcessToDelta(*topk, Apply({}, {Row(1, 10)}));
  ASSERT_TRUE(out.ok());
  int64_t net_10 = 0, net_30 = 0;
  for (const auto& r : out.value().rows) {
    if (r.row[1] == Value::Int(10)) net_10 += r.mult;
    if (r.row[1] == Value::Int(30)) net_30 += r.mult;
  }
  EXPECT_EQ(net_10, -1);
  EXPECT_EQ(net_30, 1);
}

TEST_F(TopKFixture, BufferDropsTailAndCountsDropped) {
  ASSERT_TRUE(db_.BulkLoad("t", {Row(1, 10), Row(2, 20), Row(3, 30),
                                 Row(4, 40), Row(5, 50)}).ok());
  IncTopK::Options opts;
  opts.buffer = 3;
  auto topk = NewTopK(2, opts);
  ASSERT_TRUE(topk->Build(DeltaContext{}).ok());
  EXPECT_LE(topk->StoredCount(), 3 + 1);
  EXPECT_GE(topk->DroppedCount(), 1);
}

TEST_F(TopKFixture, BufferExhaustionTriggersRecapture) {
  ASSERT_TRUE(db_.BulkLoad("t", {Row(1, 10), Row(2, 20), Row(3, 30),
                                 Row(4, 40), Row(5, 50)}).ok());
  IncTopK::Options opts;
  opts.buffer = 2;
  auto topk = NewTopK(2, opts);
  ASSERT_TRUE(topk->Build(DeltaContext{}).ok());
  // Delete the retained prefix; with dropped rows pending this must force
  // a recapture rather than returning a wrong top-k.
  auto out = ProcessToDelta(*topk, Apply({}, {Row(1, 10), Row(2, 20)}));
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kNeedsRecapture);
}

// ---- IncJoin ---------------------------------------------------------------------

class JoinFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    LoadFig5Example(&db_);
    IMP_CHECK(catalog_.Register(Fig5PartitionR()).ok());
    IMP_CHECK(catalog_.Register(Fig5PartitionS()).ok());
  }

  /// Join (σ_{a>3} r) ⋈_{b=d} s as in Fig. 5.
  std::unique_ptr<IncJoin> NewJoin(bool use_bloom) {
    ExprPtr a_gt_3 = MakeBinary(BinaryOp::kGt,
                                MakeColumnRef(0, "a", ValueType::kInt),
                                MakeLiteral(Value::Int(3)));
    PlanPtr left_plan = MakeSelect(
        MakeScan("r", db_.GetTable("r")->schema()), a_gt_3);
    PlanPtr right_plan = MakeScan("s", db_.GetTable("s")->schema());

    auto left_scan = std::make_unique<IncScan>(
        "r", nullptr, &db_, &catalog_, db_.GetTable("r")->schema(), &stats_);
    auto left_op =
        std::make_unique<IncSelect>(std::move(left_scan), a_gt_3);
    auto right_op = std::make_unique<IncScan>(
        "s", nullptr, &db_, &catalog_, db_.GetTable("s")->schema(), &stats_);

    IncJoin::Options opts;
    opts.use_bloom = use_bloom;
    // b (index 1 of left output) = d (index 1 of right).
    return std::make_unique<IncJoin>(
        std::move(left_op), std::move(right_op), left_plan, right_plan,
        std::vector<JoinNode::KeyPair>{{1, 1}}, nullptr, &db_, &catalog_,
        opts, &stats_);
  }

  DeltaContext InsertR(int64_t a, int64_t b) {
    uint64_t from = db_.CurrentVersion();
    IMP_CHECK(db_.Insert("r", {{Value::Int(a), Value::Int(b)}}).ok());
    return MakeDeltaContext({db_.ScanDelta("r", from, db_.CurrentVersion())},
                            catalog_);
  }

  Database db_;
  PartitionCatalog catalog_;
  MaintainStats stats_;
};

TEST_F(JoinFixture, Fig5DeltaJoin) {
  auto join = NewJoin(/*use_bloom=*/true);
  ASSERT_TRUE(join->Build(DeltaContext{}).ok());
  // Δ+(5, 8): joins s tuple (7, 8); output Δ+⟨(5,8,7,8), {f1, g2}⟩.
  auto out = ProcessToDelta(*join, InsertR(5, 8));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.value().size(), 1u);
  const AnnotatedDeltaRow& row = out.value().rows[0];
  EXPECT_EQ(row.mult, 1);
  EXPECT_EQ(row.row, (Tuple{Value::Int(5), Value::Int(8), Value::Int(7),
                            Value::Int(8)}));
  // f1 = global 0, g2 = global 3.
  EXPECT_EQ(row.sketch.SetBits(), (std::vector<size_t>{0, 3}));
}

TEST_F(JoinFixture, BloomSkipsRoundTripForPartnerlessDelta) {
  auto join = NewJoin(/*use_bloom=*/true);
  ASSERT_TRUE(join->Build(DeltaContext{}).ok());
  size_t trips_before = stats_.join_round_trips;
  // b=999 has no partner in s ({d=9, d=8}); the bloom filter prunes it and
  // the backend round trip is skipped entirely (Sec. 7.2).
  auto out = ProcessToDelta(*join, InsertR(5, 999));
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out.value().empty());
  EXPECT_EQ(stats_.join_round_trips, trips_before);
  EXPECT_GE(stats_.bloom_pruned_rows, 1u);
}

TEST_F(JoinFixture, WithoutBloomRoundTripHappens) {
  auto join = NewJoin(/*use_bloom=*/false);
  ASSERT_TRUE(join->Build(DeltaContext{}).ok());
  size_t trips_before = stats_.join_round_trips;
  auto out = ProcessToDelta(*join, InsertR(5, 999));
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out.value().empty());
  EXPECT_EQ(stats_.join_round_trips, trips_before + 1);
}

TEST_F(JoinFixture, DeltaDeltaTermNotDoubleCounted) {
  auto join = NewJoin(/*use_bloom=*/true);
  ASSERT_TRUE(join->Build(DeltaContext{}).ok());
  // Insert matching rows on BOTH sides in one batch. The result must count
  // the new pair exactly once (ΔR⋈S_new + R_new⋈ΔS − ΔR⋈ΔS).
  uint64_t from = db_.CurrentVersion();
  ASSERT_TRUE(db_.Insert("r", {{Value::Int(4), Value::Int(12)}}).ok());
  ASSERT_TRUE(db_.Insert("s", {{Value::Int(6), Value::Int(12)}}).ok());
  DeltaContext ctx = MakeDeltaContext(
      {db_.ScanDelta("r", from, db_.CurrentVersion()),
       db_.ScanDelta("s", from, db_.CurrentVersion())},
      catalog_);
  auto out = ProcessToDelta(*join, ctx);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.value().size(), 1u);
  EXPECT_EQ(out.value().rows[0].mult, 1);
  EXPECT_EQ(out.value().rows[0].row,
            (Tuple{Value::Int(4), Value::Int(12), Value::Int(6),
                   Value::Int(12)}));
}

TEST_F(JoinFixture, DeletionProducesNegativeDelta) {
  auto join = NewJoin(/*use_bloom=*/true);
  ASSERT_TRUE(join->Build(DeltaContext{}).ok());
  uint64_t from = db_.CurrentVersion();
  ASSERT_TRUE(db_.Delete("r", [](const Tuple& row) {
                  return row[0] == Value::Int(9);
                }).ok());
  DeltaContext ctx = MakeDeltaContext(
      {db_.ScanDelta("r", from, db_.CurrentVersion())}, catalog_);
  auto out = ProcessToDelta(*join, ctx);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.value().size(), 1u);
  EXPECT_EQ(out.value().rows[0].mult, -1);
  // (9,9) joined (6,9).
  EXPECT_EQ(out.value().rows[0].row,
            (Tuple{Value::Int(9), Value::Int(9), Value::Int(6),
                   Value::Int(9)}));
}

}  // namespace
}  // namespace imp
