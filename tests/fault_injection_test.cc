// Fault-injection tests: failpoints (common/failpoint.h) and the graceful
// degradation they force out of the ingest / maintenance / query pipeline.
// The invariant under test everywhere: a sketch only ever PRUNES work, so
// with ANY single failpoint active, queries still return results
// bit-identical to the fault-free run (degraded to plain scans at worst),
// nothing deadlocks or aborts, and clearing the fault restores accelerated
// service without a restart.
//
// The CI fault suite runs this file under ASan/UBSan and TSan, plus an
// environment-activation smoke: IMP_FAILPOINTS="maintain.round=once"
// ./fault_injection_test --gtest_filter='*EnvActivation*'.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/ingestion_queue.h"
#include "common/thread_pool.h"
#include "exec/executor.h"
#include "middleware/imp_system.h"
#include "test_util.h"

namespace imp {
namespace {

// ---- Environment activation (must be FIRST: the fixture below resets the
// process-global registry, which would disarm env-armed points) -------------

// The CI smoke sets IMP_FAILPOINTS and runs exactly this test: the spec's
// first point must have been armed by the registry's lazy env parse. With
// the variable unset (the normal suite run) the test is skipped.
TEST(FailpointEnvTest, EnvActivation) {
  const char* spec = std::getenv("IMP_FAILPOINTS");
  if (spec == nullptr || *spec == '\0') {
    GTEST_SKIP() << "IMP_FAILPOINTS not set";
  }
  std::string first(spec);
  first = first.substr(0, first.find(';'));
  auto eq = first.find('=');
  ASSERT_NE(eq, std::string::npos) << "malformed IMP_FAILPOINTS: " << spec;
  std::string name = first.substr(0, eq);
  std::string trigger = first.substr(eq + 1);
  Failpoint& point = FailpointRegistry::Instance().GetOrCreate(name);
  EXPECT_EQ(point.armed(), trigger != "off")
      << "env spec did not arm '" << name << "'";
}

// ---- Helpers ---------------------------------------------------------------

FailpointRegistry& Registry() { return FailpointRegistry::Instance(); }

/// Isolation fixture: every case starts and ends with the process-global
/// registry disarmed and its fire counts zeroed.
class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override { Registry().Reset(); }
  void TearDown() override { Registry().Reset(); }
};

/// Fault-free reference: `sql` evaluated by the plain executor over `db`'s
/// published state. Every degradation assertion compares against this.
Relation RefResult(const Database& db, const std::string& sql) {
  PlanPtr plan = MustBind(db, sql);
  Executor exec(&db);
  auto result = exec.Execute(plan);
  IMP_CHECK(result.ok());
  return std::move(result).value();
}

Relation MustQuery(ImpSystem* system, const std::string& sql) {
  auto result = system->Query(sql);
  IMP_CHECK_MSG(result.ok(), result.status().ToString());
  return std::move(result).value();
}

/// Incremental-mode sales system with the paper's price partition.
ImpConfig SalesConfig() {
  ImpConfig config;
  config.mode = ExecutionMode::kIncremental;
  config.strategy = MaintenanceStrategy::kLazy;
  return config;
}

constexpr const char* kNewRow8 = "INSERT INTO sales VALUES (8,'HP',"
                                 "'HP EliteBook 860 G9',1299,6)";

// ---- Failpoint trigger modes ----------------------------------------------

TEST_F(FaultInjectionTest, TriggerModes) {
  Failpoint& fp = Registry().GetOrCreate("test.modes");

  fp.Arm(Failpoint::Mode::kOnce);
  EXPECT_TRUE(fp.ShouldFire());
  EXPECT_FALSE(fp.ShouldFire());  // self-disarmed after the one shot
  EXPECT_FALSE(fp.armed());
  EXPECT_EQ(fp.fire_count(), 1u);

  fp.Arm(Failpoint::Mode::kAlways);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(fp.ShouldFire());
  EXPECT_EQ(fp.fire_count(), 5u);  // Arm resets the counter

  fp.Arm(Failpoint::Mode::kTimes, 3);
  int fired = 0;
  for (int i = 0; i < 10; ++i) fired += fp.ShouldFire() ? 1 : 0;
  EXPECT_EQ(fired, 3);
  EXPECT_FALSE(fp.armed());  // exhausted -> disarmed fast path again

  fp.Arm(Failpoint::Mode::kNth, 3);  // every 3rd evaluation
  std::vector<bool> pattern;
  for (int i = 0; i < 9; ++i) pattern.push_back(fp.ShouldFire());
  EXPECT_EQ(pattern, (std::vector<bool>{false, false, true, false, false,
                                        true, false, false, true}));

  fp.Disarm();
  EXPECT_FALSE(fp.ShouldFire());
}

TEST_F(FaultInjectionTest, ProbTriggerIsSeededAndDeterministic) {
  // Identical seeds -> identical fire sequences (what makes prob-mode CI
  // runs reproducible); p=1 and p=0 are the degenerate anchors.
  Failpoint& a = Registry().GetOrCreate("test.prob.a");
  Failpoint& b = Registry().GetOrCreate("test.prob.b");
  a.Arm(Failpoint::Mode::kProb, 1, 0.5, 1234);
  b.Arm(Failpoint::Mode::kProb, 1, 0.5, 1234);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(a.ShouldFire(), b.ShouldFire());

  a.Arm(Failpoint::Mode::kProb, 1, 1.0, 7);
  b.Arm(Failpoint::Mode::kProb, 1, 0.0, 7);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(a.ShouldFire());
    EXPECT_FALSE(b.ShouldFire());
  }
}

TEST_F(FaultInjectionTest, ArmFromSpecParsesAndRejects) {
  ASSERT_TRUE(Registry().ArmFromSpec("").ok());  // empty spec = no-op
  ASSERT_TRUE(
      Registry().ArmFromSpec("test.spec.a=once;test.spec.b=nth:4").ok());
  EXPECT_TRUE(Registry().GetOrCreate("test.spec.a").armed());
  EXPECT_TRUE(Registry().GetOrCreate("test.spec.b").armed());
  ASSERT_TRUE(Registry().ArmFromSpec("test.spec.a=off").ok());
  EXPECT_FALSE(Registry().GetOrCreate("test.spec.a").armed());

  EXPECT_FALSE(Registry().ArmFromSpec("test.spec.c").ok());  // no '='
  EXPECT_FALSE(Registry().ArmFromSpec("test.spec.c=bogus").ok());
  EXPECT_FALSE(Registry().ArmFromSpec("test.spec.c=times:x").ok());
  EXPECT_FALSE(Registry().GetOrCreate("test.spec.c").armed());

  // A malformed tail must not leave the head armed silently inconsistent:
  // the head arms, the call still reports the failure.
  EXPECT_FALSE(Registry().ArmFromSpec("test.spec.d=always;=oops").ok());

  Registry().GetOrCreate("test.spec.b").ShouldFire();  // evaluations 1..
  Registry().Reset();
  EXPECT_FALSE(Registry().GetOrCreate("test.spec.b").armed());
  EXPECT_EQ(Registry().TotalFired(), 0u);
}

TEST_F(FaultInjectionTest, RegistryCountersTrackFires) {
  ASSERT_TRUE(Registry().ArmFromSpec("test.cnt.a=times:2;test.cnt.b=once").ok());
  Failpoint& a = Registry().GetOrCreate("test.cnt.a");
  Failpoint& b = Registry().GetOrCreate("test.cnt.b");
  while (a.ShouldFire()) {
  }
  while (b.ShouldFire()) {
  }
  EXPECT_EQ(a.fire_count(), 2u);
  EXPECT_EQ(b.fire_count(), 1u);
  EXPECT_EQ(Registry().TotalFired(), 3u);
  Registry().DisarmAll();
  EXPECT_EQ(Registry().TotalFired(), 3u);  // DisarmAll keeps counts
  bool found = false;
  for (const auto& [name, count] : Registry().Counters()) {
    if (name == "test.cnt.a") {
      found = true;
      EXPECT_EQ(count, 2u);
    }
  }
  EXPECT_TRUE(found);
}

// ---- ThreadPool / IngestionQueue hardening ---------------------------------

TEST_F(FaultInjectionTest, ParallelForCapturesEscapedExceptions) {
  ThreadPool pool(4);
  Status st = pool.ParallelFor(16, [](size_t i) {
    if (i == 5) throw std::runtime_error("boom at 5");
  });
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("boom at 5"), std::string::npos);
  // The pool survives: later rounds run normally.
  std::atomic<size_t> ran{0};
  EXPECT_TRUE(pool.ParallelFor(8, [&](size_t) { ++ran; }).ok());
  EXPECT_EQ(ran.load(), 8u);
}

TEST_F(FaultInjectionTest, QueueTimedPushAndClose) {
  IngestionQueue<int> queue(1);
  ASSERT_EQ(queue.PushWithUntil([] { return 1; },
                                std::chrono::milliseconds(0)),
            QueuePushOutcome::kOk);
  // kReject shape: zero budget reports kFull immediately, and the factory
  // must NOT have run (no version leak on a rejected push).
  bool made = false;
  EXPECT_EQ(queue.PushWithUntil(
                [&] {
                  made = true;
                  return 2;
                },
                std::chrono::milliseconds(0)),
            QueuePushOutcome::kFull);
  EXPECT_FALSE(made);
  // Timed block: expires while full.
  EXPECT_EQ(queue.PushWithUntil([] { return 2; },
                                std::chrono::milliseconds(30)),
            QueuePushOutcome::kFull);

  queue.Close();
  EXPECT_TRUE(queue.closed());
  EXPECT_EQ(queue.PushWithUntil([] { return 3; }, std::nullopt),
            QueuePushOutcome::kClosed);
  // Close still delivers what was queued, then reports exhaustion.
  auto item = queue.TryPop();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(*item, 1);
  queue.TaskDone();
  EXPECT_FALSE(queue.Pop().has_value());
  queue.WaitIdle();
}

TEST_F(FaultInjectionTest, QueueCloseWakesBlockedProducer) {
  IngestionQueue<int> queue(1);
  ASSERT_TRUE(queue.Push(1));
  std::atomic<int> outcome{-1};
  std::thread producer([&] {
    // No wait budget: parked until space or Close().
    outcome.store(static_cast<int>(
        queue.PushWithUntil([] { return 2; }, std::nullopt)));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(outcome.load(), -1);  // still parked on the full queue
  queue.Close();
  producer.join();
  EXPECT_EQ(outcome.load(), static_cast<int>(QueuePushOutcome::kClosed));
}

// ---- Capture failpoint: degraded capture heals on the next query -----------

TEST_F(FaultInjectionTest, CaptureFaultDegradesQueryThenHeals) {
  Database db;
  LoadSalesExample(&db);
  Relation expected = RefResult(db, kSalesQTop);

  ImpConfig config = SalesConfig();
  config.failpoints = "capture=once";  // armed through the config plumbing
  ImpSystem system(&db, config);
  ASSERT_TRUE(system.RegisterPartition(SalesPricePartition()).ok());

  // Faulted capture: the query degrades to a plain scan — bit-identical
  // answer, and the unsketchable verdict is NOT cached (transient fault).
  EXPECT_TRUE(MustQuery(&system, kSalesQTop).SameBag(expected));
  EXPECT_EQ(system.stats().degraded_queries, 1u);
  EXPECT_EQ(system.stats().sketch_captures, 0u);
  EXPECT_GE(system.Health().faults_injected, 1u);

  // The failpoint burned itself out: the very next query recaptures and
  // accelerates — recovery without restart.
  EXPECT_TRUE(MustQuery(&system, kSalesQTop).SameBag(expected));
  EXPECT_EQ(system.stats().sketch_captures, 1u);
  EXPECT_TRUE(MustQuery(&system, kSalesQTop).SameBag(expected));
  EXPECT_GE(system.stats().sketch_uses, 1u);
  EXPECT_EQ(system.stats().degraded_queries, 1u);  // no further degradation
}

// ---- Maintenance failpoint: lazy repair degrades, then re-accelerates ------

TEST_F(FaultInjectionTest, MaintainFaultDegradesQueriesBitIdentical) {
  Database db;
  LoadSalesExample(&db);
  ImpConfig config = SalesConfig();
  config.maintenance_backoff_ms = 0;  // retry on every round (real clock)
  ImpSystem system(&db, config);
  ASSERT_TRUE(system.RegisterPartition(SalesPricePartition()).ok());
  MustQuery(&system, kSalesQTop);  // capture
  ASSERT_TRUE(system.Update(kNewRow8).ok());  // sketch now stale

  ASSERT_TRUE(Registry().ArmFromSpec("maintain.round=always").ok());
  Relation expected = RefResult(db, kSalesQTop);
  // Lazy repair fails -> the query runs as a plain scan over the same
  // pinned view. Answer identical, never an error.
  EXPECT_TRUE(MustQuery(&system, kSalesQTop).SameBag(expected));
  EXPECT_GE(system.stats().degraded_queries, 1u);
  EXPECT_EQ(system.Health().sketches_stale, 1u);

  // Fault clears -> the next query repairs and re-accelerates in place.
  Registry().DisarmAll();
  size_t uses_before = system.stats().sketch_uses;
  EXPECT_TRUE(MustQuery(&system, kSalesQTop).SameBag(expected));
  EXPECT_GT(system.stats().sketch_uses, uses_before);
  EXPECT_EQ(system.Health().sketches_fresh, 1u);
  EXPECT_EQ(system.Health().sketches_stale, 0u);
}

// ---- Backoff on the injectable clock ---------------------------------------

TEST_F(FaultInjectionTest, BackoffDefersRetriesExponentiallyWithCap) {
  uint64_t now = 1000;  // outlives the system (declared first)
  Database db;
  LoadSalesExample(&db);
  ImpConfig config = SalesConfig();
  config.clock_ms = [&now] { return now; };
  config.maintenance_backoff_ms = 100;
  config.maintenance_backoff_cap_ms = 300;
  config.recapture_after_failures = 100;  // keep escalation out of this test
  config.quarantine_after_failures = 200;
  ImpSystem system(&db, config);
  ASSERT_TRUE(system.RegisterPartition(SalesPricePartition()).ok());
  MustQuery(&system, kSalesQTop);
  ASSERT_TRUE(system.Update(kNewRow8).ok());

  ASSERT_TRUE(Registry().ArmFromSpec("maintain.round=always").ok());
  Failpoint& fp = Registry().GetOrCreate(kFpMaintainRound);

  // Failure 1 at t=1000 -> next retry not before t+100.
  EXPECT_FALSE(system.MaintainAll().ok());
  EXPECT_EQ(fp.fire_count(), 1u);
  EXPECT_TRUE(system.MaintainAll().ok());  // still t=1000: deferred, silent
  EXPECT_EQ(fp.fire_count(), 1u);          // the entry was never attempted

  now = 1100;  // deadline reached -> failure 2, backoff doubles to 200.
  EXPECT_FALSE(system.MaintainAll().ok());
  EXPECT_EQ(fp.fire_count(), 2u);
  now = 1200;  // 100ms later: NOT enough any more (exponential growth).
  EXPECT_TRUE(system.MaintainAll().ok());
  EXPECT_EQ(fp.fire_count(), 2u);
  now = 1300;  // failure 3; raw backoff 400 is clamped to the 300 cap.
  EXPECT_FALSE(system.MaintainAll().ok());
  EXPECT_EQ(fp.fire_count(), 3u);
  now = 1599;
  EXPECT_TRUE(system.MaintainAll().ok());
  EXPECT_EQ(fp.fire_count(), 3u);
  now = 1600;  // capped deadline reached
  EXPECT_FALSE(system.MaintainAll().ok());
  EXPECT_EQ(fp.fire_count(), 4u);
  EXPECT_GE(system.stats().maintenance_retries, 3u);

  // Fault clears: the next due round repairs and resets the entry.
  Registry().DisarmAll();
  now = 2000;
  EXPECT_TRUE(system.MaintainAll().ok());
  EXPECT_EQ(system.Health().sketches_fresh, 1u);
  Relation expected = RefResult(db, kSalesQTop);
  size_t uses_before = system.stats().sketch_uses;
  EXPECT_TRUE(MustQuery(&system, kSalesQTop).SameBag(expected));
  EXPECT_GT(system.stats().sketch_uses, uses_before);
}

// The shift in min(cap, base << (k - 1)) must saturate, not wrap: whether
// it overflows depends on the BASE's magnitude, so a large configured base
// used to wrap uint64 after a handful of failures and produce a TINY retry
// deadline — immediate hammering exactly when a sketch is failing hard.
TEST_F(FaultInjectionTest, BackoffSaturatesInsteadOfWrappingOnLargeBase) {
  uint64_t now = 1000;
  Database db;
  LoadSalesExample(&db);
  ImpConfig config = SalesConfig();
  config.clock_ms = [&now] { return now; };
  config.maintenance_backoff_ms = uint64_t{1} << 60;  // extreme but legal
  config.maintenance_backoff_cap_ms = 500;
  config.recapture_after_failures = 100;  // keep escalation out of this test
  config.quarantine_after_failures = 200;
  ImpSystem system(&db, config);
  ASSERT_TRUE(system.RegisterPartition(SalesPricePartition()).ok());
  MustQuery(&system, kSalesQTop);
  ASSERT_TRUE(system.Update(kNewRow8).ok());

  ASSERT_TRUE(Registry().ArmFromSpec("maintain.round=always").ok());
  Failpoint& fp = Registry().GetOrCreate(kFpMaintainRound);

  // Five consecutive failures. At failure 5 the raw backoff is
  // 2^60 << 4 = 2^64 — the wrap-to-zero case before the fix; every raw
  // value is clamped to the 500ms cap, so each deadline is exactly +500.
  for (size_t failure = 1; failure <= 5; ++failure) {
    EXPECT_FALSE(system.MaintainAll().ok());
    EXPECT_EQ(fp.fire_count(), failure);
    now += 499;  // one tick short of the capped deadline: still deferred
    EXPECT_TRUE(system.MaintainAll().ok());
    EXPECT_EQ(fp.fire_count(), failure);
    now += 1;  // deadline reached
  }

  // Fault clears: the entry recovers at the next due round as usual.
  Registry().DisarmAll();
  EXPECT_TRUE(system.MaintainAll().ok());
  EXPECT_EQ(system.Health().sketches_fresh, 1u);
  Relation expected = RefResult(db, kSalesQTop);
  EXPECT_TRUE(MustQuery(&system, kSalesQTop).SameBag(expected));
}

// With an uncapped configuration the saturated backoff pins the deadline
// at UINT64_MAX — "never", not "now" — and now + backoff saturates too.
TEST_F(FaultInjectionTest, BackoffSaturatesAtUint64WithUncappedConfig) {
  uint64_t now = 1000;
  Database db;
  LoadSalesExample(&db);
  ImpConfig config = SalesConfig();
  config.clock_ms = [&now] { return now; };
  config.maintenance_backoff_ms = uint64_t{1} << 63;
  config.maintenance_backoff_cap_ms = UINT64_MAX;
  config.recapture_after_failures = 100;
  config.quarantine_after_failures = 200;
  ImpSystem system(&db, config);
  ASSERT_TRUE(system.RegisterPartition(SalesPricePartition()).ok());
  MustQuery(&system, kSalesQTop);
  ASSERT_TRUE(system.Update(kNewRow8).ok());

  ASSERT_TRUE(Registry().ArmFromSpec("maintain.round=always").ok());
  Failpoint& fp = Registry().GetOrCreate(kFpMaintainRound);

  EXPECT_FALSE(system.MaintainAll().ok());  // failure 1: deadline now + 2^63
  EXPECT_EQ(fp.fire_count(), 1u);
  now = (uint64_t{1} << 63) + 1000;  // exactly the deadline -> failure 2
  EXPECT_FALSE(system.MaintainAll().ok());
  EXPECT_EQ(fp.fire_count(), 2u);
  // Failure 2's raw backoff is 2^64: saturated to UINT64_MAX, and
  // now + UINT64_MAX saturates again instead of wrapping to "due now".
  now = UINT64_MAX - 1;
  EXPECT_TRUE(system.MaintainAll().ok());
  EXPECT_EQ(fp.fire_count(), 2u);
}

// Shift counts past 63 (more failures than the word has bits) are equally
// saturating — the old expression was undefined behaviour there and on
// x86 would alias to a small shift, shrinking the deadline below the cap.
TEST_F(FaultInjectionTest, BackoffSaturatesBeyondSixtyFourFailures) {
  uint64_t now = 1000;
  Database db;
  LoadSalesExample(&db);
  ImpConfig config = SalesConfig();
  config.clock_ms = [&now] { return now; };
  config.maintenance_backoff_ms = 1;
  config.maintenance_backoff_cap_ms = 100;
  config.recapture_after_failures = 1000;
  config.quarantine_after_failures = 2000;
  ImpSystem system(&db, config);
  ASSERT_TRUE(system.RegisterPartition(SalesPricePartition()).ok());
  MustQuery(&system, kSalesQTop);
  ASSERT_TRUE(system.Update(kNewRow8).ok());

  ASSERT_TRUE(Registry().ArmFromSpec("maintain.round=always").ok());
  Failpoint& fp = Registry().GetOrCreate(kFpMaintainRound);

  // 70 consecutive failures; from failure 8 on the cap pins every
  // deadline at +100, including the shift >= 64 region (failures 65+).
  for (size_t failure = 1; failure <= 70; ++failure) {
    EXPECT_FALSE(system.MaintainAll().ok());
    ASSERT_EQ(fp.fire_count(), failure);
    now += 100;
  }
  // Failure 70's shift is 69: the aliased-shift bug would have set a
  // 32ms deadline here; the saturating fix keeps the full 100ms cap.
  now -= 100;
  now += 99;
  EXPECT_TRUE(system.MaintainAll().ok());
  ASSERT_EQ(fp.fire_count(), 70u);
  now += 1;
  EXPECT_FALSE(system.MaintainAll().ok());
  EXPECT_EQ(fp.fire_count(), 71u);
}

// base == 0 keeps its documented meaning: retry immediately, no deferral.
TEST_F(FaultInjectionTest, ZeroBackoffBaseStillRetriesImmediately) {
  uint64_t now = 1000;
  Database db;
  LoadSalesExample(&db);
  ImpConfig config = SalesConfig();
  config.clock_ms = [&now] { return now; };
  config.maintenance_backoff_ms = 0;
  config.recapture_after_failures = 100;
  config.quarantine_after_failures = 200;
  ImpSystem system(&db, config);
  ASSERT_TRUE(system.RegisterPartition(SalesPricePartition()).ok());
  MustQuery(&system, kSalesQTop);
  ASSERT_TRUE(system.Update(kNewRow8).ok());

  ASSERT_TRUE(Registry().ArmFromSpec("maintain.round=always").ok());
  Failpoint& fp = Registry().GetOrCreate(kFpMaintainRound);
  // Same clock tick, three rounds, three attempts: nothing defers.
  EXPECT_FALSE(system.MaintainAll().ok());
  EXPECT_FALSE(system.MaintainAll().ok());
  EXPECT_FALSE(system.MaintainAll().ok());
  EXPECT_EQ(fp.fire_count(), 3u);
}

// ---- Escalation: repeated incremental failures recapture from base ---------

TEST_F(FaultInjectionTest, EscalationRecapturesAfterRepeatedFailures) {
  Database db;
  LoadSalesExample(&db);
  ImpConfig config = SalesConfig();
  config.maintenance_backoff_ms = 0;
  config.recapture_after_failures = 2;
  config.quarantine_after_failures = 10;
  ImpSystem system(&db, config);
  ASSERT_TRUE(system.RegisterPartition(SalesPricePartition()).ok());
  MustQuery(&system, kSalesQTop);
  ASSERT_TRUE(system.Update(kNewRow8).ok());

  // Only the incremental round faults; the capture path is healthy, so the
  // escalation's rebuild-from-base succeeds.
  ASSERT_TRUE(Registry().ArmFromSpec("maintain.round=always").ok());
  EXPECT_FALSE(system.MaintainAll().ok());  // failure 1
  EXPECT_EQ(system.Health().sketches_stale, 1u);
  // Failure 2 reaches recapture_after_failures: the round still reports
  // the failure, but the escalation rebuilt the entry on the spot.
  EXPECT_FALSE(system.MaintainAll().ok());
  EXPECT_EQ(system.Health().sketches_fresh, 1u);
  EXPECT_EQ(system.Health().sketches_stale, 0u);
  EXPECT_EQ(system.stats().sketch_captures, 2u);  // initial + escalation

  // The rebuilt sketch serves queries (fast path, no maintenance, so the
  // still-armed round failpoint is never reached).
  Relation expected = RefResult(db, kSalesQTop);
  size_t uses_before = system.stats().sketch_uses;
  EXPECT_TRUE(MustQuery(&system, kSalesQTop).SameBag(expected));
  EXPECT_GT(system.stats().sketch_uses, uses_before);
}

// ---- Quarantine + explicit repair ------------------------------------------

TEST_F(FaultInjectionTest, QuarantineExcludesEntryUntilRepaired) {
  Database db;
  LoadSalesExample(&db);
  ImpConfig config = SalesConfig();
  config.maintenance_backoff_ms = 0;
  config.recapture_after_failures = 2;
  config.quarantine_after_failures = 3;
  ImpSystem system(&db, config);
  ASSERT_TRUE(system.RegisterPartition(SalesPricePartition()).ok());
  MustQuery(&system, kSalesQTop);
  ASSERT_TRUE(system.Update(kNewRow8).ok());

  // Both the incremental round AND the capture path fault: escalation
  // cannot save the entry, so it descends the whole ladder.
  ASSERT_TRUE(
      Registry().ArmFromSpec("maintain.round=always;capture=always").ok());
  EXPECT_FALSE(system.MaintainAll().ok());  // failure 1 -> stale
  EXPECT_FALSE(system.MaintainAll().ok());  // failure 2 -> escalation fails
  EXPECT_FALSE(system.MaintainAll().ok());  // failure 3 -> quarantined
  EXPECT_EQ(system.Health().sketches_quarantined, 1u);
  EXPECT_EQ(system.stats().sketches_quarantined, 1u);

  // Quarantined entries sit rounds out (no further failpoint evaluations)
  // and do not pin the delta log.
  size_t fired = Registry().GetOrCreate(kFpMaintainRound).fire_count();
  EXPECT_TRUE(system.MaintainAll().ok());
  EXPECT_EQ(Registry().GetOrCreate(kFpMaintainRound).fire_count(), fired);
  EXPECT_EQ(system.sketches().MinValidVersion(), UINT64_MAX);

  // Queries degrade to plain scans — bit-identical, never an error.
  Relation expected = RefResult(db, kSalesQTop);
  size_t degraded_before = system.stats().degraded_queries;
  EXPECT_TRUE(MustQuery(&system, kSalesQTop).SameBag(expected));
  EXPECT_GT(system.stats().degraded_queries, degraded_before);

  // Fault clears -> the explicit repair recaptures and restores service
  // in the same process.
  Registry().Reset();
  ASSERT_TRUE(system.RepairQuarantined().ok());
  EXPECT_EQ(system.Health().sketches_quarantined, 0u);
  EXPECT_EQ(system.Health().sketches_fresh, 1u);
  size_t uses_before = system.stats().sketch_uses;
  EXPECT_TRUE(MustQuery(&system, kSalesQTop).SameBag(expected));
  EXPECT_GT(system.stats().sketch_uses, uses_before);
}

// ---- Ingest apply failpoint: transient retry and poisoned dead-letter ------

TEST_F(FaultInjectionTest, IngestApplyTransientFaultIsRetried) {
  Database db, ref;
  LoadSalesExample(&db);
  LoadSalesExample(&ref);
  ImpConfig config = SalesConfig();
  config.async_ingestion = true;
  config.failpoints = "ingest.apply=once";
  ImpSystem system(&db, config);
  ASSERT_TRUE(system.RegisterPartition(SalesPricePartition()).ok());

  ASSERT_TRUE(system.Update(kNewRow8).ok());
  ASSERT_TRUE(system.WaitForIngest().ok());  // retried, applied, no error
  EXPECT_GE(system.stats().ingest_retries, 1u);
  EXPECT_EQ(system.Health().dead_letter_size, 0u);

  ASSERT_TRUE(ref.Insert("sales", {{Value::Int(8), Value::String("HP"),
                                    Value::String("HP EliteBook 860 G9"),
                                    Value::Int(1299), Value::Int(6)}})
                  .ok());
  EXPECT_TRUE(MustQuery(&system, kSalesQTop).SameBag(RefResult(ref, kSalesQTop)));
}

TEST_F(FaultInjectionTest, IngestApplyPoisonedStatementDeadLetters) {
  Database db, ref;
  LoadSalesExample(&db);
  LoadSalesExample(&ref);  // the poisoned statement never lands
  ImpConfig config = SalesConfig();
  config.async_ingestion = true;
  config.ingest_retry_limit = 2;
  ImpSystem system(&db, config);
  ASSERT_TRUE(system.RegisterPartition(SalesPricePartition()).ok());

  ASSERT_TRUE(Registry().ArmFromSpec("ingest.apply=always").ok());
  auto ticket = system.Update(kNewRow8);
  ASSERT_TRUE(ticket.ok());  // the ticket is handed out before the apply
  Status deferred = system.WaitForIngest();
  ASSERT_FALSE(deferred.ok());
  EXPECT_NE(deferred.ToString().find("failpoint fired: ingest.apply"),
            std::string::npos);

  // The statement is dead-lettered, its version retired: the watermark
  // advances past it instead of wedging every future ReadView.
  std::vector<DeadLetter> letters = system.DeadLetters();
  ASSERT_EQ(letters.size(), 1u);
  EXPECT_EQ(letters[0].update.table, "sales");
  EXPECT_EQ(letters[0].version, ticket.value());
  EXPECT_GE(db.StableVersion(), ticket.value());
  EXPECT_EQ(system.stats().ingest_dead_letters, 1u);
  EXPECT_EQ(system.Health().dead_letter_size, 1u);
  EXPECT_TRUE(system.Health().ingest_worker_alive);  // poisoned != dead

  // Queries serve the state WITHOUT the poisoned statement, bit-identical
  // to a run that never saw it.
  EXPECT_TRUE(MustQuery(&system, kSalesQTop).SameBag(RefResult(ref, kSalesQTop)));

  // Fault clears: the worker (still alive) applies new statements; only
  // the sticky first-error of WaitForIngest remembers the incident.
  Registry().DisarmAll();
  ASSERT_TRUE(system
                  .Update("INSERT INTO sales VALUES (9,'HP',"
                          "'HP ZBook Fury',2499,3)")
                  .ok());
  EXPECT_FALSE(system.WaitForIngest().ok());  // sticky deferred error
  ASSERT_TRUE(ref.Insert("sales", {{Value::Int(9), Value::String("HP"),
                                    Value::String("HP ZBook Fury"),
                                    Value::Int(2499), Value::Int(3)}})
                  .ok());
  EXPECT_TRUE(MustQuery(&system, kSalesQTop).SameBag(RefResult(ref, kSalesQTop)));
}

// ---- Worker death: fail-stop without deadlock ------------------------------

TEST_F(FaultInjectionTest, WorkerCrashFailStopsWithoutDeadlock) {
  Database db;
  LoadSalesExample(&db);
  Relation expected = RefResult(db, kSalesQTop);
  ImpConfig config = SalesConfig();
  config.async_ingestion = true;
  config.failpoints = "ingest.worker_crash=once";
  ImpSystem system(&db, config);
  ASSERT_TRUE(system.RegisterPartition(SalesPricePartition()).ok());

  auto ticket = system.Update(kNewRow8);
  ASSERT_TRUE(ticket.ok());  // enqueued before the worker died
  // The drain barrier must return (with the death), never hang.
  Status death = system.WaitForIngest();
  ASSERT_FALSE(death.ok());
  EXPECT_NE(death.ToString().find("worker_crash"), std::string::npos);

  SystemHealth health = system.Health();
  EXPECT_FALSE(health.ingest_worker_alive);
  EXPECT_FALSE(health.last_ingest_error.empty());
  EXPECT_EQ(health.dead_letter_size, 1u);  // the in-flight statement buried

  // Producers fail fast with kUnavailable instead of parking forever.
  auto rejected = system.Update(kNewRow8);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);

  // The watermark advanced past the buried ticket (versions retired), and
  // the READ path keeps serving the last stable state.
  EXPECT_GE(db.StableVersion(), ticket.value());
  EXPECT_TRUE(MustQuery(&system, kSalesQTop).SameBag(expected));
}

// ---- Snapshot publication: retried, ultimately forced ----------------------

TEST_F(FaultInjectionTest, PublishFaultIsRetriedThenForced) {
  Database db;
  LoadSalesExample(&db);
  ImpConfig config;
  config.mode = ExecutionMode::kNoSketch;  // exercise the bare write path
  ImpSystem system(&db, config);

  // Transient: the single shot is absorbed by the retry loop.
  ASSERT_TRUE(Registry().ArmFromSpec("snapshot.publish=once").ok());
  ASSERT_TRUE(system.Update(kNewRow8).ok());
  EXPECT_EQ(db.publish_faults(), 1u);
  EXPECT_EQ(db.forced_publishes(), 0u);
  Relation after_one = RefResult(db, kSalesQTop);
  EXPECT_TRUE(MustQuery(&system, kSalesQTop).SameBag(after_one));

  // Persistent: publication is the one fault that may never win (a
  // skipped publication under a retired version breaks superset safety),
  // so after the retry budget it is forced through — the row is visible.
  ASSERT_TRUE(Registry().ArmFromSpec("snapshot.publish=always").ok());
  ASSERT_TRUE(system
                  .Update("INSERT INTO sales VALUES (9,'HP',"
                          "'HP ZBook Fury',2499,3)")
                  .ok());
  EXPECT_GE(db.forced_publishes(), 1u);
  Registry().DisarmAll();
  // The forced publication made the row visible despite the armed fault.
  EXPECT_EQ(db.GetTable("sales")->Snapshot()->num_rows(), 9u);
  EXPECT_TRUE(MustQuery(&system, kSalesQTop).SameBag(RefResult(db, kSalesQTop)));
}

TEST_F(FaultInjectionTest, AsyncPublishFaultIsAbsorbedByWorker) {
  Database db, ref;
  LoadSalesExample(&db);
  LoadSalesExample(&ref);
  ImpConfig config = SalesConfig();
  config.async_ingestion = true;
  config.publish_retry_limit = 2;
  ImpSystem system(&db, config);
  ASSERT_TRUE(system.RegisterPartition(SalesPricePartition()).ok());

  ASSERT_TRUE(Registry().ArmFromSpec("snapshot.publish=always").ok());
  ASSERT_TRUE(system.Update(kNewRow8).ok());
  ASSERT_TRUE(system.WaitForIngest().ok());  // forced publication, no error
  EXPECT_GE(system.stats().publish_retries, 1u);
  EXPECT_GE(db.forced_publishes(), 1u);
  Registry().DisarmAll();

  ASSERT_TRUE(ref.Insert("sales", {{Value::Int(8), Value::String("HP"),
                                    Value::String("HP EliteBook 860 G9"),
                                    Value::Int(1299), Value::Int(6)}})
                  .ok());
  EXPECT_TRUE(MustQuery(&system, kSalesQTop).SameBag(RefResult(ref, kSalesQTop)));
}

// ---- Queue-full policy at the system level ---------------------------------

TEST_F(FaultInjectionTest, QueueFullPolicyRejectsOrTimesOut) {
  // Deterministically wedge the worker: hold the sales write stripe so the
  // popped statement blocks in StageIngestTask, then fill the queue.
  Database db;
  LoadSalesExample(&db);
  ImpConfig config = SalesConfig();
  config.async_ingestion = true;
  config.ingest_queue_capacity = 1;
  config.queue_full_policy = QueueFullPolicy::kReject;
  ImpSystem system(&db, config);

  auto stripe = db.WriteSession("sales");
  ASSERT_TRUE(system.Update(kNewRow8).ok());  // popped, stuck on the stripe
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (system.Health().ingest_queue_depth != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(system.Health().ingest_queue_depth, 0u);
  ASSERT_TRUE(system.Update(kNewRow8).ok());  // fills the (capacity-1) queue
  auto rejected = system.Update(kNewRow8);    // kReject: fail fast, no park
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(rejected.status().ToString().find("queue full"),
            std::string::npos);

  stripe.unlock();
  ASSERT_TRUE(system.WaitForIngest().ok());  // both accepted statements land

  // kBlock + timeout: the producer waits, then gets the same verdict.
  Database db2;
  LoadSalesExample(&db2);
  ImpConfig config2 = SalesConfig();
  config2.async_ingestion = true;
  config2.ingest_queue_capacity = 1;
  config2.queue_full_policy = QueueFullPolicy::kBlock;
  config2.ingest_push_timeout_ms = 40;
  ImpSystem system2(&db2, config2);
  auto stripe2 = db2.WriteSession("sales");
  ASSERT_TRUE(system2.Update(kNewRow8).ok());
  deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (system2.Health().ingest_queue_depth != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(system2.Health().ingest_queue_depth, 0u);
  ASSERT_TRUE(system2.Update(kNewRow8).ok());
  auto start = std::chrono::steady_clock::now();
  auto timed_out = system2.Update(kNewRow8);
  ASSERT_FALSE(timed_out.ok());
  EXPECT_EQ(timed_out.status().code(), StatusCode::kUnavailable);
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - start)
                .count(),
            30);  // actually waited (tolerates coarse clocks)
  stripe2.unlock();
  ASSERT_TRUE(system2.WaitForIngest().ok());
}

}  // namespace
}  // namespace imp
