// Tests for the SQL front end: lexer, parser, binder. Exercises every query
// template from the paper's Appendix A.

#include <gtest/gtest.h>

#include "sql/binder.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "test_util.h"
#include "workload/crimes.h"
#include "workload/synthetic.h"
#include "workload/tpch.h"

namespace imp {
namespace {

// ---- Lexer -----------------------------------------------------------------

TEST(LexerTest, BasicTokens) {
  auto tokens = Tokenize("SELECT a, b2 FROM t WHERE a >= 3.5 AND b <> 'x''y'");
  ASSERT_TRUE(tokens.ok());
  const auto& ts = tokens.value();
  EXPECT_TRUE(ts[0].IsKeyword("SELECT"));
  EXPECT_EQ(ts[1].text, "a");
  EXPECT_TRUE(ts[2].IsSymbol(","));
  EXPECT_EQ(ts[3].text, "b2");
  // ... WHERE a >= 3.5 ...
  size_t i = 0;
  while (!ts[i].IsKeyword("WHERE")) ++i;
  EXPECT_EQ(ts[i + 1].text, "a");
  EXPECT_TRUE(ts[i + 2].IsSymbol(">="));
  EXPECT_EQ(ts[i + 3].type, TokenType::kDouble);
  EXPECT_DOUBLE_EQ(ts[i + 3].dbl_val, 3.5);
  // escaped quote in string
  EXPECT_EQ(ts.back().type, TokenType::kEnd);
  bool found = false;
  for (const Token& t : ts) {
    if (t.type == TokenType::kString) {
      EXPECT_EQ(t.text, "x'y");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(LexerTest, CommentsSkipped) {
  auto tokens = Tokenize("SELECT a -- trailing comment\nFROM t");
  ASSERT_TRUE(tokens.ok());
  size_t idents = 0;
  for (const Token& t : tokens.value()) {
    if (t.type == TokenType::kIdent) ++idents;
  }
  EXPECT_EQ(idents, 4u);  // SELECT a FROM t
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("SELECT 'unterminated").ok());
  EXPECT_FALSE(Tokenize("SELECT @").ok());
}

// ---- Parser ----------------------------------------------------------------

TEST(ParserTest, SimpleSelect) {
  auto stmt = ParseSelect("SELECT a, b AS bee FROM t WHERE a > 3");
  ASSERT_TRUE(stmt.ok());
  const SelectStmt& s = *stmt.value();
  ASSERT_EQ(s.items.size(), 2u);
  EXPECT_EQ(s.items[1].alias, "bee");
  ASSERT_EQ(s.from.size(), 1u);
  EXPECT_EQ(s.from[0]->table, "t");
  ASSERT_NE(s.where, nullptr);
  EXPECT_EQ(s.where->kind, ParsedExpr::Kind::kBinary);
  EXPECT_EQ(s.where->bin_op, BinaryOp::kGt);
}

TEST(ParserTest, GroupByHavingOrderLimit) {
  auto stmt = ParseSelect(
      "SELECT a, avg(b) AS ab FROM t GROUP BY a "
      "HAVING avg(c) < 1000 AND avg(d) < 1200 "
      "ORDER BY ab DESC LIMIT 10");
  ASSERT_TRUE(stmt.ok());
  const SelectStmt& s = *stmt.value();
  EXPECT_EQ(s.group_by.size(), 1u);
  ASSERT_NE(s.having, nullptr);
  ASSERT_EQ(s.order_by.size(), 1u);
  EXPECT_FALSE(s.order_by[0].ascending);
  EXPECT_EQ(s.limit, 10u);
}

TEST(ParserTest, JoinWithOnAndSubquery) {
  auto stmt = ParseSelect(
      "SELECT a, avg(b) AS ab "
      "FROM (SELECT a, b, c FROM t WHERE b < 10) tt "
      "JOIN tjoinhelp ON (a = ttid) "
      "GROUP BY a HAVING avg(c) < 10");
  ASSERT_TRUE(stmt.ok());
  const SelectStmt& s = *stmt.value();
  ASSERT_EQ(s.from.size(), 1u);
  EXPECT_EQ(s.from[0]->kind, TableRef::Kind::kJoin);
  EXPECT_EQ(s.from[0]->left->kind, TableRef::Kind::kSubquery);
  EXPECT_EQ(s.from[0]->left->alias, "tt");
  EXPECT_EQ(s.from[0]->right->table, "tjoinhelp");
}

TEST(ParserTest, CommaJoinList) {
  auto stmt = ParseSelect(
      "SELECT c_custkey FROM customer, orders, lineitem, nation "
      "WHERE c_custkey = o_custkey");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt.value()->from.size(), 4u);
}

TEST(ParserTest, CountStarAndQualifiedNames) {
  auto stmt = ParseSelect("SELECT t.a, count(*) FROM t GROUP BY t.a");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt.value()->items[0].expr->name, "t.a");
  EXPECT_EQ(stmt.value()->items[1].expr->kind, ParsedExpr::Kind::kFunc);
  EXPECT_EQ(stmt.value()->items[1].expr->args[0]->kind,
            ParsedExpr::Kind::kStar);
}

TEST(ParserTest, InsertDeleteUpdate) {
  auto ins = ParseStatement("INSERT INTO t VALUES (1, 'x'), (2, 'y')");
  ASSERT_TRUE(ins.ok());
  EXPECT_EQ(ins.value().kind, Statement::Kind::kInsert);
  EXPECT_EQ(ins.value().insert->rows.size(), 2u);

  auto del = ParseStatement("DELETE FROM t WHERE id < 5;");
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(del.value().kind, Statement::Kind::kDelete);

  auto upd = ParseStatement("UPDATE t SET v = v + 1 WHERE id = 3");
  ASSERT_TRUE(upd.ok());
  EXPECT_EQ(upd.value().kind, Statement::Kind::kUpdate);
  EXPECT_EQ(upd.value().update->sets.size(), 1u);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseStatement("SELECT FROM t").ok());
  EXPECT_FALSE(ParseStatement("SELECT a t").ok());
  EXPECT_FALSE(ParseStatement("FOO BAR").ok());
  EXPECT_FALSE(ParseStatement("SELECT a FROM t LIMIT x").ok());
  EXPECT_FALSE(ParseStatement("SELECT a FROM t; extra").ok());
}

TEST(ParserTest, OperatorPrecedence) {
  // a + b * c parses as a + (b * c)
  auto stmt = ParseSelect("SELECT a + b * c FROM t");
  ASSERT_TRUE(stmt.ok());
  const ParsedExprPtr& e = stmt.value()->items[0].expr;
  ASSERT_EQ(e->bin_op, BinaryOp::kAdd);
  EXPECT_EQ(e->args[1]->bin_op, BinaryOp::kMul);
  // x OR y AND z parses as x OR (y AND z)
  auto stmt2 = ParseSelect("SELECT a FROM t WHERE a=1 OR b=2 AND c=3");
  ASSERT_TRUE(stmt2.ok());
  EXPECT_EQ(stmt2.value()->where->bin_op, BinaryOp::kOr);
}

// ---- Binder ----------------------------------------------------------------

class BinderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LoadSalesExample(&db_);
    SyntheticSpec spec;
    spec.name = "r500";
    spec.num_rows = 500;
    spec.num_groups = 20;
    IMP_CHECK(CreateSyntheticTable(&db_, spec).ok());
  }
  Database db_;
};

TEST_F(BinderTest, SimpleProjectionAndFilter) {
  PlanPtr plan = MustBind(db_, "SELECT sid, price FROM sales WHERE price > 1000");
  EXPECT_EQ(plan->output_schema().size(), 2u);
  EXPECT_EQ(plan->output_schema().column(0).name, "sid");
  EXPECT_EQ(plan->output_schema().column(1).type, ValueType::kInt);
}

TEST_F(BinderTest, RunningExampleQTop) {
  PlanPtr plan = MustBind(db_, kSalesQTop);
  // Project <- Select(HAVING) <- Aggregate <- Scan
  EXPECT_EQ(plan->kind(), PlanKind::kProject);
  EXPECT_EQ(plan->children()[0]->kind(), PlanKind::kSelect);
  EXPECT_EQ(plan->children()[0]->children()[0]->kind(), PlanKind::kAggregate);
  EXPECT_EQ(plan->output_schema().column(0).name, "brand");
  EXPECT_EQ(plan->output_schema().column(1).name, "rev");
}

TEST_F(BinderTest, HavingAggregateDedupedWithSelect) {
  PlanPtr plan = MustBind(db_, kSalesQTop);
  const PlanNode* agg = plan->children()[0]->children()[0].get();
  const auto& aggregate = static_cast<const AggregateNode&>(*agg);
  // sum(price * numSold) appears in SELECT and HAVING but is computed once.
  EXPECT_EQ(aggregate.aggs().size(), 1u);
}

TEST_F(BinderTest, TemplateKeySharedAcrossConstants) {
  PlanPtr p1 = MustBind(db_, "SELECT a, avg(b) AS ab FROM r500 GROUP BY a "
                             "HAVING avg(c) < 100");
  PlanPtr p2 = MustBind(db_, "SELECT a, avg(b) AS ab FROM r500 GROUP BY a "
                             "HAVING avg(c) < 99999");
  EXPECT_EQ(p1->TemplateKey(), p2->TemplateKey());
  PlanPtr p3 = MustBind(db_, "SELECT a, avg(b) AS ab FROM r500 GROUP BY a "
                             "HAVING avg(d) < 100");
  EXPECT_NE(p1->TemplateKey(), p3->TemplateKey());
}

TEST_F(BinderTest, UnknownTableAndColumnErrors) {
  Binder binder(&db_);
  EXPECT_FALSE(binder.BindQuery("SELECT a FROM nope").ok());
  EXPECT_FALSE(binder.BindQuery("SELECT zzz FROM sales").ok());
  EXPECT_FALSE(binder.BindQuery("SELECT brand FROM sales GROUP BY sid").ok());
}

TEST_F(BinderTest, StarExpansion) {
  PlanPtr plan = MustBind(db_, "SELECT * FROM sales WHERE sid = 1");
  EXPECT_EQ(plan->output_schema().size(), 5u);
}

TEST_F(BinderTest, InsertBinding) {
  Binder binder(&db_);
  auto bound = binder.BindSql(
      "INSERT INTO sales VALUES (8, 'HP', 'HP ProBook 650 G10', 1299, 1)");
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ(bound.value().update.kind, BoundUpdate::Kind::kInsert);
  ASSERT_EQ(bound.value().update.rows.size(), 1u);
  EXPECT_EQ(bound.value().update.rows[0][3], Value::Int(1299));
  // Arity mismatch rejected.
  EXPECT_FALSE(binder.BindSql("INSERT INTO sales VALUES (8, 'HP')").ok());
}

TEST_F(BinderTest, DeleteAndUpdateBinding) {
  Binder binder(&db_);
  auto del = binder.BindSql("DELETE FROM sales WHERE price > 2000");
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(del.value().update.kind, BoundUpdate::Kind::kDelete);
  ASSERT_NE(del.value().update.where, nullptr);

  auto upd = binder.BindSql("UPDATE sales SET numSold = numSold + 1 "
                            "WHERE brand = 'HP'");
  ASSERT_TRUE(upd.ok());
  EXPECT_EQ(upd.value().update.kind, BoundUpdate::Kind::kUpdate);
  ASSERT_EQ(upd.value().update.sets.size(), 1u);
  EXPECT_EQ(upd.value().update.sets[0].first, 4u);
}

TEST_F(BinderTest, AppendixQueriesBind) {
  // Q_having family (A.1.1).
  MustBind(db_, "SELECT a, avg(b) AS ab FROM r500 GROUP BY a");
  MustBind(db_, "SELECT a, avg(b) AS ab FROM r500 GROUP BY a "
                "HAVING avg(c) < 1000");
  MustBind(db_,
           "SELECT a, avg(b) AS ab FROM r500 GROUP BY a "
           "HAVING avg(c) < 1000 AND avg(d) < 1200 AND avg(e) > 0 "
           "AND avg(f) > 0 AND avg(g) > 0 AND avg(h) > 0 AND avg(i) > 0 "
           "AND avg(j) > 0");
  // Q_topk (A.3).
  PlanPtr topk = MustBind(
      db_, "SELECT a, avg(b) AS ab FROM r500 GROUP BY a ORDER BY a LIMIT 10");
  EXPECT_EQ(topk->kind(), PlanKind::kTopK);
  // Q_endtoend (A.1.7).
  MustBind(db_, "SELECT a, avg(c) AS ac FROM r500 GROUP BY a "
                "HAVING avg(c) > 1684845 AND avg(c) < 1686014");
}

TEST(BinderJoinTest, JoinQueriesBind) {
  Database db;
  JoinPairSpec spec;
  spec.distinct_keys = 100;
  ASSERT_TRUE(CreateJoinPair(&db, spec).ok());
  // Q_join (A.1.3) with subquery + join.
  PlanPtr plan = MustBind(
      db,
      "SELECT a, avg(b) AS ab "
      "FROM (SELECT a AS a, b AS b, c AS c FROM t1gbjoin WHERE b < 1000) tt "
      "JOIN tjoinhelp ON (a = ttid) "
      "GROUP BY a HAVING avg(c) < 1000");
  // The join must be an equi-join (keys extracted from ON).
  bool found_join = false;
  VisitPlan(plan, [&](const PlanPtr& node) {
    if (node->kind() == PlanKind::kJoin) {
      found_join = true;
      EXPECT_EQ(static_cast<const JoinNode&>(*node).keys().size(), 1u);
    }
  });
  EXPECT_TRUE(found_join);
  // Q_joinsel (A.1.4): join + WHERE filter.
  MustBind(db, "SELECT a, avg(b) AS ab "
               "FROM t1gbjoin JOIN tjoinhelp ON (a = ttid) "
               "WHERE b < 1000 GROUP BY a HAVING avg(c) < 1000");
}

TEST(BinderTpchTest, TpchQueriesBind) {
  Database db;
  TpchSpec spec;
  spec.scale_factor = 0.001;
  ASSERT_TRUE(CreateTpchTables(&db, spec).ok());
  // Q_space = TPC-H Q10 with implicit comma joins (A.4).
  PlanPtr q10 = MustBind(db, TpchQ10Sql());
  EXPECT_EQ(q10->kind(), PlanKind::kTopK);
  // The comma joins must turn into equi-joins, not cross products.
  size_t joins = 0, keyed = 0;
  VisitPlan(q10, [&](const PlanPtr& node) {
    if (node->kind() == PlanKind::kJoin) {
      ++joins;
      if (!static_cast<const JoinNode&>(*node).keys().empty()) ++keyed;
    }
  });
  EXPECT_EQ(joins, 3u);
  EXPECT_EQ(keyed, 3u);
  MustBind(db, TpchQ18Sql(300));
  MustBind(db, TpchQ5Sql(1000));
}

TEST(BinderCrimesTest, CrimesQueriesBind) {
  Database db;
  CrimesSpec spec;
  spec.num_rows = 100;
  ASSERT_TRUE(CreateCrimesTable(&db, spec).ok());
  MustBind(db, CrimesCq1Sql());
  MustBind(db, CrimesCq2Sql(10));
}

}  // namespace
}  // namespace imp
