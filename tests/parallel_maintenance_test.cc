// Tests for the batched parallel maintenance pipeline: MaintainAll with
// shared delta fetch / annotation and N worker threads must produce
// bit-identical sketches, identical operator state sizes, and identical
// maintenance counters as the serial per-sketch baseline — over randomized
// mixed insert/delete workloads. Also checks that the shared annotation
// cache is actually hit when several sketches reference the same
// (table, partition).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "middleware/imp_system.h"
#include "middleware/maintenance_batch.h"
#include "test_util.h"
#include "workload/synthetic.h"

namespace imp {
namespace {

// The eight sketch templates of the multi-sketch workload: distinct
// aggregate columns (distinct query templates -> distinct sketch entries),
// all over the same synthetic table and partition; half carry a WHERE
// clause so selection push-down filtering is exercised too.
std::vector<std::string> MultiSketchQueries(const std::string& table) {
  std::vector<std::string> queries;
  const char* cols[] = {"b", "c", "d", "e"};
  for (const char* col : cols) {
    queries.push_back("SELECT a, sum(" + std::string(col) + ") AS s FROM " +
                      table + " GROUP BY a HAVING sum(" + col + ") > 100");
    queries.push_back("SELECT a, sum(" + std::string(col) + ") AS s FROM " +
                      table + " WHERE " + col + " < 400 GROUP BY a HAVING sum(" +
                      col + ") > 50");
  }
  return queries;
}

struct SystemSnapshot {
  std::vector<std::vector<size_t>> sketch_bits;  // per entry, sorted by key
  std::vector<uint64_t> versions;
  std::vector<size_t> state_bytes;
  size_t maintenances = 0;
};

/// Run one deterministic mixed workload under `config` and snapshot the
/// final per-entry sketches, versions and state sizes.
SystemSnapshot RunWorkload(ImpConfig config, uint64_t seed,
                           size_t maintain_every) {
  Database db;
  SyntheticSpec spec;
  spec.name = "edb";
  spec.num_rows = 2000;
  spec.num_groups = 50;
  spec.seed = 7;
  IMP_CHECK(CreateSyntheticTable(&db, spec).ok());

  ImpSystem system(&db, config);
  IMP_CHECK(system
                .RegisterPartition(
                    RangePartition::EquiWidthInt("edb", "a", 1, 0, 49, 10))
                .ok());
  for (const std::string& q : MultiSketchQueries("edb")) {
    auto result = system.Query(q);
    IMP_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  }

  Rng rng(seed);
  int64_t next_id = static_cast<int64_t>(spec.num_rows);
  for (size_t step = 0; step < 60; ++step) {
    if (rng.Chance(0.7)) {
      // Insert 1-5 fresh rows.
      BoundUpdate update;
      update.kind = BoundUpdate::Kind::kInsert;
      update.table = "edb";
      size_t n = static_cast<size_t>(rng.UniformInt(1, 5));
      for (size_t r = 0; r < n; ++r) {
        update.rows.push_back(SyntheticRow(spec, next_id++, &rng));
      }
      IMP_CHECK(system.UpdateBound(update).ok());
    } else {
      // Delete a random id range.
      int64_t lo = rng.UniformInt(0, next_id - 1);
      int64_t hi = lo + rng.UniformInt(0, 20);
      IMP_CHECK(system
                    .Update("DELETE FROM edb WHERE id >= " +
                            std::to_string(lo) + " AND id <= " +
                            std::to_string(hi))
                    .ok());
    }
    if ((step + 1) % maintain_every == 0) {
      IMP_CHECK(system.MaintainAll().ok());
    }
  }
  IMP_CHECK(system.MaintainAll().ok());

  SystemSnapshot snap;
  for (SketchEntry* entry : system.sketches().AllEntries()) {
    snap.sketch_bits.push_back(entry->sketch.fragments.SetBits());
    snap.versions.push_back(entry->sketch.valid_version);
    snap.state_bytes.push_back(
        entry->maintainer ? entry->maintainer->StateBytes() : 0);
  }
  snap.maintenances = system.stats().maintenances;
  return snap;
}

ImpConfig ConfigFor(bool shared_fetch, size_t threads) {
  ImpConfig config;
  config.mode = ExecutionMode::kIncremental;
  config.strategy = MaintenanceStrategy::kLazy;
  config.shared_delta_fetch = shared_fetch;
  config.maintenance_threads = threads;
  return config;
}

void ExpectSameSnapshot(const SystemSnapshot& a, const SystemSnapshot& b,
                        const std::string& label) {
  ASSERT_EQ(a.sketch_bits.size(), b.sketch_bits.size()) << label;
  for (size_t i = 0; i < a.sketch_bits.size(); ++i) {
    EXPECT_EQ(a.sketch_bits[i], b.sketch_bits[i])
        << label << ": sketch " << i << " diverged";
    EXPECT_EQ(a.versions[i], b.versions[i])
        << label << ": version " << i << " diverged";
    EXPECT_EQ(a.state_bytes[i], b.state_bytes[i])
        << label << ": state bytes " << i << " diverged";
  }
  EXPECT_EQ(a.maintenances, b.maintenances) << label;
}

TEST(ParallelMaintenanceTest, SharedFetchMatchesPerSketchFetch) {
  for (uint64_t seed : {11u, 23u, 47u}) {
    SystemSnapshot serial = RunWorkload(ConfigFor(false, 1), seed, 10);
    SystemSnapshot batched = RunWorkload(ConfigFor(true, 1), seed, 10);
    ExpectSameSnapshot(serial, batched,
                       "shared fetch, seed " + std::to_string(seed));
  }
}

TEST(ParallelMaintenanceTest, ParallelMatchesSerialAcrossThreadCounts) {
  for (uint64_t seed : {5u, 91u}) {
    SystemSnapshot serial = RunWorkload(ConfigFor(false, 1), seed, 7);
    for (size_t threads : {2u, 4u, 8u}) {
      SystemSnapshot parallel =
          RunWorkload(ConfigFor(true, threads), seed, 7);
      ExpectSameSnapshot(serial, parallel,
                         "threads=" + std::to_string(threads) + ", seed " +
                             std::to_string(seed));
    }
  }
}

/// Join sketches exercise the delegated incremental join, whose indexed
/// path lazily builds the backend table's hash index from maintenance
/// workers — two join sketches over the same pair must be able to probe
/// (and trigger the build of) that index concurrently.
SystemSnapshot RunJoinWorkload(ImpConfig config, uint64_t seed) {
  Database db;
  JoinPairSpec spec;
  spec.left_name = "t";
  spec.right_name = "h";
  spec.distinct_keys = 500;
  spec.left_per_key = 2;
  spec.right_per_key = 3;
  spec.selectivity = 0.5;
  IMP_CHECK(CreateJoinPair(&db, spec).ok());

  ImpSystem system(&db, config);
  IMP_CHECK(system
                .RegisterPartition(
                    RangePartition::EquiWidthInt("t", "a", 1, 0, 499, 25))
                .ok());
  for (const char* col : {"b", "c"}) {
    std::string q = "SELECT a, sum(" + std::string(col) +
                    ") AS s FROM t JOIN h ON (a = ttid) "
                    "GROUP BY a HAVING sum(" + std::string(col) + ") > 0";
    auto result = system.Query(q);
    IMP_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  }
  IMP_CHECK(system.sketches().size() == 2);

  Rng rng(seed);
  int64_t next_id = static_cast<int64_t>(spec.distinct_keys) * 2;
  for (size_t step = 0; step < 20; ++step) {
    BoundUpdate update;
    update.kind = BoundUpdate::Kind::kInsert;
    update.table = "t";
    update.rows.push_back(JoinLeftRow(spec, next_id++,
                                      rng.UniformInt(0, 499), &rng));
    IMP_CHECK(system.UpdateBound(update).ok());
    if ((step + 1) % 5 == 0) IMP_CHECK(system.MaintainAll().ok());
  }
  IMP_CHECK(system.MaintainAll().ok());
  // The workload must actually have exercised the delegated indexed join
  // (worker threads lazily building/probing h's hash index on ttid).
  IMP_CHECK(db.GetTable("h")->Snapshot()->HasIndex(0));

  SystemSnapshot snap;
  for (SketchEntry* entry : system.sketches().AllEntries()) {
    snap.sketch_bits.push_back(entry->sketch.fragments.SetBits());
    snap.versions.push_back(entry->sketch.valid_version);
    snap.state_bytes.push_back(
        entry->maintainer ? entry->maintainer->StateBytes() : 0);
  }
  snap.maintenances = system.stats().maintenances;
  return snap;
}

TEST(ParallelMaintenanceTest, JoinSketchesParallelMatchesSerial) {
  for (uint64_t seed : {17u, 71u}) {
    SystemSnapshot serial = RunJoinWorkload(ConfigFor(false, 1), seed);
    for (size_t threads : {4u, 8u}) {
      SystemSnapshot parallel = RunJoinWorkload(ConfigFor(true, threads), seed);
      ExpectSameSnapshot(serial, parallel,
                         "join, threads=" + std::to_string(threads) +
                             ", seed " + std::to_string(seed));
    }
  }
}

TEST(ParallelMaintenanceTest, EagerStrategyUsesBatchPipeline) {
  // Eager flushing goes through the same batched MaintainAll; equivalence
  // must hold there too.
  ImpConfig serial_config = ConfigFor(false, 1);
  serial_config.strategy = MaintenanceStrategy::kEager;
  serial_config.eager_batch_size = 5;
  ImpConfig batched_config = ConfigFor(true, 4);
  batched_config.strategy = MaintenanceStrategy::kEager;
  batched_config.eager_batch_size = 5;
  SystemSnapshot serial = RunWorkload(serial_config, 3, 13);
  SystemSnapshot batched = RunWorkload(batched_config, 3, 13);
  ExpectSameSnapshot(serial, batched, "eager");
}

TEST(ParallelMaintenanceTest, SharedAnnotationCacheIsHit) {
  // Two sketches over the same (table, partition): the batch must scan and
  // annotate the table's delta once and serve the second sketch from the
  // cache instead of re-annotating.
  Database db;
  LoadSalesExample(&db);
  ImpConfig config = ConfigFor(true, 1);
  ImpSystem system(&db, config);
  ASSERT_TRUE(system.RegisterPartition(SalesPricePartition()).ok());
  ASSERT_TRUE(system.Query(kSalesQTop).ok());
  ASSERT_TRUE(system
                  .Query("SELECT brand, sum(numSold) AS n FROM sales "
                         "GROUP BY brand HAVING sum(numSold) > 2")
                  .ok());
  ASSERT_EQ(system.sketches().size(), 2u);

  ASSERT_TRUE(
      system.Update("INSERT INTO sales VALUES (8, 'HP', 'X', 1299, 1)").ok());
  ASSERT_TRUE(system.MaintainAll().ok());

  const ImpSystemStats& stats = system.stats();
  EXPECT_EQ(stats.batch_rounds, 1u);
  // One log scan + one annotation pass for `sales`, not one per sketch.
  EXPECT_EQ(stats.delta_scans, 1u);
  EXPECT_EQ(stats.annotation_passes, 1u);
  // The second sketch's view came from the shared cache.
  EXPECT_GE(stats.annotation_hits, 1u);
}

TEST(ParallelMaintenanceTest, PerSketchFetchCountsRedundantScans) {
  // The serial baseline re-scans per sketch; the stats must expose the
  // redundancy the batch removes (2 sketches -> 2 scans of one table).
  Database db;
  LoadSalesExample(&db);
  ImpConfig config = ConfigFor(false, 1);
  ImpSystem system(&db, config);
  ASSERT_TRUE(system.RegisterPartition(SalesPricePartition()).ok());
  ASSERT_TRUE(system.Query(kSalesQTop).ok());
  ASSERT_TRUE(system
                  .Query("SELECT brand, sum(numSold) AS n FROM sales "
                         "GROUP BY brand HAVING sum(numSold) > 2")
                  .ok());
  ASSERT_TRUE(
      system.Update("INSERT INTO sales VALUES (8, 'HP', 'X', 1299, 1)").ok());
  ASSERT_TRUE(system.MaintainAll().ok());
  EXPECT_EQ(system.stats().delta_scans, 2u);
  EXPECT_EQ(system.stats().annotation_hits, 0u);
}

TEST(ParallelMaintenanceTest, MaintenanceBatchServesFilteredViews) {
  // Direct MaintenanceBatch exercise: a maintainer with push-down gets a
  // filtered owned copy; one without gets a zero-copy shared view.
  Database db;
  LoadSalesExample(&db);
  PartitionCatalog catalog;
  ASSERT_TRUE(catalog.Register(SalesPricePartition()).ok());
  Binder binder(&db);
  auto plain = binder.BindQuery(
      "SELECT brand, sum(price * numSold) AS rev FROM sales "
      "GROUP BY brand HAVING sum(price * numSold) > 5000");
  ASSERT_TRUE(plain.ok());
  auto pushed = binder.BindQuery(
      "SELECT brand, sum(numSold) AS n FROM sales WHERE price > 1000 "
      "GROUP BY brand HAVING sum(numSold) > 0");
  ASSERT_TRUE(pushed.ok());

  Maintainer plain_m(&db, &catalog, plain.value());
  Maintainer pushed_m(&db, &catalog, pushed.value());
  ASSERT_TRUE(plain_m.Initialize().ok());
  ASSERT_TRUE(pushed_m.Initialize().ok());
  ASSERT_NE(pushed_m.DeltaPredicateExpr("sales"), nullptr);

  ASSERT_TRUE(db.Insert("sales", {{Value::Int(8), Value::String("HP"),
                                   Value::String("X"), Value::Int(1299),
                                   Value::Int(1)},
                                  {Value::Int(9), Value::String("HP"),
                                   Value::String("Y"), Value::Int(500),
                                   Value::Int(2)}})
                  .ok());

  MaintenanceBatch batch(&db, &catalog, db.CurrentVersion());
  DeltaContext plain_ctx = batch.ContextFor(plain_m);
  DeltaContext pushed_ctx = batch.ContextFor(pushed_m);

  // No push-down: zero-copy borrowed view with both delta rows.
  const DeltaBatch* plain_batch = plain_ctx.FindBatch("sales");
  ASSERT_NE(plain_batch, nullptr);
  EXPECT_TRUE(plain_batch->borrowed());
  EXPECT_FALSE(plain_batch->filtered());
  EXPECT_EQ(plain_batch->size(), 2u);

  // Push-down price > 1000: still borrowed — a selection bitmap restricts
  // the shared delta to the 1299 row, no row is copied.
  const DeltaBatch* pushed_batch = pushed_ctx.FindBatch("sales");
  ASSERT_NE(pushed_batch, nullptr);
  EXPECT_TRUE(pushed_batch->borrowed());
  EXPECT_TRUE(pushed_batch->filtered());
  EXPECT_EQ(pushed_batch->size(), 1u);
  EXPECT_EQ(pushed_batch->base(), plain_batch->base());  // same shared delta
  pushed_batch->ForEachRow([](const AnnotatedDeltaRow& r) {
    EXPECT_EQ(r.row[3], Value::Int(1299));
  });

  // One scan + one annotation total; the second context was a cache hit.
  MaintenanceBatchStats bstats = batch.stats();
  EXPECT_EQ(bstats.delta_scans, 1u);
  EXPECT_EQ(bstats.annotation_passes, 1u);
  EXPECT_GE(bstats.annotation_hits, 1u);

  // Both maintainers process their views to the same result a per-sketch
  // backend fetch would produce: replay the same update against a fresh
  // database whose maintainer fetches its own pre-filtered delta.
  Database db2;
  LoadSalesExample(&db2);
  Maintainer ref_m(&db2, &catalog, pushed.value());
  ASSERT_TRUE(ref_m.Initialize().ok());
  ASSERT_TRUE(db2.Insert("sales", {{Value::Int(8), Value::String("HP"),
                                    Value::String("X"), Value::Int(1299),
                                    Value::Int(1)},
                                   {Value::Int(9), Value::String("HP"),
                                    Value::String("Y"), Value::Int(500),
                                    Value::Int(2)}})
                  .ok());
  ASSERT_TRUE(ref_m.MaintainFromBackend().ok());
  auto shared_result =
      pushed_m.MaintainAnnotated(pushed_ctx, db.CurrentVersion());
  ASSERT_TRUE(shared_result.ok());
  EXPECT_EQ(pushed_m.sketch().fragments.SetBits(),
            ref_m.sketch().fragments.SetBits());
  EXPECT_EQ(pushed_m.StateBytes(), ref_m.StateBytes());
}

TEST(ZeroCopyPipelineTest, FilterlessSketchesCopyNoRowsOnSharedFetch) {
  // The acceptance bar of the borrowed-batch pipeline: N filterless-scan
  // sketches maintained off one shared annotated delta perform zero
  // per-sketch full-delta copies — only borrowed views flow.
  Database db;
  SyntheticSpec spec;
  spec.name = "edb";
  spec.num_rows = 500;
  spec.num_groups = 20;
  ASSERT_TRUE(CreateSyntheticTable(&db, spec).ok());
  ImpSystem system(&db, ConfigFor(true, 1));
  ASSERT_TRUE(system
                  .RegisterPartition(
                      RangePartition::EquiWidthInt("edb", "a", 1, 0, 19, 5))
                  .ok());
  for (const char* col : {"b", "c", "d"}) {
    std::string q = "SELECT a, sum(" + std::string(col) + ") AS s FROM edb "
                    "GROUP BY a HAVING sum(" + std::string(col) + ") > 10";
    ASSERT_TRUE(system.Query(q).ok());
  }
  ASSERT_EQ(system.sketches().size(), 3u);

  Rng rng(13);
  BoundUpdate update;
  update.kind = BoundUpdate::Kind::kInsert;
  update.table = "edb";
  for (size_t i = 0; i < 10; ++i) {
    update.rows.push_back(SyntheticRow(spec, 1000 + static_cast<int64_t>(i),
                                       &rng));
  }
  ASSERT_TRUE(system.UpdateBound(update).ok());
  ASSERT_TRUE(system.UpdateBound(update).ok());
  ASSERT_TRUE(system.MaintainAll().ok());

  const ImpSystemStats& stats = system.stats();
  EXPECT_EQ(stats.rows_copied, 0u);
  EXPECT_EQ(stats.deltas_materialized, 0u);
  // Every sketch's scan served a borrowed view of the one shared delta.
  EXPECT_GE(stats.deltas_borrowed, 3u);
  EXPECT_EQ(stats.delta_scans, 1u);
}

TEST(ZeroCopyPipelineTest, SharedDeltaIsNotMutatedByTheRound) {
  // Aliasing safety: maintainers process borrowed views of the shared
  // annotated delta, which must come out of the round bit-identical —
  // views never write through, whatever the operator chain does.
  Database db;
  LoadSalesExample(&db);
  PartitionCatalog catalog;
  ASSERT_TRUE(catalog.Register(SalesPricePartition()).ok());
  Binder binder(&db);
  auto plan_a = binder.BindQuery(
      "SELECT brand, sum(numSold) AS n FROM sales GROUP BY brand "
      "HAVING sum(numSold) > 2");
  auto plan_b = binder.BindQuery(
      "SELECT brand, sum(price) AS p FROM sales WHERE price > 1000 "
      "GROUP BY brand HAVING sum(price) > 0");
  ASSERT_TRUE(plan_a.ok());
  ASSERT_TRUE(plan_b.ok());
  Maintainer ma(&db, &catalog, plan_a.value());
  Maintainer mb(&db, &catalog, plan_b.value());
  ASSERT_TRUE(ma.Initialize().ok());
  ASSERT_TRUE(mb.Initialize().ok());

  ASSERT_TRUE(db.Insert("sales", {{Value::Int(8), Value::String("HP"),
                                   Value::String("X"), Value::Int(1299),
                                   Value::Int(1)},
                                  {Value::Int(9), Value::String("Acer"),
                                   Value::String("Y"), Value::Int(500),
                                   Value::Int(2)}})
                  .ok());

  MaintenanceBatch batch(&db, &catalog, db.CurrentVersion());
  DeltaContext ctx_a = batch.ContextFor(ma);
  DeltaContext ctx_b = batch.ContextFor(mb);
  const AnnotatedDelta* shared = ctx_a.FindBatch("sales")->base();
  ASSERT_NE(shared, nullptr);
  std::vector<std::string> before;
  for (const AnnotatedDeltaRow& r : shared->rows) {
    before.push_back(r.ToString());
  }

  ASSERT_TRUE(ma.MaintainAnnotated(ctx_a, db.CurrentVersion()).ok());
  ASSERT_TRUE(mb.MaintainAnnotated(ctx_b, db.CurrentVersion()).ok());

  ASSERT_EQ(shared->rows.size(), before.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(shared->rows[i].ToString(), before[i]) << "row " << i;
  }
  // Both maintainers really consumed borrowed views, copying nothing.
  EXPECT_EQ(ma.stats().rows_copied, 0u);
  EXPECT_EQ(mb.stats().rows_copied, 0u);
  EXPECT_GE(ma.stats().deltas_borrowed, 1u);
  EXPECT_GE(mb.stats().deltas_borrowed, 1u);
}

TEST(ZeroCopyPipelineTest, SelectionBitmapEqualsEagerFilteredCopy) {
  // A maintainer with selection push-down driven through a borrowed
  // bitmap-filtered view must land in exactly the state the old eager
  // filtered-copy path produced (which itself matched the pre-filtered
  // backend scan — checked by MaintenanceBatchServesFilteredViews).
  Database db;
  LoadSalesExample(&db);
  PartitionCatalog catalog;
  ASSERT_TRUE(catalog.Register(SalesPricePartition()).ok());
  Binder binder(&db);
  auto pushed = binder.BindQuery(
      "SELECT brand, sum(numSold) AS n FROM sales WHERE price > 1000 "
      "GROUP BY brand HAVING sum(numSold) > 0");
  ASSERT_TRUE(pushed.ok());

  Maintainer view_m(&db, &catalog, pushed.value());
  Maintainer copy_m(&db, &catalog, pushed.value());
  ASSERT_TRUE(view_m.Initialize().ok());
  ASSERT_TRUE(copy_m.Initialize().ok());

  uint64_t from = db.CurrentVersion();
  ASSERT_TRUE(db.Insert("sales", {{Value::Int(8), Value::String("HP"),
                                   Value::String("X"), Value::Int(1299),
                                   Value::Int(1)},
                                  {Value::Int(9), Value::String("HP"),
                                   Value::String("Y"), Value::Int(500),
                                   Value::Int(2)},
                                  {Value::Int(10), Value::String("Dell"),
                                   Value::String("Z"), Value::Int(2100),
                                   Value::Int(3)}})
                  .ok());

  // Borrowed bitmap view via the batch pipeline.
  MaintenanceBatch batch(&db, &catalog, db.CurrentVersion());
  DeltaContext view_ctx = batch.ContextFor(view_m);
  ASSERT_TRUE(view_ctx.FindBatch("sales")->filtered());
  ASSERT_TRUE(view_m.MaintainAnnotated(view_ctx, db.CurrentVersion()).ok());

  // Eager filtered copy of the same annotated delta.
  AnnotatedDelta annotated = AnnotateTableDelta(
      db.ScanDelta("sales", from, db.CurrentVersion()), catalog);
  auto pred = copy_m.DeltaPredicate("sales");
  ASSERT_TRUE(static_cast<bool>(pred));
  DeltaContext copy_ctx;
  for (const AnnotatedDeltaRow& r : annotated.rows) {
    if (pred(r.row)) {
      copy_ctx.OwnedFor("sales").rows.push_back(r);
    }
  }
  ASSERT_TRUE(copy_m.MaintainAnnotated(copy_ctx, db.CurrentVersion()).ok());

  EXPECT_EQ(view_m.sketch().fragments.SetBits(),
            copy_m.sketch().fragments.SetBits());
  EXPECT_EQ(view_m.StateBytes(), copy_m.StateBytes());
  EXPECT_EQ(view_m.stats().rows_copied, 0u);
}

}  // namespace
}  // namespace imp
