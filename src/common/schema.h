// Relation schemas: ordered lists of named, typed columns.

#ifndef IMP_COMMON_SCHEMA_H_
#define IMP_COMMON_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/value.h"

namespace imp {

/// One column of a relation schema.
struct ColumnDef {
  std::string name;
  ValueType type = ValueType::kNull;

  bool operator==(const ColumnDef& o) const {
    return name == o.name && type == o.type;
  }
};

/// Ordered column list. Column resolution supports both bare names ("a")
/// and qualified names ("r.a"); the binder stores qualified names when two
/// inputs would otherwise clash.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns)
      : columns_(std::move(columns)) {}

  size_t size() const { return columns_.size(); }
  bool empty() const { return columns_.empty(); }
  const ColumnDef& column(size_t i) const { return columns_.at(i); }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  void AddColumn(std::string name, ValueType type) {
    columns_.push_back(ColumnDef{std::move(name), type});
  }

  /// Resolve a (possibly qualified) column name to its index.
  /// Returns nullopt when the name is absent or ambiguous.
  std::optional<size_t> IndexOf(const std::string& name) const;

  /// Concatenate two schemas (join output), qualifying clashing names with
  /// the given input qualifiers when necessary.
  static Schema Concat(const Schema& left, const Schema& right);

  /// "name:TYPE, name:TYPE, ..." for plan printing.
  std::string ToString() const;

  bool operator==(const Schema& o) const { return columns_ == o.columns_; }

 private:
  std::vector<ColumnDef> columns_;
};

}  // namespace imp

#endif  // IMP_COMMON_SCHEMA_H_
