// A bounded multi-producer single-consumer queue for asynchronous delta
// ingestion: producers enqueue update statements and return immediately
// (backpressure blocks them when the queue is full), a single background
// worker pops and applies them in order.
//
// Two details are specific to the ingestion use case:
//
//  * PushWith(make): the item factory runs under the queue lock, so a
//    producer can atomically pair side effects with its queue position —
//    the middleware allocates the statement's version(s) inside `make`,
//    which guarantees queue order == version allocation order even with
//    many racing producers (the worker then applies statements in version
//    order, keeping every delta log's versions non-decreasing).
//
//  * WaitIdle(): drain barrier. The queue counts unfinished work (pushed
//    but not yet TaskDone()'d), not merely queued items, so a waiter wakes
//    only after the worker has *finished* the last statement — including
//    any eager maintenance it triggered — and the mutex hand-off makes all
//    of the worker's writes visible to the waiter.
//
// Failure posture: a producer must never be parked forever on a queue
// whose consumer died. Close() wakes every blocked producer (they observe
// kClosed), and PushWithUntil bounds the wait — the middleware maps a
// full-queue timeout or an outright rejection to a Status the caller can
// act on instead of an unbounded stall.
//
// The consumer must call TaskDone() exactly once per popped item, after
// all its side effects.

#ifndef IMP_COMMON_INGESTION_QUEUE_H_
#define IMP_COMMON_INGESTION_QUEUE_H_

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace imp {

/// Producer-side verdict of a push attempt.
enum class QueuePushOutcome : uint8_t {
  kOk,      ///< item enqueued (the factory ran)
  kClosed,  ///< queue closed — the consumer is gone or shutting down
  kFull,    ///< capacity reached and the wait budget expired
};

template <typename T>
class IngestionQueue {
 public:
  explicit IngestionQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  IngestionQueue(const IngestionQueue&) = delete;
  IngestionQueue& operator=(const IngestionQueue&) = delete;

  /// Enqueue the item produced by `make()`, which runs under the queue
  /// lock once space is available — and ONLY on success, so side effects
  /// paired with queue position (version allocation) never leak on a
  /// rejected push. The wait budget:
  ///   * nullopt — block until space or Close() (the kBlock policy);
  ///   * 0ms     — never wait: report kFull immediately (kReject);
  ///   * t > 0   — block up to t, then report kFull (kBlock + timeout).
  template <typename MakeItem>
  QueuePushOutcome PushWithUntil(
      MakeItem&& make, std::optional<std::chrono::milliseconds> wait_budget) {
    std::unique_lock<std::mutex> lock(mu_);
    auto ready = [&] { return closed_ || items_.size() < capacity_; };
    if (!wait_budget.has_value()) {
      not_full_.wait(lock, ready);
    } else if (!not_full_.wait_for(lock, *wait_budget, ready)) {
      return QueuePushOutcome::kFull;
    }
    if (closed_) return QueuePushOutcome::kClosed;
    items_.push_back(make());
    ++unfinished_;
    max_depth_ = std::max(max_depth_, items_.size());
    not_empty_.notify_one();
    return QueuePushOutcome::kOk;
  }

  /// Blocking enqueue (no wait budget). Returns false (and never runs
  /// `make`) when the queue is closed.
  template <typename MakeItem>
  bool PushWith(MakeItem&& make) {
    return PushWithUntil(std::forward<MakeItem>(make), std::nullopt) ==
           QueuePushOutcome::kOk;
  }

  /// Enqueue a ready-made item (blocks while full; false when closed).
  bool Push(T item) {
    return PushWith([&]() -> T { return std::move(item); });
  }

  /// Dequeue the next item; blocks while empty. Returns nullopt once the
  /// queue is closed AND drained (a close still delivers queued items).
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking dequeue: the next item if one is ready, else nullopt
  /// (whether the queue is merely empty or closed). The worker uses this
  /// to opportunistically drain a batch after a blocking Pop.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Consumer: the last popped item's side effects are complete.
  void TaskDone() {
    std::lock_guard<std::mutex> lock(mu_);
    if (--unfinished_ == 0) idle_.notify_all();
  }

  /// Block until every pushed item has been popped and TaskDone()'d.
  void WaitIdle() {
    std::unique_lock<std::mutex> lock(mu_);
    idle_.wait(lock, [&] { return unfinished_ == 0; });
  }

  /// Reject future pushes and wake everyone — including producers parked
  /// on a full queue, who observe kClosed instead of waiting on a consumer
  /// that will never drain again. Queued items still drain.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  /// True once Close() was called (worker death / shutdown signal).
  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  /// High-water mark of the queue depth (backpressure telemetry).
  size_t max_depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return max_depth_;
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::condition_variable idle_;
  std::deque<T> items_;
  size_t unfinished_ = 0;  ///< pushed and not yet TaskDone()'d
  size_t max_depth_ = 0;
  bool closed_ = false;
};

}  // namespace imp

#endif  // IMP_COMMON_INGESTION_QUEUE_H_
