// Hash primitives shared by values, tuples and bloom filters.

#ifndef IMP_COMMON_HASH_H_
#define IMP_COMMON_HASH_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>

#include "common/bitvector.h"

namespace imp {

/// Hash of a NULL cell — must stay equal to Value::Hash() on a NULL Value
/// so batched typed hashing agrees with row-at-a-time boxed hashing.
constexpr uint64_t kNullValueHash = 0x9e3779b97f4a7c15ULL;

/// 64-bit finalizer (splitmix64); good avalanche for integer keys.
inline uint64_t HashInt64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// FNV-1a over a byte range, finalized with splitmix64.
inline uint64_t HashBytes(const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return HashInt64(h);
}

/// Boost-style hash combining.
inline uint64_t HashCombine(uint64_t seed, uint64_t h) {
  return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// Column-batch hashing: fold one key column's element hashes into the
/// running per-row key hashes, `(*inout)[i] = HashCombine((*inout)[i],
/// elem_hash(i))`. Seeding `inout` with the key seed and folding each key
/// column in order is bit-identical to the row-at-a-time
/// `HashCombine(h, row[col].Hash())` loop, but walks one column at a time
/// so only referenced columns are touched.
template <typename ElemHash, typename Vec>
inline void HashColumnBatch(size_t num_rows, ElemHash&& elem_hash,
                            Vec* inout) {
  for (size_t i = 0; i < num_rows; ++i) {
    (*inout)[i] = HashCombine((*inout)[i], elem_hash(i));
  }
}

/// Hash one double cell exactly like Value::Hash: integral-valued doubles
/// hash as the equal int (Compare treats 2 == 2.0, so Hash must agree),
/// everything else by bit pattern.
inline uint64_t HashDoubleValue(double d) {
  if (d == static_cast<double>(static_cast<int64_t>(d)) &&
      std::abs(d) < 9.2e18) {
    return HashInt64(static_cast<uint64_t>(static_cast<int64_t>(d)));
  }
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(bits));
  return HashInt64(bits);
}

// Unboxed fast paths over typed column payloads: fold a raw int64/double
// array into the running per-row key hashes without constructing or
// inspecting a Value per cell. `nulls` (may be null: no NULL rows) makes
// the fold NULL-aware — NULL rows fold kNullValueHash, matching
// Value::Hash on a NULL. Bit-identical to the boxed elem_hash form above.

template <typename Vec>
inline void HashColumnBatch(size_t num_rows, const int64_t* vals,
                            const BitVector* nulls, Vec* inout) {
  if (nulls == nullptr) {
    for (size_t i = 0; i < num_rows; ++i) {
      (*inout)[i] = HashCombine((*inout)[i],
                                HashInt64(static_cast<uint64_t>(vals[i])));
    }
    return;
  }
  for (size_t i = 0; i < num_rows; ++i) {
    uint64_t h = nulls->Test(i) ? kNullValueHash
                                : HashInt64(static_cast<uint64_t>(vals[i]));
    (*inout)[i] = HashCombine((*inout)[i], h);
  }
}

template <typename Vec>
inline void HashColumnBatch(size_t num_rows, const double* vals,
                            const BitVector* nulls, Vec* inout) {
  if (nulls == nullptr) {
    for (size_t i = 0; i < num_rows; ++i) {
      (*inout)[i] = HashCombine((*inout)[i], HashDoubleValue(vals[i]));
    }
    return;
  }
  for (size_t i = 0; i < num_rows; ++i) {
    uint64_t h = nulls->Test(i) ? kNullValueHash : HashDoubleValue(vals[i]);
    (*inout)[i] = HashCombine((*inout)[i], h);
  }
}

}  // namespace imp

#endif  // IMP_COMMON_HASH_H_
