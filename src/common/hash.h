// Hash primitives shared by values, tuples and bloom filters.

#ifndef IMP_COMMON_HASH_H_
#define IMP_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace imp {

/// 64-bit finalizer (splitmix64); good avalanche for integer keys.
inline uint64_t HashInt64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// FNV-1a over a byte range, finalized with splitmix64.
inline uint64_t HashBytes(const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return HashInt64(h);
}

/// Boost-style hash combining.
inline uint64_t HashCombine(uint64_t seed, uint64_t h) {
  return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// Column-batch hashing: fold one key column's element hashes into the
/// running per-row key hashes, `(*inout)[i] = HashCombine((*inout)[i],
/// elem_hash(i))`. Seeding `inout` with the key seed and folding each key
/// column in order is bit-identical to the row-at-a-time
/// `HashCombine(h, row[col].Hash())` loop, but walks one column at a time
/// so only referenced columns are touched.
template <typename ElemHash, typename Vec>
inline void HashColumnBatch(size_t num_rows, ElemHash&& elem_hash,
                            Vec* inout) {
  for (size_t i = 0; i < num_rows; ++i) {
    (*inout)[i] = HashCombine((*inout)[i], elem_hash(i));
  }
}

}  // namespace imp

#endif  // IMP_COMMON_HASH_H_
