#include "common/bitvector.h"

#include "common/hash.h"

namespace imp {

namespace {
// C++17-compatible popcount / count-trailing-zeros (the project targets
// C++17, so std::popcount / std::countr_zero from <bit> are unavailable).
inline int PopCount64(uint64_t w) { return __builtin_popcountll(w); }
inline int CountTrailingZeros64(uint64_t w) { return __builtin_ctzll(w); }
}  // namespace

void BitVector::Resize(size_t num_bits) {
  if (num_bits <= num_bits_) return;
  num_bits_ = num_bits;
  words_.resize((num_bits + 63) / 64, 0);
}

void BitVector::SetAll() {
  if (num_bits_ == 0) return;
  for (uint64_t& w : words_) w = ~uint64_t{0};
  size_t tail = num_bits_ & 63;
  if (tail != 0) words_.back() &= (uint64_t{1} << tail) - 1;
}

void BitVector::ClearAll() {
  for (uint64_t& w : words_) w = 0;
}

void BitVector::FlipAll() {
  if (num_bits_ == 0) return;
  for (uint64_t& w : words_) w = ~w;
  size_t tail = num_bits_ & 63;
  if (tail != 0) words_.back() &= (uint64_t{1} << tail) - 1;
}

size_t BitVector::Count() const {
  size_t c = 0;
  for (uint64_t w : words_) c += static_cast<size_t>(PopCount64(w));
  return c;
}

bool BitVector::None() const {
  for (uint64_t w : words_) {
    if (w != 0) return false;
  }
  return true;
}

void BitVector::UnionWith(const BitVector& other) {
  if (other.num_bits_ > num_bits_) Resize(other.num_bits_);
  for (size_t i = 0; i < other.words_.size(); ++i) words_[i] |= other.words_[i];
}

void BitVector::IntersectWith(const BitVector& other) {
  for (size_t i = 0; i < words_.size(); ++i) {
    words_[i] &= (i < other.words_.size() ? other.words_[i] : 0);
  }
}

void BitVector::SubtractWith(const BitVector& other) {
  size_t n = words_.size() < other.words_.size() ? words_.size()
                                                 : other.words_.size();
  for (size_t i = 0; i < n; ++i) words_[i] &= ~other.words_[i];
}

bool BitVector::Covers(const BitVector& other) const {
  for (size_t i = 0; i < other.words_.size(); ++i) {
    uint64_t mine = i < words_.size() ? words_[i] : 0;
    if ((other.words_[i] & ~mine) != 0) return false;
  }
  return true;
}

bool BitVector::Intersects(const BitVector& other) const {
  size_t n = words_.size() < other.words_.size() ? words_.size()
                                                 : other.words_.size();
  for (size_t i = 0; i < n; ++i) {
    if ((words_[i] & other.words_[i]) != 0) return true;
  }
  return false;
}

size_t BitVector::CountAnd(const BitVector& other) const {
  size_t n = words_.size() < other.words_.size() ? words_.size()
                                                 : other.words_.size();
  size_t c = 0;
  for (size_t i = 0; i < n; ++i) {
    c += static_cast<size_t>(PopCount64(words_[i] & other.words_[i]));
  }
  return c;
}

std::vector<size_t> BitVector::SetBits() const {
  std::vector<size_t> out;
  for (size_t wi = 0; wi < words_.size(); ++wi) {
    uint64_t w = words_[wi];
    while (w != 0) {
      int b = CountTrailingZeros64(w);
      out.push_back(wi * 64 + static_cast<size_t>(b));
      w &= w - 1;
    }
  }
  return out;
}

std::string BitVector::ToString() const {
  std::string out = "{";
  bool first = true;
  for (size_t i : SetBits()) {
    if (!first) out += ", ";
    out += std::to_string(i);
    first = false;
  }
  out += "}";
  return out;
}

bool BitVector::operator==(const BitVector& other) const {
  // Equality up to trailing zero words (vectors over different universes
  // with identical set bits compare equal).
  size_t n = words_.size() > other.words_.size() ? words_.size()
                                                 : other.words_.size();
  for (size_t i = 0; i < n; ++i) {
    uint64_t a = i < words_.size() ? words_[i] : 0;
    uint64_t b = i < other.words_.size() ? other.words_[i] : 0;
    if (a != b) return false;
  }
  return true;
}

bool BitVector::operator<(const BitVector& other) const {
  size_t n = words_.size() > other.words_.size() ? words_.size()
                                                 : other.words_.size();
  for (size_t i = 0; i < n; ++i) {
    uint64_t a = i < words_.size() ? words_[i] : 0;
    uint64_t b = i < other.words_.size() ? other.words_[i] : 0;
    if (a != b) return a < b;
  }
  return false;
}

uint64_t BitVector::Hash() const {
  uint64_t h = 0xa0761d6478bd642fULL;
  // Skip trailing zero words so equal vectors hash equally.
  size_t last = words_.size();
  while (last > 0 && words_[last - 1] == 0) --last;
  for (size_t i = 0; i < last; ++i) h = HashCombine(h, HashInt64(words_[i]));
  return h;
}

}  // namespace imp
