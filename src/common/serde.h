// Minimal binary serialization for operator-state persistence (Sec. 2:
// "the system can persist the state that it maintains for its incremental
// operators in the database ... to continue incremental maintenance from a
// consistent state, e.g., when the database is restarted, or when we are
// running out of memory and need to evict the operator states").

#ifndef IMP_COMMON_SERDE_H_
#define IMP_COMMON_SERDE_H_

#include <cstring>
#include <string>
#include <vector>

#include "common/bitvector.h"
#include "common/status.h"
#include "common/tuple.h"
#include "common/value.h"

namespace imp {

/// Append-only little-endian binary writer.
class SerdeWriter {
 public:
  void WriteU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void WriteU64(uint64_t v) {
    char bytes[8];
    std::memcpy(bytes, &v, 8);
    buf_.append(bytes, 8);
  }
  void WriteI64(int64_t v) { WriteU64(static_cast<uint64_t>(v)); }
  void WriteDouble(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, 8);
    WriteU64(bits);
  }
  void WriteBool(bool v) { WriteU8(v ? 1 : 0); }
  void WriteString(const std::string& s) {
    WriteU64(s.size());
    buf_.append(s);
  }
  void WriteValue(const Value& v);
  void WriteTuple(const Tuple& t);
  void WriteBitVector(const BitVector& bv);

  const std::string& buffer() const { return buf_; }
  std::string TakeBuffer() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Cursor-based reader with bounds checking (returns error Status on
/// truncated or corrupt input rather than crashing).
class SerdeReader {
 public:
  explicit SerdeReader(const std::string& buf) : buf_(buf) {}

  Result<uint8_t> ReadU8();
  Result<uint64_t> ReadU64();
  Result<int64_t> ReadI64();
  Result<double> ReadDouble();
  Result<bool> ReadBool();
  Result<std::string> ReadString();
  Result<Value> ReadValue();
  Result<Tuple> ReadTuple();
  Result<BitVector> ReadBitVector();

  bool AtEnd() const { return pos_ >= buf_.size(); }

 private:
  Status Need(size_t n) {
    if (pos_ + n > buf_.size()) {
      return Status::Internal("serde: truncated state blob");
    }
    return Status::OK();
  }

  const std::string& buf_;
  size_t pos_ = 0;
};

}  // namespace imp

#endif  // IMP_COMMON_SERDE_H_
