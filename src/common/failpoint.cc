#include "common/failpoint.h"

#include <cstdlib>

namespace imp {

void Failpoint::Arm(Mode mode, uint64_t n, double p, uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  mode_ = mode;
  n_ = n == 0 ? 1 : n;
  p_ = p;
  rng_.seed(seed);
  evaluations_ = 0;
  hits_ = 0;
  fired_.store(0, std::memory_order_relaxed);
  armed_.store(mode != Mode::kOff, std::memory_order_release);
}

void Failpoint::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  mode_ = Mode::kOff;
  armed_.store(false, std::memory_order_release);
}

bool Failpoint::EvalSlow() {
  std::lock_guard<std::mutex> lock(mu_);
  if (mode_ == Mode::kOff) return false;  // disarmed while we raced here
  ++evaluations_;
  bool fire = false;
  switch (mode_) {
    case Mode::kOff:
      break;
    case Mode::kOnce:
      fire = hits_ == 0;
      break;
    case Mode::kAlways:
      fire = true;
      break;
    case Mode::kTimes:
      fire = hits_ < n_;
      break;
    case Mode::kNth:
      fire = evaluations_ % n_ == 0;
      break;
    case Mode::kProb:
      fire = std::uniform_real_distribution<double>(0.0, 1.0)(rng_) < p_;
      break;
  }
  if (fire) {
    ++hits_;
    fired_.fetch_add(1, std::memory_order_relaxed);
    // One-shot / fire-K-times triggers disarm themselves once exhausted so
    // the fast path goes back to a single relaxed load.
    if ((mode_ == Mode::kOnce && hits_ >= 1) ||
        (mode_ == Mode::kTimes && hits_ >= n_)) {
      mode_ = Mode::kOff;
      armed_.store(false, std::memory_order_release);
    }
  }
  return fire;
}

Status Failpoint::ArmSpec(std::string_view trigger) {
  auto parse_u64 = [](std::string_view s, uint64_t* out) {
    if (s.empty()) return false;
    uint64_t v = 0;
    for (char c : s) {
      if (c < '0' || c > '9') return false;
      v = v * 10 + static_cast<uint64_t>(c - '0');
    }
    *out = v;
    return true;
  };
  if (trigger == "off") {
    Disarm();
    return Status::OK();
  }
  if (trigger == "once") {
    Arm(Mode::kOnce);
    return Status::OK();
  }
  if (trigger == "always") {
    Arm(Mode::kAlways);
    return Status::OK();
  }
  auto colon = trigger.find(':');
  std::string_view head = trigger.substr(0, colon);
  std::string_view rest =
      colon == std::string_view::npos ? std::string_view() : trigger.substr(colon + 1);
  if (head == "times" || head == "nth") {
    uint64_t n = 0;
    if (!parse_u64(rest, &n) || n == 0) {
      return Status::InvalidArgument("failpoint " + name_ + ": bad trigger '" +
                                     std::string(trigger) + "'");
    }
    Arm(head == "times" ? Mode::kTimes : Mode::kNth, n);
    return Status::OK();
  }
  if (head == "prob") {
    // prob:P or prob:P:SEED
    auto colon2 = rest.find(':');
    std::string_view p_str = rest.substr(0, colon2);
    uint64_t seed = 42;
    if (colon2 != std::string_view::npos &&
        !parse_u64(rest.substr(colon2 + 1), &seed)) {
      return Status::InvalidArgument("failpoint " + name_ + ": bad seed in '" +
                                     std::string(trigger) + "'");
    }
    char* end = nullptr;
    std::string p_copy(p_str);
    double p = std::strtod(p_copy.c_str(), &end);
    if (end == p_copy.c_str() || *end != '\0' || p < 0.0 || p > 1.0) {
      return Status::InvalidArgument("failpoint " + name_ +
                                     ": bad probability in '" +
                                     std::string(trigger) + "'");
    }
    Arm(Mode::kProb, 1, p, seed);
    return Status::OK();
  }
  return Status::InvalidArgument("failpoint " + name_ + ": unknown trigger '" +
                                 std::string(trigger) + "'");
}

FailpointRegistry& FailpointRegistry::Instance() {
  static FailpointRegistry* registry = [] {
    auto* r = new FailpointRegistry();
    if (const char* env = std::getenv("IMP_FAILPOINTS")) {
      // Environment activation happens exactly once, before any site can
      // evaluate; a malformed spec aborts loudly instead of silently
      // running the test/bench without its faults.
      Status st = r->ArmFromSpec(env);
      IMP_CHECK_MSG(st.ok(), st.ToString().c_str());
    }
    return r;
  }();
  return *registry;
}

Failpoint& FailpointRegistry::GetOrCreate(std::string_view name) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = points_.find(name);
    if (it != points_.end()) return *it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = points_.find(name);
  if (it == points_.end()) {
    it = points_
             .emplace(std::string(name),
                      std::make_unique<Failpoint>(std::string(name)))
             .first;
  }
  return *it->second;
}

Status FailpointRegistry::ArmFromSpec(std::string_view spec) {
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t semi = spec.find(';', pos);
    std::string_view clause = spec.substr(
        pos, semi == std::string_view::npos ? std::string_view::npos
                                            : semi - pos);
    pos = semi == std::string_view::npos ? spec.size() : semi + 1;
    if (clause.empty()) continue;
    size_t eq = clause.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return Status::InvalidArgument("bad failpoint clause '" +
                                     std::string(clause) + "'");
    }
    IMP_RETURN_NOT_OK(
        GetOrCreate(clause.substr(0, eq)).ArmSpec(clause.substr(eq + 1)));
  }
  return Status::OK();
}

void FailpointRegistry::DisarmAll() {
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (auto& [_, point] : points_) point->Disarm();
}

void FailpointRegistry::Reset() {
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (auto& [_, point] : points_) point->Arm(Failpoint::Mode::kOff);
}

size_t FailpointRegistry::TotalFired() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  size_t total = 0;
  for (const auto& [_, point] : points_) total += point->fire_count();
  return total;
}

std::vector<std::pair<std::string, size_t>> FailpointRegistry::Counters()
    const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::pair<std::string, size_t>> out;
  out.reserve(points_.size());
  for (const auto& [name, point] : points_) {
    out.emplace_back(name, point->fire_count());
  }
  return out;
}

}  // namespace imp
