#include "common/value.h"

#include <cmath>
#include <cstdio>

#include "common/hash.h"

namespace imp {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return "INT";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
  }
  return "?";
}

double Value::ToDouble() const {
  if (is_int()) return static_cast<double>(AsInt());
  IMP_CHECK_MSG(is_double(), "ToDouble on non-numeric value");
  return AsDouble();
}

bool Value::IsTrue() const {
  switch (type()) {
    case ValueType::kNull:
      return false;
    case ValueType::kInt:
      return AsInt() != 0;
    case ValueType::kDouble:
      return AsDouble() != 0.0;
    case ValueType::kString:
      return !AsString().empty();
  }
  return false;
}

int Value::Compare(const Value& other) const {
  // Numeric values compare by magnitude regardless of int/double tag.
  if (is_numeric() && other.is_numeric()) {
    if (is_int() && other.is_int()) {
      int64_t a = AsInt(), b = other.AsInt();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    double a = ToDouble(), b = other.ToDouble();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (type() != other.type()) {
    return static_cast<int>(type()) < static_cast<int>(other.type()) ? -1 : 1;
  }
  switch (type()) {
    case ValueType::kNull:
      return 0;
    case ValueType::kString: {
      int c = AsString().compare(other.AsString());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    default:
      return 0;  // unreachable: numeric handled above
  }
}

namespace {
template <typename IntOp, typename DblOp>
Value NumericBinary(const Value& a, const Value& b, IntOp iop, DblOp dop) {
  if (a.is_null() || b.is_null()) return Value::Null();
  IMP_CHECK_MSG(a.is_numeric() && b.is_numeric(),
                "arithmetic on non-numeric value");
  if (a.is_int() && b.is_int()) return Value::Int(iop(a.AsInt(), b.AsInt()));
  return Value::Double(dop(a.ToDouble(), b.ToDouble()));
}
}  // namespace

Value Value::Add(const Value& a, const Value& b) {
  if (a.is_string() && b.is_string()) {
    return Value::String(a.AsString() + b.AsString());  // string concat
  }
  return NumericBinary(
      a, b, [](int64_t x, int64_t y) { return x + y; },
      [](double x, double y) { return x + y; });
}

Value Value::Sub(const Value& a, const Value& b) {
  return NumericBinary(
      a, b, [](int64_t x, int64_t y) { return x - y; },
      [](double x, double y) { return x - y; });
}

Value Value::Mul(const Value& a, const Value& b) {
  return NumericBinary(
      a, b, [](int64_t x, int64_t y) { return x * y; },
      [](double x, double y) { return x * y; });
}

Value Value::Div(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  IMP_CHECK_MSG(a.is_numeric() && b.is_numeric(), "division on non-numeric");
  if (a.is_int() && b.is_int()) {
    if (b.AsInt() == 0) return Value::Null();  // SQL: division by zero -> NULL
    return Value::Int(a.AsInt() / b.AsInt());
  }
  double d = b.ToDouble();
  if (d == 0.0) return Value::Null();
  return Value::Double(a.ToDouble() / d);
}

Value Value::Mod(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  IMP_CHECK_MSG(a.is_int() && b.is_int(), "modulo needs integers");
  if (b.AsInt() == 0) return Value::Null();
  return Value::Int(a.AsInt() % b.AsInt());
}

Value Value::Neg(const Value& a) {
  if (a.is_null()) return Value::Null();
  if (a.is_int()) return Value::Int(-a.AsInt());
  IMP_CHECK_MSG(a.is_double(), "negation on non-numeric");
  return Value::Double(-a.AsDouble());
}

uint64_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case ValueType::kInt:
      return HashInt64(static_cast<uint64_t>(AsInt()));
    case ValueType::kDouble: {
      double d = AsDouble();
      // Hash doubles holding integral values like the equal int (Compare
      // treats 2 == 2.0, so Hash must agree).
      if (d == static_cast<double>(static_cast<int64_t>(d)) &&
          std::abs(d) < 9.2e18) {
        return HashInt64(static_cast<uint64_t>(static_cast<int64_t>(d)));
      }
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      std::memcpy(&bits, &d, sizeof(bits));
      return HashInt64(bits);
    }
    case ValueType::kString:
      return HashBytes(AsString().data(), AsString().size());
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return std::to_string(AsInt());
    case ValueType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", AsDouble());
      return buf;
    }
    case ValueType::kString:
      return "'" + AsString() + "'";
  }
  return "?";
}

size_t Value::MemoryBytes() const {
  size_t base = sizeof(Value);
  if (is_string() && AsString().size() > sizeof(std::string)) {
    base += AsString().capacity();
  }
  return base;
}

}  // namespace imp
