#include "common/serde.h"

namespace imp {

void SerdeWriter::WriteValue(const Value& v) {
  WriteU8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt:
      WriteI64(v.AsInt());
      break;
    case ValueType::kDouble:
      WriteDouble(v.AsDouble());
      break;
    case ValueType::kString:
      WriteString(v.AsString());
      break;
  }
}

void SerdeWriter::WriteTuple(const Tuple& t) {
  WriteU64(t.size());
  for (const Value& v : t) WriteValue(v);
}

void SerdeWriter::WriteBitVector(const BitVector& bv) {
  WriteU64(bv.num_bits());
  WriteU64(bv.words().size());
  for (uint64_t w : bv.words()) WriteU64(w);
}

Result<uint8_t> SerdeReader::ReadU8() {
  IMP_RETURN_NOT_OK(Need(1));
  return static_cast<uint8_t>(buf_[pos_++]);
}

Result<uint64_t> SerdeReader::ReadU64() {
  IMP_RETURN_NOT_OK(Need(8));
  uint64_t v;
  std::memcpy(&v, buf_.data() + pos_, 8);
  pos_ += 8;
  return v;
}

Result<int64_t> SerdeReader::ReadI64() {
  IMP_ASSIGN_OR_RETURN(uint64_t v, ReadU64());
  return static_cast<int64_t>(v);
}

Result<double> SerdeReader::ReadDouble() {
  IMP_ASSIGN_OR_RETURN(uint64_t bits, ReadU64());
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

Result<bool> SerdeReader::ReadBool() {
  IMP_ASSIGN_OR_RETURN(uint8_t v, ReadU8());
  return v != 0;
}

Result<std::string> SerdeReader::ReadString() {
  IMP_ASSIGN_OR_RETURN(uint64_t len, ReadU64());
  IMP_RETURN_NOT_OK(Need(len));
  std::string s = buf_.substr(pos_, len);
  pos_ += len;
  return s;
}

Result<Value> SerdeReader::ReadValue() {
  IMP_ASSIGN_OR_RETURN(uint8_t tag, ReadU8());
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kInt: {
      IMP_ASSIGN_OR_RETURN(int64_t v, ReadI64());
      return Value::Int(v);
    }
    case ValueType::kDouble: {
      IMP_ASSIGN_OR_RETURN(double v, ReadDouble());
      return Value::Double(v);
    }
    case ValueType::kString: {
      IMP_ASSIGN_OR_RETURN(std::string s, ReadString());
      return Value::String(std::move(s));
    }
  }
  return Status::Internal("serde: bad value tag");
}

Result<Tuple> SerdeReader::ReadTuple() {
  IMP_ASSIGN_OR_RETURN(uint64_t n, ReadU64());
  Tuple t;
  t.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    IMP_ASSIGN_OR_RETURN(Value v, ReadValue());
    t.push_back(std::move(v));
  }
  return t;
}

Result<BitVector> SerdeReader::ReadBitVector() {
  IMP_ASSIGN_OR_RETURN(uint64_t bits, ReadU64());
  IMP_ASSIGN_OR_RETURN(uint64_t words, ReadU64());
  BitVector bv(bits);
  if (words * 64 < bits || words > (bits + 63) / 64) {
    return Status::Internal("serde: bitvector size mismatch");
  }
  for (uint64_t i = 0; i < words; ++i) {
    IMP_ASSIGN_OR_RETURN(uint64_t w, ReadU64());
    for (int b = 0; b < 64; ++b) {
      size_t bit = static_cast<size_t>(i * 64 + b);
      if (((w >> b) & 1) != 0 && bit < bits) bv.Set(bit);
    }
  }
  return bv;
}

}  // namespace imp
