// Bloom filter used by IMP's join optimization (Sec. 7.2): each side of an
// equi-join keeps a filter over its join-key values so delta tuples without
// join partners can be pruned before the backend round trip.

#ifndef IMP_COMMON_BLOOM_FILTER_H_
#define IMP_COMMON_BLOOM_FILTER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bitvector.h"

namespace imp {

/// Standard k-hash bloom filter with double hashing.
class BloomFilter {
 public:
  /// Sized for `expected_items` at roughly `bits_per_item` bits each
  /// (10 bits/item ~ 1% false-positive rate).
  explicit BloomFilter(size_t expected_items = 1024, size_t bits_per_item = 10);

  /// Insert a pre-hashed key.
  void AddHash(uint64_t hash);
  /// Membership test for a pre-hashed key (may return false positives).
  bool MayContainHash(uint64_t hash) const;

  /// Batched probe: `out` is resized to `n` and bit i is set iff
  /// MayContainHash(hashes[i]) — bit-identical to the single probe, one
  /// call per batch instead of per row.
  void MayContainHashes(const uint64_t* hashes, size_t n,
                        BitVector* out) const;

  size_t num_bits() const { return num_bits_; }
  int num_hashes() const { return num_hashes_; }
  const std::vector<uint64_t>& words() const { return words_; }
  size_t MemoryBytes() const { return words_.capacity() * sizeof(uint64_t); }

  /// Restore from persisted state (see common/serde.h users).
  void Restore(size_t num_bits, int num_hashes, std::vector<uint64_t> words) {
    num_bits_ = num_bits;
    num_hashes_ = num_hashes;
    words_ = std::move(words);
  }

 private:
  size_t num_bits_;
  int num_hashes_;
  std::vector<uint64_t> words_;
};

}  // namespace imp

#endif  // IMP_COMMON_BLOOM_FILTER_H_
