// Failpoints: named fault-injection sites compiled into the pipeline
// (ingest apply, maintenance rounds, capture, snapshot publication) that
// tests, benches and CI can arm to force an error exactly where a real
// fault would surface — and assert the system degrades instead of
// corrupting, deadlocking or aborting.
//
// Design:
//  * A failpoint is a process-global named object resolved ONCE per call
//    site (the IMP_FAILPOINT macro caches a reference in a function-local
//    static), so an inactive failpoint costs a single relaxed atomic load
//    — cheap enough to leave compiled into release binaries.
//  * Triggers are deterministic and seeded: one-shot, fire-K-times,
//    every-Nth evaluation, or probability p from a seeded mt19937_64.
//    Deterministic triggers are what make "queries stay bit-identical to
//    the fault-free run" an assertable property rather than a flake.
//  * Activation: programmatic (FailpointRegistry::ArmFromSpec, used by
//    ImpConfig::failpoints) or the IMP_FAILPOINTS environment variable,
//    parsed once on first registry use. Spec grammar:
//
//      spec    := point '=' trigger (';' point '=' trigger)*
//      trigger := 'off' | 'once' | 'always' | 'times:K' | 'nth:N'
//               | 'prob:P' | 'prob:P:SEED'
//
//    e.g. IMP_FAILPOINTS="ingest.apply=once;maintain.round=nth:3".
//
// A fired failpoint makes the surrounding operation return
// Status::Internal("failpoint fired: <name>") — the same shape a genuine
// fault would take — so every handler downstream (retry, backoff,
// quarantine, dead-letter) is exercised through its production path.

#ifndef IMP_COMMON_FAILPOINT_H_
#define IMP_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <random>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace imp {

/// One named fault-injection site. Thread-safe: ShouldFire() may race
/// Arm()/Disarm() from other threads; the armed flag is the lock-free fast
/// path, trigger bookkeeping runs under the point's mutex only while armed.
class Failpoint {
 public:
  explicit Failpoint(std::string name) : name_(std::move(name)) {}

  Failpoint(const Failpoint&) = delete;
  Failpoint& operator=(const Failpoint&) = delete;

  /// Trigger modes (see the spec grammar in the header comment).
  enum class Mode : uint8_t { kOff, kOnce, kAlways, kTimes, kNth, kProb };

  /// Evaluate the trigger. Inactive failpoints cost one relaxed load and
  /// never take the mutex.
  bool ShouldFire() {
    if (!armed_.load(std::memory_order_relaxed)) return false;
    return EvalSlow();
  }

  /// Arm with a trigger mode. `n` is K for kTimes, N for kNth; `p`/`seed`
  /// apply to kProb. Resets evaluation and fire counters.
  void Arm(Mode mode, uint64_t n = 1, double p = 0.0, uint64_t seed = 42);
  /// Parse and arm from a trigger spec ('once', 'nth:3', ...).
  Status ArmSpec(std::string_view trigger);
  void Disarm();

  const std::string& name() const { return name_; }
  bool armed() const { return armed_.load(std::memory_order_relaxed); }
  /// Times this failpoint actually fired (survives Disarm; reset by Arm).
  size_t fire_count() const {
    return fired_.load(std::memory_order_relaxed);
  }

 private:
  bool EvalSlow();

  const std::string name_;
  std::atomic<bool> armed_{false};
  std::atomic<size_t> fired_{0};
  std::mutex mu_;  ///< guards the trigger state below
  Mode mode_ = Mode::kOff;
  uint64_t n_ = 1;          ///< K (kTimes) / N (kNth)
  uint64_t evaluations_ = 0;
  uint64_t hits_ = 0;       ///< fires under the current arming
  double p_ = 0.0;
  std::mt19937_64 rng_{42};
};

/// Process-global registry of failpoints, keyed by name. Points are
/// created on first use and never destroyed (call sites cache references).
class FailpointRegistry {
 public:
  /// The singleton. The first call parses IMP_FAILPOINTS (if set).
  static FailpointRegistry& Instance();

  /// The failpoint named `name`, created disarmed on first use.
  Failpoint& GetOrCreate(std::string_view name);

  /// Arm/disarm from a full spec string ("a=once;b=nth:3"). Empty spec is
  /// a no-op. Unknown points are created; malformed triggers fail without
  /// applying the rest.
  Status ArmFromSpec(std::string_view spec);

  /// Disarm every registered point (does not reset fire counts).
  void DisarmAll();
  /// Disarm every point AND reset fire counts — test isolation between
  /// cases sharing the process-global registry.
  void Reset();

  /// Total fires across all points since process start (or Reset()).
  size_t TotalFired() const;
  /// (name, fire_count) for every registered point, name-sorted.
  std::vector<std::pair<std::string, size_t>> Counters() const;

 private:
  FailpointRegistry() = default;

  mutable std::shared_mutex mu_;  ///< guards the map structure
  std::map<std::string, std::unique_ptr<Failpoint>, std::less<>> points_;
};

// Fault-injection site for Status/Result-returning functions: when the
// named failpoint fires, return the injected error through the normal
// error path. The registry lookup happens once per call site (static
// local); an inactive point is a single relaxed atomic load.
#define IMP_FAILPOINT(point_name)                                         \
  do {                                                                    \
    static ::imp::Failpoint& imp_failpoint_site =                         \
        ::imp::FailpointRegistry::Instance().GetOrCreate(point_name);     \
    if (imp_failpoint_site.ShouldFire()) {                                \
      return ::imp::Status::Internal(std::string("failpoint fired: ") +   \
                                     (point_name));                       \
    }                                                                     \
  } while (0)

// Expression form for sites that need custom handling (retry loops,
// throw-to-simulate-crash): true iff the named failpoint fires now.
#define IMP_FAILPOINT_HIT(point_name)                                     \
  ([]() -> bool {                                                         \
    static ::imp::Failpoint& imp_failpoint_site =                         \
        ::imp::FailpointRegistry::Instance().GetOrCreate(point_name);     \
    return imp_failpoint_site.ShouldFire();                               \
  }())

// The pipeline's named failpoints (shared by sites, tests and CI specs).
inline constexpr const char* kFpIngestApply = "ingest.apply";
inline constexpr const char* kFpIngestWorkerCrash = "ingest.worker_crash";
inline constexpr const char* kFpMaintainRound = "maintain.round";
inline constexpr const char* kFpCapture = "capture";
inline constexpr const char* kFpSnapshotPublish = "snapshot.publish";

}  // namespace imp

#endif  // IMP_COMMON_FAILPOINT_H_
