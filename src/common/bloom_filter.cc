#include "common/bloom_filter.h"

#include "common/hash.h"

namespace imp {

BloomFilter::BloomFilter(size_t expected_items, size_t bits_per_item) {
  size_t bits = expected_items * bits_per_item;
  if (bits < 64) bits = 64;
  num_bits_ = bits;
  // k = ln(2) * bits/item, clamped to a sane range.
  num_hashes_ = static_cast<int>(bits_per_item * 0.69);
  if (num_hashes_ < 1) num_hashes_ = 1;
  if (num_hashes_ > 12) num_hashes_ = 12;
  words_.assign((num_bits_ + 63) / 64, 0);
}

void BloomFilter::AddHash(uint64_t hash) {
  uint64_t h1 = hash;
  uint64_t h2 = HashInt64(hash);
  for (int i = 0; i < num_hashes_; ++i) {
    uint64_t bit = (h1 + static_cast<uint64_t>(i) * h2) % num_bits_;
    words_[bit >> 6] |= (uint64_t{1} << (bit & 63));
  }
}

bool BloomFilter::MayContainHash(uint64_t hash) const {
  uint64_t h1 = hash;
  uint64_t h2 = HashInt64(hash);
  for (int i = 0; i < num_hashes_; ++i) {
    uint64_t bit = (h1 + static_cast<uint64_t>(i) * h2) % num_bits_;
    if (((words_[bit >> 6] >> (bit & 63)) & 1) == 0) return false;
  }
  return true;
}

}  // namespace imp
