#include "common/bloom_filter.h"

#include "common/hash.h"

namespace imp {

BloomFilter::BloomFilter(size_t expected_items, size_t bits_per_item) {
  size_t bits = expected_items * bits_per_item;
  if (bits < 64) bits = 64;
  num_bits_ = bits;
  // k = ln(2) * bits/item, clamped to a sane range.
  num_hashes_ = static_cast<int>(bits_per_item * 0.69);
  if (num_hashes_ < 1) num_hashes_ = 1;
  if (num_hashes_ > 12) num_hashes_ = 12;
  words_.assign((num_bits_ + 63) / 64, 0);
}

void BloomFilter::AddHash(uint64_t hash) {
  uint64_t h1 = hash;
  uint64_t h2 = HashInt64(hash);
  for (int i = 0; i < num_hashes_; ++i) {
    uint64_t bit = (h1 + static_cast<uint64_t>(i) * h2) % num_bits_;
    words_[bit >> 6] |= (uint64_t{1} << (bit & 63));
  }
}

bool BloomFilter::MayContainHash(uint64_t hash) const {
  uint64_t h1 = hash;
  uint64_t h2 = HashInt64(hash);
  for (int i = 0; i < num_hashes_; ++i) {
    uint64_t bit = (h1 + static_cast<uint64_t>(i) * h2) % num_bits_;
    if (((words_[bit >> 6] >> (bit & 63)) & 1) == 0) return false;
  }
  return true;
}

void BloomFilter::MayContainHashes(const uint64_t* hashes, size_t n,
                                   BitVector* out) const {
  out->Resize(n);
  out->ClearAll();
  // One fused pass, the conjunction inlined: probe 0 needs only the
  // primary hash, so the secondary hash — which MayContainHash derives up
  // front for every key — is computed only for rows surviving the first
  // probe. The per-row early exit mirrors the single-probe conjunction
  // exactly, so the result is bit-identical by construction.
  for (size_t r = 0; r < n; ++r) {
    const uint64_t h1 = hashes[r];
    uint64_t bit = h1 % num_bits_;
    if (((words_[bit >> 6] >> (bit & 63)) & 1) == 0) continue;
    const uint64_t h2 = HashInt64(h1);
    bool hit = true;
    for (int i = 1; i < num_hashes_; ++i) {
      bit = (h1 + static_cast<uint64_t>(i) * h2) % num_bits_;
      if (((words_[bit >> 6] >> (bit & 63)) & 1) == 0) {
        hit = false;
        break;
      }
    }
    if (hit) out->Set(r);
  }
}

}  // namespace imp
