// Status / Result error model (RocksDB / Arrow style, no exceptions on the
// hot path).

#ifndef IMP_COMMON_STATUS_H_
#define IMP_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "common/logging.h"

namespace imp {

/// Error categories used across IMP.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kParseError,
  kBindError,
  kNotImplemented,
  kInternal,
  kNeedsRecapture,  ///< Incremental state can no longer answer; recapture.
  kUnavailable,     ///< Degraded subsystem (dead worker, full queue, ...);
                    ///< retry later or route around — not a logic error.
};

/// Lightweight status object; cheap to copy when OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NeedsRecapture(std::string msg) {
    return Status(StatusCode::kNeedsRecapture, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "ParseError: unexpected token".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Result<T> holds either a value or an error Status.
template <typename T>
class Result {
 public:
  Result(T value) : var_(std::move(value)) {}          // NOLINT(runtime/explicit)
  Result(Status status) : var_(std::move(status)) {    // NOLINT(runtime/explicit)
    IMP_CHECK_MSG(!std::get<Status>(var_).ok(),
                  "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(var_); }

  const T& value() const& {
    IMP_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(var_);
  }
  T& value() & {
    IMP_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(var_);
  }
  T&& value() && {
    IMP_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(std::move(var_));
  }

  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(var_);
  }

 private:
  std::variant<T, Status> var_;
};

// Propagate a non-OK status from an expression.
#define IMP_RETURN_NOT_OK(expr)             \
  do {                                      \
    ::imp::Status _st = (expr);             \
    if (!_st.ok()) return _st;              \
  } while (0)

// Assign the value of a Result expression or propagate its error.
#define IMP_CONCAT_INNER_(a, b) a##b
#define IMP_CONCAT_(a, b) IMP_CONCAT_INNER_(a, b)
#define IMP_ASSIGN_OR_RETURN_IMPL_(var, lhs, rexpr) \
  auto var = (rexpr);                               \
  if (!var.ok()) return var.status();               \
  lhs = std::move(var).value();
#define IMP_ASSIGN_OR_RETURN(lhs, rexpr) \
  IMP_ASSIGN_OR_RETURN_IMPL_(IMP_CONCAT_(_res_, __LINE__), lhs, rexpr)

}  // namespace imp

#endif  // IMP_COMMON_STATUS_H_
