// Assertion and check macros shared by all IMP modules.
//
// IMP follows a status-based error model for recoverable errors (parse
// failures, unknown tables, ...) and hard checks for programming errors
// (index out of bounds, broken invariants). IMP_CHECK stays enabled in
// release builds; IMP_DCHECK compiles out in NDEBUG builds.

#ifndef IMP_COMMON_LOGGING_H_
#define IMP_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

#define IMP_CHECK(cond)                                                      \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "IMP_CHECK failed: %s at %s:%d\n", #cond,         \
                   __FILE__, __LINE__);                                      \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define IMP_CHECK_MSG(cond, msg)                                             \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "IMP_CHECK failed: %s (%s) at %s:%d\n", #cond,    \
                   (msg), __FILE__, __LINE__);                               \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#ifdef NDEBUG
#define IMP_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define IMP_DCHECK(cond) IMP_CHECK(cond)
#endif

#endif  // IMP_COMMON_LOGGING_H_
