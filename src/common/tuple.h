// Tuples (rows) and helpers for hashing / ordering them.

#ifndef IMP_COMMON_TUPLE_H_
#define IMP_COMMON_TUPLE_H_

#include <string>
#include <vector>

#include "common/hash.h"
#include "common/value.h"

namespace imp {

/// A row is a flat vector of values; bag semantics is represented either by
/// duplicated rows (full executor) or by signed multiplicities (deltas).
using Tuple = std::vector<Value>;

/// Hash of a full tuple, consistent with element-wise Value equality.
struct TupleHash {
  size_t operator()(const Tuple& t) const {
    uint64_t h = 0x51ed270b0a1f3c42ULL;
    for (const Value& v : t) h = HashCombine(h, v.Hash());
    return static_cast<size_t>(h);
  }
};

/// Element-wise equality.
struct TupleEq {
  bool operator()(const Tuple& a, const Tuple& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i].Compare(b[i]) != 0) return false;
    }
    return true;
  }
};

/// Lexicographic order (total, via Value::Compare).
struct TupleLess {
  bool operator()(const Tuple& a, const Tuple& b) const {
    size_t n = a.size() < b.size() ? a.size() : b.size();
    for (size_t i = 0; i < n; ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  }
};

/// Render "(v1, v2, ...)" for debugging and test failure messages.
inline std::string TupleToString(const Tuple& t) {
  std::string out = "(";
  for (size_t i = 0; i < t.size(); ++i) {
    if (i > 0) out += ", ";
    out += t[i].ToString();
  }
  out += ")";
  return out;
}

/// Approximate memory footprint of a tuple (for state accounting). Strings
/// count heap bytes only when they outgrow the small-string buffer that the
/// inline Value already accounts for — consistent with Value::MemoryBytes,
/// so boxed-vs-typed storage comparisons measure real allocations.
inline size_t TupleMemoryBytes(const Tuple& t) {
  size_t bytes = sizeof(Tuple) + t.capacity() * sizeof(Value);
  for (const Value& v : t) {
    if (v.is_string() && v.AsString().size() > sizeof(std::string)) {
      bytes += v.AsString().capacity();
    }
  }
  return bytes;
}

}  // namespace imp

#endif  // IMP_COMMON_TUPLE_H_
