#include "common/thread_pool.h"

#include <atomic>

namespace imp {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads <= 1) return;  // inline mode
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  if (workers_.empty()) return;
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // A single item gains nothing from a cross-thread handoff (the caller
  // would just block on Wait); this keeps one-entry maintenance rounds —
  // every lazily-repaired query — off the queue entirely.
  if (workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // One task per worker pulling indices from a shared counter keeps the
  // queue short and balances skewed per-item costs.
  auto next = std::make_shared<std::atomic<size_t>>(0);
  size_t tasks = workers_.size() < n ? workers_.size() : n;
  for (size_t t = 0; t < tasks; ++t) {
    Submit([next, n, &fn] {
      for (size_t i = (*next)++; i < n; i = (*next)++) fn(i);
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

size_t ThreadPool::ResolveThreads(size_t requested) {
  if (requested != 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

}  // namespace imp
