#include "common/thread_pool.h"

#include <atomic>
#include <memory>

namespace imp {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads <= 1) return;  // inline mode
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // A single item gains nothing from a cross-thread handoff (the caller
  // would just block waiting); this keeps one-entry maintenance rounds —
  // every lazily-repaired query — off the queue entirely.
  if (workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // One task per worker pulling indices from a shared counter keeps the
  // queue short and balances skewed per-item costs. Completion is tracked
  // per CALL, not through pool-wide bookkeeping: several maintenance
  // rounds may fan out on this pool concurrently (per-shard rounds, lazy
  // repairs), and a caller must not block on another round's items. The
  // caller also claims indices itself, and it waits for fn INVOCATIONS,
  // not for its queued helper tasks: a helper that only gets scheduled
  // after every index is done (stuck behind another round's work) wakes
  // up, finds the counter exhausted and exits without touching `fn` —
  // which is why the by-reference `fn` capture is safe even then, and why
  // a fast round never stalls behind a slow neighbour.
  struct ForState {
    std::atomic<size_t> next{0};
    std::mutex mu;
    std::condition_variable done;
    size_t completed = 0;  ///< finished fn invocations (target: n)
  };
  auto state = std::make_shared<ForState>();
  auto run_share = [state, n, &fn] {
    for (size_t i = state->next++; i < n; i = state->next++) {
      fn(i);
      std::lock_guard<std::mutex> lock(state->mu);
      if (++state->completed == n) state->done.notify_all();
    }
  };
  size_t tasks = workers_.size() < n ? workers_.size() : n;
  for (size_t t = 0; t < tasks; ++t) Submit(run_share);
  run_share();
  std::unique_lock<std::mutex> lock(state->mu);
  state->done.wait(lock, [&] { return state->completed == n; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

size_t ThreadPool::ResolveThreads(size_t requested) {
  if (requested != 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

}  // namespace imp
