#include "common/thread_pool.h"

#include <atomic>
#include <exception>
#include <memory>
#include <string>

namespace imp {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads <= 1) return;  // inline mode
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    // Inline mode mirrors the worker-thread contract: an escaping
    // exception is counted, not propagated — callers of Submit never
    // handle exceptions, and the serial configuration must not be the one
    // configuration where a poisoned task unwinds into the middleware.
    try {
      task();
    } catch (...) {
      escaped_exceptions_.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

Status ThreadPool::ParallelFor(size_t n,
                               const std::function<void(size_t)>& fn) {
  // Wrap every fn invocation so an escaped exception becomes the call's
  // Status instead of std::terminate on a worker thread (a maintenance
  // round's fault is the round's problem, never the process's). The first
  // exception wins; remaining items still run.
  struct ExceptionSlot {
    std::mutex mu;
    bool caught = false;
    std::string what;
  };
  auto capture = [](ExceptionSlot* slot) {
    std::string what = "unknown exception";
    try {
      throw;
    } catch (const std::exception& e) {
      what = e.what();
    } catch (...) {
    }
    std::lock_guard<std::mutex> lock(slot->mu);
    if (!slot->caught) {
      slot->caught = true;
      slot->what = std::move(what);
    }
  };

  if (n == 0) return Status::OK();
  // A single item gains nothing from a cross-thread handoff (the caller
  // would just block waiting); this keeps one-entry maintenance rounds —
  // every lazily-repaired query — off the queue entirely.
  if (workers_.empty() || n == 1) {
    ExceptionSlot slot;
    for (size_t i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        capture(&slot);
      }
    }
    if (slot.caught) {
      return Status::Internal("task threw: " + slot.what);
    }
    return Status::OK();
  }
  // One task per worker pulling indices from a shared counter keeps the
  // queue short and balances skewed per-item costs. Completion is tracked
  // per CALL, not through pool-wide bookkeeping: several maintenance
  // rounds may fan out on this pool concurrently (per-shard rounds, lazy
  // repairs), and a caller must not block on another round's items. The
  // caller also claims indices itself, and it waits for fn INVOCATIONS,
  // not for its queued helper tasks: a helper that only gets scheduled
  // after every index is done (stuck behind another round's work) wakes
  // up, finds the counter exhausted and exits without touching `fn` —
  // which is why the by-reference `fn` capture is safe even then, and why
  // a fast round never stalls behind a slow neighbour.
  struct ForState {
    std::atomic<size_t> next{0};
    std::mutex mu;
    std::condition_variable done;
    size_t completed = 0;  ///< finished fn invocations (target: n)
    ExceptionSlot exception;
  };
  auto state = std::make_shared<ForState>();
  auto run_share = [state, n, &fn, &capture] {
    for (size_t i = state->next++; i < n; i = state->next++) {
      try {
        fn(i);
      } catch (...) {
        capture(&state->exception);
      }
      std::lock_guard<std::mutex> lock(state->mu);
      if (++state->completed == n) state->done.notify_all();
    }
  };
  size_t tasks = workers_.size() < n ? workers_.size() : n;
  for (size_t t = 0; t < tasks; ++t) Submit(run_share);
  run_share();
  std::unique_lock<std::mutex> lock(state->mu);
  state->done.wait(lock, [&] { return state->completed == n; });
  if (state->exception.caught) {
    return Status::Internal("task threw: " + state->exception.what);
  }
  return Status::OK();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // Last line of defense: an exception leaving `task` on a worker thread
    // would std::terminate the whole process. ParallelFor's shares catch
    // their own exceptions (mapped to the call's Status); this catches
    // raw fire-and-forget Submit tasks.
    try {
      task();
    } catch (...) {
      escaped_exceptions_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

size_t ThreadPool::ResolveThreads(size_t requested) {
  if (requested != 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

}  // namespace imp
