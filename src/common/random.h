// Deterministic random number generation for workload generators and
// property tests (seeded, reproducible across runs).

#ifndef IMP_COMMON_RANDOM_H_
#define IMP_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>
#include <random>

namespace imp {

/// Thin wrapper over mt19937_64 with the sampling helpers the workload
/// generators need (uniform ints/doubles, Gaussian noise, Zipf skew).
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : gen_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> d(lo, hi);
    return d(gen_);
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    std::uniform_real_distribution<double> d(lo, hi);
    return d(gen_);
  }

  /// Standard normal scaled by `stddev`.
  double Gaussian(double stddev) {
    std::normal_distribution<double> d(0.0, stddev);
    return d(gen_);
  }

  /// Bernoulli with probability p.
  bool Chance(double p) { return UniformDouble(0.0, 1.0) < p; }

  /// Zipf-distributed rank in [1, n] with exponent s (rejection sampling).
  int64_t Zipf(int64_t n, double s = 1.0) {
    // Inverse-CDF approximation adequate for workload skew.
    double u = UniformDouble(0.0, 1.0);
    double x = std::pow(static_cast<double>(n), 1.0 - u);
    if (s != 1.0) x = std::pow(x, 1.0 / s);
    int64_t r = static_cast<int64_t>(x);
    if (r < 1) r = 1;
    if (r > n) r = n;
    return r;
  }

  std::mt19937_64& engine() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

}  // namespace imp

#endif  // IMP_COMMON_RANDOM_H_
