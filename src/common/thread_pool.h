// A small fixed-size worker pool used by the middleware to fan independent
// sketch-maintenance work items out across threads (Sec. 7.1 middleware:
// many sketches are maintained per round; entries share no mutable state,
// so per-entry work parallelizes without synchronization beyond the queue).
//
// Design notes:
//  * `num_threads <= 1` spawns no workers at all: Submit() runs the task
//    inline, which keeps the serial configuration free of any threading
//    overhead and makes it trivially deterministic.
//  * Tasks SHOULD report errors through captured state (the
//    Status-per-item pattern used by ImpSystem::MaintainAll) — but an
//    exception that does escape a task is captured, not fatal: a worker
//    thread must never let it reach std::terminate and take the whole
//    process down with it. ParallelFor surfaces the first escaped
//    exception as the call's Status; fire-and-forget Submit tasks count
//    theirs in escaped_exceptions().

#ifndef IMP_COMMON_THREAD_POOL_H_
#define IMP_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace imp {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 and 1 both mean "run inline").
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue one task (runs inline when the pool has no workers).
  /// Fire-and-forget: completion is the submitter's business — ParallelFor
  /// tracks it per call, so concurrent rounds never wait on each other.
  /// An exception escaping the task is swallowed and counted (see
  /// escaped_exceptions()); it cannot fail the submitter retroactively.
  void Submit(std::function<void()> task);

  /// Run fn(0) .. fn(n-1); items are claimed dynamically by the workers AND
  /// the calling thread. Blocks until all invocations are done. Safe to
  /// call with n == 0, and safe for CONCURRENT callers: completion is
  /// tracked per call, so overlapping maintenance rounds sharing this pool
  /// never block on each other's items. Returns OK when every invocation
  /// returned normally; an exception escaping any fn(i) is captured and
  /// the first one is returned as Status::Internal (remaining items still
  /// run — one poisoned entry must not starve its round).
  Status ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Number of worker threads (0 = inline execution).
  size_t num_workers() const { return workers_.size(); }

  /// Exceptions that escaped fire-and-forget Submit() tasks (ParallelFor
  /// exceptions are returned to the caller instead). Telemetry only.
  size_t escaped_exceptions() const {
    return escaped_exceptions_.load(std::memory_order_relaxed);
  }

  /// `requested` resolved against the machine: 0 -> hardware concurrency
  /// (at least 1), anything else is returned unchanged.
  static size_t ResolveThreads(size_t requested);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable task_ready_;
  bool stop_ = false;
  std::atomic<size_t> escaped_exceptions_{0};
};

}  // namespace imp

#endif  // IMP_COMMON_THREAD_POOL_H_
