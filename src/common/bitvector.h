// Dynamic bitset used to encode provenance sketches compactly (Sec. 7.1:
// "annotations ... are stored ... as bit sets"; Fig. 18 reports sketch
// sizes assuming a bitvector encoding).

#ifndef IMP_COMMON_BITVECTOR_H_
#define IMP_COMMON_BITVECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"

namespace imp {

/// Fixed-width dynamic bitset over 64-bit words.
class BitVector {
 public:
  BitVector() = default;
  /// All-zero bitvector with `num_bits` addressable bits.
  explicit BitVector(size_t num_bits)
      : num_bits_(num_bits), words_((num_bits + 63) / 64, 0) {}

  size_t num_bits() const { return num_bits_; }

  /// Grow to at least `num_bits` (new bits are zero).
  void Resize(size_t num_bits);

  /// Set every addressable bit (trailing word bits beyond num_bits() stay
  /// zero, preserving the equality/hash contract on trailing words).
  void SetAll();
  /// Clear every bit without changing the addressable size.
  void ClearAll();
  /// Flip every addressable bit in place (tail bits stay zero).
  void FlipAll();

  void Set(size_t i) {
    IMP_DCHECK(i < num_bits_);
    words_[i >> 6] |= (uint64_t{1} << (i & 63));
  }
  void Reset(size_t i) {
    IMP_DCHECK(i < num_bits_);
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }
  bool Test(size_t i) const {
    if (i >= num_bits_) return false;
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  /// Number of set bits.
  size_t Count() const;
  bool None() const;

  /// In-place bitwise union / intersection / difference. The other vector
  /// may have a different size; this vector grows as needed.
  void UnionWith(const BitVector& other);
  void IntersectWith(const BitVector& other);
  void SubtractWith(const BitVector& other);

  /// True iff every set bit of `other` is also set here.
  bool Covers(const BitVector& other) const;
  /// True iff some bit is set in both.
  bool Intersects(const BitVector& other) const;

  /// Popcount of the bitwise AND with `other`, without materializing a
  /// temporary vector. Sizes may differ; missing words count as zero.
  size_t CountAnd(const BitVector& other) const;

  /// Indices of all set bits, ascending.
  std::vector<size_t> SetBits() const;

  /// Invoke `fn(index)` for every set bit, ascending, via word scan + ctz.
  /// The batch kernels' compaction loop: no temporary index vector.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    for (size_t wi = 0; wi < words_.size(); ++wi) {
      uint64_t w = words_[wi];
      while (w != 0) {
        int b = __builtin_ctzll(w);
        fn(wi * 64 + static_cast<size_t>(b));
        w &= w - 1;
      }
    }
  }

  /// Bytes used by the word storage (Fig. 18 accounting).
  size_t MemoryBytes() const { return words_.capacity() * sizeof(uint64_t); }

  /// Render as "{1, 5, 9}".
  std::string ToString() const;

  bool operator==(const BitVector& other) const;
  bool operator!=(const BitVector& other) const { return !(*this == other); }
  /// Lexicographic order on words; total order for use as a map key.
  bool operator<(const BitVector& other) const;

  /// Hash consistent with operator==.
  uint64_t Hash() const;

  const std::vector<uint64_t>& words() const { return words_; }

  /// Raw word access for batch kernels that assemble verdict masks a word
  /// at a time. Callers must keep bits at or above num_bits() zero (the
  /// equality/hash contract on trailing words).
  uint64_t* mutable_words() { return words_.data(); }

 private:
  size_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace imp

#endif  // IMP_COMMON_BITVECTOR_H_
