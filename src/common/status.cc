#include "common/status.h"

namespace imp {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kBindError:
      return "BindError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNeedsRecapture:
      return "NeedsRecapture";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace imp
