// Dynamically typed SQL value used by tuples, expressions and sketches.

#ifndef IMP_COMMON_VALUE_H_
#define IMP_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/logging.h"

namespace imp {

/// Runtime type tags for Value. Dates are represented as ISO-8601 strings
/// (lexicographic order == chronological order), matching the generators.
enum class ValueType : uint8_t { kNull = 0, kInt = 1, kDouble = 2, kString = 3 };

/// Name of a value type ("INT", "DOUBLE", ...), for plan printing.
const char* ValueTypeName(ValueType type);

/// A single SQL value: NULL, 64-bit integer, double, or string.
///
/// Numeric comparisons and arithmetic promote int -> double when the
/// operands are mixed. Comparisons across non-numeric type classes order by
/// type tag (NULL < numbers < strings), which gives a deterministic total
/// order for sort/group operators.
class Value {
 public:
  Value() : rep_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(Rep(v)); }
  static Value Double(double v) { return Value(Rep(v)); }
  static Value String(std::string v) { return Value(Rep(std::move(v))); }
  /// Interpret b as 1/0 integer (SQL booleans are modeled as ints).
  static Value Bool(bool b) { return Int(b ? 1 : 0); }

  ValueType type() const { return static_cast<ValueType>(rep_.index()); }
  bool is_null() const { return type() == ValueType::kNull; }
  bool is_int() const { return type() == ValueType::kInt; }
  bool is_double() const { return type() == ValueType::kDouble; }
  bool is_string() const { return type() == ValueType::kString; }
  bool is_numeric() const { return is_int() || is_double(); }

  int64_t AsInt() const {
    IMP_DCHECK(is_int());
    return std::get<int64_t>(rep_);
  }
  double AsDouble() const {
    IMP_DCHECK(is_double());
    return std::get<double>(rep_);
  }
  const std::string& AsString() const {
    IMP_DCHECK(is_string());
    return std::get<std::string>(rep_);
  }

  /// Numeric value as double (int promoted); checks that this is numeric.
  double ToDouble() const;
  /// Truthiness for predicate results: non-zero numeric is true; NULL false.
  bool IsTrue() const;

  /// Three-way comparison: negative / zero / positive. Total order over all
  /// values (see class comment for cross-type ordering).
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }
  bool operator<=(const Value& other) const { return Compare(other) <= 0; }
  bool operator>(const Value& other) const { return Compare(other) > 0; }
  bool operator>=(const Value& other) const { return Compare(other) >= 0; }

  /// Arithmetic with numeric promotion; NULL-propagating.
  static Value Add(const Value& a, const Value& b);
  static Value Sub(const Value& a, const Value& b);
  static Value Mul(const Value& a, const Value& b);
  static Value Div(const Value& a, const Value& b);
  static Value Mod(const Value& a, const Value& b);
  static Value Neg(const Value& a);

  /// 64-bit hash compatible with operator==.
  uint64_t Hash() const;

  /// SQL-ish rendering: NULL, 42, 3.5, 'text'.
  std::string ToString() const;

  /// Approximate heap + inline footprint in bytes (for memory accounting).
  size_t MemoryBytes() const;

 private:
  using Rep = std::variant<std::monostate, int64_t, double, std::string>;
  explicit Value(Rep rep) : rep_(std::move(rep)) {}

  Rep rep_;
};

/// std::hash adapter so Value can key unordered containers.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace imp

#endif  // IMP_COMMON_VALUE_H_
