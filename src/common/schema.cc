#include "common/schema.h"

namespace imp {

namespace {
/// The unqualified suffix of "qualifier.name", or the input itself.
std::string BaseName(const std::string& name) {
  auto pos = name.rfind('.');
  return pos == std::string::npos ? name : name.substr(pos + 1);
}
}  // namespace

std::optional<size_t> Schema::IndexOf(const std::string& name) const {
  // Pass 1: exact match on the stored name.
  std::optional<size_t> found;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) {
      if (found) return std::nullopt;  // ambiguous
      found = i;
    }
  }
  if (found) return found;
  // Pass 2: match the unqualified suffix ("a" finds "r.a").
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (BaseName(columns_[i].name) == name) {
      if (found) return std::nullopt;  // ambiguous
      found = i;
    }
  }
  return found;
}

Schema Schema::Concat(const Schema& left, const Schema& right) {
  Schema out;
  for (const auto& c : left.columns()) out.AddColumn(c.name, c.type);
  for (const auto& c : right.columns()) out.AddColumn(c.name, c.type);
  return out;
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += ":";
    out += ValueTypeName(columns_[i].type);
  }
  return out;
}

}  // namespace imp
