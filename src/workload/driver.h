// Mixed query/update workload driver (Sec. 8.1): interleaves queries and
// updates at a configurable query-update ratio and measures end-to-end cost
// including capture and maintenance.

#ifndef IMP_WORKLOAD_DRIVER_H_
#define IMP_WORKLOAD_DRIVER_H_

#include <functional>
#include <string>

#include "common/random.h"
#include "middleware/imp_system.h"

namespace imp {

/// Ratio and sizing of a mixed workload.
struct MixedWorkloadSpec {
  size_t total_ops = 1000;       ///< queries + updates
  size_t queries_per_round = 1;  ///< e.g. 5 for 1U5Q
  size_t updates_per_round = 1;  ///< e.g. 5 for 5U1Q
  uint64_t seed = 123;
};

struct WorkloadResult {
  double total_seconds = 0;
  size_t queries_run = 0;
  size_t updates_run = 0;
  ImpSystemStats stats;  ///< the system's stats delta over the run
};

/// Produces the SQL text of the next query (constants may vary per call;
/// all calls should share one query template so sketches are reused).
using QueryGen = std::function<std::string(Rng&)>;
/// Produces the next bound update.
using UpdateGen = std::function<BoundUpdate(Rng&)>;

/// Run `spec.total_ops` operations against `system`, alternating rounds of
/// `updates_per_round` updates and `queries_per_round` queries.
Result<WorkloadResult> RunMixedWorkload(ImpSystem* system, QueryGen query_gen,
                                        UpdateGen update_gen,
                                        const MixedWorkloadSpec& spec);

/// Helper: an UpdateGen inserting `rows_per_update` synthetic rows into a
/// synthetic table (see workload/synthetic.h).
UpdateGen SyntheticInsertGen(std::string table, size_t rows_per_update,
                             size_t num_groups, int64_t start_id);

}  // namespace imp

#endif  // IMP_WORKLOAD_DRIVER_H_
