#include "workload/tpch.h"

#include <cstdio>

namespace imp {

namespace {

const char* kNations[] = {
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT",  "ETHIOPIA", "FRANCE",
    "GERMANY", "INDIA",     "INDONESIA", "IRAN", "IRAQ",  "JAPAN",    "JORDAN",
    "KENYA",   "MOROCCO",   "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA",
    "RUSSIA",  "SAUDI ARABIA", "VIETNAM", "UNITED KINGDOM", "UNITED STATES"};
constexpr int kNumNations = 25;

std::string RandomDate(Rng* rng, int year_lo, int year_hi) {
  int year = static_cast<int>(rng->UniformInt(year_lo, year_hi));
  int month = static_cast<int>(rng->UniformInt(1, 12));
  int day = static_cast<int>(rng->UniformInt(1, 28));
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", year, month, day);
  return buf;
}

}  // namespace

Tuple TpchOrderRow(int64_t orderkey, int64_t max_custkey, Rng* rng) {
  Tuple row;
  row.push_back(Value::Int(orderkey));
  row.push_back(Value::Int(rng->UniformInt(1, max_custkey)));
  row.push_back(Value::String(RandomDate(rng, 1992, 1998)));
  row.push_back(Value::Double(rng->UniformDouble(1000.0, 400000.0)));
  return row;
}

Tuple TpchLineitemRow(int64_t orderkey, int64_t linenumber, Rng* rng) {
  Tuple row;
  row.push_back(Value::Int(orderkey));
  row.push_back(Value::Int(rng->UniformInt(1, 200000)));  // l_partkey
  row.push_back(Value::Int(rng->UniformInt(1, 10000)));   // l_suppkey
  row.push_back(Value::Int(linenumber));
  row.push_back(Value::Int(rng->UniformInt(1, 50)));      // l_quantity
  row.push_back(
      Value::Double(rng->UniformDouble(900.0, 105000.0)));  // l_extendedprice
  row.push_back(Value::Double(
      static_cast<double>(rng->UniformInt(0, 10)) / 100.0));  // l_discount
  static const char* kFlags[] = {"R", "A", "N"};
  row.push_back(Value::String(kFlags[rng->UniformInt(0, 2)]));
  row.push_back(Value::String(RandomDate(rng, 1992, 1998)));  // l_shipdate
  return row;
}

Status CreateTpchTables(Database* db, const TpchSpec& spec) {
  Schema nation;
  nation.AddColumn("n_nationkey", ValueType::kInt);
  nation.AddColumn("n_name", ValueType::kString);
  nation.AddColumn("n_regionkey", ValueType::kInt);
  IMP_RETURN_NOT_OK(db->CreateTable("nation", nation));

  Schema customer;
  customer.AddColumn("c_custkey", ValueType::kInt);
  customer.AddColumn("c_name", ValueType::kString);
  customer.AddColumn("c_address", ValueType::kString);
  customer.AddColumn("c_nationkey", ValueType::kInt);
  customer.AddColumn("c_phone", ValueType::kString);
  customer.AddColumn("c_acctbal", ValueType::kDouble);
  customer.AddColumn("c_comment", ValueType::kString);
  IMP_RETURN_NOT_OK(db->CreateTable("customer", customer));

  Schema orders;
  orders.AddColumn("o_orderkey", ValueType::kInt);
  orders.AddColumn("o_custkey", ValueType::kInt);
  orders.AddColumn("o_orderdate", ValueType::kString);
  orders.AddColumn("o_totalprice", ValueType::kDouble);
  IMP_RETURN_NOT_OK(db->CreateTable("orders", orders));

  Schema lineitem;
  lineitem.AddColumn("l_orderkey", ValueType::kInt);
  lineitem.AddColumn("l_partkey", ValueType::kInt);
  lineitem.AddColumn("l_suppkey", ValueType::kInt);
  lineitem.AddColumn("l_linenumber", ValueType::kInt);
  lineitem.AddColumn("l_quantity", ValueType::kInt);
  lineitem.AddColumn("l_extendedprice", ValueType::kDouble);
  lineitem.AddColumn("l_discount", ValueType::kDouble);
  lineitem.AddColumn("l_returnflag", ValueType::kString);
  lineitem.AddColumn("l_shipdate", ValueType::kString);
  IMP_RETURN_NOT_OK(db->CreateTable("lineitem", lineitem));

  Rng rng(spec.seed);

  std::vector<Tuple> nation_rows;
  for (int i = 0; i < kNumNations; ++i) {
    nation_rows.push_back(Tuple{Value::Int(i), Value::String(kNations[i]),
                                Value::Int(i % 5)});
  }
  IMP_RETURN_NOT_OK(db->BulkLoad("nation", nation_rows));

  auto count = [&](double per_sf) {
    int64_t n = static_cast<int64_t>(per_sf * spec.scale_factor);
    return n < 1 ? int64_t{1} : n;
  };
  int64_t num_customers = count(150000);
  int64_t num_orders = count(1500000);

  std::vector<Tuple> customer_rows;
  customer_rows.reserve(static_cast<size_t>(num_customers));
  for (int64_t c = 1; c <= num_customers; ++c) {
    Tuple row;
    row.push_back(Value::Int(c));
    row.push_back(Value::String("Customer#" + std::to_string(c)));
    row.push_back(Value::String("addr" + std::to_string(c)));
    row.push_back(Value::Int(rng.UniformInt(0, kNumNations - 1)));
    row.push_back(Value::String("phone" + std::to_string(c)));
    row.push_back(Value::Double(rng.UniformDouble(-999.0, 9999.0)));
    row.push_back(Value::String("comment"));
    customer_rows.push_back(std::move(row));
  }
  IMP_RETURN_NOT_OK(db->BulkLoad("customer", customer_rows));

  std::vector<Tuple> order_rows;
  std::vector<Tuple> lineitem_rows;
  order_rows.reserve(static_cast<size_t>(num_orders));
  for (int64_t o = 1; o <= num_orders; ++o) {
    order_rows.push_back(TpchOrderRow(o, num_customers, &rng));
    int64_t lines = rng.UniformInt(1, 7);  // avg ~4 lineitems per order
    for (int64_t l = 1; l <= lines; ++l) {
      lineitem_rows.push_back(TpchLineitemRow(o, l, &rng));
    }
  }
  IMP_RETURN_NOT_OK(db->BulkLoad("orders", order_rows));
  IMP_RETURN_NOT_OK(db->BulkLoad("lineitem", lineitem_rows));
  return Status::OK();
}

std::string TpchQ10Sql(const std::string& lo_date, const std::string& hi_date) {
  return "SELECT c_custkey, c_name, "
         "sum(l_extendedprice * (1 - l_discount)) AS revenue, "
         "c_acctbal, n_name, c_address, c_phone, c_comment "
         "FROM lineitem, orders, customer, nation "
         "WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey "
         "AND o_orderdate >= to_date('" + lo_date + "', 'YYYY-MM-DD') "
         "AND o_orderdate < to_date('" + hi_date + "', 'YYYY-MM-DD') "
         "AND l_returnflag = 'R' "
         "AND c_nationkey = n_nationkey "
         "GROUP BY c_custkey, c_name, c_acctbal, c_phone, "
         "n_name, c_address, c_comment "
         "ORDER BY revenue DESC "
         "LIMIT 20";
}

std::string TpchQ18Sql(int64_t threshold) {
  return "SELECT c_custkey, sum(l_quantity) AS total_qty "
         "FROM lineitem, orders, customer "
         "WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey "
         "GROUP BY c_custkey "
         "HAVING sum(l_quantity) > " + std::to_string(threshold);
}

std::string TpchQ5Sql(int64_t threshold) {
  return "SELECT n_name, sum(l_extendedprice * (1 - l_discount)) AS revenue "
         "FROM lineitem, orders, customer, nation "
         "WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey "
         "AND c_nationkey = n_nationkey "
         "GROUP BY n_name "
         "HAVING sum(l_extendedprice * (1 - l_discount)) > " +
         std::to_string(threshold);
}

}  // namespace imp
