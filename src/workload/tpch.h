// TPC-H-style generator (substitution for the official dbgen; see
// DESIGN.md). Generates nation / customer / orders / lineitem with the
// TPC-H schema subset needed by the evaluation queries, at a configurable
// scale factor. Row counts follow the TPC-H ratios
// (customer : orders : lineitem = 150k : 1.5M : ~6M per SF).

#ifndef IMP_WORKLOAD_TPCH_H_
#define IMP_WORKLOAD_TPCH_H_

#include <string>

#include "common/random.h"
#include "storage/database.h"

namespace imp {

struct TpchSpec {
  double scale_factor = 0.01;  ///< 0.01 => 1.5k customers, ~60k lineitems
  uint64_t seed = 7;
};

/// Create and populate nation, customer, orders, lineitem.
Status CreateTpchTables(Database* db, const TpchSpec& spec);

/// A fresh lineitem row for insert workloads. `orderkey` should reference
/// an existing order for realistic joins.
Tuple TpchLineitemRow(int64_t orderkey, int64_t linenumber, Rng* rng);
/// A fresh order row (o_custkey sampled from [1, max_custkey]).
Tuple TpchOrderRow(int64_t orderkey, int64_t max_custkey, Rng* rng);

/// The evaluation queries (Appendix A.4 plus two HAVING join queries).
/// Q_space — TPC-H Q10 (top-20 customers by revenue).
std::string TpchQ10Sql(const std::string& lo_date = "1994-12-01",
                       const std::string& hi_date = "1995-03-01");
/// Q18-style: customers with total ordered quantity above a threshold.
std::string TpchQ18Sql(int64_t threshold);
/// Q5-style: revenue per nation with a HAVING threshold.
std::string TpchQ5Sql(int64_t threshold);

}  // namespace imp

#endif  // IMP_WORKLOAD_TPCH_H_
