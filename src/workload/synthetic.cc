#include "workload/synthetic.h"

#include <algorithm>

namespace imp {

Schema SyntheticSchema() {
  Schema s;
  for (const char* name :
       {"id", "a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}) {
    s.AddColumn(name, ValueType::kInt);
  }
  return s;
}

Tuple SyntheticRow(const SyntheticSpec& spec, int64_t id, Rng* rng) {
  Tuple row;
  row.reserve(11);
  int64_t a = rng->UniformInt(0, static_cast<int64_t>(spec.num_groups) - 1);
  row.push_back(Value::Int(id));
  row.push_back(Value::Int(a));
  // b..j linearly correlated with a, Gaussian noise, clamped non-negative
  // (keeps SUM-based HAVING conditions monotone; see safety rule R3).
  static const double kCoefs[] = {3.0, 2.0, 1.5, 1.0, 0.8, 0.5, 0.4, 0.3, 0.2};
  for (double coef : kCoefs) {
    double v = static_cast<double>(a) * coef + rng->Gaussian(spec.noise);
    if (v < 0) v = 0;
    row.push_back(Value::Int(static_cast<int64_t>(v)));
  }
  return row;
}

Status CreateSyntheticTable(Database* db, const SyntheticSpec& spec) {
  IMP_RETURN_NOT_OK(db->CreateTable(spec.name, SyntheticSchema()));
  Rng rng(spec.seed);
  std::vector<Tuple> rows;
  rows.reserve(spec.num_rows);
  for (size_t i = 0; i < spec.num_rows; ++i) {
    rows.push_back(SyntheticRow(spec, static_cast<int64_t>(i), &rng));
  }
  if (spec.cluster_by_a) {
    std::stable_sort(rows.begin(), rows.end(),
                     [](const Tuple& x, const Tuple& y) {
                       return x[1] < y[1];
                     });
  }
  return db->BulkLoad(spec.name, rows);
}

Tuple JoinLeftRow(const JoinPairSpec& spec, int64_t id, int64_t key, Rng* rng) {
  Tuple row;
  row.reserve(4);
  row.push_back(Value::Int(id));
  row.push_back(Value::Int(key));
  double b = static_cast<double>(key) * 2.0 + rng->Gaussian(spec.noise);
  double c = static_cast<double>(key) * 1.5 + rng->Gaussian(spec.noise);
  row.push_back(Value::Int(b < 0 ? 0 : static_cast<int64_t>(b)));
  row.push_back(Value::Int(c < 0 ? 0 : static_cast<int64_t>(c)));
  return row;
}

Status CreateJoinPair(Database* db, const JoinPairSpec& spec) {
  Schema left_schema;
  for (const char* name : {"id", "a", "b", "c"}) {
    left_schema.AddColumn(name, ValueType::kInt);
  }
  Schema right_schema;
  right_schema.AddColumn("ttid", ValueType::kInt);
  right_schema.AddColumn("w", ValueType::kInt);

  IMP_RETURN_NOT_OK(db->CreateTable(spec.left_name, left_schema));
  IMP_RETURN_NOT_OK(db->CreateTable(spec.right_name, right_schema));

  Rng rng(spec.seed);
  // Left: left_per_key rows per key in [0, distinct_keys).
  std::vector<Tuple> left_rows;
  left_rows.reserve(spec.distinct_keys * spec.left_per_key);
  int64_t id = 0;
  for (size_t key = 0; key < spec.distinct_keys; ++key) {
    for (size_t r = 0; r < spec.left_per_key; ++r) {
      left_rows.push_back(
          JoinLeftRow(spec, id++, static_cast<int64_t>(key), &rng));
    }
  }
  IMP_RETURN_NOT_OK(db->BulkLoad(spec.left_name, left_rows));

  // Right: right_per_key rows per key; a (1 - selectivity) fraction of keys
  // is shifted outside the left key domain so those rows never join.
  std::vector<Tuple> right_rows;
  right_rows.reserve(spec.distinct_keys * spec.right_per_key);
  int64_t dead_key = static_cast<int64_t>(spec.distinct_keys) + 1000000;
  for (size_t key = 0; key < spec.distinct_keys; ++key) {
    bool joins = rng.Chance(spec.selectivity);
    int64_t k = joins ? static_cast<int64_t>(key) : dead_key++;
    for (size_t r = 0; r < spec.right_per_key; ++r) {
      Tuple row;
      row.push_back(Value::Int(k));
      row.push_back(Value::Int(rng.UniformInt(0, 1000)));
      right_rows.push_back(std::move(row));
    }
  }
  return db->BulkLoad(spec.right_name, right_rows);
}

}  // namespace imp
