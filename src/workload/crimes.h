// Crimes-dataset substitute (DESIGN.md substitutions): the paper uses the
// Chicago "Crimes 2001-present" CSV (7.3M rows, 1.87GB). We generate a
// synthetic table with the same schema fields used by CQ1/CQ2 and realistic
// category cardinalities (beats, districts, community areas, wards, years),
// so the two evaluation queries exercise identical group-by/HAVING shapes.

#ifndef IMP_WORKLOAD_CRIMES_H_
#define IMP_WORKLOAD_CRIMES_H_

#include <string>

#include "common/random.h"
#include "storage/database.h"

namespace imp {

struct CrimesSpec {
  size_t num_rows = 200000;
  uint64_t seed = 11;
  // Real Chicago cardinalities.
  int64_t num_beats = 304;
  int64_t num_districts = 25;
  int64_t num_community_areas = 77;
  int64_t num_wards = 50;
  int64_t year_lo = 2001;
  int64_t year_hi = 2025;
};

/// Schema: id, beat, district, community_area, ward, year, arrest.
Status CreateCrimesTable(Database* db, const CrimesSpec& spec);

/// A fresh incident row for insert workloads.
Tuple CrimesRow(const CrimesSpec& spec, int64_t id, Rng* rng);

/// CQ1: crimes per (beat, year).
std::string CrimesCq1Sql();
/// CQ2: areas with more than `threshold` crimes.
std::string CrimesCq2Sql(int64_t threshold = 1000);

}  // namespace imp

#endif  // IMP_WORKLOAD_CRIMES_H_
