#include "workload/driver.h"

#include <chrono>
#include <memory>

#include "workload/synthetic.h"

namespace imp {

Result<WorkloadResult> RunMixedWorkload(ImpSystem* system, QueryGen query_gen,
                                        UpdateGen update_gen,
                                        const MixedWorkloadSpec& spec) {
  Rng rng(spec.seed);
  WorkloadResult result;
  ImpSystemStats before = system->stats();
  auto start = std::chrono::steady_clock::now();

  size_t ops = 0;
  while (ops < spec.total_ops) {
    for (size_t u = 0; u < spec.updates_per_round && ops < spec.total_ops;
         ++u, ++ops) {
      BoundUpdate update = update_gen(rng);
      IMP_RETURN_NOT_OK(system->UpdateBound(update).status());
      ++result.updates_run;
    }
    for (size_t q = 0; q < spec.queries_per_round && ops < spec.total_ops;
         ++q, ++ops) {
      std::string sql = query_gen(rng);
      IMP_RETURN_NOT_OK(system->Query(sql).status());
      ++result.queries_run;
    }
  }

  result.total_seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  ImpSystemStats after = system->stats();
  result.stats.queries = after.queries - before.queries;
  result.stats.updates = after.updates - before.updates;
  result.stats.sketch_captures = after.sketch_captures - before.sketch_captures;
  result.stats.sketch_uses = after.sketch_uses - before.sketch_uses;
  result.stats.maintenances = after.maintenances - before.maintenances;
  result.stats.capture_seconds = after.capture_seconds - before.capture_seconds;
  result.stats.maintain_seconds =
      after.maintain_seconds - before.maintain_seconds;
  result.stats.query_seconds = after.query_seconds - before.query_seconds;
  result.stats.update_seconds = after.update_seconds - before.update_seconds;
  return result;
}

UpdateGen SyntheticInsertGen(std::string table, size_t rows_per_update,
                             size_t num_groups, int64_t start_id) {
  auto next_id = std::make_shared<int64_t>(start_id);
  SyntheticSpec spec;
  spec.num_groups = num_groups;
  return [table = std::move(table), rows_per_update, spec,
          next_id](Rng& rng) {
    BoundUpdate update;
    update.kind = BoundUpdate::Kind::kInsert;
    update.table = table;
    for (size_t i = 0; i < rows_per_update; ++i) {
      update.rows.push_back(SyntheticRow(spec, (*next_id)++, &rng));
    }
    return update;
  };
}

}  // namespace imp
