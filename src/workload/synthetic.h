// Synthetic dataset generator (Sec. 8 "Datasets and Workloads"): tables
// with a key attribute `id`, one uniformly random attribute `a`, and
// further attributes linearly correlated with `a` subject to Gaussian
// noise. Also builds the join-helper tables used by the join
// microbenchmarks (Q_join, Q_joinsel) with controlled multiplicities and
// selectivities.

#ifndef IMP_WORKLOAD_SYNTHETIC_H_
#define IMP_WORKLOAD_SYNTHETIC_H_

#include <string>

#include "common/random.h"
#include "storage/database.h"

namespace imp {

/// Parameters of one synthetic table. Schema:
///   id INT, a INT, b INT, c INT, d INT, e INT, f INT, g INT, h INT,
///   i INT, j INT                                   (11 attributes, Sec. 8)
/// a ~ Uniform[0, num_groups); b..j = a * coef + N(0, noise) clamped >= 0.
struct SyntheticSpec {
  std::string name = "r500";
  size_t num_rows = 100000;
  size_t num_groups = 500;    ///< distinct values of `a`
  double noise = 50.0;        ///< Gaussian noise stddev for correlated cols
  uint64_t seed = 42;
  /// Cluster the base data on `a` (physical layout aligned with the range
  /// partitions, as PBDS assumes; zone maps then skip effectively).
  bool cluster_by_a = true;
};

/// Generate one synthetic row (used by insert workloads too).
Tuple SyntheticRow(const SyntheticSpec& spec, int64_t id, Rng* rng);

/// The schema shared by all synthetic tables.
Schema SyntheticSchema();

/// Create and bulk-load the table described by `spec`.
Status CreateSyntheticTable(Database* db, const SyntheticSpec& spec);

/// Parameters of a join pair for Q_join / Q_joinsel:
///   left(id, a, b, c): `left_per_key` rows per join-key value, b/c
///     correlated payloads;
///   right(ttid, w):    `right_per_key` rows per join-key value; only a
///     `selectivity` fraction of the right table's keys exist on the left.
struct JoinPairSpec {
  std::string left_name = "t1gbjoin";
  std::string right_name = "tjoinhelp";
  size_t distinct_keys = 10000;
  size_t left_per_key = 1;
  size_t right_per_key = 1;
  double selectivity = 1.0;  ///< fraction of right rows with join partners
  double noise = 50.0;
  uint64_t seed = 7;
};

/// Create and bulk-load both tables of a join pair.
Status CreateJoinPair(Database* db, const JoinPairSpec& spec);

/// Generate a fresh left-table row for key `key` (insert workloads).
Tuple JoinLeftRow(const JoinPairSpec& spec, int64_t id, int64_t key, Rng* rng);

}  // namespace imp

#endif  // IMP_WORKLOAD_SYNTHETIC_H_
