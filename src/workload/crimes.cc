#include "workload/crimes.h"

#include <algorithm>

namespace imp {

Tuple CrimesRow(const CrimesSpec& spec, int64_t id, Rng* rng) {
  Tuple row;
  // Beats are nested in districts in the real data; approximate that by
  // deriving district/area/ward from the beat with small jitter so the
  // grouping columns are correlated as in the original CSV.
  int64_t beat = rng->UniformInt(1, spec.num_beats);
  int64_t district = 1 + (beat * spec.num_districts) / (spec.num_beats + 1);
  int64_t area = 1 + (beat * spec.num_community_areas) / (spec.num_beats + 1);
  int64_t ward = 1 + (beat * spec.num_wards) / (spec.num_beats + 1);
  row.push_back(Value::Int(id));
  row.push_back(Value::Int(beat));
  row.push_back(Value::Int(district));
  row.push_back(Value::Int(area));
  row.push_back(Value::Int(ward));
  row.push_back(Value::Int(rng->UniformInt(spec.year_lo, spec.year_hi)));
  row.push_back(Value::Int(rng->Chance(0.25) ? 1 : 0));  // arrest flag
  return row;
}

Status CreateCrimesTable(Database* db, const CrimesSpec& spec) {
  Schema schema;
  for (const char* name :
       {"id", "beat", "district", "community_area", "ward", "year", "arrest"}) {
    schema.AddColumn(name, ValueType::kInt);
  }
  IMP_RETURN_NOT_OK(db->CreateTable("crimes", schema));
  Rng rng(spec.seed);
  std::vector<Tuple> rows;
  rows.reserve(spec.num_rows);
  for (size_t i = 0; i < spec.num_rows; ++i) {
    rows.push_back(CrimesRow(spec, static_cast<int64_t>(i), &rng));
  }
  // Cluster on beat so the beat partitions align with the physical layout
  // (the real CSV is roughly clustered by district as well).
  std::stable_sort(rows.begin(), rows.end(),
                   [](const Tuple& x, const Tuple& y) { return x[1] < y[1]; });
  return db->BulkLoad("crimes", rows);
}

std::string CrimesCq1Sql() {
  return "SELECT beat, year, count(id) AS crime_count "
         "FROM crimes GROUP BY beat, year";
}

std::string CrimesCq2Sql(int64_t threshold) {
  return "SELECT district, community_area, ward, beat, "
         "count(beat) AS crime_count "
         "FROM crimes "
         "GROUP BY district, community_area, ward, beat "
         "HAVING count(id) > " + std::to_string(threshold);
}

}  // namespace imp
