// Sketch-annotated deltas (Sec. 4.3): the unit of work of the incremental
// engine.
//
// A delta is a bag of ⟨tuple, sketch⟩ pairs with *signed* multiplicities
// (Z-relation encoding): mult > 0 are insertions Δ+, mult < 0 deletions Δ-.
// The paper's four-case join rule and ∪• application are plain arithmetic
// under this encoding, which keeps the operator rules of Sec. 5 short and
// the correctness argument of Sec. 6 directly executable.

#ifndef IMP_IMP_DELTA_H_
#define IMP_IMP_DELTA_H_

#include <map>
#include <string>
#include <vector>

#include "common/bitvector.h"
#include "common/schema.h"
#include "common/tuple.h"
#include "sketch/partition.h"
#include "storage/database.h"

namespace imp {

/// One annotated delta tuple Δ±⟨t, P⟩^n.
struct AnnotatedDeltaRow {
  Tuple row;
  BitVector sketch;
  int64_t mult = 1;  ///< signed multiplicity

  std::string ToString() const;
};

/// An annotated delta relation Δℛ.
struct AnnotatedDelta {
  std::vector<AnnotatedDeltaRow> rows;

  bool empty() const { return rows.empty(); }
  size_t size() const { return rows.size(); }

  void Append(Tuple row, BitVector sketch, int64_t mult) {
    rows.push_back(AnnotatedDeltaRow{std::move(row), std::move(sketch), mult});
  }

  /// Total |Δ+| (sum of positive multiplicities).
  int64_t InsertCount() const;
  /// Total |Δ-| (absolute sum of negative multiplicities).
  int64_t DeleteCount() const;

  /// Merge rows with identical (tuple, sketch) and drop zero-multiplicity
  /// rows. Surviving rows keep first-appearance order — deterministic for
  /// a given input order, but NOT canonical across input orders (equal
  /// bags consolidated from different orders may differ element-wise).
  void Consolidate();

  std::string ToString() const;
};

/// Per-table annotated base deltas for one maintenance batch — the Δ𝒟
/// passed to the IM (Def. 4.5).
///
/// A table's delta is either owned (`table_deltas`) or a non-owning view
/// into an annotated delta shared across maintainers (`shared_deltas`).
/// Shared views are how the batched maintenance pipeline hands one
/// scan+annotate result to many sketches without per-sketch copies; the
/// pointed-to delta must outlive the context and is never mutated through
/// it. An owned entry shadows a shared one for the same table.
struct DeltaContext {
  std::map<std::string, AnnotatedDelta> table_deltas;
  std::map<std::string, const AnnotatedDelta*> shared_deltas;

  const AnnotatedDelta* Find(const std::string& table) const {
    auto it = table_deltas.find(table);
    if (it != table_deltas.end()) return &it->second;
    auto shared = shared_deltas.find(table);
    return shared == shared_deltas.end() ? nullptr : shared->second;
  }
  bool empty() const;
  /// Total number of delta rows across tables (owned + shared views).
  size_t TotalRows() const;
};

/// annotate(ΔR, Φ): tag each backend delta record with the fragment its
/// partition-attribute value belongs to (Def. 4.4).
AnnotatedDelta AnnotateTableDelta(const TableDelta& delta,
                                  const PartitionCatalog& catalog);
/// Move-in variant: steals the delta's row tuples instead of copying them
/// (the backend delta is consumed; used by the delta-fetch hot path).
AnnotatedDelta AnnotateTableDelta(TableDelta&& delta,
                                  const PartitionCatalog& catalog);

/// Build a DeltaContext from backend deltas for several tables.
DeltaContext MakeDeltaContext(const std::vector<TableDelta>& deltas,
                              const PartitionCatalog& catalog);
/// Move-in variant for freshly fetched deltas (avoids row copies).
DeltaContext MakeDeltaContext(std::vector<TableDelta>&& deltas,
                              const PartitionCatalog& catalog);

}  // namespace imp

#endif  // IMP_IMP_DELTA_H_
