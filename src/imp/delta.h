// Sketch-annotated deltas (Sec. 4.3): the unit of work of the incremental
// engine.
//
// A delta is a bag of ⟨tuple, sketch⟩ pairs with *signed* multiplicities
// (Z-relation encoding): mult > 0 are insertions Δ+, mult < 0 deletions Δ-.
// The paper's four-case join rule and ∪• application are plain arithmetic
// under this encoding, which keeps the operator rules of Sec. 5 short and
// the correctness argument of Sec. 6 directly executable.

#ifndef IMP_IMP_DELTA_H_
#define IMP_IMP_DELTA_H_

#include <map>
#include <string>
#include <vector>

#include "common/bitvector.h"
#include "common/schema.h"
#include "common/tuple.h"
#include "sketch/partition.h"
#include "storage/database.h"

namespace imp {

/// One annotated delta tuple Δ±⟨t, P⟩^n.
struct AnnotatedDeltaRow {
  Tuple row;
  BitVector sketch;
  int64_t mult = 1;  ///< signed multiplicity

  std::string ToString() const;
};

/// An annotated delta relation Δℛ.
struct AnnotatedDelta {
  std::vector<AnnotatedDeltaRow> rows;

  bool empty() const { return rows.empty(); }
  size_t size() const { return rows.size(); }

  void Append(Tuple row, BitVector sketch, int64_t mult) {
    rows.push_back(AnnotatedDeltaRow{std::move(row), std::move(sketch), mult});
  }

  /// Total |Δ+| (sum of positive multiplicities).
  int64_t InsertCount() const;
  /// Total |Δ-| (absolute sum of negative multiplicities).
  int64_t DeleteCount() const;

  /// Merge rows with identical (tuple, sketch) and drop zero-multiplicity
  /// rows; canonicalizes the delta.
  void Consolidate();

  std::string ToString() const;
};

/// Per-table annotated base deltas for one maintenance batch — the Δ𝒟
/// passed to the IM (Def. 4.5).
struct DeltaContext {
  std::map<std::string, AnnotatedDelta> table_deltas;

  const AnnotatedDelta* Find(const std::string& table) const {
    auto it = table_deltas.find(table);
    return it == table_deltas.end() ? nullptr : &it->second;
  }
  bool empty() const;
  /// Total number of delta rows across tables.
  size_t TotalRows() const;
};

/// annotate(ΔR, Φ): tag each backend delta record with the fragment its
/// partition-attribute value belongs to (Def. 4.4).
AnnotatedDelta AnnotateTableDelta(const TableDelta& delta,
                                  const PartitionCatalog& catalog);

/// Build a DeltaContext from backend deltas for several tables.
DeltaContext MakeDeltaContext(const std::vector<TableDelta>& deltas,
                              const PartitionCatalog& catalog);

}  // namespace imp

#endif  // IMP_IMP_DELTA_H_
