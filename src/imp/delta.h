// Sketch-annotated deltas (Sec. 4.3): the unit of work of the incremental
// engine.
//
// A delta is a bag of ⟨tuple, sketch⟩ pairs with *signed* multiplicities
// (Z-relation encoding): mult > 0 are insertions Δ+, mult < 0 deletions Δ-.
// The paper's four-case join rule and ∪• application are plain arithmetic
// under this encoding, which keeps the operator rules of Sec. 5 short and
// the correctness argument of Sec. 6 directly executable.
//
// Between operators, deltas travel as `DeltaBatch`es: either *borrowed*
// (a non-owning view over a shared AnnotatedDelta, with an optional
// selection bitmap picking the visible rows) or *owned* (materialized
// rows). Borrowed batches are what let one scan+annotate result feed N
// sketches with zero per-sketch row copies; an operator that must rewrite
// rows (project, join output, aggregate deltas) produces a fresh owned
// batch, and `Materialize` is the explicit copy-on-write escape hatch.

#ifndef IMP_IMP_DELTA_H_
#define IMP_IMP_DELTA_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/bitvector.h"
#include "common/schema.h"
#include "common/tuple.h"
#include "sketch/partition.h"
#include "storage/database.h"

namespace imp {

/// One annotated delta tuple Δ±⟨t, P⟩^n.
struct AnnotatedDeltaRow {
  Tuple row;
  BitVector sketch;
  int64_t mult = 1;  ///< signed multiplicity

  std::string ToString() const;
};

/// An annotated delta relation Δℛ.
struct AnnotatedDelta {
  std::vector<AnnotatedDeltaRow> rows;

  bool empty() const { return rows.empty(); }
  size_t size() const { return rows.size(); }

  void Append(Tuple row, BitVector sketch, int64_t mult) {
    rows.push_back(AnnotatedDeltaRow{std::move(row), std::move(sketch), mult});
  }

  /// Total |Δ+| (sum of positive multiplicities).
  int64_t InsertCount() const;
  /// Total |Δ-| (absolute sum of negative multiplicities).
  int64_t DeleteCount() const;

  /// Merge rows with identical (tuple, sketch) and drop zero-multiplicity
  /// rows. Surviving rows keep first-appearance order — deterministic for
  /// a given input order, but NOT canonical across input orders (equal
  /// bags consolidated from different orders may differ element-wise).
  void Consolidate();

  std::string ToString() const;
};

/// Counters reported by the maintainer for the optimization experiments
/// (Sec. 8.4): backend round trips for delegated joins, bloom-pruned delta
/// rows, rows shipped, etc. Lives here (the bottom of the imp layer) so
/// DeltaBatch's copy accounting needs no upward dependency on operators.
struct MaintainStats {
  size_t join_round_trips = 0;       ///< delegated join evaluations
  size_t join_rows_shipped = 0;      ///< delta rows sent to the backend
  size_t bloom_pruned_rows = 0;      ///< delta rows dropped by bloom filters
  size_t delta_rows_processed = 0;   ///< base delta rows fed into the plan
  size_t recaptures = 0;             ///< full recaptures forced by truncation
  // Zero-copy pipeline accounting: batches served as borrowed views by
  // table access, borrowed batches that had to be deep-copied into owned
  // rows (copy-on-write events), and the rows those events copied. A
  // filterless scan feeding the shared annotation cache reports
  // rows_copied == 0 — the machine-checkable zero-copy claim.
  size_t deltas_borrowed = 0;        ///< borrowed views served by IncScan
  size_t deltas_materialized = 0;    ///< borrowed -> owned materializations
  size_t rows_copied = 0;            ///< rows deep-copied by materialization
  // Batch-kernel accounting (exec/vector_kernels): batches whose predicate
  // ran (at least partly) through compiled column kernels, and rows the
  // scalar Expr::Eval fallback had to inspect. vectorized_batches == 0 on
  // a filtered workload means the kernel path never engaged.
  size_t vectorized_batches = 0;
  size_t scalar_fallback_rows = 0;
  // Delegated joins that wanted the backend's point index but had to fall
  // back to a full side evaluation (no stateless chain / no key column
  // pass-through / indexed joins disabled). Feed for the cost model: a
  // high count means the O(rows) path is running every round.
  size_t index_fallback_scans = 0;

  void Reset() { *this = MaintainStats{}; }
};

/// A delta batch flowing through the incremental operator chain.
///
/// Either *owned* — the batch holds its rows — or *borrowed* — a non-owning
/// view over an `AnnotatedDelta` that lives elsewhere (the round's shared
/// annotation cache or a DeltaContext entry), optionally restricted by a
/// selection bitmap (bit i set = base row i visible). Borrowed batches are
/// cheap to copy/filter (one bitmap, no rows) and MUST NOT outlive the
/// pointed-to delta; the pointee is never mutated through the view.
///
/// Visible rows always keep the base delta's (delta-log) order, so a
/// borrowed batch with a selection bitmap is row-for-row identical to the
/// eager filtered copy it replaces.
class DeltaBatch {
 public:
  /// Empty owned batch.
  DeltaBatch() = default;

  /// Take ownership of `delta`'s rows.
  static DeltaBatch OwnedOf(AnnotatedDelta delta) {
    DeltaBatch b;
    b.owned_ = std::move(delta);
    return b;
  }

  /// Borrow every row of `*delta` (no copy). `*delta` must outlive the
  /// batch and everything derived from it.
  static DeltaBatch Borrowed(const AnnotatedDelta* delta) {
    DeltaBatch b;
    b.base_ = delta;
    b.visible_ = delta->size();
    return b;
  }

  /// Borrow the rows of `*delta` picked by `selection` (bit i set = row i
  /// visible). The bitmap must not select rows past `delta->size()`.
  static DeltaBatch BorrowedFiltered(const AnnotatedDelta* delta,
                                     BitVector selection) {
    DeltaBatch b;
    b.base_ = delta;
    b.visible_ = selection.Count();
    b.selection_ = std::move(selection);
    b.has_selection_ = true;
    return b;
  }

  bool borrowed() const { return base_ != nullptr; }
  bool filtered() const { return has_selection_; }
  bool empty() const { return size() == 0; }
  /// Number of visible rows.
  size_t size() const { return borrowed() ? visible_ : owned_.size(); }

  /// The underlying shared delta of a borrowed batch (nullptr when owned);
  /// for aliasing checks and tests.
  const AnnotatedDelta* base() const { return base_; }
  /// The rows of an owned batch. Only valid when !borrowed().
  const AnnotatedDelta& owned() const {
    IMP_DCHECK(!borrowed());
    return owned_;
  }
  AnnotatedDelta& mutable_owned() {
    IMP_DCHECK(!borrowed());
    return owned_;
  }

  /// A borrowed view aliasing this batch's rows: owned batches hand out a
  /// borrow of their own rows (so `this` must outlive the view), borrowed
  /// batches copy the (cheap) view itself. This is how IncScan serves a
  /// DeltaContext entry without copying it.
  DeltaBatch View() const {
    if (!borrowed()) return Borrowed(&owned_);
    return *this;
  }

  /// Pull-based cursor over the visible rows in base order.
  class Cursor {
   public:
    explicit Cursor(const DeltaBatch& batch) : batch_(&batch) {}

    /// Next visible row, nullptr at the end.
    const AnnotatedDeltaRow* Next() {
      const std::vector<AnnotatedDeltaRow>& rows = batch_->borrowed()
                                                       ? batch_->base_->rows
                                                       : batch_->owned_.rows;
      while (pos_ < rows.size()) {
        size_t i = pos_++;
        if (!batch_->has_selection_ || batch_->selection_.Test(i)) {
          return &rows[i];
        }
      }
      return nullptr;
    }

   private:
    const DeltaBatch* batch_;
    size_t pos_ = 0;
  };

  /// Visit every visible row in order.
  template <typename Fn>
  void ForEachRow(Fn&& fn) const {
    Cursor cursor(*this);
    while (const AnnotatedDeltaRow* row = cursor.Next()) fn(*row);
  }

  /// Restrict the batch to visible rows satisfying `pred`. Borrowed stays
  /// borrowed — only the selection bitmap is refined — so filter chains
  /// (scan filter, selection operators, bloom pruning) never copy rows.
  /// Owned batches are filtered in place (kept rows are moved, order
  /// preserved).
  template <typename Pred>
  DeltaBatch Filter(Pred&& pred) && {
    if (borrowed()) {
      const std::vector<AnnotatedDeltaRow>& rows = base_->rows;
      BitVector refined(rows.size());
      for (size_t i = 0; i < rows.size(); ++i) {
        if (has_selection_ && !selection_.Test(i)) continue;
        if (!pred(rows[i])) continue;
        refined.Set(i);
      }
      return BorrowedFiltered(base_, std::move(refined));
    }
    std::vector<AnnotatedDeltaRow>& rows = owned_.rows;
    size_t kept = 0;
    for (size_t i = 0; i < rows.size(); ++i) {
      if (!pred(rows[i])) continue;
      if (kept != i) rows[kept] = std::move(rows[i]);
      ++kept;
    }
    rows.resize(kept);
    return std::move(*this);
  }

  /// Restrict the batch to visible rows whose bit is set in `keep`, a
  /// bitmap over the BASE rows (borrowed) / the stored rows (owned) — the
  /// batch-kernel twin of Filter(pred): the kernels evaluate a predicate
  /// over all base rows into one bitmap and this intersects it with the
  /// current selection. Identical to Filter for pure predicates (a row is
  /// kept iff visible AND pred). Borrowed stays borrowed; owned compacts
  /// in place preserving order.
  DeltaBatch FilterWithMask(const BitVector& keep) && {
    if (borrowed()) {
      BitVector refined = keep;
      refined.Resize(base_->size());
      if (has_selection_) refined.IntersectWith(selection_);
      return BorrowedFiltered(base_, std::move(refined));
    }
    std::vector<AnnotatedDeltaRow>& rows = owned_.rows;
    size_t kept = 0;
    for (size_t i = 0; i < rows.size(); ++i) {
      if (!keep.Test(i)) continue;
      if (kept != i) rows[kept] = std::move(rows[i]);
      ++kept;
    }
    rows.resize(kept);
    return std::move(*this);
  }

  /// Deep-copy the visible rows into an owned delta — the copy-on-write
  /// escape hatch for consumers that need materialized rows. Borrowed
  /// batches copy size() rows (counted into `stats` when provided); owned
  /// batches are moved out for free.
  AnnotatedDelta Materialize(MaintainStats* stats = nullptr) &&;

 private:
  const AnnotatedDelta* base_ = nullptr;  ///< non-null iff borrowed
  BitVector selection_;                   ///< valid iff has_selection_
  bool has_selection_ = false;
  size_t visible_ = 0;  ///< cached visible-row count of a borrowed batch
  AnnotatedDelta owned_;
};

/// Per-table annotated base deltas for one maintenance batch — the Δ𝒟
/// passed to the IM (Def. 4.5).
///
/// Each table maps to one DeltaBatch: owned when the context materialized
/// the delta itself (legacy per-sketch fetch, tests), borrowed when the
/// batched maintenance pipeline hands this sketch a view into the round's
/// shared annotated delta (optionally restricted by a push-down selection
/// bitmap). LIFETIME CONTRACT: the shared deltas behind borrowed entries
/// must outlive the context AND every batch the operator chain derives
/// from it during the round (operators return borrowed views into them up
/// to the merge operator); they are never mutated through the views.
struct DeltaContext {
  std::map<std::string, DeltaBatch> batches;
  /// The round's pinned ReadView: every base-table read the operator chain
  /// performs while consuming this context (capture builds, delegated
  /// join round trips, index probes) goes through these snapshots, so the
  /// whole round observes the one frozen watermark its cut was taken at —
  /// even while the ingestion worker publishes concurrently. Null (tests,
  /// the empty fast-forward round) falls back to each table's currently
  /// published snapshot. The view must outlive the context.
  const ReadView* view = nullptr;

  const DeltaBatch* FindBatch(const std::string& table) const {
    auto it = batches.find(table);
    return it == batches.end() ? nullptr : &it->second;
  }
  /// The owned delta slot for `table`, default-constructed on first use
  /// (setup helper for tests and MakeDeltaContext). A table currently
  /// holding a borrowed batch is materialized into an owned one first, so
  /// appends are never silently shadowed by the borrowed view.
  AnnotatedDelta& OwnedFor(const std::string& table);
  bool empty() const;
  /// Total number of visible delta rows across tables.
  size_t TotalRows() const;
};

/// annotate(ΔR, Φ): tag each backend delta record with the fragment its
/// partition-attribute value belongs to (Def. 4.4).
AnnotatedDelta AnnotateTableDelta(const TableDelta& delta,
                                  const PartitionCatalog& catalog);
/// Move-in variant: steals the delta's row tuples instead of copying them
/// (the backend delta is consumed; used by the delta-fetch hot path).
AnnotatedDelta AnnotateTableDelta(TableDelta&& delta,
                                  const PartitionCatalog& catalog);

/// Build a DeltaContext of owned batches from backend deltas.
DeltaContext MakeDeltaContext(const std::vector<TableDelta>& deltas,
                              const PartitionCatalog& catalog);
/// Move-in variant for freshly fetched deltas (avoids row copies).
DeltaContext MakeDeltaContext(std::vector<TableDelta>&& deltas,
                              const PartitionCatalog& catalog);

}  // namespace imp

#endif  // IMP_IMP_DELTA_H_
