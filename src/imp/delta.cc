#include "imp/delta.h"

#include <algorithm>

namespace imp {

std::string AnnotatedDeltaRow::ToString() const {
  std::string out = mult >= 0 ? "Δ+" : "Δ-";
  out += "<" + TupleToString(row) + ", " + sketch.ToString() + ">^" +
         std::to_string(mult < 0 ? -mult : mult);
  return out;
}

int64_t AnnotatedDelta::InsertCount() const {
  int64_t n = 0;
  for (const auto& r : rows) {
    if (r.mult > 0) n += r.mult;
  }
  return n;
}

int64_t AnnotatedDelta::DeleteCount() const {
  int64_t n = 0;
  for (const auto& r : rows) {
    if (r.mult < 0) n -= r.mult;
  }
  return n;
}

void AnnotatedDelta::Consolidate() {
  if (rows.size() <= 1) return;
  std::sort(rows.begin(), rows.end(),
            [](const AnnotatedDeltaRow& a, const AnnotatedDeltaRow& b) {
              TupleLess less;
              if (less(a.row, b.row)) return true;
              if (less(b.row, a.row)) return false;
              return a.sketch < b.sketch;
            });
  std::vector<AnnotatedDeltaRow> merged;
  TupleEq eq;
  for (AnnotatedDeltaRow& r : rows) {
    if (!merged.empty() && eq(merged.back().row, r.row) &&
        merged.back().sketch == r.sketch) {
      merged.back().mult += r.mult;
    } else {
      merged.push_back(std::move(r));
    }
  }
  merged.erase(std::remove_if(merged.begin(), merged.end(),
                              [](const AnnotatedDeltaRow& r) {
                                return r.mult == 0;
                              }),
               merged.end());
  rows = std::move(merged);
}

std::string AnnotatedDelta::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < rows.size(); ++i) {
    if (i > 0) out += ", ";
    out += rows[i].ToString();
  }
  out += "}";
  return out;
}

bool DeltaContext::empty() const {
  for (const auto& [_, delta] : table_deltas) {
    if (!delta.empty()) return false;
  }
  return true;
}

size_t DeltaContext::TotalRows() const {
  size_t n = 0;
  for (const auto& [_, delta] : table_deltas) n += delta.size();
  return n;
}

AnnotatedDelta AnnotateTableDelta(const TableDelta& delta,
                                  const PartitionCatalog& catalog) {
  AnnotatedDelta out;
  out.rows.reserve(delta.records.size());
  for (const DeltaRecord& rec : delta.records) {
    BitVector sketch;
    catalog.AnnotateRow(delta.table, rec.row, &sketch);
    out.Append(rec.row, std::move(sketch), rec.mult);
  }
  return out;
}

DeltaContext MakeDeltaContext(const std::vector<TableDelta>& deltas,
                              const PartitionCatalog& catalog) {
  DeltaContext ctx;
  for (const TableDelta& d : deltas) {
    AnnotatedDelta annotated = AnnotateTableDelta(d, catalog);
    AnnotatedDelta& slot = ctx.table_deltas[d.table];
    if (slot.empty()) {
      slot = std::move(annotated);
    } else {
      for (auto& r : annotated.rows) slot.rows.push_back(std::move(r));
    }
  }
  return ctx;
}

}  // namespace imp
