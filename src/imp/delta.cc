#include "imp/delta.h"

#include <algorithm>
#include <type_traits>
#include <unordered_map>

namespace imp {

std::string AnnotatedDeltaRow::ToString() const {
  std::string out = mult >= 0 ? "Δ+" : "Δ-";
  out += "<" + TupleToString(row) + ", " + sketch.ToString() + ">^" +
         std::to_string(mult < 0 ? -mult : mult);
  return out;
}

int64_t AnnotatedDelta::InsertCount() const {
  int64_t n = 0;
  for (const auto& r : rows) {
    if (r.mult > 0) n += r.mult;
  }
  return n;
}

int64_t AnnotatedDelta::DeleteCount() const {
  int64_t n = 0;
  for (const auto& r : rows) {
    if (r.mult < 0) n -= r.mult;
  }
  return n;
}

namespace {

/// Hash / equality over the (tuple, sketch) key of a delta row. Keys are
/// pointers into a vector that is reserved up front, so they stay stable.
struct RowKeyHash {
  size_t operator()(const AnnotatedDeltaRow* r) const {
    return static_cast<size_t>(
        HashCombine(TupleHash{}(r->row), r->sketch.Hash()));
  }
};
struct RowKeyEq {
  bool operator()(const AnnotatedDeltaRow* a,
                  const AnnotatedDeltaRow* b) const {
    return TupleEq{}(a->row, b->row) && a->sketch == b->sketch;
  }
};

}  // namespace

void AnnotatedDelta::Consolidate() {
  if (rows.size() <= 1) {
    if (rows.size() == 1 && rows[0].mult == 0) rows.clear();
    return;
  }
  // Hash-merge on (tuple, sketch): O(n) instead of the previous
  // O(n log n) sort+merge. Output keeps first-appearance order, which is
  // deterministic for a given input order.
  std::vector<AnnotatedDeltaRow> merged;
  merged.reserve(rows.size());  // no rehash of key pointers: see RowKeyHash
  std::unordered_map<const AnnotatedDeltaRow*, size_t, RowKeyHash, RowKeyEq>
      index;
  index.reserve(rows.size());
  for (AnnotatedDeltaRow& r : rows) {
    auto it = index.find(&r);
    if (it != index.end()) {
      merged[it->second].mult += r.mult;
    } else {
      merged.push_back(std::move(r));
      index.emplace(&merged.back(), merged.size() - 1);
    }
  }
  merged.erase(std::remove_if(merged.begin(), merged.end(),
                              [](const AnnotatedDeltaRow& r) {
                                return r.mult == 0;
                              }),
               merged.end());
  rows = std::move(merged);
}

std::string AnnotatedDelta::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < rows.size(); ++i) {
    if (i > 0) out += ", ";
    out += rows[i].ToString();
  }
  out += "}";
  return out;
}

AnnotatedDelta DeltaBatch::Materialize(MaintainStats* stats) && {
  if (!borrowed()) return std::move(owned_);
  AnnotatedDelta out;
  out.rows.reserve(size());
  ForEachRow([&](const AnnotatedDeltaRow& r) { out.rows.push_back(r); });
  if (stats != nullptr) {
    ++stats->deltas_materialized;
    stats->rows_copied += out.rows.size();
  }
  return out;
}

AnnotatedDelta& DeltaContext::OwnedFor(const std::string& table) {
  DeltaBatch& slot = batches[table];
  if (slot.borrowed()) {
    slot = DeltaBatch::OwnedOf(std::move(slot).Materialize());
  }
  return slot.mutable_owned();
}

bool DeltaContext::empty() const {
  for (const auto& [_, batch] : batches) {
    if (!batch.empty()) return false;
  }
  return true;
}

size_t DeltaContext::TotalRows() const {
  size_t n = 0;
  for (const auto& [_, batch] : batches) n += batch.size();
  return n;
}

namespace {

/// One annotate loop for both overloads: rvalue deltas donate their row
/// tuples, lvalues are copied. Keeping a single body ensures the shared
/// batch path and the legacy path can never diverge on annotation.
template <typename TableDeltaRef>
AnnotatedDelta AnnotateImpl(TableDeltaRef&& delta,
                            const PartitionCatalog& catalog) {
  constexpr bool kConsume = !std::is_lvalue_reference<TableDeltaRef>::value;
  AnnotatedDelta out;
  out.rows.reserve(delta.records.size());
  // Resolve the table's partition once for the whole batch; each record
  // then costs one binary search over just the partition column (no
  // catalog map lookup per row). Bit-identical to AnnotateRow.
  const TableAnnotator annot = catalog.ResolveAnnotator(delta.table);
  for (auto& rec : delta.records) {
    BitVector sketch;
    annot.AnnotateRow(rec.row, &sketch);
    if constexpr (kConsume) {
      out.Append(std::move(rec.row), std::move(sketch), rec.mult);
    } else {
      out.Append(rec.row, std::move(sketch), rec.mult);
    }
  }
  if constexpr (kConsume) delta.records.clear();
  return out;
}

}  // namespace

AnnotatedDelta AnnotateTableDelta(const TableDelta& delta,
                                  const PartitionCatalog& catalog) {
  return AnnotateImpl(delta, catalog);
}

AnnotatedDelta AnnotateTableDelta(TableDelta&& delta,
                                  const PartitionCatalog& catalog) {
  return AnnotateImpl(std::move(delta), catalog);
}

namespace {

template <typename TableDeltaRef>
void MergeIntoContext(TableDeltaRef&& d, const PartitionCatalog& catalog,
                      DeltaContext* ctx) {
  std::string table = d.table;  // before the forward may consume d
  AnnotatedDelta annotated =
      AnnotateTableDelta(std::forward<TableDeltaRef>(d), catalog);
  AnnotatedDelta& slot = ctx->OwnedFor(table);
  if (slot.empty()) {
    slot = std::move(annotated);
  } else {
    slot.rows.reserve(slot.rows.size() + annotated.rows.size());
    for (auto& r : annotated.rows) slot.rows.push_back(std::move(r));
  }
}

}  // namespace

DeltaContext MakeDeltaContext(const std::vector<TableDelta>& deltas,
                              const PartitionCatalog& catalog) {
  DeltaContext ctx;
  for (const TableDelta& d : deltas) MergeIntoContext(d, catalog, &ctx);
  return ctx;
}

DeltaContext MakeDeltaContext(std::vector<TableDelta>&& deltas,
                              const PartitionCatalog& catalog) {
  DeltaContext ctx;
  for (TableDelta& d : deltas) MergeIntoContext(std::move(d), catalog, &ctx);
  deltas.clear();
  return ctx;
}

}  // namespace imp
