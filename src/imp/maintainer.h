// The incremental maintenance procedure I (Def. 4.5): builds an incremental
// operator tree mirroring a query plan, initializes its state alongside
// sketch capture, and turns backend deltas into sketch deltas.
//
// Responsibilities:
//  * operator tree construction (Sec. 5.2) plus the merge operator μ,
//  * state initialization from the current database ("the state of the
//    incremental operators for this query", Sec. 2),
//  * the selection push-down analysis that lets delta fetching pre-filter
//    rows in the backend (Sec. 7.2),
//  * recapture-on-truncation: when a truncated min/max or top-k buffer runs
//    dry the maintainer transparently rebuilds all state (Sec. 8.4.3).

#ifndef IMP_IMP_MAINTAINER_H_
#define IMP_IMP_MAINTAINER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "algebra/plan.h"
#include "imp/inc_operators.h"
#include "sketch/sketch.h"

namespace imp {

/// Tunables for the incremental engine (all paper optimizations).
struct MaintainerOptions {
  bool bloom_filters = true;       ///< Sec. 7.2 join bloom filters
  bool selection_pushdown = true;  ///< Sec. 7.2 delta pre-filtering
  size_t minmax_buffer = 0;        ///< top-l buffer for min/max (0 = all)
  size_t topk_buffer = 0;          ///< top-l buffer for top-k (0 = all)
  /// Batch-at-a-time predicate kernels + batched bloom probing in the
  /// operator chain (exec/vector_kernels). Off = row-at-a-time Expr::Eval
  /// everywhere; results are bit-identical either way.
  bool vectorized_kernels = true;
  /// Delegated ΔR ⋈ S round trips answered via the backend snapshot's
  /// point index (storage/snapshot_index). Off = every round trip fully
  /// evaluates the side; results are bit-identical either way — the
  /// reference the index equivalence gates compare against.
  bool indexed_joins = true;
  /// Operator fast paths over the typed columnar chunk layout: pre-resolved
  /// column access in aggregation/projection instead of per-row virtual
  /// Expr::Eval. Off = the boxed reference path; results are bit-identical
  /// either way (the twin-system equivalence gates compare the two).
  bool typed_columns = true;
};

/// Incremental maintenance procedure for one query's sketch.
class Maintainer {
 public:
  Maintainer(const Database* db, const PartitionCatalog* catalog, PlanPtr plan,
             MaintainerOptions options = {});

  /// Build all operator state by evaluating the (annotated) query once and
  /// record the accurate sketch — the capture step (Fig. 2, blue pipeline).
  /// With `view`, the capture reads the pinned snapshots and the sketch
  /// anchors at the view's watermark; without one it reads each table's
  /// currently published snapshot and anchors at StableVersion().
  Result<ProvenanceSketch> Initialize(const ReadView* view = nullptr);

  /// Incrementally maintain with raw backend deltas, advancing the sketch
  /// to `new_version`. Returns the sketch delta ΔP. On buffer exhaustion
  /// the maintainer recaptures internally (counted in stats().recaptures)
  /// and returns the diff between old and new sketch.
  Result<SketchDelta> Maintain(const std::vector<TableDelta>& deltas,
                               uint64_t new_version);

  /// Maintain with an already-annotated delta context. This is the shared
  /// batch path: the middleware scans and annotates each table's delta once
  /// and hands every maintainer a context of per-table DeltaBatches —
  /// borrowed views into the round's shared annotated deltas (optionally
  /// restricted by a push-down selection bitmap), or owned batches on the
  /// legacy path. The operator chain processes borrowed batches in place
  /// (zero row copies for filterless scans), so the shared deltas behind
  /// `ctx` must outlive this call; they are never mutated through it. The
  /// context must be annotated against this maintainer's catalog.
  Result<SketchDelta> MaintainAnnotated(const DeltaContext& ctx,
                                        uint64_t new_version);

  /// Fetch the pending deltas for all referenced tables from the backend
  /// (applying selection push-down) and maintain up to `cut_version` — the
  /// frozen epoch cut of the maintenance round. Only published delta
  /// records are visible, so a cut at the stable watermark never observes
  /// a statement that is still being applied. `view` (pinned at the cut)
  /// is what delegated joins and recapture-on-truncation read through, so
  /// the round stays at one watermark even under concurrent ingestion.
  Result<SketchDelta> MaintainFromBackend(uint64_t cut_version,
                                          const ReadView* view = nullptr);
  /// Convenience: cut at the database's stable watermark.
  Result<SketchDelta> MaintainFromBackend();

  /// Backend fetch work done by the last MaintainFromBackend call: one
  /// delta-log scan per referenced table, one annotation pass per
  /// non-empty (post-push-down) delta. Lets the middleware report the
  /// per-sketch path's measured cost next to the shared batch's counters.
  struct FetchStats {
    size_t delta_scans = 0;
    size_t annotation_passes = 0;
  };
  const FetchStats& last_fetch_stats() const { return last_fetch_stats_; }

  /// Wall seconds of the last Initialize (the state build from base
  /// tables), measured inside the maintainer so every capture path —
  /// initial capture, failure escalation, cost-model recapture,
  /// recapture-on-truncation — feeds the policy ledger the build cost
  /// alone, without plan/bind overhead from the surrounding call.
  double last_build_seconds() const { return last_build_seconds_; }

  const ProvenanceSketch& sketch() const { return sketch_; }
  uint64_t maintained_version() const { return sketch_.valid_version; }
  const PlanPtr& plan() const { return plan_; }
  /// The plan's referenced tables, cached at construction (sorted): every
  /// maintenance round iterates them, and re-deriving the set would
  /// allocate per round.
  const std::vector<std::string>& tables() const { return tables_; }

  /// Predicate to push into the delta fetch for `table`, or an empty
  /// function when nothing can be pushed (Sec. 7.2 delta filtering).
  std::function<bool(const Tuple&)> DeltaPredicate(
      const std::string& table) const;
  /// The pushed-down expression itself (for tests / inspection).
  ExprPtr DeltaPredicateExpr(const std::string& table) const;

  /// Total bytes of incremental operator state (Figs. 13e/f, 15, 17).
  size_t StateBytes() const;

  /// Persist the complete maintenance state — sketch, merge counters and
  /// every stateful operator — into a blob (Sec. 2: persist operator state
  /// in the database to survive restarts / memory-pressure eviction).
  std::string SerializeState() const;
  /// Restore state persisted by SerializeState. The maintainer must have
  /// been constructed for the same plan, catalog and options.
  Status RestoreState(const std::string& blob);

  const MaintainStats& stats() const { return stats_; }
  MaintainStats* mutable_stats() { return &stats_; }

 private:
  std::unique_ptr<IncOperator> BuildOperator(const PlanPtr& plan);
  void ComputePushdowns();

  const Database* db_;
  const PartitionCatalog* catalog_;
  PlanPtr plan_;
  std::vector<std::string> tables_;  ///< cached plan_->ReferencedTables()
  MaintainerOptions options_;
  MaintainStats stats_;
  std::unique_ptr<IncOperator> root_;
  IncMerge merge_;
  ProvenanceSketch sketch_;
  std::map<std::string, ExprPtr> pushdown_preds_;
  std::map<std::string, size_t> scan_counts_;
  FetchStats last_fetch_stats_;
  double last_build_seconds_ = 0;
};

}  // namespace imp

#endif  // IMP_IMP_MAINTAINER_H_
