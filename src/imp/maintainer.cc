#include "imp/maintainer.h"

#include <chrono>
#include <optional>

#include "common/failpoint.h"

#include "algebra/chain.h"
#include "imp/inc_aggregate.h"
#include "imp/inc_join.h"
#include "imp/inc_topk.h"

namespace imp {

namespace {

/// Split an AND tree into conjuncts.
void FlattenConjuncts(const ExprPtr& expr, std::vector<ExprPtr>* out) {
  if (expr->kind() == ExprKind::kBinary) {
    const auto& bin = static_cast<const BinaryExpr&>(*expr);
    if (bin.op() == BinaryOp::kAnd) {
      FlattenConjuncts(bin.left(), out);
      FlattenConjuncts(bin.right(), out);
      return;
    }
  }
  out->push_back(expr);
}

}  // namespace

Maintainer::Maintainer(const Database* db, const PartitionCatalog* catalog,
                       PlanPtr plan, MaintainerOptions options)
    : db_(db),
      catalog_(catalog),
      plan_(std::move(plan)),
      options_(options),
      merge_(catalog->total_fragments()) {
  VisitPlan(plan_, [this](const PlanPtr& node) {
    if (node->kind() == PlanKind::kScan) {
      ++scan_counts_[static_cast<const ScanNode&>(*node).table()];
    }
  });
  std::set<std::string> referenced = plan_->ReferencedTables();
  tables_.assign(referenced.begin(), referenced.end());
  if (options_.selection_pushdown) ComputePushdowns();
  root_ = BuildOperator(plan_);
}

std::unique_ptr<IncOperator> Maintainer::BuildOperator(const PlanPtr& plan) {
  switch (plan->kind()) {
    case PlanKind::kScan: {
      const auto& scan = static_cast<const ScanNode&>(*plan);
      return std::make_unique<IncScan>(scan.table(), scan.filter(), db_,
                                       catalog_, scan.output_schema(), &stats_,
                                       options_.vectorized_kernels);
    }
    case PlanKind::kSelect: {
      const auto& node = static_cast<const SelectNode&>(*plan);
      return std::make_unique<IncSelect>(BuildOperator(node.child()),
                                         node.predicate(), &stats_,
                                         options_.vectorized_kernels);
    }
    case PlanKind::kProject: {
      const auto& node = static_cast<const ProjectNode&>(*plan);
      return std::make_unique<IncProject>(BuildOperator(node.child()),
                                          node.exprs(), node.output_schema(),
                                          options_.typed_columns);
    }
    case PlanKind::kJoin: {
      const auto& node = static_cast<const JoinNode&>(*plan);
      IncJoin::Options jopts;
      jopts.use_bloom = options_.bloom_filters;
      jopts.vectorized = options_.vectorized_kernels;
      jopts.use_index = options_.indexed_joins;
      return std::make_unique<IncJoin>(
          BuildOperator(node.left()), BuildOperator(node.right()),
          node.left(), node.right(), node.keys(), node.residual(), db_,
          catalog_, jopts, &stats_);
    }
    case PlanKind::kAggregate: {
      const auto& node = static_cast<const AggregateNode&>(*plan);
      IncAggregate::Options aopts;
      aopts.minmax_buffer = options_.minmax_buffer;
      aopts.kernelized = options_.typed_columns;
      return std::make_unique<IncAggregate>(
          BuildOperator(node.child()), node.group_exprs(), node.aggs(),
          node.output_schema(), aopts, &stats_);
    }
    case PlanKind::kTopK: {
      const auto& node = static_cast<const TopKNode&>(*plan);
      IncTopK::Options topts;
      topts.buffer = options_.topk_buffer;
      return std::make_unique<IncTopK>(BuildOperator(node.child()),
                                       node.sorts(), node.k(), topts, &stats_);
    }
    case PlanKind::kDistinct: {
      // δ is aggregation with all columns as group-by and no functions.
      const auto& node = static_cast<const DistinctNode&>(*plan);
      const Schema& schema = node.output_schema();
      std::vector<ExprPtr> group_exprs;
      std::vector<std::string> names;
      for (size_t i = 0; i < schema.size(); ++i) {
        group_exprs.push_back(
            MakeColumnRef(i, schema.column(i).name, schema.column(i).type));
        names.push_back(schema.column(i).name);
      }
      IncAggregate::Options dopts;
      dopts.kernelized = options_.typed_columns;
      return std::make_unique<IncAggregate>(
          BuildOperator(node.child()), std::move(group_exprs),
          std::vector<AggSpec>{}, schema, dopts, &stats_);
    }
  }
  IMP_CHECK_MSG(false, "unknown plan kind");
  return nullptr;
}

void Maintainer::ComputePushdowns() {
  // Find selections whose subtree is a stateless chain to a single scan and
  // remap their (pushable) conjuncts to the scan's schema.
  VisitPlan(plan_, [this](const PlanPtr& node) {
    if (node->kind() != PlanKind::kSelect) return;
    const auto& select = static_cast<const SelectNode&>(*node);
    auto chain = ExtractStatelessChain(select.child());
    if (!chain) return;
    // Push-down is unsafe when the table is scanned more than once: the
    // fetched delta is shared across all occurrences.
    if (scan_counts_[chain->table] != 1) return;
    std::vector<ExprPtr> conjuncts;
    FlattenConjuncts(select.predicate(), &conjuncts);
    for (const ExprPtr& conjunct : conjuncts) {
      std::vector<size_t> cols;
      conjunct->CollectColumns(&cols);
      bool mappable = true;
      for (size_t c : cols) {
        if (c >= chain->to_scan.size() || chain->to_scan[c] < 0) {
          mappable = false;
          break;
        }
      }
      if (!mappable) continue;
      ExprPtr remapped = conjunct->RemapColumns(chain->to_scan);
      auto it = pushdown_preds_.find(chain->table);
      if (it == pushdown_preds_.end()) {
        pushdown_preds_[chain->table] = remapped;
      } else {
        it->second = MakeBinary(BinaryOp::kAnd, it->second, remapped);
      }
    }
  });
}

Result<ProvenanceSketch> Maintainer::Initialize(const ReadView* view) {
  // A (re)build of incremental state from base tables is a capture: it
  // shares the capture failpoint. Fires before any state is touched.
  IMP_FAILPOINT(kFpCapture);
  const auto build_start = std::chrono::steady_clock::now();
  DeltaContext empty;
  empty.view = view;
  IMP_ASSIGN_OR_RETURN(AnnotatedRelation result, root_->Build(empty));
  merge_ = IncMerge(catalog_->total_fragments());
  merge_.Build(result);
  last_build_seconds_ = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - build_start)
                            .count();
  sketch_.fragments = merge_.CurrentSketch();
  sketch_.fragments.Resize(catalog_->total_fragments());
  // Anchor at the view's watermark (the state was built from exactly that
  // pinned set of snapshots) — or, without a view, at the stable
  // watermark: the state was built from published data only, so claiming
  // validity for in-flight allocated versions would silently skip their
  // deltas.
  sketch_.valid_version = view ? view->watermark() : db_->StableVersion();
  return sketch_;
}

Result<SketchDelta> Maintainer::Maintain(const std::vector<TableDelta>& deltas,
                                         uint64_t new_version) {
  DeltaContext ctx = MakeDeltaContext(deltas, *catalog_);
  return MaintainAnnotated(ctx, new_version);
}

Result<SketchDelta> Maintainer::MaintainAnnotated(const DeltaContext& ctx,
                                                  uint64_t new_version) {
  // Every maintenance round (backend-driven, annotated, fast-forward)
  // funnels through here, so one failpoint covers them all. It fires
  // before Process() touches any operator state: the sketch still claims
  // its old valid_version and a later round re-scans the same window —
  // a failed round is always cleanly retryable.
  IMP_FAILPOINT(kFpMaintainRound);
  // The result batch may borrow rows from `ctx` (zero-copy pipeline):
  // `ctx` and the shared deltas behind it stay alive until the merge
  // operator below has consumed the batch.
  Result<DeltaBatch> result = root_->Process(ctx);
  if (!result.ok()) {
    if (result.status().code() != StatusCode::kNeedsRecapture) {
      return result.status();
    }
    // Truncated state ran dry: rebuild everything from the round's pinned
    // view (falling back to the current published snapshots when the
    // caller pinned none), then report the old-vs-new sketch difference as
    // the delta.
    ++stats_.recaptures;
    BitVector before = sketch_.fragments;
    IMP_RETURN_NOT_OK(Initialize(ctx.view).status());
    sketch_.valid_version = new_version;
    SketchDelta diff;
    BitVector after = sketch_.fragments;
    BitVector added = after;
    added.SubtractWith(before);
    BitVector removed = before;
    removed.SubtractWith(after);
    diff.added = added.SetBits();
    diff.removed = removed.SetBits();
    return diff;
  }
  SketchDelta delta = merge_.Process(result.value());
  sketch_ = ApplySketchDelta(sketch_, delta, new_version);
  return delta;
}

Result<SketchDelta> Maintainer::MaintainFromBackend(uint64_t cut_version,
                                                    const ReadView* view) {
  std::vector<TableDelta> deltas;
  for (const std::string& table : tables_) {
    TableDelta d = db_->ScanDelta(table, sketch_.valid_version, cut_version,
                                  DeltaPredicate(table));
    if (!d.empty()) deltas.push_back(std::move(d));
  }
  last_fetch_stats_.delta_scans = tables_.size();
  last_fetch_stats_.annotation_passes = deltas.size();
  DeltaContext ctx = MakeDeltaContext(std::move(deltas), *catalog_);
  ctx.view = view;
  return MaintainAnnotated(ctx, cut_version);
}

Result<SketchDelta> Maintainer::MaintainFromBackend() {
  return MaintainFromBackend(db_->StableVersion());
}

std::function<bool(const Tuple&)> Maintainer::DeltaPredicate(
    const std::string& table) const {
  auto it = pushdown_preds_.find(table);
  if (it == pushdown_preds_.end()) return {};
  return ExprPredicate(it->second);
}

ExprPtr Maintainer::DeltaPredicateExpr(const std::string& table) const {
  auto it = pushdown_preds_.find(table);
  return it == pushdown_preds_.end() ? nullptr : it->second;
}

size_t Maintainer::StateBytes() const {
  return root_->TotalStateBytes() + merge_.StateBytes() +
         sketch_.MemoryBytes();
}

namespace {
// Blob layout marker: bump when the state format changes.
constexpr uint64_t kStateMagic = 0x494d505354415431ULL;  // "IMPSTAT1"
}  // namespace

std::string Maintainer::SerializeState() const {
  SerdeWriter writer;
  writer.WriteU64(kStateMagic);
  writer.WriteBitVector(sketch_.fragments);
  writer.WriteU64(sketch_.valid_version);
  merge_.SaveState(&writer);
  root_->SaveTree(&writer);
  return writer.TakeBuffer();
}

Status Maintainer::RestoreState(const std::string& blob) {
  SerdeReader reader(blob);
  IMP_ASSIGN_OR_RETURN(uint64_t magic, reader.ReadU64());
  if (magic != kStateMagic) {
    return Status::Internal("maintainer state blob has wrong format");
  }
  IMP_ASSIGN_OR_RETURN(sketch_.fragments, reader.ReadBitVector());
  IMP_ASSIGN_OR_RETURN(sketch_.valid_version, reader.ReadU64());
  IMP_RETURN_NOT_OK(merge_.LoadState(&reader));
  IMP_RETURN_NOT_OK(root_->LoadTree(&reader));
  if (!reader.AtEnd()) {
    return Status::Internal("maintainer state blob has trailing bytes");
  }
  return Status::OK();
}

}  // namespace imp
