// Incremental join / cross product (Sec. 5.2.4) with backend delegation and
// bloom-filter pruning (Sec. 7.2).
//
// Under the signed-multiplicity encoding the paper's four-case rule is the
// post-state identity
//     Δ(R ⋈ S) = ΔR ⋈ S_new  +  R_new ⋈ ΔS  −  ΔR ⋈ ΔS,
// where the ΔR ⋈ S_new / R_new ⋈ ΔS terms are delegated to the backend
// ("executed by sending Δℛ to the database and evaluating the join in the
// database"). Both sides keep bloom filters over their join keys; delta
// rows whose keys cannot have partners are pruned before the round trip,
// and an empty pruned delta skips the round trip entirely.

#ifndef IMP_IMP_INC_JOIN_H_
#define IMP_IMP_INC_JOIN_H_

#include <memory>
#include <optional>
#include <vector>

#include "algebra/chain.h"
#include "algebra/plan.h"
#include "common/bloom_filter.h"
#include "imp/inc_operators.h"

namespace imp {

class IncJoin final : public IncOperator {
 public:
  struct Options {
    bool use_bloom = true;  ///< enable the Sec. 7.2 bloom-filter pruning
    /// Batched bloom probing: hash the delta's key columns column-at-a-time
    /// (HashColumnBatch) and probe the filter with one MayContainHashes
    /// call instead of a per-row MayContainHash. Bit-identical pruning.
    bool vectorized = true;
    /// Answer delegated ΔR ⋈ S round trips through the snapshot's point
    /// index when the side plan allows it (stateless chain with the key
    /// column passed through). Off = always evaluate the side — the
    /// bit-identical reference the index equivalence gates compare against.
    bool use_index = true;
  };

  IncJoin(std::unique_ptr<IncOperator> left, std::unique_ptr<IncOperator> right,
          PlanPtr left_plan, PlanPtr right_plan,
          std::vector<JoinNode::KeyPair> keys, ExprPtr residual,
          const Database* db, const PartitionCatalog* catalog, Options options,
          MaintainStats* stats);

  Result<AnnotatedRelation> Build(const DeltaContext& ctx) override;
  Result<DeltaBatch> Process(const DeltaContext& ctx) override;
  size_t StateBytes() const override;
  void SaveState(SerdeWriter* writer) const override;
  Status LoadState(SerdeReader* reader) override;

 private:
  /// Evaluate one side's subplan on the backend under annotated semantics
  /// (this is the delegated-round-trip path). Reads the round's pinned
  /// view when present, so the side is evaluated at the round's cut.
  Result<AnnotatedRelation> EvalSide(const PlanPtr& side_plan,
                                     const ReadView* view);

  /// Index fast path for the delegated join: when the probed side is a
  /// stateless chain over one scan and the (single) join key maps to a
  /// scan column, the backend answers Δ ⋈ side via a hash-index probe per
  /// delta row instead of scanning the side (the index lives on the pinned
  /// snapshot, so probes are consistent at the round's cut). Returns true
  /// when handled.
  bool TryIndexedJoin(const DeltaBatch& delta, bool delta_is_left,
                      int sign, const ReadView* view, AnnotatedDelta* out);

  /// Hash of a delta/annotated row's join key on the given side.
  uint64_t KeyHash(const Tuple& row, bool left_side) const;

  /// Drop delta rows whose key misses `filter`; counts pruned rows.
  /// Borrowed batches stay borrowed (bitmap refinement, no copies).
  DeltaBatch PruneByBloom(DeltaBatch delta, const BloomFilter& filter,
                          bool left_side);

  /// delta ⋈ side with sign from delta, annotations unioned.
  void JoinDeltaWithSide(const DeltaBatch& delta,
                         const AnnotatedRelation& side, bool delta_is_left,
                         int sign, AnnotatedDelta* out) const;

  /// dl ⋈ dr with sign = -(ml * mr).
  void JoinDeltaWithDelta(const DeltaBatch& dl, const DeltaBatch& dr,
                          AnnotatedDelta* out) const;

  void EmitJoined(const Tuple& l, const BitVector& lsk, const Tuple& r,
                  const BitVector& rsk, int64_t mult, AnnotatedDelta* out) const;

  PlanPtr left_plan_;
  PlanPtr right_plan_;
  std::vector<JoinNode::KeyPair> keys_;
  ExprPtr residual_;
  const Database* db_;
  const PartitionCatalog* catalog_;
  Options options_;
  MaintainStats* stats_;
  std::unique_ptr<BloomFilter> left_bloom_;   // keys present on the left
  std::unique_ptr<BloomFilter> right_bloom_;  // keys present on the right
  // Index fast-path metadata per side (see TryIndexedJoin).
  std::optional<StatelessChain> left_chain_;
  std::optional<StatelessChain> right_chain_;
  int left_index_col_ = -1;   // scan column backing the left join key
  int right_index_col_ = -1;  // scan column backing the right join key
};

}  // namespace imp

#endif  // IMP_IMP_INC_JOIN_H_
