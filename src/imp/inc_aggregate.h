// Incremental group-by aggregation (Sec. 5.2.5 / 5.2.6).
//
// Per group g the state is S[g] = (per-function accumulators, CNT, P, F_g)
// where F_g maps each fragment to the number of the group's input tuples
// whose sketch contains it; the group's sketch is {ρ | F_g[ρ] > 0}.
// sum/count/avg share numeric accumulators; min/max keep an ordered
// value -> multiplicity tree (the red-black tree of Sec. 7.1, std::map),
// optionally truncated to the best `minmax_buffer` values (Sec. 7.2
// "Optimizing Minimum, Maximum and Top-k") — when a truncated buffer runs
// dry the operator reports NeedsRecapture and the maintainer rebuilds.
//
// Per batch the operator snapshots each touched group's previous output
// lazily and emits exactly one Δ-(old) / Δ+(new) pair per changed group
// (Sec. 7.1 "To avoid producing multiple delta tuples per group ...").

#ifndef IMP_IMP_INC_AGGREGATE_H_
#define IMP_IMP_INC_AGGREGATE_H_

#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "algebra/plan.h"
#include "imp/inc_operators.h"

namespace imp {

class IncAggregate final : public IncOperator {
 public:
  struct Options {
    /// Keep only the best `minmax_buffer` distinct values per min/max
    /// state; 0 keeps everything (always exact).
    size_t minmax_buffer = 0;
    /// Pre-resolve ColumnRef group keys and aggregate arguments to column
    /// indices so the per-row inner loop copies cells directly instead of
    /// recursing through virtual Expr::Eval. Bit-identical either way
    /// (ColumnRefExpr::Eval is exactly row[index]).
    bool kernelized = false;
  };

  IncAggregate(std::unique_ptr<IncOperator> child,
               std::vector<ExprPtr> group_exprs, std::vector<AggSpec> aggs,
               Schema output_schema, Options options, MaintainStats* stats);

  Result<AnnotatedRelation> Build(const DeltaContext& ctx) override;
  Result<DeltaBatch> Process(const DeltaContext& ctx) override;
  size_t StateBytes() const override;
  void SaveState(SerdeWriter* writer) const override;
  Status LoadState(SerdeReader* reader) override;

  size_t NumGroups() const { return groups_.size(); }

 private:
  /// Accumulator for one aggregation function within one group.
  struct AggState {
    // sum / count / avg
    int64_t nonnull_count = 0;
    int64_t int_sum = 0;
    double dbl_sum = 0.0;
    bool saw_double = false;
    // min / max: ordered multiset of values; `overflow` counts values
    // dropped by buffer truncation (they are all worse than the buffer's
    // worst retained value).
    std::map<Value, int64_t> values;
    int64_t overflow = 0;

    size_t MemoryBytes() const;
  };

  struct GroupState {
    int64_t count = 0;  // CNT: total multiplicity of the group's input rows
    std::vector<AggState> aggs;
    std::map<size_t, int64_t> frag_counts;  // F_g: fragment -> count

    BitVector SketchOf() const;
    size_t MemoryBytes() const;
  };

  using GroupMap =
      std::unordered_map<Tuple, GroupState, TupleHash, TupleEq>;

  Tuple GroupKeyOf(const Tuple& row) const;
  /// Fold one input row (signed mult) into `state`.
  Status ApplyRow(GroupState* state, const Tuple& row,
                  const BitVector& sketch, int64_t mult);
  /// The per-value half of ApplyRow: fold one non-NULL aggregate argument
  /// (shared by the row loop and the columnar Build's reboxed escape hatch).
  Status ApplyAggValue(AggState* agg, const AggSpec& spec, const Value& v,
                       int64_t mult);
  /// Columnar Build fast path (options_.kernelized): when the child is a
  /// filterless vectorized scan and every group key / aggregate argument is
  /// a plain column, aggregate straight off the chunk columns — unboxed
  /// int64/double inner loops, raw-bounds fragment counting, no per-row
  /// Tuple or sketch materialization. Group state, insertion order and
  /// output are bit-identical to the row path by construction. Returns
  /// false (with `result` untouched) when the plan shape or the source does
  /// not qualify.
  Result<bool> TryBuildColumnar(const DeltaContext& ctx,
                                AnnotatedRelation* result);
  /// Shared Build tail: the no-GROUP-BY empty group plus output emission.
  AnnotatedRelation FinalizeBuildOutput();
  Status ApplyMinMax(AggState* agg, const AggSpec& spec, const Value& v,
                     int64_t mult);
  /// Current output tuple of a group (key columns then aggregate values).
  Tuple OutputRow(const Tuple& key, const GroupState& state) const;
  bool GroupExists(const GroupState& state) const { return state.count > 0; }

  std::vector<ExprPtr> group_exprs_;
  std::vector<AggSpec> aggs_;
  Schema output_schema_;
  Options options_;
  MaintainStats* stats_;
  GroupMap groups_;
  /// Kernelized access plan (empty unless options_.kernelized resolved it):
  /// group-key column indices when every group expr is a plain ColumnRef,
  /// and per-aggregate argument columns (-1 = general expr / no arg,
  /// falls back to Expr::Eval).
  bool key_cols_valid_ = false;
  std::vector<size_t> key_cols_;
  std::vector<int> agg_cols_;
};

}  // namespace imp

#endif  // IMP_IMP_INC_AGGREGATE_H_
