#include "imp/inc_topk.h"

namespace imp {

IncTopK::IncTopK(std::unique_ptr<IncOperator> child,
                 std::vector<SortSpec> sorts, size_t k, Options options,
                 MaintainStats* stats)
    : IncOperator([&] {
        std::vector<std::unique_ptr<IncOperator>> c;
        c.push_back(std::move(child));
        return c;
      }()),
      sorts_(std::move(sorts)),
      k_(k),
      options_(options),
      stats_(stats),
      tree_(SortKeyLess{&sorts_}) {}

Tuple IncTopK::SortKeyOf(const Tuple& row) const {
  Tuple key;
  key.reserve(sorts_.size());
  for (const SortSpec& s : sorts_) key.push_back(row[s.column]);
  return key;
}

Status IncTopK::ApplyRow(const Tuple& row, const BitVector& sketch,
                         int64_t mult) {
  Tuple key = SortKeyOf(row);
  if (mult > 0) {
    size_t limit = options_.buffer;
    if (limit != 0 && !tree_.empty() &&
        stored_count_ >= static_cast<int64_t>(limit)) {
      // Buffer full: rows sorting strictly after the last retained key can
      // never enter the retained prefix without deletions, so drop them.
      const Tuple& last = tree_.rbegin()->first;
      SortKeyLess less{&sorts_};
      if (less(last, key)) {
        dropped_count_ += mult;
        return Status::OK();
      }
    }
    tree_[key][InnerKey{row, sketch}] += mult;
    stored_count_ += mult;
    EnforceBuffer();
    return Status::OK();
  }

  // Deletion.
  int64_t remove = -mult;
  auto outer = tree_.find(key);
  if (outer != tree_.end()) {
    auto inner = outer->second.find(InnerKey{row, sketch});
    if (inner != outer->second.end()) {
      inner->second -= remove;
      stored_count_ -= remove;
      if (inner->second < 0 || stored_count_ < 0) {
        return Status::NeedsRecapture("top-k multiplicity underflow");
      }
      if (inner->second == 0) outer->second.erase(inner);
      if (outer->second.empty()) tree_.erase(outer);
      if (options_.buffer != 0 && dropped_count_ > 0 &&
          stored_count_ < static_cast<int64_t>(k_)) {
        return Status::NeedsRecapture("top-k buffer exhausted");
      }
      return Status::OK();
    }
  }
  // Not retained: must be a row dropped by truncation (sorting after the
  // retained suffix); anything else means inconsistent input.
  if (options_.buffer != 0 && dropped_count_ >= remove) {
    bool after_tail = tree_.empty();
    if (!after_tail) {
      SortKeyLess less{&sorts_};
      after_tail = !less(key, tree_.rbegin()->first);
    }
    if (after_tail) {
      dropped_count_ -= remove;
      return Status::OK();
    }
  }
  return Status::NeedsRecapture("deletion of untracked top-k row");
}

void IncTopK::EnforceBuffer() {
  size_t limit = options_.buffer;
  if (limit == 0) return;
  if (limit < k_) limit = k_;
  // Evict whole tail entries while doing so keeps at least `limit` rows.
  while (!tree_.empty()) {
    auto outer = std::prev(tree_.end());
    auto inner = std::prev(outer->second.end());
    int64_t m = inner->second;
    if (stored_count_ - m < static_cast<int64_t>(limit)) break;
    dropped_count_ += m;
    stored_count_ -= m;
    outer->second.erase(inner);
    if (outer->second.empty()) tree_.erase(outer);
  }
}

std::vector<AnnotatedDeltaRow> IncTopK::ComputeTopK() const {
  std::vector<AnnotatedDeltaRow> out;
  int64_t remaining = static_cast<int64_t>(k_);
  for (const auto& [key, inner] : tree_) {
    (void)key;
    for (const auto& [ik, mult] : inner) {
      if (remaining <= 0) return out;
      int64_t take = mult < remaining ? mult : remaining;
      out.push_back(AnnotatedDeltaRow{ik.row, ik.sketch, take});
      remaining -= take;
    }
    if (remaining <= 0) break;
  }
  return out;
}

Result<AnnotatedRelation> IncTopK::Build(const DeltaContext& ctx) {
  IMP_ASSIGN_OR_RETURN(AnnotatedRelation in, children_[0]->Build(ctx));
  tree_.clear();
  stored_count_ = 0;
  dropped_count_ = 0;
  for (const AnnotatedRow& r : in.rows) {
    Status st = ApplyRow(r.row, r.sketch, 1);
    IMP_RETURN_NOT_OK(st);
  }
  last_output_ = ComputeTopK();
  AnnotatedRelation out;
  out.schema = in.schema;
  for (const AnnotatedDeltaRow& r : last_output_) {
    for (int64_t i = 0; i < r.mult; ++i) {
      out.rows.push_back(AnnotatedRow{r.row, r.sketch});
    }
  }
  return out;
}

Result<DeltaBatch> IncTopK::Process(const DeltaContext& ctx) {
  IMP_ASSIGN_OR_RETURN(DeltaBatch in, children_[0]->Process(ctx));
  AnnotatedDelta out;
  if (in.empty()) return DeltaBatch();
  // Fold the input through the cursor (borrowed batches are read in
  // place); the re-emitted output rows come from the operator's own state.
  DeltaBatch::Cursor cursor(in);
  while (const AnnotatedDeltaRow* r = cursor.Next()) {
    Status st = ApplyRow(r->row, r->sketch, r->mult);
    IMP_RETURN_NOT_OK(st);
  }
  std::vector<AnnotatedDeltaRow> now = ComputeTopK();
  // Δ- τ_{k,O}(S), Δ+ τ_{k,O}(S') — skip when the output is unchanged.
  bool same = now.size() == last_output_.size();
  for (size_t i = 0; same && i < now.size(); ++i) {
    same = now[i].mult == last_output_[i].mult &&
           TupleEq{}(now[i].row, last_output_[i].row) &&
           now[i].sketch == last_output_[i].sketch;
  }
  if (same) return DeltaBatch::OwnedOf(std::move(out));
  for (const AnnotatedDeltaRow& r : last_output_) {
    out.Append(r.row, r.sketch, -r.mult);
  }
  for (const AnnotatedDeltaRow& r : now) {
    out.Append(r.row, r.sketch, r.mult);
  }
  last_output_ = std::move(now);
  out.Consolidate();
  return DeltaBatch::OwnedOf(std::move(out));
}

void IncTopK::SaveState(SerdeWriter* writer) const {
  writer->WriteI64(stored_count_);
  writer->WriteI64(dropped_count_);
  writer->WriteU64(tree_.size());
  for (const auto& [key, inner] : tree_) {
    writer->WriteTuple(key);
    writer->WriteU64(inner.size());
    for (const auto& [ik, mult] : inner) {
      writer->WriteTuple(ik.row);
      writer->WriteBitVector(ik.sketch);
      writer->WriteI64(mult);
    }
  }
  writer->WriteU64(last_output_.size());
  for (const AnnotatedDeltaRow& r : last_output_) {
    writer->WriteTuple(r.row);
    writer->WriteBitVector(r.sketch);
    writer->WriteI64(r.mult);
  }
}

Status IncTopK::LoadState(SerdeReader* reader) {
  tree_.clear();
  last_output_.clear();
  IMP_ASSIGN_OR_RETURN(stored_count_, reader->ReadI64());
  IMP_ASSIGN_OR_RETURN(dropped_count_, reader->ReadI64());
  IMP_ASSIGN_OR_RETURN(uint64_t num_keys, reader->ReadU64());
  for (uint64_t k = 0; k < num_keys; ++k) {
    IMP_ASSIGN_OR_RETURN(Tuple key, reader->ReadTuple());
    InnerMap& inner = tree_[key];
    IMP_ASSIGN_OR_RETURN(uint64_t num_inner, reader->ReadU64());
    for (uint64_t i = 0; i < num_inner; ++i) {
      IMP_ASSIGN_OR_RETURN(Tuple row, reader->ReadTuple());
      IMP_ASSIGN_OR_RETURN(BitVector sketch, reader->ReadBitVector());
      IMP_ASSIGN_OR_RETURN(int64_t mult, reader->ReadI64());
      inner[InnerKey{std::move(row), std::move(sketch)}] = mult;
    }
  }
  IMP_ASSIGN_OR_RETURN(uint64_t num_out, reader->ReadU64());
  for (uint64_t i = 0; i < num_out; ++i) {
    AnnotatedDeltaRow r;
    IMP_ASSIGN_OR_RETURN(r.row, reader->ReadTuple());
    IMP_ASSIGN_OR_RETURN(r.sketch, reader->ReadBitVector());
    IMP_ASSIGN_OR_RETURN(r.mult, reader->ReadI64());
    last_output_.push_back(std::move(r));
  }
  return Status::OK();
}

size_t IncTopK::StateBytes() const {
  size_t bytes = sizeof(*this);
  for (const auto& [key, inner] : tree_) {
    bytes += TupleMemoryBytes(key) + 3 * sizeof(void*);
    for (const auto& [ik, _] : inner) {
      bytes += TupleMemoryBytes(ik.row) + ik.sketch.MemoryBytes() +
               sizeof(int64_t) + 3 * sizeof(void*);
    }
  }
  for (const AnnotatedDeltaRow& r : last_output_) {
    bytes += TupleMemoryBytes(r.row) + r.sketch.MemoryBytes();
  }
  return bytes;
}

}  // namespace imp
