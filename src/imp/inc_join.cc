#include "imp/inc_join.h"

#include <unordered_map>

#include "common/hash.h"

namespace imp {

namespace {
/// Seed of IncJoin::KeyHash; keep the two in sync so the batched and the
/// row-at-a-time hash are bit-identical.
constexpr uint64_t kJoinKeySeed = 0x2545f4914f6cdd1dULL;
}  // namespace

IncJoin::IncJoin(std::unique_ptr<IncOperator> left,
                 std::unique_ptr<IncOperator> right, PlanPtr left_plan,
                 PlanPtr right_plan, std::vector<JoinNode::KeyPair> keys,
                 ExprPtr residual, const Database* db,
                 const PartitionCatalog* catalog, Options options,
                 MaintainStats* stats)
    : IncOperator([&] {
        std::vector<std::unique_ptr<IncOperator>> c;
        c.push_back(std::move(left));
        c.push_back(std::move(right));
        return c;
      }()),
      left_plan_(std::move(left_plan)),
      right_plan_(std::move(right_plan)),
      keys_(std::move(keys)),
      residual_(std::move(residual)),
      db_(db),
      catalog_(catalog),
      options_(options),
      stats_(stats) {
  // Detect the index fast path: single-key equi-join whose probed side is
  // a stateless chain with the key column passed through from the scan.
  if (keys_.size() == 1) {
    left_chain_ = ExtractStatelessChain(left_plan_);
    right_chain_ = ExtractStatelessChain(right_plan_);
    if (left_chain_) {
      size_t lc = keys_[0].first;
      if (lc < left_chain_->to_scan.size()) {
        left_index_col_ = left_chain_->to_scan[lc];
      }
    }
    if (right_chain_) {
      size_t rc = keys_[0].second;
      if (rc < right_chain_->to_scan.size()) {
        right_index_col_ = right_chain_->to_scan[rc];
      }
    }
  }
}

uint64_t IncJoin::KeyHash(const Tuple& row, bool left_side) const {
  uint64_t h = kJoinKeySeed;
  for (const auto& [lc, rc] : keys_) {
    h = HashCombine(h, row[left_side ? lc : rc].Hash());
  }
  return h;
}

Result<AnnotatedRelation> IncJoin::EvalSide(const PlanPtr& side_plan,
                                            const ReadView* view) {
  AnnotatedExecutor exec(
      db_,
      [this](const std::string& table, const Tuple& row, BitVector* out) {
        catalog_->AnnotateRow(table, row, out);
      },
      view);
  exec.set_vectorized(options_.vectorized);
  // Side evaluations repeat every round over the same tables — let exact
  // range filters build the ordered index once and skip chunks thereafter.
  exec.set_range_index_mode(RangeIndexMode::kBuild);
  Result<AnnotatedRelation> result = exec.Execute(side_plan);
  // Fold the delegated capture's kernel counters into this maintainer.
  stats_->vectorized_batches += exec.scan_stats().vectorized_batches;
  stats_->scalar_fallback_rows += exec.scan_stats().scalar_fallback_rows;
  return result;
}

void IncJoin::EmitJoined(const Tuple& l, const BitVector& lsk, const Tuple& r,
                         const BitVector& rsk, int64_t mult,
                         AnnotatedDelta* out) const {
  Tuple joined;
  joined.reserve(l.size() + r.size());
  joined.insert(joined.end(), l.begin(), l.end());
  joined.insert(joined.end(), r.begin(), r.end());
  if (residual_ && !residual_->Eval(joined).IsTrue()) return;
  BitVector sketch = lsk;
  sketch.UnionWith(rsk);  // P1 ∪ P2
  out->Append(std::move(joined), std::move(sketch), mult);
}

Result<AnnotatedRelation> IncJoin::Build(const DeltaContext& ctx) {
  IMP_ASSIGN_OR_RETURN(AnnotatedRelation left, children_[0]->Build(ctx));
  IMP_ASSIGN_OR_RETURN(AnnotatedRelation right, children_[1]->Build(ctx));

  // Build both bloom filters from the current side contents: a one-time
  // O(m) scan cost (Sec. 5.3).
  if (options_.use_bloom && !keys_.empty()) {
    left_bloom_ = std::make_unique<BloomFilter>(left.rows.size() + 1);
    for (const AnnotatedRow& r : left.rows) {
      left_bloom_->AddHash(KeyHash(r.row, /*left_side=*/true));
    }
    right_bloom_ = std::make_unique<BloomFilter>(right.rows.size() + 1);
    for (const AnnotatedRow& r : right.rows) {
      right_bloom_->AddHash(KeyHash(r.row, /*left_side=*/false));
    }
  }

  // Compute the join output for downstream state building.
  AnnotatedRelation out;
  out.schema = Schema::Concat(left.schema, right.schema);
  AnnotatedDelta tmp;
  if (keys_.empty()) {
    for (const AnnotatedRow& l : left.rows) {
      for (const AnnotatedRow& r : right.rows) {
        EmitJoined(l.row, l.sketch, r.row, r.sketch, 1, &tmp);
      }
    }
  } else {
    std::unordered_map<Tuple, std::vector<size_t>, TupleHash, TupleEq> ht;
    ht.reserve(right.rows.size());
    for (size_t i = 0; i < right.rows.size(); ++i) {
      Tuple key;
      for (const auto& [lc, rc] : keys_) {
        (void)lc;
        key.push_back(right.rows[i].row[rc]);
      }
      ht[std::move(key)].push_back(i);
    }
    for (const AnnotatedRow& l : left.rows) {
      Tuple key;
      for (const auto& [lc, rc] : keys_) {
        (void)rc;
        key.push_back(l.row[lc]);
      }
      auto it = ht.find(key);
      if (it == ht.end()) continue;
      for (size_t ri : it->second) {
        EmitJoined(l.row, l.sketch, right.rows[ri].row, right.rows[ri].sketch,
                   1, &tmp);
      }
    }
  }
  out.rows.reserve(tmp.rows.size());
  for (AnnotatedDeltaRow& r : tmp.rows) {
    out.rows.push_back(AnnotatedRow{std::move(r.row), std::move(r.sketch)});
  }
  return out;
}

DeltaBatch IncJoin::PruneByBloom(DeltaBatch delta, const BloomFilter& filter,
                                 bool left_side) {
  if (options_.vectorized && !delta.empty()) {
    // Batched probe: fold each key column into the hash lane column-at-a-
    // time (same seed/fold order as KeyHash, so bit-identical), then one
    // MayContainHashes call yields the keep bitmap over the base rows.
    const std::vector<AnnotatedDeltaRow>& rows =
        delta.borrowed() ? delta.base()->rows : delta.owned().rows;
    std::vector<uint64_t> hashes(rows.size(), kJoinKeySeed);
    for (const auto& kp : keys_) {
      const size_t col = left_side ? kp.first : kp.second;
      HashColumnBatch(
          rows.size(), [&](size_t i) { return rows[i].row[col].Hash(); },
          &hashes);
    }
    BitVector keep;
    filter.MayContainHashes(hashes.data(), hashes.size(), &keep);
    ++stats_->vectorized_batches;
    const size_t before = delta.size();
    DeltaBatch out = std::move(delta).FilterWithMask(keep);
    stats_->bloom_pruned_rows += before - out.size();
    return out;
  }
  size_t pruned = 0;
  DeltaBatch out =
      std::move(delta).Filter([&](const AnnotatedDeltaRow& r) {
        bool keep = filter.MayContainHash(KeyHash(r.row, left_side));
        if (!keep) ++pruned;
        return keep;
      });
  stats_->bloom_pruned_rows += pruned;
  return out;
}

void IncJoin::JoinDeltaWithSide(const DeltaBatch& delta,
                                const AnnotatedRelation& side,
                                bool delta_is_left, int sign,
                                AnnotatedDelta* out) const {
  if (delta.empty() || side.rows.empty()) return;
  if (keys_.empty()) {
    delta.ForEachRow([&](const AnnotatedDeltaRow& d) {
      for (const AnnotatedRow& s : side.rows) {
        if (delta_is_left) {
          EmitJoined(d.row, d.sketch, s.row, s.sketch, sign * d.mult, out);
        } else {
          EmitJoined(s.row, s.sketch, d.row, d.sketch, sign * d.mult, out);
        }
      }
    });
    return;
  }
  // Hash the (usually small) delta, probe with the side rows. Rows are
  // referenced in place — borrowed batches are hashed without copying.
  std::vector<const AnnotatedDeltaRow*> delta_rows;
  delta_rows.reserve(delta.size());
  delta.ForEachRow(
      [&](const AnnotatedDeltaRow& d) { delta_rows.push_back(&d); });
  std::unordered_map<Tuple, std::vector<size_t>, TupleHash, TupleEq> ht;
  ht.reserve(delta_rows.size());
  for (size_t i = 0; i < delta_rows.size(); ++i) {
    Tuple key;
    for (const auto& [lc, rc] : keys_) {
      key.push_back(delta_rows[i]->row[delta_is_left ? lc : rc]);
    }
    ht[std::move(key)].push_back(i);
  }
  for (const AnnotatedRow& s : side.rows) {
    Tuple key;
    for (const auto& [lc, rc] : keys_) {
      key.push_back(s.row[delta_is_left ? rc : lc]);
    }
    auto it = ht.find(key);
    if (it == ht.end()) continue;
    for (size_t di : it->second) {
      const AnnotatedDeltaRow& d = *delta_rows[di];
      if (delta_is_left) {
        EmitJoined(d.row, d.sketch, s.row, s.sketch, sign * d.mult, out);
      } else {
        EmitJoined(s.row, s.sketch, d.row, d.sketch, sign * d.mult, out);
      }
    }
  }
}

void IncJoin::JoinDeltaWithDelta(const DeltaBatch& dl, const DeltaBatch& dr,
                                 AnnotatedDelta* out) const {
  if (dl.empty() || dr.empty()) return;
  dl.ForEachRow([&](const AnnotatedDeltaRow& l) {
    dr.ForEachRow([&](const AnnotatedDeltaRow& r) {
      if (!keys_.empty()) {
        for (const auto& [lc, rc] : keys_) {
          if (l.row[lc].Compare(r.row[rc]) != 0) return;
        }
      }
      // −ΔR ⋈ ΔS: the subtraction term of the post-state identity (it
      // collapses the paper's mixed insert/delete cases).
      EmitJoined(l.row, l.sketch, r.row, r.sketch, -(l.mult * r.mult), out);
    });
  });
}

bool IncJoin::TryIndexedJoin(const DeltaBatch& delta, bool delta_is_left,
                             int sign, const ReadView* view,
                             AnnotatedDelta* out) {
  if (!options_.use_index) return false;
  const std::optional<StatelessChain>& chain =
      delta_is_left ? right_chain_ : left_chain_;
  int index_col = delta_is_left ? right_index_col_ : left_index_col_;
  if (!chain || index_col < 0) return false;
  // Probe the pinned snapshot's point index: rows and index shards are
  // immutable and consistent at the round's cut, and shards carried
  // forward from earlier publications make the probe O(delta)-maintained.
  std::shared_ptr<const TableSnapshot> pinned;
  const TableSnapshot* snap = view ? view->Find(chain->table) : nullptr;
  if (snap == nullptr) {
    const Table* table = db_->GetTable(chain->table);
    if (table == nullptr) return false;
    pinned = table->Snapshot();
    snap = pinned.get();
  }

  size_t delta_key_col = delta_is_left ? keys_[0].first : keys_[0].second;
  delta.ForEachRow([&](const AnnotatedDeltaRow& d) {
    snap->ForEachIndexMatch(
        static_cast<size_t>(index_col), d.row[delta_key_col],
        [&](const TableSnapshot::RowLoc& loc) {
          Tuple base = snap->chunks()[loc.chunk]->GetRow(loc.row);
          BitVector side_sketch;
          catalog_->AnnotateRow(chain->table, base, &side_sketch);
          Tuple side_row;
          if (!chain->Replay(base, &side_row)) return;
          if (delta_is_left) {
            EmitJoined(d.row, d.sketch, side_row, side_sketch, sign * d.mult,
                       out);
          } else {
            EmitJoined(side_row, side_sketch, d.row, d.sketch, sign * d.mult,
                       out);
          }
        });
  });
  return true;
}

Result<DeltaBatch> IncJoin::Process(const DeltaContext& ctx) {
  IMP_ASSIGN_OR_RETURN(DeltaBatch dl, children_[0]->Process(ctx));
  IMP_ASSIGN_OR_RETURN(DeltaBatch dr, children_[1]->Process(ctx));
  AnnotatedDelta out;
  if (dl.empty() && dr.empty()) return DeltaBatch();

  // Update bloom filters with inserted keys *before* pruning, so a delta
  // row that only joins another delta row in this batch is not dropped.
  // (Deletions are never removed from the filters — they stay conservative
  // supersets of the key sets, which preserves correctness.)
  if (options_.use_bloom && left_bloom_ != nullptr) {
    dl.ForEachRow([&](const AnnotatedDeltaRow& r) {
      if (r.mult > 0) left_bloom_->AddHash(KeyHash(r.row, true));
    });
    dr.ForEachRow([&](const AnnotatedDeltaRow& r) {
      if (r.mult > 0) right_bloom_->AddHash(KeyHash(r.row, false));
    });
    dl = PruneByBloom(std::move(dl), *right_bloom_, /*left_side=*/true);
    dr = PruneByBloom(std::move(dr), *left_bloom_, /*left_side=*/false);
  }

  // ΔR ⋈ S_new (delegated round trip, skipped when the pruned delta is
  // empty; answered via the backend's hash index when the side allows it).
  if (!dl.empty()) {
    stats_->join_rows_shipped += dl.size();
    ++stats_->join_round_trips;
    if (!TryIndexedJoin(dl, /*delta_is_left=*/true, +1, ctx.view, &out)) {
      ++stats_->index_fallback_scans;  // no point index: O(rows) side eval
      IMP_ASSIGN_OR_RETURN(AnnotatedRelation right_side,
                           EvalSide(right_plan_, ctx.view));
      JoinDeltaWithSide(dl, right_side, /*delta_is_left=*/true, +1, &out);
    }
  }
  // R_new ⋈ ΔS
  if (!dr.empty()) {
    stats_->join_rows_shipped += dr.size();
    ++stats_->join_round_trips;
    if (!TryIndexedJoin(dr, /*delta_is_left=*/false, +1, ctx.view, &out)) {
      ++stats_->index_fallback_scans;  // no point index: O(rows) side eval
      IMP_ASSIGN_OR_RETURN(AnnotatedRelation left_side,
                           EvalSide(left_plan_, ctx.view));
      JoinDeltaWithSide(dr, left_side, /*delta_is_left=*/false, +1, &out);
    }
  }
  // − ΔR ⋈ ΔS
  JoinDeltaWithDelta(dl, dr, &out);

  out.Consolidate();
  return DeltaBatch::OwnedOf(std::move(out));
}

size_t IncJoin::StateBytes() const {
  size_t bytes = 0;
  if (left_bloom_) bytes += left_bloom_->MemoryBytes();
  if (right_bloom_) bytes += right_bloom_->MemoryBytes();
  return bytes;
}

namespace {
void SaveBloom(SerdeWriter* writer, const BloomFilter* bloom) {
  writer->WriteBool(bloom != nullptr);
  if (bloom == nullptr) return;
  writer->WriteU64(bloom->num_bits());
  writer->WriteI64(bloom->num_hashes());
  writer->WriteU64(bloom->words().size());
  for (uint64_t w : bloom->words()) writer->WriteU64(w);
}

Result<std::unique_ptr<BloomFilter>> LoadBloom(SerdeReader* reader) {
  IMP_ASSIGN_OR_RETURN(bool present, reader->ReadBool());
  if (!present) return std::unique_ptr<BloomFilter>();
  IMP_ASSIGN_OR_RETURN(uint64_t bits, reader->ReadU64());
  IMP_ASSIGN_OR_RETURN(int64_t hashes, reader->ReadI64());
  IMP_ASSIGN_OR_RETURN(uint64_t num_words, reader->ReadU64());
  std::vector<uint64_t> words(num_words);
  for (uint64_t i = 0; i < num_words; ++i) {
    IMP_ASSIGN_OR_RETURN(words[i], reader->ReadU64());
  }
  auto bloom = std::make_unique<BloomFilter>(1);
  bloom->Restore(bits, static_cast<int>(hashes), std::move(words));
  return bloom;
}
}  // namespace

void IncJoin::SaveState(SerdeWriter* writer) const {
  SaveBloom(writer, left_bloom_.get());
  SaveBloom(writer, right_bloom_.get());
}

Status IncJoin::LoadState(SerdeReader* reader) {
  IMP_ASSIGN_OR_RETURN(left_bloom_, LoadBloom(reader));
  IMP_ASSIGN_OR_RETURN(right_bloom_, LoadBloom(reader));
  return Status::OK();
}

}  // namespace imp
