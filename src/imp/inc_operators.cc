#include "imp/inc_operators.h"

#include <algorithm>
#include <map>

#include "exec/zone_filter.h"
#include "sketch/partition.h"

namespace imp {

size_t IncOperator::TotalStateBytes() const {
  size_t bytes = StateBytes();
  for (const auto& child : children_) bytes += child->TotalStateBytes();
  return bytes;
}

void IncOperator::SaveTree(SerdeWriter* writer) const {
  SaveState(writer);
  for (const auto& child : children_) child->SaveTree(writer);
}

Status IncOperator::LoadTree(SerdeReader* reader) {
  IMP_RETURN_NOT_OK(LoadState(reader));
  for (const auto& child : children_) {
    IMP_RETURN_NOT_OK(child->LoadTree(reader));
  }
  return Status::OK();
}

// ---- IncScan ---------------------------------------------------------------

IncScan::IncScan(std::string table, ExprPtr filter, const Database* db,
                 const PartitionCatalog* catalog, Schema schema,
                 MaintainStats* stats, bool vectorized)
    : IncOperator({}),
      table_(std::move(table)),
      filter_(std::move(filter)),
      db_(db),
      catalog_(catalog),
      schema_(std::move(schema)),
      stats_(stats),
      vectorized_(vectorized) {
  if (vectorized_ && filter_) kernel_ = PredicateKernel::Compile(filter_);
}

bool IncScan::ColumnarSource(const DeltaContext& ctx,
                             std::shared_ptr<const TableSnapshot>* pinned,
                             const TableSnapshot** snap,
                             TableAnnotator* annot) const {
  if (filter_ != nullptr || !vectorized_) return false;
  const TableSnapshot* s = ctx.view ? ctx.view->Find(table_) : nullptr;
  if (s == nullptr) {
    const Table* table = db_->GetTable(table_);
    if (table == nullptr) return false;
    *pinned = table->Snapshot();
    s = pinned->get();
  }
  *snap = s;
  *annot = catalog_->ResolveAnnotator(table_);
  return true;
}

Result<AnnotatedRelation> IncScan::Build(const DeltaContext& ctx) {
  AnnotatedRelation out;
  out.schema = schema_;
  // Read through the round's pinned view (capture at the frozen
  // watermark); without one, pin the table's current published snapshot.
  std::shared_ptr<const TableSnapshot> pinned;
  const TableSnapshot* snap = ctx.view ? ctx.view->Find(table_) : nullptr;
  if (snap == nullptr) {
    const Table* table = db_->GetTable(table_);
    if (table == nullptr) return Status::NotFound("no such table: " + table_);
    pinned = table->Snapshot();
    snap = pinned.get();
  }
  // Resolve the table's partition once; per-row annotation then touches
  // only the partition column (bit-identical to catalog_->AnnotateRow).
  const TableAnnotator annot = catalog_->ResolveAnnotator(table_);
  if (vectorized_) {
    // When every partition boundary is an integer, fragment lookup over a
    // typed chunk's unboxed int64 column is a raw upper_bound — no Value
    // touched per row. NULL sorts below every integer in Value::Compare's
    // type-tag order, so a NULL cell clamps into fragment 0 exactly as
    // FragmentOf does.
    std::vector<int64_t> int_bounds;
    if (annot.active()) {
      for (const Value& b : annot.partition()->bounds()) {
        if (!b.is_int()) {
          int_bounds.clear();
          break;
        }
        int_bounds.push_back(b.AsInt());
      }
    }
    // Chunk-at-a-time capture: zone-map pruning in front of the compiled
    // kernel, a column-at-a-time gather of the survivors, then annotation
    // in row order (bit-identical to a GetRow-per-set-bit loop). No
    // table-sized reserve: a selective filter should not allocate a
    // table-sized row vector, and AnnotatedRow moves are pointer swaps.
    for (const auto& chunk : snap->chunks()) {
      if (filter_ && !ChunkMayMatch(*filter_, *chunk)) continue;
      BitVector sel;
      kernel_.Eval(RowBlock::FromChunk(*chunk), &sel,
                   stats_ ? &stats_->vectorized_batches : nullptr,
                   stats_ ? &stats_->scalar_fallback_rows : nullptr);
      std::vector<Tuple> gathered = chunk->GatherRows(sel);
      const ColumnVector* pcol = nullptr;
      if (!int_bounds.empty()) {
        const ColumnVector& cand = chunk->column(annot.attr_index());
        if (cand.encoding() == ColumnVector::Encoding::kInt64) pcol = &cand;
      }
      if (pcol != nullptr) {
        const int64_t* pv = pcol->ints();
        const size_t num_fragments = int_bounds.size() - 1;
        size_t gi = 0;
        sel.ForEachSetBit([&](size_t i) {
          AnnotatedRow ar;
          ar.row = std::move(gathered[gi++]);
          size_t frag = 0;
          if (!pcol->IsNull(i)) {
            auto it = std::upper_bound(int_bounds.begin(), int_bounds.end(),
                                       pv[i]);
            if (it != int_bounds.begin()) {
              frag = static_cast<size_t>(it - int_bounds.begin()) - 1;
              if (frag >= num_fragments) frag = num_fragments - 1;
            }
          }
          ar.sketch.Resize(annot.total_fragments());
          ar.sketch.Set(annot.offset() + frag);
          out.rows.push_back(std::move(ar));
        });
        continue;
      }
      for (Tuple& row : gathered) {
        AnnotatedRow ar;
        ar.row = std::move(row);
        annot.AnnotateRow(ar.row, &ar.sketch);
        out.rows.push_back(std::move(ar));
      }
    }
    return out;
  }
  out.rows.reserve(snap->num_rows());
  snap->ForEachRow([&](const Tuple& row) {
    if (filter_ && !filter_->Eval(row).IsTrue()) return;
    AnnotatedRow ar;
    ar.row = row;
    annot.AnnotateRow(row, &ar.sketch);
    out.rows.push_back(std::move(ar));
  });
  return out;
}

Result<DeltaBatch> IncScan::Process(const DeltaContext& ctx) {
  const DeltaBatch* in = ctx.FindBatch(table_);
  if (in == nullptr) return DeltaBatch();
  stats_->delta_rows_processed += in->size();
  // Serve a borrowed view of the context's batch — zero row copies no
  // matter how many sketches share the underlying annotated delta. A scan
  // filter only refines the selection bitmap, keeping the view borrowed.
  ++stats_->deltas_borrowed;
  DeltaBatch out = in->View();
  if (!filter_) return out;
  if (vectorized_) {
    // View() always yields a borrowed batch, so evaluate the kernel over
    // the base rows in one pass and intersect with the current selection.
    BitVector keep;
    kernel_.Eval(RowBlock::FromMember(out.base()->rows, &AnnotatedDeltaRow::row),
                 &keep, stats_ ? &stats_->vectorized_batches : nullptr,
                 stats_ ? &stats_->scalar_fallback_rows : nullptr);
    return std::move(out).FilterWithMask(keep);
  }
  return std::move(out).Filter([&](const AnnotatedDeltaRow& r) {
    return filter_->Eval(r.row).IsTrue();
  });
}

// ---- IncSelect --------------------------------------------------------------

IncSelect::IncSelect(std::unique_ptr<IncOperator> child, ExprPtr predicate,
                     MaintainStats* stats, bool vectorized)
    : IncOperator([&] {
        std::vector<std::unique_ptr<IncOperator>> c;
        c.push_back(std::move(child));
        return c;
      }()),
      predicate_(std::move(predicate)),
      stats_(stats),
      vectorized_(vectorized) {
  if (vectorized_) kernel_ = PredicateKernel::Compile(predicate_);
}

Result<AnnotatedRelation> IncSelect::Build(const DeltaContext& ctx) {
  IMP_ASSIGN_OR_RETURN(AnnotatedRelation in, children_[0]->Build(ctx));
  AnnotatedRelation out;
  out.schema = in.schema;
  if (vectorized_) {
    BitVector sel;
    kernel_.Eval(RowBlock::FromMember(in.rows, &AnnotatedRow::row), &sel,
                 stats_ ? &stats_->vectorized_batches : nullptr,
                 stats_ ? &stats_->scalar_fallback_rows : nullptr);
    sel.ForEachSetBit(
        [&](size_t i) { out.rows.push_back(std::move(in.rows[i])); });
    return out;
  }
  for (AnnotatedRow& r : in.rows) {
    if (predicate_->Eval(r.row).IsTrue()) out.rows.push_back(std::move(r));
  }
  return out;
}

Result<DeltaBatch> IncSelect::Process(const DeltaContext& ctx) {
  IMP_ASSIGN_OR_RETURN(DeltaBatch in, children_[0]->Process(ctx));
  // Borrowed input stays borrowed (bitmap refinement); owned input is
  // filtered in place. Either way: no row copies.
  if (vectorized_) {
    const std::vector<AnnotatedDeltaRow>& rows =
        in.borrowed() ? in.base()->rows : in.owned().rows;
    BitVector keep;
    kernel_.Eval(RowBlock::FromMember(rows, &AnnotatedDeltaRow::row), &keep,
                 stats_ ? &stats_->vectorized_batches : nullptr,
                 stats_ ? &stats_->scalar_fallback_rows : nullptr);
    return std::move(in).FilterWithMask(keep);
  }
  return std::move(in).Filter([&](const AnnotatedDeltaRow& r) {
    return predicate_->Eval(r.row).IsTrue();
  });
}

// ---- IncProject -------------------------------------------------------------

IncProject::IncProject(std::unique_ptr<IncOperator> child,
                       std::vector<ExprPtr> exprs, Schema output_schema,
                       bool kernelized)
    : IncOperator([&] {
        std::vector<std::unique_ptr<IncOperator>> c;
        c.push_back(std::move(child));
        return c;
      }()),
      exprs_(std::move(exprs)),
      output_schema_(std::move(output_schema)) {
  if (!kernelized) return;
  proj_cols_valid_ = true;
  proj_cols_.reserve(exprs_.size());
  for (const ExprPtr& e : exprs_) {
    if (e->kind() != ExprKind::kColumnRef) {
      proj_cols_valid_ = false;
      proj_cols_.clear();
      break;
    }
    proj_cols_.push_back(static_cast<const ColumnRefExpr&>(*e).index());
  }
}

Tuple IncProject::ProjectRow(const Tuple& row) const {
  Tuple projected;
  projected.reserve(exprs_.size());
  if (proj_cols_valid_) {
    for (size_t c : proj_cols_) projected.push_back(row[c]);
    return projected;
  }
  for (const ExprPtr& e : exprs_) projected.push_back(e->Eval(row));
  return projected;
}

Result<AnnotatedRelation> IncProject::Build(const DeltaContext& ctx) {
  IMP_ASSIGN_OR_RETURN(AnnotatedRelation in, children_[0]->Build(ctx));
  AnnotatedRelation out;
  out.schema = output_schema_;
  out.rows.reserve(in.rows.size());
  for (AnnotatedRow& r : in.rows) {
    AnnotatedRow pr;
    pr.row = ProjectRow(r.row);
    pr.sketch = std::move(r.sketch);
    out.rows.push_back(std::move(pr));
  }
  return out;
}

Result<DeltaBatch> IncProject::Process(const DeltaContext& ctx) {
  IMP_ASSIGN_OR_RETURN(DeltaBatch in, children_[0]->Process(ctx));
  // Projection rewrites rows, so its output is always owned. Borrowed
  // input rows are read through the cursor (sketches are copied into the
  // fresh output rows); owned input donates its sketches.
  AnnotatedDelta out;
  out.rows.reserve(in.size());
  if (in.borrowed()) {
    in.ForEachRow([&](const AnnotatedDeltaRow& r) {
      out.Append(ProjectRow(r.row), r.sketch, r.mult);
    });
  } else {
    for (AnnotatedDeltaRow& r : in.mutable_owned().rows) {
      out.Append(ProjectRow(r.row), std::move(r.sketch), r.mult);
    }
  }
  return DeltaBatch::OwnedOf(std::move(out));
}

// ---- IncMerge (μ) -----------------------------------------------------------

void IncMerge::Build(const AnnotatedRelation& result) {
  std::fill(counters_.begin(), counters_.end(), 0);
  for (const AnnotatedRow& r : result.rows) {
    for (size_t bit : r.sketch.SetBits()) {
      if (bit >= counters_.size()) counters_.resize(bit + 1, 0);
      ++counters_[bit];
    }
  }
}

SketchDelta IncMerge::Process(const DeltaBatch& batch) {
  // Snapshot the pre-batch counts of touched fragments, apply the whole
  // batch, then emit one transition per fragment (Sec. 5.1: zero -> nonzero
  // inserts the fragment, nonzero -> zero removes it).
  std::map<size_t, int64_t> before;
  batch.ForEachRow([&](const AnnotatedDeltaRow& r) {
    for (size_t bit : r.sketch.SetBits()) {
      if (bit >= counters_.size()) counters_.resize(bit + 1, 0);
      before.emplace(bit, counters_[bit]);
      counters_[bit] += r.mult;
    }
  });
  SketchDelta out;
  for (const auto& [bit, old_count] : before) {
    int64_t new_count = counters_[bit];
    IMP_CHECK_MSG(new_count >= 0, "negative merge counter");
    if (old_count == 0 && new_count != 0) out.added.push_back(bit);
    if (old_count != 0 && new_count == 0) out.removed.push_back(bit);
  }
  return out;
}

BitVector IncMerge::CurrentSketch() const {
  BitVector out(counters_.size());
  for (size_t i = 0; i < counters_.size(); ++i) {
    if (counters_[i] > 0) out.Set(i);
  }
  return out;
}

void IncMerge::SaveState(SerdeWriter* writer) const {
  writer->WriteU64(counters_.size());
  for (int64_t c : counters_) writer->WriteI64(c);
}

Status IncMerge::LoadState(SerdeReader* reader) {
  IMP_ASSIGN_OR_RETURN(uint64_t n, reader->ReadU64());
  counters_.assign(n, 0);
  for (uint64_t i = 0; i < n; ++i) {
    IMP_ASSIGN_OR_RETURN(counters_[i], reader->ReadI64());
  }
  return Status::OK();
}

}  // namespace imp
