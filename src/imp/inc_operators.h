// Incremental operator interface plus the stateless operators of Sec. 5.2
// (table access, selection, projection) and the merge operator μ (Sec. 5.1).

#ifndef IMP_IMP_INC_OPERATORS_H_
#define IMP_IMP_INC_OPERATORS_H_

#include <memory>
#include <string>
#include <vector>

#include "common/serde.h"
#include "common/status.h"
#include "exec/annotated_executor.h"
#include "exec/vector_kernels.h"
#include "expr/expr.h"
#include "imp/delta.h"
#include "sketch/sketch.h"

namespace imp {

class IncScan;

/// Base class of incremental operators. Each operator mirrors one plan node;
/// Process consumes the children's deltas (driven by the operator itself)
/// and produces this operator's output delta, updating internal state.
class IncOperator {
 public:
  virtual ~IncOperator() = default;

  /// Columnar hand-off hook: the scan leaf returns itself so a kernelized
  /// parent (e.g. IncAggregate) can read typed chunk columns directly
  /// instead of consuming materialized rows. Everything else: nullptr.
  virtual const IncScan* AsIncScan() const { return nullptr; }

  /// Initialize state from the operator's current (annotated) input and
  /// return the operator's current output — used when a sketch is captured
  /// and its incremental state is built alongside (Sec. 7.1).
  virtual Result<AnnotatedRelation> Build(const DeltaContext&) = 0;

  /// Process one maintenance batch. The returned DeltaBatch may borrow
  /// rows from `ctx` (table access and filters return borrowed views), so
  /// `ctx` — and any shared deltas its entries borrow from — must stay
  /// alive until the result has been consumed.
  virtual Result<DeltaBatch> Process(const DeltaContext& ctx) = 0;

  /// Approximate bytes of operator state (Figs. 13e/f, 15, 17).
  virtual size_t StateBytes() const { return 0; }

  /// Persist this operator's own state (Sec. 2 state persistence).
  /// Stateless operators write nothing.
  virtual void SaveState(SerdeWriter*) const {}
  /// Restore this operator's own state; must mirror SaveState.
  virtual Status LoadState(SerdeReader*) { return Status::OK(); }

  /// Persist / restore the whole operator subtree (pre-order).
  void SaveTree(SerdeWriter* writer) const;
  Status LoadTree(SerdeReader* reader);

  /// Accumulate state bytes over this operator and its children.
  size_t TotalStateBytes() const;

  const std::vector<std::unique_ptr<IncOperator>>& children() const {
    return children_;
  }

 protected:
  explicit IncOperator(std::vector<std::unique_ptr<IncOperator>> children)
      : children_(std::move(children)) {}

  std::vector<std::unique_ptr<IncOperator>> children_;
};

/// Incremental table access (Sec. 5.2.1): returns the annotated delta for
/// its table unmodified (after applying any pushed-down scan filter).
class IncScan final : public IncOperator {
 public:
  IncScan(std::string table, ExprPtr filter, const Database* db,
          const PartitionCatalog* catalog, Schema schema,
          MaintainStats* stats, bool vectorized = true);

  Result<AnnotatedRelation> Build(const DeltaContext&) override;
  Result<DeltaBatch> Process(const DeltaContext& ctx) override;
  const IncScan* AsIncScan() const override { return this; }

  /// Columnar hand-off for a filterless vectorized scan: pin the round's
  /// snapshot (`*pinned` keeps it alive when the context has no view) and
  /// resolve the table's annotator, so a kernelized parent can aggregate
  /// straight off the chunk columns. False when this scan has a filter,
  /// is not vectorized, or the table does not exist — callers then fall
  /// back to the row-at-a-time Build contract.
  bool ColumnarSource(const DeltaContext& ctx,
                      std::shared_ptr<const TableSnapshot>* pinned,
                      const TableSnapshot** snap,
                      TableAnnotator* annot) const;

 private:
  std::string table_;
  ExprPtr filter_;
  const Database* db_;
  const PartitionCatalog* catalog_;
  Schema schema_;
  MaintainStats* stats_;
  bool vectorized_;
  PredicateKernel kernel_;  ///< compiled once from filter_ (when vectorized)
};

/// Incremental selection (Sec. 5.2.3): stateless filter on delta tuples.
class IncSelect final : public IncOperator {
 public:
  IncSelect(std::unique_ptr<IncOperator> child, ExprPtr predicate,
            MaintainStats* stats = nullptr, bool vectorized = true);

  Result<AnnotatedRelation> Build(const DeltaContext& ctx) override;
  Result<DeltaBatch> Process(const DeltaContext& ctx) override;

 private:
  ExprPtr predicate_;
  MaintainStats* stats_;
  bool vectorized_;
  PredicateKernel kernel_;  ///< compiled once from predicate_
};

/// Incremental projection (Sec. 5.2.2): stateless per-tuple mapping; the
/// sketch is propagated unmodified. With `kernelized` set and every
/// projection a plain ColumnRef (the dominant shape), rows are rebuilt by
/// direct cell copies instead of virtual Expr::Eval per cell —
/// bit-identical, since ColumnRefExpr::Eval is exactly row[index].
class IncProject final : public IncOperator {
 public:
  IncProject(std::unique_ptr<IncOperator> child, std::vector<ExprPtr> exprs,
             Schema output_schema, bool kernelized = false);

  Result<AnnotatedRelation> Build(const DeltaContext& ctx) override;
  Result<DeltaBatch> Process(const DeltaContext& ctx) override;

 private:
  Tuple ProjectRow(const Tuple& row) const;

  std::vector<ExprPtr> exprs_;
  Schema output_schema_;
  bool proj_cols_valid_ = false;  ///< all exprs_ are ColumnRefs
  std::vector<size_t> proj_cols_;
};

/// Merge operator μ (Sec. 5.1): maintains, for every fragment ρ, the number
/// of result tuples whose sketch contains ρ, and emits a sketch delta when
/// a counter transitions between zero and non-zero.
class IncMerge {
 public:
  explicit IncMerge(size_t total_fragments)
      : counters_(total_fragments, 0) {}

  /// Initialize counters from the query's current annotated result.
  void Build(const AnnotatedRelation& result);

  /// Fold one result delta batch (owned or borrowed); returns the
  /// resulting sketch delta ΔP.
  SketchDelta Process(const DeltaBatch& batch);
  /// Convenience overload for materialized deltas.
  SketchDelta Process(const AnnotatedDelta& delta) {
    return Process(DeltaBatch::Borrowed(&delta));
  }

  /// Sketch implied by the current counters ({ρ | S[ρ] > 0}).
  BitVector CurrentSketch() const;

  int64_t CounterFor(size_t fragment) const {
    return fragment < counters_.size() ? counters_[fragment] : 0;
  }
  size_t StateBytes() const { return counters_.capacity() * sizeof(int64_t); }

  void SaveState(SerdeWriter* writer) const;
  Status LoadState(SerdeReader* reader);

 private:
  std::vector<int64_t> counters_;
};

}  // namespace imp

#endif  // IMP_IMP_INC_OPERATORS_H_
