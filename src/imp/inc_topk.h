// Incremental top-k (Sec. 5.2.7) with the top-l buffer optimization
// (Sec. 7.2 / 8.4.3).
//
// State is the nested ordered map of the paper: an outer red-black tree
// (std::map) from order-by key to an inner map from annotated tuple to
// multiplicity. Deltas are computed by re-emitting: Δ- of the previous
// top-k output and Δ+ of the new one (identical outputs are skipped).
// With a finite buffer l >= k only the best l input rows (by multiplicity)
// are retained; deletions that exhaust the buffer while dropped rows exist
// surface as NeedsRecapture, which makes the maintainer rebuild state —
// exactly the paper's "if there are less than k groups stored in the
// state, our IMP will fully maintain the sketches".

#ifndef IMP_IMP_INC_TOPK_H_
#define IMP_IMP_INC_TOPK_H_

#include <map>
#include <memory>
#include <vector>

#include "algebra/plan.h"
#include "imp/inc_operators.h"

namespace imp {

class IncTopK final : public IncOperator {
 public:
  struct Options {
    /// Retain only the best `buffer` rows (total multiplicity); 0 = all.
    size_t buffer = 0;
  };

  IncTopK(std::unique_ptr<IncOperator> child, std::vector<SortSpec> sorts,
          size_t k, Options options, MaintainStats* stats);

  Result<AnnotatedRelation> Build(const DeltaContext& ctx) override;
  Result<DeltaBatch> Process(const DeltaContext& ctx) override;
  size_t StateBytes() const override;
  void SaveState(SerdeWriter* writer) const override;
  Status LoadState(SerdeReader* reader) override;

  /// Total multiplicity currently retained in the tree.
  int64_t StoredCount() const { return stored_count_; }
  /// Multiplicity of rows dropped by buffer truncation.
  int64_t DroppedCount() const { return dropped_count_; }

 private:
  struct SortKeyLess {
    const std::vector<SortSpec>* sorts;
    bool operator()(const Tuple& a, const Tuple& b) const {
      for (size_t i = 0; i < sorts->size(); ++i) {
        int c = a[i].Compare(b[i]);  // keys store sort columns positionally
        if (c != 0) return (*sorts)[i].ascending ? c < 0 : c > 0;
      }
      return false;
    }
  };

  struct InnerKey {
    Tuple row;
    BitVector sketch;
    bool operator<(const InnerKey& o) const {
      TupleLess less;
      if (less(row, o.row)) return true;
      if (less(o.row, row)) return false;
      return sketch < o.sketch;
    }
  };

  using InnerMap = std::map<InnerKey, int64_t>;
  using OuterMap = std::map<Tuple, InnerMap, SortKeyLess>;

  Tuple SortKeyOf(const Tuple& row) const;
  /// Apply one signed row to the tree, honoring the buffer limit.
  Status ApplyRow(const Tuple& row, const BitVector& sketch, int64_t mult);
  /// Trim worst entries while more than max(buffer, k) rows are stored.
  void EnforceBuffer();
  /// Current top-k output rows with multiplicities.
  std::vector<AnnotatedDeltaRow> ComputeTopK() const;

  std::vector<SortSpec> sorts_;
  size_t k_;
  Options options_;
  MaintainStats* stats_;
  OuterMap tree_;
  int64_t stored_count_ = 0;
  int64_t dropped_count_ = 0;
  std::vector<AnnotatedDeltaRow> last_output_;
};

}  // namespace imp

#endif  // IMP_IMP_INC_TOPK_H_
