#include "imp/inc_aggregate.h"

namespace imp {

IncAggregate::IncAggregate(std::unique_ptr<IncOperator> child,
                           std::vector<ExprPtr> group_exprs,
                           std::vector<AggSpec> aggs, Schema output_schema,
                           Options options, MaintainStats* stats)
    : IncOperator([&] {
        std::vector<std::unique_ptr<IncOperator>> c;
        c.push_back(std::move(child));
        return c;
      }()),
      group_exprs_(std::move(group_exprs)),
      aggs_(std::move(aggs)),
      output_schema_(std::move(output_schema)),
      options_(options),
      stats_(stats) {}

size_t IncAggregate::AggState::MemoryBytes() const {
  size_t bytes = sizeof(AggState);
  for (const auto& [v, _] : values) {
    bytes += v.MemoryBytes() + sizeof(int64_t) + 3 * sizeof(void*);
  }
  return bytes;
}

BitVector IncAggregate::GroupState::SketchOf() const {
  BitVector out;
  for (const auto& [frag, count] : frag_counts) {
    if (count > 0) {
      out.Resize(frag + 1);
      out.Set(frag);
    }
  }
  return out;
}

size_t IncAggregate::GroupState::MemoryBytes() const {
  size_t bytes = sizeof(GroupState);
  for (const AggState& agg : aggs) bytes += agg.MemoryBytes();
  bytes += frag_counts.size() * (2 * sizeof(int64_t) + 3 * sizeof(void*));
  return bytes;
}

Tuple IncAggregate::GroupKeyOf(const Tuple& row) const {
  Tuple key;
  key.reserve(group_exprs_.size());
  for (const ExprPtr& g : group_exprs_) key.push_back(g->Eval(row));
  return key;
}

Status IncAggregate::ApplyMinMax(AggState* agg, const AggSpec& spec,
                                 const Value& v, int64_t mult) {
  const bool keep_smallest = spec.fn == AggFunc::kMin;
  const size_t limit = options_.minmax_buffer;
  auto& values = agg->values;

  if (mult > 0) {
    if (limit == 0 || values.size() < limit) {
      values[v] += mult;
    } else {
      // Buffer full: accept only values better than the worst retained one.
      const Value& worst =
          keep_smallest ? values.rbegin()->first : values.begin()->first;
      bool better = keep_smallest ? (v < worst) : (worst < v);
      if (better || values.count(v) > 0) {
        values[v] += mult;
        // Evict the worst entry if we grew beyond the limit.
        while (values.size() > limit) {
          auto worst_it = keep_smallest ? std::prev(values.end())
                                        : values.begin();
          agg->overflow += worst_it->second;
          values.erase(worst_it);
        }
      } else {
        agg->overflow += mult;
      }
    }
    return Status::OK();
  }

  // Deletion.
  int64_t remove = -mult;
  auto it = values.find(v);
  if (it != values.end()) {
    it->second -= remove;
    if (it->second < 0) {
      return Status::NeedsRecapture("min/max multiset underflow");
    }
    if (it->second == 0) values.erase(it);
  } else if (limit != 0 && agg->overflow >= remove) {
    // The value was truncated away; it must be worse than everything
    // retained, so it only affects the overflow count.
    agg->overflow -= remove;
  } else {
    return Status::NeedsRecapture("deletion of untracked min/max value");
  }
  if (values.empty() && agg->overflow > 0) {
    // We no longer know the best value (Sec. 7.2: "if all tuples from the
    // buffer are deleted, we have to recapture the sketch").
    return Status::NeedsRecapture("min/max buffer exhausted");
  }
  return Status::OK();
}

Status IncAggregate::ApplyRow(GroupState* state, const Tuple& row,
                              const BitVector& sketch, int64_t mult) {
  state->count += mult;
  if (state->count < 0) {
    return Status::NeedsRecapture("group multiplicity went negative");
  }
  for (size_t bit : sketch.SetBits()) {
    int64_t& c = state->frag_counts[bit];
    c += mult;
    if (c < 0) return Status::NeedsRecapture("fragment count went negative");
    if (c == 0) state->frag_counts.erase(bit);
  }
  for (size_t i = 0; i < aggs_.size(); ++i) {
    const AggSpec& spec = aggs_[i];
    AggState& agg = state->aggs[i];
    Value v = spec.arg ? spec.arg->Eval(row) : Value::Int(1);
    if (v.is_null()) continue;  // SQL aggregates skip NULLs
    switch (spec.fn) {
      case AggFunc::kCount:
        agg.nonnull_count += mult;
        break;
      case AggFunc::kSum:
      case AggFunc::kAvg:
        agg.nonnull_count += mult;
        if (v.is_double()) {
          agg.saw_double = true;
          agg.dbl_sum += v.AsDouble() * static_cast<double>(mult);
        } else {
          agg.int_sum += v.AsInt() * mult;
        }
        break;
      case AggFunc::kMin:
      case AggFunc::kMax: {
        Status st = ApplyMinMax(&agg, spec, v, mult);
        if (!st.ok()) return st;
        break;
      }
    }
  }
  return Status::OK();
}

Tuple IncAggregate::OutputRow(const Tuple& key, const GroupState& state) const {
  Tuple out = key;
  out.reserve(key.size() + aggs_.size());
  for (size_t i = 0; i < aggs_.size(); ++i) {
    const AggSpec& spec = aggs_[i];
    const AggState& agg = state.aggs[i];
    switch (spec.fn) {
      case AggFunc::kCount:
        out.push_back(Value::Int(agg.nonnull_count));
        break;
      case AggFunc::kSum:
        if (agg.nonnull_count == 0) {
          out.push_back(Value::Null());
        } else if (agg.saw_double) {
          out.push_back(
              Value::Double(agg.dbl_sum + static_cast<double>(agg.int_sum)));
        } else {
          out.push_back(Value::Int(agg.int_sum));
        }
        break;
      case AggFunc::kAvg:
        if (agg.nonnull_count == 0) {
          out.push_back(Value::Null());
        } else {
          double total = agg.dbl_sum + static_cast<double>(agg.int_sum);
          out.push_back(
              Value::Double(total / static_cast<double>(agg.nonnull_count)));
        }
        break;
      case AggFunc::kMin:
        out.push_back(agg.values.empty() ? Value::Null()
                                         : agg.values.begin()->first);
        break;
      case AggFunc::kMax:
        out.push_back(agg.values.empty() ? Value::Null()
                                         : agg.values.rbegin()->first);
        break;
    }
  }
  return out;
}

Result<AnnotatedRelation> IncAggregate::Build(const DeltaContext& ctx) {
  IMP_ASSIGN_OR_RETURN(AnnotatedRelation in, children_[0]->Build(ctx));
  groups_.clear();
  for (const AnnotatedRow& r : in.rows) {
    Tuple key = GroupKeyOf(r.row);
    auto [it, inserted] = groups_.try_emplace(std::move(key));
    if (inserted) it->second.aggs.resize(aggs_.size());
    Status st = ApplyRow(&it->second, r.row, r.sketch, 1);
    IMP_RETURN_NOT_OK(st);
  }
  // Aggregation without GROUP BY always has exactly one (possibly empty)
  // group.
  if (group_exprs_.empty() && groups_.empty()) {
    groups_.try_emplace(Tuple{}).first->second.aggs.resize(aggs_.size());
  }
  AnnotatedRelation out;
  out.schema = output_schema_;
  out.rows.reserve(groups_.size());
  for (const auto& [key, state] : groups_) {
    if (!GroupExists(state) && !group_exprs_.empty()) continue;
    out.rows.push_back(AnnotatedRow{OutputRow(key, state), state.SketchOf()});
  }
  return out;
}

Result<DeltaBatch> IncAggregate::Process(const DeltaContext& ctx) {
  IMP_ASSIGN_OR_RETURN(DeltaBatch in, children_[0]->Process(ctx));
  AnnotatedDelta out;
  if (in.empty()) return DeltaBatch();

  // Lazily snapshot the previous output of each touched group.
  struct PreState {
    bool existed = false;
    Tuple out_row;
    BitVector sketch;
  };
  std::unordered_map<Tuple, PreState, TupleHash, TupleEq> touched;

  // Input rows are consumed through the cursor: borrowed batches are read
  // in place, the group deltas below are freshly built rows either way.
  DeltaBatch::Cursor cursor(in);
  while (const AnnotatedDeltaRow* r = cursor.Next()) {
    Tuple key = GroupKeyOf(r->row);
    auto [it, inserted] = groups_.try_emplace(key);
    if (inserted) it->second.aggs.resize(aggs_.size());
    auto [snap_it, snap_new] = touched.try_emplace(key);
    if (snap_new) {
      bool global_group = group_exprs_.empty();
      snap_it->second.existed = GroupExists(it->second) || global_group;
      if (snap_it->second.existed) {
        snap_it->second.out_row = OutputRow(key, it->second);
        snap_it->second.sketch = it->second.SketchOf();
      }
    }
    Status st = ApplyRow(&it->second, r->row, r->sketch, r->mult);
    IMP_RETURN_NOT_OK(st);
  }

  for (auto& [key, pre] : touched) {
    auto it = groups_.find(key);
    IMP_CHECK(it != groups_.end());
    const GroupState& state = it->second;
    bool exists_now = GroupExists(state) || group_exprs_.empty();
    if (exists_now) {
      Tuple new_row = OutputRow(key, state);
      BitVector new_sketch = state.SketchOf();
      if (pre.existed && TupleEq{}(pre.out_row, new_row) &&
          pre.sketch == new_sketch) {
        continue;  // no observable change; skip the Δ-/Δ+ pair
      }
      if (pre.existed) {
        out.Append(std::move(pre.out_row), std::move(pre.sketch), -1);
      }
      out.Append(std::move(new_row), std::move(new_sketch), +1);
    } else {
      if (pre.existed) {
        out.Append(std::move(pre.out_row), std::move(pre.sketch), -1);
      }
      if (state.count == 0) groups_.erase(it);  // group fully deleted
    }
  }
  return DeltaBatch::OwnedOf(std::move(out));
}

size_t IncAggregate::StateBytes() const {
  size_t bytes = sizeof(*this);
  for (const auto& [key, state] : groups_) {
    bytes += TupleMemoryBytes(key) + state.MemoryBytes();
  }
  return bytes;
}

void IncAggregate::SaveState(SerdeWriter* writer) const {
  writer->WriteU64(groups_.size());
  for (const auto& [key, state] : groups_) {
    writer->WriteTuple(key);
    writer->WriteI64(state.count);
    writer->WriteU64(state.frag_counts.size());
    for (const auto& [frag, count] : state.frag_counts) {
      writer->WriteU64(frag);
      writer->WriteI64(count);
    }
    writer->WriteU64(state.aggs.size());
    for (const AggState& agg : state.aggs) {
      writer->WriteI64(agg.nonnull_count);
      writer->WriteI64(agg.int_sum);
      writer->WriteDouble(agg.dbl_sum);
      writer->WriteBool(agg.saw_double);
      writer->WriteU64(agg.values.size());
      for (const auto& [v, count] : agg.values) {
        writer->WriteValue(v);
        writer->WriteI64(count);
      }
      writer->WriteI64(agg.overflow);
    }
  }
}

Status IncAggregate::LoadState(SerdeReader* reader) {
  groups_.clear();
  IMP_ASSIGN_OR_RETURN(uint64_t num_groups, reader->ReadU64());
  for (uint64_t g = 0; g < num_groups; ++g) {
    IMP_ASSIGN_OR_RETURN(Tuple key, reader->ReadTuple());
    GroupState state;
    IMP_ASSIGN_OR_RETURN(state.count, reader->ReadI64());
    IMP_ASSIGN_OR_RETURN(uint64_t num_frags, reader->ReadU64());
    for (uint64_t f = 0; f < num_frags; ++f) {
      IMP_ASSIGN_OR_RETURN(uint64_t frag, reader->ReadU64());
      IMP_ASSIGN_OR_RETURN(int64_t count, reader->ReadI64());
      state.frag_counts[frag] = count;
    }
    IMP_ASSIGN_OR_RETURN(uint64_t num_aggs, reader->ReadU64());
    if (num_aggs != aggs_.size()) {
      return Status::Internal("aggregate state does not match plan");
    }
    state.aggs.resize(num_aggs);
    for (uint64_t a = 0; a < num_aggs; ++a) {
      AggState& agg = state.aggs[a];
      IMP_ASSIGN_OR_RETURN(agg.nonnull_count, reader->ReadI64());
      IMP_ASSIGN_OR_RETURN(agg.int_sum, reader->ReadI64());
      IMP_ASSIGN_OR_RETURN(agg.dbl_sum, reader->ReadDouble());
      IMP_ASSIGN_OR_RETURN(agg.saw_double, reader->ReadBool());
      IMP_ASSIGN_OR_RETURN(uint64_t num_values, reader->ReadU64());
      for (uint64_t v = 0; v < num_values; ++v) {
        IMP_ASSIGN_OR_RETURN(Value value, reader->ReadValue());
        IMP_ASSIGN_OR_RETURN(int64_t count, reader->ReadI64());
        agg.values[value] = count;
      }
      IMP_ASSIGN_OR_RETURN(agg.overflow, reader->ReadI64());
    }
    groups_.emplace(std::move(key), std::move(state));
  }
  return Status::OK();
}

}  // namespace imp
