#include "imp/inc_aggregate.h"

#include <algorithm>

#include "sketch/partition.h"
#include "storage/table.h"

namespace imp {

IncAggregate::IncAggregate(std::unique_ptr<IncOperator> child,
                           std::vector<ExprPtr> group_exprs,
                           std::vector<AggSpec> aggs, Schema output_schema,
                           Options options, MaintainStats* stats)
    : IncOperator([&] {
        std::vector<std::unique_ptr<IncOperator>> c;
        c.push_back(std::move(child));
        return c;
      }()),
      group_exprs_(std::move(group_exprs)),
      aggs_(std::move(aggs)),
      output_schema_(std::move(output_schema)),
      options_(options),
      stats_(stats) {
  if (!options_.kernelized) return;
  key_cols_valid_ = true;
  key_cols_.reserve(group_exprs_.size());
  for (const ExprPtr& g : group_exprs_) {
    if (g->kind() != ExprKind::kColumnRef) {
      key_cols_valid_ = false;
      key_cols_.clear();
      break;
    }
    key_cols_.push_back(static_cast<const ColumnRefExpr&>(*g).index());
  }
  agg_cols_.reserve(aggs_.size());
  for (const AggSpec& spec : aggs_) {
    agg_cols_.push_back(spec.arg && spec.arg->kind() == ExprKind::kColumnRef
                            ? static_cast<int>(
                                  static_cast<const ColumnRefExpr&>(*spec.arg)
                                      .index())
                            : -1);
  }
}

size_t IncAggregate::AggState::MemoryBytes() const {
  size_t bytes = sizeof(AggState);
  for (const auto& [v, _] : values) {
    bytes += v.MemoryBytes() + sizeof(int64_t) + 3 * sizeof(void*);
  }
  return bytes;
}

BitVector IncAggregate::GroupState::SketchOf() const {
  BitVector out;
  for (const auto& [frag, count] : frag_counts) {
    if (count > 0) {
      out.Resize(frag + 1);
      out.Set(frag);
    }
  }
  return out;
}

size_t IncAggregate::GroupState::MemoryBytes() const {
  size_t bytes = sizeof(GroupState);
  for (const AggState& agg : aggs) bytes += agg.MemoryBytes();
  bytes += frag_counts.size() * (2 * sizeof(int64_t) + 3 * sizeof(void*));
  return bytes;
}

Tuple IncAggregate::GroupKeyOf(const Tuple& row) const {
  Tuple key;
  key.reserve(group_exprs_.size());
  if (key_cols_valid_) {
    for (size_t c : key_cols_) key.push_back(row[c]);
    return key;
  }
  for (const ExprPtr& g : group_exprs_) key.push_back(g->Eval(row));
  return key;
}

Status IncAggregate::ApplyMinMax(AggState* agg, const AggSpec& spec,
                                 const Value& v, int64_t mult) {
  const bool keep_smallest = spec.fn == AggFunc::kMin;
  const size_t limit = options_.minmax_buffer;
  auto& values = agg->values;

  if (mult > 0) {
    if (limit == 0 || values.size() < limit) {
      values[v] += mult;
    } else {
      // Buffer full: accept only values better than the worst retained one.
      const Value& worst =
          keep_smallest ? values.rbegin()->first : values.begin()->first;
      bool better = keep_smallest ? (v < worst) : (worst < v);
      if (better || values.count(v) > 0) {
        values[v] += mult;
        // Evict the worst entry if we grew beyond the limit.
        while (values.size() > limit) {
          auto worst_it = keep_smallest ? std::prev(values.end())
                                        : values.begin();
          agg->overflow += worst_it->second;
          values.erase(worst_it);
        }
      } else {
        agg->overflow += mult;
      }
    }
    return Status::OK();
  }

  // Deletion.
  int64_t remove = -mult;
  auto it = values.find(v);
  if (it != values.end()) {
    it->second -= remove;
    if (it->second < 0) {
      return Status::NeedsRecapture("min/max multiset underflow");
    }
    if (it->second == 0) values.erase(it);
  } else if (limit != 0 && agg->overflow >= remove) {
    // The value was truncated away; it must be worse than everything
    // retained, so it only affects the overflow count.
    agg->overflow -= remove;
  } else {
    return Status::NeedsRecapture("deletion of untracked min/max value");
  }
  if (values.empty() && agg->overflow > 0) {
    // We no longer know the best value (Sec. 7.2: "if all tuples from the
    // buffer are deleted, we have to recapture the sketch").
    return Status::NeedsRecapture("min/max buffer exhausted");
  }
  return Status::OK();
}

Status IncAggregate::ApplyAggValue(AggState* agg, const AggSpec& spec,
                                   const Value& v, int64_t mult) {
  switch (spec.fn) {
    case AggFunc::kCount:
      agg->nonnull_count += mult;
      break;
    case AggFunc::kSum:
    case AggFunc::kAvg:
      agg->nonnull_count += mult;
      if (v.is_double()) {
        agg->saw_double = true;
        agg->dbl_sum += v.AsDouble() * static_cast<double>(mult);
      } else {
        agg->int_sum += v.AsInt() * mult;
      }
      break;
    case AggFunc::kMin:
    case AggFunc::kMax:
      return ApplyMinMax(agg, spec, v, mult);
  }
  return Status::OK();
}

Status IncAggregate::ApplyRow(GroupState* state, const Tuple& row,
                              const BitVector& sketch, int64_t mult) {
  state->count += mult;
  if (state->count < 0) {
    return Status::NeedsRecapture("group multiplicity went negative");
  }
  for (size_t bit : sketch.SetBits()) {
    int64_t& c = state->frag_counts[bit];
    c += mult;
    if (c < 0) return Status::NeedsRecapture("fragment count went negative");
    if (c == 0) state->frag_counts.erase(bit);
  }
  for (size_t i = 0; i < aggs_.size(); ++i) {
    const AggSpec& spec = aggs_[i];
    Value v = (i < agg_cols_.size() && agg_cols_[i] >= 0)
                  ? row[static_cast<size_t>(agg_cols_[i])]
                  : (spec.arg ? spec.arg->Eval(row) : Value::Int(1));
    if (v.is_null()) continue;  // SQL aggregates skip NULLs
    Status st = ApplyAggValue(&state->aggs[i], spec, v, mult);
    if (!st.ok()) return st;
  }
  return Status::OK();
}

Tuple IncAggregate::OutputRow(const Tuple& key, const GroupState& state) const {
  Tuple out = key;
  out.reserve(key.size() + aggs_.size());
  for (size_t i = 0; i < aggs_.size(); ++i) {
    const AggSpec& spec = aggs_[i];
    const AggState& agg = state.aggs[i];
    switch (spec.fn) {
      case AggFunc::kCount:
        out.push_back(Value::Int(agg.nonnull_count));
        break;
      case AggFunc::kSum:
        if (agg.nonnull_count == 0) {
          out.push_back(Value::Null());
        } else if (agg.saw_double) {
          out.push_back(
              Value::Double(agg.dbl_sum + static_cast<double>(agg.int_sum)));
        } else {
          out.push_back(Value::Int(agg.int_sum));
        }
        break;
      case AggFunc::kAvg:
        if (agg.nonnull_count == 0) {
          out.push_back(Value::Null());
        } else {
          double total = agg.dbl_sum + static_cast<double>(agg.int_sum);
          out.push_back(
              Value::Double(total / static_cast<double>(agg.nonnull_count)));
        }
        break;
      case AggFunc::kMin:
        out.push_back(agg.values.empty() ? Value::Null()
                                         : agg.values.begin()->first);
        break;
      case AggFunc::kMax:
        out.push_back(agg.values.empty() ? Value::Null()
                                         : agg.values.rbegin()->first);
        break;
    }
  }
  return out;
}

AnnotatedRelation IncAggregate::FinalizeBuildOutput() {
  // Aggregation without GROUP BY always has exactly one (possibly empty)
  // group.
  if (group_exprs_.empty() && groups_.empty()) {
    groups_.try_emplace(Tuple{}).first->second.aggs.resize(aggs_.size());
  }
  AnnotatedRelation out;
  out.schema = output_schema_;
  out.rows.reserve(groups_.size());
  for (const auto& [key, state] : groups_) {
    if (!GroupExists(state) && !group_exprs_.empty()) continue;
    out.rows.push_back(AnnotatedRow{OutputRow(key, state), state.SketchOf()});
  }
  return out;
}

Result<bool> IncAggregate::TryBuildColumnar(const DeltaContext& ctx,
                                            AnnotatedRelation* result) {
  if (!key_cols_valid_) return false;
  for (size_t i = 0; i < aggs_.size(); ++i) {
    // A general expression argument needs the materialized row.
    if (agg_cols_[i] < 0 && aggs_[i].arg) return false;
  }
  const IncScan* scan = children_[0]->AsIncScan();
  if (scan == nullptr) return false;
  std::shared_ptr<const TableSnapshot> pinned;
  const TableSnapshot* snap = nullptr;
  TableAnnotator annot;
  if (!scan->ColumnarSource(ctx, &pinned, &snap, &annot)) return false;

  groups_.clear();
  // Unboxed fragment bounds: same raw-int64 upper_bound fast path as
  // IncScan::Build (NULL sorts below every integer bound → fragment 0).
  std::vector<int64_t> int_bounds;
  if (annot.active()) {
    for (const Value& b : annot.partition()->bounds()) {
      if (!b.is_int()) {
        int_bounds.clear();
        break;
      }
      int_bounds.push_back(b.AsInt());
    }
  }

  // Side index into groups_ (node-based: GroupState pointers are stable),
  // plus a one-entry fragment-count cache per group — grouping columns
  // usually determine the partition fragment, so the std::map lookup in
  // frag_counts collapses to one pointer increment per row.
  struct GroupRef {
    GroupState* state = nullptr;
    size_t cached_frag = SIZE_MAX;
    int64_t* cached_count = nullptr;
  };
  std::unordered_map<int64_t, GroupRef> int_groups;
  std::unordered_map<Tuple, GroupRef, TupleHash, TupleEq> tuple_groups;
  auto locate = [&](Tuple key) -> GroupRef& {
    auto [sit, fresh] = tuple_groups.try_emplace(std::move(key));
    if (fresh) {
      auto [it, inserted] = groups_.try_emplace(sit->first);
      if (inserted) it->second.aggs.resize(aggs_.size());
      sit->second.state = &it->second;
    }
    return sit->second;
  };

  // Per-chunk, per-aggregate access plan.
  enum class AggMode : uint8_t {
    kCountStar,  // COUNT with no argument: every row counts
    kCountCol,   // COUNT(col): non-NULL cells count
    kSumInt,     // SUM/AVG over an unboxed int64 column
    kSumDbl,     // SUM/AVG over an unboxed double column
    kGeneric,    // rebox the cell and run the shared ApplyAggValue
  };
  struct AggPlan {
    AggMode mode;
    const ColumnVector* cv = nullptr;
    const int64_t* iv = nullptr;
    const double* dv = nullptr;
  };

  for (const auto& chunk : snap->chunks()) {
    const size_t n = chunk->num_rows();
    if (n == 0) continue;
    // Group-key access: a single int64-encoded key column gets a raw-value
    // side map; anything else builds the key tuple from reboxed cells.
    const ColumnVector* kcol = nullptr;
    if (key_cols_.size() == 1) {
      const ColumnVector& cand = chunk->column(key_cols_[0]);
      if (cand.encoding() == ColumnVector::Encoding::kInt64) kcol = &cand;
    }
    // Partition-column access for fragment counting.
    const ColumnVector* pcol = nullptr;
    if (annot.active() && !int_bounds.empty()) {
      const ColumnVector& cand = chunk->column(annot.attr_index());
      if (cand.encoding() == ColumnVector::Encoding::kInt64) pcol = &cand;
    }
    std::vector<AggPlan> plans(aggs_.size());
    for (size_t a = 0; a < aggs_.size(); ++a) {
      AggPlan& p = plans[a];
      if (agg_cols_[a] < 0) {
        p.mode = aggs_[a].fn == AggFunc::kCount ? AggMode::kCountStar
                                                : AggMode::kGeneric;
        continue;  // kGeneric with cv == nullptr folds Value::Int(1)
      }
      p.cv = &chunk->column(static_cast<size_t>(agg_cols_[a]));
      const bool summable =
          aggs_[a].fn == AggFunc::kSum || aggs_[a].fn == AggFunc::kAvg;
      switch (p.cv->encoding()) {
        case ColumnVector::Encoding::kInt64:
          p.mode = aggs_[a].fn == AggFunc::kCount ? AggMode::kCountCol
                   : summable                     ? AggMode::kSumInt
                                                  : AggMode::kGeneric;
          p.iv = p.cv->ints();
          break;
        case ColumnVector::Encoding::kDouble:
          p.mode = aggs_[a].fn == AggFunc::kCount ? AggMode::kCountCol
                   : summable                     ? AggMode::kSumDbl
                                                  : AggMode::kGeneric;
          p.dv = p.cv->doubles();
          break;
        default:
          p.mode = aggs_[a].fn == AggFunc::kCount ? AggMode::kCountCol
                                                  : AggMode::kGeneric;
          break;
      }
    }
    for (size_t i = 0; i < n; ++i) {
      GroupRef* ref;
      if (kcol != nullptr && !kcol->IsNull(i)) {
        auto [sit, fresh] = int_groups.try_emplace(kcol->ints()[i]);
        if (fresh) sit->second = locate(Tuple{Value::Int(kcol->ints()[i])});
        ref = &sit->second;
      } else {
        Tuple key;
        key.reserve(key_cols_.size());
        for (size_t c : key_cols_) key.push_back(chunk->column(c).GetValue(i));
        ref = &locate(std::move(key));
      }
      GroupState* g = ref->state;
      g->count += 1;
      if (annot.active()) {
        size_t bit = annot.offset();
        if (pcol != nullptr) {
          if (!pcol->IsNull(i)) {
            auto it = std::upper_bound(int_bounds.begin(), int_bounds.end(),
                                       pcol->ints()[i]);
            if (it != int_bounds.begin()) {
              size_t frag = static_cast<size_t>(it - int_bounds.begin()) - 1;
              const size_t num_fragments = int_bounds.size() - 1;
              if (frag >= num_fragments) frag = num_fragments - 1;
              bit += frag;
            }
          }
        } else {
          bit += annot.partition()->FragmentOf(
              chunk->column(annot.attr_index()).GetValue(i));
        }
        if (ref->cached_frag == bit) {
          ++*ref->cached_count;
        } else {
          int64_t& c = g->frag_counts[bit];
          ++c;
          ref->cached_frag = bit;
          ref->cached_count = &c;
        }
      }
      for (size_t a = 0; a < plans.size(); ++a) {
        const AggPlan& p = plans[a];
        AggState& agg = g->aggs[a];
        switch (p.mode) {
          case AggMode::kCountStar:
            agg.nonnull_count += 1;
            break;
          case AggMode::kCountCol:
            if (!p.cv->IsNull(i)) agg.nonnull_count += 1;
            break;
          case AggMode::kSumInt:
            if (!p.cv->IsNull(i)) {
              agg.nonnull_count += 1;
              agg.int_sum += p.iv[i];
            }
            break;
          case AggMode::kSumDbl:
            if (!p.cv->IsNull(i)) {
              agg.nonnull_count += 1;
              agg.saw_double = true;
              agg.dbl_sum += p.dv[i];
            }
            break;
          case AggMode::kGeneric: {
            Value v = p.cv != nullptr ? p.cv->GetValue(i) : Value::Int(1);
            if (!v.is_null()) {
              Status st = ApplyAggValue(&agg, aggs_[a], v, 1);
              IMP_RETURN_NOT_OK(st);
            }
            break;
          }
        }
      }
    }
  }
  *result = FinalizeBuildOutput();
  return true;
}

Result<AnnotatedRelation> IncAggregate::Build(const DeltaContext& ctx) {
  if (options_.kernelized) {
    AnnotatedRelation columnar;
    IMP_ASSIGN_OR_RETURN(bool handled, TryBuildColumnar(ctx, &columnar));
    if (handled) return columnar;
  }
  IMP_ASSIGN_OR_RETURN(AnnotatedRelation in, children_[0]->Build(ctx));
  groups_.clear();
  for (const AnnotatedRow& r : in.rows) {
    Tuple key = GroupKeyOf(r.row);
    auto [it, inserted] = groups_.try_emplace(std::move(key));
    if (inserted) it->second.aggs.resize(aggs_.size());
    Status st = ApplyRow(&it->second, r.row, r.sketch, 1);
    IMP_RETURN_NOT_OK(st);
  }
  return FinalizeBuildOutput();
}

Result<DeltaBatch> IncAggregate::Process(const DeltaContext& ctx) {
  IMP_ASSIGN_OR_RETURN(DeltaBatch in, children_[0]->Process(ctx));
  AnnotatedDelta out;
  if (in.empty()) return DeltaBatch();

  // Lazily snapshot the previous output of each touched group.
  struct PreState {
    bool existed = false;
    Tuple out_row;
    BitVector sketch;
  };
  std::unordered_map<Tuple, PreState, TupleHash, TupleEq> touched;

  // Input rows are consumed through the cursor: borrowed batches are read
  // in place, the group deltas below are freshly built rows either way.
  DeltaBatch::Cursor cursor(in);
  while (const AnnotatedDeltaRow* r = cursor.Next()) {
    Tuple key = GroupKeyOf(r->row);
    auto [it, inserted] = groups_.try_emplace(key);
    if (inserted) it->second.aggs.resize(aggs_.size());
    auto [snap_it, snap_new] = touched.try_emplace(key);
    if (snap_new) {
      bool global_group = group_exprs_.empty();
      snap_it->second.existed = GroupExists(it->second) || global_group;
      if (snap_it->second.existed) {
        snap_it->second.out_row = OutputRow(key, it->second);
        snap_it->second.sketch = it->second.SketchOf();
      }
    }
    Status st = ApplyRow(&it->second, r->row, r->sketch, r->mult);
    IMP_RETURN_NOT_OK(st);
  }

  for (auto& [key, pre] : touched) {
    auto it = groups_.find(key);
    IMP_CHECK(it != groups_.end());
    const GroupState& state = it->second;
    bool exists_now = GroupExists(state) || group_exprs_.empty();
    if (exists_now) {
      Tuple new_row = OutputRow(key, state);
      BitVector new_sketch = state.SketchOf();
      if (pre.existed && TupleEq{}(pre.out_row, new_row) &&
          pre.sketch == new_sketch) {
        continue;  // no observable change; skip the Δ-/Δ+ pair
      }
      if (pre.existed) {
        out.Append(std::move(pre.out_row), std::move(pre.sketch), -1);
      }
      out.Append(std::move(new_row), std::move(new_sketch), +1);
    } else {
      if (pre.existed) {
        out.Append(std::move(pre.out_row), std::move(pre.sketch), -1);
      }
      if (state.count == 0) groups_.erase(it);  // group fully deleted
    }
  }
  return DeltaBatch::OwnedOf(std::move(out));
}

size_t IncAggregate::StateBytes() const {
  size_t bytes = sizeof(*this);
  for (const auto& [key, state] : groups_) {
    bytes += TupleMemoryBytes(key) + state.MemoryBytes();
  }
  return bytes;
}

void IncAggregate::SaveState(SerdeWriter* writer) const {
  writer->WriteU64(groups_.size());
  for (const auto& [key, state] : groups_) {
    writer->WriteTuple(key);
    writer->WriteI64(state.count);
    writer->WriteU64(state.frag_counts.size());
    for (const auto& [frag, count] : state.frag_counts) {
      writer->WriteU64(frag);
      writer->WriteI64(count);
    }
    writer->WriteU64(state.aggs.size());
    for (const AggState& agg : state.aggs) {
      writer->WriteI64(agg.nonnull_count);
      writer->WriteI64(agg.int_sum);
      writer->WriteDouble(agg.dbl_sum);
      writer->WriteBool(agg.saw_double);
      writer->WriteU64(agg.values.size());
      for (const auto& [v, count] : agg.values) {
        writer->WriteValue(v);
        writer->WriteI64(count);
      }
      writer->WriteI64(agg.overflow);
    }
  }
}

Status IncAggregate::LoadState(SerdeReader* reader) {
  groups_.clear();
  IMP_ASSIGN_OR_RETURN(uint64_t num_groups, reader->ReadU64());
  for (uint64_t g = 0; g < num_groups; ++g) {
    IMP_ASSIGN_OR_RETURN(Tuple key, reader->ReadTuple());
    GroupState state;
    IMP_ASSIGN_OR_RETURN(state.count, reader->ReadI64());
    IMP_ASSIGN_OR_RETURN(uint64_t num_frags, reader->ReadU64());
    for (uint64_t f = 0; f < num_frags; ++f) {
      IMP_ASSIGN_OR_RETURN(uint64_t frag, reader->ReadU64());
      IMP_ASSIGN_OR_RETURN(int64_t count, reader->ReadI64());
      state.frag_counts[frag] = count;
    }
    IMP_ASSIGN_OR_RETURN(uint64_t num_aggs, reader->ReadU64());
    if (num_aggs != aggs_.size()) {
      return Status::Internal("aggregate state does not match plan");
    }
    state.aggs.resize(num_aggs);
    for (uint64_t a = 0; a < num_aggs; ++a) {
      AggState& agg = state.aggs[a];
      IMP_ASSIGN_OR_RETURN(agg.nonnull_count, reader->ReadI64());
      IMP_ASSIGN_OR_RETURN(agg.int_sum, reader->ReadI64());
      IMP_ASSIGN_OR_RETURN(agg.dbl_sum, reader->ReadDouble());
      IMP_ASSIGN_OR_RETURN(agg.saw_double, reader->ReadBool());
      IMP_ASSIGN_OR_RETURN(uint64_t num_values, reader->ReadU64());
      for (uint64_t v = 0; v < num_values; ++v) {
        IMP_ASSIGN_OR_RETURN(Value value, reader->ReadValue());
        IMP_ASSIGN_OR_RETURN(int64_t count, reader->ReadI64());
        agg.values[value] = count;
      }
      IMP_ASSIGN_OR_RETURN(agg.overflow, reader->ReadI64());
    }
    groups_.emplace(std::move(key), std::move(state));
  }
  return Status::OK();
}

}  // namespace imp
