// The in-memory backend database: catalog + versioned updates + delta scans.
//
// Stands in for the paper's PostgreSQL backend. It provides exactly the
// backend surface IMP needs (Sec. 2 / Sec. 7): applying updates under a
// monotonically increasing statement-level snapshot version, fetching the
// (optionally pre-filtered) delta between two versions, and evaluating
// queries / delta joins (via exec::Executor, which takes a const Database&).
//
// Versioning is epoch-aware (storage/version_clock.h): every statement's
// version is first *allocated*, then *applied* (base rows + staged delta
// records), then *published*. StableVersion() — the highest version whose
// every predecessor is fully published — is the watermark maintenance
// rounds cut at; CurrentVersion() is the highest allocated version and may
// run ahead of the watermark while asynchronous ingestion is in flight.
// On the synchronous Insert/Delete path the three steps happen under the
// caller, so the two counters always coincide there.
//
// Concurrency: the synchronous mutators and the catalog are single-session
// as before. The asynchronous ingestion path (AllocateVersion / Stage* /
// PublishVersion, driven by the middleware's single ingestion worker) is
// safe against concurrent readers on two levels:
//   * delta-log readers (ScanDelta / PendingDeltaCount / HasPendingDelta)
//     see only each table log's published prefix — per-table ("striped")
//     locks plus an atomic publication step, no global latch;
//   * base-table readers (query execution, maintenance) exclude in-flight
//     appliers via the session lock: the worker applies each statement
//     under WriteSession(), readers hold ReadSession() for their span.

#ifndef IMP_STORAGE_DATABASE_H_
#define IMP_STORAGE_DATABASE_H_

#include <functional>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "storage/table.h"
#include "storage/version_clock.h"

namespace imp {

/// A batch of signed delta rows for one table, in log order.
struct TableDelta {
  std::string table;
  std::vector<DeltaRecord> records;

  bool empty() const { return records.empty(); }
  size_t size() const { return records.size(); }
};

class Database {
 public:
  Database() = default;

  /// Create an empty table; fails if the name exists.
  Status CreateTable(const std::string& name, Schema schema);
  // Catalog lookups take string_views (the table map's transparent
  // comparator resolves them without building a std::string per call) so
  // hot-path callers holding cached table names never allocate here.
  bool HasTable(std::string_view name) const;
  const Table* GetTable(std::string_view name) const;
  Table* GetMutableTable(std::string_view name);
  std::vector<std::string> TableNames() const;

  /// Bulk load without delta logging or version bump (initial load; the
  /// paper's experiments capture sketches only after loading).
  Status BulkLoad(const std::string& table, const std::vector<Tuple>& rows);

  /// Insert rows as one statement: appends to base data and delta log,
  /// bumps the snapshot version. Returns the new version. Synchronous:
  /// the version is allocated, applied and published under the caller.
  Result<uint64_t> Insert(const std::string& table,
                          const std::vector<Tuple>& rows);

  /// Delete rows matching `pred` as one statement (at most `limit` rows;
  /// SIZE_MAX = no limit). Returns the new version.
  Result<uint64_t> Delete(const std::string& table,
                          const std::function<bool(const Tuple&)>& pred,
                          size_t limit = SIZE_MAX);

  /// Highest allocated snapshot version (0 before any update). May exceed
  /// StableVersion() while asynchronous ingestion is in flight.
  uint64_t CurrentVersion() const { return clock_.allocated(); }

  /// Highest fully-published version: every statement <= this version has
  /// been applied and its delta records are visible. The epoch cut for
  /// maintenance rounds.
  uint64_t StableVersion() const { return clock_.stable(); }

  // --- Epoch-aware append path (asynchronous ingestion) -------------------
  //
  // The middleware's ingestion worker drives one statement through
  //   v = AllocateVersion();             (at enqueue: v is the ticket)
  //   StageInsert/StageDelete(..., v);   (at apply, under WriteSession)
  //   PublishVersion(table, v);
  // Statements must be applied in allocation order (the bounded MPSC
  // queue's pop order); each table's log then keeps non-decreasing
  // versions, which the window binary search relies on.

  /// Reserve the next statement version without touching storage.
  uint64_t AllocateVersion() { return clock_.Allocate(); }

  /// Apply an insert at a pre-allocated version: append base rows and
  /// stage delta records into `table`'s unpublished log tail.
  Status StageInsert(const std::string& table, const std::vector<Tuple>& rows,
                     uint64_t version);

  /// Apply a delete at a pre-allocated version (at most `limit` rows).
  /// Returns the number of rows removed.
  Result<size_t> StageDelete(const std::string& table,
                             const std::function<bool(const Tuple&)>& pred,
                             uint64_t version, size_t limit = SIZE_MAX);

  /// Publish `version`: make `table`'s staged delta records visible and
  /// advance the stable watermark once the version gap below closes. Also
  /// used to retire the version of a failed statement (a no-op statement
  /// still consumes its version, otherwise the watermark would stall).
  void PublishVersion(const std::string& table, uint64_t version);

  // --- Session lock -------------------------------------------------------

  /// Shared-side guard for base-table readers (query execution, sketch
  /// capture, maintenance rounds). Cheap when uncontended; excludes an
  /// in-flight asynchronous apply for the guard's lifetime.
  std::shared_lock<std::shared_mutex> ReadSession() const {
    return std::shared_lock<std::shared_mutex>(session_mu_);
  }
  /// Exclusive-side guard the ingestion worker holds while applying one
  /// statement (and the synchronous update path holds around its apply).
  std::unique_lock<std::shared_mutex> WriteSession() const {
    return std::unique_lock<std::shared_mutex>(session_mu_);
  }

  /// Fetch the signed delta of `table` in the half-open version interval
  /// (from_version, to_version]. If `pred` is set, only rows satisfying it
  /// are returned — this implements IMP's "filtering deltas based on
  /// selections" push-down (Sec. 7.2). Only published records are visible;
  /// the log's published versions are non-decreasing, so the window start
  /// is binary-searched: a small stale tail of a long-lived log costs
  /// O(window), not O(log length).
  TableDelta ScanDelta(std::string_view table, uint64_t from_version,
                       uint64_t to_version,
                       const std::function<bool(const Tuple&)>& pred = {}) const;

  /// Number of published delta rows in (from_version, current] for `table`.
  size_t PendingDeltaCount(std::string_view table,
                           uint64_t from_version) const;

  /// True iff `table` has any published delta row newer than `from_version`.
  /// Wait-free (two atomic loads): staleness tests on the maintenance hot
  /// path use this instead of counting the whole log, and it is safe
  /// against a concurrent in-flight writer.
  bool HasPendingDelta(std::string_view table, uint64_t from_version) const;

  /// Truncate every table's delta log up to `version` (drop records with
  /// version <= it). Driven by the middleware after a MaintainAll round
  /// with the minimum valid_version across all sketch shards: no sketch
  /// will ever re-scan below that watermark. Safe against concurrent
  /// window scans and the in-flight ingestion writer — each log's internal
  /// lock serializes the erase, and only the published prefix below every
  /// active round's scan window is removed.
  void TruncateDeltaLogs(uint64_t version);

  /// Key-value blob store used by the middleware to persist incremental
  /// operator state in the backend (Sec. 2: eviction / restart recovery).
  void PutStateBlob(const std::string& key, std::string blob) {
    state_blobs_[key] = std::move(blob);
  }
  const std::string* GetStateBlob(const std::string& key) const {
    auto it = state_blobs_.find(key);
    return it == state_blobs_.end() ? nullptr : &it->second;
  }
  void EraseStateBlob(const std::string& key) { state_blobs_.erase(key); }

  size_t MemoryBytes() const;

 private:
  /// Transparent comparator: find() accepts string_views (heterogeneous
  /// lookup) so per-call key strings are never built on the hot path.
  std::map<std::string, std::unique_ptr<Table>, std::less<>> tables_;
  VersionClock clock_;
  mutable std::shared_mutex session_mu_;
  std::map<std::string, std::string> state_blobs_;
};

}  // namespace imp

#endif  // IMP_STORAGE_DATABASE_H_
