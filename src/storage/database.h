// The in-memory backend database: catalog + versioned updates + delta scans.
//
// Stands in for the paper's PostgreSQL backend. It provides exactly the
// backend surface IMP needs (Sec. 2 / Sec. 7): applying updates under a
// monotonically increasing statement-level snapshot version, fetching the
// (optionally pre-filtered) delta between two versions, and evaluating
// queries / delta joins (via exec::Executor, which takes a const Database&).

#ifndef IMP_STORAGE_DATABASE_H_
#define IMP_STORAGE_DATABASE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace imp {

/// A batch of signed delta rows for one table, in log order.
struct TableDelta {
  std::string table;
  std::vector<DeltaRecord> records;

  bool empty() const { return records.empty(); }
  size_t size() const { return records.size(); }
};

/// Catalog + storage + versioning. Not thread-safe (single-session backend,
/// like the paper's experimental setup).
class Database {
 public:
  Database() = default;

  /// Create an empty table; fails if the name exists.
  Status CreateTable(const std::string& name, Schema schema);
  bool HasTable(const std::string& name) const;
  const Table* GetTable(const std::string& name) const;
  Table* GetMutableTable(const std::string& name);
  std::vector<std::string> TableNames() const;

  /// Bulk load without delta logging or version bump (initial load; the
  /// paper's experiments capture sketches only after loading).
  Status BulkLoad(const std::string& table, const std::vector<Tuple>& rows);

  /// Insert rows as one statement: appends to base data and delta log,
  /// bumps the snapshot version. Returns the new version.
  Result<uint64_t> Insert(const std::string& table,
                          const std::vector<Tuple>& rows);

  /// Delete rows matching `pred` as one statement (at most `limit` rows;
  /// SIZE_MAX = no limit). Returns the new version.
  Result<uint64_t> Delete(const std::string& table,
                          const std::function<bool(const Tuple&)>& pred,
                          size_t limit = SIZE_MAX);

  /// Current snapshot version (0 before any update).
  uint64_t CurrentVersion() const { return version_; }

  /// Fetch the signed delta of `table` in the half-open version interval
  /// (from_version, to_version]. If `pred` is set, only rows satisfying it
  /// are returned — this implements IMP's "filtering deltas based on
  /// selections" push-down (Sec. 7.2). The log's versions are
  /// non-decreasing, so the window start is binary-searched: a small stale
  /// tail of a long-lived log costs O(window), not O(log length).
  TableDelta ScanDelta(const std::string& table, uint64_t from_version,
                       uint64_t to_version,
                       const std::function<bool(const Tuple&)>& pred = {}) const;

  /// Number of delta rows in (from_version, current] for `table`.
  size_t PendingDeltaCount(const std::string& table,
                           uint64_t from_version) const;

  /// True iff `table` has any delta row newer than `from_version`. O(1):
  /// the log is append-only with non-decreasing versions, so only the last
  /// record needs checking. Staleness tests on the maintenance hot path
  /// use this instead of counting the whole log.
  bool HasPendingDelta(const std::string& table, uint64_t from_version) const;

  /// Key-value blob store used by the middleware to persist incremental
  /// operator state in the backend (Sec. 2: eviction / restart recovery).
  void PutStateBlob(const std::string& key, std::string blob) {
    state_blobs_[key] = std::move(blob);
  }
  const std::string* GetStateBlob(const std::string& key) const {
    auto it = state_blobs_.find(key);
    return it == state_blobs_.end() ? nullptr : &it->second;
  }
  void EraseStateBlob(const std::string& key) { state_blobs_.erase(key); }

  size_t MemoryBytes() const;

 private:
  std::map<std::string, std::unique_ptr<Table>> tables_;
  uint64_t version_ = 0;
  std::map<std::string, std::string> state_blobs_;
};

}  // namespace imp

#endif  // IMP_STORAGE_DATABASE_H_
