// The in-memory backend database: catalog + versioned updates + delta scans.
//
// Stands in for the paper's PostgreSQL backend. It provides exactly the
// backend surface IMP needs (Sec. 2 / Sec. 7): applying updates under a
// monotonically increasing statement-level snapshot version, fetching the
// (optionally pre-filtered) delta between two versions, and evaluating
// queries / delta joins (via exec::Executor, which reads through a pinned
// ReadView or the tables' published snapshots).
//
// Versioning is epoch-aware (storage/version_clock.h): every statement's
// version is first *allocated*, then *applied* (base rows + staged delta
// records), then *published*. StableVersion() — the highest version whose
// every predecessor is fully published — is the watermark maintenance
// rounds cut at; CurrentVersion() is the highest allocated version and may
// run ahead of the watermark while asynchronous ingestion is in flight.
// On the synchronous Insert/Delete path the three steps happen under the
// caller, so the two counters always coincide there.
//
// Concurrency — the lock-free read path (no global session lock exists):
//
//   * READERS NEVER LOCK. Base-table readers pin an immutable, epoch-
//     stamped TableSnapshot per table — or a whole-database ReadView
//     (storage/read_view.h) when they need one consistent watermark across
//     tables — via a single atomic load each. Delta-log readers
//     (ScanDelta / PendingDeltaCount / HasPendingDelta) are wait-free
//     against the published tail (storage/delta_log.h). Old snapshots are
//     reclaimed epoch-style when the last pin drops; a writer never waits
//     for or observes readers.
//   * WRITERS STRIPE PER TABLE. Every mutation of a table — the sync
//     Insert/Delete path, the ingestion worker's staged applies, snapshot
//     publication — runs under that table's write stripe
//     (WriteSession(table)); writers to different tables never contend.
//     Publication order inside PublishVersion — deltas, then the table
//     snapshot, then the version clock — is what makes a ReadView opened
//     at stable watermark W see every statement <= W.
//   * The catalog (CreateTable) is setup-time only: creating tables
//     concurrently with readers/writers is unsupported, as in the seed.

#ifndef IMP_STORAGE_DATABASE_H_
#define IMP_STORAGE_DATABASE_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "storage/read_view.h"
#include "storage/table.h"
#include "storage/version_clock.h"

namespace imp {

/// A batch of signed delta rows for one table, in log order.
struct TableDelta {
  std::string table;
  std::vector<DeltaRecord> records;

  bool empty() const { return records.empty(); }
  size_t size() const { return records.size(); }
};

/// Construction-time storage knobs, fixed for the Database's lifetime.
struct DatabaseOptions {
  /// Store chunk columns as unboxed typed vectors (int64/double payloads,
  /// dictionary-or-flat strings) instead of boxed Value vectors. Results
  /// are bit-identical either way; the toggle exists so twin-system tests
  /// and benches can gate equivalence and measure the layout win.
  bool typed_columns = true;
};

class Database {
 public:
  Database() = default;
  explicit Database(DatabaseOptions options) : options_(options) {}

  /// Create an empty table; fails if the name exists. Setup-time only (not
  /// safe against concurrent readers of the catalog).
  Status CreateTable(const std::string& name, Schema schema);
  // Catalog lookups take string_views (the table map's transparent
  // comparator resolves them without building a std::string per call) so
  // hot-path callers holding cached table names never allocate here.
  bool HasTable(std::string_view name) const;
  const Table* GetTable(std::string_view name) const;
  Table* GetMutableTable(std::string_view name);
  std::vector<std::string> TableNames() const;

  /// Bulk load without delta logging or version bump (initial load; the
  /// paper's experiments capture sketches only after loading). Publishes
  /// the loaded rows as the table's next snapshot.
  Status BulkLoad(const std::string& table, const std::vector<Tuple>& rows);

  /// Insert rows as one statement: appends to base data and delta log,
  /// bumps the snapshot version. Returns the new version. Synchronous:
  /// the version is allocated, applied and published under the caller
  /// (holding the table's write stripe).
  Result<uint64_t> Insert(const std::string& table,
                          const std::vector<Tuple>& rows);

  /// Delete rows matching `pred` as one statement (at most `limit` rows;
  /// SIZE_MAX = no limit). Returns the new version.
  Result<uint64_t> Delete(const std::string& table,
                          const std::function<bool(const Tuple&)>& pred,
                          size_t limit = SIZE_MAX);

  /// Highest allocated snapshot version (0 before any update). May exceed
  /// StableVersion() while asynchronous ingestion is in flight.
  uint64_t CurrentVersion() const { return clock_.allocated(); }

  /// Highest fully-published version: every statement <= this version has
  /// been applied and its delta records are visible. The epoch cut for
  /// maintenance rounds and ReadViews.
  uint64_t StableVersion() const { return clock_.stable(); }

  // --- Epoch-aware append path (asynchronous ingestion) -------------------
  //
  // The middleware's ingestion worker drives statements through
  //   v = AllocateVersion();              (at enqueue: v is the ticket)
  //   { WriteSession(table);              (at apply)
  //     StageInsert/StageDelete(..., v); }
  //   PublishVersion(table, v);           (or, batched: one PublishTable
  //                                        per touched table, then
  //                                        RetireVersion per statement)
  // Statements must be applied in allocation order (the bounded MPSC
  // queue's pop order); each table's log then keeps non-decreasing
  // versions, which the window binary search relies on.

  /// Reserve the next statement version without touching storage.
  uint64_t AllocateVersion() { return clock_.Allocate(); }

  /// Apply an insert at a pre-allocated version: append base rows and
  /// stage delta records into `table`'s unpublished log tail. Caller holds
  /// the table's write stripe.
  Status StageInsert(const std::string& table, const std::vector<Tuple>& rows,
                     uint64_t version);

  /// Apply a delete at a pre-allocated version (at most `limit` rows).
  /// Returns the number of rows removed. Caller holds the table's stripe.
  Result<size_t> StageDelete(const std::string& table,
                             const std::function<bool(const Tuple&)>& pred,
                             uint64_t version, size_t limit = SIZE_MAX);

  /// Publish `table`'s staged state: make its staged delta records visible
  /// and swap in the next immutable TableSnapshot. Caller holds the
  /// table's write stripe. One call may cover several staged statements
  /// (the ingestion worker's batched apply publishes once per batch).
  /// Carries the `snapshot.publish` failpoint: a fired failpoint returns
  /// non-OK WITHOUT publishing anything, so a retry is always clean. A
  /// missing table publishes nothing and returns OK (failed statements
  /// flow through here; see PublishVersion).
  Status PublishTable(std::string_view table);

  /// Publication with the system's failure policy baked in: retry the
  /// failpoint-gated publish up to `max_retries` extra times, then FORCE
  /// the publication. Skipping a publication is the one fault this design
  /// cannot absorb — staged-but-unpublished state under an advancing
  /// watermark would let a sketch fast-forward past rows it never saw
  /// (breaking superset safety), and a permanently stalled watermark
  /// livelocks OpenReadView. Publication is an in-memory pointer swap
  /// that cannot genuinely fail, so transient faults retry and a
  /// persistent fault is overridden, loudly: every failed attempt counts
  /// in publish_faults(), every override in forced_publishes(). Returns
  /// the first attempt's error (telemetry) — the publication itself has
  /// ALWAYS completed when this returns.
  Status PublishTableRetrying(std::string_view table, size_t max_retries);

  /// Retry budget the synchronous Insert/Delete path grants its (forced)
  /// publication; the asynchronous worker passes its configured budget.
  static constexpr size_t kSyncPublishRetries = 4;

  /// Retire `version` in the version clock: the statement is fully applied
  /// and published, and the stable watermark advances once the version gap
  /// below closes. Must happen AFTER the owning table's PublishTable so a
  /// ReadView at the advanced watermark finds the data. Also used to
  /// retire the version of a failed statement (a no-op statement still
  /// consumes its version, otherwise the watermark would stall).
  void RetireVersion(uint64_t version) { clock_.Publish(version); }

  /// PublishTable + RetireVersion for one statement (the per-statement
  /// publication path). Caller holds the table's write stripe; a missing
  /// table (failed statement) only retires the version.
  void PublishVersion(const std::string& table, uint64_t version);

  // --- Per-table write stripe ---------------------------------------------

  /// Exclusive guard every writer of `table` holds while applying and
  /// publishing (sync mutators, the ingestion worker, repartitioning's
  /// freeze of one table). Never taken by readers — the read path is
  /// lock-free. The table must exist.
  std::unique_lock<std::mutex> WriteSession(std::string_view table) const;

  // --- Lock-free read path -------------------------------------------------

  /// Pin a consistent set of every table's snapshot at the current stable
  /// watermark (see storage/read_view.h). Wait-free in the absence of a
  /// racing publication; lock-free overall (retries only while publications
  /// land mid-open).
  ReadView OpenReadView() const;

  /// Fetch the signed delta of `table` in the half-open version interval
  /// (from_version, to_version]. If `pred` is set, only rows satisfying it
  /// are returned — this implements IMP's "filtering deltas based on
  /// selections" push-down (Sec. 7.2). Only published records are visible;
  /// wait-free against the in-flight writer and concurrent truncation.
  TableDelta ScanDelta(std::string_view table, uint64_t from_version,
                       uint64_t to_version,
                       const std::function<bool(const Tuple&)>& pred = {}) const;

  /// Number of published delta rows in (from_version, current] for `table`.
  size_t PendingDeltaCount(std::string_view table,
                           uint64_t from_version) const;

  /// True iff `table` has any published delta row newer than `from_version`.
  /// Wait-free (two atomic loads).
  bool HasPendingDelta(std::string_view table, uint64_t from_version) const;

  /// Truncate every table's delta log up to `version` (drop records with
  /// version <= it). Driven by the middleware after a MaintainAll round
  /// with the minimum valid_version across all sketch shards: no sketch
  /// will ever re-scan below that watermark. Safe against concurrent
  /// window scans (pinned log views keep dropped segments alive) and the
  /// in-flight ingestion writer (per-log writer mutex).
  void TruncateDeltaLogs(uint64_t version);

  /// Failed publication attempts observed by PublishTableRetrying /
  /// PublishVersion (injected or genuine), and the subset that exhausted
  /// retries and forced the publication through. Fault telemetry.
  size_t publish_faults() const {
    return publish_faults_.load(std::memory_order_relaxed);
  }
  size_t forced_publishes() const {
    return forced_publishes_.load(std::memory_order_relaxed);
  }

  /// Key-value blob store used by the middleware to persist incremental
  /// operator state in the backend (Sec. 2: eviction / restart recovery).
  void PutStateBlob(const std::string& key, std::string blob) {
    state_blobs_[key] = std::move(blob);
  }
  const std::string* GetStateBlob(const std::string& key) const {
    auto it = state_blobs_.find(key);
    return it == state_blobs_.end() ? nullptr : &it->second;
  }
  void EraseStateBlob(const std::string& key) { state_blobs_.erase(key); }

  size_t MemoryBytes() const;

  /// Cross-table roll-up of the per-table snapshot-index counters
  /// (TableIndexStats), for stats reporting and O(delta) maintenance
  /// gating in the benches.
  struct IndexStatsSnapshot {
    uint64_t shards_built = 0;
    uint64_t shards_reused = 0;
    uint64_t point_probes = 0;
    uint64_t range_probes = 0;
  };
  IndexStatsSnapshot AggregateIndexStats() const;

  /// Cross-table roll-up of the typed-column layout counters, read from the
  /// currently published snapshots: how many chunks carry typed (unboxed)
  /// columns, and how many cells sit in columns that fell back to boxed
  /// storage after a type conflict.
  struct TypedColumnStats {
    uint64_t typed_chunks = 0;
    uint64_t boxed_fallback_cells = 0;
  };
  TypedColumnStats AggregateTypedColumnStats() const;

  /// Bytes held by materialized index shards reachable from the currently
  /// published snapshots (reported separately from data bytes so
  /// carry-forward sharing is measurable).
  size_t IndexBytes() const;

 private:
  /// The actual publication work (deltas, then snapshot) — no failpoint.
  void PublishTableUnchecked(std::string_view table);

  /// Transparent comparator: find() accepts string_views (heterogeneous
  /// lookup) so per-call key strings are never built on the hot path.
  std::map<std::string, std::unique_ptr<Table>, std::less<>> tables_;
  DatabaseOptions options_;
  VersionClock clock_;
  std::map<std::string, std::string> state_blobs_;
  std::atomic<size_t> publish_faults_{0};
  std::atomic<size_t> forced_publishes_{0};
};

}  // namespace imp

#endif  // IMP_STORAGE_DATABASE_H_
