#include "storage/delta_log.h"

#include <algorithm>
#include <mutex>

namespace imp {

void DeltaLog::Append(DeltaRecord rec) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  size_t next = first_offset_ + visible_ + staged_;  // next free global slot
  if (next / kSegmentCapacity == segments_.size()) {
    segments_.push_back(std::make_shared<Segment>());
  }
  last_staged_version_ = rec.version;
  segments_[next / kSegmentCapacity]->slots[next % kSegmentCapacity] =
      std::move(rec);
  ++staged_;
}

void DeltaLog::PublishViewLocked() {
  auto next = std::make_shared<LogView>();
  next->segments = segments_;
  next->first_offset = first_offset_;
  next->count = visible_;
  std::atomic_store_explicit(&view_,
                             std::shared_ptr<const LogView>(std::move(next)),
                             std::memory_order_release);
  published_.store(visible_, std::memory_order_release);
}

void DeltaLog::Publish() {
  std::lock_guard<std::mutex> lock(writer_mu_);
  if (staged_ == 0) return;
  visible_ += staged_;
  staged_ = 0;
  last_published_version_.store(last_staged_version_,
                                std::memory_order_release);
  PublishViewLocked();
}

void DeltaLog::Truncate(uint64_t version) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  // Find the cut within the visible zone only; the staged tail (and any
  // record above the truncation watermark) survives untouched.
  LogView writer_view;
  writer_view.segments = segments_;
  writer_view.first_offset = first_offset_;
  writer_view.count = visible_;
  size_t cut = WindowBegin(writer_view, version);
  if (cut == 0) return;
  first_offset_ += cut;
  visible_ -= cut;
  // Drop whole segments from the front. A reader that pinned the previous
  // view still reaches them through its own shared_ptrs — they are freed
  // with the last pin (epoch-based reclamation), never under a scan.
  size_t drop = first_offset_ / kSegmentCapacity;
  if (drop > 0) {
    segments_.erase(segments_.begin(),
                    segments_.begin() + static_cast<long>(drop));
    first_offset_ %= kSegmentCapacity;
  }
  PublishViewLocked();
}

DeltaRecord DeltaLog::At(size_t i) const {
  std::shared_ptr<const LogView> view = PinView();
  IMP_CHECK(i < view->count);
  return view->record(i);
}

size_t DeltaLog::WindowBegin(const LogView& view, uint64_t from_version) {
  // Binary search over the non-decreasing version column: first visible
  // index with version > from_version.
  size_t lo = 0, hi = view.count;
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (view.record(mid).version > from_version) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

size_t DeltaLog::CountAfter(uint64_t from_version) const {
  std::shared_ptr<const LogView> view = PinView();
  return view->count - WindowBegin(*view, from_version);
}

void DeltaLog::CollectWindow(uint64_t from_version, uint64_t to_version,
                             const std::function<bool(const Tuple&)>& pred,
                             std::vector<DeltaRecord>* out) const {
  std::shared_ptr<const LogView> view = PinView();
  for (size_t i = WindowBegin(*view, from_version); i < view->count; ++i) {
    const DeltaRecord& rec = view->record(i);
    if (rec.version > to_version) break;
    if (pred && !pred(rec.row)) continue;
    out->push_back(rec);
  }
}

size_t DeltaLog::unpublished() const {
  std::lock_guard<std::mutex> lock(writer_mu_);
  return staged_;
}

size_t DeltaLog::MemoryBytes() const {
  std::lock_guard<std::mutex> lock(writer_mu_);
  size_t bytes = 0;
  size_t total = visible_ + staged_;
  for (size_t i = 0; i < total; ++i) {
    size_t g = first_offset_ + i;
    const DeltaRecord& rec =
        segments_[g / kSegmentCapacity]->slots[g % kSegmentCapacity];
    bytes += sizeof(DeltaRecord) + TupleMemoryBytes(rec.row);
  }
  return bytes;
}

}  // namespace imp
