#include "storage/delta_log.h"

#include <algorithm>
#include <mutex>

namespace imp {

void DeltaLog::Append(DeltaRecord rec) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  records_.push_back(std::move(rec));
}

void DeltaLog::Publish() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (!records_.empty()) {
    last_published_version_.store(records_.back().version,
                                  std::memory_order_release);
  }
  published_.store(records_.size(), std::memory_order_release);
}

void DeltaLog::Truncate(uint64_t version) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  size_t published = published_.load(std::memory_order_relaxed);
  size_t cut = WindowBegin(version, published);
  records_.erase(records_.begin(), records_.begin() + cut);
  published_.store(published - cut, std::memory_order_release);
}

DeltaRecord DeltaLog::At(size_t i) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return records_[i];
}

size_t DeltaLog::WindowBegin(uint64_t from_version, size_t published) const {
  auto begin = records_.begin();
  auto it = std::upper_bound(begin, begin + published, from_version,
                             [](uint64_t v, const DeltaRecord& rec) {
                               return v < rec.version;
                             });
  return static_cast<size_t>(it - begin);
}

size_t DeltaLog::CountAfter(uint64_t from_version) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  size_t published = published_.load(std::memory_order_acquire);
  return published - WindowBegin(from_version, published);
}

void DeltaLog::CollectWindow(uint64_t from_version, uint64_t to_version,
                             const std::function<bool(const Tuple&)>& pred,
                             std::vector<DeltaRecord>* out) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  size_t published = published_.load(std::memory_order_acquire);
  for (size_t i = WindowBegin(from_version, published); i < published; ++i) {
    const DeltaRecord& rec = records_[i];
    if (rec.version > to_version) break;
    if (pred && !pred(rec.row)) continue;
    out->push_back(rec);
  }
}

size_t DeltaLog::unpublished() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return records_.size() - published_.load(std::memory_order_acquire);
}

size_t DeltaLog::MemoryBytes() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  size_t bytes = 0;
  for (const DeltaRecord& rec : records_) {
    bytes += sizeof(DeltaRecord) + TupleMemoryBytes(rec.row);
  }
  return bytes;
}

}  // namespace imp
