// ReadView: a pinned, consistent set of table snapshots at a chosen
// watermark — the lock-free replacement for the backend's global read
// session.
//
// A view is opened with Database::OpenReadView(): it reads the stable
// watermark W, pins every table's published TableSnapshot (one atomic load
// each) and validates that no pinned snapshot contains a statement beyond W
// (retrying past a racing publication). The resulting set is exactly the
// database a fully serialized schedule would show at watermark W:
//
//   * every statement <= W is fully published, and the publication order
//     (table snapshot swap BEFORE the version clock retires the statement)
//     means reading stable() >= W happens-after all of their table
//     publications;
//   * no pinned snapshot includes a statement > W (checked per snapshot via
//     its version stamp; on violation the open loop re-reads the watermark
//     and re-pins — the watermark only moves forward, so the loop converges
//     as soon as it observes a quiescent instant between publications).
//
// Holding a view takes NO lock and blocks NO writer: consistency comes
// entirely from immutability, and reclamation is epoch-based through the
// pins — a snapshot (and the chunks/segments only it references) is freed
// when the last view drops it. Query execution, sketch capture, delta-join
// delegation and maintenance rounds all read base data through a view, so
// every consumer observes one frozen watermark for its whole span without
// ever touching a Database-wide latch (the old session_mu_ is gone).

#ifndef IMP_STORAGE_READ_VIEW_H_
#define IMP_STORAGE_READ_VIEW_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <utility>
#include <vector>

#include "storage/table.h"

namespace imp {

class ReadView {
 public:
  struct Entry {
    /// Points into the Database's catalog key (stable: tables are never
    /// dropped and the Database outlives every view).
    std::string_view table;
    std::shared_ptr<const TableSnapshot> snapshot;
  };

  ReadView() = default;
  ReadView(uint64_t watermark, std::vector<Entry> entries)
      : watermark_(watermark), entries_(std::move(entries)) {}

  /// The stable watermark the view is consistent at: the pinned snapshots
  /// collectively equal the database after every statement <= watermark()
  /// and before any other.
  uint64_t watermark() const { return watermark_; }

  /// The pinned snapshot of `table`, or nullptr when the table did not
  /// exist at open time. Allocation-free (binary search over catalog-
  /// ordered entries with string_view keys).
  const TableSnapshot* Find(std::string_view table) const;

  /// Version of the last statement that modified `table` as of this view
  /// (0 for an unknown or never-updated table). The staleness verdict for
  /// a sketch valid at v is simply TableVersion(t) > v — wait-free, and
  /// immune to delta-log truncation racing the probe.
  uint64_t TableVersion(std::string_view table) const {
    const TableSnapshot* snap = Find(table);
    return snap == nullptr ? 0 : snap->version();
  }

  size_t NumTables() const { return entries_.size(); }
  const std::vector<Entry>& entries() const { return entries_; }

 private:
  uint64_t watermark_ = 0;
  std::vector<Entry> entries_;  ///< sorted by table name
};

}  // namespace imp

#endif  // IMP_STORAGE_READ_VIEW_H_
