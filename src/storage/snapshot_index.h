// Chunk-granular index shards: the building blocks of the incremental,
// shareable snapshot indexes.
//
// A shard indexes exactly one (chunk, column) pair and is immutable once
// handed out. Because chunks referenced by published TableSnapshots are
// themselves physically immutable (the write path copy-on-writes a shared
// tail before appending), a shard built for a sealed chunk stays valid for
// every later snapshot that retains the chunk — publication carries the
// shard forward by sharing the chunk's shared_ptr, with zero rebuild work.
// Steady-state index maintenance therefore costs O(delta rows) per
// publication (only the COW tail and delete-rebuilt chunks need new
// shards), not O(table rows) as the old per-snapshot monolithic hash index
// did. Shards reclaim with their chunk via the existing epoch scheme; no
// new lifetime rules.
//
// Two shard kinds exist side by side:
//   - HashShard: value -> ascending row ids, serving point probes
//     (IncJoin's delegated indexed equi-join).
//   - SortedShard: (value, row) run sorted by Value::Compare with NULLs
//     excluded, serving range probes (sketch-safety / zone-filter style
//     range predicates) — exactly SQL comparison semantics, where a NULL
//     never satisfies a range and values follow the global total order.

#ifndef IMP_STORAGE_SNAPSHOT_INDEX_H_
#define IMP_STORAGE_SNAPSHOT_INDEX_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/value.h"
#include "storage/column_vector.h"

namespace imp {

/// Immutable per-chunk point index: value -> row ids in ascending order.
/// NULL values are indexed too (probing with NULL finds the NULL rows),
/// matching the behavior of the monolithic hash index this replaces.
class HashShard {
 public:
  /// Build from the first `num_rows` entries of a chunk column.
  static std::shared_ptr<const HashShard> Build(const ColumnVector& column,
                                                size_t num_rows);

  /// Rows holding `v`, ascending; nullptr when none.
  const std::vector<uint32_t>* Probe(const Value& v) const {
    auto it = buckets_.find(v);
    return it == buckets_.end() ? nullptr : &it->second;
  }

  size_t MemoryBytes() const;

 private:
  std::unordered_map<Value, std::vector<uint32_t>, ValueHash> buckets_;
};

/// Immutable per-chunk ordered run: (value, row) pairs sorted by
/// (Value::Compare, row). NULLs are excluded — a SQL range predicate never
/// matches them.
class SortedShard {
 public:
  /// Build from the first `num_rows` entries of a chunk column. Typed
  /// encodings sort on the raw payload (no Value::Compare in the hot
  /// comparator) and box each value once at materialization.
  static std::shared_ptr<const SortedShard> Build(const ColumnVector& column,
                                                  size_t num_rows);

  /// True when some entry lies in the bound range. A null `lo` / `hi`
  /// pointer means unbounded on that side; inclusivity flags select
  /// <= / < semantics per bound. O(log n).
  bool AnyInRange(const Value* lo, bool lo_inclusive, const Value* hi,
                  bool hi_inclusive) const;

  /// Append every row whose value lies in the bound range to `*rows`, in
  /// ascending row order (so callers can reproduce scan emission order
  /// bit-identically).
  void CollectRange(const Value* lo, bool lo_inclusive, const Value* hi,
                    bool hi_inclusive, std::vector<uint32_t>* rows) const;

  /// Number of indexed (non-null) entries.
  size_t size() const { return entries_.size(); }

  size_t MemoryBytes() const;

 private:
  using Entry = std::pair<Value, uint32_t>;
  /// [first, last) span of entries_ within the bound range.
  std::pair<size_t, size_t> Span(const Value* lo, bool lo_inclusive,
                                 const Value* hi, bool hi_inclusive) const;

  std::vector<Entry> entries_;
};

}  // namespace imp

#endif  // IMP_STORAGE_SNAPSHOT_INDEX_H_
