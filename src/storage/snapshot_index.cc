#include "storage/snapshot_index.h"

#include <algorithm>

namespace imp {

std::shared_ptr<const HashShard> HashShard::Build(const ColumnVector& column,
                                                  size_t num_rows) {
  auto shard = std::make_shared<HashShard>();
  shard->buckets_.reserve(num_rows);
  if (column.encoding() == ColumnVector::Encoding::kBoxed) {
    const std::vector<Value>& vals = column.boxed();
    for (uint32_t r = 0; r < num_rows; ++r) {
      shard->buckets_[vals[r]].push_back(r);
    }
  } else {
    // Typed encodings rebox each cell exactly once into its bucket key.
    for (uint32_t r = 0; r < num_rows; ++r) {
      shard->buckets_[column.GetValue(r)].push_back(r);
    }
  }
  return shard;
}

size_t HashShard::MemoryBytes() const {
  size_t bytes = sizeof(HashShard);
  // Bucket-array + node overhead, approximated as one pointer-sized slot
  // per bucket plus the node payloads.
  bytes += buckets_.bucket_count() * sizeof(void*);
  for (const auto& [v, rows] : buckets_) {
    bytes += v.MemoryBytes() + sizeof(rows) + rows.capacity() * sizeof(uint32_t);
  }
  return bytes;
}

namespace {

/// Sort (raw value, row) pairs replicating Value::Compare's three-way form
/// exactly — `<` then `>` then row tie-break — so a NaN (which Compare
/// treats as equal to everything) lands in the same position the boxed
/// comparator would put it.
template <typename T>
void SortRawRun(std::vector<std::pair<T, uint32_t>>* run) {
  std::sort(run->begin(), run->end(),
            [](const std::pair<T, uint32_t>& a, const std::pair<T, uint32_t>& b) {
              int c = a.first < b.first ? -1 : (a.first > b.first ? 1 : 0);
              if (c != 0) return c < 0;
              return a.second < b.second;
            });
}

}  // namespace

std::shared_ptr<const SortedShard> SortedShard::Build(
    const ColumnVector& column, size_t num_rows) {
  auto shard = std::make_shared<SortedShard>();
  shard->entries_.reserve(num_rows);
  switch (column.encoding()) {
    case ColumnVector::Encoding::kUntyped:
      return shard;  // all NULL: nothing to index
    case ColumnVector::Encoding::kInt64: {
      std::vector<std::pair<int64_t, uint32_t>> run;
      run.reserve(num_rows);
      const int64_t* vals = column.ints();
      for (uint32_t r = 0; r < num_rows; ++r) {
        if (column.has_nulls() && column.nulls().Test(r)) continue;
        run.emplace_back(vals[r], r);
      }
      SortRawRun(&run);
      for (const auto& [v, r] : run) {
        shard->entries_.emplace_back(Value::Int(v), r);
      }
      return shard;
    }
    case ColumnVector::Encoding::kDouble: {
      std::vector<std::pair<double, uint32_t>> run;
      run.reserve(num_rows);
      const double* vals = column.doubles();
      for (uint32_t r = 0; r < num_rows; ++r) {
        if (column.has_nulls() && column.nulls().Test(r)) continue;
        run.emplace_back(vals[r], r);
      }
      SortRawRun(&run);
      for (const auto& [v, r] : run) {
        shard->entries_.emplace_back(Value::Double(v), r);
      }
      return shard;
    }
    case ColumnVector::Encoding::kDictString:
    case ColumnVector::Encoding::kFlatString: {
      // string_view comparison == std::string::compare sign == the string
      // leg of Value::Compare.
      std::vector<std::pair<std::string_view, uint32_t>> run;
      run.reserve(num_rows);
      for (uint32_t r = 0; r < num_rows; ++r) {
        if (column.has_nulls() && column.nulls().Test(r)) continue;
        run.emplace_back(column.StringAt(r), r);
      }
      std::sort(run.begin(), run.end(),
                [](const std::pair<std::string_view, uint32_t>& a,
                   const std::pair<std::string_view, uint32_t>& b) {
                  int c = a.first.compare(b.first);
                  if (c != 0) return c < 0;
                  return a.second < b.second;
                });
      for (const auto& [v, r] : run) {
        shard->entries_.emplace_back(Value::String(std::string(v)), r);
      }
      return shard;
    }
    case ColumnVector::Encoding::kBoxed:
      break;
  }
  const std::vector<Value>& vals = column.boxed();
  for (uint32_t r = 0; r < num_rows; ++r) {
    if (vals[r].is_null()) continue;
    shard->entries_.emplace_back(vals[r], r);
  }
  std::sort(shard->entries_.begin(), shard->entries_.end(),
            [](const Entry& a, const Entry& b) {
              int c = a.first.Compare(b.first);
              if (c != 0) return c < 0;
              return a.second < b.second;
            });
  return shard;
}

std::pair<size_t, size_t> SortedShard::Span(const Value* lo, bool lo_inclusive,
                                            const Value* hi,
                                            bool hi_inclusive) const {
  auto value_less = [](const Entry& e, const Value& v) {
    return e.first.Compare(v) < 0;
  };
  auto less_value = [](const Value& v, const Entry& e) {
    return v.Compare(e.first) < 0;
  };
  size_t first = 0;
  size_t last = entries_.size();
  if (lo != nullptr) {
    first = lo_inclusive
                ? std::lower_bound(entries_.begin(), entries_.end(), *lo,
                                   value_less) -
                      entries_.begin()
                : std::upper_bound(entries_.begin(), entries_.end(), *lo,
                                   less_value) -
                      entries_.begin();
  }
  if (hi != nullptr) {
    last = hi_inclusive
               ? std::upper_bound(entries_.begin(), entries_.end(), *hi,
                                  less_value) -
                     entries_.begin()
               : std::lower_bound(entries_.begin(), entries_.end(), *hi,
                                  value_less) -
                     entries_.begin();
  }
  if (last < first) last = first;
  return {first, last};
}

bool SortedShard::AnyInRange(const Value* lo, bool lo_inclusive,
                             const Value* hi, bool hi_inclusive) const {
  auto [first, last] = Span(lo, lo_inclusive, hi, hi_inclusive);
  return first < last;
}

void SortedShard::CollectRange(const Value* lo, bool lo_inclusive,
                               const Value* hi, bool hi_inclusive,
                               std::vector<uint32_t>* rows) const {
  auto [first, last] = Span(lo, lo_inclusive, hi, hi_inclusive);
  const size_t base = rows->size();
  rows->reserve(base + (last - first));
  for (size_t i = first; i < last; ++i) rows->push_back(entries_[i].second);
  // Entries are value-ordered; emission must be row-ordered.
  std::sort(rows->begin() + base, rows->end());
}

size_t SortedShard::MemoryBytes() const {
  size_t bytes = sizeof(SortedShard) + entries_.capacity() * sizeof(Entry);
  // The capacity term covers the inline Value; add only string heap bytes.
  for (const Entry& e : entries_) bytes += e.first.MemoryBytes() - sizeof(Value);
  return bytes;
}

}  // namespace imp
