#include "storage/read_view.h"

#include <algorithm>

namespace imp {

const TableSnapshot* ReadView::Find(std::string_view table) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), table,
      [](const Entry& e, std::string_view t) { return e.table < t; });
  if (it == entries_.end() || it->table != table) return nullptr;
  return it->snapshot.get();
}

}  // namespace imp
