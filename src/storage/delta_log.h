// A per-table append-only delta log with an explicit publication step, so
// delta scans are safe against in-flight writers (the async ingestion
// worker appending a statement's records while maintenance probes
// staleness).
//
// The log has two zones:
//
//     [0, published)            — visible to every reader,
//     [published, appended)     — the in-flight tail of the statement the
//                                 writer is currently applying; invisible.
//
// Append() stages records into the tail; Publish() moves the boundary in
// one release-store once the statement is fully applied. Versions are
// non-decreasing across the published prefix (statements are applied in
// allocation order), so window scans binary-search the start.
//
// Concurrency contract (the "striped" part: each table's log has its own
// lock, so writers to different tables and readers of different tables
// never contend on a global latch):
//   * writers (Append / Publish) must be externally serialized per table —
//     the Database's sync path and the single async ingestion worker both
//     guarantee this;
//   * Truncate MAY race Append/Publish and any reader: it takes the log's
//     exclusive lock and only erases a prefix of the published zone, so the
//     staged tail and every record a concurrent window scan can still need
//     (versions above the truncation watermark) survive untouched;
//   * HasRecordAfter() and last_published_version() are wait-free (atomics
//     only) — they back the O(1) staleness probe on the maintenance hot
//     path and never touch record storage;
//   * window scans / counts take the shared side of the log's lock, so a
//     concurrent Append's vector growth cannot move records under them.

#ifndef IMP_STORAGE_DELTA_LOG_H_
#define IMP_STORAGE_DELTA_LOG_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <shared_mutex>
#include <vector>

#include "common/tuple.h"

namespace imp {

/// Signed, versioned delta record: mult > 0 for insertions (Δ+), mult < 0
/// for deletions (Δ-). `version` is the snapshot id of the statement that
/// produced the change.
struct DeltaRecord {
  Tuple row;
  int64_t mult = 1;
  uint64_t version = 0;
};

class DeltaLog {
 public:
  DeltaLog() = default;
  DeltaLog(const DeltaLog&) = delete;
  DeltaLog& operator=(const DeltaLog&) = delete;

  // --- Writer side (externally serialized per table) ---

  /// Stage one record into the unpublished tail.
  void Append(DeltaRecord rec);

  /// Publish the whole staged tail: all appended records become visible and
  /// last_published_version() advances to the newest record's version.
  void Publish();

  /// Drop published records with version <= `version` (log truncation once
  /// every sketch has been maintained past that point).
  void Truncate(uint64_t version);

  // --- Reader side ---

  /// Number of published records.
  size_t size() const { return published_.load(std::memory_order_acquire); }
  bool empty() const { return size() == 0; }

  /// Copy of published record `i` (i < size()). Takes the shared lock.
  DeltaRecord At(size_t i) const;

  /// Version of the newest published record (0 when none). Wait-free.
  uint64_t last_published_version() const {
    return last_published_version_.load(std::memory_order_acquire);
  }

  /// True iff any published record has version > `from_version`. Wait-free
  /// (the O(1) staleness probe).
  bool HasRecordAfter(uint64_t from_version) const {
    return published_.load(std::memory_order_acquire) > 0 &&
           last_published_version_.load(std::memory_order_acquire) >
               from_version;
  }

  /// Number of published records with version > `from_version`.
  size_t CountAfter(uint64_t from_version) const;

  /// Append every published record in (from_version, to_version] that
  /// passes `pred` (empty = all) to `out`, in log order.
  void CollectWindow(uint64_t from_version, uint64_t to_version,
                     const std::function<bool(const Tuple&)>& pred,
                     std::vector<DeltaRecord>* out) const;

  /// Records staged but not yet published (tests / introspection).
  size_t unpublished() const;

  size_t MemoryBytes() const;

 private:
  /// Index of the first published record with version > from_version.
  /// Caller holds mu_ (any side).
  size_t WindowBegin(uint64_t from_version, size_t published) const;

  mutable std::shared_mutex mu_;  ///< guards records_
  std::vector<DeltaRecord> records_;
  std::atomic<size_t> published_{0};
  std::atomic<uint64_t> last_published_version_{0};
};

}  // namespace imp

#endif  // IMP_STORAGE_DELTA_LOG_H_
