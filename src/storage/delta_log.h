// A per-table append-only delta log with an explicit publication step and a
// WAIT-FREE read side: window scans, counts and staleness probes never take
// a lock, even while the ingestion worker is appending, publishing, or a
// maintenance round is truncating the log.
//
// The log has two zones:
//
//     [0, published)            — visible to every reader,
//     [published, appended)     — the in-flight tail of the statement(s) the
//                                 writer is currently applying; invisible.
//
// Records live in fixed-capacity segments whose slots never move. The
// visible zone is described by an immutable LogView — the list of segment
// pointers plus a (first_offset, count) window — published via an atomic
// shared_ptr swap (release), exactly the RCU pattern of TableSnapshot:
//
//   * Append() constructs records into pre-allocated slots PAST the
//     published count; no view can see them until Publish() swaps in the
//     next view, whose release/acquire edge orders the slot writes.
//   * Readers pin the view (one atomic load) and index records with plain
//     arithmetic — segment s = g / kSegmentCapacity, slot g % capacity —
//     so window scans binary-search and iterate with zero locks.
//   * Truncate() builds a view that drops a visible prefix (whole segments
//     plus a first_offset into the new head segment). A reader that pinned
//     the old view keeps every segment it can reach alive through the
//     view's shared_ptrs: reclamation is epoch-based via the pins, so a
//     scan can never read freed memory no matter how the sweep races it.
//
// Writer-side serialization: Append/Publish are externally serialized per
// table (the Database's per-table write stripe; the sync path and the
// single ingestion worker). Truncate may be called by maintenance threads
// concurrently with the writer, so all three serialize on the log's small
// internal writer mutex — a writer/writer lock only; readers never touch it.
//
// HasRecordAfter() and last_published_version() remain wait-free atomics —
// they back the O(1) staleness probe and never touch record storage.

#ifndef IMP_STORAGE_DELTA_LOG_H_
#define IMP_STORAGE_DELTA_LOG_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/tuple.h"

namespace imp {

/// Signed, versioned delta record: mult > 0 for insertions (Δ+), mult < 0
/// for deletions (Δ-). `version` is the snapshot id of the statement that
/// produced the change.
struct DeltaRecord {
  Tuple row;
  int64_t mult = 1;
  uint64_t version = 0;
};

class DeltaLog {
 public:
  /// Records per segment. Every segment has exactly this capacity, so a
  /// global record index maps to (segment, slot) with one divide.
  static constexpr size_t kSegmentCapacity = 1024;

  DeltaLog() = default;
  DeltaLog(const DeltaLog&) = delete;
  DeltaLog& operator=(const DeltaLog&) = delete;

  // --- Writer side (Append/Publish externally serialized per table) ---

  /// Stage one record into the unpublished tail.
  void Append(DeltaRecord rec);

  /// Publish the whole staged tail: all appended records become visible and
  /// last_published_version() advances to the newest record's version.
  void Publish();

  /// Drop published records with version <= `version` (log truncation once
  /// every sketch has been maintained past that point). Safe against the
  /// in-flight writer (internal writer mutex) and against every concurrent
  /// reader (pinned views keep dropped segments alive).
  void Truncate(uint64_t version);

  // --- Reader side (wait-free) ---

  /// Number of published records.
  size_t size() const { return published_.load(std::memory_order_acquire); }
  bool empty() const { return size() == 0; }

  /// Copy of published record `i` (i < size(), indexed within the current
  /// view — truncation shifts indices). Tests / introspection.
  DeltaRecord At(size_t i) const;

  /// Version of the newest published record (0 when none). Wait-free.
  uint64_t last_published_version() const {
    return last_published_version_.load(std::memory_order_acquire);
  }

  /// True iff any published record has version > `from_version`. Wait-free
  /// (the O(1) staleness probe).
  bool HasRecordAfter(uint64_t from_version) const {
    return published_.load(std::memory_order_acquire) > 0 &&
           last_published_version_.load(std::memory_order_acquire) >
               from_version;
  }

  /// Number of published records with version > `from_version`.
  size_t CountAfter(uint64_t from_version) const;

  /// Append every published record in (from_version, to_version] that
  /// passes `pred` (empty = all) to `out`, in log order. Versions are
  /// non-decreasing across the published prefix (statements are applied in
  /// allocation order), so the window start is binary-searched: a small
  /// stale tail of a long-lived log costs O(window), not O(log length).
  void CollectWindow(uint64_t from_version, uint64_t to_version,
                     const std::function<bool(const Tuple&)>& pred,
                     std::vector<DeltaRecord>* out) const;

  /// Records staged but not yet published (tests / introspection).
  size_t unpublished() const;

  size_t MemoryBytes() const;

 private:
  /// Fixed-capacity slab of record slots. Slots are default-constructed up
  /// front and assigned by the writer strictly past the published count,
  /// so a slot visible through any view is never written again.
  struct Segment {
    Segment() : slots(new DeltaRecord[kSegmentCapacity]) {}
    std::unique_ptr<DeltaRecord[]> slots;
  };

  /// Immutable description of the visible zone. record(i) addresses the
  /// i-th visible record; the segment list is shared with the writer's
  /// working list (slot storage never moves).
  struct LogView {
    std::vector<std::shared_ptr<Segment>> segments;
    size_t first_offset = 0;  ///< visible start within segments[0]
    size_t count = 0;         ///< number of visible records

    const DeltaRecord& record(size_t i) const {
      size_t g = first_offset + i;
      return segments[g / kSegmentCapacity].get()->slots[g % kSegmentCapacity];
    }
  };

  std::shared_ptr<const LogView> PinView() const {
    return std::atomic_load_explicit(&view_, std::memory_order_acquire);
  }

  /// First visible index in `view` with version > from_version.
  static size_t WindowBegin(const LogView& view, uint64_t from_version);

  /// Build + swap the view for the current writer state. Caller holds
  /// writer_mu_.
  void PublishViewLocked();

  mutable std::mutex writer_mu_;  ///< serializes Append/Publish/Truncate
  // Writer working state (guarded by writer_mu_). The staged zone is
  // [first_offset_ + visible_, first_offset_ + visible_ + staged_) in
  // global slot coordinates over segments_.
  std::vector<std::shared_ptr<Segment>> segments_;
  size_t first_offset_ = 0;  ///< truncated prefix within segments_[0]
  size_t visible_ = 0;       ///< published record count
  size_t staged_ = 0;        ///< appended but unpublished records
  uint64_t last_staged_version_ = 0;

  /// The published view (atomic shared_ptr swap; starts empty non-null).
  std::shared_ptr<const LogView> view_ = std::make_shared<const LogView>();
  std::atomic<size_t> published_{0};
  std::atomic<uint64_t> last_published_version_{0};
};

}  // namespace imp

#endif  // IMP_STORAGE_DELTA_LOG_H_
