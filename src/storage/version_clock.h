// The backend's statement-version lifecycle, extracted from Database's
// ad-hoc counter into an epoch-aware, concurrency-safe clock.
//
// A statement's life has three points:
//   1. Allocate()   — the version id is reserved (the async ingestion
//                     ticket; the statement may not have touched storage
//                     yet),
//   2. apply        — base rows and delta records are written (possibly on
//                     a background worker, invisible to readers),
//   3. Publish(v)   — the statement is fully applied and its delta records
//                     are visible; once every version <= v is published the
//                     stable watermark advances to v.
//
// stable() is the epoch cut maintenance rounds use: sketches maintained up
// to stable() have seen every delta record of every statement <= stable(),
// and no record of an in-flight statement. allocated() (the old
// CurrentVersion) may run ahead of stable() while ingestion is in flight;
// the two coincide on the synchronous path where allocate/apply/publish
// happen under the caller.
//
// Thread safety: Allocate()/allocated()/stable() are wait-free atomics;
// Publish() serializes on a small mutex and tolerates out-of-order
// publication (version v+1 published before v holds the watermark at v-1
// until v lands).

#ifndef IMP_STORAGE_VERSION_CLOCK_H_
#define IMP_STORAGE_VERSION_CLOCK_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <queue>
#include <vector>

namespace imp {

class VersionClock {
 public:
  VersionClock() = default;
  VersionClock(const VersionClock&) = delete;
  VersionClock& operator=(const VersionClock&) = delete;

  /// Reserve the next version id (1-based; 0 means "before any update").
  uint64_t Allocate() {
    return allocated_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Highest allocated version (may exceed stable() while statements are
  /// in flight).
  uint64_t allocated() const {
    return allocated_.load(std::memory_order_acquire);
  }

  /// Highest version v such that every version <= v has been published —
  /// the watermark maintenance rounds cut at.
  uint64_t stable() const { return stable_.load(std::memory_order_acquire); }

  /// Mark `version` fully published. Safe from any thread; out-of-order
  /// publication is held back until the gap closes. Publishing the same
  /// version twice is a programming error.
  void Publish(uint64_t version);

 private:
  std::atomic<uint64_t> allocated_{0};
  std::atomic<uint64_t> stable_{0};
  std::mutex mu_;  ///< guards pending_
  /// Published versions above the watermark, min-first.
  std::priority_queue<uint64_t, std::vector<uint64_t>, std::greater<uint64_t>>
      pending_;
};

}  // namespace imp

#endif  // IMP_STORAGE_VERSION_CLOCK_H_
