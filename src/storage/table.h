// Columnar chunked tables, immutable published table snapshots, and
// per-table delta logs.
//
// This is the storage layer of the in-memory backend that stands in for the
// paper's PostgreSQL instance. Layout follows Sec. 7.1: data is stored in a
// columnar representation for horizontal chunks of a table ("data chunks").
// Every update statement appends signed delta records stamped with the
// statement's snapshot version, which is what IMP later fetches to maintain
// sketches ("we extract the delta between the current version of the
// database and the database instance at the original time of capture").
//
// Concurrency model (the lock-free read path):
//
//   Readers never lock. Every Table publishes an immutable, epoch-stamped
//   TableSnapshot via an RCU-style atomic shared_ptr swap — the same design
//   the middleware uses for SketchSnapshots, pushed down into storage. A
//   reader pins the snapshot (one atomic load) and scans chunks, zone maps
//   and lazily built hash indexes that are guaranteed never to change under
//   it. Reclamation is epoch-based through the pins themselves: an old
//   snapshot (and any chunk only it references) is freed exactly when the
//   last ReadView / pinned pointer drops it — a writer never waits for or
//   even observes readers.
//
//   Writers are serialized per table by the Database's write stripe (one
//   mutex per table, never taken by readers). Appends copy-on-write the
//   tail chunk when a published snapshot still shares it, so published
//   chunk data is physically immutable; deletes rebuild the chunk list off
//   to the side. PublishSnapshot() then swaps in a fresh snapshot whose
//   epoch strictly increases — the monotonicity witness tests assert.
#ifndef IMP_STORAGE_TABLE_H_
#define IMP_STORAGE_TABLE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/schema.h"
#include "common/tuple.h"
#include "storage/delta_log.h"

namespace imp {

/// One horizontal chunk of a table in columnar layout. Each chunk keeps a
/// zone map (per-column min/max, [32] in the paper) so scans with range
/// predicates — in particular the sketch use-rewrite's fragment ranges —
/// can skip whole chunks. This is the physical-design hook that makes
/// provenance-based data skipping actually skip data in our backend.
///
/// Chunks referenced by a published TableSnapshot are immutable; the write
/// path clones a shared tail chunk before appending (copy-on-write).
class DataChunk {
 public:
  static constexpr size_t kDefaultCapacity = 4096;
  /// Minimum rows before a snapshot-shared tail chunk is sealed instead of
  /// cloned on the next append (see Table::AppendRow). Bounds the
  /// copy-on-write cost of a single-row statement to one ≤kSealThreshold
  /// clone while keeping chunks at least this full.
  static constexpr size_t kSealThreshold = 256;

  explicit DataChunk(size_t num_columns)
      : columns_(num_columns), zone_(num_columns), num_rows_(0) {}

  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }
  bool Full() const { return num_rows_ >= kDefaultCapacity; }

  void AppendRow(const Tuple& row);
  /// Value of column `col` in row `row` (bounds-checked in debug builds).
  const Value& At(size_t row, size_t col) const {
    IMP_DCHECK(row < num_rows_ && col < columns_.size());
    return columns_[col][row];
  }
  /// Materialize row `row` as a tuple.
  Tuple GetRow(size_t row) const;

  const std::vector<Value>& column(size_t col) const { return columns_[col]; }

  /// Zone-map entry of a column: min/max over non-null values; `valid` is
  /// false when the column holds no non-null values yet.
  struct ZoneEntry {
    Value min;
    Value max;
    bool valid = false;
  };
  const ZoneEntry& zone(size_t col) const { return zone_[col]; }

  size_t MemoryBytes() const;

 private:
  std::vector<std::vector<Value>> columns_;
  std::vector<ZoneEntry> zone_;
  size_t num_rows_;
};

class Table;

/// The immutable, epoch-stamped published state of one table — the storage
/// twin of the middleware's SketchSnapshot. A pinned snapshot is
/// self-consistent forever: publication swaps the Table's pointer, it never
/// mutates a snapshot that readers may hold. All read-side table access
/// (query execution, sketch capture, delta-join delegation) goes through a
/// snapshot; nothing on this class takes a table or session lock.
class TableSnapshot {
 public:
  TableSnapshot(const Table* table,
                std::vector<std::shared_ptr<const DataChunk>> chunks,
                size_t num_rows, uint64_t version, uint64_t epoch)
      : table_(table),
        chunks_(std::move(chunks)),
        num_rows_(num_rows),
        version_(version),
        epoch_(epoch) {}

  TableSnapshot(const TableSnapshot&) = delete;
  TableSnapshot& operator=(const TableSnapshot&) = delete;

  const std::string& table_name() const;
  const Schema& schema() const;

  size_t num_rows() const { return num_rows_; }
  const std::vector<std::shared_ptr<const DataChunk>>& chunks() const {
    return chunks_;
  }

  /// Version of the last statement that modified the table as of this
  /// snapshot (the table's delta-log watermark at publication; 0 when the
  /// table was never updated). A sketch valid at version v is fresh
  /// against this snapshot iff version() <= v — the wait-free staleness
  /// verdict that replaced the delta-log probe under a read session.
  uint64_t version() const { return version_; }

  /// Publication sequence number, strictly increasing per table — the
  /// monotonicity witness concurrency tests observe.
  uint64_t epoch() const { return epoch_; }

  /// Invoke `fn` on every row (materializing row tuples chunk by chunk).
  void ForEachRow(const std::function<void(const Tuple&)>& fn) const;

  /// Min / max of an integer or double column; used to build range
  /// partitions covering the whole domain.
  std::pair<Value, Value> ColumnMinMax(size_t col) const;

  /// All values of a column (for equi-depth histogram construction).
  std::vector<Value> ColumnValues(size_t col) const;

  /// Position of a row in the snapshot's chunked storage.
  struct RowLoc {
    uint32_t chunk = 0;
    uint32_t row = 0;
  };

  /// Probe the hash index on `col` for rows with value `v`. The index is
  /// built lazily on first use (an access-method cache, so logically
  /// const) and belongs to THIS snapshot — it can never go stale or point
  /// into rows the snapshot does not contain. Returns nullptr when no row
  /// matches. Safe from any number of concurrent readers: the lazy build
  /// is serialized on index_mu_, steady-state probes take the shared side,
  /// and map nodes are stable so a returned pointer outlives the lock.
  const std::vector<RowLoc>* IndexProbe(size_t col, const Value& v) const;

  /// True once an index on `col` has been materialized.
  bool HasIndex(size_t col) const {
    std::shared_lock<std::shared_mutex> lock(index_mu_);
    return hash_indexes_.count(col) > 0;
  }

  size_t MemoryBytes() const;

 private:
  using HashIndex = std::unordered_map<Value, std::vector<RowLoc>, ValueHash>;
  void BuildIndex(size_t col) const;

  const Table* table_;  ///< name/schema only; the Database outlives views
  std::vector<std::shared_ptr<const DataChunk>> chunks_;
  size_t num_rows_;
  uint64_t version_;
  uint64_t epoch_;
  /// Guards hash_indexes_ against concurrent lazy builds; steady-state
  /// probes only take the shared side. Leaf lock.
  mutable std::shared_mutex index_mu_;
  mutable std::map<size_t, HashIndex> hash_indexes_;
};

/// A base table: schema + chunks + append-only delta log + the published
/// snapshot. The mutating members and the writer-side accessors below
/// require the caller to hold the table's write stripe
/// (Database::WriteSession(table)); Snapshot() is the lock-free read side.
class Table {
 public:
  Table(std::string name, Schema schema);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  // --- Read side (lock-free) ----------------------------------------------

  /// Pin the current published snapshot (never null; an empty snapshot is
  /// published at construction). One atomic load, safe from any thread.
  std::shared_ptr<const TableSnapshot> Snapshot() const {
    return std::atomic_load_explicit(&snapshot_, std::memory_order_acquire);
  }

  /// Delta log access (used by Database::ScanDelta). Readers see only the
  /// published prefix, wait-free; records staged by AppendDelta become
  /// visible at the next PublishDeltas().
  const DeltaLog& delta_log() const { return delta_log_; }

  // --- Writer side (caller holds the table's write stripe) ----------------

  size_t NumRows() const { return num_rows_; }
  const std::vector<std::shared_ptr<DataChunk>>& chunks() const {
    return chunks_;
  }

  /// Append a row to the base data (does not touch the delta log; the
  /// Database wrapper records deltas with version stamps). Clones the tail
  /// chunk first when a published snapshot still shares it.
  void AppendRow(const Tuple& row);

  /// Remove all rows matching `pred`; returns the removed rows. Rebuilds
  /// the chunk storage off to the side (delete is rare relative to scans
  /// in the workloads); pinned snapshots keep the old chunks alive.
  std::vector<Tuple> DeleteWhere(
      const std::function<bool(const Tuple&)>& pred);

  /// Remove up to `limit` arbitrary rows matching `pred`.
  std::vector<Tuple> DeleteWhereLimit(
      const std::function<bool(const Tuple&)>& pred, size_t limit);

  /// Invoke `fn` on every row of the WRITER's current state — including
  /// applied-but-unpublished statements (e.g. computing an UPDATE's
  /// modified rows mid-statement). Readers use Snapshot()->ForEachRow.
  void ForEachRow(const std::function<void(const Tuple&)>& fn) const;

  /// Writer-side column min/max over the current applied state.
  std::pair<Value, Value> ColumnMinMax(size_t col) const;

  /// Stage one record into the log's unpublished tail (the Database
  /// wrapper stamps versions and publishes per statement or batch).
  void AppendDelta(DeltaRecord rec) { delta_log_.Append(std::move(rec)); }
  /// Publish every staged record (the statement(s) are fully applied).
  void PublishDeltas() { delta_log_.Publish(); }
  /// Drop delta records at or below `version` (log truncation once every
  /// sketch has been maintained past that point). Unlike the writer API
  /// this MAY be called without the stripe — the log serializes
  /// truncation against its writer internally.
  void TruncateDeltaLog(uint64_t version) { delta_log_.Truncate(version); }

  /// Publish the writer's current chunks as the next immutable snapshot,
  /// stamped with the delta log's published watermark and epoch + 1. The
  /// tail chunk becomes shared with the snapshot (the next append clones
  /// it). Old snapshots stay alive while pinned and are reclaimed with
  /// the last pin.
  void PublishSnapshot();

  /// Epoch of the currently published snapshot (tests / introspection).
  uint64_t SnapshotEpoch() const { return Snapshot()->epoch(); }

  size_t MemoryBytes() const;

  /// The table's write stripe (Database::WriteSession locks it).
  std::mutex& write_stripe() const { return stripe_mu_; }

 private:
  std::string name_;
  Schema schema_;
  std::vector<std::shared_ptr<DataChunk>> chunks_;
  size_t num_rows_ = 0;
  uint64_t snapshot_epoch_ = 0;  ///< writer-side; last published epoch
  DeltaLog delta_log_;
  mutable std::mutex stripe_mu_;
  /// The published snapshot (atomic shared_ptr swap; see class comment).
  std::shared_ptr<const TableSnapshot> snapshot_;
};

}  // namespace imp

#endif  // IMP_STORAGE_TABLE_H_
