// Columnar chunked tables and per-table delta logs.
//
// This is the storage layer of the in-memory backend that stands in for the
// paper's PostgreSQL instance. Layout follows Sec. 7.1: data is stored in a
// columnar representation for horizontal chunks of a table ("data chunks").
// Every update statement appends signed delta records stamped with the
// statement's snapshot version, which is what IMP later fetches to maintain
// sketches ("we extract the delta between the current version of the
// database and the database instance at the original time of capture").

#ifndef IMP_STORAGE_TABLE_H_
#define IMP_STORAGE_TABLE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/schema.h"
#include "common/tuple.h"
#include "storage/delta_log.h"

namespace imp {

/// One horizontal chunk of a table in columnar layout. Each chunk keeps a
/// zone map (per-column min/max, [32] in the paper) so scans with range
/// predicates — in particular the sketch use-rewrite's fragment ranges —
/// can skip whole chunks. This is the physical-design hook that makes
/// provenance-based data skipping actually skip data in our backend.
class DataChunk {
 public:
  static constexpr size_t kDefaultCapacity = 4096;

  explicit DataChunk(size_t num_columns)
      : columns_(num_columns), zone_(num_columns), num_rows_(0) {}

  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }
  bool Full() const { return num_rows_ >= kDefaultCapacity; }

  void AppendRow(const Tuple& row);
  /// Value of column `col` in row `row` (bounds-checked in debug builds).
  const Value& At(size_t row, size_t col) const {
    IMP_DCHECK(row < num_rows_ && col < columns_.size());
    return columns_[col][row];
  }
  /// Materialize row `row` as a tuple.
  Tuple GetRow(size_t row) const;

  const std::vector<Value>& column(size_t col) const { return columns_[col]; }

  /// Zone-map entry of a column: min/max over non-null values; `valid` is
  /// false when the column holds no non-null values yet.
  struct ZoneEntry {
    Value min;
    Value max;
    bool valid = false;
  };
  const ZoneEntry& zone(size_t col) const { return zone_[col]; }

  size_t MemoryBytes() const;

 private:
  std::vector<std::vector<Value>> columns_;
  std::vector<ZoneEntry> zone_;
  size_t num_rows_;
};

/// A base table: schema + chunks + append-only delta log.
class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t NumRows() const { return num_rows_; }
  const std::vector<DataChunk>& chunks() const { return chunks_; }

  /// Append a row to the base data (does not touch the delta log; the
  /// Database wrapper records deltas with version stamps).
  void AppendRow(const Tuple& row);

  /// Remove all rows matching `pred`; returns the removed rows. Rebuilds
  /// the chunk storage (delete is rare relative to scans in the workloads).
  std::vector<Tuple> DeleteWhere(
      const std::function<bool(const Tuple&)>& pred);

  /// Remove up to `limit` arbitrary rows matching `pred`.
  std::vector<Tuple> DeleteWhereLimit(
      const std::function<bool(const Tuple&)>& pred, size_t limit);

  /// Invoke `fn` on every row (materializing row tuples chunk by chunk).
  void ForEachRow(const std::function<void(const Tuple&)>& fn) const;

  /// Delta log access (used by Database::ScanDelta). Readers see only the
  /// published prefix; records staged by AppendDelta become visible at the
  /// next PublishDeltas().
  const DeltaLog& delta_log() const { return delta_log_; }
  /// Stage one record into the log's unpublished tail (writer-serialized;
  /// the Database wrapper stamps versions and publishes per statement).
  void AppendDelta(DeltaRecord rec) { delta_log_.Append(std::move(rec)); }
  /// Publish every staged record (the statement is fully applied).
  void PublishDeltas() { delta_log_.Publish(); }
  /// Drop delta records at or below `version` (log truncation once every
  /// sketch has been maintained past that point).
  void TruncateDeltaLog(uint64_t version) { delta_log_.Truncate(version); }

  /// Min / max of an integer or double column over the base data; used to
  /// build range partitions covering the whole domain.
  std::pair<Value, Value> ColumnMinMax(size_t col) const;

  /// All values of a column (for equi-depth histogram construction).
  std::vector<Value> ColumnValues(size_t col) const;

  /// Position of a row in the chunked storage.
  struct RowLoc {
    uint32_t chunk = 0;
    uint32_t row = 0;
  };

  /// Probe the hash index on `col` for rows with value `v`. The index is
  /// built lazily on first use (an access-method cache, so logically
  /// const), kept up to date by AppendRow and dropped by DeleteWhere*.
  /// Returns nullptr when no row matches. Safe to call from concurrent
  /// readers (parallel maintenance probes indexes from worker threads; the
  /// lazy build is serialized on index_mu_) as long as no writer mutates
  /// the table — writers are never concurrent with maintenance.
  const std::vector<RowLoc>* IndexProbe(size_t col, const Value& v) const;

  /// True once an index on `col` has been materialized.
  bool HasIndex(size_t col) const {
    std::shared_lock<std::shared_mutex> lock(index_mu_);
    return hash_indexes_.count(col) > 0;
  }

  size_t MemoryBytes() const;

 private:
  using HashIndex = std::unordered_map<Value, std::vector<RowLoc>, ValueHash>;
  void BuildIndex(size_t col) const;

  std::string name_;
  Schema schema_;
  std::vector<DataChunk> chunks_;
  size_t num_rows_ = 0;
  DeltaLog delta_log_;
  /// Guards hash_indexes_ against concurrent lazy builds from parallel
  /// maintenance workers; steady-state probes only take the shared side.
  /// Writer paths (AppendRow, DeleteWhere*) touch the map unlocked — they
  /// never run concurrently with readers.
  mutable std::shared_mutex index_mu_;
  mutable std::map<size_t, HashIndex> hash_indexes_;
};

}  // namespace imp

#endif  // IMP_STORAGE_TABLE_H_
