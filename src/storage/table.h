// Columnar chunked tables, immutable published table snapshots, and
// per-table delta logs.
//
// This is the storage layer of the in-memory backend that stands in for the
// paper's PostgreSQL instance. Layout follows Sec. 7.1: data is stored in a
// columnar representation for horizontal chunks of a table ("data chunks").
// Every update statement appends signed delta records stamped with the
// statement's snapshot version, which is what IMP later fetches to maintain
// sketches ("we extract the delta between the current version of the
// database and the database instance at the original time of capture").
//
// Concurrency model (the lock-free read path):
//
//   Readers never lock. Every Table publishes an immutable, epoch-stamped
//   TableSnapshot via an RCU-style atomic shared_ptr swap — the same design
//   the middleware uses for SketchSnapshots, pushed down into storage. A
//   reader pins the snapshot (one atomic load) and scans chunks, zone maps
//   and lazily built index shards that are guaranteed never to change under
//   it. Reclamation is epoch-based through the pins themselves: an old
//   snapshot (and any chunk only it references) is freed exactly when the
//   last ReadView / pinned pointer drops it — a writer never waits for or
//   even observes readers.
//
//   Index lifetime: indexes are chunk-granular immutable shards
//   (storage/snapshot_index.h) cached on the DataChunk they index. A
//   snapshot's per-column index is an assembly of shard pointers, one per
//   chunk, built lazily on first probe; chunks already carrying a shard
//   (because a predecessor snapshot probed them) are reused as-is, so a
//   publication that appended a handful of rows re-indexes only the COW
//   tail — O(delta rows), not O(table rows). Shards die with their chunk
//   via the same epoch/pin reclamation as the data.
//
//   Writers are serialized per table by the Database's write stripe (one
//   mutex per table, never taken by readers). Appends copy-on-write the
//   tail chunk when a published snapshot still shares it, so published
//   chunk data is physically immutable; deletes rebuild the chunk list off
//   to the side. PublishSnapshot() then swaps in a fresh snapshot whose
//   epoch strictly increases — the monotonicity witness tests assert.
#ifndef IMP_STORAGE_TABLE_H_
#define IMP_STORAGE_TABLE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/schema.h"
#include "common/tuple.h"
#include "storage/column_vector.h"
#include "storage/delta_log.h"
#include "storage/snapshot_index.h"

namespace imp {

/// One horizontal chunk of a table in columnar layout. Each chunk keeps a
/// zone map (per-column min/max, [32] in the paper) so scans with range
/// predicates — in particular the sketch use-rewrite's fragment ranges —
/// can skip whole chunks. This is the physical-design hook that makes
/// provenance-based data skipping actually skip data in our backend.
///
/// Chunks referenced by a published TableSnapshot are immutable; the write
/// path clones a shared tail chunk before appending (copy-on-write).
class DataChunk {
 public:
  static constexpr size_t kDefaultCapacity = 4096;
  /// Minimum rows before a snapshot-shared tail chunk is sealed instead of
  /// cloned on the next append (see Table::AppendRow). Bounds the
  /// copy-on-write cost of a single-row statement to one ≤kSealThreshold
  /// clone while keeping chunks at least this full.
  static constexpr size_t kSealThreshold = 256;

  /// `typed` selects the typed columnar layout (ColumnVector adaptive
  /// encodings) over the legacy boxed vector<Value> layout. Both are
  /// observationally bit-identical; typed is what Database/Table pass by
  /// default.
  explicit DataChunk(size_t num_columns, bool typed = false)
      : columns_(num_columns, ColumnVector(typed)),
        num_rows_(0),
        typed_(typed) {}

  /// Copy the row data (and its inline zone accumulators) but NOT the shard
  /// cache: a COW clone is a fresh, writer-private chunk whose contents
  /// will diverge immediately.
  DataChunk(const DataChunk& other)
      : columns_(other.columns_),
        num_rows_(other.num_rows_),
        typed_(other.typed_) {}
  DataChunk& operator=(const DataChunk&) = delete;

  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }
  bool Full() const { return num_rows_ >= kDefaultCapacity; }
  /// True when this chunk stores typed column vectors (individual columns
  /// may still have reboxed on a type conflict; see BoxedFallbackCells).
  bool typed() const { return typed_; }
  /// Cells of typed-mode columns that had to rebox into the legacy layout
  /// because the column received conflicting value types.
  size_t BoxedFallbackCells() const;

  void AppendRow(const Tuple& row);
  /// Value of column `col` in row `row` (bounds-checked in debug builds).
  /// Reboxes typed cells — by value; use column() for the unboxed payload.
  Value At(size_t row, size_t col) const {
    IMP_DCHECK(row < num_rows_ && col < columns_.size());
    return columns_[col].GetValue(row);
  }
  /// Materialize row `row` as a tuple.
  Tuple GetRow(size_t row) const;

  /// Materialize the selected rows column-at-a-time (ascending row order —
  /// the same order a GetRow-per-set-bit loop would produce).
  std::vector<Tuple> GatherRows(const BitVector& sel) const;

  const ColumnVector& column(size_t col) const { return columns_[col]; }

  /// Zone-map entry of a column: min/max over non-null values; `valid` is
  /// false when the column holds no non-null values yet.
  struct ZoneEntry {
    Value min;
    Value max;
    bool valid = false;
  };
  /// Built on demand from the column's inline min/max accumulators (one
  /// columnar pass shared with the payload append — rows are not re-boxed).
  ZoneEntry zone(size_t col) const;

  /// Lazily build (or fetch the cached) point / ordered index shard for
  /// `col`. The returned shard is immutable and may be shared by any number
  /// of snapshots; `*built_now` reports whether THIS call materialized it
  /// (the O(delta)-maintenance accounting hook). Thread-safe: concurrent
  /// builders are serialized on the chunk's shard mutex. Only valid on
  /// chunks reachable from a published snapshot (physically immutable).
  std::shared_ptr<const HashShard> HashShardFor(size_t col,
                                                bool* built_now) const;
  std::shared_ptr<const SortedShard> SortedShardFor(size_t col,
                                                    bool* built_now) const;
  /// The ordered shard for `col` if some probe already materialized it,
  /// else nullptr — never builds. Lets zone-filter refinement use exact
  /// emptiness checks opportunistically without paying a build.
  std::shared_ptr<const SortedShard> SortedShardIfBuilt(size_t col) const;

  /// Bytes held by materialized index shards on this chunk.
  size_t IndexBytes() const;

  size_t MemoryBytes() const;

 private:
  std::vector<ColumnVector> columns_;
  size_t num_rows_;
  bool typed_;
  /// Shard cache. Guards the maps only; the shards themselves are
  /// immutable. Leaf lock (acquired under a snapshot's index_mu_ during
  /// assembly; shard builds take no further locks).
  mutable std::mutex shard_mu_;
  mutable std::map<size_t, std::shared_ptr<const HashShard>> hash_shards_;
  mutable std::map<size_t, std::shared_ptr<const SortedShard>> sorted_shards_;
};

class Table;

/// Cumulative per-table index maintenance / probe counters. Snapshots are
/// const on the read path, so the counters live on the Table and are
/// atomics (relaxed; they are statistics, not synchronization).
struct TableIndexStats {
  std::atomic<uint64_t> shards_built{0};   ///< shards materialized
  std::atomic<uint64_t> shards_reused{0};  ///< carried forward from a chunk's cache
  std::atomic<uint64_t> point_probes{0};
  std::atomic<uint64_t> range_probes{0};
};

/// The immutable, epoch-stamped published state of one table — the storage
/// twin of the middleware's SketchSnapshot. A pinned snapshot is
/// self-consistent forever: publication swaps the Table's pointer, it never
/// mutates a snapshot that readers may hold. All read-side table access
/// (query execution, sketch capture, delta-join delegation) goes through a
/// snapshot; nothing on this class takes a table or session lock.
class TableSnapshot {
 public:
  /// `warm_hash_cols` / `warm_sorted_cols` name the columns the predecessor
  /// snapshot had indexed: the publication path passes them so index
  /// availability (HasIndex / HasRangeIndex) carries forward across
  /// generations and the first probe on the new snapshot reassembles from
  /// the chunks' cached shards in O(delta).
  TableSnapshot(const Table* table,
                std::vector<std::shared_ptr<const DataChunk>> chunks,
                size_t num_rows, uint64_t version, uint64_t epoch,
                std::vector<size_t> warm_hash_cols = {},
                std::vector<size_t> warm_sorted_cols = {})
      : table_(table),
        chunks_(std::move(chunks)),
        num_rows_(num_rows),
        version_(version),
        epoch_(epoch),
        warm_hash_cols_(std::move(warm_hash_cols)),
        warm_sorted_cols_(std::move(warm_sorted_cols)) {}

  TableSnapshot(const TableSnapshot&) = delete;
  TableSnapshot& operator=(const TableSnapshot&) = delete;

  const std::string& table_name() const;
  const Schema& schema() const;

  size_t num_rows() const { return num_rows_; }
  const std::vector<std::shared_ptr<const DataChunk>>& chunks() const {
    return chunks_;
  }

  /// Version of the last statement that modified the table as of this
  /// snapshot (the table's delta-log watermark at publication; 0 when the
  /// table was never updated). A sketch valid at version v is fresh
  /// against this snapshot iff version() <= v — the wait-free staleness
  /// verdict that replaced the delta-log probe under a read session.
  uint64_t version() const { return version_; }

  /// Publication sequence number, strictly increasing per table — the
  /// monotonicity witness concurrency tests observe.
  uint64_t epoch() const { return epoch_; }

  /// Invoke `fn` on every row (materializing row tuples chunk by chunk).
  void ForEachRow(const std::function<void(const Tuple&)>& fn) const;

  /// Min / max of an integer or double column; used to build range
  /// partitions covering the whole domain.
  std::pair<Value, Value> ColumnMinMax(size_t col) const;

  /// All values of a column (for equi-depth histogram construction).
  std::vector<Value> ColumnValues(size_t col) const;

  /// Position of a row in the snapshot's chunked storage.
  struct RowLoc {
    uint32_t chunk = 0;
    uint32_t row = 0;
  };

  /// Probe the point index on `col` for rows with value `v`, in
  /// chunk-ascending / row-ascending order (the emission order a full scan
  /// would produce). The per-chunk shards are assembled lazily on first
  /// use (an access-method cache, so logically const) and belong to THIS
  /// snapshot's chunks — they can never go stale or point into rows the
  /// snapshot does not contain. Safe from any number of concurrent
  /// readers: assembly is serialized on index_mu_, steady-state probes
  /// take the shared side.
  std::vector<RowLoc> IndexProbe(size_t col, const Value& v) const;
  /// Callback form of IndexProbe for hot paths (no RowLoc vector built).
  void ForEachIndexMatch(size_t col, const Value& v,
                         const std::function<void(const RowLoc&)>& fn) const;

  /// Probe the ordered index on `col` for rows with lo <= value <= hi
  /// (both bounds inclusive), in chunk-ascending / row-ascending order.
  /// NULL rows never match, matching SQL comparison semantics.
  std::vector<RowLoc> IndexRangeProbe(size_t col, const Value& lo,
                                      const Value& hi) const;
  /// General form: null bound pointer = unbounded side, inclusivity flags
  /// select <= / < per bound.
  void ForEachIndexRangeMatch(size_t col, const Value* lo, bool lo_inclusive,
                              const Value* hi, bool hi_inclusive,
                              const std::function<void(const RowLoc&)>& fn) const;

  /// True once a point index on `col` is available: assembled by a probe on
  /// this snapshot, or carried forward warm from the predecessor.
  bool HasIndex(size_t col) const;
  /// Same for the ordered (range-capable) index.
  bool HasRangeIndex(size_t col) const;

  /// Columns with an available point / ordered index (assembled ∪ warm);
  /// the publication path passes these to the successor snapshot so
  /// availability survives generations. Sorted, deduplicated.
  std::vector<size_t> IndexedHashColumns() const;
  std::vector<size_t> IndexedSortedColumns() const;

  /// Bytes held by materialized index shards on this snapshot's chunks
  /// (shared shards are counted once per snapshot).
  size_t IndexBytes() const;

  size_t MemoryBytes() const;

 private:
  using HashShardVec = std::vector<std::shared_ptr<const HashShard>>;
  using SortedShardVec = std::vector<std::shared_ptr<const SortedShard>>;
  /// Assemble (or fetch) the per-chunk shard vector for `col`, counting
  /// built vs reused shards into the owning table's TableIndexStats.
  const HashShardVec& HashShards(size_t col) const;
  const SortedShardVec& SortedShards(size_t col) const;

  const Table* table_;  ///< name/schema only; the Database outlives views
  std::vector<std::shared_ptr<const DataChunk>> chunks_;
  size_t num_rows_;
  uint64_t version_;
  uint64_t epoch_;
  /// Columns the predecessor snapshot had indexed (availability only; the
  /// shards themselves live on the shared chunks). Immutable after ctor.
  std::vector<size_t> warm_hash_cols_;
  std::vector<size_t> warm_sorted_cols_;
  /// Guards the assembly maps against concurrent lazy assembly;
  /// steady-state probes only take the shared side. Map nodes are stable,
  /// so a returned reference outlives the lock.
  mutable std::shared_mutex index_mu_;
  mutable std::map<size_t, HashShardVec> hash_assemblies_;
  mutable std::map<size_t, SortedShardVec> sorted_assemblies_;
};

/// A base table: schema + chunks + append-only delta log + the published
/// snapshot. The mutating members and the writer-side accessors below
/// require the caller to hold the table's write stripe
/// (Database::WriteSession(table)); Snapshot() is the lock-free read side.
class Table {
 public:
  /// `typed_columns` selects the typed ColumnVector chunk layout (default)
  /// over the legacy boxed one for every chunk this table creates; both
  /// layouts are observationally bit-identical.
  Table(std::string name, Schema schema, bool typed_columns = true);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  // --- Read side (lock-free) ----------------------------------------------

  /// Pin the current published snapshot (never null; an empty snapshot is
  /// published at construction). One atomic load, safe from any thread.
  std::shared_ptr<const TableSnapshot> Snapshot() const {
    return std::atomic_load_explicit(&snapshot_, std::memory_order_acquire);
  }

  /// Delta log access (used by Database::ScanDelta). Readers see only the
  /// published prefix, wait-free; records staged by AppendDelta become
  /// visible at the next PublishDeltas().
  const DeltaLog& delta_log() const { return delta_log_; }

  // --- Writer side (caller holds the table's write stripe) ----------------

  size_t NumRows() const { return num_rows_; }
  const std::vector<std::shared_ptr<DataChunk>>& chunks() const {
    return chunks_;
  }

  /// Append a row to the base data (does not touch the delta log; the
  /// Database wrapper records deltas with version stamps). Clones the tail
  /// chunk first when a published snapshot still shares it.
  void AppendRow(const Tuple& row);

  /// Remove all rows matching `pred`; returns the removed rows. Rebuilds
  /// the chunk storage off to the side (delete is rare relative to scans
  /// in the workloads); pinned snapshots keep the old chunks alive.
  std::vector<Tuple> DeleteWhere(
      const std::function<bool(const Tuple&)>& pred);

  /// Remove up to `limit` arbitrary rows matching `pred`.
  std::vector<Tuple> DeleteWhereLimit(
      const std::function<bool(const Tuple&)>& pred, size_t limit);

  /// Invoke `fn` on every row of the WRITER's current state — including
  /// applied-but-unpublished statements (e.g. computing an UPDATE's
  /// modified rows mid-statement). Readers use Snapshot()->ForEachRow.
  void ForEachRow(const std::function<void(const Tuple&)>& fn) const;

  /// Writer-side column min/max over the current applied state.
  std::pair<Value, Value> ColumnMinMax(size_t col) const;

  /// Stage one record into the log's unpublished tail (the Database
  /// wrapper stamps versions and publishes per statement or batch).
  void AppendDelta(DeltaRecord rec) { delta_log_.Append(std::move(rec)); }
  /// Publish every staged record (the statement(s) are fully applied).
  void PublishDeltas() { delta_log_.Publish(); }
  /// Drop delta records at or below `version` (log truncation once every
  /// sketch has been maintained past that point). Unlike the writer API
  /// this MAY be called without the stripe — the log serializes
  /// truncation against its writer internally.
  void TruncateDeltaLog(uint64_t version) { delta_log_.Truncate(version); }

  /// Publish the writer's current chunks as the next immutable snapshot,
  /// stamped with the delta log's published watermark and epoch + 1. The
  /// tail chunk becomes shared with the snapshot (the next append clones
  /// it). Old snapshots stay alive while pinned and are reclaimed with
  /// the last pin.
  void PublishSnapshot();

  /// Epoch of the currently published snapshot (tests / introspection).
  uint64_t SnapshotEpoch() const { return Snapshot()->epoch(); }

  /// Cumulative index shard / probe counters (updated by snapshots on the
  /// const read path; atomics, any thread).
  TableIndexStats& index_stats() const { return index_stats_; }

  size_t MemoryBytes() const;

  /// The table's write stripe (Database::WriteSession locks it).
  std::mutex& write_stripe() const { return stripe_mu_; }

 private:
  std::string name_;
  Schema schema_;
  bool typed_columns_ = true;
  std::vector<std::shared_ptr<DataChunk>> chunks_;
  size_t num_rows_ = 0;
  uint64_t snapshot_epoch_ = 0;  ///< writer-side; last published epoch
  DeltaLog delta_log_;
  mutable TableIndexStats index_stats_;
  mutable std::mutex stripe_mu_;
  /// The published snapshot (atomic shared_ptr swap; see class comment).
  std::shared_ptr<const TableSnapshot> snapshot_;
};

}  // namespace imp

#endif  // IMP_STORAGE_TABLE_H_
