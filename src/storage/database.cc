#include "storage/database.h"

#include <algorithm>

namespace imp {

Status Database::CreateTable(const std::string& name, Schema schema) {
  if (tables_.count(name) > 0) {
    return Status::InvalidArgument("table already exists: " + name);
  }
  tables_[name] = std::make_unique<Table>(name, std::move(schema));
  return Status::OK();
}

bool Database::HasTable(std::string_view name) const {
  return tables_.count(name) > 0;
}

const Table* Database::GetTable(std::string_view name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

Table* Database::GetMutableTable(std::string_view name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, _] : tables_) out.push_back(name);
  return out;
}

Status Database::BulkLoad(const std::string& table,
                          const std::vector<Tuple>& rows) {
  Table* t = GetMutableTable(table);
  if (t == nullptr) return Status::NotFound("no such table: " + table);
  for (const Tuple& row : rows) t->AppendRow(row);
  return Status::OK();
}

Status Database::StageInsert(const std::string& table,
                             const std::vector<Tuple>& rows,
                             uint64_t version) {
  Table* t = GetMutableTable(table);
  if (t == nullptr) return Status::NotFound("no such table: " + table);
  for (const Tuple& row : rows) {
    t->AppendRow(row);
    t->AppendDelta(DeltaRecord{row, /*mult=*/1, version});
  }
  return Status::OK();
}

Result<size_t> Database::StageDelete(
    const std::string& table, const std::function<bool(const Tuple&)>& pred,
    uint64_t version, size_t limit) {
  Table* t = GetMutableTable(table);
  if (t == nullptr) return Status::NotFound("no such table: " + table);
  std::vector<Tuple> removed = t->DeleteWhereLimit(pred, limit);
  size_t count = removed.size();
  for (Tuple& row : removed) {
    t->AppendDelta(DeltaRecord{std::move(row), /*mult=*/-1, version});
  }
  return count;
}

void Database::PublishVersion(const std::string& table, uint64_t version) {
  // A failed statement may target a missing table: retire its version
  // anyway so the stable watermark cannot stall behind it.
  Table* t = GetMutableTable(table);
  if (t != nullptr) t->PublishDeltas();
  clock_.Publish(version);
}

Result<uint64_t> Database::Insert(const std::string& table,
                                  const std::vector<Tuple>& rows) {
  if (!HasTable(table)) return Status::NotFound("no such table: " + table);
  uint64_t v = AllocateVersion();
  Status staged = StageInsert(table, rows, v);
  // Publish even on failure: an allocated version that never publishes
  // would stall the stable watermark forever.
  PublishVersion(table, v);
  IMP_RETURN_NOT_OK(staged);
  return v;
}

Result<uint64_t> Database::Delete(
    const std::string& table, const std::function<bool(const Tuple&)>& pred,
    size_t limit) {
  if (!HasTable(table)) return Status::NotFound("no such table: " + table);
  uint64_t v = AllocateVersion();
  Status staged = StageDelete(table, pred, v, limit).status();
  PublishVersion(table, v);
  IMP_RETURN_NOT_OK(staged);
  return v;
}

TableDelta Database::ScanDelta(
    std::string_view table, uint64_t from_version, uint64_t to_version,
    const std::function<bool(const Tuple&)>& pred) const {
  TableDelta out;
  out.table = std::string(table);
  const Table* t = GetTable(table);
  if (t == nullptr) return out;
  t->delta_log().CollectWindow(from_version, to_version, pred, &out.records);
  return out;
}

size_t Database::PendingDeltaCount(std::string_view table,
                                   uint64_t from_version) const {
  const Table* t = GetTable(table);
  if (t == nullptr) return 0;
  return t->delta_log().CountAfter(from_version);
}

bool Database::HasPendingDelta(std::string_view table,
                               uint64_t from_version) const {
  const Table* t = GetTable(table);
  if (t == nullptr) return false;
  return t->delta_log().HasRecordAfter(from_version);
}

void Database::TruncateDeltaLogs(uint64_t version) {
  for (auto& [_, table] : tables_) table->TruncateDeltaLog(version);
}

size_t Database::MemoryBytes() const {
  size_t bytes = sizeof(Database);
  for (const auto& [_, table] : tables_) bytes += table->MemoryBytes();
  return bytes;
}

}  // namespace imp
