#include "storage/database.h"

#include <algorithm>

namespace imp {

namespace {

/// First delta-log record with version > from_version. Versions are
/// non-decreasing in the append-only log, so a binary search finds the
/// start of the stale window in O(log n) — a small stale tail at the end
/// of a long-lived log costs O(window) instead of O(log length).
std::vector<DeltaRecord>::const_iterator DeltaWindowBegin(
    const std::vector<DeltaRecord>& log, uint64_t from_version) {
  return std::upper_bound(log.begin(), log.end(), from_version,
                          [](uint64_t v, const DeltaRecord& rec) {
                            return v < rec.version;
                          });
}

}  // namespace

Status Database::CreateTable(const std::string& name, Schema schema) {
  if (tables_.count(name) > 0) {
    return Status::InvalidArgument("table already exists: " + name);
  }
  tables_[name] = std::make_unique<Table>(name, std::move(schema));
  return Status::OK();
}

bool Database::HasTable(const std::string& name) const {
  return tables_.count(name) > 0;
}

const Table* Database::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

Table* Database::GetMutableTable(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, _] : tables_) out.push_back(name);
  return out;
}

Status Database::BulkLoad(const std::string& table,
                          const std::vector<Tuple>& rows) {
  Table* t = GetMutableTable(table);
  if (t == nullptr) return Status::NotFound("no such table: " + table);
  for (const Tuple& row : rows) t->AppendRow(row);
  return Status::OK();
}

Result<uint64_t> Database::Insert(const std::string& table,
                                  const std::vector<Tuple>& rows) {
  Table* t = GetMutableTable(table);
  if (t == nullptr) return Status::NotFound("no such table: " + table);
  uint64_t v = ++version_;
  for (const Tuple& row : rows) {
    t->AppendRow(row);
    t->AppendDelta(DeltaRecord{row, /*mult=*/1, v});
  }
  return v;
}

Result<uint64_t> Database::Delete(
    const std::string& table, const std::function<bool(const Tuple&)>& pred,
    size_t limit) {
  Table* t = GetMutableTable(table);
  if (t == nullptr) return Status::NotFound("no such table: " + table);
  uint64_t v = ++version_;
  std::vector<Tuple> removed = t->DeleteWhereLimit(pred, limit);
  for (Tuple& row : removed) {
    t->AppendDelta(DeltaRecord{std::move(row), /*mult=*/-1, v});
  }
  return v;
}

TableDelta Database::ScanDelta(
    const std::string& table, uint64_t from_version, uint64_t to_version,
    const std::function<bool(const Tuple&)>& pred) const {
  TableDelta out;
  out.table = table;
  const Table* t = GetTable(table);
  if (t == nullptr) return out;
  const std::vector<DeltaRecord>& log = t->delta_log();
  for (auto it = DeltaWindowBegin(log, from_version);
       it != log.end() && it->version <= to_version; ++it) {
    if (pred && !pred(it->row)) continue;
    out.records.push_back(*it);
  }
  return out;
}

size_t Database::PendingDeltaCount(const std::string& table,
                                   uint64_t from_version) const {
  const Table* t = GetTable(table);
  if (t == nullptr) return 0;
  const std::vector<DeltaRecord>& log = t->delta_log();
  return static_cast<size_t>(
      std::distance(DeltaWindowBegin(log, from_version), log.end()));
}

bool Database::HasPendingDelta(const std::string& table,
                               uint64_t from_version) const {
  const Table* t = GetTable(table);
  if (t == nullptr || t->delta_log().empty()) return false;
  return t->delta_log().back().version > from_version;
}

size_t Database::MemoryBytes() const {
  size_t bytes = sizeof(Database);
  for (const auto& [_, table] : tables_) bytes += table->MemoryBytes();
  return bytes;
}

}  // namespace imp
