#include "storage/database.h"

namespace imp {

Status Database::CreateTable(const std::string& name, Schema schema) {
  if (tables_.count(name) > 0) {
    return Status::InvalidArgument("table already exists: " + name);
  }
  tables_[name] = std::make_unique<Table>(name, std::move(schema));
  return Status::OK();
}

bool Database::HasTable(const std::string& name) const {
  return tables_.count(name) > 0;
}

const Table* Database::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

Table* Database::GetMutableTable(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, _] : tables_) out.push_back(name);
  return out;
}

Status Database::BulkLoad(const std::string& table,
                          const std::vector<Tuple>& rows) {
  Table* t = GetMutableTable(table);
  if (t == nullptr) return Status::NotFound("no such table: " + table);
  for (const Tuple& row : rows) t->AppendRow(row);
  return Status::OK();
}

Result<uint64_t> Database::Insert(const std::string& table,
                                  const std::vector<Tuple>& rows) {
  Table* t = GetMutableTable(table);
  if (t == nullptr) return Status::NotFound("no such table: " + table);
  uint64_t v = ++version_;
  for (const Tuple& row : rows) {
    t->AppendRow(row);
    t->AppendDelta(DeltaRecord{row, /*mult=*/1, v});
  }
  return v;
}

Result<uint64_t> Database::Delete(
    const std::string& table, const std::function<bool(const Tuple&)>& pred,
    size_t limit) {
  Table* t = GetMutableTable(table);
  if (t == nullptr) return Status::NotFound("no such table: " + table);
  uint64_t v = ++version_;
  std::vector<Tuple> removed = t->DeleteWhereLimit(pred, limit);
  for (Tuple& row : removed) {
    t->AppendDelta(DeltaRecord{std::move(row), /*mult=*/-1, v});
  }
  return v;
}

TableDelta Database::ScanDelta(
    const std::string& table, uint64_t from_version, uint64_t to_version,
    const std::function<bool(const Tuple&)>& pred) const {
  TableDelta out;
  out.table = table;
  const Table* t = GetTable(table);
  if (t == nullptr) return out;
  for (const DeltaRecord& rec : t->delta_log()) {
    if (rec.version <= from_version || rec.version > to_version) continue;
    if (pred && !pred(rec.row)) continue;
    out.records.push_back(rec);
  }
  return out;
}

size_t Database::PendingDeltaCount(const std::string& table,
                                   uint64_t from_version) const {
  const Table* t = GetTable(table);
  if (t == nullptr) return 0;
  size_t n = 0;
  for (const DeltaRecord& rec : t->delta_log()) {
    if (rec.version > from_version) ++n;
  }
  return n;
}

bool Database::HasPendingDelta(const std::string& table,
                               uint64_t from_version) const {
  const Table* t = GetTable(table);
  if (t == nullptr || t->delta_log().empty()) return false;
  return t->delta_log().back().version > from_version;
}

size_t Database::MemoryBytes() const {
  size_t bytes = sizeof(Database);
  for (const auto& [_, table] : tables_) bytes += table->MemoryBytes();
  return bytes;
}

}  // namespace imp
