#include "storage/database.h"

#include <algorithm>
#include <thread>

#include "common/failpoint.h"

namespace imp {

Status Database::CreateTable(const std::string& name, Schema schema) {
  if (tables_.count(name) > 0) {
    return Status::InvalidArgument("table already exists: " + name);
  }
  tables_[name] =
      std::make_unique<Table>(name, std::move(schema), options_.typed_columns);
  return Status::OK();
}

bool Database::HasTable(std::string_view name) const {
  return tables_.count(name) > 0;
}

const Table* Database::GetTable(std::string_view name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

Table* Database::GetMutableTable(std::string_view name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, _] : tables_) out.push_back(name);
  return out;
}

std::unique_lock<std::mutex> Database::WriteSession(
    std::string_view table) const {
  const Table* t = GetTable(table);
  IMP_CHECK_MSG(t != nullptr, "WriteSession on missing table");
  return std::unique_lock<std::mutex>(t->write_stripe());
}

ReadView Database::OpenReadView() const {
  // Open loop: pin every table's snapshot after reading the stable
  // watermark W. stable() >= W happens-after every table publication of
  // every statement <= W (PublishTable's release swap precedes the clock
  // retire), so each pinned snapshot contains ALL statements <= W touching
  // its table. A snapshot stamped beyond W means a publication landed
  // mid-open: re-read the (now advanced) watermark and re-pin. The loop
  // converges at the first open that doesn't straddle a publication —
  // writers never block it and it never blocks writers.
  for (;;) {
    uint64_t w = clock_.stable();
    std::vector<ReadView::Entry> entries;
    entries.reserve(tables_.size());
    bool consistent = true;
    for (const auto& [name, table] : tables_) {
      std::shared_ptr<const TableSnapshot> snap = table->Snapshot();
      if (snap->version() > w) {
        consistent = false;
        break;
      }
      entries.push_back(ReadView::Entry{std::string_view(name),
                                        std::move(snap)});
    }
    if (consistent) return ReadView(w, std::move(entries));
    // A publication straddled this open (a table is stamped past the
    // watermark we read, i.e. its statement's clock retire is still in
    // flight). Yield instead of spinning hot — the writer needs the CPU
    // to finish the retire that unblocks us.
    std::this_thread::yield();
  }
}

Status Database::BulkLoad(const std::string& table,
                          const std::vector<Tuple>& rows) {
  Table* t = GetMutableTable(table);
  if (t == nullptr) return Status::NotFound("no such table: " + table);
  auto session = WriteSession(table);
  for (const Tuple& row : rows) t->AppendRow(row);
  t->PublishSnapshot();
  return Status::OK();
}

Status Database::StageInsert(const std::string& table,
                             const std::vector<Tuple>& rows,
                             uint64_t version) {
  Table* t = GetMutableTable(table);
  if (t == nullptr) return Status::NotFound("no such table: " + table);
  for (const Tuple& row : rows) {
    t->AppendRow(row);
    t->AppendDelta(DeltaRecord{row, /*mult=*/1, version});
  }
  return Status::OK();
}

Result<size_t> Database::StageDelete(
    const std::string& table, const std::function<bool(const Tuple&)>& pred,
    uint64_t version, size_t limit) {
  Table* t = GetMutableTable(table);
  if (t == nullptr) return Status::NotFound("no such table: " + table);
  std::vector<Tuple> removed = t->DeleteWhereLimit(pred, limit);
  size_t count = removed.size();
  for (Tuple& row : removed) {
    t->AppendDelta(DeltaRecord{std::move(row), /*mult=*/-1, version});
  }
  return count;
}

Status Database::PublishTable(std::string_view table) {
  // The failpoint sits BEFORE any mutation: a fired publication leaves the
  // staged state untouched, so the caller's retry republishes cleanly.
  IMP_FAILPOINT(kFpSnapshotPublish);
  PublishTableUnchecked(table);
  return Status::OK();
}

void Database::PublishTableUnchecked(std::string_view table) {
  Table* t = GetMutableTable(table);
  if (t == nullptr) return;
  // Deltas first: the snapshot's version stamp is the log's published
  // watermark, so the stamp reflects everything this publication exposes.
  t->PublishDeltas();
  t->PublishSnapshot();
}

Status Database::PublishTableRetrying(std::string_view table,
                                      size_t max_retries) {
  Status first = PublishTable(table);
  if (first.ok()) return first;
  publish_faults_.fetch_add(1, std::memory_order_relaxed);
  for (size_t attempt = 0; attempt < max_retries; ++attempt) {
    if (PublishTable(table).ok()) return first;
    publish_faults_.fetch_add(1, std::memory_order_relaxed);
  }
  // Retries exhausted: force the publication through (see header for why
  // skipping it is never an option), leaving the fault visible in the
  // counters and the returned status.
  forced_publishes_.fetch_add(1, std::memory_order_relaxed);
  PublishTableUnchecked(table);
  return first;
}

void Database::PublishVersion(const std::string& table, uint64_t version) {
  // A failed statement may target a missing table: retire its version
  // anyway so the stable watermark cannot stall behind it. The retrying
  // publication guarantees the retire below never exposes a watermark
  // whose data is still unpublished.
  PublishTableRetrying(table, kSyncPublishRetries);
  RetireVersion(version);
}

Result<uint64_t> Database::Insert(const std::string& table,
                                  const std::vector<Tuple>& rows) {
  if (!HasTable(table)) return Status::NotFound("no such table: " + table);
  // Allocation happens under the stripe: concurrent sync writers to the
  // same table stage in allocation order, keeping the log's version column
  // non-decreasing.
  auto session = WriteSession(table);
  uint64_t v = AllocateVersion();
  Status staged = StageInsert(table, rows, v);
  // Publish even on failure: an allocated version that never publishes
  // would stall the stable watermark forever.
  PublishVersion(table, v);
  IMP_RETURN_NOT_OK(staged);
  return v;
}

Result<uint64_t> Database::Delete(
    const std::string& table, const std::function<bool(const Tuple&)>& pred,
    size_t limit) {
  if (!HasTable(table)) return Status::NotFound("no such table: " + table);
  auto session = WriteSession(table);
  uint64_t v = AllocateVersion();
  Status staged = StageDelete(table, pred, v, limit).status();
  PublishVersion(table, v);
  IMP_RETURN_NOT_OK(staged);
  return v;
}

TableDelta Database::ScanDelta(
    std::string_view table, uint64_t from_version, uint64_t to_version,
    const std::function<bool(const Tuple&)>& pred) const {
  TableDelta out;
  out.table = std::string(table);
  const Table* t = GetTable(table);
  if (t == nullptr) return out;
  t->delta_log().CollectWindow(from_version, to_version, pred, &out.records);
  return out;
}

size_t Database::PendingDeltaCount(std::string_view table,
                                   uint64_t from_version) const {
  const Table* t = GetTable(table);
  if (t == nullptr) return 0;
  return t->delta_log().CountAfter(from_version);
}

bool Database::HasPendingDelta(std::string_view table,
                               uint64_t from_version) const {
  const Table* t = GetTable(table);
  if (t == nullptr) return false;
  return t->delta_log().HasRecordAfter(from_version);
}

void Database::TruncateDeltaLogs(uint64_t version) {
  for (auto& [_, table] : tables_) table->TruncateDeltaLog(version);
}

size_t Database::MemoryBytes() const {
  size_t bytes = sizeof(Database);
  for (const auto& [_, table] : tables_) bytes += table->MemoryBytes();
  return bytes;
}

Database::IndexStatsSnapshot Database::AggregateIndexStats() const {
  IndexStatsSnapshot out;
  for (const auto& [_, table] : tables_) {
    const TableIndexStats& s = table->index_stats();
    out.shards_built += s.shards_built.load(std::memory_order_relaxed);
    out.shards_reused += s.shards_reused.load(std::memory_order_relaxed);
    out.point_probes += s.point_probes.load(std::memory_order_relaxed);
    out.range_probes += s.range_probes.load(std::memory_order_relaxed);
  }
  return out;
}

Database::TypedColumnStats Database::AggregateTypedColumnStats() const {
  TypedColumnStats out;
  for (const auto& [_, table] : tables_) {
    std::shared_ptr<const TableSnapshot> snap = table->Snapshot();
    for (const auto& chunk : snap->chunks()) {
      if (chunk->typed()) ++out.typed_chunks;
      out.boxed_fallback_cells += chunk->BoxedFallbackCells();
    }
  }
  return out;
}

size_t Database::IndexBytes() const {
  size_t bytes = 0;
  for (const auto& [_, table] : tables_) {
    bytes += table->Snapshot()->IndexBytes();
  }
  return bytes;
}

}  // namespace imp
