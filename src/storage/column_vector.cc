#include "storage/column_vector.h"

#include <utility>

#include "common/hash.h"

namespace imp {

void ColumnVector::AppendNullSlot() {
  nulls_.Resize(size_ + 1);
  nulls_.Set(size_);
  has_nulls_ = true;
  switch (encoding_) {
    case Encoding::kInt64:
      ints_.push_back(0);
      break;
    case Encoding::kDouble:
      doubles_.push_back(0.0);
      break;
    case Encoding::kDictString:
      codes_.push_back(0);
      break;
    case Encoding::kFlatString:
      flat_offsets_.push_back(static_cast<uint32_t>(arena_.size()));
      break;
    default:
      break;  // kUntyped keeps bitmap only
  }
  ++size_;
}

void ColumnVector::BeginTyped(const Value& first) {
  // All rows so far are NULL; backfill zeroed payload slots for them.
  switch (first.type()) {
    case ValueType::kInt:
      encoding_ = Encoding::kInt64;
      ints_.assign(size_, 0);
      break;
    case ValueType::kDouble:
      encoding_ = Encoding::kDouble;
      doubles_.assign(size_, 0.0);
      break;
    case ValueType::kString:
      encoding_ = Encoding::kDictString;
      codes_.assign(size_, 0);
      dict_offsets_.assign(1, 0);
      break;
    default:
      break;
  }
}

void ColumnVector::AppendTyped(const Value& v) {
  nulls_.Resize(size_ + 1);
  switch (encoding_) {
    case Encoding::kInt64: {
      int64_t a = v.AsInt();
      ints_.push_back(a);
      if (!stats_valid_) {
        imin_ = imax_ = a;
        stats_valid_ = true;
      } else {
        if (a < imin_) imin_ = a;
        if (imax_ < a) imax_ = a;
      }
      break;
    }
    case Encoding::kDouble: {
      double a = v.AsDouble();
      doubles_.push_back(a);
      if (!stats_valid_) {
        dmin_ = dmax_ = a;
        stats_valid_ = true;
      } else {
        // Strict < keeps the first of Compare-equal values (incl. NaN,
        // which Value::Compare treats as equal to everything).
        if (a < dmin_) dmin_ = a;
        if (dmax_ < a) dmax_ = a;
      }
      break;
    }
    case Encoding::kDictString: {
      const std::string& s = v.AsString();
      auto it = dict_lookup_.find(s);
      uint32_t code;
      if (it != dict_lookup_.end()) {
        code = it->second;
      } else if (dict_size() >= kDictMaxDistinct) {
        ConvertDictToFlat();
        arena_.append(s);
        flat_offsets_.push_back(static_cast<uint32_t>(arena_.size()));
        UpdateStringStats(s);
        ++size_;
        return;
      } else {
        code = static_cast<uint32_t>(dict_size());
        arena_.append(s);
        dict_offsets_.push_back(static_cast<uint32_t>(arena_.size()));
        dict_lookup_.emplace(s, code);
      }
      codes_.push_back(code);
      UpdateStringStats(s);
      break;
    }
    case Encoding::kFlatString: {
      const std::string& s = v.AsString();
      arena_.append(s);
      flat_offsets_.push_back(static_cast<uint32_t>(arena_.size()));
      UpdateStringStats(s);
      break;
    }
    default:
      break;
  }
  ++size_;
}

void ColumnVector::UpdateStringStats(const std::string& s) {
  if (!stats_valid_) {
    smin_ = smax_ = s;
    stats_valid_ = true;
  } else {
    if (s.compare(smin_) < 0) smin_ = s;
    if (smax_.compare(s) < 0) smax_ = s;
  }
}

void ColumnVector::Append(const Value& v) {
  if (encoding_ == Encoding::kBoxed) {
    if (!v.is_null()) {
      if (!stats_valid_) {
        vmin_ = vmax_ = v;
        stats_valid_ = true;
      } else {
        if (v.Compare(vmin_) < 0) vmin_ = v;
        if (vmax_.Compare(v) < 0) vmax_ = v;
      }
    }
    boxed_.push_back(v);
    ++size_;
    return;
  }
  if (v.is_null()) {
    AppendNullSlot();
    return;
  }
  if (encoding_ == Encoding::kUntyped) BeginTyped(v);
  bool matches = (encoding_ == Encoding::kInt64 && v.is_int()) ||
                 (encoding_ == Encoding::kDouble && v.is_double()) ||
                 ((encoding_ == Encoding::kDictString ||
                   encoding_ == Encoding::kFlatString) &&
                  v.is_string());
  if (!matches) {
    ConvertToBoxed();
    Append(v);
    return;
  }
  AppendTyped(v);
}

Value ColumnVector::GetValue(size_t i) const {
  switch (encoding_) {
    case Encoding::kBoxed:
      return boxed_[i];
    case Encoding::kUntyped:
      return Value::Null();
    case Encoding::kInt64:
      if (has_nulls_ && nulls_.Test(i)) return Value::Null();
      return Value::Int(ints_[i]);
    case Encoding::kDouble:
      if (has_nulls_ && nulls_.Test(i)) return Value::Null();
      return Value::Double(doubles_[i]);
    case Encoding::kDictString:
    case Encoding::kFlatString:
      if (has_nulls_ && nulls_.Test(i)) return Value::Null();
      return Value::String(std::string(StringAt(i)));
  }
  return Value::Null();
}

bool ColumnVector::MinMax(Value* min, Value* max) const {
  if (!stats_valid_) return false;
  switch (encoding_) {
    case Encoding::kBoxed:
      *min = vmin_;
      *max = vmax_;
      return true;
    case Encoding::kInt64:
      *min = Value::Int(imin_);
      *max = Value::Int(imax_);
      return true;
    case Encoding::kDouble:
      *min = Value::Double(dmin_);
      *max = Value::Double(dmax_);
      return true;
    case Encoding::kDictString:
    case Encoding::kFlatString:
      *min = Value::String(smin_);
      *max = Value::String(smax_);
      return true;
    default:
      return false;  // kUntyped: all NULL
  }
}

void ColumnVector::ConvertToBoxed() {
  std::vector<Value> boxed;
  boxed.reserve(size_);
  for (size_t i = 0; i < size_; ++i) boxed.push_back(GetValue(i));
  if (stats_valid_) MinMax(&vmin_, &vmax_);  // seed the boxed accumulators
  boxed_ = std::move(boxed);
  encoding_ = Encoding::kBoxed;
  nulls_ = BitVector();
  has_nulls_ = false;
  ints_.clear();
  ints_.shrink_to_fit();
  doubles_.clear();
  doubles_.shrink_to_fit();
  arena_.clear();
  arena_.shrink_to_fit();
  codes_.clear();
  codes_.shrink_to_fit();
  dict_offsets_.clear();
  dict_offsets_.shrink_to_fit();
  flat_offsets_.clear();
  flat_offsets_.shrink_to_fit();
  dict_lookup_.clear();
}

void ColumnVector::ConvertDictToFlat() {
  std::string arena;
  arena.reserve(arena_.size() * 2);
  std::vector<uint32_t> offsets;
  offsets.reserve(size_ + 2);
  offsets.push_back(0);
  for (size_t i = 0; i < size_; ++i) {
    if (!has_nulls_ || !nulls_.Test(i)) arena.append(DictString(codes_[i]));
    offsets.push_back(static_cast<uint32_t>(arena.size()));
  }
  arena_ = std::move(arena);
  flat_offsets_ = std::move(offsets);
  encoding_ = Encoding::kFlatString;
  codes_.clear();
  codes_.shrink_to_fit();
  dict_offsets_.clear();
  dict_offsets_.shrink_to_fit();
  dict_lookup_.clear();
}

void ColumnVector::Gather(const std::vector<uint32_t>& rows, size_t col,
                          std::vector<Tuple>* out) const {
  switch (encoding_) {
    case Encoding::kBoxed:
      for (size_t k = 0; k < rows.size(); ++k) (*out)[k][col] = boxed_[rows[k]];
      break;
    case Encoding::kUntyped:
      break;  // slots are already NULL
    case Encoding::kInt64:
      for (size_t k = 0; k < rows.size(); ++k) {
        uint32_t r = rows[k];
        if (has_nulls_ && nulls_.Test(r)) continue;
        (*out)[k][col] = Value::Int(ints_[r]);
      }
      break;
    case Encoding::kDouble:
      for (size_t k = 0; k < rows.size(); ++k) {
        uint32_t r = rows[k];
        if (has_nulls_ && nulls_.Test(r)) continue;
        (*out)[k][col] = Value::Double(doubles_[r]);
      }
      break;
    case Encoding::kDictString:
    case Encoding::kFlatString:
      for (size_t k = 0; k < rows.size(); ++k) {
        uint32_t r = rows[k];
        if (has_nulls_ && nulls_.Test(r)) continue;
        (*out)[k][col] = Value::String(std::string(StringAt(r)));
      }
      break;
  }
}

void ColumnVector::AppendKeyHashes(size_t num_rows,
                                   std::vector<uint64_t>* inout) const {
  const BitVector* nulls = has_nulls_ ? &nulls_ : nullptr;
  switch (encoding_) {
    case Encoding::kBoxed:
      HashColumnBatch(
          num_rows, [this](size_t i) { return boxed_[i].Hash(); }, inout);
      return;
    case Encoding::kUntyped:
      for (size_t i = 0; i < num_rows; ++i) {
        (*inout)[i] = HashCombine((*inout)[i], kNullValueHash);
      }
      return;
    case Encoding::kInt64:
      HashColumnBatch(num_rows, ints_.data(), nulls, inout);
      return;
    case Encoding::kDouble:
      HashColumnBatch(num_rows, doubles_.data(), nulls, inout);
      return;
    case Encoding::kDictString: {
      // Hash each distinct string once, then fold per-row by code.
      std::vector<uint64_t> code_hash(dict_size());
      for (uint32_t c = 0; c < code_hash.size(); ++c) {
        std::string_view s = DictString(c);
        code_hash[c] = HashBytes(s.data(), s.size());
      }
      for (size_t i = 0; i < num_rows; ++i) {
        uint64_t h = (nulls != nullptr && nulls->Test(i))
                         ? kNullValueHash
                         : code_hash[codes_[i]];
        (*inout)[i] = HashCombine((*inout)[i], h);
      }
      return;
    }
    case Encoding::kFlatString:
      for (size_t i = 0; i < num_rows; ++i) {
        uint64_t h;
        if (nulls != nullptr && nulls->Test(i)) {
          h = kNullValueHash;
        } else {
          std::string_view s = StringAt(i);
          h = HashBytes(s.data(), s.size());
        }
        (*inout)[i] = HashCombine((*inout)[i], h);
      }
      return;
  }
}

size_t ColumnVector::MemoryBytes() const {
  size_t bytes = 0;
  if (encoding_ == Encoding::kBoxed) {
    bytes += boxed_.capacity() * sizeof(Value);
    for (const Value& v : boxed_) {
      if (v.is_string() && v.AsString().capacity() > sizeof(std::string)) {
        bytes += v.AsString().capacity();
      }
    }
    return bytes;
  }
  bytes += nulls_.MemoryBytes();
  bytes += ints_.capacity() * sizeof(int64_t);
  bytes += doubles_.capacity() * sizeof(double);
  bytes += arena_.capacity() > sizeof(std::string) ? arena_.capacity() : 0;
  bytes += codes_.capacity() * sizeof(uint32_t);
  bytes += dict_offsets_.capacity() * sizeof(uint32_t);
  bytes += flat_offsets_.capacity() * sizeof(uint32_t);
  for (const auto& [key, code] : dict_lookup_) {
    (void)code;
    bytes += sizeof(std::pair<const std::string, uint32_t>);
    if (key.capacity() > sizeof(std::string)) bytes += key.capacity();
  }
  return bytes;
}

}  // namespace imp
