#include "storage/version_clock.h"

namespace imp {

void VersionClock::Publish(uint64_t version) {
  std::lock_guard<std::mutex> lock(mu_);
  pending_.push(version);
  uint64_t stable = stable_.load(std::memory_order_relaxed);
  while (!pending_.empty() && pending_.top() == stable + 1) {
    ++stable;
    pending_.pop();
  }
  stable_.store(stable, std::memory_order_release);
}

}  // namespace imp
