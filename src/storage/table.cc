#include "storage/table.h"

#include <algorithm>
#include <mutex>

namespace imp {

void DataChunk::AppendRow(const Tuple& row) {
  IMP_DCHECK(row.size() == columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].push_back(row[c]);
    if (!row[c].is_null()) {
      ZoneEntry& z = zone_[c];
      if (!z.valid) {
        z.min = row[c];
        z.max = row[c];
        z.valid = true;
      } else {
        if (row[c] < z.min) z.min = row[c];
        if (z.max < row[c]) z.max = row[c];
      }
    }
  }
  ++num_rows_;
}

Tuple DataChunk::GetRow(size_t row) const {
  Tuple out;
  out.reserve(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) out.push_back(columns_[c][row]);
  return out;
}

size_t DataChunk::MemoryBytes() const {
  size_t bytes = sizeof(DataChunk);
  for (const auto& col : columns_) {
    bytes += col.capacity() * sizeof(Value);
    for (const Value& v : col) {
      if (v.is_string()) bytes += v.AsString().capacity();
    }
  }
  return bytes;
}

void Table::AppendRow(const Tuple& row) {
  IMP_CHECK_MSG(row.size() == schema_.size(), name_.c_str());
  if (chunks_.empty() || chunks_.back().Full()) {
    chunks_.emplace_back(schema_.size());
  }
  chunks_.back().AppendRow(row);
  ++num_rows_;
  // Keep materialized hash indexes current.
  for (auto& [col, index] : hash_indexes_) {
    index[row[col]].push_back(
        RowLoc{static_cast<uint32_t>(chunks_.size() - 1),
               static_cast<uint32_t>(chunks_.back().num_rows() - 1)});
  }
}

std::vector<Tuple> Table::DeleteWhere(
    const std::function<bool(const Tuple&)>& pred) {
  return DeleteWhereLimit(pred, SIZE_MAX);
}

std::vector<Tuple> Table::DeleteWhereLimit(
    const std::function<bool(const Tuple&)>& pred, size_t limit) {
  std::vector<Tuple> removed;
  std::vector<DataChunk> kept;
  size_t kept_rows = 0;
  for (const DataChunk& chunk : chunks_) {
    for (size_t r = 0; r < chunk.num_rows(); ++r) {
      Tuple row = chunk.GetRow(r);
      if (removed.size() < limit && pred(row)) {
        removed.push_back(std::move(row));
        continue;
      }
      if (kept.empty() || kept.back().Full()) kept.emplace_back(schema_.size());
      kept.back().AppendRow(row);
      ++kept_rows;
    }
  }
  chunks_ = std::move(kept);
  num_rows_ = kept_rows;
  // Row locations changed wholesale; drop indexes (rebuilt lazily).
  hash_indexes_.clear();
  return removed;
}

void Table::ForEachRow(const std::function<void(const Tuple&)>& fn) const {
  for (const DataChunk& chunk : chunks_) {
    for (size_t r = 0; r < chunk.num_rows(); ++r) fn(chunk.GetRow(r));
  }
}

std::pair<Value, Value> Table::ColumnMinMax(size_t col) const {
  Value min, max;
  bool first = true;
  for (const DataChunk& chunk : chunks_) {
    const auto& column = chunk.column(col);
    for (size_t r = 0; r < chunk.num_rows(); ++r) {
      const Value& v = column[r];
      if (v.is_null()) continue;
      if (first) {
        min = v;
        max = v;
        first = false;
      } else {
        if (v < min) min = v;
        if (max < v) max = v;
      }
    }
  }
  return {min, max};
}

std::vector<Value> Table::ColumnValues(size_t col) const {
  std::vector<Value> out;
  out.reserve(num_rows_);
  for (const DataChunk& chunk : chunks_) {
    const auto& column = chunk.column(col);
    out.insert(out.end(), column.begin(), column.begin() + chunk.num_rows());
  }
  return out;
}

void Table::BuildIndex(size_t col) const {
  HashIndex index;
  index.reserve(num_rows_);
  for (uint32_t c = 0; c < chunks_.size(); ++c) {
    const auto& column = chunks_[c].column(col);
    for (uint32_t r = 0; r < chunks_[c].num_rows(); ++r) {
      index[column[r]].push_back(RowLoc{c, r});
    }
  }
  hash_indexes_[col] = std::move(index);
}

const std::vector<Table::RowLoc>* Table::IndexProbe(size_t col,
                                                    const Value& v) const {
  IMP_CHECK(col < schema_.size());
  // Fast path: the index exists — a shared lock keeps concurrent probes
  // from maintenance workers parallel. Map nodes are stable, so the index
  // stays valid after the lock is released.
  const HashIndex* index = nullptr;
  {
    std::shared_lock<std::shared_mutex> lock(index_mu_);
    auto it = hash_indexes_.find(col);
    if (it != hash_indexes_.end()) index = &it->second;
  }
  if (index == nullptr) {
    // Slow path: serialize the lazy build; re-check under the exclusive
    // lock since another worker may have built it meanwhile.
    std::unique_lock<std::shared_mutex> lock(index_mu_);
    auto it = hash_indexes_.find(col);
    if (it == hash_indexes_.end()) {
      BuildIndex(col);
      it = hash_indexes_.find(col);
    }
    index = &it->second;
  }
  auto hit = index->find(v);
  return hit == index->end() ? nullptr : &hit->second;
}

size_t Table::MemoryBytes() const {
  size_t bytes = sizeof(Table);
  for (const DataChunk& chunk : chunks_) bytes += chunk.MemoryBytes();
  bytes += delta_log_.MemoryBytes();
  return bytes;
}

}  // namespace imp
